package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Parse reads a span dump in either of the tracer's JSON formats — JSONL
// (one span object per line, the WriteJSONL shape) or an OTLP/JSON export
// document (the WriteOTLP shape) — sniffing which one it was handed from
// the first non-space byte. Spans come back in seq order when seq survives
// the format, else in document order.
func Parse(r io.Reader) ([]Span, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			if err == io.EOF {
				return nil, nil
			}
			return nil, err
		}
		switch b[0] {
		case ' ', '\t', '\r', '\n':
			_, _ = br.ReadByte()
			continue
		}
		break
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	// An OTLP export is a single object whose body mentions resourceSpans;
	// a JSONL line is a single span object. Sniff by key, not by shape —
	// both start with '{'.
	head := data
	if len(head) > 4096 {
		head = head[:4096]
	}
	if bytes.Contains(head, []byte(`"resourceSpans"`)) {
		return parseOTLP(data)
	}
	return parseJSONL(data)
}

func parseJSONL(data []byte) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(text, &s); err != nil {
			return nil, fmt.Errorf("trace: JSONL line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

func parseOTLP(data []byte) ([]Span, error) {
	var doc otlpExport
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: OTLP document: %w", err)
	}
	var spans []Span
	var minStart int64 = -1
	for _, rs := range doc.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, os := range ss.Spans {
				s, start, err := spanFromOTLP(os)
				if err != nil {
					return nil, err
				}
				if minStart < 0 || start < minStart {
					minStart = start
				}
				s.At = time.Duration(start)
				spans = append(spans, s)
			}
		}
	}
	// OTLP carries wall-clock nanos; rebase At onto the earliest span so
	// offsets look like the tracer's monotonic clock again.
	if minStart > 0 {
		for i := range spans {
			spans[i].At -= time.Duration(minStart)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Seq != spans[j].Seq {
			return spans[i].Seq < spans[j].Seq
		}
		return spans[i].At < spans[j].At
	})
	return spans, nil
}

func spanFromOTLP(os otlpSpan) (Span, int64, error) {
	var s Span
	kind, ok := KindByName(os.Name)
	if !ok {
		return s, 0, fmt.Errorf("trace: OTLP span has unknown kind name %q", os.Name)
	}
	s.Kind = kind
	var err error
	if s.Trace, err = parseHexID(os.TraceID); err != nil {
		return s, 0, fmt.Errorf("trace: OTLP traceId %q: %w", os.TraceID, err)
	}
	if s.Span, err = parseHexID(os.SpanID); err != nil {
		return s, 0, fmt.Errorf("trace: OTLP spanId %q: %w", os.SpanID, err)
	}
	if os.ParentSpanID != "" {
		if s.Parent, err = parseHexID(os.ParentSpanID); err != nil {
			return s, 0, fmt.Errorf("trace: OTLP parentSpanId %q: %w", os.ParentSpanID, err)
		}
	}
	start, err := strconv.ParseInt(os.StartNano, 10, 64)
	if err != nil {
		return s, 0, fmt.Errorf("trace: OTLP startTimeUnixNano %q: %w", os.StartNano, err)
	}
	end, err := strconv.ParseInt(os.EndNano, 10, 64)
	if err != nil {
		return s, 0, fmt.Errorf("trace: OTLP endTimeUnixNano %q: %w", os.EndNano, err)
	}
	if end > start {
		s.Dur = time.Duration(end - start)
	}
	for _, a := range os.Attributes {
		switch a.Key {
		case "ripple.seq":
			s.Seq = uint64(attrInt(a))
		case "ripple.job":
			if a.Value.Str != nil {
				s.Job = *a.Value.Str
			}
		case "ripple.step":
			s.Step = int(attrInt(a))
		case "ripple.part":
			s.Part = int(attrInt(a))
		case "ripple.n":
			s.N = attrInt(a)
		case "ripple.span":
			// Engine-assigned ID preserved across export-time uniquification.
			s.Span = uint64(attrInt(a))
		default:
			if a.Value.Str != nil {
				if s.Attrs == nil {
					s.Attrs = make(map[string]string)
				}
				s.Attrs[a.Key] = *a.Value.Str
			}
		}
	}
	return s, start, nil
}

func attrInt(a otlpAttr) int64 {
	if a.Value.Int == nil {
		return 0
	}
	n, _ := strconv.ParseInt(*a.Value.Int, 10, 64)
	return n
}

func parseHexID(s string) (uint64, error) {
	s = strings.TrimLeft(s, "0")
	if s == "" {
		return 0, nil
	}
	if len(s) > 16 {
		return 0, fmt.Errorf("id wider than 64 bits")
	}
	return strconv.ParseUint(s, 16, 64)
}

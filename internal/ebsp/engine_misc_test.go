package ebsp

import (
	"errors"
	"sync"
	"testing"

	"ripple/internal/gridstore"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
)

func TestEngineAccessors(t *testing.T) {
	store := memstore.New()
	t.Cleanup(func() { _ = store.Close() })
	m := &metrics.Collector{}
	e := NewEngine(store, WithMetrics(m))
	if e.Store() != store {
		t.Error("Store() mismatch")
	}
	if e.Metrics() != m {
		t.Error("Metrics() mismatch")
	}
}

func TestConcurrentNoSyncJobsSharedEngine(t *testing.T) {
	// Two no-sync jobs starting concurrently on ONE Engine (no WithMQ, so
	// both race into the lazy mqSystem() initialization). Under -race this
	// fails without the sync.Once guard on Engine.mqsys. The barrier loader
	// lines both jobs up at the end of their load phase, so they hit the
	// lazy write truly concurrently instead of skewed by setup time.
	e := newEngine(t)
	var barrier sync.WaitGroup
	barrier.Add(2)
	rendezvous := LoaderFunc(func(lc *LoadContext) error {
		barrier.Done()
		barrier.Wait()
		return nil
	})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := &Job{
				Name:        "conc-nosync-" + string(rune('a'+i)),
				StateTables: []string{"conc_ns_state_" + string(rune('a'+i))},
				Properties:  Properties{Incremental: true},
				Compute:     &incrementalChain{hops: 10},
				Loaders: []Loader{
					&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}},
					rendezvous,
				},
			}
			r, err := e.Run(job)
			if err == nil && r.Strategy.Sync {
				err = errors.New("no-sync not selected")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	for _, suffix := range []string{"a", "b"} {
		tab, ok := e.Store().LookupTable("conc_ns_state_" + suffix)
		if !ok {
			t.Fatalf("state table %s missing", suffix)
		}
		for i := 0; i <= 10; i++ {
			if v, ok, _ := tab.Get(i); !ok || v != i {
				t.Errorf("state %s[%d] = %v, %v", suffix, i, v, ok)
			}
		}
	}
}

func TestSharedMQSystemAcrossEngines(t *testing.T) {
	// Two engines sharing one queuing system (the paper's "larger system"
	// sharing of the messaging substrate).
	sys := mq.NewSystem()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			store := memstore.New(memstore.WithParts(2))
			defer func() { _ = store.Close() }()
			e := NewEngine(store, WithMQ(sys))
			_, errs[i] = e.Run(&Job{
				Name:        "shared-mq",
				StateTables: []string{"smq_state"},
				Properties:  Properties{Incremental: true},
				Compute:     &incrementalChain{hops: 5},
				Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("engine %d: %v", i, err)
		}
	}
}

func TestRecoveryRetriesExhausted(t *testing.T) {
	// With no surviving replica, replay cannot succeed; the engine must give
	// up after its bounded retries rather than loop forever.
	store := gridstore.New(gridstore.WithParts(2)) // replicas = 1
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithRecoveryRetries(2))
	job := &Job{
		Name:        "doomed",
		StateTables: []string{"dm_state"},
		Properties:  Properties{Deterministic: true},
		Compute: ComputeFunc(func(ctx *Context) bool {
			if ctx.StepNum() == 2 {
				tab, _ := store.LookupTable("dm_state")
				// Killing a single-replica primary leaves nothing to
				// promote.
				_ = store.FailPrimary("dm_state", tab.PartOf(ctx.Key()))
			}
			for _, m := range ctx.InputMessages() {
				n := m.(int)
				ctx.WriteState(0, n)
				if n < 5 {
					ctx.Send(ctx.Key().(int)+1, n+1)
				}
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	if _, err := e.Run(job); !errors.Is(err, kvstore.ErrShardFailed) {
		t.Errorf("err = %v, want ErrShardFailed after exhausted retries", err)
	}
}

func TestStateTableCoPlacementValidated(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	// Two pre-existing tables with different part counts cannot share a job.
	if _, err := store.CreateTable("cp_a", kvstore.WithParts(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateTable("cp_b", kvstore.WithParts(5)); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(store)
	_, err := e.Run(&Job{
		Name:        "misplaced",
		StateTables: []string{"cp_a", "cp_b"},
		Compute:     ComputeFunc(func(*Context) bool { return false }),
		Loaders:     []Loader{&EnableLoader{Keys: []any{1}}},
	})
	if !errors.Is(err, ErrBadJob) {
		t.Errorf("err = %v, want ErrBadJob for non-co-placed state tables", err)
	}
}

func TestPlacementTableOverride(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	if _, err := store.CreateTable("drive", kvstore.WithParts(7)); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(store)
	res, err := e.Run(&Job{
		Name:        "placed",
		Placement:   "drive",
		StateTables: []string{"drive"},
		Compute:     ComputeFunc(func(*Context) bool { return false }),
		Loaders:     []Loader{&EnableLoader{Keys: []any{1, 2, 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Errorf("Steps = %d", res.Steps)
	}
}

func TestDropCheckpointOnlyAfterSuccess(t *testing.T) {
	// An aborted checkpointed job keeps its snapshot; a completed one drops
	// it (covered elsewhere); an aborted one twice in a row keeps the newest.
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithCheckpoints(2))
	job := func() *Job { return checkpointChainJob("keepck", 10, crashAfter(5)) }
	if _, err := e.Run(job()); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.LookupTable(ckptMetaTable("keepck")); !ok {
		t.Fatal("aborted job dropped its checkpoint")
	}
	// Resume to completion: snapshot is dropped.
	if _, err := e.Resume(checkpointChainJob("keepck", 10, nil)); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.LookupTable(ckptMetaTable("keepck")); ok {
		t.Error("completed job kept its checkpoint")
	}
}

// TestSameJobNameTwoEnginesOneStore: private table names must not collide
// when two engines run the same-named job against one store concurrently.
func TestSameJobNameTwoEnginesOneStore(t *testing.T) {
	store := memstore.New(memstore.WithParts(3))
	t.Cleanup(func() { _ = store.Close() })
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := NewEngine(store)
			tab := "samename_state" // shared state table, disjoint keys
			_, errs[i] = e.Run(&Job{
				Name:        "samename",
				StateTables: []string{tab},
				Compute: ComputeFunc(func(ctx *Context) bool {
					for _, m := range ctx.InputMessages() {
						n := m.(int)
						ctx.WriteState(0, n)
						if n < 20 {
							ctx.Send(ctx.Key().(int)+2, n+1)
						}
					}
					return false
				}),
				Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{
					{Key: i, Message: 0}, // engine 0 walks evens, engine 1 odds
				}}},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}
	tab, _ := store.LookupTable("samename_state")
	if n, _ := tab.Size(); n != 42 {
		t.Errorf("state size = %d, want 42 (both walks complete)", n)
	}
}

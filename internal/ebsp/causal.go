package ebsp

import (
	"sort"

	"ripple/internal/trace"
)

// Causal stitching for the data plane. Producers stamp their span ID into
// every envelope they emit (outBuffer for the sync path, queueSink for the
// no-sync path); receivers aggregate the arriving envelopes per distinct
// sender span and record one deliver span per (sender span, receiver)
// pair. A deliver span's Parent is the sender's span ID and its own
// coordinates (Job, Step, Part) name the receiver, so offline lineage
// reconstruction joins edges to executions without re-deriving any hashes.
// The per-receiver edge count is bounded by the sender population (parts,
// plus the loader), not by message volume.

// spanID is the span ID of one (step, part) execution of this run, or 0
// when the run is unsampled.
func (run *jobRun) spanID(step, part int) uint64 {
	if !run.sampled {
		return 0
	}
	return trace.SpanID(run.traceID, step, part)
}

// recordDeliverEdges records the causal delivery edges for the envelopes
// arriving at (step, part): one deliver span per distinct producing span,
// in deterministic (sorted) order. No-ops for unsampled runs.
func (run *jobRun) recordDeliverEdges(step, part int, envs []envelope) {
	if !run.sampled || len(envs) == 0 {
		return
	}
	counts := make(map[uint64]int64)
	for i := range envs {
		if envs[i].Trace == run.traceID && envs[i].Span != 0 {
			counts[envs[i].Span]++
		}
	}
	run.recordEdgeCounts(step, part, counts)
}

// recordEdgeCounts emits deliver spans from an already-aggregated
// sender-span count map (the no-sync worker accumulates one incrementally).
func (run *jobRun) recordEdgeCounts(step, part int, counts map[uint64]int64) {
	if !run.sampled || len(counts) == 0 {
		return
	}
	recv := run.spanID(step, part)
	parents := make([]uint64, 0, len(counts))
	for p := range counts {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	for _, p := range parents {
		run.engine.tracer.RecordSpan(trace.Span{
			Kind: trace.KindDeliver, Job: run.job.Name, Step: step, Part: part,
			N: counts[p], Trace: run.traceID, Span: trace.EdgeID(p, recv), Parent: p,
		})
	}
}

package memstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/metrics"
)

type record struct {
	N     int
	Label string
	Data  []int
}

func init() {
	codec.Register(record{})
}

func newStore(t *testing.T, opts ...Option) *Store {
	t.Helper()
	s := New(opts...)
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestCreateLookupDrop(t *testing.T) {
	s := newStore(t)
	tab, err := s.CreateTable("t1")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if tab.Name() != "t1" {
		t.Errorf("Name = %q", tab.Name())
	}
	if tab.Parts() != 6 {
		t.Errorf("Parts = %d, want default 6", tab.Parts())
	}
	if _, err := s.CreateTable("t1"); !errors.Is(err, kvstore.ErrTableExists) {
		t.Errorf("duplicate create err = %v", err)
	}
	if _, ok := s.LookupTable("t1"); !ok {
		t.Error("LookupTable failed after create")
	}
	if _, ok := s.LookupTable("nope"); ok {
		t.Error("LookupTable found nonexistent table")
	}
	if err := s.DropTable("t1"); err != nil {
		t.Fatalf("DropTable: %v", err)
	}
	if _, ok := s.LookupTable("t1"); ok {
		t.Error("table still visible after drop")
	}
	if err := s.DropTable("t1"); !errors.Is(err, kvstore.ErrNoTable) {
		t.Errorf("double drop err = %v", err)
	}
}

func TestTablesListsInCreationOrder(t *testing.T) {
	s := newStore(t)
	for _, n := range []string{"c", "a", "b"} {
		if _, err := s.CreateTable(n); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Tables()
	want := []string{"c", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("Tables = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Tables[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestGetPutDelete(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t")
	if _, ok, err := tab.Get(1); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v", ok, err)
	}
	if err := tab.Put(1, "one"); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := tab.Get(1)
	if err != nil || !ok || v != "one" {
		t.Fatalf("Get = %v, %v, %v", v, ok, err)
	}
	if err := tab.Put(1, "uno"); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if v, _, _ := tab.Get(1); v != "uno" {
		t.Errorf("after overwrite Get = %v", v)
	}
	if err := tab.Delete(1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := tab.Get(1); ok {
		t.Error("Get ok after Delete")
	}
	if err := tab.Delete(1); err != nil {
		t.Errorf("Delete absent key: %v", err)
	}
}

func TestSize(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(4))
	for i := 0; i < 100; i++ {
		if err := tab.Put(i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tab.Size()
	if err != nil || n != 100 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	_ = tab.Delete(7)
	if n, _ := tab.Size(); n != 99 {
		t.Errorf("Size after delete = %d", n)
	}
}

func TestMarshallingIsolation(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t")
	orig := record{N: 1, Label: "a", Data: []int{1, 2, 3}}
	if err := tab.Put("k", orig); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's copy must not affect the stored value.
	orig.Data[0] = 999
	v, _, _ := tab.Get("k")
	got := v.(record)
	if got.Data[0] != 1 {
		t.Error("store shares memory with writer")
	}
	// Mutating a returned value must not affect the stored value.
	got.Data[1] = 888
	v2, _, _ := tab.Get("k")
	if v2.(record).Data[1] != 2 {
		t.Error("store shares memory with reader")
	}
}

func TestWithoutMarshallingSharesMemory(t *testing.T) {
	s := newStore(t, WithoutMarshalling())
	tab, _ := s.CreateTable("t")
	orig := record{Data: []int{1}}
	if err := tab.Put("k", orig); err != nil {
		t.Fatal(err)
	}
	v, _, _ := tab.Get("k")
	got := v.(record)
	if &got.Data[0] != &orig.Data[0] {
		t.Skip("slice copied anyway — acceptable")
	}
}

func TestPartOfStableAndInRange(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(7))
	f := func(k int64) bool {
		p := tab.PartOf(k)
		return p >= 0 && p < 7 && p == tab.PartOf(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPutGetProperty(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(3))
	f := func(k int32, v string) bool {
		if err := tab.Put(int(k), v); err != nil {
			return false
		}
		got, ok, err := tab.Get(int(k))
		return err == nil && ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsistentPartitioning(t *testing.T) {
	s := newStore(t)
	a, _ := s.CreateTable("a", kvstore.WithParts(5))
	b, err := s.CreateTable("b", kvstore.ConsistentWith("a"))
	if err != nil {
		t.Fatalf("ConsistentWith: %v", err)
	}
	if b.Parts() != 5 {
		t.Errorf("b.Parts = %d, want 5", b.Parts())
	}
	for i := 0; i < 1000; i++ {
		if a.PartOf(i) != b.PartOf(i) {
			t.Fatalf("key %d maps to different parts", i)
		}
	}
	if _, err := s.CreateTable("c", kvstore.ConsistentWith("zzz")); !errors.Is(err, kvstore.ErrNoTable) {
		t.Errorf("ConsistentWith missing table err = %v", err)
	}
}

func TestRunAgentLocalAccess(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(4))
	for i := 0; i < 40; i++ {
		if err := tab.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	// Each part sees exactly its own keys.
	total := 0
	for p := 0; p < 4; p++ {
		res, err := s.RunAgent("t", p, func(sv kvstore.ShardView) (any, error) {
			if sv.Part() != p {
				t.Errorf("agent part = %d, want %d", sv.Part(), p)
			}
			view, err := sv.View("t")
			if err != nil {
				return nil, err
			}
			n := 0
			err = view.Enumerate(func(k, v any) (bool, error) {
				if tab.PartOf(k) != p {
					t.Errorf("key %v in part %d, belongs to %d", k, p, tab.PartOf(k))
				}
				n++
				return false, nil
			})
			return n, err
		})
		if err != nil {
			t.Fatalf("RunAgent(%d): %v", p, err)
		}
		total += res.(int)
	}
	if total != 40 {
		t.Errorf("agents saw %d keys, want 40", total)
	}
}

func TestRunAgentErrors(t *testing.T) {
	s := newStore(t)
	if _, err := s.RunAgent("none", 0, func(kvstore.ShardView) (any, error) { return nil, nil }); !errors.Is(err, kvstore.ErrNoTable) {
		t.Errorf("missing table err = %v", err)
	}
	_, _ = s.CreateTable("t", kvstore.WithParts(2))
	if _, err := s.RunAgent("t", 5, func(kvstore.ShardView) (any, error) { return nil, nil }); !errors.Is(err, kvstore.ErrBadPart) {
		t.Errorf("bad part err = %v", err)
	}
	wantErr := errors.New("agent boom")
	if _, err := s.RunAgent("t", 0, func(kvstore.ShardView) (any, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("agent error not propagated: %v", err)
	}
}

func TestAgentCrossTableCoPlacement(t *testing.T) {
	s := newStore(t)
	_, _ = s.CreateTable("a", kvstore.WithParts(3))
	_, _ = s.CreateTable("b", kvstore.ConsistentWith("a"))
	_, _ = s.CreateTable("other", kvstore.WithParts(5))
	_, err := s.RunAgent("a", 1, func(sv kvstore.ShardView) (any, error) {
		if _, err := sv.View("b"); err != nil {
			t.Errorf("co-placed view: %v", err)
		}
		if _, err := sv.View("other"); !errors.Is(err, kvstore.ErrNotCoPlaced) {
			t.Errorf("non-co-placed view err = %v", err)
		}
		if _, err := sv.View("missing"); !errors.Is(err, kvstore.ErrNoTable) {
			t.Errorf("missing view err = %v", err)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAgentSamePartsDefaultHasherCoPlaced(t *testing.T) {
	s := newStore(t)
	_, _ = s.CreateTable("a", kvstore.WithParts(4))
	_, _ = s.CreateTable("b", kvstore.WithParts(4))
	_, err := s.RunAgent("a", 0, func(sv kvstore.ShardView) (any, error) {
		_, err := sv.View("b")
		return nil, err
	})
	if err != nil {
		t.Errorf("same parts + default hasher should be co-placed: %v", err)
	}
}

func TestAgentLocalWritesVisible(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(2))
	key := 0
	for tab.PartOf(key) != 1 {
		key++
	}
	_, err := s.RunAgent("t", 1, func(sv kvstore.ShardView) (any, error) {
		view, _ := sv.View("t")
		return nil, view.Put(key, "from-agent")
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tab.Get(key)
	if !ok || v != "from-agent" {
		t.Errorf("Get = %v, %v", v, ok)
	}
}

func TestEnumeratePairsVisitsAll(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(5))
	want := map[int]string{}
	for i := 0; i < 200; i++ {
		want[i] = fmt.Sprintf("v%d", i)
		if err := tab.Put(i, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	got := map[int]string{}
	_, err := tab.EnumeratePairs(kvstore.PairConsumerFuncs{
		ConsumeFn: func(k, v any) (bool, error) {
			mu.Lock()
			got[k.(int)] = v.(string)
			mu.Unlock()
			return false, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d pairs, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("pair %d = %q, want %q", k, got[k], v)
		}
	}
}

func TestEnumeratePairsEarlyStop(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(1))
	for i := 0; i < 100; i++ {
		_ = tab.Put(i, i)
	}
	seen := 0
	_, err := tab.EnumeratePairs(kvstore.PairConsumerFuncs{
		ConsumeFn: func(k, v any) (bool, error) {
			seen++
			return seen >= 10, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Errorf("early stop saw %d, want 10", seen)
	}
}

func TestEnumeratePairsSetupFinishCombine(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(3))
	for i := 0; i < 60; i++ {
		_ = tab.Put(i, 1)
	}
	var mu sync.Mutex
	perPart := map[int]int{}
	setups := map[int]bool{}
	res, err := tab.EnumeratePairs(kvstore.PairConsumerFuncs{
		SetupFn: func(p int) error {
			mu.Lock()
			setups[p] = true
			mu.Unlock()
			return nil
		},
		ConsumeFn: func(k, v any) (bool, error) {
			mu.Lock()
			perPart[tab.PartOf(k)]++
			mu.Unlock()
			return false, nil
		},
		FinishFn: func(p int) (any, error) {
			mu.Lock()
			defer mu.Unlock()
			return perPart[p], nil
		},
		CombineFn: func(a, b any) (any, error) { return a.(int) + b.(int), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(setups) != 3 {
		t.Errorf("setup called for %d parts, want 3", len(setups))
	}
	if res.(int) != 60 {
		t.Errorf("combined count = %v, want 60", res)
	}
}

func TestEnumeratePartsCombineOrder(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(4))
	res, err := tab.EnumerateParts(kvstore.PartConsumerFuncs{
		ProcessFn: func(sv kvstore.ShardView) (any, error) {
			return []int{sv.Part()}, nil
		},
		CombineFn: func(a, b any) (any, error) {
			return append(a.([]int), b.([]int)...), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.([]int)
	for i, p := range got {
		if p != i {
			t.Fatalf("combine order %v, want parts in order", got)
		}
	}
}

func TestOrderedEnumeration(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(2), kvstore.Ordered())
	for _, k := range []int{5, 3, 9, 1, 7, 2, 8} {
		_ = tab.Put(k, k)
	}
	for p := 0; p < 2; p++ {
		_, err := s.RunAgent("t", p, func(sv kvstore.ShardView) (any, error) {
			view, _ := sv.View("t")
			prev := -1
			return nil, view.EnumerateOrdered(func(k, v any) (bool, error) {
				if k.(int) <= prev {
					t.Errorf("part %d out of order: %d after %d", p, k, prev)
				}
				prev = k.(int)
				return false, nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestUbiquitousTable(t *testing.T) {
	s := newStore(t)
	tab, err := s.CreateTable("u", kvstore.Ubiquitous())
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Ubiquitous() || tab.Parts() != 1 {
		t.Errorf("Ubiquitous=%v Parts=%d", tab.Ubiquitous(), tab.Parts())
	}
	if err := tab.Put("cfg", 42); err != nil {
		t.Fatal(err)
	}
	// Readable from an agent on any part of any other table.
	other, _ := s.CreateTable("data", kvstore.WithParts(3))
	_ = other
	for p := 0; p < 3; p++ {
		_, err := s.RunAgent("data", p, func(sv kvstore.ShardView) (any, error) {
			view, err := sv.View("u")
			if err != nil {
				return nil, err
			}
			v, ok, err := view.Get("cfg")
			if err != nil || !ok || v != 42 {
				t.Errorf("part %d ubiquitous read = %v, %v, %v", p, v, ok, err)
			}
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Enumeration over a ubiquitous table works too.
	n := 0
	_, err = tab.EnumeratePairs(kvstore.PairConsumerFuncs{
		ConsumeFn: func(k, v any) (bool, error) { n++; return false, nil },
	})
	if err != nil || n != 1 {
		t.Errorf("ubiquitous enumerate n=%d err=%v", n, err)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(4))
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := tab.Put(w*per+i, w); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := tab.Size(); n != workers*per {
		t.Errorf("Size = %d, want %d", n, workers*per)
	}
}

func TestConcurrentAgentsAndOps(t *testing.T) {
	// Short ops must proceed while a long-running agent occupies a part.
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(2))
	for i := 0; i < 100; i++ {
		_ = tab.Put(i, i)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := s.RunAgent("t", 0, func(sv kvstore.ShardView) (any, error) {
			view, _ := sv.View("t")
			// A slow enumeration.
			return nil, view.Enumerate(func(k, v any) (bool, error) {
				return false, nil
			})
		})
		if err != nil {
			t.Errorf("agent: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, _, err := tab.Get(i); err != nil {
				t.Errorf("Get during agent: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestOpsAfterClose(t *testing.T) {
	s := New()
	tab, _ := s.CreateTable("t")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := tab.Put(1, 1); !errors.Is(err, kvstore.ErrClosed) {
		t.Errorf("Put after close err = %v", err)
	}
	if _, err := s.CreateTable("t2"); !errors.Is(err, kvstore.ErrClosed) {
		t.Errorf("CreateTable after close err = %v", err)
	}
}

func TestMetricsCounting(t *testing.T) {
	m := &metrics.Collector{}
	s := newStore(t, WithMetrics(m))
	tab, _ := s.CreateTable("t")
	_ = tab.Put(1, "x")
	_, _, _ = tab.Get(1)
	_ = tab.Delete(1)
	snap := m.Snapshot()
	if snap.StorePuts != 1 || snap.StoreGets != 1 || snap.StoreDeletes != 1 {
		t.Errorf("metrics = %+v", snap)
	}
	if snap.MarshalledBytes == 0 {
		t.Error("expected marshalled bytes > 0")
	}
}

func TestEnumerationCallbackMayMutate(t *testing.T) {
	s := newStore(t)
	_, _ = s.CreateTable("t", kvstore.WithParts(1))
	tab, _ := s.LookupTable("t")
	for i := 0; i < 50; i++ {
		_ = tab.Put(i, i)
	}
	_, err := s.RunAgent("t", 0, func(sv kvstore.ShardView) (any, error) {
		view, _ := sv.View("t")
		return nil, view.Enumerate(func(k, v any) (bool, error) {
			// Deleting while enumerating must not deadlock or error.
			return false, view.Delete(k)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := tab.Size(); n != 0 {
		t.Errorf("Size after delete-all = %d", n)
	}
}

func TestPartViewLenAndTableName(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(2))
	for i := 0; i < 20; i++ {
		_ = tab.Put(i, i)
	}
	got := 0
	for p := 0; p < 2; p++ {
		res, err := s.RunAgent("t", p, func(sv kvstore.ShardView) (any, error) {
			view, _ := sv.View("t")
			if view.Table() != "t" || view.Part() != p {
				t.Errorf("view identity %s/%d", view.Table(), view.Part())
			}
			return view.Len()
		})
		if err != nil {
			t.Fatal(err)
		}
		got += res.(int)
	}
	if got != 20 {
		t.Errorf("sum of Lens = %d, want 20", got)
	}
}

func TestDumpAndLoadMapHelpers(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(3))
	in := map[any]any{1: "a", 2: "b", 3: "c"}
	if err := kvstore.LoadMap(tab, in); err != nil {
		t.Fatal(err)
	}
	out, err := kvstore.Dump(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[1] != "a" || out[2] != "b" || out[3] != "c" {
		t.Errorf("Dump = %v", out)
	}
}

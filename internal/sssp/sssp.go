// Package sssp implements the paper's incremental single-source-shortest-
// paths evaluation (§V-C): maintaining, on a time-varying undirected graph,
// each vertex's hop distance from a distinguished source, updating the
// annotations after each small batch of primitive changes.
//
// Two variants are implemented. The selective-enablement variant exploits
// EBSP: each vertex caches the distance last received from each neighbor, so
// after a change batch only the affected vertices (and the ripple they cause)
// ever run. The full-scan variant is the MapReduce-style computation: each
// update wave is a series of two-step MapReduce-like jobs, every one of which
// scans the whole graph.
//
// If a batch includes no edge deletions the solution is updated by one wave
// of breadth-first updates; otherwise it is two waves — the first updates to
// +∞ every distance annotation that depended critically on a now-removed
// edge, the second decreases annotations that are higher than justified by
// their neighbors' values.
package sssp

import (
	"errors"
	"fmt"
	"math"

	"ripple/internal/codec"
	"ripple/internal/workload"
)

// Inf is the "unreachable" distance annotation (+∞ in the paper).
const Inf int32 = math.MaxInt32 / 2

// ErrBadConfig is returned for invalid driver configurations.
var ErrBadConfig = errors.New("sssp: invalid config")

// waves of the update method.
const (
	waveInvalidate = 1 // raise unsupported annotations to +∞
	waveDecrease   = 2 // lower annotations justified by neighbors
)

// BatchStats reports the work one change batch caused.
type BatchStats struct {
	// Applied counts changes that actually modified the graph; the rest of
	// the batch were no-ops (expected, per the paper's generator).
	Applied int
	// HardCase reports whether the batch included an actual edge deletion
	// (requiring the two-wave update).
	HardCase bool
	// Steps is the total BSP steps across the update jobs.
	Steps int
	// Jobs is the number of EBSP jobs launched.
	Jobs int
	// Invalidated counts annotations raised to +∞ by the first wave.
	Invalidated int
}

func init() {
	codec.Register(SelState{})
	codec.Register(FsState{})
	codec.Register(distMsg{})
	codec.Register(fsMsg{})
	codec.Register(int32(0))

	// Fast wire codecs: these four types are the entirety of the SSSP data
	// plane, and distMsg in particular is sent once per affected edge per
	// wave, so keeping them off the gob fallback matters.
	codec.RegisterFast(SelState{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			s := v.(SelState)
			if err := e.Any(s.Nbrs); err != nil {
				return err
			}
			if err := e.Any(s.NbrDist); err != nil {
				return err
			}
			e.Int(int(s.Dist))
			return nil
		},
		Decode: func(d *codec.Decoder) (any, error) {
			var s SelState
			var err error
			if s.Nbrs, err = decI32s(d); err != nil {
				return nil, err
			}
			if s.NbrDist, err = decI32s(d); err != nil {
				return nil, err
			}
			dist, err := d.Int()
			if err != nil {
				return nil, err
			}
			s.Dist = int32(dist)
			return s, nil
		},
		Copy: func(v any) (any, error) {
			s := v.(SelState)
			return SelState{
				Nbrs:    append([]int32(nil), s.Nbrs...),
				NbrDist: append([]int32(nil), s.NbrDist...),
				Dist:    s.Dist,
			}, nil
		},
	})
	codec.RegisterFast(FsState{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			s := v.(FsState)
			e.Int(int(s.Dist))
			return e.Any(s.Nbrs)
		},
		Decode: func(d *codec.Decoder) (any, error) {
			var s FsState
			dist, err := d.Int()
			if err != nil {
				return nil, err
			}
			s.Dist = int32(dist)
			if s.Nbrs, err = decI32s(d); err != nil {
				return nil, err
			}
			return s, nil
		},
		Copy: func(v any) (any, error) {
			s := v.(FsState)
			return FsState{Dist: s.Dist, Nbrs: append([]int32(nil), s.Nbrs...)}, nil
		},
	})
	codec.RegisterFast(distMsg{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			m := v.(distMsg)
			e.Int(int(m.From))
			e.Int(int(m.Dist))
			return nil
		},
		Decode: func(d *codec.Decoder) (any, error) {
			from, err := d.Int()
			if err != nil {
				return nil, err
			}
			dist, err := d.Int()
			if err != nil {
				return nil, err
			}
			return distMsg{From: int32(from), Dist: int32(dist)}, nil
		},
		Copy: func(v any) (any, error) { return v, nil },
	})
	codec.RegisterFast(fsMsg{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			m := v.(fsMsg)
			has := byte(0)
			if m.HasState {
				has = 1
			}
			e.Byte(has)
			e.Int(int(m.State.Dist))
			if err := e.Any(m.State.Nbrs); err != nil {
				return err
			}
			e.Int(int(m.MinNbr))
			return nil
		},
		Decode: func(d *codec.Decoder) (any, error) {
			var m fsMsg
			has, err := d.Byte()
			if err != nil {
				return nil, err
			}
			m.HasState = has != 0
			dist, err := d.Int()
			if err != nil {
				return nil, err
			}
			m.State.Dist = int32(dist)
			if m.State.Nbrs, err = decI32s(d); err != nil {
				return nil, err
			}
			minNbr, err := d.Int()
			if err != nil {
				return nil, err
			}
			m.MinNbr = int32(minNbr)
			return m, nil
		},
		Copy: func(v any) (any, error) {
			m := v.(fsMsg)
			m.State.Nbrs = append([]int32(nil), m.State.Nbrs...)
			return m, nil
		},
	})
}

// decI32s reads a tagged []int32 written by Encoder.Any.
func decI32s(d *codec.Decoder) ([]int32, error) {
	v, err := d.Any()
	if err != nil {
		return nil, err
	}
	s, ok := v.([]int32)
	if !ok && v != nil {
		return nil, fmt.Errorf("sssp: expected []int32 on the wire, got %T", v)
	}
	return s, nil
}

// ReferenceDistances computes hop distances by breadth-first search, for
// verification.
func ReferenceDistances(g *workload.UndirectedGraph, src int) []int32 {
	dist := make([]int32, g.NumVertices)
	for i := range dist {
		dist[i] = Inf
	}
	if src < 0 || src >= g.NumVertices {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.Adj[u] {
			if dist[v] > dist[u]+1 {
				dist[v] = dist[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return dist
}

// minNeighbor returns the smallest cached neighbor distance.
func minNeighbor(cache []int32) int32 {
	best := Inf
	for _, d := range cache {
		if d < best {
			best = d
		}
	}
	return best
}

// supported reports whether distance d is justified by some cached neighbor
// at distance d-1.
func supported(cache []int32, d int32) bool {
	if d == 0 || d >= Inf {
		return true // the source, or already unreachable
	}
	for _, nd := range cache {
		if nd == d-1 {
			return true
		}
	}
	return false
}

func checkSource(src, n int) error {
	if src < 0 || (n > 0 && src >= n) {
		return fmt.Errorf("%w: source %d of %d vertices", ErrBadConfig, src, n)
	}
	return nil
}

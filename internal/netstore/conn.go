package netstore

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// errConnBroken marks a request whose connection died before the response
// arrived. It is a transport failure, not a server verdict: the client
// retries it (the op may or may not have executed — all store ops are
// idempotent puts/gets/deletes, and mq duplicates are shed by the engine's
// sender+sequence dedup).
var errConnBroken = errors.New("netstore: connection broken")

// errTimeout marks a request that outlived its deadline.
var errTimeout = errors.New("netstore: request timed out")

// serverConn multiplexes one TCP connection to one part-server: requests
// carry client-assigned frame IDs, a single reader goroutine routes
// responses back to waiters by ID. Dialing is lazy and re-dialing after
// teardown is automatic on the next call.
type serverConn struct {
	addr   string
	server int // index in the client's server list, for fault routing
	inj    WireInjector

	mu      sync.Mutex
	conn    net.Conn
	wmu     sync.Mutex // serializes frame writes on conn
	pending map[uint64]chan frame
	gen     int // bumped on teardown so stale readLoops don't tear down a new conn
}

func newServerConn(addr string, server int, inj WireInjector) *serverConn {
	return &serverConn{addr: addr, server: server, inj: inj, pending: make(map[uint64]chan frame)}
}

// get returns the live connection, dialing if needed.
func (sc *serverConn) get() (net.Conn, int, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.conn != nil {
		return sc.conn, sc.gen, nil
	}
	conn, err := net.DialTimeout("tcp", sc.addr, 2*time.Second)
	if err != nil {
		return nil, sc.gen, fmt.Errorf("netstore: dial %s: %w", sc.addr, err)
	}
	sc.conn = conn
	sc.gen++
	gen := sc.gen
	go sc.readLoop(conn, gen)
	return conn, gen, nil
}

// teardown closes the connection (if it is still the one of generation gen)
// and fails every pending request by closing its channel.
func (sc *serverConn) teardown(gen int) {
	sc.mu.Lock()
	if sc.gen != gen || sc.conn == nil {
		sc.mu.Unlock()
		return
	}
	conn := sc.conn
	sc.conn = nil
	pending := sc.pending
	sc.pending = make(map[uint64]chan frame)
	sc.mu.Unlock()
	conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// close tears down whatever connection is live.
func (sc *serverConn) close() {
	sc.mu.Lock()
	gen := sc.gen
	sc.mu.Unlock()
	sc.teardown(gen)
}

// register parks a response channel under the frame ID. The channel is
// buffered for 2 so a duplicated response never blocks the read loop.
func (sc *serverConn) register(id uint64) chan frame {
	ch := make(chan frame, 2)
	sc.mu.Lock()
	sc.pending[id] = ch
	sc.mu.Unlock()
	return ch
}

func (sc *serverConn) unregister(id uint64) {
	sc.mu.Lock()
	delete(sc.pending, id)
	sc.mu.Unlock()
}

// readLoop routes responses to waiters until the stream breaks, applying
// receive-side faults (drop, delay, dup) on the way.
func (sc *serverConn) readLoop(conn net.Conn, gen int) {
	for {
		f, err := readFrame(conn)
		if err != nil {
			sc.teardown(gen)
			return
		}
		if sc.inj != nil && f.Op != opPing {
			fault := sc.inj.RecvFault(sc.server, f.Op)
			if fault.DropConn {
				sc.teardown(gen)
				return
			}
			if fault.Drop {
				continue
			}
			if fault.Delay > 0 {
				f := f
				time.AfterFunc(fault.Delay, func() {
					sc.deliver(f)
					if fault.Dup {
						sc.deliver(f)
					}
				})
				continue
			}
			if fault.Dup {
				sc.deliver(f)
			}
		}
		sc.deliver(f)
	}
}

// deliver hands a response to its waiter, if one is still parked; late and
// duplicate responses beyond the channel's slack are shed here.
func (sc *serverConn) deliver(f frame) {
	sc.mu.Lock()
	ch := sc.pending[f.ID]
	sc.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- f:
	default: // duplicate beyond buffer slack; shed
	}
}

// call performs one request/response round-trip with the given deadline,
// applying send-side faults. Transport failures come back as errConnBroken
// or errTimeout; server verdicts come back as the response frame.
func (sc *serverConn) call(req frame, timeout time.Duration) (frame, error) {
	conn, gen, err := sc.get()
	if err != nil {
		return frame{}, fmt.Errorf("%w: %v", errConnBroken, err)
	}
	var fault WireFault
	if sc.inj != nil && req.Op != opPing {
		fault = sc.inj.SendFault(sc.server, req.Op)
	}
	if fault.DropConn {
		sc.teardown(gen)
		return frame{}, fmt.Errorf("%w: injected connection drop", errConnBroken)
	}
	ch := sc.register(req.ID)
	defer sc.unregister(req.ID)
	if fault.Delay > 0 {
		time.Sleep(fault.Delay)
	}
	if !fault.Drop {
		writes := 1
		if fault.Dup {
			writes = 2
		}
		for i := 0; i < writes; i++ {
			sc.wmu.Lock()
			err := writeFrame(conn, req)
			sc.wmu.Unlock()
			if err != nil {
				sc.teardown(gen)
				return frame{}, fmt.Errorf("%w: %v", errConnBroken, err)
			}
		}
	}
	// A dropped request still waits: the caller sees a timeout, exactly as a
	// real lost packet would present.
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return frame{}, errConnBroken
		}
		return resp, nil
	case <-timer.C:
		return frame{}, fmt.Errorf("%w: %s after %v", errTimeout, opName(req.Op), timeout)
	}
}

package codec

import (
	"math"
	"testing"
	"testing/quick"
)

type customKey struct {
	A int
	B string
}

type vertexLike struct {
	ID    int
	Rank  float64
	Edges []int
}

func init() {
	Register(customKey{})
	Register(vertexLike{})
	Register([]int{})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []any{
		int(42),
		int(-7),
		int64(1 << 40),
		uint64(math.MaxUint64),
		"hello world",
		"",
		3.14159,
		true,
		[2]int{3, 9},
		customKey{A: 1, B: "x"},
		vertexLike{ID: 5, Rank: 0.25, Edges: []int{1, 2, 3}},
	}
	for _, in := range cases {
		data, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		switch want := in.(type) {
		case vertexLike:
			got, ok := out.(vertexLike)
			if !ok {
				t.Fatalf("Decode(%v) type = %T", in, out)
			}
			if got.ID != want.ID || got.Rank != want.Rank || len(got.Edges) != len(want.Edges) {
				t.Errorf("round trip %v => %v", want, got)
			}
		default:
			if out != in {
				t.Errorf("round trip %v (%T) => %v (%T)", in, in, out, out)
			}
		}
	}
}

func TestEncodeNil(t *testing.T) {
	v, err := DeepCopy(nil)
	if err != nil {
		t.Fatalf("DeepCopy(nil): %v", err)
	}
	if v != nil {
		t.Errorf("DeepCopy(nil) = %v, want nil", v)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte{0x01, 0x02, 0x03}); err == nil {
		t.Error("Decode(garbage) succeeded, want error")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded, want error")
	}
}

func TestDeepCopyIsolation(t *testing.T) {
	orig := vertexLike{ID: 1, Rank: 0.5, Edges: []int{10, 20}}
	cp, err := DeepCopy(orig)
	if err != nil {
		t.Fatalf("DeepCopy: %v", err)
	}
	got := cp.(vertexLike)
	got.Edges[0] = 999
	if orig.Edges[0] != 10 {
		t.Error("DeepCopy shares edge slice memory with original")
	}
}

func TestDeepCopySliceValue(t *testing.T) {
	orig := []int{1, 2, 3}
	cp, err := DeepCopy(orig)
	if err != nil {
		t.Fatalf("DeepCopy: %v", err)
	}
	got := cp.([]int)
	got[0] = 42
	if orig[0] != 1 {
		t.Error("DeepCopy shares slice memory")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	// Double registration must not panic.
	Register(customKey{})
	Register(customKey{})
}

func TestDefaultHasherDeterministic(t *testing.T) {
	h := DefaultHasher{}
	keys := []any{1, 2, "a", "b", [2]int{1, 2}, int64(7), uint32(9), 2.5}
	for _, k := range keys {
		if h.Hash(k) != h.Hash(k) {
			t.Errorf("Hash(%v) not deterministic", k)
		}
	}
}

func TestDefaultHasherIntAndInt64Agree(t *testing.T) {
	h := DefaultHasher{}
	for _, n := range []int{0, 1, -1, 12345, -99999} {
		if h.Hash(n) != h.Hash(int64(n)) {
			t.Errorf("Hash(int %d) != Hash(int64 %d)", n, n)
		}
	}
}

func TestDefaultHasherSpread(t *testing.T) {
	h := DefaultHasher{}
	const parts = 8
	counts := make([]int, parts)
	const n = 10000
	for i := 0; i < n; i++ {
		counts[PartOf(h, i, parts)]++
	}
	for p, c := range counts {
		// Expect roughly n/parts = 1250 per part; allow wide tolerance.
		if c < n/parts/2 || c > n/parts*2 {
			t.Errorf("part %d got %d of %d keys — poor spread", p, c, n)
		}
	}
}

type hashControlled struct{ Target uint64 }

func (h hashControlled) KeyHash() uint64 { return h.Target }

func TestKeyHasherControlsPlacement(t *testing.T) {
	h := DefaultHasher{}
	for parts := 1; parts <= 12; parts++ {
		for want := 0; want < parts; want++ {
			k := hashControlled{Target: uint64(want)}
			if got := PartOf(h, k, parts); got != want {
				t.Fatalf("PartOf(target %d, %d parts) = %d", want, parts, got)
			}
		}
	}
}

func TestPartOfDegenerate(t *testing.T) {
	h := DefaultHasher{}
	if got := PartOf(h, 5, 0); got != 0 {
		t.Errorf("PartOf with 0 parts = %d, want 0", got)
	}
	if got := PartOf(h, 5, -3); got != 0 {
		t.Errorf("PartOf with negative parts = %d, want 0", got)
	}
}

func TestCompareKeysInts(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{1, 2, -1},
		{2, 1, 1},
		{5, 5, 0},
		{int64(3), 4, -1},
		{uint32(9), int(9), 0},
		{"apple", "banana", -1},
		{"pear", "pear", 0},
		{"z", "a", 1},
		{[2]int{1, 2}, [2]int{1, 3}, -1},
		{[2]int{2, 0}, [2]int{1, 9}, 1},
		{[2]int{4, 4}, [2]int{4, 4}, 0},
		{1.5, 2, -1},
	}
	for _, c := range cases {
		if got := CompareKeys(c.a, c.b); got != c.want {
			t.Errorf("CompareKeys(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

type reverseOrdered int

func (r reverseOrdered) CompareKey(other any) int {
	o := other.(reverseOrdered)
	switch {
	case r > o:
		return -1
	case r < o:
		return 1
	default:
		return 0
	}
}

func TestCompareKeysOrderedKeyOverride(t *testing.T) {
	if got := CompareKeys(reverseOrdered(1), reverseOrdered(2)); got != 1 {
		t.Errorf("OrderedKey override ignored: got %d, want 1", got)
	}
}

func TestCompareKeysTotalOrderProperty(t *testing.T) {
	// Antisymmetry and transitivity-ish sanity over random int keys.
	f := func(a, b int) bool {
		return CompareKeys(a, b) == -CompareKeys(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodePropertyInts(t *testing.T) {
	f := func(x int64) bool {
		data, err := Encode(x)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		if err != nil {
			return false
		}
		return out == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodePropertyStrings(t *testing.T) {
	f := func(s string) bool {
		data, err := Encode(s)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		if err != nil {
			return false
		}
		return out == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodedSize(t *testing.T) {
	if n := EncodedSize("hello"); n <= 0 {
		t.Errorf("EncodedSize = %d, want > 0", n)
	}
	big := EncodedSize(vertexLike{ID: 1, Edges: make([]int, 1000)})
	small := EncodedSize(vertexLike{ID: 1, Edges: []int{1}})
	if big <= small {
		t.Errorf("EncodedSize(big)=%d <= EncodedSize(small)=%d", big, small)
	}
}

func TestHashUint64Avalanche(t *testing.T) {
	// Flipping one input bit should change many output bits on average.
	base := hashUint64(0x12345678)
	diffBits := 0
	for bit := 0; bit < 64; bit++ {
		h := hashUint64(0x12345678 ^ (1 << bit))
		x := base ^ h
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	avg := float64(diffBits) / 64
	if avg < 16 || avg > 48 {
		t.Errorf("avalanche average %f bits, want roughly 32", avg)
	}
}

func TestDefaultHasherAllScalarTypes(t *testing.T) {
	h := DefaultHasher{}
	cases := []any{
		int8(3), int16(5), int32(9), uint(1), uint8(2), uint16(4), uint64(8),
		3.5, "s", [3]int{1, 2, 3},
	}
	for _, k := range cases {
		if h.Hash(k) != h.Hash(k) {
			t.Errorf("Hash(%T) unstable", k)
		}
	}
}

func TestDefaultHasherFallbackEncodes(t *testing.T) {
	// An arbitrary registered struct goes through the gob+FNV fallback.
	h := DefaultHasher{}
	k1 := customKey{A: 1, B: "x"}
	k2 := customKey{A: 2, B: "x"}
	if h.Hash(k1) != h.Hash(k1) {
		t.Error("fallback hash unstable")
	}
	if h.Hash(k1) == h.Hash(k2) {
		t.Error("fallback hash collides trivially")
	}
}

func TestDefaultHasherUnencodableDegrades(t *testing.T) {
	// A channel cannot be encoded: hashing degrades to part 0 rather than
	// failing the job.
	h := DefaultHasher{}
	if got := h.Hash(make(chan int)); got != 0 {
		t.Errorf("unencodable key hash = %d, want 0", got)
	}
}

func TestCompareKeysNumericCross(t *testing.T) {
	pairs := []struct {
		a, b any
		want int
	}{
		{int8(1), int16(2), -1},
		{uint8(200), int64(100), 1},
		{float32(1.5), 1.5, 0},
		{uint16(7), uint(7), 0},
	}
	for _, p := range pairs {
		if got := CompareKeys(p.a, p.b); got != p.want {
			t.Errorf("CompareKeys(%v, %v) = %d, want %d", p.a, p.b, got, p.want)
		}
	}
}

func TestCompareKeysFallbackDeterministic(t *testing.T) {
	// Mixed/unknown types order by encoded bytes — any stable total order.
	a := customKey{A: 1, B: "a"}
	b := customKey{A: 2, B: "b"}
	x := CompareKeys(a, b)
	if x == 0 {
		t.Error("distinct keys compare equal")
	}
	if CompareKeys(b, a) != -x {
		t.Error("fallback order not antisymmetric")
	}
	if CompareKeys(a, a) != 0 {
		t.Error("key not equal to itself")
	}
	// Mixed string-vs-struct also hits the fallback.
	if CompareKeys("zzz", a) == 0 {
		t.Error("mixed comparison degenerate")
	}
}

package summa

import (
	"errors"
	"math/rand"
	"testing"

	"ripple/internal/gridstore"
	"ripple/internal/matrix"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
)

func TestScheduleMatchesTableII(t *testing.T) {
	// Paper Table II: block multiplications in each step for M=N=3.
	got := Schedule(3)
	want := []int{1, 3, 6, 3, 6, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Schedule(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Schedule(3) = %v, want %v", got, want)
		}
	}
}

func TestScheduleConservation(t *testing.T) {
	// Any grid size: total multiplications must be G^3.
	for g := 2; g <= 6; g++ {
		total := 0
		for _, c := range Schedule(g) {
			total += c
		}
		if total != g*g*g {
			t.Errorf("Schedule(%d) totals %d, want %d", g, total, g*g*g)
		}
	}
}

func TestScheduleDegenerate(t *testing.T) {
	if s := Schedule(1); s != nil {
		t.Errorf("Schedule(1) = %v", s)
	}
}

func multiplyOn(t *testing.T, synchronized bool, g, n int) *Outcome {
	t.Helper()
	store := memstore.New(memstore.WithParts(g * g))
	t.Cleanup(func() { _ = store.Close() })
	rng := rand.New(rand.NewSource(42))
	a := matrix.Random(rng, n, n)
	b := matrix.Random(rng, n, n)
	out, err := Multiply(store, Config{Grid: g, Synchronized: synchronized}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.C.EqualWithin(direct, 1e-9) {
		t.Error("SUMMA product != direct product")
	}
	return out
}

func TestSynchronizedCorrectAndPaced(t *testing.T) {
	out := multiplyOn(t, true, 3, 12)
	if out.Result.Steps != 7 {
		t.Errorf("synchronized 3x3 took %d steps, want 7 (Table II)", out.Result.Steps)
	}
	want := []int{1, 3, 6, 3, 6, 3, 5}
	if len(out.MultsPerStep) != len(want) {
		t.Fatalf("MultsPerStep = %v, want %v", out.MultsPerStep, want)
	}
	for i := range want {
		if out.MultsPerStep[i] != want[i] {
			t.Fatalf("MultsPerStep = %v, want %v (Table II)", out.MultsPerStep, want)
		}
	}
}

func TestNoSyncCorrect(t *testing.T) {
	out := multiplyOn(t, false, 3, 12)
	if out.Result.Strategy.Sync {
		t.Error("no-sync requested but barriers used")
	}
	if out.MultsPerStep != nil {
		t.Error("MultsPerStep reported for no-sync run")
	}
}

func TestLargerGridsBothModes(t *testing.T) {
	for _, g := range []int{2, 4} {
		for _, sync := range []bool{true, false} {
			out := multiplyOn(t, sync, g, 4*g)
			if sync && out.Result.Steps == 0 {
				t.Errorf("g=%d sync run took 0 steps", g)
			}
		}
	}
}

func TestSynchronizedStepsMatchSchedule(t *testing.T) {
	for _, g := range []int{2, 3, 4, 5} {
		store := memstore.New(memstore.WithParts(g * g))
		rng := rand.New(rand.NewSource(7))
		n := 3 * g
		a := matrix.Random(rng, n, n)
		b := matrix.Random(rng, n, n)
		out, err := Multiply(store, Config{Grid: g, Synchronized: true}, a, b)
		if err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		sched := Schedule(g)
		if out.Result.Steps != len(sched) {
			t.Errorf("g=%d: %d steps, schedule predicts %d", g, out.Result.Steps, len(sched))
		}
		for i := range sched {
			if out.MultsPerStep[i] != sched[i] {
				t.Errorf("g=%d: MultsPerStep=%v, schedule=%v", g, out.MultsPerStep, sched)
				break
			}
		}
		_ = store.Close()
	}
}

func TestNonSquareMatrices(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	rng := rand.New(rand.NewSource(3))
	a := matrix.Random(rng, 10, 14)
	b := matrix.Random(rng, 14, 6)
	out, err := Multiply(store, Config{Grid: 2, Synchronized: true}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := a.Mul(b)
	if !out.C.EqualWithin(direct, 1e-9) {
		t.Error("non-square SUMMA product wrong")
	}
}

func TestOnGridstore(t *testing.T) {
	// The §V-B configuration: WXS-like store with 10 data containers.
	store := gridstore.New(gridstore.WithParts(10))
	t.Cleanup(func() { _ = store.Close() })
	rng := rand.New(rand.NewSource(5))
	a := matrix.Random(rng, 15, 15)
	b := matrix.Random(rng, 15, 15)
	for _, sync := range []bool{true, false} {
		out, err := Multiply(store, Config{Grid: 3, Synchronized: sync}, a, b)
		if err != nil {
			t.Fatalf("sync=%v: %v", sync, err)
		}
		direct, _ := a.Mul(b)
		if !out.C.EqualWithin(direct, 1e-9) {
			t.Errorf("sync=%v: wrong product", sync)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	store := memstore.New()
	t.Cleanup(func() { _ = store.Close() })
	a := matrix.New(4, 4)
	if _, err := Multiply(store, Config{Grid: 1}, a, a); !errors.Is(err, ErrBadConfig) {
		t.Errorf("grid 1 err = %v", err)
	}
	b := matrix.New(5, 4)
	if _, err := Multiply(store, Config{Grid: 2}, a, b); !errors.Is(err, ErrBadConfig) {
		t.Errorf("dim mismatch err = %v", err)
	}
}

func TestMetricsShowBarrierDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := matrix.Random(rng, 12, 12)
	b := matrix.Random(rng, 12, 12)

	mSync := &metrics.Collector{}
	s1 := memstore.New(memstore.WithParts(9))
	t.Cleanup(func() { _ = s1.Close() })
	if _, err := Multiply(s1, Config{Grid: 3, Synchronized: true, Metrics: mSync}, a, b); err != nil {
		t.Fatal(err)
	}

	mNo := &metrics.Collector{}
	s2 := memstore.New(memstore.WithParts(9))
	t.Cleanup(func() { _ = s2.Close() })
	if _, err := Multiply(s2, Config{Grid: 3, Synchronized: false, Metrics: mNo}, a, b); err != nil {
		t.Fatal(err)
	}

	if mSync.Snapshot().Barriers != 7 {
		t.Errorf("sync barriers = %d, want 7", mSync.Snapshot().Barriers)
	}
	if mNo.Snapshot().Barriers != 0 {
		t.Errorf("no-sync barriers = %d, want 0", mNo.Snapshot().Barriers)
	}
}

func TestRepeatedMultiplyReusesTable(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	rng := rand.New(rand.NewSource(9))
	a := matrix.Random(rng, 8, 8)
	b := matrix.Random(rng, 8, 8)
	for i := 0; i < 3; i++ {
		out, err := Multiply(store, Config{Grid: 2, Synchronized: i%2 == 0}, a, b)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		direct, _ := a.Mul(b)
		if !out.C.EqualWithin(direct, 1e-9) {
			t.Fatalf("run %d wrong", i)
		}
	}
}

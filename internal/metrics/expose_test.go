package metrics

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ripple/internal/trace"
)

func TestWritePrometheusNilCollector(t *testing.T) {
	// A nil collector still exposes the process-level runtime gauges, but no
	// engine series.
	var sb strings.Builder
	if err := WritePrometheus(&sb, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"ripple_go_goroutines ", "ripple_go_heap_bytes ", "ripple_go_gc_pause_seconds_total "} {
		if !strings.Contains(out, frag) {
			t.Errorf("nil collector missing runtime gauge %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "ripple_steps_total") {
		t.Errorf("nil collector wrote engine series:\n%s", out)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := &Collector{}
	c.AddSteps(3)
	c.AddMessagesSent(42)
	c.StepDurations().ObserveDuration(3 * time.Millisecond)
	c.StepDurations().ObserveDuration(5 * time.Millisecond)
	c.QueueDepths().Set(0, 7)
	c.QueueDepths().Set(2, 1)
	c.EnabledComponents().Set(11)
	c.StepSkewRatio().Set(2.5)
	c.StragglerPart().Set(3)

	var sb strings.Builder
	if err := WritePrometheus(&sb, c); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, frag := range []string{
		"# TYPE ripple_steps_total counter",
		"ripple_steps_total 3",
		"ripple_messages_sent_total 42",
		"# TYPE ripple_step_duration_seconds histogram",
		"ripple_step_duration_seconds_count 2",
		"ripple_step_duration_seconds_sum 0.008",
		`ripple_step_duration_seconds_bucket{le="+Inf"} 2`,
		"# TYPE ripple_queue_depth gauge",
		`ripple_queue_depth{part="0"} 7`,
		`ripple_queue_depth{part="2"} 1`,
		"ripple_enabled_components 11",
		"ripple_step_skew_ratio 2.5",
		"ripple_straggler_part 3",
		"ripple_go_goroutines ",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("exposition missing %q\n---\n%s", frag, out)
		}
	}

	// Buckets must be cumulative and end at the total count.
	if !strings.Contains(out, "ripple_step_duration_seconds_bucket{le=") {
		t.Fatal("no finite step-duration buckets")
	}
	last := int64(-1)
	for _, ln := range strings.Split(out, "\n") {
		if !strings.HasPrefix(ln, "ripple_step_duration_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", ln, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative: %q after %d", ln, last)
		}
		last = v
	}
	if last != 2 {
		t.Errorf("final bucket = %d, want 2", last)
	}
}

func TestWritePrometheusTracer(t *testing.T) {
	c := &Collector{}
	tr := trace.New(2)
	tr.Record(1, "j", 1, 0, 0, 0)
	tr.Record(1, "j", 1, 1, 0, 0)
	tr.Record(1, "j", 1, 2, 0, 0) // wraps: one span dropped

	var sb strings.Builder
	if err := WritePrometheusTracer(&sb, c, tr); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"# TYPE ripple_trace_dropped_total counter",
		"ripple_trace_dropped_total 1",
		"ripple_trace_spans 2",
		"# TYPE ripple_build_info gauge",
		`ripple_build_info{version=`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("exposition missing %q:\n%s", frag, out)
		}
	}
}

func TestTraceSeriesUnconditional(t *testing.T) {
	// With no tracer attached the trace series must still be present (as
	// zeros), so scrapes see a stable series set.
	var sb strings.Builder
	if err := WritePrometheusTracer(&sb, &Collector{}, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"ripple_trace_spans 0",
		"ripple_trace_dropped_total 0",
		"ripple_build_info{",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("exposition missing %q:\n%s", frag, out)
		}
	}
}

func TestHandler(t *testing.T) {
	c := &Collector{}
	c.AddBarriers(5)
	c.StepDurations().Observe(1000)

	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "ripple_barriers_total 5") {
		t.Errorf("body missing barrier counter:\n%s", body)
	}
	if !strings.Contains(body, "ripple_step_duration_seconds_count 1") {
		t.Errorf("body missing histogram:\n%s", body)
	}
}

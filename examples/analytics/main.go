// Command analytics demonstrates the openness side of the architecture
// (paper §III): the same key/value store serving several styles of work at
// once — an EBSP job with live step observation, collocated table operations
// including the zero-data-movement co-placement join (§VI), and concurrent
// independent jobs sharing a read-only dataset.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"ripple"
)

func main() {
	m := &ripple.Metrics{}
	store := ripple.NewMemStore(ripple.MemParts(4), ripple.MemMetrics(m))
	defer func() { _ = store.Close() }()

	// A shared dataset: user id -> activity score.
	activity, err := store.CreateTable("activity")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const users = 2000
	for u := 0; u < users; u++ {
		if err := activity.Put(u, rng.Intn(100)); err != nil {
			log.Fatal(err)
		}
	}
	// A co-placed profile table for the join.
	profiles, err := store.CreateTable("profiles", ripple.ConsistentWith("activity"))
	if err != nil {
		log.Fatal(err)
	}
	for u := 0; u < users; u += 2 { // only half the users have profiles
		if err := profiles.Put(u, fmt.Sprintf("user-%d", u)); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Collocated analytics without any job at all: count, reduce, join.
	active, err := ripple.CountTable(store, "activity", func(_, v any) bool {
		return v.(int) >= 50
	})
	if err != nil {
		log.Fatal(err)
	}
	total, err := ripple.ReduceTable(store, "activity", 0,
		func(acc any, _, v any) any { return acc.(int) + v.(int) },
		func(a, b any) any { return a.(int) + b.(int) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collocated scan: %d/%d active users, mean score %.1f\n",
		active, users, float64(total.(int))/users)

	before := m.Snapshot().MarshalledBytes
	matches, err := ripple.JoinTables(store, "profiles", "activity", func(p ripple.JoinPair) error {
		return nil // inspect p.Left (profile) and p.Right (score) here
	})
	if err != nil {
		log.Fatal(err)
	}
	moved := m.Snapshot().MarshalledBytes - before
	fmt.Printf("co-placement join: %d matches, %d bytes moved between partitions\n", matches, moved)

	// 2. An EBSP job over the same data, with live step observation: spread
	// each user's score to the next 3 user ids and keep a running max.
	engine := ripple.NewEngine(store, ripple.WithMetrics(m),
		ripple.WithObserver(ripple.StepObserverFunc(func(info ripple.StepInfo) {
			fmt.Printf("  step %d: %d messages emitted, max=%v (%.1fms)\n",
				info.Step, info.Emitted, info.Aggregates["max"],
				float64(info.Duration.Microseconds())/1000)
		})))
	job := &ripple.Job{
		Name:        "spread",
		StateTables: []string{"activity", "spread_out"},
		Aggregators: map[string]ripple.Aggregator{"max": ripple.IntMax{}},
		MaxSteps:    3,
		Compute: ripple.ComputeFunc(func(ctx *ripple.Context) bool {
			best := 0
			if v, ok := ctx.ReadState(0); ok {
				best = v.(int)
			}
			for _, msg := range ctx.InputMessages() {
				if s := msg.(int); s > best {
					best = s
				}
			}
			ctx.WriteState(1, best)
			ctx.AggregateValue("max", best)
			u := ctx.Key().(int)
			for d := 1; d <= 3; d++ {
				ctx.Send((u+d)%users, best)
			}
			return false
		}),
		Loaders: []ripple.Loader{&ripple.TableLoader{
			Table: "activity",
			Store: store,
			Each: func(k, _ any, lc *ripple.LoadContext) error {
				lc.Enable(k)
				return nil
			},
		}},
	}
	fmt.Println("running EBSP job with step observation:")
	if _, err := engine.Run(job); err != nil {
		log.Fatal(err)
	}

	// 3. Concurrent independent analyses over the shared dataset.
	fmt.Println("running 3 concurrent analyses over the shared dataset:")
	var wg sync.WaitGroup
	for j := 0; j < 3; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			e := ripple.NewEngine(store)
			name := fmt.Sprintf("bucket%d", j)
			threshold := 30 * (j + 1)
			var count int64
			var mu sync.Mutex
			_, err := e.Run(&ripple.Job{
				Name:        name,
				StateTables: []string{"activity", name + "_out"},
				Compute: ripple.ComputeFunc(func(ctx *ripple.Context) bool {
					if v, ok := ctx.ReadState(0); ok && v.(int) >= threshold {
						ctx.WriteState(1, v)
						mu.Lock()
						count++
						mu.Unlock()
					}
					return false
				}),
				Loaders: []ripple.Loader{&ripple.TableLoader{
					Table: "activity",
					Store: store,
					Each: func(k, _ any, lc *ripple.LoadContext) error {
						lc.Enable(k)
						return nil
					},
				}},
			})
			if err != nil {
				log.Fatalf("analysis %d: %v", j, err)
			}
			mu.Lock()
			fmt.Printf("  analysis %d: %d users with score >= %d\n", j, count, threshold)
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	fmt.Println("done; the shared activity table was never modified")
}

// Package tableops provides collocated bulk operations over Ripple key/value
// tables — the "other uses of the K/V store" the narrow SPI opens up (paper
// §III-A), including the co-placement join the paper contrasts with HaLoop's
// caching (§VI): because a store can guarantee consistent partitioning,
// joining two tables by key requires no data movement at all; every join
// probe is part-local mobile code.
//
// All operations run as PartConsumer agents, one per part in parallel,
// adjacent to the data.
package tableops

import (
	"errors"
	"fmt"

	"ripple/internal/kvstore"
)

// ErrNotCoPlaced is returned when a join's tables are not consistently
// partitioned.
var ErrNotCoPlaced = errors.New("tableops: tables are not co-placed")

// Filter copies the pairs satisfying pred from src into dst. dst must be
// co-placed with src (create it with ConsistentWith) so every write stays
// part-local.
func Filter(store kvstore.Store, src, dst string, pred func(key, value any) bool) (int, error) {
	return perPartPipe(store, src, dst, func(k, v any, put func(k, v any) error) error {
		if pred(k, v) {
			return put(k, v)
		}
		return nil
	})
}

// MapValues copies src into dst, transforming every value.
func MapValues(store kvstore.Store, src, dst string, f func(key, value any) any) (int, error) {
	return perPartPipe(store, src, dst, func(k, v any, put func(k, v any) error) error {
		return put(k, f(k, v))
	})
}

// perPartPipe streams src's pairs through fn with a part-local writer into
// dst, returning the number of pairs written.
func perPartPipe(store kvstore.Store, src, dst string,
	fn func(k, v any, put func(k, v any) error) error) (int, error) {

	srcTab, ok := store.LookupTable(src)
	if !ok {
		return 0, fmt.Errorf("%w: %q", kvstore.ErrNoTable, src)
	}
	if _, ok := store.LookupTable(dst); !ok {
		return 0, fmt.Errorf("%w: %q", kvstore.ErrNoTable, dst)
	}
	res, err := srcTab.EnumerateParts(kvstore.PartConsumerFuncs{
		ProcessFn: func(sv kvstore.ShardView) (any, error) {
			srcView, err := sv.View(src)
			if err != nil {
				return nil, err
			}
			dstView, err := sv.View(dst)
			if err != nil {
				return nil, err
			}
			n := 0
			err = srcView.Enumerate(func(k, v any) (bool, error) {
				return false, fn(k, v, func(k2, v2 any) error {
					n++
					return dstView.Put(k2, v2)
				})
			})
			return n, err
		},
		CombineFn: func(a, b any) (any, error) { return a.(int) + b.(int), nil },
	})
	if err != nil {
		return 0, err
	}
	return res.(int), nil
}

// JoinPair is one co-placed join match.
type JoinPair struct {
	Key         any
	Left, Right any
}

// Join performs an inner equi-join of two co-placed tables by key, invoking
// each for every key present in both. All probes are part-local: the join
// moves no data between parts (assert it with a metrics.Collector — the
// marshalled-bytes counter stays flat). Returns the number of matches.
func Join(store kvstore.Store, left, right string, each func(p JoinPair) error) (int, error) {
	lt, ok := store.LookupTable(left)
	if !ok {
		return 0, fmt.Errorf("%w: %q", kvstore.ErrNoTable, left)
	}
	rt, ok := store.LookupTable(right)
	if !ok {
		return 0, fmt.Errorf("%w: %q", kvstore.ErrNoTable, right)
	}
	if lt.Parts() != rt.Parts() && !rt.Ubiquitous() {
		return 0, fmt.Errorf("%w: %q has %d parts, %q has %d",
			ErrNotCoPlaced, left, lt.Parts(), right, rt.Parts())
	}
	res, err := lt.EnumerateParts(kvstore.PartConsumerFuncs{
		ProcessFn: func(sv kvstore.ShardView) (any, error) {
			lv, err := sv.View(left)
			if err != nil {
				return nil, err
			}
			rv, err := sv.View(right)
			if err != nil {
				if errors.Is(err, kvstore.ErrNotCoPlaced) {
					return nil, fmt.Errorf("%w: %v", ErrNotCoPlaced, err)
				}
				return nil, err
			}
			n := 0
			err = lv.Enumerate(func(k, l any) (bool, error) {
				r, ok, err := rv.Get(k)
				if err != nil {
					return false, err
				}
				if !ok {
					return false, nil
				}
				n++
				return false, each(JoinPair{Key: k, Left: l, Right: r})
			})
			return n, err
		},
		CombineFn: func(a, b any) (any, error) { return a.(int) + b.(int), nil },
	})
	if err != nil {
		return 0, err
	}
	return res.(int), nil
}

// JoinInto materializes an inner join into a co-placed destination table,
// combining matched values with merge.
func JoinInto(store kvstore.Store, left, right, dst string,
	merge func(key, l, r any) any) (int, error) {

	if _, ok := store.LookupTable(dst); !ok {
		return 0, fmt.Errorf("%w: %q", kvstore.ErrNoTable, dst)
	}
	lt, _ := store.LookupTable(left)
	if lt == nil {
		return 0, fmt.Errorf("%w: %q", kvstore.ErrNoTable, left)
	}
	res, err := lt.EnumerateParts(kvstore.PartConsumerFuncs{
		ProcessFn: func(sv kvstore.ShardView) (any, error) {
			lv, err := sv.View(left)
			if err != nil {
				return nil, err
			}
			rv, err := sv.View(right)
			if err != nil {
				return nil, err
			}
			dv, err := sv.View(dst)
			if err != nil {
				return nil, err
			}
			n := 0
			err = lv.Enumerate(func(k, l any) (bool, error) {
				r, ok, err := rv.Get(k)
				if err != nil || !ok {
					return false, err
				}
				n++
				return false, dv.Put(k, merge(k, l, r))
			})
			return n, err
		},
		CombineFn: func(a, b any) (any, error) { return a.(int) + b.(int), nil },
	})
	if err != nil {
		return 0, err
	}
	return res.(int), nil
}

// Reduce folds every pair of a table into a single value, computing partial
// results part-locally and combining them.
func Reduce(store kvstore.Store, table string, zero any,
	fold func(acc any, key, value any) any, combine func(a, b any) any) (any, error) {

	t, ok := store.LookupTable(table)
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, table)
	}
	return t.EnumerateParts(kvstore.PartConsumerFuncs{
		ProcessFn: func(sv kvstore.ShardView) (any, error) {
			view, err := sv.View(table)
			if err != nil {
				return nil, err
			}
			acc := zero
			err = view.Enumerate(func(k, v any) (bool, error) {
				acc = fold(acc, k, v)
				return false, nil
			})
			return acc, err
		},
		CombineFn: func(a, b any) (any, error) { return combine(a, b), nil },
	})
}

// Count reports how many pairs satisfy pred.
func Count(store kvstore.Store, table string, pred func(key, value any) bool) (int, error) {
	res, err := Reduce(store, table, 0,
		func(acc any, k, v any) any {
			if pred == nil || pred(k, v) {
				return acc.(int) + 1
			}
			return acc
		},
		func(a, b any) any { return a.(int) + b.(int) })
	if err != nil {
		return 0, err
	}
	return res.(int), nil
}

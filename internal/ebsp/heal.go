package ebsp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/mq"
	"ripple/internal/trace"
)

// Self-healing execution: the engine classifies store/mq errors as retryable
// (transient — the operation had no effect) vs fatal, retries retryable
// operations with bounded deterministic backoff, and — when a store failover
// is detected mid-job — heals replication and re-runs from the last
// checkpoint inside Run, internalizing what used to require a manual Resume.

// isTransient reports whether err is a retryable transient failure: the
// failed operation did not take effect.
func isTransient(err error) bool {
	return errors.Is(err, kvstore.ErrTransient) || errors.Is(err, mq.ErrTransient)
}

// isFailover reports whether err indicates a failed shard primary — the
// trigger for heal-and-rerun recovery.
func isFailover(err error) bool {
	return errors.Is(err, kvstore.ErrShardFailed)
}

// retryBackoff is the deterministic bounded backoff curve before retry
// `attempt` (1-based): 200µs, 400µs, 800µs, ... capped at 5ms.
func retryBackoff(attempt int) time.Duration {
	d := 100 * time.Microsecond << attempt
	if d > 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}

// retryJitter maps the retry coordinates to a deterministic fraction in
// [0,1): fnv64a over the coordinates, then the splitmix64 finalizer for
// avalanche — the same recipe the chaos injector uses, so a fault trace
// replayed under a fixed seed sleeps the exact same jittered intervals.
func retryJitter(seed int64, job string, step, part, attempt int) float64 {
	h := fnv.New64a()
	h.Write([]byte(job))
	var buf [32]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(int64(step)))
	binary.BigEndian.PutUint64(buf[16:], uint64(int64(part)))
	binary.BigEndian.PutUint64(buf[24:], uint64(int64(attempt)))
	h.Write(buf[:])
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// backoffFor is retryBackoff's curve stretched by a seeded per-(job, step,
// part, attempt) factor in [0.5, 1.5): concurrent part retries decorrelate
// instead of hammering a recovering shard in lockstep, while a fixed seed
// keeps the whole schedule reproducible.
func (e *Engine) backoffFor(job string, step, part, attempt int) time.Duration {
	base := retryBackoff(attempt)
	return time.Duration(float64(base) * (0.5 + retryJitter(e.jitterSeed, job, step, part, attempt)))
}

// retryOp runs f, retrying transient failures up to e.retries times with
// retryBackoff between attempts. A still-transient error after the last
// attempt is de-tagged (the transient marker is stripped) so an outer,
// non-idempotent boundary never retries an operation whose effects are
// unknown. The (job, step, part) coordinates attribute the faults and retries
// to the profiler record they delayed (step/part -1 for operations outside
// any part-step: loaders, exporters, checkpoints).
func (e *Engine) retryOp(job string, step, part int, f func() error) error {
	err := f()
	if err != nil && isTransient(err) {
		e.prof.AddFault(job, step, part)
	}
	for attempt := 1; err != nil && isTransient(err) && attempt <= e.retries; attempt++ {
		backoff := e.backoffFor(job, step, part, attempt)
		e.metrics.AddRetries(1)
		e.tracer.Record(trace.KindRetry, job, step, part, int64(attempt), backoff)
		e.prof.AddRetry(job, step, part)
		if e.logger != nil {
			e.logger.Debug("transient fault, retrying operation",
				"job", job, "step", step, "part", part, "attempt", attempt, "err", err.Error())
		}
		time.Sleep(backoff)
		err = f()
		if err != nil && isTransient(err) {
			e.prof.AddFault(job, step, part)
		}
	}
	if err != nil && isTransient(err) {
		if e.logger != nil {
			e.logger.Warn("retries exhausted",
				"job", job, "step", step, "part", part, "attempts", e.retries+1, "err", err.Error())
		}
		return fmt.Errorf("ebsp: retries exhausted after %d attempts: %v", e.retries+1, err)
	}
	return err
}

// autoRecoverable reports whether a sync-run failure should trigger
// heal-and-rerun: a shard failover with checkpoints to recover from, within
// the rerun budget.
func (run *jobRun) autoRecoverable(err error, reruns int) bool {
	return isFailover(err) && run.engine.checkpointEvery > 0 && reruns < run.engine.retries
}

// checkFailover samples the store's failover sensor after a completed step.
// For a non-transactional job with checkpoints, a bump means the step's
// writes may have died with the primary, so it escalates to heal-and-rerun
// (wrapping kvstore.ErrShardFailed); transactional fast-recovery jobs replay
// failed part-steps themselves and just keep going.
func (run *jobRun) checkFailover(step int) error {
	if run.sensor == nil {
		return nil
	}
	now := run.sensor.Failovers()
	if now == run.sensedFailovers {
		return nil
	}
	delta := now - run.sensedFailovers
	run.sensedFailovers = now
	if run.strategy.FastRecovery || run.engine.checkpointEvery == 0 {
		return nil
	}
	return fmt.Errorf("ebsp: job %q: %d failover(s) detected after step %d: %w",
		run.job.Name, delta, step, kvstore.ErrShardFailed)
}

// recoverAndRerun heals replication under the job's tables, restores the
// last checkpoint, and re-runs the sync loop from it. The caller (RunContext)
// bounds how often this is attempted.
func (run *jobRun) recoverAndRerun(cause error) (*Result, error) {
	e := run.engine
	start := time.Now()
	if h, ok := e.store.(kvstore.Healer); ok {
		if err := h.Heal(run.placement.Name()); err != nil {
			return nil, fmt.Errorf("ebsp: heal %q after %v: %w", run.placement.Name(), cause, err)
		}
		if run.refTable != nil {
			if err := h.Heal(run.refTable.Name()); err != nil {
				return nil, fmt.Errorf("ebsp: heal %q after %v: %w", run.refTable.Name(), cause, err)
			}
		}
	}
	if run.sensor != nil {
		// Absorb the failovers the recovery itself observed.
		run.sensedFailovers = run.sensor.Failovers()
	}
	meta, err := e.loadCheckpoint(run.job)
	if err != nil {
		return nil, fmt.Errorf("ebsp: auto-recovery after %v: %w", cause, err)
	}
	if err := run.restoreCheckpoint(meta); err != nil {
		return nil, fmt.Errorf("ebsp: auto-recovery after %v: %w", cause, err)
	}
	rerun := int64(run.lastStep - meta.Step)
	if rerun < 0 {
		rerun = 0
	}
	e.metrics.AddStepsRerun(rerun)
	// Tail policy: failover recovery always records, with the run's trace
	// context attached when sampled, so post-hoc lineage shows the rerun.
	e.tracer.RecordSpan(trace.Span{
		Kind: trace.KindFailoverRecovery, Job: run.job.Name, Step: meta.Step, Part: -1,
		N: rerun, Dur: time.Since(start), Trace: run.traceID, Parent: run.rootSpan,
	})
	run.log.Warn("shard failover: healed and re-running from checkpoint",
		"cause", cause.Error(), "checkpoint_step", meta.Step, "steps_rerun", rerun,
		"recovery_dur", time.Since(start))
	return run.syncLoop(meta.Step, meta.Pending)
}

package pagerank

import (
	"testing"

	"ripple/internal/diskstore"
	"ripple/internal/ebsp"
	"ripple/internal/gridstore"
	"ripple/internal/kvstore"
)

// TestDirectOnGridstore and TestDirectOnDiskstore prove the evaluation app
// runs unchanged on every store behind the SPI.
func TestDirectOnGridstore(t *testing.T) {
	g := genGraph(t, 150, 900, 41)
	store := gridstore.New(gridstore.WithParts(6))
	t.Cleanup(func() { _ = store.Close() })
	e := ebsp.NewEngine(store)
	tab, err := LoadGraph(store, "g", g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDirect(e, Config{GraphTable: "g", Iterations: 5}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(g, 0.85, 5)
	if rel := maxRelErr(t, got, want); rel > 1e-9 {
		t.Errorf("gridstore relative error = %g", rel)
	}
}

func TestDirectOnDiskstore(t *testing.T) {
	g := genGraph(t, 120, 700, 43)
	dir := t.TempDir()
	store, err := diskstore.New(dir, diskstore.WithParts(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = store.Close() })
	e := ebsp.NewEngine(store)
	tab, err := LoadGraph(store, "g", g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDirect(e, Config{GraphTable: "g", Iterations: 4}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(g, 0.85, 4)
	if rel := maxRelErr(t, got, want); rel > 1e-9 {
		t.Errorf("diskstore relative error = %g", rel)
	}
	// The ranked table is durable: reopen and read it back.
	_ = store.Close()
	store2, err := diskstore.New(dir, diskstore.WithParts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = store2.Close() }()
	tab2, err := store2.CreateTable("g", kvstore.WithParts(4))
	if err != nil {
		t.Fatal(err)
	}
	got2 := map[int]float64{}
	pairs, _ := kvstore.Dump(tab2)
	for k, v := range pairs {
		got2[k.(int)] = v.(Ranked).Rank
	}
	if rel := maxRelErr(t, got2, want); rel > 1e-9 {
		t.Errorf("reopened ranks error = %g", rel)
	}
}

package diskstore

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"ripple/internal/kvstore"
)

// TestCrashRecoveryProperty kills the store at seeded pseudorandom points —
// mid-put (torn, unsynced WAL tail), mid-memtable-flush, and mid-compaction
// (via the crash hook that fails every durability stage from the crash
// instant on) — and checks the recovery invariants on reopen: the store
// opens without error (no torn SSTable is ever loaded, crash orphans are
// swept), every acknowledged durable write is present at its acknowledged
// value (modulo the one in-flight write the crash interrupted), and a
// garbage WAL tail is clipped, not fatal.
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, err := New(dir, WithMemtableBudget(minMemtable), WithSyncEvery(1))
			if err != nil {
				t.Fatal(err)
			}
			// Sticky crash: from the Nth durability stage on, every flush and
			// compaction step fails, as if the process died at that instant.
			crashAt := int32(1 + rng.Intn(25))
			var stage atomic.Int32
			s.crashHook = func(st, _ string, _ int) error {
				if stage.Add(1) >= crashAt {
					return fmt.Errorf("simulated crash at %s", st)
				}
				return nil
			}
			tab, err := s.CreateTable("t", kvstore.WithParts(2))
			if err != nil {
				t.Fatal(err)
			}

			acked := make(map[int]string)   // latest acknowledged value
			deleted := make(map[int]bool)   // acknowledged tombstones
			crashKey, crashVal := -1, ""    // the one in-flight (unacked) write
			crashDelete := false
			for i := 0; i < 400; i++ {
				op, key := rng.Intn(10), rng.Intn(120)
				switch {
				case op < 8:
					crashKey, crashVal, crashDelete = key, fmt.Sprintf("v%d-%d", key, i), false
					if err := tab.Put(key, crashVal); err != nil {
						goto crashed
					}
					acked[key] = crashVal
					delete(deleted, key)
				case op == 8:
					crashKey, crashDelete = key, true
					if err := tab.Delete(key); err != nil {
						goto crashed
					}
					delete(acked, key)
					deleted[key] = true
				default:
					if err := s.Compact("t"); err != nil {
						crashKey = -1 // no in-flight write
						goto crashed
					}
				}
				crashKey = -1
			}
		crashed:
			// Abandon the store as a kill would: stop the background loops but
			// flush nothing — buffered WAL bytes are lost, the memtable dies.
			s.compactor.stop()
			s.syncer.stop()

			// Half the seeds also tear the WAL tail with garbage bytes, the
			// on-disk shape of a write cut off by the power failing.
			if rng.Intn(2) == 0 {
				f, err := openAppend(s.logPath("t", rng.Intn(2)))
				if err != nil {
					t.Fatal(err)
				}
				garbage := make([]byte, 1+rng.Intn(40))
				for i := range garbage {
					garbage[i] = 0xFF
				}
				if _, err := f.Write(garbage); err != nil {
					t.Fatal(err)
				}
				_ = f.Close()
			}

			s2, err := New(dir, WithMemtableBudget(minMemtable))
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := s2.Close(); err != nil {
					t.Errorf("clean close after recovery: %v", err)
				}
			}()
			tab2, err := s2.CreateTable("t", kvstore.WithParts(2))
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			for key, want := range acked {
				got, ok, err := tab2.Get(key)
				if err != nil {
					t.Fatalf("Get(%d): %v", key, err)
				}
				if !ok {
					t.Errorf("acked key %d lost", key)
					continue
				}
				// The interrupted write was never acknowledged; it may or may
				// not have reached the WAL, so either value is legal for its
				// key — but nothing else is.
				if got != want && !(key == crashKey && !crashDelete && got == crashVal) {
					t.Errorf("key %d = %q, want %q", key, got, want)
				}
			}
			for key := range deleted {
				got, ok, err := tab2.Get(key)
				if err != nil {
					t.Fatalf("Get(%d): %v", key, err)
				}
				if ok && !(key == crashKey && !crashDelete && got == crashVal) {
					t.Errorf("acked-deleted key %d resurrected as %q", key, got)
				}
			}
		})
	}
}

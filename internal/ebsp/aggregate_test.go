package ebsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuiltinAggregators(t *testing.T) {
	cases := []struct {
		name string
		agg  Aggregator
		a, b any
		want any
	}{
		{"IntSum", IntSum{}, 3, 4, 7},
		{"Int64Sum", Int64Sum{}, int64(3), int64(4), int64(7)},
		{"Float64Sum", Float64Sum{}, 1.5, 2.25, 3.75},
		{"IntMax", IntMax{}, 3, 9, 9},
		{"IntMin", IntMin{}, 3, 9, 3},
		{"Float64Max", Float64Max{}, 1.5, -2.0, 1.5},
		{"Float64Min", Float64Min{}, 1.5, -2.0, -2.0},
		{"BoolOr", BoolOr{}, false, true, true},
		{"BoolAnd", BoolAnd{}, true, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.agg.Combine(c.a, c.b); got != c.want {
				t.Errorf("Combine(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
			// The zero must be an identity for the aggregation.
			if got := c.agg.Combine(c.agg.Zero(), c.a); got != c.a {
				t.Errorf("Combine(Zero, %v) = %v, want identity", c.a, got)
			}
			if got := c.agg.Combine(c.a, c.agg.Zero()); got != c.a {
				t.Errorf("Combine(%v, Zero) = %v, want identity", c.a, got)
			}
		})
	}
}

func TestFloatAggregatorZeroIdentities(t *testing.T) {
	if z := (Float64Max{}).Zero().(float64); !math.IsInf(z, -1) {
		t.Errorf("Float64Max zero = %v", z)
	}
	if z := (Float64Min{}).Zero().(float64); !math.IsInf(z, 1) {
		t.Errorf("Float64Min zero = %v", z)
	}
}

func TestIntSumAssociativityProperty(t *testing.T) {
	f := func(a, b, c int32) bool {
		agg := IntSum{}
		l := agg.Combine(agg.Combine(int(a), int(b)), int(c))
		r := agg.Combine(int(a), agg.Combine(int(b), int(c)))
		return l == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxCommutativityProperty(t *testing.T) {
	f := func(a, b int) bool {
		mx := IntMax{}
		mn := IntMin{}
		return mx.Combine(a, b) == mx.Combine(b, a) &&
			mn.Combine(a, b) == mn.Combine(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

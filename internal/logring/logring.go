// Package logring is the structured-logging counterpart of the trace ring:
// a bounded, in-memory buffer of slog records with an HTTP introspection
// endpoint, so a running engine's recent log lines are inspectable at
// /debug/logz next to /debug/profilez without any log shipping. The ring
// holds fully-resolved records (message, level, flattened attributes), so
// snapshots are cheap JSON and never hold references into caller state.
package logring

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record is one retained log line. Attrs are flattened: grouped attributes
// appear as "group.key". Values are resolved at Handle time.
type Record struct {
	Time  time.Time      `json:"time"`
	Level string         `json:"level"`
	Msg   string         `json:"msg"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Ring retains the most recent records in a fixed-capacity buffer,
// overwriting the oldest when full. Safe for concurrent use.
type Ring struct {
	mu      sync.Mutex
	buf     []Record
	next    int
	dropped uint64
	wrapped bool
}

// DefaultCapacity is used when New is given a non-positive capacity.
const DefaultCapacity = 4096

// New creates a ring retaining at most capacity records (DefaultCapacity
// if capacity <= 0).
func New(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{buf: make([]Record, 0, capacity)}
}

// Append retains one record, evicting the oldest when full.
func (r *Ring) Append(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % len(r.buf)
		r.dropped++
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Len reports the number of retained records.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped reports how many records were evicted by ring wraparound.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot copies the retained records, oldest first.
func (r *Ring) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Reset discards all retained records.
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.dropped = 0
	r.wrapped = false
	r.mu.Unlock()
}

// Handler returns a slog.Handler that appends records at or above level to
// the ring. Pass it to slog.New directly, or combine with a terminal
// handler via Fanout.
func (r *Ring) Handler(level slog.Leveler) slog.Handler {
	if level == nil {
		level = slog.LevelInfo
	}
	return &ringHandler{ring: r, level: level}
}

type ringHandler struct {
	ring   *Ring
	level  slog.Leveler
	attrs  map[string]any // accumulated WithAttrs state, already flattened
	prefix string         // accumulated WithGroup state, "a.b."
}

func (h *ringHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

func (h *ringHandler) Handle(_ context.Context, rec slog.Record) error {
	attrs := make(map[string]any, len(h.attrs)+rec.NumAttrs())
	for k, v := range h.attrs {
		attrs[k] = v
	}
	rec.Attrs(func(a slog.Attr) bool {
		flatten(attrs, h.prefix, a)
		return true
	})
	t := rec.Time
	if t.IsZero() {
		t = time.Now()
	}
	h.ring.Append(Record{Time: t, Level: rec.Level.String(), Msg: rec.Message, Attrs: attrs})
	return nil
}

func (h *ringHandler) WithAttrs(as []slog.Attr) slog.Handler {
	nh := h.clone()
	for _, a := range as {
		flatten(nh.attrs, nh.prefix, a)
	}
	return nh
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := h.clone()
	nh.prefix += name + "."
	return nh
}

func (h *ringHandler) clone() *ringHandler {
	attrs := make(map[string]any, len(h.attrs)+4)
	for k, v := range h.attrs {
		attrs[k] = v
	}
	return &ringHandler{ring: h.ring, level: h.level, attrs: attrs, prefix: h.prefix}
}

func flatten(into map[string]any, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		p := prefix
		if a.Key != "" {
			p = prefix + a.Key + "."
		}
		for _, ga := range v.Group() {
			flatten(into, p, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	into[prefix+a.Key] = v.Any()
}

// Fanout returns a handler that forwards every record to all of hs —
// typically a terminal text handler plus a ring. Enabled when any target
// is; each target still applies its own level filter.
func Fanout(hs ...slog.Handler) slog.Handler {
	return fanout(hs)
}

type fanout []slog.Handler

func (f fanout) Enabled(ctx context.Context, level slog.Level) bool {
	for _, h := range f {
		if h.Enabled(ctx, level) {
			return true
		}
	}
	return false
}

func (f fanout) Handle(ctx context.Context, rec slog.Record) error {
	var first error
	for _, h := range f {
		if !h.Enabled(ctx, rec.Level) {
			continue
		}
		if err := h.Handle(ctx, rec.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f fanout) WithAttrs(as []slog.Attr) slog.Handler {
	out := make(fanout, len(f))
	for i, h := range f {
		out[i] = h.WithAttrs(as)
	}
	return out
}

func (f fanout) WithGroup(name string) slog.Handler {
	out := make(fanout, len(f))
	for i, h := range f {
		out[i] = h.WithGroup(name)
	}
	return out
}

// logzResponse is the /debug/logz JSON body.
type logzResponse struct {
	Records int      `json:"records"`
	Dropped uint64   `json:"dropped"`
	Logs    []Record `json:"logs"`
}

// HTTPHandler serves the ring's retained records as JSON. Query
// parameters: ?n=N keeps only the newest N records, ?level=warn keeps
// records at or above a level, ?q=substr filters on the message text.
func HTTPHandler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		logs := r.Snapshot()
		if q := req.URL.Query().Get("level"); q != "" {
			var min slog.Level
			if err := min.UnmarshalText([]byte(q)); err == nil {
				kept := logs[:0]
				for _, rec := range logs {
					var lv slog.Level
					if lv.UnmarshalText([]byte(rec.Level)) == nil && lv >= min {
						kept = append(kept, rec)
					}
				}
				logs = kept
			}
		}
		if q := req.URL.Query().Get("q"); q != "" {
			kept := logs[:0]
			for _, rec := range logs {
				if strings.Contains(rec.Msg, q) {
					kept = append(kept, rec)
				}
			}
			logs = kept
		}
		if v := req.URL.Query().Get("n"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 && len(logs) > n {
				logs = logs[len(logs)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(logzResponse{Records: len(logs), Dropped: r.Dropped(), Logs: logs})
	})
}

// Attach registers the ring's introspection endpoint on mux at /debug/logz,
// mirroring profile.AttachDebug's explicit registration style.
func Attach(mux *http.ServeMux, r *Ring) {
	mux.Handle("/debug/logz", HTTPHandler(r))
}

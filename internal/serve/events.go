package serve

import "sync"

// Event is one job-scoped notification: a status transition, a synchronized
// step, or a no-sync progress watermark. Events are sequenced per job and
// replayed to late subscribers, so an SSE client attaching after completion
// still sees the whole story.
type Event struct {
	Seq  int64          `json:"seq"`
	Type string         `json:"type"` // "status" | "step" | "progress"
	Job  string         `json:"job"`
	Data map[string]any `json:"data,omitempty"`
}

// terminal reports whether the event announces a final job status.
func (e Event) terminal() bool {
	if e.Type != "status" {
		return false
	}
	switch e.Data["status"] {
	case StatusDone, StatusFailed, StatusCanceled:
		return true
	}
	return false
}

// maxEventHistory bounds the per-job replay buffer; the oldest events are
// dropped first (long no-sync runs can cross many watermarks).
const maxEventHistory = 512

// hub fans job events out to SSE subscribers and keeps a bounded per-job
// history for replay.
type hub struct {
	mu   sync.Mutex
	jobs map[string]*jobStream
}

type jobStream struct {
	nextSeq int64
	history []Event
	subs    map[chan Event]struct{}
}

func newHub() *hub {
	return &hub{jobs: make(map[string]*jobStream)}
}

func (h *hub) stream(job string) *jobStream {
	js, ok := h.jobs[job]
	if !ok {
		js = &jobStream{subs: make(map[chan Event]struct{})}
		h.jobs[job] = js
	}
	return js
}

// publish appends one event and delivers it to current subscribers. A
// subscriber too slow to drain its buffer loses intermediate events rather
// than stalling the engine's observer path; the terminal status event is the
// only one the SSE layer depends on, and the buffer is far deeper than the
// burst between two flushes.
func (h *hub) publish(job, typ string, data map[string]any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	js := h.stream(job)
	ev := Event{Seq: js.nextSeq, Type: typ, Job: job, Data: data}
	js.nextSeq++
	js.history = append(js.history, ev)
	if len(js.history) > maxEventHistory {
		js.history = js.history[len(js.history)-maxEventHistory:]
	}
	for ch := range js.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe returns the job's replayable history plus a live channel;
// cancel unregisters (idempotent).
func (h *hub) subscribe(job string) (replay []Event, ch chan Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	js := h.stream(job)
	replay = append([]Event(nil), js.history...)
	ch = make(chan Event, 256)
	js.subs[ch] = struct{}{}
	return replay, ch, func() {
		h.mu.Lock()
		delete(js.subs, ch)
		h.mu.Unlock()
	}
}

// Package diskstore implements the Ripple KVStore SPI on local disk as a
// log-structured merge (LSM) engine: each table part is a size-bounded
// in-memory memtable in front of a checksummed write-ahead log, flushed into
// immutable SSTable runs (sorted blocks + sparse index + bloom filter) that a
// background goroutine merges level by level. A tiny per-part manifest names
// the live runs, so open replays only the WAL tail — open time is bounded by
// the memtable budget, not by table history — and the working set can exceed
// memory by any factor the disk affords.
//
// It stands in for the paper's HBase adapter (§IV-B): a store with a very
// different cost profile behind the same narrow SPI, demonstrating the store
// portability the paper argues for. It intentionally offers no replication
// or transactions — the EBSP engine must work against the minimum SPI
// surface.
package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/trace"
)

// DiskInjector is the disk fault-injection hook (implemented by
// chaos.Injector): FsyncFault is consulted before every WAL or SSTable
// fsync and may delay it or fail it with a retryable error; TornTail is
// consulted when a WAL is opened and returns how many tail bytes to clip,
// simulating a torn write from the previous crash.
type DiskInjector interface {
	FsyncFault(table string, part int) (delay time.Duration, err error)
	TornTail(table string, part int) (clipBytes int)
}

// Option configures a Store.
type Option func(*Store)

// WithParts sets the default part count for new tables (default 4).
func WithParts(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.defaultParts = n
		}
	}
}

// WithMetrics attaches a metrics collector; the LSM instruments
// (ripple_lsm_*) hang off it.
func WithMetrics(m *metrics.Collector) Option {
	return func(s *Store) { s.metrics = m }
}

// WithTracer attaches an event tracer recording WAL replays on table open,
// memtable flushes, and run compactions.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Store) { s.tracer = t }
}

// WithMemtableBudget bounds each table's in-memory footprint: a table's
// budget is divided evenly among its parts, and a part whose memtable
// exceeds its share is flushed to an SSTable run. The default is 8 MiB per
// table. Setting a budget far below the data size is how the store runs
// out-of-core.
func WithMemtableBudget(bytes int64) Option {
	return func(s *Store) {
		if bytes > 0 {
			s.memBudget = bytes
		}
	}
}

// WithSyncEvery makes every nth acknowledged write per part wait for its WAL
// records to be fsynced (n=1: every write is durable against power loss when
// Put returns). Zero, the default, fsyncs only at Flush, memtable flushes,
// and Close. The fsync rides the store's group-commit loop, so concurrent
// writers share one disk sync.
func WithSyncEvery(n int) Option {
	return func(s *Store) {
		if n >= 0 {
			s.syncEvery = n
		}
	}
}

// WithGroupCommitWindow stretches each group-commit batch: after the first
// waiter arrives the committer lingers w before syncing, trading commit
// latency for larger batches. The default (0) batches only what accumulates
// naturally while the previous fsync is in flight.
func WithGroupCommitWindow(w time.Duration) Option {
	return func(s *Store) {
		if w > 0 {
			s.gcWindow = w
		}
	}
}

// WithoutGroupCommit makes each durable write fsync inline instead of
// riding the group-commit loop. It exists as the benchmark baseline that
// shows what group commit buys; there is no good production reason to use
// it.
func WithoutGroupCommit() Option {
	return func(s *Store) { s.noGroup = true }
}

// WithDiskInjector wires a disk fault injector into fsyncs and WAL opens.
func WithDiskInjector(di DiskInjector) Option {
	return func(s *Store) { s.injector = di }
}

const (
	defaultMemBudget = 8 << 20
	// minMemtable keeps a degenerate budget from flushing every write.
	minMemtable = 4 << 10
	// compactTrigger: a level with this many runs is merged into one run at
	// the next level down.
	compactTrigger = 4
)

// Store is the disk-backed store. All data live under its base directory.
type Store struct {
	dir          string
	dirFile      *os.File
	defaultParts int
	metrics      *metrics.Collector
	tracer       *trace.Tracer
	memBudget    int64
	syncEvery    int
	gcWindow     time.Duration
	noGroup      bool
	injector     DiskInjector

	// crashHook, when set by a test, is consulted at the named stages of
	// flushes and compactions; returning an error abandons the operation
	// mid-state, simulating a process kill at that instant.
	crashHook func(stage, table string, part int) error

	syncer    *syncer
	compactor *compactor

	mu     sync.Mutex
	closed bool
	tables map[string]*table
	order  []string
	nextID int
}

var _ kvstore.Store = (*Store)(nil)

func errClosed() error { return kvstore.ErrClosed }

func (s *Store) lsm() *metrics.LSMStats { return s.metrics.LSM() }

type group struct {
	id     string
	parts  int
	hasher codec.Hasher
	shards []*shard
}

// shard owns the part state (one per member table) for one part.
type shard struct {
	part int
	mu   sync.Mutex
	logs map[string]*partLog // table name -> part state
}

// partLog is one table-part of the LSM tree: the WAL + memtable head and the
// immutable runs below it. Fields are guarded by the owning shard's mutex
// except where noted.
type partLog struct {
	store  *Store
	sh     *shard
	table  string
	part   int
	memCap int64

	wal     *wal
	mem     *memtable
	runs    []*sstable // newest first
	nextSeq uint64
	dropped bool

	unsynced atomic.Int64 // durable-write cadence counter (WithSyncEvery > 1)
	mergeMu  sync.Mutex   // serializes merges on this part (not sh.mu)
}

// New creates (or reopens) a Store rooted at dir. Existing table files under
// dir are NOT auto-discovered; CreateTable with a name whose files exist
// loads them (runs from the manifest, then the WAL tail replayed on top).
func New(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: mkdir %s: %w", dir, err)
	}
	s := &Store{
		dir:          dir,
		defaultParts: 4,
		memBudget:    defaultMemBudget,
		tables:       make(map[string]*table),
	}
	for _, o := range opts {
		o(s)
	}
	// Directory handle for fsyncing renames; best-effort where the platform
	// does not support it.
	s.dirFile, _ = os.Open(dir)
	s.syncer = newSyncer(s)
	s.compactor = newCompactor(s)
	return s, nil
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "diskstore" }

// DefaultParts implements kvstore.Store.
func (s *Store) DefaultParts() int { return s.defaultParts }

// syncDir fsyncs the store directory so file renames are durable.
func (s *Store) syncDir() {
	if s.dirFile != nil {
		_ = s.dirFile.Sync()
	}
}

func (s *Store) hook(stage, table string, part int) error {
	if s.crashHook == nil {
		return nil
	}
	return s.crashHook(stage, table, part)
}

// CreateTable implements kvstore.Store. If files for the table already exist
// under the store directory they are loaded, making the previous contents
// visible again: manifest-listed runs are opened (no data read), and only
// the WAL tail is replayed.
func (s *Store) CreateTable(name string, opts ...kvstore.TableOption) (kvstore.Table, error) {
	cfg := kvstore.ApplyOptions(s.defaultParts, opts)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, kvstore.ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrTableExists, name)
	}
	var g *group
	if cfg.ConsistentWith != "" {
		base, ok := s.tables[cfg.ConsistentWith]
		if !ok {
			return nil, fmt.Errorf("%w: consistent-with %q", kvstore.ErrNoTable, cfg.ConsistentWith)
		}
		g = base.group
	} else {
		s.nextID++
		g = &group{id: fmt.Sprintf("g%d", s.nextID), parts: cfg.Parts, hasher: cfg.Hasher}
		for p := 0; p < cfg.Parts; p++ {
			g.shards = append(g.shards, &shard{part: p, logs: make(map[string]*partLog)})
		}
	}
	t := &table{store: s, name: name, group: g, ubiquitous: cfg.Ubiquitous}
	parts := g.parts
	if cfg.Ubiquitous {
		parts = 1
	}
	for p := 0; p < parts; p++ {
		pl, err := s.openPartLog(name, p, parts)
		if err != nil {
			return nil, err
		}
		sh := g.shards[p]
		pl.sh = sh
		sh.mu.Lock()
		sh.logs[name] = pl
		sh.mu.Unlock()
	}
	s.tables[name] = t
	s.order = append(s.order, name)
	return t, nil
}

func (s *Store) logPath(table string, part int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.%d.log", table, part))
}

func (s *Store) sstPath(table string, part int, seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.%d.%d.sst", table, part, seq))
}

func (s *Store) manifestPath(table string, part int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.%d.manifest", table, part))
}

// removeOrphans deletes this part's .sst files that the manifest does not
// list (crash leftovers from an interrupted flush or compaction) and any
// stale .tmp files. With live == nil everything is removed (DropTable).
func (s *Store) removeOrphans(table string, part int, live map[uint64]bool) {
	prefix := fmt.Sprintf("%s.%d.", table, part)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		switch {
		case strings.HasSuffix(rest, ".sst"):
			seq, err := strconv.ParseUint(strings.TrimSuffix(rest, ".sst"), 10, 64)
			if err != nil {
				continue // a dotted sibling table's file, not ours
			}
			if live == nil || !live[seq] {
				_ = os.Remove(filepath.Join(s.dir, name))
			}
		case strings.HasSuffix(rest, ".tmp") && !strings.Contains(strings.TrimSuffix(rest, ".tmp"), "."):
			_ = os.Remove(filepath.Join(s.dir, name))
		case strings.HasSuffix(rest, ".sst.tmp"):
			if _, err := strconv.ParseUint(strings.TrimSuffix(rest, ".sst.tmp"), 10, 64); err == nil {
				_ = os.Remove(filepath.Join(s.dir, name))
			}
		}
	}
}

// openPartLog loads one table-part: runs named by the manifest, crash
// orphans removed, and the WAL tail replayed into a fresh memtable. The
// partLog is not yet published, so no locking is needed.
func (s *Store) openPartLog(table string, part, parts int) (*partLog, error) {
	memCap := s.memBudget / int64(parts)
	if memCap < minMemtable {
		memCap = minMemtable
	}
	pl := &partLog{
		store:   s,
		table:   table,
		part:    part,
		memCap:  memCap,
		mem:     newMemtable(),
		nextSeq: 1,
	}
	fail := func(err error) (*partLog, error) {
		for _, r := range pl.runs {
			_ = r.close()
		}
		if pl.wal != nil {
			_ = pl.wal.close()
		}
		return nil, err
	}
	m, ok, err := readManifest(s.manifestPath(table, part))
	if err != nil {
		return nil, err
	}
	live := make(map[uint64]bool, len(m.Runs))
	if ok {
		if m.NextSeq > pl.nextSeq {
			pl.nextSeq = m.NextSeq
		}
		for _, mr := range m.Runs {
			run, err := openSST(s.sstPath(table, part, mr.Seq), mr.Seq, mr.Level)
			if err != nil {
				// The manifest is only written after the run it names is
				// durable, so a missing or torn manifest-listed run is real
				// corruption, not a crash artifact.
				return fail(fmt.Errorf("diskstore: open run %s.%d seq %d: %w", table, part, mr.Seq, err))
			}
			pl.runs = append(pl.runs, run)
			live[mr.Seq] = true
			if mr.Seq >= pl.nextSeq {
				pl.nextSeq = mr.Seq + 1
			}
		}
	}
	s.removeOrphans(table, part, live)

	w, err := openWAL(s.logPath(table, part))
	if err != nil {
		return fail(err)
	}
	pl.wal = w
	if inj := s.injector; inj != nil {
		if clip := inj.TornTail(table, part); clip > 0 {
			if st, err := w.file.Stat(); err == nil && st.Size() > 0 {
				n := st.Size() - int64(clip)
				if n < 0 {
					n = 0
				}
				_ = w.file.Truncate(n)
			}
		}
	}
	start := time.Now()
	replayed, err := w.replay(func(op byte, kbuf, vbuf []byte) error {
		key, err := codec.Decode(kbuf)
		if err != nil {
			return fmt.Errorf("diskstore: replay %s: %w", s.logPath(table, part), err)
		}
		pl.mem.set(key, kbuf, vbuf, op == opDelete)
		return nil
	})
	if err != nil {
		return fail(err)
	}
	if replayed > 0 {
		s.tracer.Record(trace.KindLogReplay, table, 0, part, replayed, time.Since(start))
	}
	s.lsm().MemtableBytes().Add(pl.mem.bytes)
	for _, r := range pl.runs {
		s.lsm().RunCounts().Add(r.level, 1)
	}
	if pl.mem.bytes >= pl.memCap {
		if err := pl.flushLocked(); err != nil {
			s.lsm().MemtableBytes().Add(-pl.mem.bytes)
			for _, r := range pl.runs {
				s.lsm().RunCounts().Add(r.level, -1)
			}
			return fail(err)
		}
	}
	return pl, nil
}

// applyLocked appends one record to the WAL and memtable, flushing the
// memtable to a run if it exceeds its budget. Caller holds the shard lock.
func (pl *partLog) applyLocked(op byte, key any, kbuf, vbuf []byte) error {
	if err := pl.wal.append(op, kbuf, vbuf); err != nil {
		return err
	}
	lsm := pl.store.lsm()
	lsm.AddWALBytes(walHdrLen + int64(len(kbuf)) + int64(len(vbuf)))
	lsm.AddLogicalBytes(int64(len(kbuf) + len(vbuf)))
	lsm.MemtableBytes().Add(pl.mem.set(key, kbuf, vbuf, op == opDelete))
	if pl.mem.bytes >= pl.memCap {
		return pl.flushLocked()
	}
	return nil
}

// getLocked resolves key: memtable first, then runs newest to oldest.
// Caller holds the shard lock and provides the encoded key.
func (pl *partLog) getLocked(key any, kbuf []byte) (any, bool, error) {
	if e, ok := pl.mem.get(key); ok {
		if e.tomb {
			return nil, false, nil
		}
		v, err := codec.Decode(e.vbuf)
		if err != nil {
			return nil, false, err
		}
		return v, true, nil
	}
	for _, run := range pl.runs {
		vbuf, tomb, found, err := run.get(key, kbuf, pl.store.lsm())
		if err != nil {
			return nil, false, err
		}
		if found {
			if tomb {
				return nil, false, nil
			}
			v, err := codec.Decode(vbuf)
			if err != nil {
				return nil, false, err
			}
			return v, true, nil
		}
	}
	return nil, false, nil
}

// liveKeysLocked resolves the set of live keys in this part: the memtable
// decides keys it holds (including tombstones), and runs contribute the
// rest newest-first. Caller holds the shard lock.
func (pl *partLog) liveKeysLocked() ([]any, error) {
	decided := make(map[any]bool, pl.mem.len())
	for k, e := range pl.mem.entries {
		decided[k] = !e.tomb
	}
	for _, run := range pl.runs {
		err := run.scan(func(op byte, key any, _, _ []byte) error {
			if _, ok := decided[key]; !ok {
				decided[key] = op == opPut
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	keys := make([]any, 0, len(decided))
	for k, lv := range decided {
		if lv {
			keys = append(keys, k)
		}
	}
	return keys, nil
}

// flushLocked writes the memtable out as a new level-0 run: SSTable first,
// then the manifest that names it, then the WAL is truncated — each step
// durable before the next, so a crash anywhere leaves either the old state
// (plus a replayable WAL) or the new one. Caller holds the shard lock.
func (pl *partLog) flushLocked() error {
	if pl.mem.len() == 0 {
		return nil
	}
	s := pl.store
	start := time.Now()
	if err := s.hook("flush:sst", pl.table, pl.part); err != nil {
		return err
	}
	seq := pl.nextSeq
	final := s.sstPath(pl.table, pl.part, seq)
	tmp := final + ".tmp"
	sw, err := newSSTWriter(tmp, pl.mem.len())
	if err != nil {
		return err
	}
	for _, e := range pl.mem.sorted() {
		op := byte(opPut)
		if e.tomb {
			op = opDelete
		}
		if err := sw.add(op, e.kbuf, e.vbuf); err != nil {
			_ = sw.f.Close()
			_ = os.Remove(tmp)
			return err
		}
	}
	if err := s.fsyncFault(pl.table, pl.part); err != nil {
		_ = sw.f.Close()
		_ = os.Remove(tmp)
		return err
	}
	size, err := sw.finish()
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	s.syncDir()
	run, err := openSST(final, seq, 0)
	if err != nil {
		_ = os.Remove(final)
		return err
	}
	if err := s.hook("flush:manifest", pl.table, pl.part); err != nil {
		_ = run.close()
		return err
	}
	newRuns := append([]*sstable{run}, pl.runs...)
	if err := s.writeManifestFor(pl, newRuns, seq+1); err != nil {
		_ = run.close()
		_ = os.Remove(final)
		return err
	}
	pl.runs = newRuns
	pl.nextSeq = seq + 1
	if err := s.hook("flush:wal-reset", pl.table, pl.part); err != nil {
		return err
	}
	if err := pl.wal.reset(); err != nil {
		return err
	}
	s.lsm().MemtableBytes().Add(-pl.mem.bytes)
	pl.mem = newMemtable()
	s.lsm().AddFlushes(1)
	s.lsm().AddFlushBytes(size)
	s.lsm().RunCounts().Add(0, 1)
	s.tracer.Record(trace.KindMemtableFlush, pl.table, 0, pl.part, size, time.Since(start))
	s.compactor.hint(pl)
	return nil
}

// writeManifestFor persists the part's shape (runs newest-first, next run
// sequence) atomically. Caller holds the shard lock.
func (s *Store) writeManifestFor(pl *partLog, runs []*sstable, nextSeq uint64) error {
	m := manifest{NextSeq: nextSeq, Runs: make([]manifestRun, len(runs))}
	for i, r := range runs {
		m.Runs[i] = manifestRun{Seq: r.seq, Level: r.level, Entries: r.entries, Bytes: r.size}
	}
	if err := writeManifest(s.manifestPath(pl.table, pl.part), m); err != nil {
		return err
	}
	s.syncDir()
	return nil
}

// fsyncFault consults the chaos injector ahead of an fsync.
func (s *Store) fsyncFault(table string, part int) error {
	if s.injector == nil {
		return nil
	}
	delay, err := s.injector.FsyncFault(table, part)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// syncWAL drains and fsyncs this part's WAL (the group-commit worker and
// Flush call it). Only the buffer drain runs under the shard lock; the
// fsync itself does not, so writers keep appending — and queueing for the
// next group commit — while this one is on the disk. That concurrency is
// what lets batches form at all.
func (pl *partLog) syncWAL() error {
	pl.sh.mu.Lock()
	if pl.dropped || pl.wal == nil {
		pl.sh.mu.Unlock()
		return nil
	}
	err := pl.wal.w.Flush()
	f := pl.wal.file
	pl.sh.mu.Unlock()
	if err != nil {
		return err
	}
	if err := pl.store.fsyncFault(pl.table, pl.part); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		// A concurrent DropTable closes the file out from under the sync;
		// durability of a dropped table is moot.
		pl.sh.mu.Lock()
		dropped := pl.dropped
		pl.sh.mu.Unlock()
		if dropped {
			return nil
		}
		return err
	}
	pl.store.lsm().AddWALSyncs(1)
	return nil
}

// ackDurable makes a completed write durable per the store's WithSyncEvery
// cadence, riding the group-commit loop unless disabled. Called without the
// shard lock.
func (s *Store) ackDurable(pl *partLog) error {
	n := s.syncEvery
	if n <= 0 {
		return nil
	}
	if n > 1 && pl.unsynced.Add(1)%int64(n) != 0 {
		return nil
	}
	if s.noGroup {
		return pl.syncWALNaive()
	}
	return s.syncer.await(pl)
}

// syncWALNaive is the WithoutGroupCommit path: append-then-fsync inline,
// holding the part lock for the whole disk sync — the textbook naive durable
// write every writer pays for individually. It exists so the group-commit
// benchmark has an honest baseline.
func (pl *partLog) syncWALNaive() error {
	pl.sh.mu.Lock()
	defer pl.sh.mu.Unlock()
	if pl.dropped || pl.wal == nil {
		return nil
	}
	if err := pl.store.fsyncFault(pl.table, pl.part); err != nil {
		return err
	}
	if err := pl.wal.sync(); err != nil {
		return err
	}
	pl.store.lsm().AddWALSyncs(1)
	return nil
}

// LookupTable implements kvstore.Store.
func (s *Store) LookupTable(name string) (kvstore.Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, false
	}
	return t, true
}

// DropTable implements kvstore.Store: the table's WAL, manifest, and run
// files are removed.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", kvstore.ErrNoTable, name)
	}
	delete(s.tables, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	parts := t.group.parts
	if t.ubiquitous {
		parts = 1
	}
	for p := 0; p < parts; p++ {
		sh := t.group.shards[p]
		sh.mu.Lock()
		if pl := sh.logs[name]; pl != nil {
			pl.dropped = true
			_ = pl.wal.close()
			pl.wal = nil
			s.lsm().MemtableBytes().Add(-pl.mem.bytes)
			for _, r := range pl.runs {
				_ = r.close()
				s.lsm().RunCounts().Add(r.level, -1)
			}
			pl.runs = nil
			delete(sh.logs, name)
		}
		sh.mu.Unlock()
		_ = os.Remove(s.logPath(name, p))
		_ = os.Remove(s.manifestPath(name, p))
		s.removeOrphans(name, p, nil)
	}
	return nil
}

// Tables implements kvstore.Store.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// RunAgent implements kvstore.Store.
func (s *Store) RunAgent(tableName string, part int, agent kvstore.Agent) (any, error) {
	s.mu.Lock()
	t, ok := s.tables[tableName]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, kvstore.ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	parts := t.Parts()
	if err := kvstore.CheckPart(part, parts); err != nil {
		return nil, err
	}
	sv := &shardView{store: s, group: t.group, shard: t.group.shards[part]}
	return agent(sv)
}

// Flush implements kvstore.Flusher: every table-part's WAL is drained and
// fsynced, so everything acknowledged so far survives power loss, not just
// process death. Checkpoint commits and ripple-serve's job records rely on
// exactly this.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var firstErr error
	for _, t := range s.tables {
		parts := t.group.parts
		if t.ubiquitous {
			parts = 1
		}
		for p := 0; p < parts; p++ {
			sh := t.group.shards[p]
			sh.mu.Lock()
			pl := sh.logs[t.name]
			sh.mu.Unlock()
			if pl == nil {
				continue
			}
			if err := pl.syncWAL(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Close implements kvstore.Store: the compactor and group-commit loop are
// stopped, every memtable is flushed to a run (so the next open replays
// nothing), and all files are closed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.compactor.stop()
	s.syncer.stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, t := range s.tables {
		parts := t.group.parts
		if t.ubiquitous {
			parts = 1
		}
		for p := 0; p < parts; p++ {
			sh := t.group.shards[p]
			sh.mu.Lock()
			pl := sh.logs[t.name]
			if pl != nil {
				if err := pl.flushLocked(); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					// Fall back to making the WAL durable as-is.
					_ = pl.wal.sync()
				}
				s.lsm().MemtableBytes().Add(-pl.mem.bytes)
				if err := pl.wal.close(); err != nil && firstErr == nil {
					firstErr = err
				}
				pl.wal = nil
				for _, r := range pl.runs {
					_ = r.close()
					s.lsm().RunCounts().Add(r.level, -1)
				}
				pl.runs = nil
				delete(sh.logs, t.name)
			}
			sh.mu.Unlock()
		}
	}
	if s.dirFile != nil {
		_ = s.dirFile.Close()
	}
	return firstErr
}

func sortKeysStable(keys []any) {
	sort.Slice(keys, func(i, j int) bool { return codec.CompareKeys(keys[i], keys[j]) < 0 })
}

// openAppend opens path for appending; split out for tests that need to
// corrupt a log.
func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
}

// LogSize reports the on-disk byte size of the named table's WAL and runs.
func (s *Store) LogSize(tableName string) (int64, error) {
	s.mu.Lock()
	t, ok := s.tables[tableName]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	parts := t.group.parts
	if t.ubiquitous {
		parts = 1
	}
	var total int64
	for p := 0; p < parts; p++ {
		sh := t.group.shards[p]
		sh.mu.Lock()
		if pl := sh.logs[t.name]; pl != nil {
			if pl.wal != nil {
				total += pl.wal.size
			}
			for _, r := range pl.runs {
				total += r.size
			}
		}
		sh.mu.Unlock()
	}
	return total, nil
}

// Package profile is the engine's per-part step profiler: a low-overhead,
// bounded-memory flight recorder that captures one StepProfile per
// (job, step, part) — compute time, barrier wait, queue wait, message and
// store-I/O counts, combiner effectiveness, and fault/retry attribution —
// plus the skew analysis and exports built on top of the raw records.
//
// In BSP a step ends when its slowest part does, so global aggregates (a
// barrier took 40ms) cannot answer the question that matters: *which part*
// made it take 40ms, and why. The profiler keeps the per-part evidence in a
// fixed-capacity ring buffer so the attribution is always available at a
// bounded, predictable memory cost, and renders it three ways: a
// human-readable skew report, JSONL, and Chrome trace-event JSON that
// chrome://tracing and Perfetto display as a per-part timeline.
//
// Like the metrics collector and the tracer, a nil *Recorder is valid and
// every method is a no-op, so instrumented code never needs nil checks.
package profile

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// StepProfile is one (job, step, part) record: everything one part did in
// one step. Step is 0 for no-sync execution (which has no steps: the record
// then covers the part's whole run). Under run-anywhere work stealing the
// engine records one profile per worker slot instead, numbered beyond the
// real parts, because computes detach from their parts there.
type StepProfile struct {
	Job  string `json:"job"`
	Step int    `json:"step"`
	Part int    `json:"part"`

	// StartNS is the record's start, monotonic nanoseconds since the
	// recorder was created — the timeline coordinate of the exports.
	StartNS int64 `json:"start_ns"`
	// ComputeNS is the part's busy time: drain, deliver, compute, flush.
	ComputeNS int64 `json:"compute_ns"`
	// BarrierWaitNS is how long the part idled at the barrier behind the
	// step's slowest part (sync execution only).
	BarrierWaitNS int64 `json:"barrier_wait_ns,omitempty"`
	// QueueWaitNS is time blocked waiting for input: spill-drain time on the
	// sync path, queue-read wait (empty polls included) on the no-sync path.
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`

	MsgsIn  int64 `json:"msgs_in,omitempty"`
	MsgsOut int64 `json:"msgs_out,omitempty"`
	// MarshalledBytes is the encoded size of the part's outgoing cross-part
	// spill batches (sync path; measured only while profiling).
	MarshalledBytes int64 `json:"marshalled_bytes,omitempty"`
	// CombinerHits counts messages eliminated by the combiner in this part's
	// step (sender- and receiver-side).
	CombinerHits int64 `json:"combiner_hits,omitempty"`
	StoreGets    int64 `json:"store_gets,omitempty"`
	StorePuts    int64 `json:"store_puts,omitempty"`
	// Enabled is the number of compute invocations (enabled components) the
	// part ran this step — selective enablement in action.
	Enabled int64 `json:"enabled,omitempty"`

	// Faults and Retries attribute the chaos/self-healing path: transient
	// faults observed (injected or real) and retries performed for this
	// (job, step, part) before its record was written.
	Faults  int64 `json:"faults,omitempty"`
	Retries int64 `json:"retries,omitempty"`
}

// attrKey addresses pending fault/retry attribution awaiting its record.
type attrKey struct {
	job  string
	step int
	part int
}

type attr struct {
	faults  int64
	retries int64
}

// KeyCount is one hot component key with its delivered-message count (an
// estimate from a bounded space-saving summary: counts are upper bounds, and
// only genuinely heavy keys survive eviction).
type KeyCount struct {
	Job   string `json:"job"`
	Key   string `json:"key"`
	Count int64  `json:"count"`
}

// DefaultCapacity is the record capacity used when New is given a
// non-positive one.
const DefaultCapacity = 8192

// DefaultHotKeyCapacity bounds the per-job hot-key summary.
const DefaultHotKeyCapacity = 512

// Recorder is the bounded flight recorder. All methods are safe for
// concurrent use; a nil *Recorder no-ops everywhere.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	buf     []StepProfile
	next    int
	wrapped bool
	dropped uint64

	pending map[attrKey]*attr

	hotCap int
	hot    map[string]map[string]int64 // job -> key -> count (space-saving)
}

// New creates a recorder retaining at most capacity records
// (DefaultCapacity if capacity <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		start:   time.Now(),
		buf:     make([]StepProfile, 0, capacity),
		pending: make(map[attrKey]*attr),
		hotCap:  DefaultHotKeyCapacity,
		hot:     make(map[string]map[string]int64),
	}
}

// Now returns monotonic nanoseconds since the recorder was created — the
// StartNS coordinate instrumented code stamps records with.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.start))
}

// Record appends one profile, folding in any pending fault/retry
// attribution for its (job, step, part).
func (r *Recorder) Record(p StepProfile) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if a, ok := r.pending[attrKey{p.Job, p.Step, p.Part}]; ok {
		p.Faults += a.faults
		p.Retries += a.retries
		delete(r.pending, attrKey{p.Job, p.Step, p.Part})
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, p)
	} else {
		r.buf[r.next] = p
		r.next = (r.next + 1) % len(r.buf)
		r.dropped++
		r.wrapped = true
	}
	r.mu.Unlock()
}

// AddFault attributes one observed transient fault to (job, step, part); it
// is folded into that record when it is written (step -1 marks operations
// outside any step, e.g. loaders and exporters).
func (r *Recorder) AddFault(job string, step, part int) {
	r.attribute(job, step, part, 1, 0)
}

// AddRetry attributes one retry to (job, step, part).
func (r *Recorder) AddRetry(job string, step, part int) {
	r.attribute(job, step, part, 0, 1)
}

func (r *Recorder) attribute(job string, step, part int, faults, retries int64) {
	if r == nil {
		return
	}
	k := attrKey{job, step, part}
	r.mu.Lock()
	a := r.pending[k]
	if a == nil {
		a = &attr{}
		r.pending[k] = a
	}
	a.faults += faults
	a.retries += retries
	r.mu.Unlock()
}

// Unattributed reports pending fault/retry counts that never matched a
// recorded profile (operations outside any part-step, e.g. loader or
// exporter retries attributed to step -1).
func (r *Recorder) Unattributed() (faults, retries int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.pending {
		faults += a.faults
		retries += a.retries
	}
	return faults, retries
}

// ObserveKey feeds one component key's delivered-message count into the
// job's bounded hot-key summary (space-saving: when the summary is full the
// minimum-count key is evicted and the newcomer inherits its count, so the
// counts of surviving keys are upper bounds and heavy keys cannot be
// displaced by a long tail).
func (r *Recorder) ObserveKey(job string, key any, msgs int64) {
	if r == nil || msgs <= 0 {
		return
	}
	ks := fmt.Sprint(key)
	r.mu.Lock()
	m := r.hot[job]
	if m == nil {
		m = make(map[string]int64, r.hotCap)
		r.hot[job] = m
	}
	if _, ok := m[ks]; ok || len(m) < r.hotCap {
		m[ks] += msgs
	} else {
		// Evict the minimum; the newcomer inherits its count (space-saving).
		var minKey string
		minVal := int64(-1)
		for k, v := range m {
			if minVal < 0 || v < minVal {
				minKey, minVal = k, v
			}
		}
		delete(m, minKey)
		m[ks] = minVal + msgs
	}
	r.mu.Unlock()
}

// HotKeys returns the top-k keys by estimated delivered-message count across
// all jobs (all of them for k <= 0), heaviest first.
func (r *Recorder) HotKeys(k int) []KeyCount {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []KeyCount
	for job, m := range r.hot {
		for key, n := range m {
			out = append(out, KeyCount{Job: job, Key: key, Count: n})
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Len reports the number of retained records.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped reports how many records were overwritten by ring wraparound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot copies the retained records in recording order (oldest first).
func (r *Recorder) Snapshot() []StepProfile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]StepProfile, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Reset discards all records, attributions, and hot-key summaries (the
// monotonic clock keeps running).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.dropped = 0
	r.wrapped = false
	r.pending = make(map[attrKey]*attr)
	r.hot = make(map[string]map[string]int64)
	r.mu.Unlock()
}

package codec

import (
	"fmt"
	"testing"
)

type benchStruct struct {
	ID    int
	Rank  float64
	Edges []int
}

func init() { Register(benchStruct{}) }

func benchValues() []struct {
	name string
	v    any
} {
	edges := make([]int, 32)
	for i := range edges {
		edges[i] = i * 3
	}
	strs := make([]string, 16)
	for i := range strs {
		strs[i] = fmt.Sprintf("vertex-%d", i)
	}
	return []struct {
		name string
		v    any
	}{
		{"int", 123456},
		{"string", "the quick brown fox"},
		{"float64", 3.14159},
		{"pair", [2]int{7, 9}},
		{"ints32", edges},
		{"strings16", strs},
		{"map", map[string]any{"rank": 0.5, "id": 7, "tag": "x"}},
		{"struct_gob", benchStruct{ID: 5, Rank: 0.25, Edges: edges}},
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	for _, c := range benchValues() {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := Encode(c.v)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDeepCopy(b *testing.B) {
	for _, c := range benchValues() {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DeepCopy(c.v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodedSize(b *testing.B) {
	edges := make([]int, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if EncodedSize(edges) <= 0 {
			b.Fatal("bad size")
		}
	}
}

// Package graph layers a Pregel-style Graph EBSP programming model on top of
// K/V EBSP (paper Fig. 2; §VI: "The functionality of Pregel can be
// constructed atop Ripple's K/V EBSP"). A vertex program runs at each active
// vertex every superstep; vertices exchange messages along (or regardless
// of) edges and vote to halt; a halted vertex is reactivated by an incoming
// message — implemented directly by EBSP selective enablement.
package graph

import (
	"errors"
	"fmt"

	"ripple/internal/codec"
	"ripple/internal/ebsp"
)

// ErrBadSpec is returned for invalid graph job specifications.
var ErrBadSpec = errors.New("graph: invalid spec")

// Edge is one outgoing edge of a vertex.
type Edge struct {
	To    any
	Value any
}

// Vertex is the unit of graph state stored in the vertex table.
type Vertex struct {
	ID    any
	Value any
	Edges []Edge
}

func init() {
	codec.Register(Vertex{})
	codec.Register(Edge{})
	codec.Register([]Edge{})
}

// Program is the vertex compute function, run at every active vertex each
// superstep.
type Program interface {
	Compute(ctx *VertexContext) error
}

// ProgramFunc adapts a function to Program.
type ProgramFunc func(ctx *VertexContext) error

// Compute implements Program.
func (f ProgramFunc) Compute(ctx *VertexContext) error { return f(ctx) }

// Spec describes one graph computation.
type Spec struct {
	// Name labels the job.
	Name string
	// VertexTable names the table holding Vertex values keyed by vertex ID.
	VertexTable string
	// Program is the vertex program.
	Program Program
	// Combiner optionally combines messages per destination vertex.
	Combiner ebsp.MessageCombiner
	// Aggregators are readable in the following superstep.
	Aggregators map[string]ebsp.Aggregator
	// MaxSupersteps bounds execution; 0 means run until all vertices halt.
	MaxSupersteps int
}

// Run executes the graph computation; all vertices are active in the first
// superstep.
func Run(e *ebsp.Engine, spec *Spec) (*ebsp.Result, error) {
	if spec.Program == nil {
		return nil, fmt.Errorf("%w: no program", ErrBadSpec)
	}
	if spec.VertexTable == "" {
		return nil, fmt.Errorf("%w: no vertex table", ErrBadSpec)
	}
	tab, ok := e.Store().LookupTable(spec.VertexTable)
	if !ok {
		return nil, fmt.Errorf("graph: vertex table %q does not exist", spec.VertexTable)
	}
	n, err := tab.Size()
	if err != nil {
		return nil, fmt.Errorf("graph: size of %q: %w", spec.VertexTable, err)
	}

	job := &ebsp.Job{
		Name:        spec.Name,
		StateTables: []string{spec.VertexTable},
		Compute:     &vertexCompute{spec: spec, numVertices: n},
		Combiner:    spec.Combiner,
		Aggregators: spec.Aggregators,
		MaxSteps:    spec.MaxSupersteps,
		Loaders: []ebsp.Loader{&ebsp.TableLoader{
			Table: spec.VertexTable,
			Store: e.Store(),
			Each: func(k, _ any, lc *ebsp.LoadContext) error {
				lc.Enable(k)
				return nil
			},
		}},
	}
	return e.Run(job)
}

// VertexContext is the vertex program's window onto one superstep.
type VertexContext struct {
	inner       *ebsp.Context
	vertex      *Vertex
	present     bool
	dirty       bool
	removed     bool
	halted      bool
	numVertices int
}

// Superstep reports the current superstep, numbered from 1.
func (c *VertexContext) Superstep() int { return c.inner.StepNum() }

// ID identifies the vertex.
func (c *VertexContext) ID() any { return c.inner.Key() }

// NumVertices reports the vertex count at job start.
func (c *VertexContext) NumVertices() int { return c.numVertices }

// Exists reports whether this vertex has state (a message can reach an ID
// with no vertex behind it).
func (c *VertexContext) Exists() bool { return c.present && !c.removed }

// Value returns the vertex value (nil for a non-existent vertex).
func (c *VertexContext) Value() any {
	if !c.Exists() {
		return nil
	}
	return c.vertex.Value
}

// SetValue replaces the vertex value; for a non-existent vertex it creates
// the vertex with no edges.
func (c *VertexContext) SetValue(v any) {
	if !c.Exists() {
		c.vertex = &Vertex{ID: c.inner.Key()}
		c.present = true
		c.removed = false
	}
	c.vertex.Value = v
	c.dirty = true
}

// Edges returns the vertex's outgoing edges; the slice is owned by the
// platform — use AddEdge/RemoveEdge to mutate.
func (c *VertexContext) Edges() []Edge {
	if !c.Exists() {
		return nil
	}
	return c.vertex.Edges
}

// AddEdge appends an outgoing edge.
func (c *VertexContext) AddEdge(e Edge) {
	if !c.Exists() {
		c.vertex = &Vertex{ID: c.inner.Key()}
		c.present = true
		c.removed = false
	}
	c.vertex.Edges = append(c.vertex.Edges, e)
	c.dirty = true
}

// RemoveEdge deletes every outgoing edge to the given destination and
// reports whether any existed.
func (c *VertexContext) RemoveEdge(to any) bool {
	if !c.Exists() {
		return false
	}
	kept := c.vertex.Edges[:0]
	removed := false
	for _, e := range c.vertex.Edges {
		if e.To == to {
			removed = true
			continue
		}
		kept = append(kept, e)
	}
	c.vertex.Edges = kept
	if removed {
		c.dirty = true
	}
	return removed
}

// Messages returns this superstep's incoming messages.
func (c *VertexContext) Messages() []any { return c.inner.InputMessages() }

// SendTo sends a message to any vertex by ID.
func (c *VertexContext) SendTo(dst, msg any) { c.inner.Send(dst, msg) }

// SendToNeighbors sends a message along every outgoing edge.
func (c *VertexContext) SendToNeighbors(msg any) {
	for _, e := range c.Edges() {
		c.inner.Send(e.To, msg)
	}
}

// AddVertex requests creation of another vertex at the barrier.
func (c *VertexContext) AddVertex(v Vertex) {
	c.inner.CreateState(0, v.ID, v)
}

// RemoveVertex deletes this vertex at the end of the invocation.
func (c *VertexContext) RemoveVertex() {
	c.removed = true
	c.dirty = true
}

// VoteToHalt deactivates the vertex until a message arrives (Pregel
// semantics; the inverse of the EBSP continue signal).
func (c *VertexContext) VoteToHalt() { c.halted = true }

// AggregateValue feeds the named aggregator.
func (c *VertexContext) AggregateValue(name string, v any) {
	c.inner.AggregateValue(name, v)
}

// AggregateResult reads the named aggregator's previous-superstep result.
func (c *VertexContext) AggregateResult(name string) any {
	return c.inner.AggregateResult(name)
}

// vertexCompute adapts a vertex Program to the EBSP Compute interface.
type vertexCompute struct {
	spec        *Spec
	numVertices int
}

func (vc *vertexCompute) Compute(ctx *ebsp.Context) bool {
	vctx := &VertexContext{inner: ctx, numVertices: vc.numVertices}
	if raw, ok := ctx.ReadState(0); ok {
		v := raw.(Vertex)
		vctx.vertex = &v
		vctx.present = true
	}
	if err := vc.spec.Program.Compute(vctx); err != nil {
		panic(fmt.Sprintf("graph: vertex %v superstep %d: %v", ctx.Key(), ctx.StepNum(), err))
	}
	if vctx.dirty {
		if vctx.removed {
			ctx.DeleteState(0)
		} else {
			ctx.WriteState(0, *vctx.vertex)
		}
	}
	return !vctx.halted && vctx.Exists()
}

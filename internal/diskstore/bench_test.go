package diskstore

import (
	"fmt"
	"sync"
	"testing"

	"ripple/internal/kvstore"
)

func benchStore(b *testing.B, opts ...Option) (*Store, kvstore.Table) {
	b.Helper()
	s, err := New(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	tab, err := s.CreateTable("t", kvstore.WithParts(4))
	if err != nil {
		b.Fatal(err)
	}
	return s, tab
}

func BenchmarkLSMPut(b *testing.B) {
	_, tab := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.Put(i, "sixteen-byte-val"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSMGetHit(b *testing.B) {
	s, tab := benchStore(b, WithMemtableBudget(64<<10))
	const n = 20000
	for i := 0; i < n; i++ {
		if err := tab.Put(i, i*3); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Compact("t"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := tab.Get(i % n); err != nil || !ok {
			b.Fatalf("Get = %v, %v", ok, err)
		}
	}
}

func BenchmarkLSMGetMiss(b *testing.B) {
	s, tab := benchStore(b, WithMemtableBudget(64<<10))
	const n = 20000
	for i := 0; i < n; i++ {
		if err := tab.Put(i, i*3); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Compact("t"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := tab.Get(n + i); err != nil || ok {
			b.Fatalf("Get(miss) = %v, %v", ok, err)
		}
	}
}

// benchDurableWriters times 8 concurrent durable writers (one op = 8
// goroutines × 4 fsync-acknowledged puts into one part). Run with and
// without group commit it measures exactly what the commit loop buys.
func benchDurableWriters(b *testing.B, opts ...Option) {
	s, err := New(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	tab, err := s.CreateTable("t", kvstore.WithParts(1))
	if err != nil {
		b.Fatal(err)
	}
	const writers, perWriter = 8, 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < perWriter; j++ {
					if err := tab.Put(fmt.Sprintf("%d.%d.%d", i, w, j), j); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
}

func BenchmarkGroupCommit8Writers(b *testing.B) {
	benchDurableWriters(b, WithSyncEvery(1))
}

func BenchmarkNaiveCommit8Writers(b *testing.B) {
	benchDurableWriters(b, WithSyncEvery(1), WithoutGroupCommit())
}

package ebsp

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
	"ripple/internal/profile"
	"ripple/internal/trace"
)

// Engine executes K/V EBSP jobs against one store (paper §IV-A). An Engine
// is safe for concurrent use; each Run is independent.
type Engine struct {
	store           kvstore.Store
	mqsys           mq.Queuing
	mqOnce          sync.Once // guards the lazy mqsys write in mqSystem
	metrics         *metrics.Collector
	tracer          *trace.Tracer
	sampler         *trace.Sampler
	logger          *slog.Logger
	prof            *profile.Recorder
	override        func(Strategy) Strategy
	observer        StepObserver
	progress        ProgressObserver
	progressEvery   int64 // no-sync envelope-count watermark interval
	aggTabTh        int   // aggregator count above which the table-based path is used
	retries         int   // per-part step retries under fast recovery
	checkpointEvery int   // barrier interval between checkpoints; 0 disables
	jitterSeed      int64 // seeds the deterministic retry-backoff jitter

	// Active job names: one execution (Run or Resume) per job name at a
	// time on one engine. Two same-named executions would fight over the
	// job's checkpoint tables (__ckpt.<name>.*) and, for Resume, restore a
	// snapshot into state tables another run is actively mutating; the
	// second caller gets ErrJobBusy instead.
	activeMu sync.Mutex
	active   map[string]bool
}

// ErrJobBusy is returned by RunContext and Resume when an execution of the
// same job name is already in flight on this engine. Resuming (or re-running)
// a job that is still running would corrupt its shared checkpoint tables and
// state; callers should wait for the running execution or cancel it first.
var ErrJobBusy = fmt.Errorf("ebsp: an execution of this job is already in flight on this engine")

// acquireJob registers a job name as executing; the matching releaseJob must
// run when the execution ends.
func (e *Engine) acquireJob(name string) error {
	e.activeMu.Lock()
	defer e.activeMu.Unlock()
	if e.active == nil {
		e.active = make(map[string]bool)
	}
	if e.active[name] {
		return fmt.Errorf("%w: %q", ErrJobBusy, name)
	}
	e.active[name] = true
	return nil
}

func (e *Engine) releaseJob(name string) {
	e.activeMu.Lock()
	delete(e.active, name)
	e.activeMu.Unlock()
}

// Option configures an Engine.
type Option func(*Engine)

// WithMetrics attaches a metrics collector.
func WithMetrics(m *metrics.Collector) Option {
	return func(e *Engine) { e.metrics = m }
}

// WithTracer attaches an event tracer recording span events (job/step
// boundaries, barriers, per-part compute, checkpoints, no-sync progress)
// for both execution modes.
func WithTracer(t *trace.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// WithTraceSampler installs the head-sampling policy for causal tracing.
// The decision is made once per job run from the deterministically derived
// trace ID, so a given (job sequence, seed) pair reproduces the identical
// sampled span set. Without a sampler every run is sampled (rate 1). Fault,
// retry, and failover spans are recorded regardless of the head decision
// (the tail policy). Sampling only matters when a tracer is attached.
func WithTraceSampler(s *trace.Sampler) Option {
	return func(e *Engine) { e.sampler = s }
}

// WithLogger attaches a structured logger. The engine derives job-scoped
// (and, at debug level, step/part-scoped) loggers from it, carrying trace
// and span IDs so log lines join against span dumps. Without one the
// engine logs nothing, at zero cost on the data plane.
func WithLogger(l *slog.Logger) Option {
	return func(e *Engine) { e.logger = l }
}

// WithProfiler attaches a per-part step profiler: the engine records one
// StepProfile per (job, step, part) — compute, barrier wait, queue wait,
// message/store counts, and fault/retry attribution — into the recorder's
// bounded ring. Profiling adds measurable overhead (notably hot-key tracking
// and spill-size encoding), so attach one only when attribution is wanted.
func WithProfiler(r *profile.Recorder) Option {
	return func(e *Engine) { e.prof = r }
}

// WithMQ supplies the queuing implementation used for no-sync execution.
// Without one, the engine creates a private in-process mq.System on demand.
func WithMQ(sys mq.Queuing) Option {
	return func(e *Engine) { e.mqsys = sys }
}

// WithRetryJitterSeed seeds the deterministic jitter applied to retry
// backoff (see retryOp): concurrent part retries spread out instead of
// synchronizing into a thundering herd against a recovering shard, and a
// fixed seed reproduces the exact jittered fault trace. The default seed
// is 0, which still jitters — deterministically.
func WithRetryJitterSeed(seed int64) Option {
	return func(e *Engine) { e.jitterSeed = seed }
}

// WithStrategyOverride installs a hook that may adjust the derived execution
// strategy. Adjustments are clamped to the conservative direction (an
// override can disable an optimization, never force an unsafe one), so it is
// primarily useful for ablation experiments: forcing barriers onto a no-sync-
// eligible job, forcing collection, disabling work stealing, and so on.
func WithStrategyOverride(f func(Strategy) Strategy) Option {
	return func(e *Engine) { e.override = f }
}

// WithAggTableThreshold sets the number of individual aggregators above which
// aggregation goes through auxiliary tables and another round of enumeration
// instead of being merged client-side (paper §IV-A). Default 16.
func WithAggTableThreshold(n int) Option {
	return func(e *Engine) {
		if n >= 0 {
			e.aggTabTh = n
		}
	}
}

// WithRecoveryRetries bounds how many times a part's step is replayed after
// a shard failure under fast recovery. Default 3.
func WithRecoveryRetries(n int) Option {
	return func(e *Engine) {
		if n >= 0 {
			e.retries = n
		}
	}
}

// NewEngine creates an Engine bound to a store.
func NewEngine(store kvstore.Store, opts ...Option) *Engine {
	e := &Engine{store: store, aggTabTh: 16, retries: 3}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Store returns the engine's store.
func (e *Engine) Store() kvstore.Store { return e.store }

// Metrics returns the engine's collector (possibly nil).
func (e *Engine) Metrics() *metrics.Collector { return e.metrics }

// Tracer returns the engine's event tracer (possibly nil).
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Sampler returns the engine's trace sampler (possibly nil = sample all).
func (e *Engine) Sampler() *trace.Sampler { return e.sampler }

// Logger returns the engine's structured logger (possibly nil).
func (e *Engine) Logger() *slog.Logger { return e.logger }

// Profiler returns the engine's step profiler (possibly nil).
func (e *Engine) Profiler() *profile.Recorder { return e.prof }

// jobRun is the per-execution state shared by the sync and no-sync paths.
type jobRun struct {
	engine   *Engine
	job      *Job
	ctx      context.Context
	strategy Strategy

	placement   kvstore.Table // drives partitioning and agent dispatch
	parts       int
	stateTables []kvstore.Table
	stateNames  []string
	transport   kvstore.Table // sync path: spill transport
	refTable    kvstore.Table // broadcast data, may be nil
	metaTable   kvstore.Table // fast recovery: part -> completed step
	aggPartials kvstore.Table // large-aggregator-set path: per-part partials
	aggResults  kvstore.Table // large-aggregator-set path: ubiquitous results

	aggPrev map[string]any // results of previous step's aggregation

	sensor          kvstore.FailureSensor // store failover sensor, may be nil
	sensedFailovers int64                 // sensor reading absorbed so far
	lastStep        int                   // most recently completed step (sync path)

	runID    int64        // engine-unique run sequence number
	traceID  uint64       // causal trace ID; 0 when untraced
	sampled  bool         // head-sampling decision for this run
	rootSpan uint64       // span ID of the job root (job_start/job_end)
	loadSpan uint64       // span ID of the load phase
	log      *slog.Logger // job-scoped logger, never nil

	directMu   sync.Mutex
	recoveries atomic.Int64
	delivered  atomic.Int64 // no-sync: envelopes delivered (progress watermarks)
	sent       atomic.Int64 // no-sync: envelopes sent, seeds included

	ownsPlacement bool
	privateTables []string
}

// Run executes a job to completion and returns its results (final aggregator
// values and step count; final states are in the store / the exporters).
func (e *Engine) Run(job *Job) (*Result, error) {
	return e.RunContext(context.Background(), job)
}

// RunContext is Run with cancellation: synchronized jobs stop at the next
// barrier once ctx is done, no-sync jobs stop as their workers notice; the
// context error is returned (wrapped). Work already committed to the store
// stays; combine with WithCheckpoints to make a cancelled job resumable.
func (e *Engine) RunContext(ctx context.Context, job *Job) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := job.validate(); err != nil {
		return nil, err
	}
	if err := e.acquireJob(job.Name); err != nil {
		return nil, err
	}
	defer e.releaseJob(job.Name)
	derived := planFor(job)
	strategy := derived
	if e.override != nil {
		strategy = e.override(derived).Clamp(derived)
	}
	if strategy.FastRecovery {
		// Fast recovery needs per-shard transactions; without them fall back
		// to plain execution.
		if _, ok := e.store.(kvstore.Transactional); !ok {
			strategy.FastRecovery = false
		}
	}

	run := &jobRun{
		engine:   e,
		job:      job,
		ctx:      ctx,
		strategy: strategy,
		aggPrev:  make(map[string]any),
		runID:    runSeq.Add(1),
	}
	run.setupTraceContext()
	defer run.cleanup()
	if err := run.setupTables(); err != nil {
		return nil, err
	}
	loadStart := time.Now()
	lc, err := run.load()
	if err != nil {
		run.log.Error("job load failed", "err", err)
		return nil, err
	}

	if fs, ok := e.store.(kvstore.FailureSensor); ok {
		run.sensor = fs
		run.sensedFailovers = fs.Failovers()
	}

	jobStart := time.Now()
	run.log.Info("job starting", "parts", run.parts, "sync", strategy.Sync, "sampled", run.sampled)
	if run.sampled {
		e.tracer.RecordSpan(trace.Span{Kind: trace.KindJobStart, Job: job.Name, Part: -1,
			N: int64(run.parts), Trace: run.traceID, Span: run.rootSpan,
			Attrs: map[string]string{"sync": fmt.Sprint(strategy.Sync)}})
		e.tracer.RecordSpan(trace.Span{Kind: trace.KindLoad, Job: job.Name, Part: -1,
			N: int64(len(lc.envs)), Dur: time.Since(loadStart),
			Trace: run.traceID, Span: run.loadSpan, Parent: run.rootSpan})
	} else {
		e.tracer.Record(trace.KindJobStart, job.Name, 0, -1, int64(run.parts), 0)
	}
	var res *Result
	if strategy.Sync {
		res, err = run.runSync(lc)
		// Self-healing: a shard failover surfaces as (or wraps)
		// ErrShardFailed; with checkpoints enabled the engine heals
		// replication and re-runs from the last completed checkpoint instead
		// of failing the job — no manual Resume needed.
		for reruns := 0; err != nil && run.autoRecoverable(err, reruns); reruns++ {
			res, err = run.recoverAndRerun(err)
		}
	} else {
		res, err = run.runNoSync(lc)
	}
	if err != nil {
		run.log.Error("job failed", "err", err)
		return nil, err
	}
	e.tracer.RecordSpan(trace.Span{Kind: trace.KindJobEnd, Job: job.Name, Step: res.Steps,
		Part: -1, N: int64(res.Steps), Dur: time.Since(jobStart),
		Trace: run.traceID, Span: run.rootSpan})
	run.log.Info("job finished", "steps", res.Steps, "dur", time.Since(jobStart),
		"recoveries", run.recoveries.Load())
	res.Strategy = strategy
	res.Recoveries = int(run.recoveries.Load())
	if err := run.export(); err != nil {
		run.log.Error("job export failed", "err", err)
		return nil, err
	}
	return res, nil
}

// setupTraceContext derives the run's trace identity and makes the head-
// sampling decision. The IDs are pure functions of (job name, run sequence,
// sampler seed), so runs replay to identical trace IDs under a fixed seed —
// the same determinism contract the chaos injector keeps. Unsampled (and
// untraced) runs leave traceID zero: envelopes then carry no context and
// the wire format is byte-identical to the pre-trace layout.
func (run *jobRun) setupTraceContext() {
	e := run.engine
	if e.tracer != nil {
		id := trace.TraceID(run.job.Name, run.runID, e.sampler.Seed())
		if e.sampler.Sample(id) {
			run.traceID = id
			run.sampled = true
			run.rootSpan = trace.SpanID(id, -1, -1)
			run.loadSpan = trace.SpanID(id, 0, -1)
		}
	}
	// Bind the run's trace to the store's transport (when it is one), so RPC
	// frames carry the trace ID and server-side spans join the causal chains.
	if tb, ok := e.store.(kvstore.TraceBinder); ok {
		tb.BindTrace(run.traceID)
	}
	run.log = e.jobLogger(run.job.Name, run.traceID)
}

// setupTables resolves the placement table, opens/creates state tables, and
// creates the run's private tables.
func (run *jobRun) setupTables() error {
	e := run.engine
	job := run.job
	prefix := fmt.Sprintf("__ebsp.%s.%d", job.Name, run.runID)

	// Resolve placement.
	placementName := job.Placement
	if placementName == "" && len(job.StateTables) > 0 {
		for _, name := range job.StateTables {
			if _, ok := e.store.LookupTable(name); ok {
				placementName = name
				break
			}
		}
		if placementName == "" {
			placementName = job.StateTables[0]
		}
	}
	if placementName == "" {
		// Pure-message job: private placement table.
		name := prefix + ".placement"
		opts := []kvstore.TableOption{}
		if job.PartsHint > 0 {
			opts = append(opts, kvstore.WithParts(job.PartsHint))
		}
		t, err := e.store.CreateTable(name, opts...)
		if err != nil {
			return fmt.Errorf("ebsp: create placement table: %w", err)
		}
		run.placement = t
		run.ownsPlacement = true
		run.privateTables = append(run.privateTables, name)
	} else {
		t, ok := e.store.LookupTable(placementName)
		if !ok {
			// The placement (or first state) table does not exist yet:
			// create it, honoring PartsHint.
			opts := []kvstore.TableOption{}
			if job.PartsHint > 0 {
				opts = append(opts, kvstore.WithParts(job.PartsHint))
			}
			var err error
			t, err = e.store.CreateTable(placementName, opts...)
			if err != nil {
				return fmt.Errorf("ebsp: create table %q: %w", placementName, err)
			}
		}
		run.placement = t
	}
	run.parts = run.placement.Parts()

	// Open or create the state tables, consistently partitioned with the
	// placement table.
	run.stateNames = job.StateTables
	for _, name := range job.StateTables {
		t, ok := e.store.LookupTable(name)
		if !ok {
			var err error
			t, err = e.store.CreateTable(name, kvstore.ConsistentWith(run.placement.Name()))
			if err != nil {
				return fmt.Errorf("ebsp: create state table %q: %w", name, err)
			}
		}
		if err := requireCoPlaced(run.placement, t); err != nil {
			return err
		}
		run.stateTables = append(run.stateTables, t)
	}

	// Broadcast reference table.
	if job.ReferenceTable != "" {
		t, ok := e.store.LookupTable(job.ReferenceTable)
		if !ok {
			return fmt.Errorf("%w: reference table %q does not exist", ErrBadJob, job.ReferenceTable)
		}
		run.refTable = t
	}

	// Private transport table (sync path only, but cheap to create).
	if run.strategy.Sync {
		name := prefix + ".transport"
		t, err := e.store.CreateTable(name, kvstore.ConsistentWith(run.placement.Name()))
		if err != nil {
			return fmt.Errorf("ebsp: create transport table: %w", err)
		}
		run.transport = t
		run.privateTables = append(run.privateTables, name)
	}

	// Completed-step table for fast recovery.
	if run.strategy.FastRecovery {
		name := prefix + ".meta"
		t, err := e.store.CreateTable(name, kvstore.ConsistentWith(run.placement.Name()))
		if err != nil {
			return fmt.Errorf("ebsp: create meta table: %w", err)
		}
		run.metaTable = t
		run.privateTables = append(run.privateTables, name)
	}
	return nil
}

// load runs the job's loaders and returns the collected initial condition.
func (run *jobRun) load() (*LoadContext, error) {
	lc := &LoadContext{run: run, aggs: make(map[string]any)}
	for _, l := range run.job.Loaders {
		if err := l.Load(lc); err != nil {
			return nil, fmt.Errorf("ebsp: loader: %w", err)
		}
	}
	// Apply initial states, overlapping the cross-partition writes.
	for _, p := range lc.puts {
		if p.tab < 0 || p.tab >= len(run.stateTables) {
			return nil, fmt.Errorf("%w: loader PutState table index %d of %d",
				ErrBadJob, p.tab, len(run.stateTables))
		}
	}
	sem := make(chan struct{}, 32)
	errs := make([]error, len(lc.puts))
	var wg sync.WaitGroup
	for i, p := range lc.puts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p statePut) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = run.engine.retryOp(run.job.Name, -1, -1, func() error {
				return run.stateTables[p.tab].Put(p.key, p.value)
			})
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ebsp: loader state put: %w", err)
		}
	}
	// Initial aggregator inputs are the step-1 readable results.
	for name, v := range lc.aggs {
		run.aggPrev[name] = v
	}
	return lc, nil
}

// export streams final state tables and cleans up.
func (run *jobRun) export() error {
	for name, exp := range run.job.Exporters {
		t, ok := run.engine.store.LookupTable(name)
		if !ok {
			return fmt.Errorf("%w: exporting missing table %q", ErrBadJob, name)
		}
		exp := exp
		// Transient faults fire only at enumeration entry, before any pair is
		// visited, so retrying the whole enumeration never double-exports.
		if err := run.engine.retryOp(run.job.Name, -1, -1, func() error {
			return kvstore.EnumerateAll(t, func(k, v any) (bool, error) {
				return false, exp.Export(k, v)
			})
		}); err != nil {
			return fmt.Errorf("ebsp: export %q: %w", name, err)
		}
	}
	return nil
}

// cleanup drops the run's private tables.
func (run *jobRun) cleanup() {
	for _, name := range run.privateTables {
		_ = run.engine.store.DropTable(name)
	}
}

// partViews opens the per-part views of the state tables for an agent.
func (run *jobRun) partViews(sv kvstore.ShardView) (*localState, error) {
	ls := &localState{views: make([]kvstore.PartView, len(run.stateTables))}
	for i, t := range run.stateTables {
		view, err := sv.View(t.Name())
		if err != nil {
			return nil, err
		}
		ls.views[i] = view
	}
	return ls, nil
}

// broadcastView opens the reference table locally for an agent (nil when the
// job has no reference table).
func (run *jobRun) broadcastView(sv kvstore.ShardView) (kvstore.PartView, error) {
	if run.refTable == nil {
		return nil, nil
	}
	return sv.View(run.refTable.Name())
}

// mqSystem returns the engine's mq system, creating a private one on demand.
// The lazy write is guarded by mqOnce: two no-sync jobs starting concurrently
// on one Engine must share a single system, per the concurrent-use contract.
func (e *Engine) mqSystem() mq.Queuing {
	e.mqOnce.Do(func() {
		if e.mqsys == nil {
			e.mqsys = mq.NewSystem(mq.WithMetrics(e.metrics))
		}
	})
	return e.mqsys
}

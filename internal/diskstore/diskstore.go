// Package diskstore implements the Ripple KVStore SPI on local disk: one
// append-only log file per table part, with an in-memory key → offset index
// rebuilt by replaying the log on open.
//
// It stands in for the paper's HBase adapter (§IV-B): a store with a very
// different cost profile (every read is a disk read, every write an append)
// behind the same narrow SPI, demonstrating the store portability the paper
// argues for. It intentionally offers no replication or transactions — the
// EBSP engine must work against the minimum SPI surface.
package diskstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/trace"
)

// Option configures a Store.
type Option func(*Store)

// WithParts sets the default part count for new tables (default 4).
func WithParts(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.defaultParts = n
		}
	}
}

// WithMetrics attaches a metrics collector.
func WithMetrics(m *metrics.Collector) Option {
	return func(s *Store) { s.metrics = m }
}

// WithTracer attaches an event tracer recording log replays on table open
// and per-part compactions.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Store) { s.tracer = t }
}

// Store is the disk-backed store. All data live under its base directory.
type Store struct {
	dir          string
	defaultParts int
	metrics      *metrics.Collector
	tracer       *trace.Tracer

	mu     sync.Mutex
	closed bool
	tables map[string]*table
	order  []string
	nextID int
}

var _ kvstore.Store = (*Store)(nil)

type group struct {
	id     string
	parts  int
	hasher codec.Hasher
	shards []*shard
}

// shard owns the log files (one per member table) for one part.
type shard struct {
	part int
	mu   sync.Mutex
	logs map[string]*partLog // table name -> log
}

// partLog is one table-part: an append-only log plus its index.
type partLog struct {
	file   *os.File
	size   int64
	index  map[any]entry // key -> location of live value
	writer *bufio.Writer
}

type entry struct {
	off  int64
	vlen int32
}

// New creates (or reopens) a Store rooted at dir. Existing table logs under
// dir are NOT auto-discovered; CreateTable with a name whose logs exist
// replays them.
func New(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: mkdir %s: %w", dir, err)
	}
	s := &Store{
		dir:          dir,
		defaultParts: 4,
		tables:       make(map[string]*table),
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "diskstore" }

// DefaultParts implements kvstore.Store.
func (s *Store) DefaultParts() int { return s.defaultParts }

// CreateTable implements kvstore.Store. If log files for the table already
// exist under the store directory they are replayed, making the previous
// contents visible again.
func (s *Store) CreateTable(name string, opts ...kvstore.TableOption) (kvstore.Table, error) {
	cfg := kvstore.ApplyOptions(s.defaultParts, opts)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, kvstore.ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrTableExists, name)
	}
	var g *group
	if cfg.ConsistentWith != "" {
		base, ok := s.tables[cfg.ConsistentWith]
		if !ok {
			return nil, fmt.Errorf("%w: consistent-with %q", kvstore.ErrNoTable, cfg.ConsistentWith)
		}
		g = base.group
	} else {
		s.nextID++
		g = &group{id: fmt.Sprintf("g%d", s.nextID), parts: cfg.Parts, hasher: cfg.Hasher}
		for p := 0; p < cfg.Parts; p++ {
			g.shards = append(g.shards, &shard{part: p, logs: make(map[string]*partLog)})
		}
	}
	t := &table{store: s, name: name, group: g, ubiquitous: cfg.Ubiquitous}
	parts := g.parts
	if cfg.Ubiquitous {
		parts = 1
	}
	for p := 0; p < parts; p++ {
		pl, err := s.openPartLog(name, p)
		if err != nil {
			return nil, err
		}
		sh := g.shards[p]
		sh.mu.Lock()
		sh.logs[name] = pl
		sh.mu.Unlock()
	}
	s.tables[name] = t
	s.order = append(s.order, name)
	return t, nil
}

func (s *Store) logPath(table string, part int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.%d.log", table, part))
}

func (s *Store) openPartLog(table string, part int) (*partLog, error) {
	path := s.logPath(table, part)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: open %s: %w", path, err)
	}
	start := time.Now()
	pl := &partLog{file: f, index: make(map[any]entry)}
	if err := pl.replay(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("diskstore: replay %s: %w", path, err)
	}
	if pl.size > 0 {
		s.tracer.Record(trace.KindLogReplay, table, 0, part, pl.size, time.Since(start))
	}
	pl.writer = bufio.NewWriter(f)
	return pl, nil
}

// Log record layout: [1B op][4B klen][4B vlen][key bytes][value bytes]
// op 1 = put, 2 = delete (vlen = 0).
const (
	opPut    = 1
	opDelete = 2
)

func (pl *partLog) replay() error {
	if _, err := pl.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(pl.file)
	var off int64
	var hdr [9]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				break // truncated tail: drop the partial record
			}
			return err
		}
		op := hdr[0]
		klen := int32(binary.BigEndian.Uint32(hdr[1:5]))
		vlen := int32(binary.BigEndian.Uint32(hdr[5:9]))
		kbuf := make([]byte, klen)
		if _, err := io.ReadFull(r, kbuf); err != nil {
			break
		}
		key, err := codec.Decode(kbuf)
		if err != nil {
			return err
		}
		voff := off + 9 + int64(klen)
		if vlen > 0 {
			if _, err := r.Discard(int(vlen)); err != nil {
				break
			}
		}
		switch op {
		case opPut:
			pl.index[key] = entry{off: voff, vlen: vlen}
		case opDelete:
			delete(pl.index, key)
		default:
			return fmt.Errorf("bad op byte %d at offset %d", op, off)
		}
		off = voff + int64(vlen)
	}
	pl.size = off
	// Truncate any partial tail so appends start at a clean boundary.
	if err := pl.file.Truncate(off); err != nil {
		return err
	}
	_, err := pl.file.Seek(off, io.SeekStart)
	return err
}

// appendRecord writes one record and updates the index. Caller holds the
// shard lock.
func (pl *partLog) appendRecord(op byte, key any, value any) error {
	kbuf, err := codec.Encode(key)
	if err != nil {
		return err
	}
	var vbuf []byte
	if op == opPut {
		// A pre-encoded value is already in wire form; log its bytes
		// verbatim (readValue decodes them the same either way).
		if enc, ok := value.(codec.Encoded); ok {
			vbuf = enc.Bytes()
		} else {
			vbuf, err = codec.Encode(value)
			if err != nil {
				return err
			}
		}
	}
	var hdr [9]byte
	hdr[0] = op
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(kbuf)))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(vbuf)))
	if _, err := pl.writer.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := pl.writer.Write(kbuf); err != nil {
		return err
	}
	if _, err := pl.writer.Write(vbuf); err != nil {
		return err
	}
	voff := pl.size + 9 + int64(len(kbuf))
	switch op {
	case opPut:
		pl.index[key] = entry{off: voff, vlen: int32(len(vbuf))}
	case opDelete:
		delete(pl.index, key)
	}
	pl.size = voff + int64(len(vbuf))
	return nil
}

// readValue fetches and decodes the value at e. Caller holds the shard lock.
func (pl *partLog) readValue(e entry) (any, error) {
	if err := pl.writer.Flush(); err != nil {
		return nil, err
	}
	buf := make([]byte, e.vlen)
	if _, err := pl.file.ReadAt(buf, e.off); err != nil {
		return nil, err
	}
	return codec.Decode(buf)
}

// LookupTable implements kvstore.Store.
func (s *Store) LookupTable(name string) (kvstore.Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, false
	}
	return t, true
}

// DropTable implements kvstore.Store: the table's log files are removed.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", kvstore.ErrNoTable, name)
	}
	delete(s.tables, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	parts := t.group.parts
	if t.ubiquitous {
		parts = 1
	}
	for p := 0; p < parts; p++ {
		sh := t.group.shards[p]
		sh.mu.Lock()
		if pl := sh.logs[name]; pl != nil {
			_ = pl.writer.Flush()
			_ = pl.file.Close()
			delete(sh.logs, name)
		}
		sh.mu.Unlock()
		_ = os.Remove(s.logPath(name, p))
	}
	return nil
}

// Tables implements kvstore.Store.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// RunAgent implements kvstore.Store.
func (s *Store) RunAgent(tableName string, part int, agent kvstore.Agent) (any, error) {
	s.mu.Lock()
	t, ok := s.tables[tableName]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, kvstore.ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	parts := t.Parts()
	if err := kvstore.CheckPart(part, parts); err != nil {
		return nil, err
	}
	sv := &shardView{store: s, group: t.group, shard: t.group.shards[part]}
	return agent(sv)
}

// Flush implements kvstore.Flusher: it drains every table-part's buffered
// writer to the OS, so everything appended so far survives a process kill.
// (Appends are buffered; without a flush only reads, compactions, and Close
// drain the buffer, and a SIGKILLed process loses the buffered tail.) It does
// not fsync — the durability target is process death, not power loss.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var firstErr error
	for _, t := range s.tables {
		parts := t.group.parts
		if t.ubiquitous {
			parts = 1
		}
		for p := 0; p < parts; p++ {
			sh := t.group.shards[p]
			sh.mu.Lock()
			if pl := sh.logs[t.name]; pl != nil {
				if err := pl.writer.Flush(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			sh.mu.Unlock()
		}
	}
	return firstErr
}

// Close implements kvstore.Store: flushes and closes every log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, t := range s.tables {
		parts := t.group.parts
		if t.ubiquitous {
			parts = 1
		}
		for p := 0; p < parts; p++ {
			sh := t.group.shards[p]
			sh.mu.Lock()
			if pl := sh.logs[t.name]; pl != nil {
				if err := pl.writer.Flush(); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := pl.file.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
				delete(sh.logs, t.name)
			}
			sh.mu.Unlock()
		}
	}
	return firstErr
}

func sortKeysStable(keys []any) {
	sort.Slice(keys, func(i, j int) bool { return codec.CompareKeys(keys[i], keys[j]) < 0 })
}

// openAppend opens path for appending; split out for tests that need to
// corrupt a log.
func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
}

// Compact rewrites every part log of the named table, dropping overwritten
// and deleted records. It reclaims space after churn; contents are
// unchanged.
func (s *Store) Compact(tableName string) error {
	s.mu.Lock()
	t, ok := s.tables[tableName]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return kvstore.ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	parts := t.group.parts
	if t.ubiquitous {
		parts = 1
	}
	for p := 0; p < parts; p++ {
		if err := s.compactPart(t, p); err != nil {
			return fmt.Errorf("diskstore: compact %s part %d: %w", tableName, p, err)
		}
	}
	return nil
}

func (s *Store) compactPart(t *table, part int) error {
	sh := t.group.shards[part]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pl := sh.logs[t.name]
	if pl == nil {
		return fmt.Errorf("%w: %q", kvstore.ErrNoTable, t.name)
	}
	if err := pl.writer.Flush(); err != nil {
		return err
	}
	start := time.Now()
	sizeBefore := pl.size

	tmpPath := s.logPath(t.name, part) + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	fresh := &partLog{file: tmp, index: make(map[any]entry), writer: bufio.NewWriter(tmp)}
	keys := make([]any, 0, len(pl.index))
	for k := range pl.index {
		keys = append(keys, k)
	}
	sortKeysStable(keys)
	for _, k := range keys {
		v, err := pl.readValue(pl.index[k])
		if err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmpPath)
			return err
		}
		if err := fresh.appendRecord(opPut, k, v); err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmpPath)
			return err
		}
	}
	if err := fresh.writer.Flush(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpPath)
		return err
	}
	// Swap the compacted log into place.
	livePath := s.logPath(t.name, part)
	if err := pl.file.Close(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, livePath); err != nil {
		return err
	}
	*pl = *fresh
	s.tracer.Record(trace.KindCompaction, t.name, 0, part, sizeBefore-pl.size, time.Since(start))
	return nil
}

// LogSize reports the on-disk byte size of the named table's logs.
func (s *Store) LogSize(tableName string) (int64, error) {
	s.mu.Lock()
	t, ok := s.tables[tableName]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	parts := t.group.parts
	if t.ubiquitous {
		parts = 1
	}
	var total int64
	for p := 0; p < parts; p++ {
		sh := t.group.shards[p]
		sh.mu.Lock()
		if pl := sh.logs[t.name]; pl != nil {
			_ = pl.writer.Flush()
			total += pl.size
		}
		sh.mu.Unlock()
	}
	return total, nil
}

package workload

import (
	"math/rand"
	"testing"
)

func TestPowerLawDirectedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := PowerLawDirected(rng, 1000, 20000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 1000 {
		t.Errorf("NumVertices = %d", g.NumVertices)
	}
	if g.NumEdges() != 20000 {
		t.Errorf("NumEdges = %d, want 20000", g.NumEdges())
	}
	// No duplicate edges per source.
	for u, out := range g.Out {
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] {
				t.Fatalf("duplicate edge %d -> %d", u, out[i])
			}
		}
	}
}

func TestPowerLawDirectedDeterministic(t *testing.T) {
	g1, _ := PowerLawDirected(rand.New(rand.NewSource(7)), 500, 5000, 1.4)
	g2, _ := PowerLawDirected(rand.New(rand.NewSource(7)), 500, 5000, 1.4)
	for u := range g1.Out {
		if len(g1.Out[u]) != len(g2.Out[u]) {
			t.Fatalf("vertex %d degree differs", u)
		}
		for i := range g1.Out[u] {
			if g1.Out[u][i] != g2.Out[u][i] {
				t.Fatalf("vertex %d edge %d differs", u, i)
			}
		}
	}
}

func TestPowerLawDirectedIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := PowerLawDirected(rng, 2000, 40000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// In-degree distribution should be heavily skewed: the top 1% of
	// vertices should absorb far more than 1% of edges.
	indeg := make([]int, g.NumVertices)
	for _, out := range g.Out {
		for _, v := range out {
			indeg[v]++
		}
	}
	sortDesc(indeg)
	top := 0
	for _, d := range indeg[:g.NumVertices/100] {
		top += d
	}
	if frac := float64(top) / float64(g.NumEdges()); frac < 0.05 {
		t.Errorf("top-1%% in-degree share = %.3f, want skew >= 0.05", frac)
	}
}

func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestPowerLawDirectedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PowerLawDirected(rng, 0, 10, 1.5); err == nil {
		t.Error("zero vertices accepted")
	}
	if _, err := PowerLawDirected(rng, 10, 10, 1.0); err == nil {
		t.Error("exponent 1.0 accepted")
	}
	if _, err := PowerLawDirected(rng, 10, 90, 1.5); err == nil {
		t.Error("over-dense graph accepted")
	}
}

func TestUndirectedBasics(t *testing.T) {
	g := NewUndirected(10)
	if g.NumEdges() != 0 {
		t.Errorf("fresh graph has %d edges", g.NumEdges())
	}
	if !g.AddEdge(1, 2) {
		t.Error("AddEdge(1,2) not new")
	}
	if g.AddEdge(2, 1) {
		t.Error("AddEdge(2,1) reported new (undirected dup)")
	}
	if g.AddEdge(3, 3) {
		t.Error("self-loop accepted")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("edge not symmetric")
	}
	if !g.RemoveEdge(1, 2) {
		t.Error("RemoveEdge failed")
	}
	if g.RemoveEdge(1, 2) {
		t.Error("double remove reported true")
	}
	if g.HasEdge(1, 2) {
		t.Error("edge survived removal")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewUndirected(10)
	for _, v := range []int{7, 2, 9, 4} {
		g.AddEdge(0, v)
	}
	nbrs := g.Neighbors(0)
	want := []int32{2, 4, 7, 9}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors = %v", nbrs)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Errorf("Neighbors = %v, want %v", nbrs, want)
			break
		}
	}
}

func TestPowerLawUndirected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := PowerLawUndirected(rng, 1000, 9000, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 9000 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	// Symmetry invariant.
	for u := 0; u < g.NumVertices; u++ {
		for v := range g.Adj[u] {
			if _, ok := g.Adj[v][int32(u)]; !ok {
				t.Fatalf("asymmetric edge %d-%d", u, v)
			}
		}
	}
}

func TestChangeBatchAndApply(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := PowerLawUndirected(rng, 300, 2000, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	batch := ChangeBatch(rng, 300, 1000, 1.3, 0.5)
	if len(batch) != 1000 {
		t.Fatalf("batch size = %d", len(batch))
	}
	adds, removes := 0, 0
	for _, c := range batch {
		switch c.Kind {
		case AddEdge:
			adds++
		case RemoveEdge:
			removes++
		default:
			t.Fatalf("bad kind %v", c.Kind)
		}
	}
	if adds == 0 || removes == 0 {
		t.Errorf("adds=%d removes=%d, want a mix", adds, removes)
	}
	applied, noops := 0, 0
	for _, c := range batch {
		if g.Apply(c) {
			applied++
		} else {
			noops++
		}
	}
	// The paper notes some changes will be no-ops; both outcomes occur.
	if applied == 0 || noops == 0 {
		t.Errorf("applied=%d noops=%d, want both nonzero", applied, noops)
	}
	// Symmetry preserved after churn.
	for u := 0; u < g.NumVertices; u++ {
		for v := range g.Adj[u] {
			if _, ok := g.Adj[v][int32(u)]; !ok {
				t.Fatalf("asymmetric edge %d-%d after changes", u, v)
			}
		}
	}
}

func TestApplyRejectsOutOfRange(t *testing.T) {
	g := NewUndirected(5)
	if g.Apply(Change{Kind: AddEdge, U: -1, V: 2}) {
		t.Error("negative vertex accepted")
	}
	if g.Apply(Change{Kind: AddEdge, U: 1, V: 7}) {
		t.Error("out-of-range vertex accepted")
	}
	if g.Apply(Change{Kind: AddEdge, U: 2, V: 2}) {
		t.Error("self-loop accepted")
	}
}

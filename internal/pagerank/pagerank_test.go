package pagerank

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ripple/internal/ebsp"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/workload"
)

func newEngine(t *testing.T, m *metrics.Collector) *ebsp.Engine {
	t.Helper()
	opts := []memstore.Option{memstore.WithParts(6)} // the paper's 6 partitions
	if m != nil {
		opts = append(opts, memstore.WithMetrics(m))
	}
	store := memstore.New(opts...)
	t.Cleanup(func() { _ = store.Close() })
	eopts := []ebsp.Option{}
	if m != nil {
		eopts = append(eopts, ebsp.WithMetrics(m))
	}
	return ebsp.NewEngine(store, eopts...)
}

func genGraph(t *testing.T, v, e int, seed int64) *workload.DirectedGraph {
	t.Helper()
	g, err := workload.PowerLawDirected(rand.New(rand.NewSource(seed)), v, e, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func maxRelErr(t *testing.T, got map[int]float64, want []float64) float64 {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rank count = %d, want %d", len(got), len(want))
	}
	worst := 0.0
	for v, w := range want {
		g, ok := got[v]
		if !ok {
			t.Fatalf("vertex %d missing from results", v)
		}
		den := math.Abs(w)
		if den < 1e-300 {
			den = 1e-300
		}
		if rel := math.Abs(g-w) / den; rel > worst {
			worst = rel
		}
	}
	return worst
}

func TestDirectMatchesReference(t *testing.T) {
	g := genGraph(t, 400, 3000, 1)
	e := newEngine(t, nil)
	tab, err := LoadGraph(e.Store(), "graph", g, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{GraphTable: "graph", Iterations: 8}
	res, err := RunDirect(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 9 {
		t.Errorf("direct variant Steps = %d, want 9 (bootstrap + one per iteration)", res.Steps)
	}
	got, err := ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(g, 0.85, 8)
	if rel := maxRelErr(t, got, want); rel > 1e-9 {
		t.Errorf("max relative error vs reference = %g", rel)
	}
}

func TestMapReduceMatchesReference(t *testing.T) {
	g := genGraph(t, 400, 3000, 1)
	e := newEngine(t, nil)
	tab, err := LoadGraph(e.Store(), "graph", g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := SeedRanks(tab); err != nil {
		t.Fatal(err)
	}
	sum, err := RunMapReduce(e, Config{GraphTable: "graph", Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Steps != 16 {
		t.Errorf("MR variant Steps = %d, want 16 (two per iteration)", sum.Steps)
	}
	got, err := ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(g, 0.85, 8)
	if rel := maxRelErr(t, got, want); rel > 1e-9 {
		t.Errorf("max relative error vs reference = %g", rel)
	}
}

func TestVariantsAgree(t *testing.T) {
	g := genGraph(t, 300, 2500, 9)

	eD := newEngine(t, nil)
	tabD, _ := LoadGraph(eD.Store(), "g", g, 6)
	if _, err := RunDirect(eD, Config{GraphTable: "g", Iterations: 6}); err != nil {
		t.Fatal(err)
	}
	direct, _ := ReadRanks(tabD)

	eM := newEngine(t, nil)
	tabM, _ := LoadGraph(eM.Store(), "g", g, 6)
	_ = SeedRanks(tabM)
	if _, err := RunMapReduce(eM, Config{GraphTable: "g", Iterations: 6}); err != nil {
		t.Fatal(err)
	}
	mr, _ := ReadRanks(tabM)

	for v, dv := range direct {
		if math.Abs(dv-mr[v]) > 1e-10 {
			t.Errorf("vertex %d: direct %g vs mr %g", v, dv, mr[v])
		}
	}
}

func TestRanksSumToOne(t *testing.T) {
	g := genGraph(t, 500, 4000, 3)
	e := newEngine(t, nil)
	tab, _ := LoadGraph(e.Store(), "g", g, 6)
	if _, err := RunDirect(e, Config{GraphTable: "g", Iterations: 10}); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadRanks(tab)
	sum := 0.0
	for _, r := range got {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %g, want 1", sum)
	}
}

func TestDanglingVertices(t *testing.T) {
	// A graph where one vertex has no outgoing edges at all.
	g := &workload.DirectedGraph{
		NumVertices: 3,
		Out: [][]int32{
			{1, 2},
			{2},
			{}, // dangling
		},
	}
	e := newEngine(t, nil)
	tab, _ := LoadGraph(e.Store(), "g", g, 2)
	if _, err := RunDirect(e, Config{GraphTable: "g", Iterations: 12}); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadRanks(tab)
	want := Reference(g, 0.85, 12)
	if rel := maxRelErr(t, got, want); rel > 1e-9 {
		t.Errorf("dangling handling diverges from reference: %g", rel)
	}
	sum := got[0] + got[1] + got[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %g", sum)
	}
}

func TestDirectHasFewerBarriersAndIO(t *testing.T) {
	// The architectural claim behind Table I: the direct variant does half
	// the synchronization rounds and avoids per-iteration table I/O.
	g := genGraph(t, 200, 1500, 5)

	mD := &metrics.Collector{}
	eD := newEngine(t, mD)
	_, _ = LoadGraph(eD.Store(), "g", g, 6)
	base := mD.Snapshot()
	if _, err := RunDirect(eD, Config{GraphTable: "g", Iterations: 6}); err != nil {
		t.Fatal(err)
	}
	direct := mD.Snapshot().Sub(base)

	mM := &metrics.Collector{}
	eM := newEngine(t, mM)
	tabM, _ := LoadGraph(eM.Store(), "g", g, 6)
	_ = SeedRanks(tabM)
	baseM := mM.Snapshot()
	if _, err := RunMapReduce(eM, Config{GraphTable: "g", Iterations: 6}); err != nil {
		t.Fatal(err)
	}
	mr := mM.Snapshot().Sub(baseM)

	if direct.Barriers != 7 || mr.Barriers != 12 {
		t.Errorf("barriers: direct %d (want iterations+1 = 7), mr %d (want 2*iterations = 12)",
			direct.Barriers, mr.Barriers)
	}
	if direct.StorePuts >= mr.StorePuts {
		t.Errorf("store puts: direct %d, mr %d — direct must do less I/O", direct.StorePuts, mr.StorePuts)
	}
}

func TestConfigValidation(t *testing.T) {
	e := newEngine(t, nil)
	cases := []Config{
		{GraphTable: "g", Iterations: 0},
		{GraphTable: "g", Iterations: 3, Damping: 1.5},
		{GraphTable: "", Iterations: 3},
	}
	for _, cfg := range cases {
		if _, err := RunDirect(e, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("cfg %+v: err = %v", cfg, err)
		}
	}
	if _, err := RunDirect(e, Config{GraphTable: "absent", Iterations: 1}); err == nil {
		t.Error("missing table accepted")
	}
}

func TestRestartFromRankedTable(t *testing.T) {
	// The enhanced table left by one run can seed another run.
	g := genGraph(t, 100, 600, 2)
	e := newEngine(t, nil)
	tab, _ := LoadGraph(e.Store(), "g", g, 6)
	if _, err := RunDirect(e, Config{GraphTable: "g", Iterations: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunDirect(e, Config{GraphTable: "g", Iterations: 3}); err != nil {
		t.Fatalf("second run over ranked table: %v", err)
	}
	got, err := ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Errorf("ranks = %d", len(got))
	}
}

// Package ebsp implements Ripple's key/value extended bulk-synchronous-
// parallel (K/V EBSP) programming model and its execution engine — the
// paper's primary contribution (§II, §IV).
//
// A job is a set of components identified by keys. Execution alternates
// compute steps with synchronization barriers across which all messages flow;
// in each step only the enabled components run (selective enablement), and a
// job whose declared properties allow it can run with no barriers at all.
// Component state lives in key/value tables behind the narrow kvstore SPI;
// messages move in spill batches through a private transport table (or a
// queue set, for no-sync execution).
package ebsp

import (
	"errors"
	"fmt"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
)

// Validation and execution errors.
var (
	// ErrNoCompute is returned for a job without a Compute.
	ErrNoCompute = errors.New("ebsp: job has no Compute")
	// ErrBadJob is returned for other job specification problems.
	ErrBadJob = errors.New("ebsp: invalid job")
	// ErrPropertyViolated is returned when observed behaviour contradicts a
	// declared job property.
	ErrPropertyViolated = errors.New("ebsp: declared job property violated")
	// ErrNoSyncIneligible is returned when a strategy override requests
	// no-sync execution but the job's properties do not permit it.
	ErrNoSyncIneligible = errors.New("ebsp: job not eligible for no-sync execution")
)

// Compute is the component execution function (paper Listing 2). Compute is
// invoked once per enabled component per step; it reads its inputs from and
// delivers its outputs to the Context, and returns the continue signal:
// true to be enabled in the following step even without messages.
type Compute interface {
	Compute(ctx *Context) bool
}

// ComputeFunc adapts a function to the Compute interface.
type ComputeFunc func(ctx *Context) bool

// Compute implements Compute.
func (f ComputeFunc) Compute(ctx *Context) bool { return f(ctx) }

// MessageCombiner merges two messages destined for the same component in the
// same step (paper: combine2msgs). The platform may apply it pairwise at
// arbitrary times and places, so it must be associative and commutative.
// Implement it on the job's Compute object or set Job.Combiner.
type MessageCombiner interface {
	CombineMessages(key, m1, m2 any) any
}

// StateCombiner merges conflicting newly created component states (paper:
// combine2states).
type StateCombiner interface {
	CombineStates(key, s1, s2 any) any
}

// Aggregator is one named aggregation, Pregel-style (paper §II). Compute
// invocations feed values in during a step; the combined result is readable
// in the following step. Combine must be associative and commutative.
type Aggregator interface {
	// Zero is the identity input.
	Zero() any
	// Combine merges two partial aggregations.
	Combine(a, b any) any
}

// Aborter lets a client stop a job early; it is consulted between steps with
// the aggregate results of the step just finished (paper §II: "invoked
// between steps it returns a boolean indicating whether execution should be
// stopped immediately").
type Aborter interface {
	ShouldAbort(step int, aggregates map[string]any) bool
}

// AborterFunc adapts a function to the Aborter interface.
type AborterFunc func(step int, aggregates map[string]any) bool

// ShouldAbort implements Aborter.
func (f AborterFunc) ShouldAbort(step int, aggregates map[string]any) bool {
	return f(step, aggregates)
}

// Loader computes a job's initial condition from some source (paper §II): an
// initial message set, initial component states, additional enabled
// components, and initial aggregator inputs.
type Loader interface {
	Load(lc *LoadContext) error
}

// LoaderFunc adapts a function to the Loader interface.
type LoaderFunc func(lc *LoadContext) error

// Load implements Loader.
func (f LoaderFunc) Load(lc *LoadContext) error { return f(lc) }

// Exporter consumes one key/value pair of job output — either the final
// contents of a state table or direct job output (paper §II).
type Exporter interface {
	Export(key, value any) error
}

// ExporterFunc adapts a function to the Exporter interface.
type ExporterFunc func(key, value any) error

// Export implements Exporter.
func (f ExporterFunc) Export(key, value any) error { return f(key, value) }

// Properties are the declared job properties of §II-A. The engine derives
// no-agg and no-client-sync itself (they are visible in the job spec); the
// others must be declared because they constrain behaviour the engine cannot
// check up front. Declaring a property the job violates yields undefined
// results (the engine reports ErrPropertyViolated where it can detect it).
type Properties struct {
	// NeedsOrder: collocated compute invocations must be ordered by key.
	NeedsOrder bool
	// NoContinue: the compute method always returns the negative signal.
	NoContinue bool
	// OneMsg: for a given destination key and step there is at most one
	// message.
	OneMsg bool
	// RareState: the bandwidth of state access is much less than the
	// bandwidth of messaging, so computes may run away from their state.
	RareState bool
	// NoStepOrder (paper: no-ss-order): compute invocations for a given key
	// need not be in step order.
	NoStepOrder bool
	// Incremental: messages for a component can be delivered in any order
	// and grouping, with no regard for steps, provided per-(sender,receiver)
	// order is preserved.
	Incremental bool
	// Deterministic: the compute function is deterministic, enabling
	// replay-based fault recovery.
	Deterministic bool
}

// Job specifies one K/V EBSP job (paper Listing 1, as an idiomatic Go spec
// struct). Zero values are meaningful everywhere: a job needs only a Compute
// and some source of initial work to run.
type Job struct {
	// Name labels the job; it namespaces the engine's private tables.
	Name string

	// StateTables names the key/value tables factoring the components'
	// state, addressed by index from Context.ReadState et al. Missing tables
	// are created by the engine, consistently partitioned with the first
	// existing one. All must be co-placed.
	StateTables []string

	// Compute is the component execution function. If it also implements
	// MessageCombiner or StateCombiner those are used unless the explicit
	// fields below are set.
	Compute Compute

	// Combiner pairwise-combines messages for one destination key and step.
	Combiner MessageCombiner

	// StateCombiner merges conflicting created states.
	StateCombiner StateCombiner

	// Aggregators are the job's individual aggregators, by name.
	Aggregators map[string]Aggregator

	// ReferenceTable names the table holding immutable broadcast data,
	// readable cheaply by every compute invocation. Typically ubiquitous.
	ReferenceTable string

	// Loaders provide the initial condition.
	Loaders []Loader

	// Exporters, keyed by state table name, receive the final contents of
	// those tables after the job completes.
	Exporters map[string]Exporter

	// DirectOutput receives direct job output pairs as they are produced.
	DirectOutput Exporter

	// Aborter, if set, is consulted between steps for early termination.
	Aborter Aborter

	// Properties are the declared special-case properties (§II-A).
	Properties Properties

	// Placement names the table whose partitioning drives the computation:
	// one execution slot per part. Defaults to the first state table, then
	// to an engine-created private table with PartsHint parts.
	Placement string

	// PartsHint sizes the private placement table when the job has neither
	// state tables nor an explicit Placement. 0 means the store default.
	PartsHint int

	// MaxSteps bounds execution; 0 means unbounded (the job runs until no
	// components are enabled or the aborter fires).
	MaxSteps int
}

// combiner resolves the effective message combiner.
func (j *Job) combiner() MessageCombiner {
	if j.Combiner != nil {
		return j.Combiner
	}
	if mc, ok := j.Compute.(MessageCombiner); ok {
		return mc
	}
	return nil
}

// stateCombiner resolves the effective state combiner.
func (j *Job) stateCombiner() StateCombiner {
	if j.StateCombiner != nil {
		return j.StateCombiner
	}
	if sc, ok := j.Compute.(StateCombiner); ok {
		return sc
	}
	return nil
}

// validate performs the static checks.
func (j *Job) validate() error {
	if j.Compute == nil {
		return ErrNoCompute
	}
	seen := make(map[string]bool, len(j.StateTables))
	for _, name := range j.StateTables {
		if name == "" {
			return fmt.Errorf("%w: empty state table name", ErrBadJob)
		}
		if seen[name] {
			return fmt.Errorf("%w: duplicate state table %q", ErrBadJob, name)
		}
		seen[name] = true
	}
	for name := range j.Exporters {
		if !seen[name] {
			return fmt.Errorf("%w: exporter for unknown state table %q", ErrBadJob, name)
		}
	}
	if j.MaxSteps < 0 {
		return fmt.Errorf("%w: negative MaxSteps", ErrBadJob)
	}
	if j.PartsHint < 0 {
		return fmt.Errorf("%w: negative PartsHint", ErrBadJob)
	}
	return nil
}

// Strategy is the execution plan derived from a job's properties (§II-A):
// which of the five optimization areas apply.
type Strategy struct {
	// Sort: collocated invocations are ordered by key (needs-order).
	Sort bool
	// Collect: multiple messages for a component+step are collected into a
	// value list before invocation. ¬(one-msg ∧ no-continue) requires it.
	Collect bool
	// RunAnywhere: compute invocations may run away from their state via
	// work stealing (no-collect ∧ rare-state).
	RunAnywhere bool
	// Sync: execution uses synchronization barriers between steps. The
	// no-sync condition is (no-collect ∧ no-ss-order ∨ incremental) ∧
	// no-agg ∧ no-client-sync.
	Sync bool
	// FastRecovery: replay-based fault recovery (deterministic), used when
	// the store offers per-shard transactions.
	FastRecovery bool
}

// planFor derives the Strategy from the job (§II-A implications).
func planFor(j *Job) Strategy {
	noAgg := len(j.Aggregators) == 0 // detected, not declared
	noClientSync := j.Aborter == nil // detected, not declared
	p := j.Properties
	noCollect := p.OneMsg && p.NoContinue
	s := Strategy{
		Sort:         p.NeedsOrder,
		Collect:      !noCollect,
		RunAnywhere:  noCollect && p.RareState,
		Sync:         true,
		FastRecovery: p.Deterministic,
	}
	if (noCollect && p.NoStepOrder || p.Incremental) && noAgg && noClientSync {
		s.Sync = false
	}
	return s
}

// Clamp constrains an overridden strategy so it can only be more conservative
// than the derived plan: sorting and collecting can be switched on, work
// stealing and barrier removal switched off, fast recovery switched off.
// Unsafe directions are reverted to the derived plan.
func (s Strategy) Clamp(derived Strategy) Strategy {
	out := s
	if derived.Sort {
		out.Sort = true // job needs order; cannot drop
	}
	if derived.Collect {
		out.Collect = true // job needs collection; cannot drop
	}
	if !derived.RunAnywhere {
		out.RunAnywhere = false // job pins computes to their state
	}
	if derived.Sync {
		out.Sync = true // job needs barriers; cannot drop
	}
	if !derived.FastRecovery {
		out.FastRecovery = false // non-deterministic jobs cannot replay
	}
	return out
}

// Result is what a job execution yields (paper §II): final aggregator
// results and the number of steps taken. Final component states are read
// through the K/V store or the job's Exporters; direct job output goes to
// the job's DirectOutput exporter.
type Result struct {
	// Steps is the number of compute steps executed.
	Steps int
	// Aggregates holds the final aggregator results by name.
	Aggregates map[string]any
	// Aborted reports whether the job's aborter stopped it.
	Aborted bool
	// Strategy is the execution plan that ran.
	Strategy Strategy
	// Recoveries counts fault-recovery replays performed.
	Recoveries int
}

// internal message kinds carried in spills.
const (
	kindData     = byte(0) // ordinary message: Val is the payload
	kindContinue = byte(1) // continue signal turned into a message (§IV-A)
	kindCreate   = byte(2) // state creation request: Val is createPayload
)

// envelope is one in-flight message. Trace and Span carry the causal
// context of the producing execution (the job run's trace ID and the
// sender's span ID); both are zero when the run is unsampled, in which case
// the wire codec emits the exact pre-trace byte layout (see wire.go).
type envelope struct {
	Dst   any
	Val   any
	Kind  byte
	Src   int    // source part (-1 for loader-injected)
	Seq   int    // per-source sequence for deterministic delivery order
	Trace uint64 // trace ID of the producing job run (0 = unsampled)
	Span  uint64 // span ID of the producing execution (0 = unsampled)
}

// createPayload carries a CreateState request.
type createPayload struct {
	Tab   int
	State any
}

// spillKey locates one spill batch: all messages from part Src to part Dst
// delivered at step Step. Its KeyHash pins it to the destination part.
type spillKey struct {
	Step int
	Dst  int
	Src  int
}

// KeyHash implements codec.KeyHasher: a spill is placed in its destination
// part (Dst < parts, so hash % parts == Dst under any part count the
// transport table can have).
func (k spillKey) KeyHash() uint64 { return uint64(k.Dst) }

// queueMsg wraps an envelope with its termination-detection weight for
// no-sync execution.
type queueMsg struct {
	Env    envelope
	Weight uint64
}

func init() {
	codec.Register(envelope{})
	codec.Register([]envelope{})
	codec.Register(createPayload{})
	codec.Register(spillKey{})
	codec.Register(queueMsg{})
}

// requireCoPlaced verifies that two tables can be joined by key.
func requireCoPlaced(a, b kvstore.Table) error {
	if a.Parts() != b.Parts() && !b.Ubiquitous() {
		return fmt.Errorf("%w: tables %q (%d parts) and %q (%d parts) are not co-placed",
			ErrBadJob, a.Name(), a.Parts(), b.Name(), b.Parts())
	}
	return nil
}

package diskstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// manifest records one table-part's durable shape: the live SSTable runs
// (newest first) and the next run sequence number. It is rewritten — tmp,
// fsync, atomic rename — after every memtable flush and compaction, and it
// is the open-time source of truth: runs it lists are loaded, .sst files it
// does not list are crash leftovers and are deleted, and the WAL is replayed
// on top. A part whose WAL is empty therefore reopens without replaying a
// single record.
type manifest struct {
	NextSeq uint64        `json:"next_seq"`
	Runs    []manifestRun `json:"runs"`
}

type manifestRun struct {
	Seq     uint64 `json:"seq"`
	Level   int    `json:"level"`
	Entries int64  `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// writeManifest atomically replaces the manifest at path.
func writeManifest(path string, m manifest) error {
	buf, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// readManifest loads the manifest at path; ok is false when none exists
// (a part that has never flushed).
func readManifest(path string) (m manifest, ok bool, err error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	if err := json.Unmarshal(buf, &m); err != nil {
		return manifest{}, false, fmt.Errorf("diskstore: manifest %s corrupt: %w", path, err)
	}
	return m, true, nil
}

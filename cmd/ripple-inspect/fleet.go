package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"ripple/internal/fleet"
	"ripple/internal/trace"
)

// Fleet mode: assemble and/or validate a merged cross-process timeline.
//
//	ripple-inspect -fleet engine.jsonl,srv0.jsonl,srv1.jsonl -out merged.json
//	    merge: the first dump is the engine/client process, the rest are
//	    part-servers in server-index order. Server clocks are aligned from
//	    matched client/server span pairs (median midpoint delta) and the
//	    merged timeline is written as OTLP JSON to -out.
//
//	ripple-inspect -fleet merged.json -check
//	    validate: every rpc_server span must be enclosed by the client rpc
//	    span that caused it; -check exits non-zero on any violation or when
//	    no pair matched at all.
//
// Both forms print the per-server alignment report and the wire-vs-exec
// latency decomposition.
func runFleet(pathsArg, outPath string, check bool) error {
	paths := strings.Split(pathsArg, ",")
	var merged []trace.Span
	var rep fleet.TimelineReport

	if len(paths) == 1 {
		spans, err := readSpans(paths[0])
		if err != nil {
			return err
		}
		if len(spans) == 0 {
			return fmt.Errorf("%s: no spans in dump", paths[0])
		}
		merged = spans
	} else {
		engine, err := readSpans(paths[0])
		if err != nil {
			return err
		}
		dumps := make([]fleet.ServerDump, 0, len(paths)-1)
		for i, p := range paths[1:] {
			spans, err := readSpans(p)
			if err != nil {
				return err
			}
			dumps = append(dumps, fleet.ServerDump{Server: i, Spans: spans})
		}
		merged, rep = fleet.Assemble(engine, dumps)
		fmt.Printf("assembled %d spans from %d dumps: %d pairs, %d unmatched client, %d unmatched server\n",
			len(merged), len(paths), rep.Pairs, rep.UnmatchedClient, rep.UnmatchedServer)
		for _, al := range rep.Servers {
			fmt.Printf("  server %d: offset %v ± %v (%s, %d pairs), max residual adjust %v\n",
				al.Server, time.Duration(al.OffsetNS), time.Duration(al.ErrorNS),
				al.Source, al.Pairs, time.Duration(al.MaxAdjustNS))
		}
		if outPath != "" {
			f, err := os.Create(outPath)
			if err != nil {
				return err
			}
			// Anchor at the epoch: offsets in the merged timeline are already
			// one coherent clock, and trace.Parse rebases on load anyway.
			err = trace.WriteOTLP(f, merged, time.Unix(0, 0))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("write %s: %w", outPath, err)
			}
			fmt.Printf("wrote merged timeline to %s\n", outPath)
		}
	}

	cr := fleet.Check(merged)
	fmt.Printf("\nenclosure check: %d pairs, %d violations, %d unmatched client, %d unmatched server\n",
		cr.Pairs, len(cr.Violations), cr.UnmatchedClient, cr.UnmatchedServer)
	for _, v := range cr.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}

	if br := fleet.Decompose(merged); len(br) > 0 {
		fmt.Printf("\nRPC latency decomposition (client-observed = server exec + wire):\n")
		fmt.Printf("  %-8s %-12s %7s %8s %12s %12s %12s\n",
			"SERVER", "ENDPOINT", "CALLS", "MATCHED", "CLIENT", "EXEC", "WIRE")
		for _, b := range br {
			fmt.Printf("  %-8s %-12s %7d %8d %12v %12v %12v\n",
				b.Server, b.Endpoint, b.Calls, b.Matched,
				time.Duration(b.ClientNS), time.Duration(b.ServerNS), time.Duration(b.WireNS))
		}
	}

	if check {
		if !cr.Ok() {
			if cr.Pairs == 0 {
				return fmt.Errorf("fleet check: no client/server span pair matched (untraced run, or dumps from different runs?)")
			}
			return fmt.Errorf("fleet check: %d of %d pairs violate enclosure", len(cr.Violations), cr.Pairs)
		}
		fmt.Printf("\nok: all %d client rpc spans enclose their server spans\n", cr.Pairs)
	}
	return nil
}

// Package serve is Ripple's long-lived job service: the "millions of users"
// front end the paper's architecture section gestures at. It exposes an
// HTTP/JSON API (POST /v1/jobs, GET /v1/jobs/{id}, .../result, .../events as
// SSE, DELETE to cancel) over the existing workload registry, multiplexing
// many submissions onto a pool of shared engines above one kvstore.Store —
// in-process or a part-server fleet, the SPI does not care.
//
// Admission control is three-layered: a worker pool bounds concurrent
// executions, a bounded FIFO queue absorbs bursts (submissions beyond it are
// rejected, not buffered without limit), and a per-tenant quota caps how many
// live jobs one API key may hold. Job records — spec, tenant, status, result
// — persist through the store SPI itself (a "__serve.jobs" table), so a
// daemon restart re-lists every job and resumes the ones that were running:
// checkpointed workloads continue from their snapshot via Engine.Resume, the
// rest re-run from their deterministic seed.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/trace"
)

// Job statuses. A job moves queued → running → {done, failed, canceled};
// a daemon crash can leave a persisted record at "running", which recovery
// re-queues for resumption.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Typed submission errors; the HTTP layer maps them to status codes.
var (
	ErrUnknownWorkload = errors.New("serve: unknown workload")
	ErrQuotaExceeded   = errors.New("serve: tenant quota exceeded")
	ErrQueueFull       = errors.New("serve: submission queue full")
	ErrUnknownJob      = errors.New("serve: unknown job")
	ErrNotFinished     = errors.New("serve: job not finished")
	ErrClosed          = errors.New("serve: service closed")
)

// jobsTable persists one JSON record per job through the store SPI.
const jobsTable = "__serve.jobs"

// JobRecord is one job's persisted state. It is both the durable record (as
// JSON in the jobs table) and the API representation.
type JobRecord struct {
	ID       string          `json:"id"`
	Tenant   string          `json:"tenant"`
	Workload string          `json:"workload"`
	Params   json.RawMessage `json:"params,omitempty"`
	Status   string          `json:"status"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	// Resumed marks a run continued after a daemon restart.
	Resumed bool `json:"resumed,omitempty"`
	// CancelRequested distinguishes a user cancel from a shutdown
	// interruption: only the former makes the terminal status "canceled".
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Unix-millisecond timestamps; zero when the phase has not happened.
	Submitted int64 `json:"submitted,omitempty"`
	Started   int64 `json:"started,omitempty"`
	Finished  int64 `json:"finished,omitempty"`
}

// Terminal reports whether the record's status is final.
func (r *JobRecord) Terminal() bool {
	return r.Status == StatusDone || r.Status == StatusFailed || r.Status == StatusCanceled
}

func (r *JobRecord) clone() *JobRecord {
	c := *r
	c.Params = append(json.RawMessage(nil), r.Params...)
	c.Result = append(json.RawMessage(nil), r.Result...)
	return &c
}

// Options configures a Service.
type Options struct {
	// Store backs both job execution and the service's own job records.
	Store kvstore.Store
	// MaxConcurrent bounds simultaneously executing jobs (default 2); each
	// execution slot owns one engine over the shared store.
	MaxConcurrent int
	// QueueDepth bounds the FIFO of admitted-but-not-yet-running jobs
	// (default 16); submissions beyond it are rejected with ErrQueueFull.
	QueueDepth int
	// TenantQuota caps one tenant's live (queued + running) jobs
	// (default 4); excess submissions are rejected with ErrQuotaExceeded.
	TenantQuota int
	// CheckpointEvery snapshots synchronized jobs every n steps (default 4),
	// which is what makes restart-resume and mid-run self-healing work.
	CheckpointEvery int
	// Metrics, Tracer, Logger are optional observability attachments shared
	// by every execution slot.
	Metrics *metrics.Collector
	Tracer  *trace.Tracer
	Logger  *slog.Logger
	// EngineOptions are appended to every slot engine's options.
	EngineOptions []ebsp.Option
}

func (o *Options) normalize() error {
	if o.Store == nil {
		return errors.New("serve: Options.Store is required")
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.TenantQuota <= 0 {
		o.TenantQuota = 4
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 4
	}
	if o.Logger == nil {
		o.Logger = slog.New(discardHandler{})
	}
	return nil
}

// discardHandler is a no-op slog handler (slog.DiscardHandler is newer than
// some toolchains this repo targets).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Service is the job service: persistence, admission control, execution
// slots, and the event hub. Create with New, then Start; mount Handler on an
// HTTP server.
type Service struct {
	opts Options
	hub  *hub

	tab kvstore.Table // the jobs table

	mu      sync.Mutex
	jobs    map[string]*JobRecord
	cancels map[string]context.CancelFunc
	seq     int

	queue   chan string
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// New builds a Service over opts.Store. Call Start to load persisted jobs
// and begin executing.
func New(opts Options) (*Service, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	tab, err := ensureTable(opts.Store, jobsTable, 1)
	if err != nil {
		return nil, fmt.Errorf("serve: open jobs table: %w", err)
	}
	ctx, stop := context.WithCancel(context.Background())
	return &Service{
		opts:    opts,
		hub:     newHub(),
		tab:     tab,
		jobs:    make(map[string]*JobRecord),
		cancels: make(map[string]context.CancelFunc),
		queue:   make(chan string, opts.QueueDepth),
		baseCtx: ctx,
		stop:    stop,
	}, nil
}

// ensureTable opens name, creating it (parts > 0 sets the part count) when
// absent. On a log-backed store, creation replays any surviving log — this
// is the restart-recovery path for both the jobs table and workload tables.
func ensureTable(store kvstore.Store, name string, parts int) (kvstore.Table, error) {
	if t, ok := store.LookupTable(name); ok {
		return t, nil
	}
	var opts []kvstore.TableOption
	if parts > 0 {
		opts = append(opts, kvstore.WithParts(parts))
	}
	t, err := store.CreateTable(name, opts...)
	if err != nil && errors.Is(err, kvstore.ErrTableExists) {
		if t, ok := store.LookupTable(name); ok {
			return t, nil
		}
	}
	return t, err
}

// Start loads persisted job records, re-queues interrupted work, and starts
// the execution slots. It is not idempotent; call once.
func (s *Service) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("serve: already started")
	}
	s.started = true
	if err := s.recoverLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()

	for i := 0; i < s.opts.MaxConcurrent; i++ {
		slot := &slotObserver{hub: s.hub}
		engOpts := []ebsp.Option{
			ebsp.WithCheckpoints(s.opts.CheckpointEvery),
			ebsp.WithObserver(ebsp.StepObserverFunc(slot.onStep)),
			ebsp.WithProgressObserver(ebsp.ProgressObserverFunc(slot.onProgress), 256),
		}
		if s.opts.Metrics != nil {
			engOpts = append(engOpts, ebsp.WithMetrics(s.opts.Metrics))
		}
		if s.opts.Tracer != nil {
			engOpts = append(engOpts, ebsp.WithTracer(s.opts.Tracer))
		}
		engOpts = append(engOpts, s.opts.EngineOptions...)
		eng := ebsp.NewEngine(s.opts.Store, engOpts...)
		s.wg.Add(1)
		go s.worker(eng, engOpts, slot)
	}
	return nil
}

// recoverLocked re-lists persisted jobs after a restart: queued records go
// back on the queue in ID order; "running" records — interrupted mid-flight
// by the previous process's death — are re-queued for resumption.
func (s *Service) recoverLocked() error {
	var recs []*JobRecord
	err := kvstore.EnumerateAll(s.tab, func(_, value any) (bool, error) {
		raw, ok := value.(string)
		if !ok {
			return false, nil
		}
		var rec JobRecord
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			s.opts.Logger.Warn("serve: undecodable job record dropped", "err", err)
			return false, nil
		}
		recs = append(recs, &rec)
		return false, nil
	})
	if err != nil {
		return fmt.Errorf("serve: list jobs: %w", err)
	}
	// IDs are j<seq>; recover the counter and replay in submission order.
	pending := make([]*JobRecord, 0, len(recs))
	for _, rec := range recs {
		var n int
		if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
		s.jobs[rec.ID] = rec
		if rec.Terminal() {
			continue
		}
		pending = append(pending, rec)
	}
	sortRecords(pending)
	for _, rec := range pending {
		if rec.Status == StatusRunning {
			// Interrupted mid-run: keep the status (the worker resumes it)
			// and mark the record so clients can see it was carried over.
			rec.Resumed = true
			s.persistLocked(rec)
			s.opts.Logger.Info("serve: recovering interrupted job", "job", rec.ID)
		}
		select {
		case s.queue <- rec.ID:
		default:
			rec.Status = StatusFailed
			rec.Error = "recovery overflowed the submission queue"
			rec.Finished = nowMillis()
			s.persistLocked(rec)
		}
	}
	return nil
}

// Close stops accepting work and interrupts running jobs at their next
// barrier. Interrupted jobs stay persisted as "running", so the next Start
// resumes them — Close is a restart-safe shutdown, not a cancellation.
func (s *Service) Close(ctx context.Context) error {
	s.stop()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// Submit admits one job: quota check, durable record, FIFO enqueue.
func (s *Service) Submit(tenant, workload string, params json.RawMessage) (*JobRecord, error) {
	if _, ok := lookupRunner(workload); !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, workload)
	}
	if tenant == "" {
		tenant = "anonymous"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.baseCtx.Err() != nil {
		return nil, ErrClosed
	}
	live := 0
	for _, rec := range s.jobs {
		if rec.Tenant == tenant && !rec.Terminal() {
			live++
		}
	}
	if live >= s.opts.TenantQuota {
		return nil, fmt.Errorf("%w: tenant %q already holds %d live jobs", ErrQuotaExceeded, tenant, live)
	}
	s.seq++
	rec := &JobRecord{
		ID:        fmt.Sprintf("j%d", s.seq),
		Tenant:    tenant,
		Workload:  workload,
		Params:    params,
		Status:    StatusQueued,
		Submitted: nowMillis(),
	}
	select {
	case s.queue <- rec.ID:
	default:
		s.seq--
		return nil, ErrQueueFull
	}
	s.jobs[rec.ID] = rec
	s.persistLocked(rec)
	s.publishStatusLocked(rec)
	return rec.clone(), nil
}

// Get returns one job's record.
func (s *Service) Get(id string) (*JobRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return rec.clone(), nil
}

// List returns every record, oldest first.
func (s *Service) List() []*JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobRecord, 0, len(s.jobs))
	for _, rec := range s.jobs {
		out = append(out, rec.clone())
	}
	sortRecords(out)
	return out
}

// Result returns a finished job's result document.
func (s *Service) Result(id string) (json.RawMessage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch rec.Status {
	case StatusDone:
		return append(json.RawMessage(nil), rec.Result...), nil
	case StatusFailed:
		return nil, fmt.Errorf("serve: job %s failed: %s", id, rec.Error)
	default:
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotFinished, id, rec.Status)
	}
}

// Cancel stops a job: a queued one is finalized immediately; a running one
// has its context canceled, interrupting the engine at the next barrier
// (sync) or quiescence check (no-sync).
func (s *Service) Cancel(id string) (*JobRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch rec.Status {
	case StatusQueued:
		rec.Status = StatusCanceled
		rec.CancelRequested = true
		rec.Finished = nowMillis()
		s.persistLocked(rec)
		s.publishStatusLocked(rec)
	case StatusRunning:
		rec.CancelRequested = true
		s.persistLocked(rec)
		if cancel := s.cancels[id]; cancel != nil {
			cancel()
		}
	}
	return rec.clone(), nil
}

// worker is one execution slot: it owns an engine over the shared store and
// drains the FIFO until shutdown.
func (s *Service) worker(eng *ebsp.Engine, engOpts []ebsp.Option, slot *slotObserver) {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case id := <-s.queue:
			s.runOne(id, eng, engOpts, slot)
		}
	}
}

// runOne executes one dequeued job on the slot's engine.
func (s *Service) runOne(id string, eng *ebsp.Engine, engOpts []ebsp.Option, slot *slotObserver) {
	s.mu.Lock()
	rec, ok := s.jobs[id]
	if !ok || rec.Terminal() {
		// Canceled while queued (or lost to a bad record): nothing to run.
		s.mu.Unlock()
		return
	}
	resume := rec.Status == StatusRunning // carried over from a dead process
	rec.Status = StatusRunning
	if rec.Started == 0 {
		rec.Started = nowMillis()
	}
	runner, _ := lookupRunner(rec.Workload)
	params := append(json.RawMessage(nil), rec.Params...)
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.cancels[id] = cancel
	s.persistLocked(rec)
	s.publishStatusLocked(rec)
	s.mu.Unlock()

	slot.set(id)
	result, err := runner(RunEnv{
		Ctx:           ctx,
		Store:         s.opts.Store,
		Engine:        eng,
		EngineOptions: engOpts,
		JobID:         id,
		Prefix:        "serve." + id,
		Params:        params,
		Resume:        resume,
		Logger:        s.opts.Logger,
	})
	slot.clear()
	interrupted := ctx.Err() != nil // read before cancel() would mask it
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cancels, id)
	switch {
	case err == nil:
		raw, merr := json.Marshal(result)
		if merr != nil {
			rec.Status = StatusFailed
			rec.Error = fmt.Sprintf("marshal result: %v", merr)
		} else {
			rec.Status = StatusDone
			rec.Result = raw
		}
	case errors.Is(err, context.Canceled) || interrupted:
		if !rec.CancelRequested && s.baseCtx.Err() != nil {
			// Shutdown, not a user cancel: leave the record "running" so the
			// next Start resumes it from its checkpoint (or reruns it).
			s.persistLocked(rec)
			return
		}
		rec.Status = StatusCanceled
	default:
		rec.Status = StatusFailed
		rec.Error = err.Error()
	}
	rec.Finished = nowMillis()
	s.persistLocked(rec)
	s.publishStatusLocked(rec)
	s.opts.Logger.Info("serve: job finished", "job", id, "status", rec.Status, "err", rec.Error)
}

// persistLocked writes the record through the store SPI and flushes, so the
// record survives even a SIGKILLed daemon. Persistence errors degrade to a
// log line: the in-memory state stays authoritative for this process; only
// restart recovery would see stale data.
func (s *Service) persistLocked(rec *JobRecord) {
	raw, err := json.Marshal(rec)
	if err == nil {
		err = s.tab.Put(rec.ID, string(raw))
	}
	if err == nil {
		err = kvstore.Flush(s.opts.Store)
	}
	if err != nil {
		s.opts.Logger.Error("serve: persist job record", "job", rec.ID, "err", err)
	}
}

func (s *Service) publishStatusLocked(rec *JobRecord) {
	data := map[string]any{"status": rec.Status}
	if rec.Error != "" {
		data["error"] = rec.Error
	}
	if rec.Resumed {
		data["resumed"] = true
	}
	s.hub.publish(rec.ID, "status", data)
}

// slotObserver routes a slot engine's step/progress notifications to the
// event hub under the job the slot is currently executing. One slot runs one
// job at a time, so no name parsing is needed.
type slotObserver struct {
	hub *hub
	mu  sync.Mutex
	job string
}

func (o *slotObserver) set(id string) { o.mu.Lock(); o.job = id; o.mu.Unlock() }
func (o *slotObserver) clear()        { o.set("") }

func (o *slotObserver) current() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.job
}

func (o *slotObserver) onStep(info ebsp.StepInfo) {
	id := o.current()
	if id == "" {
		return
	}
	o.hub.publish(id, "step", map[string]any{
		"job":         info.Job,
		"step":        info.Step,
		"emitted":     info.Emitted,
		"duration_us": info.Duration.Microseconds(),
	})
}

func (o *slotObserver) onProgress(info ebsp.ProgressInfo) {
	id := o.current()
	if id == "" {
		return
	}
	o.hub.publish(id, "progress", map[string]any{
		"job":       info.Job,
		"part":      info.Part,
		"delivered": info.Delivered,
		"sent":      info.Sent,
		"queued":    info.Queued,
		"quiescent": info.Quiescent,
	})
}

func nowMillis() int64 { return time.Now().UnixMilli() }

// sortRecords orders by numeric ID (j1, j2, ... — submission order).
func sortRecords(recs []*JobRecord) {
	num := func(id string) int {
		var n int
		_, _ = fmt.Sscanf(id, "j%d", &n)
		return n
	}
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && num(recs[j].ID) < num(recs[j-1].ID); j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(KindStepStart, "job", 1, 0, 0, 0)
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Snapshot() != nil {
		t.Error("nil tracer reported spans")
	}
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil tracer wrote %q", sb.String())
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	tr := New(8)
	tr.Record(KindJobStart, "j", 0, -1, 6, 0)
	tr.Record(KindStepStart, "j", 1, -1, 10, 0)
	tr.Record(KindPartCompute, "j", 1, 2, 5, 3*time.Millisecond)

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("len = %d", len(spans))
	}
	for i, s := range spans {
		if s.Seq != uint64(i+1) { // seq is 1-based
			t.Errorf("span %d seq = %d", i, s.Seq)
		}
	}
	if spans[0].Kind != KindJobStart || spans[2].Kind != KindPartCompute {
		t.Errorf("kinds = %v, %v", spans[0].Kind, spans[2].Kind)
	}
	if spans[2].Part != 2 || spans[2].N != 5 || spans[2].Dur != 3*time.Millisecond {
		t.Errorf("compute span = %+v", spans[2])
	}
	// Timed spans are backdated: At marks the start, never negative.
	if spans[2].At < 0 {
		t.Errorf("At = %v", spans[2].At)
	}
	// Monotonic: start times never run backwards beyond backdating.
	if spans[1].At < spans[0].At {
		t.Errorf("At not monotonic: %v then %v", spans[0].At, spans[1].At)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Record(KindProgress, "j", 0, 0, int64(i), 0)
	}
	if tr.Len() != 4 {
		t.Errorf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot len = %d", len(spans))
	}
	// Oldest-first: the survivors are records 6..9 (seqs 7..10, 1-based).
	for i, s := range spans {
		if s.N != int64(6+i) {
			t.Errorf("span %d N = %d, want %d", i, s.N, 6+i)
		}
		if s.Seq != uint64(7+i) {
			t.Errorf("span %d seq = %d, want %d", i, s.Seq, 7+i)
		}
	}
}

func TestReset(t *testing.T) {
	tr := New(4)
	for i := 0; i < 6; i++ {
		tr.Record(KindBarrier, "j", i, -1, 0, 0)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Errorf("after reset: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	// Sequence numbers keep climbing across Reset, so spans stay globally
	// unique within a process.
	tr.Record(KindBarrier, "j", 1, -1, 0, 0)
	if got := tr.Snapshot(); len(got) != 1 || got[0].Seq <= 6 {
		t.Errorf("post-reset snapshot = %+v", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(8)
	tr.Record(KindStepStart, "pagerank", 1, -1, 42, 0)
	tr.Record(KindCheckpoint, "pagerank", 1, -1, 0, 2*time.Millisecond)

	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines int
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if _, ok := m["kind"].(string); !ok {
			t.Errorf("line %d kind = %v", lines, m["kind"])
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("lines = %d, want 2", lines)
	}
	if !strings.Contains(sb.String(), `"kind":"step_start"`) {
		t.Errorf("missing snake_case kind: %s", sb.String())
	}
	if !strings.Contains(sb.String(), `"job":"pagerank"`) {
		t.Errorf("missing job name: %s", sb.String())
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindJobStart; k <= KindCompaction; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name: %q", k, s)
		}
	}
	if Kind(99).String() == KindBarrier.String() {
		t.Error("unknown kind collided with a named one")
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New(128)
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Record(KindPartCompute, "j", i, w, int64(i), time.Microsecond)
				if i%50 == 0 {
					_ = tr.Snapshot()
					_ = tr.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != workers*each {
		t.Errorf("retained+dropped = %d, want %d", got, workers*each)
	}
	// Snapshot is strictly ordered by sequence number.
	spans := tr.Snapshot()
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq <= spans[i-1].Seq {
			t.Fatalf("seq not increasing at %d: %d then %d", i, spans[i-1].Seq, spans[i].Seq)
		}
	}
}

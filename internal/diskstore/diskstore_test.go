package diskstore

import (
	"errors"
	"testing"

	"ripple/internal/kvstore"
)

func newStore(t *testing.T, opts ...Option) *Store {
	t.Helper()
	s, err := New(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestDiskBasicOps(t *testing.T) {
	s := newStore(t)
	tab, err := s.CreateTable("t", kvstore.WithParts(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Put(1, "one"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Put(2, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tab.Get(1)
	if err != nil || !ok || v != "one" {
		t.Fatalf("Get = %v %v %v", v, ok, err)
	}
	if err := tab.Put(1, "uno"); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tab.Get(1); v != "uno" {
		t.Errorf("overwrite = %v", v)
	}
	if err := tab.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tab.Get(1); ok {
		t.Error("deleted key visible")
	}
	if n, _ := tab.Size(); n != 1 {
		t.Errorf("Size = %d", n)
	}
}

func TestDiskPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := s.CreateTable("t", kvstore.WithParts(2))
	for i := 0; i < 50; i++ {
		if err := tab.Put(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	_ = tab.Delete(10)
	_ = tab.Put(11, "replaced")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	tab2, err := s2.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tab2.Get(10); ok {
		t.Error("deleted key resurrected after reopen")
	}
	if v, _, _ := tab2.Get(11); v != "replaced" {
		t.Errorf("key 11 = %v", v)
	}
	if v, _, _ := tab2.Get(42); v != 84 {
		t.Errorf("key 42 = %v", v)
	}
	if n, _ := tab2.Size(); n != 49 {
		t.Errorf("Size after reopen = %d, want 49", n)
	}
}

func TestDiskEnumerate(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(2))
	for i := 0; i < 30; i++ {
		_ = tab.Put(i, i)
	}
	sum := 0
	err := kvstore.EnumerateAll(tab, func(k, v any) (bool, error) {
		sum += v.(int)
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 29*30/2 {
		t.Errorf("sum = %d", sum)
	}
}

func TestDiskAgentAndOrderedEnumeration(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(2))
	for _, k := range []int{9, 1, 5, 3, 7} {
		_ = tab.Put(k, k)
	}
	for p := 0; p < 2; p++ {
		_, err := s.RunAgent("t", p, func(sv kvstore.ShardView) (any, error) {
			view, err := sv.View("t")
			if err != nil {
				return nil, err
			}
			prev := -1
			return nil, view.EnumerateOrdered(func(k, v any) (bool, error) {
				if k.(int) <= prev {
					t.Errorf("out of order: %v after %d", k, prev)
				}
				prev = k.(int)
				return false, nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiskDropRemovesData(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	tab, _ := s.CreateTable("t", kvstore.WithParts(1))
	_ = tab.Put("a", 1)
	if err := s.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	tab2, err := s.CreateTable("t", kvstore.WithParts(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tab2.Get("a"); ok {
		t.Error("data survived drop+recreate")
	}
}

func TestDiskConsistentPartitioning(t *testing.T) {
	s := newStore(t)
	a, _ := s.CreateTable("a", kvstore.WithParts(3))
	b, err := s.CreateTable("b", kvstore.ConsistentWith("a"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.PartOf(i) != b.PartOf(i) {
			t.Fatalf("inconsistent partitioning at key %d", i)
		}
	}
}

func TestDiskErrors(t *testing.T) {
	s := newStore(t)
	if _, err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t"); !errors.Is(err, kvstore.ErrTableExists) {
		t.Errorf("dup create err = %v", err)
	}
	if err := s.DropTable("missing"); !errors.Is(err, kvstore.ErrNoTable) {
		t.Errorf("drop missing err = %v", err)
	}
	if _, err := s.RunAgent("t", 99, func(kvstore.ShardView) (any, error) { return nil, nil }); !errors.Is(err, kvstore.ErrBadPart) {
		t.Errorf("bad part err = %v", err)
	}
}

func TestDiskTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := s.CreateTable("t", kvstore.WithParts(1))
	_ = tab.Put("good", 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the log by appending a partial record.
	path := s.logPath("t", 0)
	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{opPut, 0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	tab2, err := s2.CreateTable("t", kvstore.WithParts(1))
	if err != nil {
		t.Fatalf("replay with truncated tail: %v", err)
	}
	if v, ok, _ := tab2.Get("good"); !ok || v != 1 {
		t.Errorf("good = %v %v", v, ok)
	}
	// Store remains writable after recovery.
	if err := tab2.Put("more", 2); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tab2.Get("more"); v != 2 {
		t.Errorf("more = %v", v)
	}
}

func TestCompactShrinksLogAndPreservesData(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	tab, _ := s.CreateTable("t", kvstore.WithParts(2))
	// Churn: many overwrites and deletes leave dead records in the log.
	for round := 0; round < 20; round++ {
		for i := 0; i < 50; i++ {
			if err := tab.Put(i, round*1000+i); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 25; i++ {
		_ = tab.Delete(i)
	}
	before, err := s.LogSize("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact("t"); err != nil {
		t.Fatal(err)
	}
	after, _ := s.LogSize("t")
	if after >= before {
		t.Errorf("log did not shrink: %d -> %d", before, after)
	}
	// Data survive compaction.
	if n, _ := tab.Size(); n != 25 {
		t.Errorf("Size = %d, want 25", n)
	}
	for i := 25; i < 50; i++ {
		v, ok, _ := tab.Get(i)
		if !ok || v != 19*1000+i {
			t.Errorf("t[%d] = %v, %v", i, v, ok)
		}
	}
	// And the table is still writable.
	if err := tab.Put(99, "post-compact"); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tab.Get(99); v != "post-compact" {
		t.Errorf("post-compact put = %v", v)
	}
}

func TestCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir)
	tab, _ := s.CreateTable("t", kvstore.WithParts(1))
	for i := 0; i < 30; i++ {
		_ = tab.Put(i, i)
		_ = tab.Put(i, i*2) // overwrite
	}
	if err := s.Compact("t"); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()

	s2, _ := New(dir)
	defer func() { _ = s2.Close() }()
	tab2, err := s2.CreateTable("t", kvstore.WithParts(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if v, _, _ := tab2.Get(i); v != i*2 {
			t.Errorf("t[%d] = %v, want %d", i, v, i*2)
		}
	}
}

func TestCompactMissingTable(t *testing.T) {
	s := newStore(t)
	if err := s.Compact("nope"); !errors.Is(err, kvstore.ErrNoTable) {
		t.Errorf("err = %v", err)
	}
}

// TestFlushSurvivesProcessKill simulates a SIGKILL: the first store is never
// closed (its buffered writers are simply abandoned), so only what Flush
// pushed out survives to the reopening store. This is the durability contract
// ripple-serve's job records and the engine's checkpoint commits rely on.
func TestFlushSurvivesProcessKill(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := s.CreateTable("t", kvstore.WithParts(2))
	for i := 0; i < 20; i++ {
		if err := tab.Put(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Post-flush writes stay in the abandoned buffer — the "kill" loses them,
	// and replay must shrug off any partial tail.
	for i := 20; i < 30; i++ {
		_ = tab.Put(i, i*3)
	}
	// No Close: abandon s as a killed process would.

	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	tab2, err := s2.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if v, ok, _ := tab2.Get(i); !ok || v != i*3 {
			t.Fatalf("flushed key %d = %v %v after kill", i, v, ok)
		}
	}
	// The generic helper reaches the same path through the SPI.
	if err := kvstore.Flush(s2); err != nil {
		t.Fatal(err)
	}
}

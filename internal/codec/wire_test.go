package codec

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// goldenPoint is a fast-codec-registered type used to pin the extension tag
// assignment (first registration in this test binary gets tagExtBase).
type goldenPoint struct {
	X, Y int
}

func init() {
	RegisterFast(goldenPoint{}, FastCodec{
		Encode: func(e *Encoder, v any) error {
			p := v.(goldenPoint)
			e.Int(p.X)
			e.Int(p.Y)
			return nil
		},
		Decode: func(d *Decoder) (any, error) {
			var p goldenPoint
			var err error
			if p.X, err = d.Int(); err != nil {
				return nil, err
			}
			p.Y, err = d.Int()
			return p, err
		},
		Copy: func(v any) (any, error) { return v, nil },
	})
}

// TestGoldenWireFormat pins the tag layout and body encodings. These bytes
// are persisted in diskstore logs; a failure here means the wire format
// changed incompatibly.
func TestGoldenWireFormat(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want []byte
	}{
		{"nil", nil, []byte{0x00}},
		{"false", false, []byte{0x01}},
		{"true", true, []byte{0x02}},
		{"int_zero", 0, []byte{0x03, 0x00}},
		{"int_one", 1, []byte{0x03, 0x02}},          // zigzag(1) = 2
		{"int_neg_one", -1, []byte{0x03, 0x01}},     // zigzag(-1) = 1
		{"int_150", 150, []byte{0x03, 0xAC, 0x02}},  // zigzag(150) = 300
		{"int64", int64(7), []byte{0x07, 0x0E}},     // zigzag(7) = 14
		{"uint64", uint64(300), []byte{0x0C, 0xAC, 0x02}},
		{"float64_one", 1.0, []byte{0x0E, 0x3F, 0xF0, 0, 0, 0, 0, 0, 0}},
		{"string", "hi", []byte{0x0F, 0x02, 'h', 'i'}},
		{"bytes", []byte{0xAA, 0xBB}, []byte{0x10, 0x02, 0xAA, 0xBB}},
		{"int_slice", []int{1, 2}, []byte{0x11, 0x02, 0x02, 0x04}},
		{"int32_slice", []int32{1, -2}, []byte{0x18, 0x02, 0x02, 0x03}},
		{"f64_slice", []float64{1.0}, []byte{0x12, 0x01, 0x3F, 0xF0, 0, 0, 0, 0, 0, 0}},
		{"str_slice", []string{"a"}, []byte{0x13, 0x01, 0x01, 'a'}},
		{"pair2", [2]int{3, 4}, []byte{0x14, 0x06, 0x08}},
		{"pair3", [3]int{1, 2, 3}, []byte{0x15, 0x02, 0x04, 0x06}},
		// Map keys are sorted, so the encoding is deterministic.
		{"map", map[string]any{"b": 2, "a": 1},
			[]byte{0x16, 0x02, 0x01, 'a', 0x03, 0x02, 0x01, 'b', 0x03, 0x04}},
		{"any_slice", []any{1, "x"}, []byte{0x17, 0x02, 0x03, 0x02, 0x0F, 0x01, 'x'}},
		// First RegisterFast in this binary → tagExtBase (0x40).
		{"ext", goldenPoint{X: 1, Y: -1}, []byte{0x40, 0x02, 0x01}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data, err := Encode(c.v)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, c.want) {
				t.Fatalf("Encode(%v) = % X, want % X", c.v, data, c.want)
			}
			back, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, c.v) {
				t.Fatalf("round trip = %#v, want %#v", back, c.v)
			}
		})
	}
}

// TestGobFallbackFraming checks that unregistered-fast types travel as a
// length-prefixed gob frame and survive the round trip.
func TestGobFallbackFraming(t *testing.T) {
	type fallbackVal struct {
		N int
		S string
	}
	Register(fallbackVal{})
	v := fallbackVal{N: 9, S: "ok"}
	data, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != tagGob {
		t.Fatalf("tag = 0x%02X, want tagGob (0x%02X)", data[0], tagGob)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, v) {
		t.Fatalf("round trip = %#v, want %#v", back, v)
	}
	// Gob frames nest inside containers thanks to the length prefix.
	nested := []any{1, v, "tail"}
	got, err := DeepCopy(nested)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, nested) {
		t.Fatalf("nested round trip = %#v, want %#v", got, nested)
	}
}

// TestPreEncodeRoundTrip checks the shared-bytes path stores use.
func TestPreEncodeRoundTrip(t *testing.T) {
	v := []float64{1, 2, 3}
	enc, err := PreEncode(v)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Size() != len(enc.Bytes()) || enc.Size() == 0 {
		t.Fatalf("Size() = %d, len(Bytes()) = %d", enc.Size(), len(enc.Bytes()))
	}
	if EncodedSize(enc) != enc.Size() {
		t.Fatalf("EncodedSize(Encoded) = %d, want %d", EncodedSize(enc), enc.Size())
	}
	back, n, err := RoundTrip(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != enc.Size() {
		t.Fatalf("RoundTrip size = %d, want %d", n, enc.Size())
	}
	if !reflect.DeepEqual(back, v) {
		t.Fatalf("RoundTrip = %#v, want %#v", back, v)
	}
}

// TestDeepCopyFastPathIsolation checks the non-serializing DeepCopy paths
// produce values that share no mutable memory with the original.
func TestDeepCopyFastPathIsolation(t *testing.T) {
	orig := map[string]any{"edges": []int{1, 2}, "rank": 0.5, "nested": []any{[]float64{9}}}
	cp, err := DeepCopy(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, orig) {
		t.Fatalf("copy = %#v, want %#v", cp, orig)
	}
	cp.(map[string]any)["edges"].([]int)[0] = 99
	cp.(map[string]any)["nested"].([]any)[0].([]float64)[0] = 99
	if orig["edges"].([]int)[0] != 1 || orig["nested"].([]any)[0].([]float64)[0] != 9 {
		t.Fatal("DeepCopy shares memory with original")
	}
}

// TestEncodedSizeMatchesEncode checks EncodedSize agrees with the actual
// encoding on both the fast and fallback paths.
func TestEncodedSizeMatchesEncode(t *testing.T) {
	for _, v := range []any{42, "hello", []int{1, 2, 3}, map[string]any{"k": 1.5},
		benchStruct{ID: 1, Rank: 2, Edges: []int{3}}} {
		data, err := Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := EncodedSize(v); got != len(data) {
			t.Errorf("EncodedSize(%#v) = %d, want %d", v, got, len(data))
		}
	}
}

// buildValue deterministically constructs a value from fuzz bytes. It never
// produces empty slices or maps (gob normalizes those differently) or NaN
// (not DeepEqual to itself).
type valueBuilder struct {
	data []byte
	pos  int
}

func (b *valueBuilder) byte() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	v := b.data[b.pos]
	b.pos++
	return v
}

func (b *valueBuilder) int() int {
	n := int(b.byte()) | int(b.byte())<<8
	if b.byte()&1 == 1 {
		return -n
	}
	return n
}

func (b *valueBuilder) float() float64 {
	f := float64(b.int()) / 7.0
	if math.IsNaN(f) {
		return 0
	}
	return f
}

func (b *valueBuilder) value(depth int) any {
	kind := b.byte() % 14
	if depth > 2 && kind >= 9 {
		kind %= 9 // cap container nesting
	}
	switch kind {
	case 0:
		return b.int()
	case 1:
		return b.byte()&1 == 1
	case 2:
		return b.float()
	case 3:
		return fmt.Sprintf("s%d", b.int())
	case 4:
		return int64(b.int())
	case 5:
		return uint64(b.int() & math.MaxInt)
	case 6:
		return [2]int{b.int(), b.int()}
	case 7:
		return [3]int{b.int(), b.int(), b.int()}
	case 8:
		return nil
	case 9:
		n := int(b.byte()%4) + 1
		out := make([]int, n)
		for i := range out {
			out[i] = b.int()
		}
		return out
	case 10:
		n := int(b.byte()%4) + 1
		out := make([]float64, n)
		for i := range out {
			out[i] = b.float()
		}
		return out
	case 11:
		n := int(b.byte()%3) + 1
		out := make(map[string]any, n)
		for i := 0; i < n; i++ {
			out[fmt.Sprintf("k%d", i)] = b.value(depth + 1)
		}
		return out
	case 13:
		n := int(b.byte()%4) + 1
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(b.int())
		}
		return out
	default:
		n := int(b.byte()%3) + 1
		out := make([]any, n)
		for i := range out {
			out[i] = b.value(depth + 1)
		}
		return out
	}
}

// FuzzRoundTrip builds arbitrary values of the wire types and asserts that
// the fast-path encoding and the forced gob-fallback encoding both decode
// back to reflect.DeepEqual values. It also feeds the raw fuzz input to
// Decode, which must reject or decode it without panicking.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{3, 1, 2, 3})
	f.Add([]byte{9, 200, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{11, 2, 12, 2, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0x16, 0x02, 0x01, 'a', 0x03, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode must never panic on arbitrary bytes.
		_, _ = Decode(data)

		v := (&valueBuilder{data: data}).value(0)
		fast, err := Encode(v)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", v, err)
		}
		gotFast, err := Decode(fast)
		if err != nil {
			t.Fatalf("Decode(fast %#v): %v", v, err)
		}
		if !reflect.DeepEqual(gotFast, v) {
			t.Fatalf("fast round trip = %#v, want %#v", gotFast, v)
		}
		gobData, err := encodeGobOnly(v)
		if err != nil {
			// gob cannot represent a bare nil; anything else must encode.
			if v == nil {
				return
			}
			t.Fatalf("gob encode %#v: %v", v, err)
		}
		gotGob, err := Decode(gobData)
		if err != nil {
			t.Fatalf("Decode(gob %#v): %v", v, err)
		}
		if !reflect.DeepEqual(gotGob, v) {
			t.Fatalf("gob round trip = %#v, want %#v", gotGob, v)
		}
		if !reflect.DeepEqual(gotFast, gotGob) {
			t.Fatalf("fast (%#v) and gob (%#v) decodings disagree", gotFast, gotGob)
		}
		// DeepCopy must agree with the wire round trip.
		cp, err := DeepCopy(v)
		if err != nil {
			t.Fatalf("DeepCopy(%#v): %v", v, err)
		}
		if !reflect.DeepEqual(cp, v) {
			t.Fatalf("DeepCopy = %#v, want %#v", cp, v)
		}
	})
}

package netstore_test

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ripple/internal/chaos"
	"ripple/internal/codec"
	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/netstore"
	"ripple/internal/sssp"
	"ripple/internal/workload"
)

// buildPartServer compiles cmd/ripple-part-server into dir and returns the
// binary path. The go build cache keeps repeat builds cheap.
func buildPartServer(t *testing.T, dir string) string {
	t.Helper()
	bin := dir + "/ripple-part-server"
	cmd := exec.Command("go", "build", "-o", bin, "ripple/cmd/ripple-part-server")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build part-server: %v\n%s", err, out)
	}
	return bin
}

// partProc is one spawned part-server child process.
type partProc struct {
	cmd  *exec.Cmd
	addr string
}

// spawnPartServer starts a child on addr ("127.0.0.1:0" for a kernel port)
// and waits for its "listening <addr>" line.
func spawnPartServer(t *testing.T, bin, addr string) *partProc {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start part-server: %v", err)
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case line, ok := <-lines:
		if !ok || !strings.HasPrefix(line, "listening ") {
			_ = cmd.Process.Kill()
			t.Fatalf("part-server banner = %q", line)
		}
		return &partProc{cmd: cmd, addr: strings.TrimPrefix(line, "listening ")}
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("part-server never printed its listening banner")
		return nil
	}
}

// kill SIGKILLs the child — a crash, not a graceful shutdown.
func (p *partProc) kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// fingerprint reduces a table to one byte string: every (key, value) pair
// codec-encoded, the encodings sorted, lengths delimited. Two tables holding
// the same logical pairs fingerprint identically regardless of which store
// served them.
func fingerprint(t *testing.T, tab kvstore.Table) []byte {
	t.Helper()
	pairs, err := kvstore.Dump(tab)
	if err != nil {
		t.Fatalf("dump %s: %v", tab.Name(), err)
	}
	encoded := make([]string, 0, len(pairs))
	for k, v := range pairs {
		ek, err := codec.Encode(k)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := codec.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		encoded = append(encoded, fmt.Sprintf("%d:%x=%x", len(ek), ek, ev))
	}
	sort.Strings(encoded)
	return []byte(strings.Join(encoded, "\n"))
}

// soakChanges deterministically picks one edge deletion (forcing the
// two-wave hard case) and one edge insertion from the graph.
func soakChanges(g *workload.UndirectedGraph) []workload.Change {
	u := 1
	v := int(g.Neighbors(u)[0])
	addU, addV := -1, -1
	for a := 0; a < g.NumVertices && addU < 0; a++ {
		for b := a + 2; b < g.NumVertices; b++ {
			if _, ok := g.Adj[a][int32(b)]; !ok {
				addU, addV = a, b
				break
			}
		}
	}
	return []workload.Change{
		{Kind: workload.RemoveEdge, U: u, V: v},
		{Kind: workload.AddEdge, U: addU, V: addV},
	}
}

// runFullScan drives the whole SSSP full-scan workload — init plus one
// change batch — on the given store and returns the final table fingerprint.
func runFullScan(t *testing.T, store kvstore.Store, g *workload.UndirectedGraph, changes []workload.Change) []byte {
	t.Helper()
	m := &metrics.Collector{}
	e := ebsp.NewEngine(store, ebsp.WithMetrics(m), ebsp.WithCheckpoints(2))
	fs := sssp.NewFullScan(e, "soak_sssp", 0, 6)
	if err := fs.Init(g); err != nil {
		t.Fatalf("init: %v", err)
	}
	if _, err := fs.ApplyBatch(changes); err != nil {
		t.Fatalf("apply batch: %v", err)
	}
	tab, ok := store.LookupTable("soak_sssp")
	if !ok {
		t.Fatal("soak_sssp table missing after the run")
	}
	return fingerprint(t, tab)
}

// TestProcessKillSoak is the tentpole acceptance check: the SSSP full-scan
// workload runs against three real part-server child processes over
// loopback while the chaos schedule SIGKILLs one mid-step (the harness
// respawns it — empty, like a real crash recovery) and opens a one-way
// client→server partition against another. The run must complete with a
// final table byte-identical to the same workload on an in-process store.
func TestProcessKillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	g, err := workload.PowerLawUndirected(rand.New(rand.NewSource(7)), 200, 900, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	changes := soakChanges(g)

	// In-process reference run.
	ms := memstore.New(memstore.WithParts(6))
	defer func() { _ = ms.Close() }()
	want := runFullScan(t, ms, g, changes)

	// The fleet: three child processes on loopback.
	bin := buildPartServer(t, t.TempDir())
	var mu sync.Mutex
	procs := make([]*partProc, 3)
	addrs := make([]string, 3)
	for i := range procs {
		procs[i] = spawnPartServer(t, bin, "127.0.0.1:0")
		addrs[i] = procs[i].addr
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range procs {
			p.kill()
		}
	}()

	// The chaos plan: SIGKILL server 1 mid-run (respawned on the same port
	// ~200ms later, empty), and a one-way c2s partition against server 2
	// opening at its 1200th data frame. Both fire well inside the waves.
	inj := chaos.NewInjector(chaos.Schedule{
		Seed:       3,
		NetKills:   []chaos.NetKill{{Server: 1, AfterFrames: 900}},
		Partitions: []chaos.Partition{{C2S: true, Server: 2, FromFrame: 1200, Frames: 200}},
	})
	inj.OnNetKill(func(server int) {
		mu.Lock()
		victim := procs[server]
		mu.Unlock()
		victim.kill()
		time.Sleep(200 * time.Millisecond)
		respawn := spawnPartServer(t, bin, victim.addr)
		mu.Lock()
		procs[server] = respawn
		mu.Unlock()
	})

	c, err := netstore.Dial(addrs,
		netstore.WithReplicas(3),
		netstore.WithHeartbeat(25*time.Millisecond, 2),
		netstore.WithRequestTimeout(300*time.Millisecond),
		netstore.WithRetries(10),
		netstore.WithBackoffSeed(3),
		netstore.WithWireInjector(inj),
	)
	if err != nil {
		t.Fatalf("dial fleet: %v", err)
	}
	defer func() { _ = c.Close() }()

	got := runFullScan(t, c, g, changes)
	if !bytes.Equal(got, want) {
		t.Fatalf("networked run diverged from the in-process run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}

	if c.Failovers() == 0 {
		t.Error("no failovers sensed — the kill never disturbed the run")
	}
	var kills, partitions int
	for _, r := range inj.Records() {
		switch r.Kind {
		case "netkill":
			kills++
		case "partition":
			partitions++
		}
	}
	if kills != 1 {
		t.Errorf("netkill fired %d times, want 1", kills)
	}
	if partitions == 0 {
		t.Error("the partition window never opened — tune FromFrame down")
	}
}

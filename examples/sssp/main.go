// Command sssp runs the paper's §V-C comparison: maintaining single-source
// shortest-path annotations on a time-varying power-law graph through
// batches of random edge changes, with the selective-enablement variant
// against the full-scan (MapReduce-style) variant, verifying both against a
// BFS reference after every batch.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ripple"
	"ripple/internal/ebsp"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/sssp"
	"ripple/internal/workload"
)

func main() {
	var (
		vertices  = flag.Int("vertices", 5000, "number of vertices (paper: 100000)")
		edges     = flag.Int("edges", 90000, "number of initial edges (paper: ~1.8M)")
		batches   = flag.Int("batches", 10, "number of change batches (paper: 10)")
		batchSize = flag.Int("batch-size", 1000, "primitive changes per batch (paper: 1000)")
		parts     = flag.Int("parts", 6, "store partitions (paper: 6)")
		seed      = flag.Int64("seed", 42, "workload seed")
		verify    = flag.Bool("verify", true, "check both variants against BFS after each batch")
	)
	flag.Parse()

	fmt.Printf("initial graph: %d vertices, %d power-law edges\n", *vertices, *edges)
	g, err := workload.PowerLawUndirected(rand.New(rand.NewSource(*seed)), *vertices, *edges, 1.3)
	if err != nil {
		log.Fatal(err)
	}
	const source = 0

	newEngine := func(m *metrics.Collector) *ebsp.Engine {
		store := memstore.New(memstore.WithParts(*parts), memstore.WithMetrics(m))
		return ripple.NewEngine(store, ebsp.WithMetrics(m))
	}

	mSel := &metrics.Collector{}
	sel := sssp.NewSelective(newEngine(mSel), "sel", source, *parts)
	if err := sel.Init(cloneGraph(g)); err != nil {
		log.Fatal(err)
	}
	mFs := &metrics.Collector{}
	fs := sssp.NewFullScan(newEngine(mFs), "fs", source, *parts)
	if err := fs.Init(cloneGraph(g)); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed + 1))
	var selTotal, fsTotal time.Duration
	for b := 1; b <= *batches; b++ {
		batch := workload.ChangeBatch(rng, *vertices, *batchSize, 1.3, 0.5)
		for _, c := range batch {
			g.Apply(c)
		}

		start := time.Now()
		selStats, err := sel.ApplyBatch(batch)
		if err != nil {
			log.Fatalf("batch %d selective: %v", b, err)
		}
		selElapsed := time.Since(start)
		selTotal += selElapsed

		start = time.Now()
		fsStats, err := fs.ApplyBatch(batch)
		if err != nil {
			log.Fatalf("batch %d full-scan: %v", b, err)
		}
		fsElapsed := time.Since(start)
		fsTotal += fsElapsed

		fmt.Printf("batch %2d: %4d applied (hard=%-5v)  selective %8.4fs (%d steps)   full-scan %8.4fs (%d jobs)\n",
			b, selStats.Applied, selStats.HardCase, selElapsed.Seconds(), selStats.Steps,
			fsElapsed.Seconds(), fsStats.Jobs)

		if *verify {
			want := sssp.ReferenceDistances(g, source)
			for name, drv := range map[string]interface {
				Distances() (map[int]int32, error)
			}{"selective": sel, "full-scan": fs} {
				got, err := drv.Distances()
				if err != nil {
					log.Fatal(err)
				}
				for v, w := range want {
					if got[v] != w {
						log.Fatalf("batch %d: %s d(%d) = %d, want %d", b, name, v, got[v], w)
					}
				}
			}
		}
	}

	fmt.Printf("\ntotals over %d batches of %d changes:\n", *batches, *batchSize)
	fmt.Printf("  selective enablement: %8.3fs   (%s)\n", selTotal.Seconds(), mSel.Snapshot())
	fmt.Printf("  full scanning:        %8.3fs   (%s)\n", fsTotal.Seconds(), mFs.Snapshot())
	fmt.Printf("  advantage: %.0fx (paper: 0.21s vs 78s = ~370x at 100k vertices)\n",
		fsTotal.Seconds()/selTotal.Seconds())
}

func cloneGraph(g *workload.UndirectedGraph) *workload.UndirectedGraph {
	out := workload.NewUndirected(g.NumVertices)
	for u := 0; u < g.NumVertices; u++ {
		for _, v := range g.Neighbors(u) {
			out.AddEdge(u, int(v))
		}
	}
	return out
}

package termination

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestFreshDetectorIsQuiescent(t *testing.T) {
	d := New()
	if !d.Quiescent() {
		t.Error("fresh detector not quiescent")
	}
	if !d.Wait(time.Millisecond) {
		t.Error("Wait on fresh detector timed out")
	}
}

func TestIssueReturnCycle(t *testing.T) {
	d := New()
	w := d.Issue(100)
	if d.Quiescent() {
		t.Error("quiescent with outstanding weight")
	}
	if d.Outstanding() != 100 {
		t.Errorf("Outstanding = %d", d.Outstanding())
	}
	if err := d.Return(w); err != nil {
		t.Fatal(err)
	}
	if !d.Quiescent() {
		t.Error("not quiescent after full return")
	}
}

func TestIssueZeroGrantsOne(t *testing.T) {
	d := New()
	w := d.Issue(0)
	if w != 1 {
		t.Errorf("Issue(0) = %d, want 1", w)
	}
	_ = d.Return(w)
}

func TestSplit(t *testing.T) {
	cases := []struct {
		in         Weight
		keep, give Weight
	}{
		{1, 1, 0},
		{2, 1, 1},
		{3, 2, 1},
		{100, 50, 50},
	}
	for _, c := range cases {
		keep, give := c.in.Split()
		if keep != c.keep || give != c.give {
			t.Errorf("Split(%d) = %d, %d, want %d, %d", c.in, keep, give, c.keep, c.give)
		}
		if keep+give != c.in {
			t.Errorf("Split(%d) loses weight", c.in)
		}
	}
}

func TestSplitOrBorrowConservation(t *testing.T) {
	d := New()
	held := d.Issue(1)
	// Held weight 1 cannot split: the detector must grow the ledger.
	before := d.Outstanding()
	keep, give := d.SplitOrBorrow(held)
	if give == 0 {
		t.Fatal("SplitOrBorrow gave zero")
	}
	after := d.Outstanding()
	if after-before != uint64(give) {
		t.Errorf("ledger grew by %d, gave %d", after-before, give)
	}
	_ = d.Return(keep)
	_ = d.Return(give)
	if !d.Quiescent() {
		t.Errorf("outstanding = %d after returning everything", d.Outstanding())
	}
}

func TestOverReturn(t *testing.T) {
	d := New()
	_ = d.Issue(1)
	if err := d.Return(5); err != ErrOverReturn {
		t.Errorf("over-return err = %v", err)
	}
	if d.Err() != ErrOverReturn {
		t.Errorf("Err = %v", d.Err())
	}
}

func TestReturnZeroIsNoop(t *testing.T) {
	d := New()
	_ = d.Issue(10)
	if err := d.Return(0); err != nil {
		t.Errorf("Return(0) = %v", err)
	}
	if d.Outstanding() != 10 {
		t.Errorf("Outstanding = %d", d.Outstanding())
	}
}

func TestWaitBlocksUntilQuiescent(t *testing.T) {
	d := New()
	w := d.Issue(DefaultIssue)
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = d.Return(w)
	}()
	if !d.Wait(5 * time.Second) {
		t.Error("Wait timed out")
	}
}

func TestWaitTimeout(t *testing.T) {
	d := New()
	_ = d.Issue(1)
	start := time.Now()
	if d.Wait(20 * time.Millisecond) {
		t.Error("Wait returned true with outstanding weight")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("Wait returned too early")
	}
}

// TestSimulatedMessageCascade runs a randomized message-passing simulation:
// N workers exchange messages carrying weight; the detector must report
// quiescence exactly when the last message has been processed, never before.
func TestSimulatedMessageCascade(t *testing.T) {
	const workers = 8
	d := New()
	type msg struct{ w Weight }
	queues := make([]chan msg, workers)
	for i := range queues {
		queues[i] = make(chan msg, 1024)
	}

	var totalProcessed, totalSent int64
	var countMu sync.Mutex

	rng := rand.New(rand.NewSource(42))
	var rngMu sync.Mutex
	randInt := func(n int) int {
		rngMu.Lock()
		defer rngMu.Unlock()
		return rng.Intn(n)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case m := <-queues[i]:
					held := m.w
					// With decreasing probability, spawn up to 2 messages.
					for f := 0; f < 2; f++ {
						if randInt(100) < 35 {
							var give Weight
							held, give = d.SplitOrBorrow(held)
							countMu.Lock()
							totalSent++
							countMu.Unlock()
							queues[randInt(workers)] <- msg{w: give}
						}
					}
					countMu.Lock()
					totalProcessed++
					countMu.Unlock()
					_ = d.Return(held)
				case <-stop:
					return
				}
			}
		}(i)
	}

	// Seed 20 root messages.
	for r := 0; r < 20; r++ {
		w := d.Issue(DefaultIssue)
		countMu.Lock()
		totalSent++
		countMu.Unlock()
		queues[randInt(workers)] <- msg{w: w}
	}

	if !d.Wait(30 * time.Second) {
		t.Fatal("cascade never quiesced")
	}
	// At quiescence every sent message must have been processed.
	countMu.Lock()
	p, s := totalProcessed, totalSent
	countMu.Unlock()
	if p != s {
		t.Errorf("quiescent with %d processed of %d sent", p, s)
	}
	if d.Err() != nil {
		t.Errorf("protocol error: %v", d.Err())
	}
	close(stop)
	wg.Wait()
}

// TestQuiescenceNotPrematurelyReported floods the detector with rapid
// issue/return cycles from many goroutines and checks the ledger never goes
// negative (over-return) and ends at zero.
func TestQuiescenceNotPrematurelyReported(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w := d.Issue(3)
				keep, give := d.SplitOrBorrow(w)
				_ = d.Return(give)
				_ = d.Return(keep)
			}
		}()
	}
	wg.Wait()
	if !d.Quiescent() {
		t.Errorf("outstanding = %d at end", d.Outstanding())
	}
	if d.Err() != nil {
		t.Errorf("protocol error: %v", d.Err())
	}
}

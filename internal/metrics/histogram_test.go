package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.ObserveDuration(time.Second)
	h.reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram reported observations")
	}
	if snap := h.Snapshot(); snap.Count != 0 {
		t.Errorf("nil histogram snapshot = %+v", snap)
	}

	var g *Gauge
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(7)
	if g.Load() != 0 {
		t.Error("nil gauge reported a value")
	}

	var pg *PartGauge
	pg.Set(1, 5)
	pg.Add(2, 3)
	pg.reset()
	if pg.Load(1) != 0 || pg.Total() != 0 || pg.Snapshot() != nil {
		t.Error("nil part gauge reported values")
	}

	var c *Collector
	if c.StepDurations() != nil || c.QueueDepths() != nil ||
		c.EnabledComponents() != nil || c.InFlightEnvelopes() != nil {
		t.Error("nil collector returned non-nil instruments")
	}
	// And the nil instruments it returns must themselves be usable.
	c.StepDurations().Observe(1)
	c.QueueDepths().Set(0, 1)
	c.EnabledComponents().Inc()
}

func TestBucketMapping(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if c.v > 0 {
			if bound := BucketBound(c.bucket); bound < c.v {
				t.Errorf("BucketBound(%d) = %d < observed %d", c.bucket, bound, c.v)
			}
		}
	}
	if BucketBound(0) != 0 {
		t.Errorf("BucketBound(0) = %d", BucketBound(0))
	}
	if BucketBound(63) != int64(^uint64(0)>>1) {
		t.Errorf("BucketBound(63) = %d", BucketBound(63))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations (~100), 10 slow (~100000).
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 90*100+10*100000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	snap := h.Snapshot()
	// Power-of-two buckets: the estimate is the bucket upper bound, so it is
	// >= the true quantile and < 2x it.
	if p50 := snap.P50(); p50 < 100 || p50 >= 200 {
		t.Errorf("p50 = %d, want in [100, 200)", p50)
	}
	if p99 := snap.P99(); p99 < 100000 || p99 >= 200000 {
		t.Errorf("p99 = %d, want in [100000, 200000)", p99)
	}
	if s := snap.String(); !strings.Contains(s, "count=100") {
		t.Errorf("String() = %q", s)
	}

	h.reset()
	if h.Count() != 0 || h.Snapshot().P50() != 0 {
		t.Error("reset did not zero the histogram")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile != 0")
	}
	if empty.String() != "count=0" {
		t.Errorf("empty String() = %q", empty.String())
	}
	h := &Histogram{}
	h.Observe(7)
	snap := h.Snapshot()
	// Out-of-range q clamps; a single observation answers every quantile.
	for _, q := range []float64{-1, 0, 0.001, 0.5, 1, 2} {
		if got := snap.Quantile(q); got < 7 || got >= 14 {
			t.Errorf("Quantile(%v) = %d, want in [7, 14)", q, got)
		}
	}
}

func TestGauge(t *testing.T) {
	g := &Gauge{}
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(5)
	if got := g.Load(); got != 15 {
		t.Errorf("gauge = %d, want 15", got)
	}
}

func TestPartGauge(t *testing.T) {
	g := &PartGauge{}
	g.Set(0, 4)
	g.Set(3, 9)
	g.Add(3, 1)
	if g.Load(0) != 4 || g.Load(3) != 10 {
		t.Errorf("loads = %d, %d", g.Load(0), g.Load(3))
	}
	if g.Load(7) != 0 {
		t.Error("unset part != 0")
	}
	if g.Total() != 14 {
		t.Errorf("total = %d", g.Total())
	}
	snap := g.Snapshot()
	if len(snap) != 2 || snap[0] != 4 || snap[3] != 10 {
		t.Errorf("snapshot = %v", snap)
	}
	g.reset()
	if g.Total() != 0 {
		t.Error("reset did not clear parts")
	}
}

func TestCollectorResetClearsInstruments(t *testing.T) {
	c := &Collector{}
	c.StepDurations().Observe(100)
	c.QueueDepths().Set(1, 5)
	c.EnabledComponents().Set(3)
	c.InFlightEnvelopes().Set(2)
	c.Reset()
	if c.StepDurations().Count() != 0 || c.QueueDepths().Total() != 0 ||
		c.EnabledComponents().Load() != 0 || c.InFlightEnvelopes().Load() != 0 {
		t.Error("Reset left instrument state behind")
	}
}

// TestInstrumentHammer drives every instrument from many goroutines at once;
// run under -race it proves the collector is race-clean.
func TestInstrumentHammer(t *testing.T) {
	c := &Collector{}
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.AddSteps(1)
				c.StepDurations().Observe(int64(i))
				c.BarrierWaits().ObserveDuration(time.Duration(i))
				c.QueueDepths().Set(w, int64(i))
				c.QueueDepths().Add(w%3, 1)
				c.EnabledComponents().Set(int64(i))
				c.InFlightEnvelopes().Inc()
				c.InFlightEnvelopes().Dec()
				_ = c.StepDurations().Snapshot()
				_ = c.QueueDepths().Total()
				_ = c.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := c.StepDurations().Count(); got != workers*rounds {
		t.Errorf("histogram count = %d, want %d", got, workers*rounds)
	}
	if got := c.Snapshot().Steps; got != workers*rounds {
		t.Errorf("steps = %d, want %d", got, workers*rounds)
	}
	if got := c.InFlightEnvelopes().Load(); got != 0 {
		t.Errorf("in-flight = %d, want 0", got)
	}
}

package diskstore

import (
	"testing"

	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/trace"
)

func TestStoreWriteHistogram(t *testing.T) {
	col := &metrics.Collector{}
	s := newStore(t, WithMetrics(col))
	tab, err := s.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tab.Put(i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Delete(3); err != nil {
		t.Fatal(err)
	}
	// 5 puts + 1 delete, each one log append.
	if got := col.StoreWrites().Count(); got != 6 {
		t.Errorf("store-write observations = %d, want 6", got)
	}
	if col.StoreWrites().Sum() < 0 {
		t.Error("negative write-time sum")
	}
}

func TestReplayAndCompactionSpans(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := s.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tab.Put(i%4, i); err != nil { // heavy overwriting, compactible
			t.Fatal(err)
		}
	}
	// Flush and abandon the store without Close: a clean Close flushes every
	// memtable and leaves nothing to replay, but a killed process leaves the
	// WAL populated, and the reopen must replay (and record) it.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a tracer: the log replay must be recorded, and a compaction
	// pass adds compaction spans with reclaimed record counts.
	tr := trace.New(64)
	s2, err := New(dir, WithParts(2), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	if _, err := s2.CreateTable("t", kvstore.WithParts(2)); err != nil {
		t.Fatal(err)
	}
	var replays int
	for _, sp := range tr.Snapshot() {
		if sp.Kind == trace.KindLogReplay {
			replays++
			if sp.Job != "t" || sp.N <= 0 {
				t.Errorf("replay span = %+v", sp)
			}
		}
	}
	if replays == 0 {
		t.Fatal("no log-replay spans after reopen")
	}

	if err := s2.Compact("t"); err != nil {
		t.Fatal(err)
	}
	var compactions int
	for _, sp := range tr.Snapshot() {
		if sp.Kind == trace.KindCompaction {
			compactions++
			if sp.N < 0 {
				t.Errorf("compaction reclaimed %d records", sp.N)
			}
		}
	}
	if compactions == 0 {
		t.Fatal("no compaction spans")
	}
}

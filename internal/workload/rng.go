package workload

import (
	"hash/fnv"
	"math/rand"
)

// DeriveRand builds a private, decorrelated *rand.Rand from a base seed and
// a stream label. Generators in this package take an explicit source instead
// of the global math/rand one, so concurrent generation (one tenant per
// stream) neither contends on a shared lock nor perturbs another stream's
// sequence — the same (seed, stream) pair always yields the same input.
//
// The label is folded into the seed with FNV-1a and the result is mixed
// through a splitmix64 round, so nearby seeds and similar labels still land
// far apart in the generator's state space.
func DeriveRand(seed int64, stream string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(stream))
	z := uint64(seed) ^ h.Sum64()
	// splitmix64 finalizer.
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

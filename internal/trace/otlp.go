package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// OTLP/JSON export: the OpenTelemetry OTLP trace shape
// (resourceSpans -> scopeSpans -> spans) rendered with encoding/json, so
// dumps load directly into any OTLP-speaking backend or viewer. Only the
// fields Ripple populates are emitted; ID fields use the OTLP hex forms
// (32-char traceId, 16-char spanId).

type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string     `json:"traceId"`
	SpanID       string     `json:"spanId"`
	ParentSpanID string     `json:"parentSpanId,omitempty"`
	Name         string     `json:"name"`
	Kind         int        `json:"kind"`
	StartNano    string     `json:"startTimeUnixNano"`
	EndNano      string     `json:"endTimeUnixNano"`
	Attributes   []otlpAttr `json:"attributes,omitempty"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

// otlpValue is the OTLP AnyValue union; exactly one field is set.
type otlpValue struct {
	Str *string `json:"stringValue,omitempty"`
	Int *string `json:"intValue,omitempty"` // int64 as string, per OTLP/JSON
}

func strAttr(key, v string) otlpAttr { return otlpAttr{Key: key, Value: otlpValue{Str: &v}} }
func intAttr(key string, v int64) otlpAttr {
	s := strconv.FormatInt(v, 10)
	return otlpAttr{Key: key, Value: otlpValue{Int: &s}}
}

const otlpInternalSpanKind = 1 // SPAN_KIND_INTERNAL

// WriteOTLP renders spans as one OTLP/JSON export document. base anchors
// the monotonic At offsets to wall-clock time (use Tracer.WallStart; a zero
// base leaves timestamps relative to the unix epoch, which preserves
// ordering and durations). Spans without trace context (flat records) are
// exported under the all-zeros trace ID with synthetic span IDs; spans that
// share an addressable ID — e.g. job_start and job_end both carry the root
// span ID — are uniquified by seq so the document never declares the same
// spanId twice.
func WriteOTLP(w io.Writer, spans []Span, base time.Time) error {
	out := make([]otlpSpan, 0, len(spans))
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		id := s.Span
		if id == 0 || seen[id] {
			id = nonzero(splitmix64(fnvUint64(fnvUint64(fnvOffset64, s.Span), s.Seq)))
		}
		seen[id] = true
		start := base.Add(s.At)
		os := otlpSpan{
			TraceID:   fmt.Sprintf("%032x", s.Trace),
			SpanID:    fmt.Sprintf("%016x", id),
			Name:      s.Kind.String(),
			Kind:      otlpInternalSpanKind,
			StartNano: strconv.FormatInt(start.UnixNano(), 10),
			EndNano:   strconv.FormatInt(start.Add(s.Dur).UnixNano(), 10),
		}
		if s.Parent != 0 {
			os.ParentSpanID = fmt.Sprintf("%016x", s.Parent)
		}
		attrs := make([]otlpAttr, 0, 5+len(s.Attrs))
		attrs = append(attrs, intAttr("ripple.seq", int64(s.Seq)))
		if s.Job != "" {
			attrs = append(attrs, strAttr("ripple.job", s.Job))
		}
		attrs = append(attrs,
			intAttr("ripple.step", int64(s.Step)),
			intAttr("ripple.part", int64(s.Part)))
		if s.N != 0 {
			attrs = append(attrs, intAttr("ripple.n", s.N))
		}
		if s.Span != 0 && id != s.Span {
			// Preserve the engine-assigned ID so lineage joins still work
			// after a round-trip through the uniquified document.
			attrs = append(attrs, intAttr("ripple.span", int64(s.Span)))
		}
		for _, k := range sortedAttrKeys(s.Attrs) {
			attrs = append(attrs, strAttr(k, s.Attrs[k]))
		}
		os.Attributes = attrs
		out = append(out, os)
	}
	doc := otlpExport{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpAttr{strAttr("service.name", "ripple")}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "ripple/internal/trace"},
			Spans: out,
		}},
	}}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteOTLP dumps the tracer's retained spans as OTLP/JSON, anchored at the
// tracer's wall-clock start. A nil tracer writes an empty document.
func (t *Tracer) WriteOTLP(w io.Writer) error {
	return WriteOTLP(w, t.Snapshot(), t.WallStart())
}

func sortedAttrKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; attr maps are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

package ebsp

import (
	"ripple/internal/codec"
)

// Fast-path wire codecs for the engine's own message types. Spill batches
// ([]envelope), queue messages (queueMsg), and their constituents dominate
// the data plane, so they bypass the codec's gob fallback entirely: an
// envelope costs one kind byte, two varints, and its Dst/Val encodings.
// The gob registrations in job.go stay — an envelope nested inside an
// unregistered user type still travels by gob.
//
// Registration order assigns the wire tags, so it is fixed here and must
// not be reordered (diskstore logs persist these tags).
func init() {
	codec.RegisterFast(envelope{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			return encEnvBody(e, v.(envelope))
		},
		Decode: func(d *codec.Decoder) (any, error) {
			return decEnvBody(d)
		},
		Copy: func(v any) (any, error) {
			return copyEnv(v.(envelope))
		},
	})
	codec.RegisterFast([]envelope{}, codec.FastCodec{
		// A batch frame is: count, side-car, bodies. Bodies are staged in a
		// scratch encoder so every gob-fallback payload (unregistered user
		// message types) is deferred to the side-car — ONE gob stream per
		// batch, sharing its type descriptors, instead of one per message.
		Encode: func(e *codec.Encoder, v any) error {
			batch := v.([]envelope)
			sc := codec.AcquireEncoder()
			defer codec.ReleaseEncoder(sc)
			sc.BeginRefFrame()
			for i := range batch {
				if err := encEnvBodyRef(sc, batch[i]); err != nil {
					return err
				}
			}
			e.Uvarint(uint64(len(batch)))
			if err := e.RefSidecar(sc.TakeRefs()); err != nil {
				return err
			}
			e.Append(sc.Bytes())
			return nil
		},
		Decode: func(d *codec.Decoder) (any, error) {
			n, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			refs, err := d.RefSidecar()
			if err != nil {
				return nil, err
			}
			old := d.PushRefs(refs)
			defer d.PopRefs(old)
			// Each envelope body is at least 4 bytes (kind + two varints +
			// one tag), bounding the allocation against truncated input.
			batch := make([]envelope, 0, min(int(n), 1<<16))
			for i := uint64(0); i < n; i++ {
				env, err := decEnvBody(d)
				if err != nil {
					return nil, err
				}
				batch = append(batch, env)
			}
			return batch, nil
		},
		Copy: func(v any) (any, error) {
			batch := v.([]envelope)
			out := make([]envelope, len(batch))
			for i := range batch {
				env, err := copyEnv(batch[i])
				if err != nil {
					return nil, err
				}
				out[i] = env
			}
			return out, nil
		},
	})
	codec.RegisterFast(queueMsg{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			qm := v.(queueMsg)
			e.Uvarint(qm.Weight)
			return encEnvBody(e, qm.Env)
		},
		Decode: func(d *codec.Decoder) (any, error) {
			w, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			env, err := decEnvBody(d)
			if err != nil {
				return nil, err
			}
			return queueMsg{Env: env, Weight: w}, nil
		},
		Copy: func(v any) (any, error) {
			qm := v.(queueMsg)
			env, err := copyEnv(qm.Env)
			if err != nil {
				return nil, err
			}
			return queueMsg{Env: env, Weight: qm.Weight}, nil
		},
	})
	codec.RegisterFast(createPayload{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			cp := v.(createPayload)
			e.Int(cp.Tab)
			return e.Any(cp.State)
		},
		Decode: func(d *codec.Decoder) (any, error) {
			tab, err := d.Int()
			if err != nil {
				return nil, err
			}
			state, err := d.Any()
			if err != nil {
				return nil, err
			}
			return createPayload{Tab: tab, State: state}, nil
		},
		Copy: func(v any) (any, error) {
			cp := v.(createPayload)
			state, err := codec.DeepCopy(cp.State)
			if err != nil {
				return nil, err
			}
			return createPayload{Tab: cp.Tab, State: state}, nil
		},
	})
	codec.RegisterFast(spillKey{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			k := v.(spillKey)
			e.Int(k.Step)
			e.Int(k.Dst)
			e.Int(k.Src)
			return nil
		},
		Decode: func(d *codec.Decoder) (any, error) {
			var k spillKey
			var err error
			if k.Step, err = d.Int(); err != nil {
				return nil, err
			}
			if k.Dst, err = d.Int(); err != nil {
				return nil, err
			}
			if k.Src, err = d.Int(); err != nil {
				return nil, err
			}
			return k, nil
		},
		Copy: func(v any) (any, error) { return v, nil },
	})
}

// envTracedFlag marks an envelope body carrying trace context. Envelope
// kinds occupy the low bits (values 0..2), so the high bit of the kind byte
// is free to act as a wire tag: a traced body appends two uvarints (Trace,
// Span) after Seq, while an untraced body is byte-identical to the
// pre-trace format. Sampling off ⇒ zero wire-format change, and diskstore
// logs written before tracing existed decode unchanged.
const envTracedFlag = byte(0x80)

// encEnvBody writes an envelope body: kind byte (high bit = traced flag),
// source and sequence varints, optional trace context, then the tagged Dst
// and Val.
func encEnvBody(e *codec.Encoder, env envelope) error {
	kind := env.Kind
	if env.Trace != 0 {
		kind |= envTracedFlag
	}
	e.Byte(kind)
	e.Int(env.Src)
	e.Int(env.Seq)
	if env.Trace != 0 {
		e.Uvarint(env.Trace)
		e.Uvarint(env.Span)
	}
	if err := e.Any(env.Dst); err != nil {
		return err
	}
	return e.Any(env.Val)
}

// encEnvBodyRef is encEnvBody for batch frames: fallback Dst/Val values are
// deferred to the batch's shared side-car instead of inlined.
func encEnvBodyRef(e *codec.Encoder, env envelope) error {
	kind := env.Kind
	if env.Trace != 0 {
		kind |= envTracedFlag
	}
	e.Byte(kind)
	e.Int(env.Src)
	e.Int(env.Seq)
	if env.Trace != 0 {
		e.Uvarint(env.Trace)
		e.Uvarint(env.Span)
	}
	if err := e.AnyRef(env.Dst); err != nil {
		return err
	}
	return e.AnyRef(env.Val)
}

// decEnvBody reads an envelope body written by encEnvBody.
func decEnvBody(d *codec.Decoder) (envelope, error) {
	var env envelope
	kind, err := d.Byte()
	if err != nil {
		return env, err
	}
	env.Kind = kind &^ envTracedFlag
	if env.Src, err = d.Int(); err != nil {
		return env, err
	}
	if env.Seq, err = d.Int(); err != nil {
		return env, err
	}
	if kind&envTracedFlag != 0 {
		if env.Trace, err = d.Uvarint(); err != nil {
			return env, err
		}
		if env.Span, err = d.Uvarint(); err != nil {
			return env, err
		}
	}
	if env.Dst, err = d.Any(); err != nil {
		return env, err
	}
	env.Val, err = d.Any()
	return env, err
}

// copyEnv deep-copies an envelope without serializing.
func copyEnv(env envelope) (envelope, error) {
	dst, err := codec.DeepCopy(env.Dst)
	if err != nil {
		return envelope{}, err
	}
	val, err := codec.DeepCopy(env.Val)
	if err != nil {
		return envelope{}, err
	}
	out := env
	out.Dst, out.Val = dst, val
	return out, nil
}

// Package workload generates the synthetic inputs the paper's evaluation
// uses: directed power-law graphs for PageRank (§V-A, "a biased power-law
// distribution for edge attachments"), a time-varying undirected power-law
// graph with batched primitive changes for incremental SSSP (§V-C), and
// dense random matrices for SUMMA (§V-B). Everything is seeded and
// deterministic so experiments are reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// DirectedGraph is an adjacency representation: Out[u] lists the vertices at
// the far end of u's outgoing edges (the paper's per-vertex int array).
type DirectedGraph struct {
	NumVertices int
	Out         [][]int32
}

// NumEdges counts the edges.
func (g *DirectedGraph) NumEdges() int {
	n := 0
	for _, out := range g.Out {
		n += len(out)
	}
	return n
}

// PowerLawDirected generates a directed graph with nVertices vertices and
// (approximately — exactly, unless the space is too dense) nEdges distinct
// edges whose endpoint choices follow a biased power-law (Zipf) distribution
// with exponent s > 1. Self-loops are allowed (PageRank handles them);
// duplicate (u,v) pairs are not.
func PowerLawDirected(rng *rand.Rand, nVertices, nEdges int, s float64) (*DirectedGraph, error) {
	if nVertices <= 0 {
		return nil, fmt.Errorf("workload: nVertices = %d", nVertices)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent must exceed 1, got %v", s)
	}
	maxEdges := nVertices * nVertices
	if nEdges > maxEdges/2 {
		return nil, fmt.Errorf("workload: %d edges too dense for %d vertices", nEdges, nVertices)
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(nVertices-1))
	// A fixed random relabeling decouples a vertex's ID from its
	// attachment popularity ("biased": popular endpoints are spread over
	// the ID space, not clustered at 0).
	perm := rng.Perm(nVertices)

	g := &DirectedGraph{
		NumVertices: nVertices,
		Out:         make([][]int32, nVertices),
	}
	seen := make(map[int64]struct{}, nEdges)
	for g0 := 0; g0 < nEdges; {
		u := perm[int(zipf.Uint64())]
		v := perm[int(zipf.Uint64())]
		key := int64(u)*int64(nVertices) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.Out[u] = append(g.Out[u], int32(v))
		g0++
	}
	for _, out := range g.Out {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return g, nil
}

// UndirectedGraph is an adjacency-set representation for the time-varying
// SSSP graph.
type UndirectedGraph struct {
	NumVertices int
	Adj         []map[int32]struct{}
}

// NewUndirected creates an empty undirected graph ("creation of unconnected
// vertices", §V-C).
func NewUndirected(nVertices int) *UndirectedGraph {
	g := &UndirectedGraph{
		NumVertices: nVertices,
		Adj:         make([]map[int32]struct{}, nVertices),
	}
	for i := range g.Adj {
		g.Adj[i] = make(map[int32]struct{})
	}
	return g
}

// NumEdges counts the undirected edges.
func (g *UndirectedGraph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n / 2
}

// HasEdge reports whether {u, v} is present.
func (g *UndirectedGraph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	_, ok := g.Adj[u][int32(v)]
	return ok
}

// AddEdge inserts {u, v}; it reports whether the edge was new.
func (g *UndirectedGraph) AddEdge(u, v int) bool {
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.Adj[u][int32(v)] = struct{}{}
	g.Adj[v][int32(u)] = struct{}{}
	return true
}

// RemoveEdge deletes {u, v}; it reports whether the edge existed.
func (g *UndirectedGraph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	delete(g.Adj[u], int32(v))
	delete(g.Adj[v], int32(u))
	return true
}

// Neighbors returns u's neighbors in ascending order.
func (g *UndirectedGraph) Neighbors(u int) []int32 {
	out := make([]int32, 0, len(g.Adj[u]))
	for v := range g.Adj[u] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PowerLawUndirected populates g with nEdges random edges whose endpoints
// follow a power-law distribution (the §V-C initial graph: 100,000 vertices,
// about 1.8 million random edges).
func PowerLawUndirected(rng *rand.Rand, nVertices, nEdges int, s float64) (*UndirectedGraph, error) {
	if nVertices <= 1 {
		return nil, fmt.Errorf("workload: nVertices = %d", nVertices)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent must exceed 1, got %v", s)
	}
	g := NewUndirected(nVertices)
	zipf := rand.NewZipf(rng, s, 1, uint64(nVertices-1))
	perm := rng.Perm(nVertices)
	attempts := 0
	maxAttempts := nEdges * 50
	for g.NumEdges() < nEdges {
		if attempts++; attempts > maxAttempts {
			return nil, fmt.Errorf("workload: could not place %d edges (graph too dense)", nEdges)
		}
		u := perm[int(zipf.Uint64())]
		v := perm[int(zipf.Uint64())]
		g.AddEdge(u, v)
	}
	return g, nil
}

// ChangeKind is the kind of a primitive graph change (§V-C): gaining or
// losing an isolated vertex, gaining or losing an edge.
type ChangeKind int

// The primitive change kinds.
const (
	AddEdge ChangeKind = iota + 1
	RemoveEdge
)

// Change is one primitive change to the time-varying graph.
type Change struct {
	Kind ChangeKind
	U, V int
}

// ChangeBatch generates a batch of n random edge additions and removals
// "without regard to which already exist, so some of these changes will be
// no-ops" (§V-C). Endpoints follow the same power law as the initial graph.
func ChangeBatch(rng *rand.Rand, nVertices, n int, s float64, removeFrac float64) []Change {
	zipf := rand.NewZipf(rng, s, 1, uint64(nVertices-1))
	out := make([]Change, 0, n)
	for i := 0; i < n; i++ {
		c := Change{
			U: int(zipf.Uint64()),
			V: int(zipf.Uint64()),
		}
		if rng.Float64() < removeFrac {
			c.Kind = RemoveEdge
		} else {
			c.Kind = AddEdge
		}
		out = append(out, c)
	}
	return out
}

// Apply applies a change to the graph; it reports whether the graph actually
// changed (no-ops are expected, per the paper).
func (g *UndirectedGraph) Apply(c Change) bool {
	if c.U == c.V || c.U < 0 || c.V < 0 || c.U >= g.NumVertices || c.V >= g.NumVertices {
		return false
	}
	switch c.Kind {
	case AddEdge:
		return g.AddEdge(c.U, c.V)
	case RemoveEdge:
		return g.RemoveEdge(c.U, c.V)
	default:
		return false
	}
}

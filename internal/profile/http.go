package profile

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// profilezResponse is the /debug/profilez JSON body: the recorder's recent
// records plus the skew analysis over them.
type profilezResponse struct {
	Records             int           `json:"records"`
	Dropped             uint64        `json:"dropped"`
	UnattributedFaults  int64         `json:"unattributed_faults,omitempty"`
	UnattributedRetries int64         `json:"unattributed_retries,omitempty"`
	Skew                *Report       `json:"skew"`
	Recent              []StepProfile `json:"recent"`
}

// Handler serves the recorder's live state as JSON. Query parameters:
// ?recent=N bounds the raw records echoed back (default 100, 0 disables),
// ?topk=K bounds the straggler/hot-key rankings (default 10).
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		recent := 100
		if v := req.URL.Query().Get("recent"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				recent = n
			}
		}
		topK := 10
		if v := req.URL.Query().Get("topk"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				topK = n
			}
		}
		snap := r.Snapshot()
		resp := profilezResponse{
			Records: len(snap),
			Dropped: r.Dropped(),
			Skew:    Analyze(snap, r.HotKeys(topK), topK),
		}
		resp.UnattributedFaults, resp.UnattributedRetries = r.Unattributed()
		if recent > 0 && len(snap) > recent {
			snap = snap[len(snap)-recent:]
		}
		if recent > 0 {
			resp.Recent = snap
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}

// AttachDebug registers the live introspection endpoints on mux:
// /debug/profilez (recorder state + skew summary, JSON) and the standard
// net/http/pprof handlers under /debug/pprof/. Registration is explicit so
// callers building their own mux — as the bench CLI and the metrics serving
// path do — get pprof without importing it for the DefaultServeMux side
// effect.
func AttachDebug(mux *http.ServeMux, r *Recorder) {
	mux.Handle("/debug/profilez", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Package termination implements distributed-termination detection by weight
// throwing, after Huang's algorithm (the mechanism the paper's prototype uses
// to detect distributed termination of no-sync jobs; §IV footnote 3).
//
// A controlling agent (the Detector) holds a ledger of outstanding weight.
// Every active computation and every in-flight message carries a positive
// weight issued by the controller. Sending a message splits the sender's
// weight; finishing an activity returns its weight to the controller. The
// computation has terminated exactly when all issued weight has been
// returned.
//
// Classic Huang splits a real-valued weight in halves; to stay exact, this
// implementation uses integral weight units and lets a holder whose weight is
// down to one unit borrow more from the controller (increasing the ledger),
// a standard practical refinement that preserves the invariant:
//
//	sum of all held weights + all in-flight weights == ledger outstanding.
package termination

import (
	"errors"
	"sync"
	"time"
)

// ErrOverReturn is reported when more weight is returned than was issued —
// always a bug in the calling protocol.
var ErrOverReturn = errors.New("termination: returned more weight than issued")

// Weight is an integral amount of termination-detection credit.
type Weight uint64

// DefaultIssue is the weight granted per root activity. Large enough that
// borrowing is rare even for deep message cascades.
const DefaultIssue Weight = 1 << 32

// Split divides a held weight into a part to keep and a part to give to an
// outgoing message. give is zero when w is too small to split; the caller
// must then borrow from the Detector.
func (w Weight) Split() (keep, give Weight) {
	if w <= 1 {
		return w, 0
	}
	give = w / 2
	return w - give, give
}

// Detector is the controlling agent of Huang's algorithm.
type Detector struct {
	mu          sync.Mutex
	outstanding uint64
	issuedEver  uint64
	notify      chan struct{}
	err         error
}

// New creates a Detector with zero outstanding weight. A fresh detector is
// quiescent; issue weight for the initial activities before waiting.
func New() *Detector {
	return &Detector{notify: make(chan struct{})}
}

// Issue grants new weight, increasing the ledger. Used for root activities
// and for borrowing when a holder cannot split.
func (d *Detector) Issue(units Weight) Weight {
	if units == 0 {
		units = 1
	}
	d.mu.Lock()
	d.outstanding += uint64(units)
	d.issuedEver += uint64(units)
	d.mu.Unlock()
	return units
}

// Return gives weight back to the controller. When the ledger reaches zero
// all waiters are released.
func (d *Detector) Return(w Weight) error {
	if w == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if uint64(w) > d.outstanding {
		d.err = ErrOverReturn
		d.outstanding = 0
		d.wake()
		return ErrOverReturn
	}
	d.outstanding -= uint64(w)
	if d.outstanding == 0 {
		d.wake()
	}
	return nil
}

// wake releases waiters; caller holds d.mu.
func (d *Detector) wake() {
	close(d.notify)
	d.notify = make(chan struct{})
}

// SplitOrBorrow splits the held weight for an outgoing message, borrowing
// from the controller when the held weight is too small to split.
func (d *Detector) SplitOrBorrow(held Weight) (keep, give Weight) {
	keep, give = held.Split()
	if give == 0 {
		give = d.Issue(DefaultIssue)
	}
	return keep, give
}

// Outstanding reports the current ledger.
func (d *Detector) Outstanding() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.outstanding
}

// IssuedEver reports the total weight ever issued (monotone; for tests).
func (d *Detector) IssuedEver() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.issuedEver
}

// Quiescent reports whether all issued weight has been returned.
func (d *Detector) Quiescent() bool { return d.Outstanding() == 0 }

// Err reports a protocol violation observed so far, if any.
func (d *Detector) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Wait blocks until the ledger reaches zero or the timeout elapses; it
// returns true on quiescence. A timeout <= 0 waits forever.
func (d *Detector) Wait(timeout time.Duration) bool {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		d.mu.Lock()
		if d.outstanding == 0 {
			d.mu.Unlock()
			return true
		}
		ch := d.notify
		d.mu.Unlock()

		if timeout <= 0 {
			<-ch
			continue
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return false
		}
	}
}

// Command ripple-inspect examines a Ripple disk store directory: it lists
// the stored tables with their part counts, sizes, and on-disk footprint,
// dumps table contents, and optionally compacts logs. It also analyzes
// profile dumps offline.
//
// Usage:
//
//	ripple-inspect -dir ./data                      # list tables
//	ripple-inspect -dir ./data -table users         # dump one table
//	ripple-inspect -dir ./data -table users -stats  # per-part statistics
//	ripple-inspect -dir ./data -table users -compact
//	ripple-inspect -dir ./data -table users -compact -trace spans.jsonl
//	ripple-inspect -profile trace.json              # skew/straggler report
//	ripple-inspect -profile trace.json -topk 20     # deeper straggler table
//
// The store directory is opened read-write (compaction rewrites logs); table
// part counts are inferred from the log file names. With -trace, the store's
// span log (per-part log replay on open, compaction passes) is written as
// JSONL to the given file ('-' for stdout) before exit.
//
// -profile is a standalone mode: it reads a profile dump written by
// ripple-bench -profile or ripple.WriteChromeTrace (Chrome trace-event JSON
// or StepProfile JSONL — the format is sniffed), prints the skew/straggler
// report, and exits non-zero if the file is invalid or holds no records, so
// it doubles as a dump validator in CI.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"ripple/internal/codec"
	"ripple/internal/diskstore"
	"ripple/internal/kvstore"
	"ripple/internal/profile"
	"ripple/internal/trace"
)

var logName = regexp.MustCompile(`^(.+)\.(\d+)\.log$`)

// tracer collects replay/compaction spans across every store this command
// opens; nil (no -trace flag) disables recording.
var tracer *trace.Tracer

func main() {
	var (
		dir       = flag.String("dir", "", "disk store directory (required)")
		table     = flag.String("table", "", "table to inspect (default: list all)")
		stats     = flag.Bool("stats", false, "per-part statistics instead of a dump")
		compact   = flag.Bool("compact", false, "compact the table's logs")
		limit     = flag.Int("limit", 50, "maximum pairs to dump (0 = all)")
		traceFile = flag.String("trace", "", "write replay/compaction spans as JSONL to this file ('-' for stdout)")
		profFile  = flag.String("profile", "", "analyze a profile dump (Chrome trace or JSONL) and exit")
		topK      = flag.Int("topk", 10, "straggler parts and hot keys to rank with -profile")
	)
	flag.Parse()
	if *profFile != "" {
		if err := analyzeProfile(*profFile, *topK); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *traceFile != "" {
		tracer = trace.New(trace.DefaultCapacity)
		defer func() {
			if err := dumpTrace(*traceFile); err != nil {
				log.Fatalf("trace dump: %v", err)
			}
		}()
	}

	tables, err := discoverTables(*dir)
	if err != nil {
		log.Fatal(err)
	}
	if len(tables) == 0 {
		fmt.Println("no table logs found")
		return
	}

	if *table == "" {
		listTables(*dir, tables)
		return
	}
	parts, ok := tables[*table]
	if !ok {
		log.Fatalf("no logs for table %q under %s", *table, *dir)
	}
	store, err := diskstore.New(*dir, diskstore.WithParts(parts), diskstore.WithTracer(tracer))
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = store.Close() }()
	tab, err := store.CreateTable(*table, kvstore.WithParts(parts))
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *compact:
		before, _ := store.LogSize(*table)
		if err := store.Compact(*table); err != nil {
			log.Fatal(err)
		}
		after, _ := store.LogSize(*table)
		fmt.Printf("compacted %q: %d -> %d bytes (%.0f%% reclaimed)\n",
			*table, before, after, 100*float64(before-after)/float64(max64(before, 1)))
	case *stats:
		printStats(store, tab, parts)
	default:
		dump(tab, *limit)
	}
}

// discoverTables maps table names to their part counts from log file names.
func discoverTables(dir string) (map[string]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", dir, err)
	}
	tables := map[string]int{}
	for _, e := range entries {
		m := logName.FindStringSubmatch(filepath.Base(e.Name()))
		if m == nil {
			continue
		}
		part, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		if part+1 > tables[m[1]] {
			tables[m[1]] = part + 1
		}
	}
	return tables, nil
}

func listTables(dir string, tables map[string]int) {
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-32s %6s %10s %12s\n", "TABLE", "PARTS", "PAIRS", "LOG BYTES")
	for _, name := range names {
		parts := tables[name]
		store, err := diskstore.New(dir, diskstore.WithParts(parts), diskstore.WithTracer(tracer))
		if err != nil {
			log.Fatal(err)
		}
		tab, err := store.CreateTable(name, kvstore.WithParts(parts))
		if err != nil {
			fmt.Printf("%-32s %6d %10s %12s  (unreadable: %v)\n", name, parts, "?", "?", err)
			_ = store.Close()
			continue
		}
		n, _ := tab.Size()
		bytes, _ := store.LogSize(name)
		fmt.Printf("%-32s %6d %10d %12d\n", name, parts, n, bytes)
		_ = store.Close()
	}
}

func printStats(store *diskstore.Store, tab kvstore.Table, parts int) {
	fmt.Printf("%-6s %10s\n", "PART", "PAIRS")
	total := 0
	for p := 0; p < parts; p++ {
		res, err := store.RunAgent(tab.Name(), p, func(sv kvstore.ShardView) (any, error) {
			view, err := sv.View(tab.Name())
			if err != nil {
				return nil, err
			}
			return view.Len()
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %10d\n", p, res.(int))
		total += res.(int)
	}
	bytes, _ := store.LogSize(tab.Name())
	fmt.Printf("total  %10d pairs, %d log bytes\n", total, bytes)
}

func dump(tab kvstore.Table, limit int) {
	type pair struct{ k, v any }
	var pairs []pair
	err := kvstore.EnumerateAll(tab, func(k, v any) (bool, error) {
		pairs = append(pairs, pair{k, v})
		return false, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(pairs, func(i, j int) bool { return codec.CompareKeys(pairs[i].k, pairs[j].k) < 0 })
	for i, p := range pairs {
		if limit > 0 && i >= limit {
			fmt.Printf("... and %d more (use -limit 0 for all)\n", len(pairs)-limit)
			return
		}
		fmt.Printf("%v\t%v\n", p.k, p.v)
	}
}

// analyzeProfile reads a profile dump and prints the skew/straggler report.
// An unreadable file or one with no records is an error, so CI can use this
// as a validity check on emitted traces.
func analyzeProfile(path string, topK int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	profs, err := profile.Parse(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(profs) == 0 {
		return fmt.Errorf("%s: no step profiles in dump", path)
	}
	fmt.Printf("%s: %d step profiles\n\n", path, len(profs))
	profile.WriteText(os.Stdout, profile.Analyze(profs, nil, topK))
	return nil
}

// dumpTrace writes the collected spans as JSONL to path ("-" for stdout).
func dumpTrace(path string) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		out = f
	}
	if err := tracer.WriteJSONL(out); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d trace spans to %s\n", tracer.Len(), path)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

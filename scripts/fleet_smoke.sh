#!/bin/sh
# Fleet observability smoke: two real ripple-part-server processes over
# loopback, a traced PageRank driven through them by ripple-bench -exp fleet,
# the merged clock-aligned timeline pulled over the admin telemetry ops, and
# the enclosure invariant validated offline by ripple-inspect -fleet -check.
# Finally the servers get SIGTERM and their shutdown trace flushes must end
# with a "stats" span carrying the final metrics snapshot.
#
# Usage: scripts/fleet_smoke.sh [go-binary]
set -eu

GO=${1:-go}
WORK=$(mktemp -d /tmp/ripple_fleet_smoke.XXXXXX)
SRV0_PID=""
SRV1_PID=""

cleanup() {
    [ -n "$SRV0_PID" ] && kill "$SRV0_PID" 2>/dev/null || true
    [ -n "$SRV1_PID" ] && kill "$SRV1_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "fleet smoke: building binaries"
$GO build -o "$WORK/ripple-part-server" ./cmd/ripple-part-server
$GO build -o "$WORK/ripple-bench" ./cmd/ripple-bench
$GO build -o "$WORK/ripple-inspect" ./cmd/ripple-inspect

# Start two part-servers on kernel-assigned ports; the harness contract is
# one "listening <addr>" line on stdout.
"$WORK/ripple-part-server" -addr 127.0.0.1:0 -trace "$WORK/srv0.jsonl" >"$WORK/srv0.out" &
SRV0_PID=$!
"$WORK/ripple-part-server" -addr 127.0.0.1:0 -trace "$WORK/srv1.jsonl" >"$WORK/srv1.out" &
SRV1_PID=$!

addr_of() {
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/^listening //p' "$1" 2>/dev/null | head -1)
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "fleet smoke: $1 never printed a listening line" >&2
    return 1
}
ADDR0=$(addr_of "$WORK/srv0.out")
ADDR1=$(addr_of "$WORK/srv1.out")
echo "fleet smoke: part-servers at $ADDR0 $ADDR1"

# The fleet experiment: traced PageRank over the two servers, admin-op
# telemetry poll, and the merged timeline written as OTLP.
"$WORK/ripple-bench" -exp fleet -net-addrs "$ADDR0,$ADDR1" \
    -scale 0.02 -pagerank-iterations 3 -fleet-out "$WORK/merged.json"

# Offline validation: every client rpc span must enclose its server span.
"$WORK/ripple-inspect" -fleet "$WORK/merged.json" -check >/dev/null

# Graceful shutdown: SIGTERM, then the flushed rings must exist and end with
# a stats span (the final metrics snapshot a dead server leaves behind).
kill -TERM "$SRV0_PID" "$SRV1_PID"
wait "$SRV0_PID" "$SRV1_PID" 2>/dev/null || true
SRV0_PID=""
SRV1_PID=""
for f in "$WORK/srv0.jsonl" "$WORK/srv1.jsonl"; do
    if [ ! -s "$f" ]; then
        echo "fleet smoke: $f missing or empty after SIGTERM" >&2
        exit 1
    fi
    if ! tail -1 "$f" | grep -q '"kind":"stats"'; then
        echo "fleet smoke: $f does not end with a stats span" >&2
        tail -3 "$f" >&2
        exit 1
    fi
done

echo "fleet smoke: merged timeline valid, shutdown flush intact"

package graph

import (
	"math"
	"testing"

	"ripple/internal/kvstore"
)

func TestMaxValueAlgorithm(t *testing.T) {
	e := newEngine(t)
	tab := loadGraph(t, e, "amax", []Vertex{
		{ID: 1, Value: 4, Edges: edges(2)},
		{ID: 2, Value: 11, Edges: edges(1, 3)},
		{ID: 3, Value: 2, Edges: edges(2)},
	})
	if _, err := Run(e, MaxValue("amax")); err != nil {
		t.Fatal(err)
	}
	dump, _ := kvstore.Dump(tab)
	for _, id := range []int{1, 2, 3} {
		if dump[id].(Vertex).Value != 11 {
			t.Errorf("vertex %d = %v", id, dump[id].(Vertex).Value)
		}
	}
}

func TestMaxValueTypeError(t *testing.T) {
	e := newEngine(t)
	loadGraph(t, e, "abad", []Vertex{{ID: 1, Value: "nope"}})
	if _, err := Run(e, MaxValue("abad")); err == nil {
		t.Error("non-int values accepted")
	}
}

func TestConnectedComponentsAlgorithm(t *testing.T) {
	e := newEngine(t)
	tab := loadGraph(t, e, "acc", []Vertex{
		{ID: 4, Value: 0, Edges: edges(8)},
		{ID: 8, Value: 0, Edges: edges(4, 6)},
		{ID: 6, Value: 0, Edges: edges(8)},
		{ID: 99, Value: 0},
	})
	if _, err := Run(e, ConnectedComponents("acc")); err != nil {
		t.Fatal(err)
	}
	dump, _ := kvstore.Dump(tab)
	want := map[int]int{4: 4, 8: 4, 6: 4, 99: 99}
	for id, label := range want {
		if got := dump[id].(Vertex).Value; got != label {
			t.Errorf("cc(%d) = %v, want %d", id, got, label)
		}
	}
}

func TestShortestPathsAlgorithm(t *testing.T) {
	e := newEngine(t)
	inf := ShortestPathsInf
	tab := loadGraph(t, e, "asp", []Vertex{
		{ID: 0, Value: inf, Edges: edges(1)},
		{ID: 1, Value: inf, Edges: edges(0, 2)},
		{ID: 2, Value: inf, Edges: edges(1)},
		{ID: 7, Value: inf}, // unreachable
	})
	if _, err := Run(e, ShortestPaths("asp", 0)); err != nil {
		t.Fatal(err)
	}
	dump, _ := kvstore.Dump(tab)
	want := map[int]int32{0: 0, 1: 1, 2: 2, 7: inf}
	for id, d := range want {
		if got := dump[id].(Vertex).Value; got != d {
			t.Errorf("d(%d) = %v, want %d", id, got, d)
		}
	}
}

func TestPageRankSpecAlgorithm(t *testing.T) {
	e := newEngine(t)
	const n = 4
	r0 := 1.0 / n
	tab := loadGraph(t, e, "apr", []Vertex{
		{ID: 0, Value: r0, Edges: edges(1)},
		{ID: 1, Value: r0, Edges: edges(0, 2)},
		{ID: 2, Value: r0, Edges: edges(0)},
		{ID: 3, Value: r0}, // dangling
	})
	if _, err := Run(e, PageRankSpec("apr", n, 25, 0.85)); err != nil {
		t.Fatal(err)
	}
	dump, _ := kvstore.Dump(tab)
	sum := 0.0
	for id := 0; id < n; id++ {
		sum += dump[id].(Vertex).Value.(float64)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v", sum)
	}
	// Vertex 0 receives from 1 and 2; it must outrank the dangling vertex 3.
	if dump[0].(Vertex).Value.(float64) <= dump[3].(Vertex).Value.(float64) {
		t.Error("rank ordering wrong")
	}
}

package netstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
	"ripple/internal/trace"
)

// Client mounts a fleet of part-servers behind the kvstore.Store SPI (plus
// the Healer, FailureSensor, and TraceBinder capabilities) and, via
// Queuing(), the mq SPI. One Client is one analytics process's window onto
// the fleet: placement is computed locally by rendezvous hashing, reads go
// to a part's primary, writes are replicated client-side to the part's
// replica set, and a heartbeat loop drives the failure detector that feeds
// the engine's heal/checkpoint-restore path.
type Client struct {
	addrs        []string
	conns        []*serverConn
	replicas     int
	reqTimeout   time.Duration
	hbEvery      time.Duration
	hbMisses     int
	retries      int
	backoffSeed  int64
	inj          WireInjector
	met          *metrics.Collector
	tr           *trace.Tracer
	defaultParts int

	nextID  atomic.Uint64
	ambient atomic.Uint64 // trace ID bound by the engine; 0 = untraced
	spanCtr atomic.Uint64

	failovers atomic.Int64

	started time.Time // span-clock base when no tracer is attached

	// Per-server clock-offset estimators, fed by heartbeat RTT midpoints.
	clkMu sync.Mutex
	clks  []clockEst

	mu     sync.Mutex
	states []serverState
	tables map[string]tableMeta
	order  []string
	qsets  map[string]int // queue-set name -> queue count, for heal re-ensure
	closed bool

	// healMu serializes Heal so concurrent recovery attempts do not copy
	// parts over each other.
	healMu sync.Mutex

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// serverState is the failure detector's view of one server.
type serverState struct {
	up     bool
	cold   bool // rejoined after being down/restarted: readable only after Heal
	everUp bool
	bootID int64
	misses int
}

// tableMeta is the client-side registry entry for one table.
type tableMeta struct {
	parts   int
	ubiq    bool
	ordered bool
}

// Option configures a Client.
type Option func(*Client)

// WithReplicas sets the replication factor (clamped to the server count).
func WithReplicas(n int) Option { return func(c *Client) { c.replicas = n } }

// WithRequestTimeout sets the per-request deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.reqTimeout = d
		}
	}
}

// WithHeartbeat sets the failure detector's cadence: a ping to every server
// each `every`, a server declared down after `misses` consecutive failures
// (heartbeat or data).
func WithHeartbeat(every time.Duration, misses int) Option {
	return func(c *Client) {
		if every > 0 {
			c.hbEvery = every
		}
		if misses > 0 {
			c.hbMisses = misses
		}
	}
}

// WithRetries bounds transport-level retries per operation (on top of the
// engine's own retry layer).
func WithRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithBackoffSeed seeds the deterministic retry-backoff jitter, mirroring
// the engine's seeded jitter so distributed-run latencies replay.
func WithBackoffSeed(seed int64) Option { return func(c *Client) { c.backoffSeed = seed } }

// WithWireInjector installs a wire-level fault injector (see
// internal/chaos for the deterministic seeded one).
func WithWireInjector(inj WireInjector) Option { return func(c *Client) { c.inj = inj } }

// WithMetrics attaches a metrics collector (RPC counters and per-endpoint
// latency histograms).
func WithMetrics(m *metrics.Collector) Option { return func(c *Client) { c.met = m } }

// WithTracer attaches a tracer; RPC spans are recorded when the engine has
// bound a causal trace via BindTrace.
func WithTracer(t *trace.Tracer) Option { return func(c *Client) { c.tr = t } }

// WithDefaultParts sets the part count for tables that do not specify one.
func WithDefaultParts(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.defaultParts = n
		}
	}
}

// Dial connects to the part-servers at addrs. Every server must answer an
// initial ping — a fleet that starts degraded has no authoritative data to
// heal from.
func Dial(addrs []string, opts ...Option) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netstore: no servers")
	}
	c := &Client{
		addrs:        addrs,
		started:      time.Now(),
		replicas:     2,
		reqTimeout:   2 * time.Second,
		hbEvery:      100 * time.Millisecond,
		hbMisses:     3,
		retries:      4,
		defaultParts: 8,
		tables:       make(map[string]tableMeta),
		qsets:        make(map[string]int),
		done:         make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if c.replicas < 1 {
		c.replicas = 1
	}
	if c.replicas > len(addrs) {
		c.replicas = len(addrs)
	}
	c.conns = make([]*serverConn, len(addrs))
	c.states = make([]serverState, len(addrs))
	for i, addr := range addrs {
		c.conns[i] = newServerConn(addr, i, c.inj)
	}
	for i := range c.conns {
		bootID, err := c.ping(i)
		if err != nil {
			c.shutdown()
			return nil, fmt.Errorf("netstore: server %d (%s) unreachable: %w", i, addrs[i], err)
		}
		c.states[i] = serverState{up: true, everUp: true, bootID: bootID}
		c.met.ServerUp(i).Set(1)
	}
	c.wg.Add(1)
	go c.heartbeats()
	return c, nil
}

// ping checks one server's liveness and returns its boot identity. One-way
// partition windows starve pings without advancing the injector's data-frame
// counters. A successful round-trip also feeds the per-server RTT histogram
// and — the response carries the server's span-clock now — the NTP-style
// clock-offset estimator: the server's clock is read at roughly the RTT
// midpoint, so clientMid − serverNow estimates the offset to within rtt/2.
func (c *Client) ping(server int) (int64, error) {
	if c.inj != nil && c.inj.PingBlocked(server, true) {
		return 0, fmt.Errorf("%w: ping partitioned to server", errTimeout)
	}
	t0 := time.Now()
	resp, err := c.conns[server].call(frame{ID: c.nextID.Add(1), Op: opPing}, c.reqTimeout)
	rtt := time.Since(t0)
	if err != nil {
		return 0, err
	}
	if c.inj != nil && c.inj.PingBlocked(server, false) {
		return 0, fmt.Errorf("%w: ping partitioned from server", errTimeout)
	}
	if resp.Code != errNone {
		return 0, errFromCode(resp.Code, resp.errText())
	}
	c.met.HeartbeatRTT(server).ObserveDuration(rtt)
	if len(resp.Val) == 8 {
		serverNow := int64(binary.BigEndian.Uint64(resp.Val))
		clientMid := int64(t0.Add(rtt / 2).Sub(c.clockBase()))
		c.noteClockSample(server, clientMid-serverNow, int64(rtt))
	}
	return resp.Aux, nil
}

// heartbeats is the failure detector: ping every server each period, mark
// down after hbMisses consecutive misses, mark rejoining servers cold until
// healed.
func (c *Client) heartbeats() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.hbEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
			for i := range c.conns {
				bootID, err := c.ping(i)
				c.noteHeartbeat(i, bootID, err)
			}
		}
	}
}

func (c *Client) noteHeartbeat(server int, bootID int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.states[server]
	if err != nil {
		st.misses++
		if st.up && st.misses >= c.hbMisses {
			st.up = false
			c.met.ServerUp(server).Set(0)
			c.bumpFailoverLocked()
		}
		return
	}
	st.misses = 0
	c.met.ServerUp(server).Set(1)
	if !st.up {
		// Back from the dead: usable for writes immediately, but cold (its
		// data is stale or gone) until the engine heals. Sensed as a
		// failover so the recovery path runs.
		st.up = true
		if st.everUp {
			st.cold = true
		}
		st.everUp = true
		st.bootID = bootID
		c.bumpFailoverLocked()
		return
	}
	if st.bootID != bootID {
		// The process restarted between two successful pings — a crash the
		// miss counter was too slow to see. Boot identity catches it.
		st.bootID = bootID
		st.cold = true
		c.bumpFailoverLocked()
	}
}

func (c *Client) bumpFailoverLocked() {
	c.failovers.Add(1)
	c.met.AddFailovers(1)
}

// dataMissFloor floors the consecutive-miss threshold for down-marking a
// server from data-call failures. Data frames vastly outnumber heartbeats,
// so at the heartbeat threshold a fraction-of-a-percent frame-loss rate
// would flap the detector; a genuinely dead or partitioned server fails
// every call and still trips the floor within milliseconds of traffic.
const dataMissFloor = 8

// noteFailure counts a data-call transport failure against the server.
func (c *Client) noteFailure(server int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.states[server]
	st.misses++
	th := c.hbMisses
	if th < dataMissFloor {
		th = dataMissFloor
	}
	if st.up && st.misses >= th {
		st.up = false
		c.met.ServerUp(server).Set(0)
		c.bumpFailoverLocked()
	}
}

func (c *Client) noteSuccess(server int) {
	c.mu.Lock()
	c.states[server].misses = 0
	c.mu.Unlock()
}

// isTransport reports whether err is a transport failure (retry/fail over)
// as opposed to a server verdict (authoritative).
func isTransport(err error) bool {
	return errors.Is(err, errConnBroken) || errors.Is(err, errTimeout)
}

// rpc performs one round-trip to one server: frame ID assignment, causal
// trace stamping, latency metrics, failure-detector bookkeeping, and
// server-verdict decoding. No retries here — callOp owns the retry policy.
func (c *Client) rpc(server int, req frame, attempt int) (frame, error) {
	return c.rpcT(server, req, attempt, c.reqTimeout)
}

// rpcT is rpc with an explicit deadline, for long-poll reads whose server
// side legitimately holds the request.
func (c *Client) rpcT(server int, req frame, attempt int, timeout time.Duration) (frame, error) {
	req.ID = c.nextID.Add(1)
	tr := c.ambient.Load()
	if tr != 0 {
		req.Trace = tr
		req.Span = splitmix64(tr ^ splitmix64(c.spanCtr.Add(1)))
	}
	start := time.Now()
	resp, err := c.conns[server].call(req, timeout)
	dur := time.Since(start)
	c.met.Endpoint(opName(req.Op)).ObserveDuration(dur)
	c.met.AddRPCCalls(1)
	if tr != 0 && c.tr != nil {
		c.tr.RecordSpan(trace.Span{
			Kind: trace.KindRPC, Job: fmt.Sprintf("s%d/%s", server, opName(req.Op)),
			Part: req.Part, N: int64(attempt), Dur: dur, Trace: tr, Span: req.Span,
		})
	}
	if err != nil {
		c.noteFailure(server)
		return frame{}, err
	}
	c.noteSuccess(server)
	if resp.Code != errNone {
		return resp, errFromCode(resp.Code, resp.errText())
	}
	return resp, nil
}

// primaryOf returns the replica set's effective primary: the first member
// that is up and warm.
func (c *Client) primaryOf(rs []int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range rs {
		if c.states[s].up && !c.states[s].cold {
			return s, true
		}
	}
	return 0, false
}

func (c *Client) isUp(server int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states[server].up
}

// replicaSetFor resolves a part's replica set; ubiquitous tables live on
// every server.
func (c *Client) replicaSetFor(part int, ubiq bool) []int {
	if ubiq {
		all := make([]int, len(c.conns))
		for i := range all {
			all[i] = i
		}
		return all
	}
	return replicaSet(part, len(c.conns), c.replicas)
}

// netBackoff is the transport retry's deterministic jittered backoff: the
// engine's curve (100µs doubling, capped) scaled by a seeded jitter in
// [0.5, 1.5), so distributed-run retry timing replays under a fixed seed.
func (c *Client) netBackoff(op uint8, part, attempt int) time.Duration {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	base := time.Duration(100<<uint(shift)) * time.Microsecond
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(c.backoffSeed))
	h.Write(b[:])
	h.Write([]byte{op})
	binary.LittleEndian.PutUint64(b[:], uint64(int64(part)))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(int64(attempt)))
	h.Write(b[:])
	j := float64(splitmix64(h.Sum64())>>11) / float64(1<<53)
	return time.Duration(float64(base) * (0.5 + j))
}

// callOp runs one part-targeted operation against its replica set: bounded
// retries with seeded jittered backoff, failover re-evaluated on every
// attempt, and (for writes) client-driven replication to the rest of the
// set. A server's verdict is authoritative and returned as-is; transport
// exhaustion surfaces as kvstore.ErrTransient so the engine's own retry and
// recovery layers take over.
func (c *Client) callOp(rs []int, req frame, write bool) (frame, error) {
	return c.callOpT(rs, req, write, c.reqTimeout)
}

func (c *Client) callOpT(rs []int, req frame, write bool, timeout time.Duration) (frame, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.met.AddRPCRetries(1)
			time.Sleep(c.netBackoff(req.Op, req.Part, attempt))
		}
		primary, ok := c.primaryOf(rs)
		if !ok {
			return frame{}, fmt.Errorf("netstore: no live replica for %s part %d: %w",
				req.Name, req.Part, kvstore.ErrShardFailed)
		}
		resp, err := c.rpcT(primary, req, attempt, timeout)
		if err == nil {
			if write {
				c.replicate(rs, primary, req)
			}
			return resp, nil
		}
		if !isTransport(err) {
			return resp, err
		}
		lastErr = err
	}
	return frame{}, fmt.Errorf("netstore: %s %s part %d: %w: %v",
		opName(req.Op), req.Name, req.Part, kvstore.ErrTransient, lastErr)
}

// replicate applies a committed write to the replica set's other live
// members. Replication to an up member retries transport failures — a
// secondary that silently missed writes would serve them stale after a
// primary failover, and a checkpoint restored from it would be torn. Only a
// member the failure detector has given up on may miss writes; it rejoins
// cold and Heal re-seeds it.
func (c *Client) replicate(rs []int, primary int, req frame) {
	for _, s := range rs {
		if s == primary || !c.isUp(s) {
			continue
		}
		_, _ = c.pinnedRPC(s, req)
	}
}

// broadcast sends a request to every live server, returning the first
// server verdict error. Transport failures are tolerated (the server is on
// its way to down; Heal re-ensures DDL when it returns).
func (c *Client) broadcast(req frame) error {
	var verdict error
	okCount := 0
	for s := range c.conns {
		if !c.isUp(s) {
			continue
		}
		_, err := c.rpc(s, req, 0)
		switch {
		case err == nil:
			okCount++
		case !isTransport(err) && verdict == nil:
			verdict = err
		}
	}
	if verdict != nil {
		return verdict
	}
	if okCount == 0 {
		return fmt.Errorf("netstore: %s %s: no server reachable: %w",
			opName(req.Op), req.Name, kvstore.ErrTransient)
	}
	return nil
}

// --- kvstore.Store ---

var (
	_ kvstore.Store         = (*Client)(nil)
	_ kvstore.Healer        = (*Client)(nil)
	_ kvstore.FailureSensor = (*Client)(nil)
	_ kvstore.TraceBinder   = (*Client)(nil)
)

// Name implements kvstore.Store.
func (c *Client) Name() string { return "netstore" }

// DefaultParts implements kvstore.Store.
func (c *Client) DefaultParts() int { return c.defaultParts }

// Servers reports the fleet size.
func (c *Client) Servers() int { return len(c.conns) }

// Replicas reports the effective replication factor.
func (c *Client) Replicas() int { return c.replicas }

// CreateTable implements kvstore.Store. Only codec.DefaultHasher tables are
// supported: keys cross the wire in encoded form and both sides must agree
// on key→part placement, which a caller-supplied hasher function cannot
// (functions don't serialize).
func (c *Client) CreateTable(name string, opts ...kvstore.TableOption) (kvstore.Table, error) {
	cfg := kvstore.ApplyOptions(c.defaultParts, opts)
	if _, ok := cfg.Hasher.(codec.DefaultHasher); !ok {
		return nil, fmt.Errorf("netstore: table %q: only codec.DefaultHasher placement crosses the wire", name)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, kvstore.ErrClosed
	}
	if _, ok := c.tables[name]; ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", kvstore.ErrTableExists, name)
	}
	if cfg.ConsistentWith != "" {
		base, ok := c.tables[cfg.ConsistentWith]
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: consistent-with %q", kvstore.ErrNoTable, cfg.ConsistentWith)
		}
		// Placement is a pure function of (part, servers), so matching the
		// part count is all consistent partitioning requires.
		cfg.Parts = base.parts
	}
	c.mu.Unlock()

	req := frame{Op: opCreateTable, Name: name, Part: cfg.Parts, Flag: cfg.Ubiquitous}
	if cfg.Ordered {
		req.Aux = 1
	}
	if err := c.broadcast(req); err != nil {
		return nil, err
	}
	meta := tableMeta{parts: cfg.Parts, ubiq: cfg.Ubiquitous, ordered: cfg.Ordered}
	c.mu.Lock()
	c.tables[name] = meta
	c.order = append(c.order, name)
	c.mu.Unlock()
	return &netTable{c: c, name: name, meta: meta}, nil
}

// LookupTable implements kvstore.Store. Tables created by other clients of
// the same fleet resolve through the servers and are cached.
func (c *Client) LookupTable(name string) (kvstore.Table, bool) {
	c.mu.Lock()
	meta, ok := c.tables[name]
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, false
	}
	if ok {
		return &netTable{c: c, name: name, meta: meta}, true
	}
	for s := range c.conns {
		if !c.isUp(s) {
			continue
		}
		resp, err := c.rpc(s, frame{Op: opLookupTable, Name: name}, 0)
		if err != nil {
			continue
		}
		if !resp.Flag {
			return nil, false
		}
		meta = tableMeta{parts: resp.Part, ubiq: resp.Aux&2 != 0, ordered: resp.Aux&1 != 0}
		c.mu.Lock()
		if _, dup := c.tables[name]; !dup {
			c.tables[name] = meta
			c.order = append(c.order, name)
		}
		c.mu.Unlock()
		return &netTable{c: c, name: name, meta: meta}, true
	}
	return nil, false
}

// DropTable implements kvstore.Store.
func (c *Client) DropTable(name string) error {
	c.mu.Lock()
	_, known := c.tables[name]
	delete(c.tables, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	err := c.broadcast(frame{Op: opDropTable, Name: name})
	if err != nil && errors.Is(err, kvstore.ErrNoTable) && known {
		// A replica that missed the create; the drop still won.
		return nil
	}
	return err
}

// Tables implements kvstore.Store.
func (c *Client) Tables() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// RunAgent implements kvstore.Store. The agent executes client-side against
// RPC-backed part views — mobile code is not shipped over this transport
// (Go functions don't serialize), so "collocated" here means "keyed to one
// part's replica set". The SPI contract the engine relies on (one part's
// view of every co-placed table) is preserved.
func (c *Client) RunAgent(tableName string, part int, agent kvstore.Agent) (any, error) {
	c.mu.Lock()
	meta, ok := c.tables[tableName]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	parts := meta.parts
	if meta.ubiq {
		parts = 1
	}
	if err := kvstore.CheckPart(part, parts); err != nil {
		return nil, err
	}
	return agent(&netShardView{c: c, anchor: tableName, meta: meta, part: part})
}

// Close implements kvstore.Store.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.shutdown()
	return nil
}

func (c *Client) shutdown() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
	for _, sc := range c.conns {
		sc.close()
	}
}

// --- capabilities ---

// Failovers implements kvstore.FailureSensor: servers declared down, cold
// rejoins, and restarts detected by boot identity all count.
func (c *Client) Failovers() int64 { return c.failovers.Load() }

// BindTrace implements kvstore.TraceBinder.
func (c *Client) BindTrace(traceID uint64) { c.ambient.Store(traceID) }

// pinnedRPC is a retrying call pinned to one specific server (no failover):
// replication and heal both target a particular replica, so a transient
// frame loss must not condemn it — but once the failure detector declares
// the server down mid-retry, further attempts are pointless and it bails.
func (c *Client) pinnedRPC(server int, req frame) (frame, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.met.AddRPCRetries(1)
			time.Sleep(c.netBackoff(req.Op, req.Part, attempt))
		}
		resp, err := c.rpc(server, req, attempt)
		if err == nil || !isTransport(err) {
			return resp, err
		}
		lastErr = err
		if !c.isUp(server) {
			break
		}
	}
	return frame{}, lastErr
}

// forceDown declares a server down immediately. Heal uses it when a replica
// stops answering mid-heal: the replica may be torn (cleared but not yet
// re-seeded), so it must not serve reads until a later heal re-seeds it —
// the revival path marks rejoining servers cold, which guarantees that.
func (c *Client) forceDown(server int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.states[server]
	if st.up {
		st.up = false
		c.met.ServerUp(server).Set(0)
		c.bumpFailoverLocked()
	}
}

// Heal implements kvstore.Healer: re-ensure DDL on every live server, then
// re-seed every cold server's replica parts from a warm member of each
// part's replica set. The engine invokes it (per table) before re-running a
// job from its last checkpoint; healing the whole registry is idempotent,
// so the per-table argument only matters for error attribution.
//
// A server that stops answering mid-heal does not fail the heal: it is
// declared down (see forceDown) and skipped, because every part it carries
// still has the warm source the heal was copying from. Only losing the last
// warm member of a replica set is fatal.
func (c *Client) Heal(string) error {
	c.healMu.Lock()
	defer c.healMu.Unlock()

	c.mu.Lock()
	cold := make([]int, 0, len(c.states))
	for s, st := range c.states {
		if st.up && st.cold {
			cold = append(cold, s)
		}
	}
	names := make([]string, len(c.order))
	copy(names, c.order)
	metas := make(map[string]tableMeta, len(c.tables))
	for n, m := range c.tables {
		metas[n] = m
	}
	qsets := make(map[string]int, len(c.qsets))
	for n, q := range c.qsets {
		qsets[n] = q
	}
	c.mu.Unlock()

	// DDL first: a rejoined server may have lost everything, and every
	// other op needs its tables back before data can be copied in. A server
	// that cannot be reached is declared down rather than half-healed.
	for _, name := range names {
		m := metas[name]
		req := frame{Op: opCreateTable, Name: name, Part: m.parts, Flag: m.ubiq}
		if m.ordered {
			req.Aux = 1
		}
		for s := range c.conns {
			if !c.isUp(s) {
				continue
			}
			if _, err := c.pinnedRPC(s, req); err != nil && !errors.Is(err, kvstore.ErrTableExists) {
				if isTransport(err) {
					c.forceDown(s)
					continue
				}
				return fmt.Errorf("netstore: heal: ensure %q on server %d: %w", name, s, err)
			}
		}
	}
	// Queue sets too: a restarted server dropped its queues, and the no-sync
	// path needs the set to exist everywhere before puts route to it.
	for name, queues := range qsets {
		req := frame{Op: opMQCreate, Name: name, Part: queues}
		for s := range c.conns {
			if !c.isUp(s) {
				continue
			}
			if _, err := c.pinnedRPC(s, req); err != nil && !errors.Is(err, mq.ErrExists) {
				if isTransport(err) {
					c.forceDown(s)
					continue
				}
				return fmt.Errorf("netstore: heal: ensure queue set %q on server %d: %w", name, s, err)
			}
		}
	}
	if len(cold) == 0 {
		return nil
	}

	coldSet := make(map[int]bool, len(cold))
	for _, s := range cold {
		coldSet[s] = true
	}
	for _, name := range names {
		m := metas[name]
		parts := m.parts
		if m.ubiq {
			parts = 1
		}
		for part := 0; part < parts; part++ {
			rs := c.replicaSetFor(part, m.ubiq)
			// Source: the first warm live member — the same order reads
			// prefer, so the heal copies what readers have been seeing. A
			// source that stops answering is declared down and the next warm
			// member takes over; the warm set strictly shrinks, so this
			// terminates.
			var snap frame
			src := -1
			for {
				src = -1
				for _, s := range rs {
					if c.isUp(s) && !coldSet[s] {
						src = s
						break
					}
				}
				if src < 0 {
					return fmt.Errorf("netstore: heal %q part %d: no warm replica: %w",
						name, part, kvstore.ErrShardFailed)
				}
				var err error
				snap, err = c.pinnedRPC(src, frame{Op: opSnapshot, Name: name, Part: part})
				if err == nil {
					break
				}
				if !isTransport(err) {
					return fmt.Errorf("netstore: heal %q part %d: snapshot from server %d: %w",
						name, part, src, err)
				}
				c.forceDown(src)
			}
			for _, s := range rs {
				if s == src || !c.isUp(s) {
					continue
				}
				if _, err := c.pinnedRPC(s, frame{Op: opClearPart, Name: name, Part: part}); err != nil {
					if isTransport(err) {
						c.forceDown(s)
						continue
					}
					return fmt.Errorf("netstore: heal %q part %d: clear on server %d: %w",
						name, part, s, err)
				}
				if _, err := c.pinnedRPC(s, frame{Op: opPutBatch, Name: name, Part: part, Pairs: snap.Pairs}); err != nil {
					if isTransport(err) {
						c.forceDown(s)
						continue
					}
					return fmt.Errorf("netstore: heal %q part %d: seed server %d: %w",
						name, part, s, err)
				}
			}
		}
	}

	c.mu.Lock()
	for _, s := range cold {
		if c.states[s].up {
			c.states[s].cold = false
		}
	}
	c.mu.Unlock()
	return nil
}

package diskstore

import (
	"sort"

	"ripple/internal/codec"
)

// memEntry is one memtable slot: the encoded key and value bytes plus the
// decoded key (kept so flushes don't re-decode). A tombstone has tomb set
// and no value.
type memEntry struct {
	key  any
	kbuf []byte
	vbuf []byte
	tomb bool
}

// memtable is the mutable head of one part: the most recent write per key,
// in memory, shadowing every SSTable run below it. Its byte footprint is
// tracked so the part can flush when it exceeds its share of the store's
// memory budget.
type memtable struct {
	entries map[any]*memEntry
	bytes   int64
}

func newMemtable() *memtable {
	return &memtable{entries: make(map[any]*memEntry)}
}

// entryOverhead approximates the map-slot bookkeeping per entry so the
// budget reflects actual memory, not just payload bytes.
const entryOverhead = 64

// set records the newest write (or tombstone) for key and returns the change
// in the memtable's byte footprint.
func (m *memtable) set(key any, kbuf, vbuf []byte, tomb bool) (delta int64) {
	if old, ok := m.entries[key]; ok {
		delta = int64(len(vbuf)) - int64(len(old.vbuf))
	} else {
		delta = entryOverhead + int64(len(kbuf)+len(vbuf))
	}
	m.entries[key] = &memEntry{key: key, kbuf: kbuf, vbuf: vbuf, tomb: tomb}
	m.bytes += delta
	return delta
}

func (m *memtable) get(key any) (*memEntry, bool) {
	e, ok := m.entries[key]
	return e, ok
}

func (m *memtable) len() int { return len(m.entries) }

// sorted returns the entries in codec.CompareKeys order, the order SSTable
// blocks are laid out in.
func (m *memtable) sorted() []*memEntry {
	out := make([]*memEntry, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return codec.CompareKeys(out[i].key, out[j].key) < 0 })
	return out
}

package workload

import (
	"reflect"
	"sync"
	"testing"
)

func TestDeriveRandDeterministicPerStream(t *testing.T) {
	a1, _ := PowerLawDirected(DeriveRand(42, "tenant-a"), 200, 800, 2.0)
	a2, _ := PowerLawDirected(DeriveRand(42, "tenant-a"), 200, 800, 2.0)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same (seed, stream) produced different graphs")
	}
	b, _ := PowerLawDirected(DeriveRand(42, "tenant-b"), 200, 800, 2.0)
	if reflect.DeepEqual(a1, b) {
		t.Fatal("different streams produced identical graphs")
	}
	c, _ := PowerLawDirected(DeriveRand(43, "tenant-a"), 200, 800, 2.0)
	if reflect.DeepEqual(a1, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

// Concurrent generation on private sources must not perturb each stream's
// sequence — the bug a shared global source would have.
func TestDeriveRandConcurrentGenerationReproducible(t *testing.T) {
	streams := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}

	solo := make([]*DirectedGraph, len(streams))
	for i, s := range streams {
		solo[i], _ = PowerLawDirected(DeriveRand(7, s), 150, 600, 2.0)
	}

	concurrent := make([]*DirectedGraph, len(streams))
	var wg sync.WaitGroup
	for i, s := range streams {
		wg.Add(1)
		go func(i int, s string) {
			defer wg.Done()
			concurrent[i], _ = PowerLawDirected(DeriveRand(7, s), 150, 600, 2.0)
		}(i, s)
	}
	wg.Wait()

	for i := range streams {
		if !reflect.DeepEqual(solo[i], concurrent[i]) {
			t.Errorf("stream %s: concurrent generation diverged from solo", streams[i])
		}
	}
}

package metrics

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"

	"ripple/internal/trace"
)

// WritePrometheus renders a collector in the Prometheus text exposition
// format (version 0.0.4): every counter as a ripple_*_total counter, the
// gauges as ripple_* gauges (queue depth with a part label), every histogram
// as a ripple_*_seconds histogram with cumulative power-of-two buckets, plus
// Go runtime gauges for the process itself. A nil collector writes only the
// runtime gauges.
func WritePrometheus(w io.Writer, c *Collector) error {
	return WritePrometheusTracer(w, c, nil)
}

// WritePrometheusTracer is WritePrometheus plus the tracer's loss counters
// (retained spans and ring-overwrite drops), so span loss is visible to
// scrapes. The trace series are emitted unconditionally — a nil tracer reads
// as zero — so dashboards never see the series appear and disappear.
func WritePrometheusTracer(w io.Writer, c *Collector, t *trace.Tracer) error {
	if err := writeBuildInfo(w); err != nil {
		return err
	}
	if err := writeRuntimeGauges(w); err != nil {
		return err
	}
	if err := writeMeta(w, "ripple_trace_spans", "Spans currently retained in the trace ring buffer.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ripple_trace_spans %d\n", t.Len()); err != nil {
		return err
	}
	if err := writeMeta(w, "ripple_trace_dropped_total", "Spans overwritten by trace ring wraparound.", "counter"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ripple_trace_dropped_total %d\n", t.Dropped()); err != nil {
		return err
	}
	if c == nil {
		return nil
	}
	snap := c.Snapshot()
	counters := []struct {
		name, help string
		v          int64
	}{
		{"ripple_steps_total", "Completed BSP steps.", snap.Steps},
		{"ripple_barriers_total", "Synchronization barriers crossed.", snap.Barriers},
		{"ripple_messages_sent_total", "BSP messages sent.", snap.MessagesSent},
		{"ripple_messages_combined_total", "Messages eliminated by a combiner.", snap.MessagesCombined},
		{"ripple_compute_invocations_total", "Component compute invocations.", snap.ComputeInvocations},
		{"ripple_marshalled_bytes_total", "Bytes marshalled across emulated partitions.", snap.MarshalledBytes},
		{"ripple_store_gets_total", "Key/value store gets.", snap.StoreGets},
		{"ripple_store_puts_total", "Key/value store puts.", snap.StorePuts},
		{"ripple_store_deletes_total", "Key/value store deletes.", snap.StoreDeletes},
		{"ripple_spills_total", "Spill batches written to the transport table.", snap.Spills},
		{"ripple_aggregation_rounds_total", "Extra table-based aggregation rounds.", snap.AggregationRounds},
		{"ripple_recoveries_total", "Fault-recovery replays.", snap.Recoveries},
		{"ripple_retries_total", "Transient-failure retries performed by the engine.", snap.Retries},
		{"ripple_failovers_total", "Primary failovers (replica promotions) in the store.", snap.Failovers},
		{"ripple_faults_injected_total", "Faults injected by the chaos layer.", snap.FaultsInjected},
		{"ripple_steps_rerun_total", "Steps re-executed during automatic failover recovery.", snap.StepsRerun},
		{"ripple_rpc_calls_total", "Transport RPC round-trips.", snap.RPCCalls},
		{"ripple_rpc_retries_total", "Transport-level RPC retries (timeouts and connection failures).", snap.RPCRetries},
	}
	for _, ctr := range counters {
		if err := writeMeta(w, ctr.name, ctr.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", ctr.name, ctr.v); err != nil {
			return err
		}
	}

	if err := writeMeta(w, "ripple_enabled_components", "Compute invocations in the latest synchronized step.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ripple_enabled_components %d\n", c.EnabledComponents().Load()); err != nil {
		return err
	}
	if err := writeMeta(w, "ripple_inflight_envelopes", "Envelopes emitted but not yet delivered.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ripple_inflight_envelopes %d\n", c.InFlightEnvelopes().Load()); err != nil {
		return err
	}
	if err := writeMeta(w, "ripple_step_skew_ratio", "Latest step's compute skew: slowest part over median part (1.0 = balanced).", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ripple_step_skew_ratio %g\n", c.StepSkewRatio().Load()); err != nil {
		return err
	}
	if err := writeMeta(w, "ripple_straggler_part", "Part that set the latest step's critical path.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ripple_straggler_part %d\n", c.StragglerPart().Load()); err != nil {
		return err
	}
	if err := writeMeta(w, "ripple_queue_depth", "Per-part message queue depth (no-sync execution).", "gauge"); err != nil {
		return err
	}
	depths := c.QueueDepths().Snapshot()
	parts := make([]int, 0, len(depths))
	for p := range depths {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		if _, err := fmt.Fprintf(w, "ripple_queue_depth{part=\"%d\"} %d\n", p, depths[p]); err != nil {
			return err
		}
	}

	hists := []struct {
		name, help string
		h          *Histogram
	}{
		{"ripple_step_duration_seconds", "Whole-step wall-clock time, barrier included.", c.StepDurations()},
		{"ripple_barrier_wait_seconds", "Per-part idle time at the barrier behind the slowest part.", c.BarrierWaits()},
		{"ripple_part_compute_seconds", "Per-part compute time of one step.", c.PartComputes()},
		{"ripple_checkpoint_write_seconds", "Barrier-state snapshot write time.", c.CheckpointWrites()},
		{"ripple_store_write_seconds", "Durable store write (log append) time.", c.StoreWrites()},
	}
	for _, hd := range hists {
		if err := writeHistogram(w, hd.name, hd.help, hd.h.Snapshot()); err != nil {
			return err
		}
	}

	// Per-endpoint RPC latency, one labelled histogram per wire opcode, in
	// sorted order so scrapes are stable.
	eps := c.EndpointSnapshots()
	if len(eps) > 0 {
		names := make([]string, 0, len(eps))
		for n := range eps {
			names = append(names, n)
		}
		sort.Strings(names)
		if err := writeMeta(w, "ripple_rpc_latency_seconds", "Transport RPC round-trip latency by endpoint.", "histogram"); err != nil {
			return err
		}
		for _, n := range names {
			if err := writeHistogramLabelled(w, "ripple_rpc_latency_seconds",
				fmt.Sprintf("endpoint=%q", n), eps[n]); err != nil {
				return err
			}
		}
	}

	// Per-server heartbeat RTT and failure-detector liveness, populated by
	// the networked transport's heartbeat loop.
	rtts := c.HeartbeatRTTSnapshots()
	if len(rtts) > 0 {
		servers := make([]int, 0, len(rtts))
		for s := range rtts {
			servers = append(servers, s)
		}
		sort.Ints(servers)
		if err := writeMeta(w, "ripple_heartbeat_rtt_seconds", "Heartbeat ping round-trip time by server.", "histogram"); err != nil {
			return err
		}
		for _, s := range servers {
			if err := writeHistogramLabelled(w, "ripple_heartbeat_rtt_seconds",
				fmt.Sprintf("server=\"%d\"", s), rtts[s]); err != nil {
				return err
			}
		}
	}
	ups := c.ServerUpSnapshots()
	if len(ups) > 0 {
		servers := make([]int, 0, len(ups))
		for s := range ups {
			servers = append(servers, s)
		}
		sort.Ints(servers)
		if err := writeMeta(w, "ripple_server_up", "Failure-detector verdict by server: 1 = up, 0 = down.", "gauge"); err != nil {
			return err
		}
		for _, s := range servers {
			if _, err := fmt.Fprintf(w, "ripple_server_up{server=\"%d\"} %d\n", s, ups[s]); err != nil {
				return err
			}
		}
	}

	// LSM storage-engine series (populated by diskstore). Emitted whenever a
	// collector is present — a process without a disk store reads all-zero —
	// so the series never appear and disappear between scrapes.
	lsm := c.LSM().Snapshot()
	lsmCounters := []struct {
		name, help string
		v          int64
	}{
		{"ripple_lsm_flushes_total", "Memtables flushed to SSTable runs.", lsm.Flushes},
		{"ripple_lsm_compactions_total", "SSTable run merges.", lsm.Compactions},
		{"ripple_lsm_logical_bytes_total", "Key+value payload bytes accepted from callers.", lsm.LogicalBytes},
		{"ripple_lsm_wal_bytes_total", "Bytes appended to write-ahead logs.", lsm.WALBytes},
		{"ripple_lsm_wal_syncs_total", "WAL fsyncs (group commits, flushes).", lsm.WALSyncs},
		{"ripple_lsm_flush_bytes_total", "SSTable bytes written by memtable flushes.", lsm.FlushBytes},
		{"ripple_lsm_compaction_bytes_total", "SSTable bytes written by compactions.", lsm.CompactionBytes},
		{"ripple_lsm_bloom_checks_total", "Run probes that consulted a bloom filter.", lsm.BloomChecks},
		{"ripple_lsm_bloom_negatives_total", "Probes the bloom filter rejected without a disk read.", lsm.BloomNegatives},
		{"ripple_lsm_bloom_false_positives_total", "Probes that passed the filter but found nothing.", lsm.BloomFalsePositives},
		{"ripple_lsm_block_reads_total", "SSTable data-block reads.", lsm.BlockReads},
	}
	for _, ctr := range lsmCounters {
		if err := writeMeta(w, ctr.name, ctr.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", ctr.name, ctr.v); err != nil {
			return err
		}
	}
	if err := writeMeta(w, "ripple_lsm_memtable_bytes", "Live memtable footprint across all table parts.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ripple_lsm_memtable_bytes %d\n", lsm.MemtableBytes); err != nil {
		return err
	}
	if err := writeMeta(w, "ripple_lsm_runs", "Live SSTable runs by compaction level.", "gauge"); err != nil {
		return err
	}
	levels := make([]int, 0, len(lsm.RunCounts))
	for l := range lsm.RunCounts {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		if _, err := fmt.Fprintf(w, "ripple_lsm_runs{level=\"%d\"} %d\n", l, lsm.RunCounts[l]); err != nil {
			return err
		}
	}
	if err := writeMeta(w, "ripple_lsm_write_amplification", "Physical bytes written (WAL + flush + compaction) over logical payload bytes.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ripple_lsm_write_amplification %g\n", lsm.WriteAmplification()); err != nil {
		return err
	}
	if err := writeMeta(w, "ripple_lsm_bloom_fp_rate", "Bloom-filter false positives over probes that passed the filter.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ripple_lsm_bloom_fp_rate %g\n", lsm.BloomFalsePositiveRate()); err != nil {
		return err
	}
	if err := writeHistogramRaw(w, "ripple_lsm_group_commit_batch", "Writers acknowledged per WAL fsync.", lsm.GroupCommitBatch); err != nil {
		return err
	}
	return nil
}

// WriteMeta emits a metric's # HELP / # TYPE header. Exported for composite
// expositions (the fleet collector) that interleave series from several
// collectors under one metric name.
func WriteMeta(w io.Writer, name, help, typ string) error {
	return writeMeta(w, name, help, typ)
}

// WriteHistogramLabelled emits one histogram's sample lines with an extra
// label clause (e.g. `server="1"` or `server="1",endpoint="get"`) on every
// series. The # HELP / # TYPE header must have been written once by the
// caller via WriteMeta. Exported for composite expositions.
func WriteHistogramLabelled(w io.Writer, name, label string, s HistogramSnapshot) error {
	return writeHistogramLabelled(w, name, label, s)
}

// writeHistogramLabelled emits one histogram's sample lines with an extra
// label pair on every series (the metadata is written once by the caller).
func writeHistogramLabelled(w io.Writer, name, label string, s HistogramSnapshot) error {
	top := 0
	for i, n := range s.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		le := float64(BucketBound(i)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, label, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %g\n", name, label, float64(s.Sum)/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, s.Count)
	return err
}

// writeBuildInfo emits the conventional build-info gauge: a constant 1 whose
// labels identify the binary (module version from the embedded build info —
// "devel" for an untagged build — and the Go toolchain that compiled it).
func writeBuildInfo(w io.Writer) error {
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	if err := writeMeta(w, "ripple_build_info", "Build information for the running binary; value is always 1.", "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "ripple_build_info{version=%q,go=%q} 1\n", version, runtime.Version())
	return err
}

// writeRuntimeGauges emits the process-level Go runtime gauges: goroutines,
// heap bytes, and cumulative GC pause time.
func writeRuntimeGauges(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauges := []struct {
		name, help string
		v          string
	}{
		{"ripple_go_goroutines", "Goroutines currently running.", fmt.Sprintf("%d", runtime.NumGoroutine())},
		{"ripple_go_heap_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc).", fmt.Sprintf("%d", ms.HeapAlloc)},
		{"ripple_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", fmt.Sprintf("%g", float64(ms.PauseTotalNs)/1e9)},
	}
	for _, g := range gauges {
		if err := writeMeta(w, g.name, g.help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", g.name, g.v); err != nil {
			return err
		}
	}
	return nil
}

func writeMeta(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// writeHistogram emits one histogram: cumulative buckets up to the highest
// populated one, then +Inf, _sum, and _count. Nanosecond values are exposed
// in seconds, per Prometheus convention.
func writeHistogram(w io.Writer, name, help string, s HistogramSnapshot) error {
	if err := writeMeta(w, name, help, "histogram"); err != nil {
		return err
	}
	top := 0
	for i, n := range s.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		le := float64(BucketBound(i)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, float64(s.Sum)/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}

// writeHistogramRaw is writeHistogram for histograms whose observations are
// plain counts rather than nanoseconds: bucket bounds and the sum stay in
// the observed unit instead of being scaled to seconds.
func writeHistogramRaw(w io.Writer, name, help string, s HistogramSnapshot) error {
	if err := writeMeta(w, name, help, "histogram"); err != nil {
		return err
	}
	top := 0
	for i, n := range s.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketBound(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}

// Handler serves the collector in the Prometheus text format, for mounting
// at /metrics.
func Handler(c *Collector) http.Handler {
	return HandlerTracer(c, nil)
}

// HandlerTracer is Handler plus the tracer's loss counters.
func HandlerTracer(c *Collector, t *trace.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheusTracer(w, c, t)
	})
}

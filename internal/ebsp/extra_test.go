package ebsp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ripple/internal/kvstore"
	"ripple/internal/memstore"
)

// TestRunAnywhereBroadcast exercises the remote-broadcast path: work-stolen
// invocations still read the reference table.
func TestRunAnywhereBroadcast(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	ref, _ := store.CreateTable("rb_ref", kvstore.Ubiquitous())
	_ = ref.Put("x", 7)
	e := NewEngine(store)
	var sum atomic.Int64
	job := &Job{
		Name:           "ra-bcast",
		StateTables:    []string{"rab_state"},
		ReferenceTable: "rb_ref",
		Properties:     Properties{OneMsg: true, NoContinue: true, RareState: true},
		Compute: ComputeFunc(func(ctx *Context) bool {
			v, ok := ctx.Broadcast("x")
			if !ok {
				t.Error("broadcast missing under run-anywhere")
				return false
			}
			sum.Add(int64(v.(int)))
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{
			{Key: 1, Message: "a"}, {Key: 2, Message: "b"}, {Key: 3, Message: "c"},
		}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Strategy.RunAnywhere {
		t.Fatal("run-anywhere not selected")
	}
	if sum.Load() != 21 {
		t.Errorf("sum = %d, want 21", sum.Load())
	}
}

// TestRunAnywhereAggregators: partial aggregations from stolen work merge
// correctly.
func TestRunAnywhereAggregators(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "ra-agg",
		StateTables: []string{"raa_state"},
		Properties:  Properties{OneMsg: true, NoContinue: true, RareState: true},
		Aggregators: map[string]Aggregator{"n": IntSum{}},
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.AggregateValue("n", 1)
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{
			{Key: 1, Message: 0}, {Key: 2, Message: 0}, {Key: 3, Message: 0}, {Key: 4, Message: 0},
		}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates["n"] != 4 {
		t.Errorf("aggregate = %v, want 4", res.Aggregates["n"])
	}
}

// TestRunAnywhereDirectOutput: direct job output flows from stolen work.
func TestRunAnywhereDirectOutput(t *testing.T) {
	e := newEngine(t)
	out := &CollectExporter{}
	job := &Job{
		Name:         "ra-direct",
		StateTables:  []string{"rad_state"},
		Properties:   Properties{OneMsg: true, NoContinue: true, RareState: true},
		DirectOutput: out,
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.DirectOutput(ctx.Key(), "seen")
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{
			{Key: 10, Message: 0}, {Key: 20, Message: 0},
		}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("direct output = %v", out.Pairs())
	}
}

// TestMultipleExporters exports two state tables independently.
func TestMultipleExporters(t *testing.T) {
	e := newEngine(t)
	expA := &CollectExporter{}
	expB := &CollectExporter{}
	job := &Job{
		Name:        "multi-exp",
		StateTables: []string{"me_a", "me_b"},
		Exporters:   map[string]Exporter{"me_a": expA, "me_b": expB},
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.WriteState(0, "a")
			ctx.WriteState(1, "b")
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1, 2}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if expA.Len() != 2 || expB.Len() != 2 {
		t.Errorf("exports: a=%d b=%d", expA.Len(), expB.Len())
	}
	for _, v := range expA.Pairs() {
		if v != "a" {
			t.Errorf("exporter A saw %v", v)
		}
	}
}

// TestExporterErrorSurfaces: a failing exporter fails the run.
func TestExporterErrorSurfaces(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "exp-err",
		StateTables: []string{"ee_state"},
		Exporters: map[string]Exporter{"ee_state": ExporterFunc(func(_, _ any) error {
			return fmt.Errorf("export sink full")
		})},
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.WriteState(0, 1)
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
	}
	if _, err := e.Run(job); err == nil {
		t.Error("exporter error did not surface")
	}
}

// TestLoaderErrorSurfaces: a failing loader fails the run before any step.
func TestLoaderErrorSurfaces(t *testing.T) {
	e := newEngine(t)
	var ran atomic.Bool
	job := &Job{
		Name:        "load-err",
		StateTables: []string{"le_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			ran.Store(true)
			return false
		}),
		Loaders: []Loader{LoaderFunc(func(*LoadContext) error {
			return fmt.Errorf("source unavailable")
		})},
	}
	if _, err := e.Run(job); err == nil {
		t.Error("loader error did not surface")
	}
	if ran.Load() {
		t.Error("compute ran despite loader failure")
	}
}

// TestAggregatorUnknownNameIgnored: feeding an undeclared aggregator is a
// no-op, reading one yields nil.
func TestAggregatorUnknownNameIgnored(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "agg-unknown",
		StateTables: []string{"au_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.AggregateValue("ghost", 1)
			if v := ctx.AggregateResult("ghost"); v != nil {
				t.Errorf("ghost aggregate = %v", v)
			}
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
}

// TestSendToSelfSameStepDelivery: messages to self arrive next step like any
// other.
func TestSendToSelfSameStepDelivery(t *testing.T) {
	e := newEngine(t)
	var mu sync.Mutex
	var perStep []int
	job := &Job{
		Name:        "self",
		StateTables: []string{"self_state"},
		MaxSteps:    3,
		Compute: ComputeFunc(func(ctx *Context) bool {
			mu.Lock()
			perStep = append(perStep, len(ctx.InputMessages()))
			mu.Unlock()
			ctx.Send(ctx.Key(), "again")
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 1, Message: "start"}}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 1}
	if len(perStep) != 3 {
		t.Fatalf("invocations = %v", perStep)
	}
	for i := range want {
		if perStep[i] != want[i] {
			t.Errorf("step %d messages = %d", i+1, perStep[i])
		}
	}
}

// TestComputeObjectCombinerInterface: a Compute that implements
// MessageCombiner is used without setting Job.Combiner.
type selfCombining struct {
	delivered atomic.Int64
}

func (sc *selfCombining) Compute(ctx *Context) bool {
	if ctx.StepNum() == 1 {
		ctx.Send(99, 1)
		ctx.Send(99, 2)
		ctx.Send(99, 3)
		return false
	}
	sc.delivered.Add(int64(len(ctx.InputMessages())))
	return false
}

func (sc *selfCombining) CombineMessages(_, a, b any) any { return a.(int) + b.(int) }

func TestComputeObjectCombinerInterface(t *testing.T) {
	e := newEngine(t)
	comp := &selfCombining{}
	job := &Job{
		Name:        "implicit-combiner",
		StateTables: []string{"ic_state"},
		Compute:     comp,
		Loaders:     []Loader{&EnableLoader{Keys: []any{1}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if comp.delivered.Load() != 1 {
		t.Errorf("deliveries = %d, want 1 (combined)", comp.delivered.Load())
	}
}

// TestDeepChainManySteps stresses long executions (hundreds of barriers).
func TestDeepChainManySteps(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "deep",
		StateTables: []string{"deep_state"},
		Compute:     &chainCompute{limit: 400},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 401 {
		t.Errorf("Steps = %d, want 401", res.Steps)
	}
}

// TestWideFanoutSingleStep stresses many components in one step.
func TestWideFanoutSingleStep(t *testing.T) {
	e := newEngine(t)
	const width = 5000
	seeds := make([]InitialMessage, width)
	for i := range seeds {
		seeds[i] = InitialMessage{Key: i, Message: i}
	}
	var count atomic.Int64
	job := &Job{
		Name:        "wide",
		StateTables: []string{"wide_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			count.Add(1)
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: seeds}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 || count.Load() != width {
		t.Errorf("steps=%d count=%d", res.Steps, count.Load())
	}
}

package pagerank

import (
	"math"
	"testing"
)

func TestDirectConvergenceStopsEarly(t *testing.T) {
	g := genGraph(t, 300, 2400, 21)
	e := newEngine(t, nil)
	tab, _ := LoadGraph(e.Store(), "g", g, 6)
	res, err := RunDirect(e, Config{
		GraphTable: "g",
		Iterations: 200, // upper bound; epsilon should stop far earlier
		Epsilon:    1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps >= 200 {
		t.Errorf("convergence never fired: %d steps", res.Steps)
	}
	if res.Steps < 5 {
		t.Errorf("converged suspiciously early: %d steps", res.Steps)
	}
	// At convergence the result must match a long fixed iteration closely.
	got, err := ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(g, 0.85, 200)
	worst := 0.0
	for v, w := range want {
		if d := math.Abs(got[v] - w); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Errorf("converged ranks off by %g from fixed point", worst)
	}
	sum := 0.0
	for _, r := range got {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %g", sum)
	}
}

func TestMapReduceConvergenceStopsEarly(t *testing.T) {
	g := genGraph(t, 300, 2400, 21)
	e := newEngine(t, nil)
	tab, _ := LoadGraph(e.Store(), "g", g, 6)
	if err := SeedRanks(tab); err != nil {
		t.Fatal(err)
	}
	sum, err := RunMapReduce(e, Config{
		GraphTable: "g",
		Iterations: 200,
		Epsilon:    1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Converged {
		t.Error("MR variant did not report convergence")
	}
	if sum.Iterations >= 200 {
		t.Errorf("convergence never fired: %d iterations", sum.Iterations)
	}
	got, err := ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(g, 0.85, 200)
	worst := 0.0
	for v, w := range want {
		if d := math.Abs(got[v] - w); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Errorf("converged ranks off by %g from fixed point", worst)
	}
}

func TestLooseEpsilonStopsSooner(t *testing.T) {
	g := genGraph(t, 200, 1500, 23)
	steps := func(eps float64) int {
		e := newEngine(t, nil)
		_, _ = LoadGraph(e.Store(), "g", g, 6)
		res, err := RunDirect(e, Config{GraphTable: "g", Iterations: 300, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		return res.Steps
	}
	loose := steps(1e-3)
	tight := steps(1e-10)
	if loose >= tight {
		t.Errorf("loose epsilon took %d steps, tight took %d — want loose < tight", loose, tight)
	}
}

package mq

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ripple/internal/memstore"
)

// TestFIFOProperty: for random message counts and queue counts, every queue
// delivers exactly its messages, in order.
func TestFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		queues := 1 + rng.Intn(6)
		perQueue := rng.Intn(200)

		sys, tab := newSystem(t, queues)
		qs, err := sys.CreateQueueSet("q", tab)
		if err != nil {
			return false
		}
		defer func() { _ = qs.Close() }()
		for q := 0; q < queues; q++ {
			for i := 0; i < perQueue; i++ {
				if err := qs.Put(q, [2]int{q, i}); err != nil {
					return false
				}
			}
		}
		for q := 0; q < queues; q++ {
			r := readerFor(qs, q)
			for i := 0; i < perQueue; i++ {
				msg, ok, _ := r.TryRead()
				if !ok {
					return false
				}
				got := msg.([2]int)
				if got[0] != q || got[1] != i {
					return false
				}
			}
			if _, ok, _ := r.TryRead(); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDelayedDeliveryPreservesFIFOProperty: the latency path must keep
// per-queue order too.
func TestDelayedDeliveryPreservesFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)

		store := memstore.New(memstore.WithParts(1))
		defer func() { _ = store.Close() }()
		tab, err := store.CreateTable("placement")
		if err != nil {
			return false
		}
		sys := NewSystem(WithLatency(100 * time.Microsecond))
		qs, qerr := sys.CreateQueueSet("q", tab)
		if qerr != nil {
			return false
		}
		defer func() { _ = qs.Close() }()
		for i := 0; i < n; i++ {
			if err := qs.Put(0, i); err != nil {
				return false
			}
		}
		r := readerFor(qs, 0)
		for i := 0; i < n; i++ {
			msg, ok, _ := r.Read(5 * time.Second)
			if !ok || msg != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

package profile

import (
	"sort"

	"ripple/internal/trace"
)

// Lineage attribution: deliver spans from a sampled trace name, for every
// receiving part, which producer (step, part) sent it how many messages.
// Joining that against the straggler ranking answers the question skew
// numbers alone cannot: not just *which* part was slow, but *who fed it*.

// HotEdge is one incoming causal edge of a part, aggregated over a run.
type HotEdge struct {
	// FromStep/FromPart name the producing execution; the loader appears as
	// step 0, part -1.
	FromStep int   `json:"from_step"`
	FromPart int   `json:"from_part"`
	Msgs     int64 `json:"msgs"`
}

// maxHotEdges bounds the per-part edge list in the report.
const maxHotEdges = 5

// AttachLineage joins a span dump against the report's straggler ranking:
// each ranked part gains its hottest incoming deliver edges (heaviest first,
// top maxHotEdges). Parts with no deliver spans — unsampled runs, or spans
// from a different job — are left untouched. Safe to call with an empty or
// traceless span slice; it is then a no-op.
func AttachLineage(rep *Report, spans []trace.Span) {
	if rep == nil || len(rep.Stragglers) == 0 {
		return
	}
	// Resolve producing spans by span ID, exactly like trace.BuildChain.
	producers := make(map[uint64]*trace.Span)
	for i := range spans {
		switch spans[i].Kind {
		case trace.KindJobStart, trace.KindLoad, trace.KindPartCompute:
			if spans[i].Span != 0 {
				producers[spans[i].Span] = &spans[i]
			}
		}
	}
	if len(producers) == 0 {
		return
	}

	type recvKey struct {
		job  string
		part int
	}
	type edgeKey struct {
		step, part int
	}
	edges := make(map[recvKey]map[edgeKey]int64)
	for i := range spans {
		d := &spans[i]
		if d.Kind != trace.KindDeliver {
			continue
		}
		from, ok := producers[d.Parent]
		if !ok {
			continue
		}
		rk := recvKey{d.Job, d.Part}
		if edges[rk] == nil {
			edges[rk] = make(map[edgeKey]int64)
		}
		fromStep := from.Step
		fromPart := from.Part
		if from.Kind != trace.KindPartCompute {
			// Loader (and job-start) provenance: step 0, part -1.
			fromStep, fromPart = 0, -1
		}
		edges[rk][edgeKey{fromStep, fromPart}] += d.N
	}

	for i := range rep.Stragglers {
		r := &rep.Stragglers[i]
		byEdge := edges[recvKey{r.Job, r.Part}]
		if len(byEdge) == 0 {
			continue
		}
		hot := make([]HotEdge, 0, len(byEdge))
		for k, n := range byEdge {
			hot = append(hot, HotEdge{FromStep: k.step, FromPart: k.part, Msgs: n})
		}
		sort.Slice(hot, func(a, b int) bool {
			if hot[a].Msgs != hot[b].Msgs {
				return hot[a].Msgs > hot[b].Msgs
			}
			if hot[a].FromStep != hot[b].FromStep {
				return hot[a].FromStep < hot[b].FromStep
			}
			return hot[a].FromPart < hot[b].FromPart
		})
		if len(hot) > maxHotEdges {
			hot = hot[:maxHotEdges]
		}
		r.HotEdges = hot
	}
}

package diskstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ripple/internal/kvstore"
)

// TestPersistenceProperty: a random sequence of puts/deletes/overwrites,
// optionally compacted, then reopened, exposes exactly the final contents.
func TestPersistenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := 30 + rng.Intn(300)
		compact := rng.Intn(2) == 0

		dir := t.TempDir()
		s, err := New(dir, WithParts(1+rng.Intn(3)))
		if err != nil {
			return false
		}
		parts := s.DefaultParts()
		tab, err := s.CreateTable("t")
		if err != nil {
			return false
		}
		expect := map[int]int{}
		for i := 0; i < ops; i++ {
			k := rng.Intn(30)
			if rng.Intn(4) == 0 {
				if err := tab.Delete(k); err != nil {
					return false
				}
				delete(expect, k)
			} else {
				v := rng.Int()
				if err := tab.Put(k, v); err != nil {
					return false
				}
				expect[k] = v
			}
		}
		if compact {
			if err := s.Compact("t"); err != nil {
				return false
			}
		}
		if err := s.Close(); err != nil {
			return false
		}

		s2, err := New(dir, WithParts(parts))
		if err != nil {
			return false
		}
		defer func() { _ = s2.Close() }()
		tab2, err := s2.CreateTable("t", kvstore.WithParts(parts))
		if err != nil {
			return false
		}
		if n, err := tab2.Size(); err != nil || n != len(expect) {
			return false
		}
		for k, v := range expect {
			got, ok, err := tab2.Get(k)
			if err != nil || !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

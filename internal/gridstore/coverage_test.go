package gridstore

import (
	"sync"
	"testing"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/metrics"
)

func TestStoreIdentityAndOptions(t *testing.T) {
	m := &metrics.Collector{}
	s := newStore(t, WithMetrics(m), WithReplicas(3), WithParts(5),
		WithLatency(time.Microsecond))
	if s.Name() != "gridstore" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.DefaultParts() != 5 {
		t.Errorf("DefaultParts = %d", s.DefaultParts())
	}
	if s.Replicas() != 3 {
		t.Errorf("Replicas = %d", s.Replicas())
	}
	tab, _ := s.CreateTable("t")
	_ = tab.Put(1, "x")
	if m.Snapshot().StorePuts != 1 {
		t.Error("metrics not wired")
	}
	if m.Snapshot().MarshalledBytes == 0 {
		t.Error("marshalling not counted")
	}
	if got := s.Tables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Tables = %v", got)
	}
	if !tab.(*table).ordered {
		_ = tab // Ordered not set; just exercise the accessors below.
	}
	if tab.Name() != "t" || tab.Ubiquitous() {
		t.Errorf("table identity: %q %v", tab.Name(), tab.Ubiquitous())
	}
}

func TestWithoutMarshallingGrid(t *testing.T) {
	m := &metrics.Collector{}
	s := newStore(t, WithoutMarshalling(), WithMetrics(m))
	tab, _ := s.CreateTable("t")
	_ = tab.Put(1, []int{1, 2})
	if m.Snapshot().MarshalledBytes != 0 {
		t.Error("marshalled despite WithoutMarshalling")
	}
}

func TestEnumeratePairsGrid(t *testing.T) {
	s := newStore(t, WithParts(3))
	tab, _ := s.CreateTable("t", kvstore.Ordered())
	for i := 0; i < 40; i++ {
		_ = tab.Put(i, i)
	}
	var mu sync.Mutex
	sum := 0
	parts := map[int]bool{}
	_, err := tab.EnumeratePairs(kvstore.PairConsumerFuncs{
		SetupFn: func(p int) error {
			mu.Lock()
			parts[p] = true
			mu.Unlock()
			return nil
		},
		ConsumeFn: func(k, v any) (bool, error) {
			mu.Lock()
			sum += v.(int)
			mu.Unlock()
			return false, nil
		},
		FinishFn:  func(p int) (any, error) { return p, nil },
		CombineFn: func(a, b any) (any, error) { return a, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 39*40/2 {
		t.Errorf("sum = %d", sum)
	}
	if len(parts) != 3 {
		t.Errorf("setup saw %d parts", len(parts))
	}
}

func TestOrderedEnumerationGrid(t *testing.T) {
	s := newStore(t, WithParts(2))
	tab, _ := s.CreateTable("t")
	for _, k := range []int{9, 1, 5, 3} {
		_ = tab.Put(k, k)
	}
	for p := 0; p < 2; p++ {
		_, err := s.RunAgent("t", p, func(sv kvstore.ShardView) (any, error) {
			view, _ := sv.View("t")
			prev := -1
			return nil, view.EnumerateOrdered(func(k, _ any) (bool, error) {
				if k.(int) <= prev {
					t.Errorf("out of order: %v after %d", k, prev)
				}
				prev = k.(int)
				return false, nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestUbiquitousViewsGrid(t *testing.T) {
	s := newStore(t)
	u, _ := s.CreateTable("u", kvstore.Ubiquitous())
	_ = u.Put("a", 1)
	_ = u.Put("b", 2)
	if u.PartOf("anything") != 0 {
		t.Error("ubiquitous PartOf != 0")
	}
	// EnumerateParts over a ubiquitous table uses the single-part path.
	res, err := u.EnumerateParts(kvstore.PartConsumerFuncs{
		ProcessFn: func(sv kvstore.ShardView) (any, error) {
			if sv.Part() != 0 {
				t.Errorf("part = %d", sv.Part())
			}
			view, err := sv.View("u")
			if err != nil {
				return nil, err
			}
			if view.Table() != "u" || view.Part() != 0 {
				t.Errorf("view identity %s/%d", view.Table(), view.Part())
			}
			n, _ := view.Len()
			// Exercise the ubiquitous part view mutations too.
			if err := view.Put("c", 3); err != nil {
				return nil, err
			}
			if err := view.Delete("a"); err != nil {
				return nil, err
			}
			order := []any{}
			if err := view.Enumerate(func(k, _ any) (bool, error) {
				order = append(order, k)
				return false, nil
			}); err != nil {
				return nil, err
			}
			if len(order) != 2 {
				t.Errorf("post-mutation enumeration = %v", order)
			}
			return n, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res != 2 {
		t.Errorf("initial Len = %v", res)
	}
	// EnumeratePairs on a ubiquitous table with early stop.
	seen := 0
	if _, err := u.EnumeratePairs(kvstore.PairConsumerFuncs{
		ConsumeFn: func(_, _ any) (bool, error) { seen++; return true, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("early stop saw %d", seen)
	}
	// Out-of-scope view from a ubiquitous agent is rejected.
	if _, err := u.EnumerateParts(kvstore.PartConsumerFuncs{
		ProcessFn: func(sv kvstore.ShardView) (any, error) {
			_, err := sv.View("something-else")
			return nil, err
		},
	}); err == nil {
		t.Error("cross-table view from ubiquitous agent allowed")
	}
}

func TestDeleteReplicatedGrid(t *testing.T) {
	s := newStore(t, WithReplicas(2), WithParts(1))
	tab, _ := s.CreateTable("t")
	_ = tab.Put("k", 1)
	_ = tab.Delete("k")
	if err := s.FailPrimary("t", 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tab.Get("k"); ok {
		t.Error("delete not replicated: key resurrected after failover")
	}
}

func TestAgentOnUbiquitousRejected(t *testing.T) {
	s := newStore(t)
	_, _ = s.CreateTable("u", kvstore.Ubiquitous())
	if _, err := s.RunAgent("u", 0, func(kvstore.ShardView) (any, error) { return nil, nil }); err == nil {
		t.Error("RunAgent on ubiquitous table allowed")
	}
	if _, err := s.RunTransaction("u", 0, func(kvstore.ShardView) (any, error) { return nil, nil }); err == nil {
		t.Error("RunTransaction on ubiquitous table allowed")
	}
	if err := s.FailPrimary("u", 0); err == nil {
		t.Error("FailPrimary on ubiquitous table allowed")
	}
}

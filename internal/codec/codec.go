// Package codec provides the serialization, deep-copy, and key-hashing
// machinery shared by every Ripple store implementation.
//
// Ripple's data model follows the paper's Java heritage: keys and values are
// general objects ("a key and its associated value are general objects",
// §III-A). Stores that emulate distributed partitions marshal values when
// they cross a partition boundary and pass references locally; this package
// supplies that marshalling via encoding/gob, together with the default key
// hash that assigns keys to parts.
package codec

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
	"sync"
)

// registry guards gob type registration, which panics on double-register.
var registry sync.Map // map[string]struct{}

func init() {
	// Composite built-ins commonly used as Ripple keys and values. Scalar
	// types (int, string, float64, …) have built-in gob support already.
	Register([2]int{})
	Register([3]int{})
	Register([]int{})
	Register([]int32{})
	Register([]float64{})
	Register([]string{})
	Register([]any{})
	Register(map[string]any{})
}

// Register makes a concrete type known to the codec so values of that type
// can cross partition boundaries. It is safe to call repeatedly and from
// multiple goroutines; duplicate registrations are ignored.
func Register(v any) {
	name := fmt.Sprintf("%T", v)
	if _, loaded := registry.LoadOrStore(name, struct{}{}); loaded {
		return
	}
	gob.Register(v)
}

// Encode marshals v into a fresh byte slice using the tagged wire format
// (see wire.go). Types without a fast path or registered FastCodec travel
// as an embedded gob stream, which is why Register is still required for
// arbitrary user types.
func Encode(v any) ([]byte, error) {
	e := getEncoder()
	defer putEncoder(e)
	if err := e.encodeAny(v); err != nil {
		return nil, err
	}
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out, nil
}

// Decode unmarshals a byte slice produced by Encode. Trailing bytes after
// the value are an error: a frame is exactly one value.
func Decode(data []byte) (any, error) {
	d := Decoder{data: data}
	v, err := d.decodeAny()
	if err != nil {
		return nil, err
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errMalformed, len(data)-d.pos)
	}
	return v, nil
}

// wrapper lets gob carry the dynamic type of an arbitrary value on the
// fallback path.
type wrapper struct {
	V any
}

// Encoded wraps a value that has already been marshalled, so one encode can
// be shared between the profiler's size measurement and a store's boundary
// marshal. Stores detect it and perform only the decode half of the round
// trip; Encoder.Any splices the bytes verbatim when one is nested in a
// larger value.
type Encoded struct {
	data []byte
}

// PreEncode marshals v once and returns the reusable encoding.
func PreEncode(v any) (Encoded, error) {
	data, err := Encode(v)
	if err != nil {
		return Encoded{}, err
	}
	return Encoded{data: data}, nil
}

// Bytes returns the underlying encoding. Callers must not mutate it.
func (e Encoded) Bytes() []byte { return e.data }

// Size reports the encoded size in bytes.
func (e Encoded) Size() int { return len(e.data) }

// Decode reconstructs the wrapped value.
func (e Encoded) Decode() (any, error) { return Decode(e.data) }

// RoundTrip passes v through an encode/decode cycle using a pooled buffer,
// returning the reconstructed value and its encoded size. Stores use it to
// emulate a partition-boundary crossing without retaining the intermediate
// bytes. An Encoded value skips straight to the decode half.
func RoundTrip(v any) (any, int, error) {
	if enc, ok := v.(Encoded); ok {
		out, err := enc.Decode()
		return out, len(enc.data), err
	}
	e := getEncoder()
	defer putEncoder(e)
	if err := e.encodeAny(v); err != nil {
		return nil, 0, err
	}
	d := Decoder{data: e.buf}
	out, err := d.decodeAny()
	if err != nil {
		return nil, 0, err
	}
	if d.pos != len(e.buf) {
		return nil, 0, errMalformed
	}
	return out, len(e.buf), nil
}

// DeepCopy produces a value that shares no mutable memory with v. The common
// wire types are cloned structurally without serializing; registered
// FastCodecs supply their own Copy; everything else round-trips through the
// codec. Stores use it to emulate the isolation a real distributed store
// provides: a caller mutating a returned value must not corrupt the stored
// copy.
func DeepCopy(v any) (any, error) {
	switch x := v.(type) {
	case nil, bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, string, [2]int, [3]int:
		// Immutable through an interface value (arrays are copied when
		// boxed), so sharing is safe.
		return v, nil
	case []byte:
		out := make([]byte, len(x))
		copy(out, x)
		return out, nil
	case []int:
		out := make([]int, len(x))
		copy(out, x)
		return out, nil
	case []int32:
		out := make([]int32, len(x))
		copy(out, x)
		return out, nil
	case []float64:
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	case []string:
		out := make([]string, len(x))
		copy(out, x)
		return out, nil
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, item := range x {
			c, err := DeepCopy(item)
			if err != nil {
				return nil, err
			}
			out[k] = c
		}
		return out, nil
	case []any:
		out := make([]any, len(x))
		for i, item := range x {
			c, err := DeepCopy(item)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	case Encoded:
		return x.Decode()
	default:
		if ent := lookupExt(reflect.TypeOf(v)); ent != nil && ent.fc.Copy != nil {
			return ent.fc.Copy(v)
		}
		out, _, err := RoundTrip(v)
		return out, err
	}
}

// EncodedSize reports the marshalled size of v in bytes, or 0 if v cannot be
// encoded. It exists for metrics, not correctness. Fast-path values go
// through a pooled buffer (returned afterwards); gob-fallback values stream
// through a counting writer so nothing is buffered at all.
func EncodedSize(v any) int {
	if enc, ok := v.(Encoded); ok {
		return len(enc.data)
	}
	if !hasFastPath(v) {
		var cw countingWriter
		if err := gob.NewEncoder(&cw).Encode(&wrapper{V: v}); err != nil {
			return 0
		}
		return 1 + uvarintLen(uint64(cw.n)) + cw.n
	}
	e := getEncoder()
	defer putEncoder(e)
	if err := e.encodeAny(v); err != nil {
		return 0
	}
	return len(e.buf)
}

// hasFastPath reports whether v encodes without the top-level gob fallback.
func hasFastPath(v any) bool {
	switch v.(type) {
	case nil, bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, string, []byte, []int, []int32, []float64, []string,
		[2]int, [3]int, map[string]any, []any, Encoded:
		return true
	}
	return lookupExt(reflect.TypeOf(v)) != nil
}

// Hasher maps a key to a non-negative hash. Table clients control the
// assignment of keys to parts by controlling the hash values of their keys
// (§III-A), either by implementing KeyHash on the key type or by installing a
// custom Hasher on the table.
type Hasher interface {
	Hash(key any) uint64
}

// KeyHasher is implemented by key types that want to control their placement.
type KeyHasher interface {
	KeyHash() uint64
}

// DefaultHasher hashes the common key types directly and falls back to
// hashing the gob encoding for everything else.
type DefaultHasher struct{}

var _ Hasher = DefaultHasher{}

// Hash implements Hasher.
func (DefaultHasher) Hash(key any) uint64 {
	switch k := key.(type) {
	case KeyHasher:
		return k.KeyHash()
	case int:
		return hashUint64(uint64(k))
	case int8:
		return hashUint64(uint64(k))
	case int16:
		return hashUint64(uint64(k))
	case int32:
		return hashUint64(uint64(k))
	case int64:
		return hashUint64(uint64(k))
	case uint:
		return hashUint64(uint64(k))
	case uint8:
		return hashUint64(uint64(k))
	case uint16:
		return hashUint64(uint64(k))
	case uint32:
		return hashUint64(uint64(k))
	case uint64:
		return hashUint64(k)
	case float64:
		return hashUint64(math.Float64bits(k))
	case string:
		return hashString(k)
	case [2]int:
		return hashUint64(uint64(k[0])*0x9e3779b97f4a7c15 + uint64(k[1]))
	case [3]int:
		h := uint64(k[0])*0x9e3779b97f4a7c15 + uint64(k[1])
		return hashUint64(h*0x9e3779b97f4a7c15 + uint64(k[2]))
	default:
		data, err := Encode(key)
		if err != nil {
			// An unhashable, unencodable key degrades to a single part
			// rather than failing the whole job; placement is a
			// performance concern, not a correctness one.
			return 0
		}
		h := fnv.New64a()
		_, _ = h.Write(data)
		return h.Sum64()
	}
}

func hashUint64(x uint64) uint64 {
	// SplitMix64 finalizer: cheap, well distributed, deterministic across
	// runs (unlike Go's map hash).
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// PartOf maps a key to one of n parts using h. n must be positive.
func PartOf(h Hasher, key any, n int) int {
	if n <= 0 {
		return 0
	}
	return int(h.Hash(key) % uint64(n))
}

// OrderedKey is implemented by key types that define their own sort order for
// needs-order jobs. Keys without it are ordered by CompareKeys' built-in
// rules.
type OrderedKey interface {
	CompareKey(other any) int
}

// CompareKeys imposes a total order over keys of the common built-in types
// (and OrderedKey implementors). Numeric types order numerically, strings
// lexicographically, and mixed/unknown types order by their encoded bytes so
// the order is still deterministic.
func CompareKeys(a, b any) int {
	if oa, ok := a.(OrderedKey); ok {
		return oa.CompareKey(b)
	}
	if na, oka := numericKey(a); oka {
		if nb, okb := numericKey(b); okb {
			switch {
			case na < nb:
				return -1
			case na > nb:
				return 1
			default:
				return 0
			}
		}
	}
	if sa, ok := a.(string); ok {
		if sb, ok := b.(string); ok {
			switch {
			case sa < sb:
				return -1
			case sa > sb:
				return 1
			default:
				return 0
			}
		}
	}
	if pa, ok := a.([2]int); ok {
		if pb, ok := b.([2]int); ok {
			if pa[0] != pb[0] {
				if pa[0] < pb[0] {
					return -1
				}
				return 1
			}
			if pa[1] != pb[1] {
				if pa[1] < pb[1] {
					return -1
				}
				return 1
			}
			return 0
		}
	}
	return bytes.Compare(encodeForCompare(a), encodeForCompare(b))
}

func numericKey(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int8:
		return float64(n), true
	case int16:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	case uint8:
		return float64(n), true
	case uint16:
		return float64(n), true
	case uint32:
		return float64(n), true
	case uint64:
		return float64(n), true
	case float32:
		return float64(n), true
	case float64:
		return n, true
	default:
		return 0, false
	}
}

func encodeForCompare(v any) []byte {
	data, err := Encode(v)
	if err != nil {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], DefaultHasher{}.Hash(v))
		return buf[:]
	}
	return data
}

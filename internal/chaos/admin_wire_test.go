package chaos

import (
	"net"
	"testing"
	"time"

	"ripple/internal/netstore"
)

// TestAdminOpsUnderWireFaults checks that the telemetry ops inherit the
// transport's fault tolerance: with frame drops, loss, duplication, and
// delay injected on the wire, stats/health/trace-dump polls still succeed
// through the pinned retry loop.
func TestAdminOpsUnderWireFaults(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := netstore.NewServer()
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}

	inj := NewInjector(Schedule{
		Seed: 5, NetDropRate: 0.1, NetLossRate: 0.05, NetDupRate: 0.1,
		NetDelay: 100 * time.Microsecond, NetDelayRate: 0.2,
	})
	c, err := netstore.Dial(addrs,
		netstore.WithReplicas(2),
		netstore.WithRequestTimeout(150*time.Millisecond),
		netstore.WithRetries(10),
		netstore.WithWireInjector(inj),
	)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = c.Close() }()

	var ok int
	for round := 0; round < 10; round++ {
		for s := 0; s < 2; s++ {
			if _, err := c.ServerStats(s); err != nil {
				t.Errorf("round %d stats %d: %v", round, s, err)
				continue
			}
			if _, err := c.ServerHealth(s); err != nil {
				t.Errorf("round %d health %d: %v", round, s, err)
				continue
			}
			if _, err := c.TraceDump(s, 0); err != nil {
				t.Errorf("round %d trace dump %d: %v", round, s, err)
				continue
			}
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no admin poll survived the chaos")
	}
	// The injector really was in the path: faults on the admin opcodes.
	var faults int
	for _, r := range inj.Records() {
		if r.Kind != "" {
			faults++
		}
	}
	if faults == 0 {
		t.Error("chaos schedule injected nothing — test proved nothing")
	}
}

package netstore

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
)

// fleet spins up n in-process servers on loopback and returns their
// addresses plus a shutdown func.
func fleet(t *testing.T, n int, opts ...ServerOption) ([]string, []*Server, func()) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*Server, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(opts...)
		addrs[i] = ln.Addr().String()
		servers[i] = srv
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = srv.Serve(ln)
		}()
	}
	return addrs, servers, func() {
		for _, s := range servers {
			_ = s.Close()
		}
		wg.Wait()
	}
}

func dialFleet(t *testing.T, addrs []string, opts ...Option) *Client {
	t.Helper()
	c, err := Dial(addrs, opts...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestRoundTripFrame(t *testing.T) {
	f := frame{
		ID: 42, Op: opPut, Code: errCodeTransient, Flag: true, Name: "edges",
		Part: 7, Aux: -9, Key: []byte("k"), Val: []byte("v"),
		Pairs: []wirePair{{K: []byte("a"), V: []byte("1")}, {K: []byte("b"), V: nil}},
		Trace: 99, Span: 100,
	}
	enc, err := codec.Encode(f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	v, err := codec.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	g := v.(frame)
	if g.ID != f.ID || g.Op != f.Op || g.Code != f.Code || g.Flag != f.Flag ||
		g.Name != f.Name || g.Part != f.Part || g.Aux != f.Aux ||
		string(g.Key) != "k" || string(g.Val) != "v" || len(g.Pairs) != 2 ||
		string(g.Pairs[0].K) != "a" || string(g.Pairs[0].V) != "1" ||
		string(g.Pairs[1].K) != "b" || g.Trace != 99 || g.Span != 100 {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, f)
	}
}

func TestReplicaSetDeterministicAndSpread(t *testing.T) {
	// Same inputs, same answer.
	for part := 0; part < 32; part++ {
		a := replicaSet(part, 5, 3)
		b := replicaSet(part, 5, 3)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("part %d: nondeterministic placement %v vs %v", part, a, b)
		}
		seen := map[int]bool{}
		for _, s := range a {
			if s < 0 || s >= 5 || seen[s] {
				t.Fatalf("part %d: bad replica set %v", part, a)
			}
			seen[s] = true
		}
	}
	// Primaries spread across servers.
	primaries := map[int]int{}
	for part := 0; part < 64; part++ {
		primaries[replicaSet(part, 4, 2)[0]]++
	}
	if len(primaries) < 3 {
		t.Errorf("primaries badly skewed: %v", primaries)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	addrs, _, stop := fleet(t, 3)
	defer stop()
	c := dialFleet(t, addrs, WithReplicas(2), WithDefaultParts(4))

	tbl, err := c.CreateTable("ranks", kvstore.WithParts(4))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := tbl.Put(fmt.Sprintf("v%d", i), float64(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	v, ok, err := tbl.Get("v7")
	if err != nil || !ok || v.(float64) != 7 {
		t.Fatalf("get v7 = %v %v %v", v, ok, err)
	}
	if _, ok, _ := tbl.Get("nope"); ok {
		t.Fatal("phantom key")
	}
	if n, err := tbl.Size(); err != nil || n != 40 {
		t.Fatalf("size = %d %v", n, err)
	}
	if err := tbl.Delete("v7"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok, _ := tbl.Get("v7"); ok {
		t.Fatal("deleted key still present")
	}

	// Errors keep their canonical identity across the wire.
	if _, err := c.CreateTable("ranks"); !errors.Is(err, kvstore.ErrTableExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if lt, ok := c.LookupTable("ranks"); !ok || lt.Parts() != 4 {
		t.Errorf("lookup failed")
	}
	if _, ok := c.LookupTable("ghost"); ok {
		t.Error("phantom table")
	}
}

func TestAgentsAndEnumeration(t *testing.T) {
	addrs, _, stop := fleet(t, 3)
	defer stop()
	c := dialFleet(t, addrs, WithReplicas(2))

	tbl, err := c.CreateTable("g", kvstore.WithParts(3))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	other, err := c.CreateTable("h", kvstore.ConsistentWith("g"))
	if err != nil {
		t.Fatalf("consistent create: %v", err)
	}
	if other.Parts() != 3 {
		t.Fatalf("consistent parts = %d", other.Parts())
	}
	for i := 0; i < 30; i++ {
		if err := tbl.Put(i, i*i); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	// Agent: sees exactly its part, co-placed view works, writes land.
	for p := 0; p < 3; p++ {
		res, err := c.RunAgent("g", p, func(sv kvstore.ShardView) (any, error) {
			gv, err := sv.View("g")
			if err != nil {
				return nil, err
			}
			hv, err := sv.View("h")
			if err != nil {
				return nil, err
			}
			n := 0
			if err := gv.Enumerate(func(k, v any) (bool, error) {
				if tbl.PartOf(k) != sv.Part() {
					return true, fmt.Errorf("key %v in wrong part", k)
				}
				n++
				return false, hv.Put(k, v)
			}); err != nil {
				return nil, err
			}
			return n, nil
		})
		if err != nil {
			t.Fatalf("agent part %d: %v", p, err)
		}
		if res.(int) == 0 && p == 0 {
			t.Log("part 0 empty (legal, hash-dependent)")
		}
	}
	if n, err := other.Size(); err != nil || n != 30 {
		t.Fatalf("copied size = %d %v", n, err)
	}

	// EnumerateParts combines in part order; totals must cover everything.
	total, err := tbl.EnumerateParts(countingConsumer{})
	if err != nil {
		t.Fatalf("enumerate parts: %v", err)
	}
	if total.(int) != 30 {
		t.Fatalf("enumerate total = %v", total)
	}

	// Ordered enumeration is sorted.
	var keys []int
	_, err = c.RunAgent("g", 1, func(sv kvstore.ShardView) (any, error) {
		gv, _ := sv.View("g")
		return nil, gv.EnumerateOrdered(func(k, v any) (bool, error) {
			keys = append(keys, k.(int))
			return false, nil
		})
	})
	if err != nil {
		t.Fatalf("ordered: %v", err)
	}
	if !sort.IntsAreSorted(keys) {
		t.Fatalf("EnumerateOrdered out of order: %v", keys)
	}
}

type countingConsumer struct{}

func (countingConsumer) ProcessPart(sv kvstore.ShardView) (any, error) {
	gv, err := sv.View("g")
	if err != nil {
		return nil, err
	}
	n, err := gv.Len()
	return n, err
}
func (countingConsumer) Combine(a, b any) (any, error) { return a.(int) + b.(int), nil }

func TestUbiquitousTable(t *testing.T) {
	addrs, _, stop := fleet(t, 3)
	defer stop()
	c := dialFleet(t, addrs)

	u, err := c.CreateTable("cfg", kvstore.Ubiquitous())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if !u.Ubiquitous() || u.Parts() != 1 {
		t.Fatalf("ubiquitous shape wrong")
	}
	if err := u.Put("alpha", 0.85); err != nil {
		t.Fatalf("put: %v", err)
	}
	anchor, _ := c.CreateTable("data", kvstore.WithParts(4))
	_ = anchor
	res, err := c.RunAgent("data", 2, func(sv kvstore.ShardView) (any, error) {
		uv, err := sv.View("cfg")
		if err != nil {
			return nil, err
		}
		if uv.Part() != 2 {
			return nil, fmt.Errorf("ubiq view part = %d", uv.Part())
		}
		v, ok, err := uv.Get("alpha")
		if err != nil || !ok {
			return nil, fmt.Errorf("ubiq get: %v %v", ok, err)
		}
		return v, nil
	})
	if err != nil {
		t.Fatalf("agent: %v", err)
	}
	if res.(float64) != 0.85 {
		t.Fatalf("ubiq value = %v", res)
	}
}

func TestMQRoundTrip(t *testing.T) {
	addrs, _, stop := fleet(t, 3)
	defer stop()
	c := dialFleet(t, addrs, WithReplicas(2))

	tbl, err := c.CreateTable("t", kvstore.WithParts(3))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	q := c.Queuing()
	set, err := q.CreateQueueSet("msgs", tbl)
	if err != nil {
		t.Fatalf("create set: %v", err)
	}
	if set.Queues() != 3 || set.Name() != "msgs" {
		t.Fatalf("set shape wrong: %d %q", set.Queues(), set.Name())
	}
	for i := 0; i < 9; i++ {
		if err := set.Put(i%3, fmt.Sprintf("m%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	r, err := set.ReaderFor(1)
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	// FIFO per queue: queue 1 got m1, m4, m7 in order.
	for _, want := range []string{"m1", "m4", "m7"} {
		msg, ok, err := r.Read(time.Second)
		if err != nil || !ok {
			t.Fatalf("read: %v %v", ok, err)
		}
		if msg.(string) != want {
			t.Fatalf("got %v want %s", msg, want)
		}
	}
	if msg, ok, err := r.TryRead(); ok || err != nil {
		t.Fatalf("drained queue returned %v %v %v", msg, ok, err)
	}
	if err := set.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := set.Put(0, "late"); !errors.Is(err, mq.ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
}

func TestMQRunDrainsAllQueues(t *testing.T) {
	addrs, _, stop := fleet(t, 2)
	defer stop()
	c := dialFleet(t, addrs)

	tbl, _ := c.CreateTable("t", kvstore.WithParts(4))
	set, err := c.Queuing().CreateQueueSet("work", tbl)
	if err != nil {
		t.Fatalf("create set: %v", err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := set.Put(i%4, i); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	var mu sync.Mutex
	got := map[int]bool{}
	done := make(chan error, 1)
	go func() {
		done <- set.Run(func(r mq.Reader) error {
			for {
				msg, ok, err := r.Read(200 * time.Millisecond)
				if errors.Is(err, mq.ErrClosed) {
					return nil
				}
				if err != nil {
					return err
				}
				if !ok {
					return nil // idle long enough; queue is drained
				}
				mu.Lock()
				got[msg.(int)] = true
				mu.Unlock()
			}
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not finish")
	}
	if len(got) != n {
		t.Fatalf("drained %d of %d messages", len(got), n)
	}
}

func TestMetricsSeeRPCs(t *testing.T) {
	m := &metrics.Collector{}
	addrs, _, stop := fleet(t, 2)
	defer stop()
	c := dialFleet(t, addrs, WithMetrics(m))

	tbl, _ := c.CreateTable("t", kvstore.WithParts(2))
	_ = tbl.Put("k", "v")
	snap := m.Snapshot()
	if snap.RPCCalls == 0 {
		t.Error("no RPC calls counted")
	}
	eps := m.EndpointSnapshots()
	if eps["put"].Count == 0 {
		t.Errorf("no put endpoint latency recorded: %v", eps)
	}
}

package memstore

import (
	"fmt"
	"sync"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
)

// table is a memstore table handle.
type table struct {
	store      *Store
	name       string
	group      *group
	ubiquitous bool
	ordered    bool
	ubiq       *ubiqData // non-nil iff ubiquitous
}

var _ kvstore.Table = (*table)(nil)

// ubiqData backs a ubiquitous table: a single logical part, readable locally
// from everywhere. In-process the replica set collapses to one map guarded by
// an RWMutex; reads do not marshal (the contract is that ubiquitous contents
// are immutable broadcast data, quick to read).
type ubiqData struct {
	mu    sync.RWMutex
	items map[any]any
}

// Name implements kvstore.Table.
func (t *table) Name() string { return t.name }

// Parts implements kvstore.Table.
func (t *table) Parts() int {
	if t.ubiquitous {
		return 1
	}
	return t.group.parts
}

// Ubiquitous implements kvstore.Table.
func (t *table) Ubiquitous() bool { return t.ubiquitous }

// PartOf implements kvstore.Table.
func (t *table) PartOf(key any) int {
	if t.ubiquitous {
		return 0
	}
	return codec.PartOf(t.group.hasher, key, t.group.parts)
}

// Get implements kvstore.Table. Called from outside any part, it behaves as a
// remote client: the result crosses a partition boundary (marshalled).
func (t *table) Get(key any) (any, bool, error) {
	t.store.metrics.AddStoreGets(1)
	if t.ubiquitous {
		t.ubiq.mu.RLock()
		v, ok := t.ubiq.items[key]
		t.ubiq.mu.RUnlock()
		return v, ok, nil
	}
	sh := t.group.shards[t.PartOf(key)]
	var (
		val any
		ok  bool
		err error
	)
	derr := sh.dispatch(sh.ops, func() {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		pd := sh.data[t.name]
		if pd == nil {
			err = fmt.Errorf("%w: %q", kvstore.ErrNoTable, t.name)
			return
		}
		var v any
		v, ok = pd.items[key]
		if ok {
			val, err = t.store.roundTrip(v)
		}
	})
	if derr != nil {
		return nil, false, derr
	}
	return val, ok, err
}

// Put implements kvstore.Table. The value crosses a partition boundary.
func (t *table) Put(key, value any) error {
	t.store.metrics.AddStorePuts(1)
	if t.ubiquitous {
		v, err := t.store.roundTrip(value)
		if err != nil {
			return err
		}
		t.ubiq.mu.Lock()
		t.ubiq.items[key] = v
		t.ubiq.mu.Unlock()
		return nil
	}
	sh := t.group.shards[t.PartOf(key)]
	var err error
	derr := sh.dispatch(sh.ops, func() {
		var v any
		v, err = t.store.roundTrip(value)
		if err != nil {
			return
		}
		sh.mu.Lock()
		defer sh.mu.Unlock()
		pd := sh.data[t.name]
		if pd == nil {
			err = fmt.Errorf("%w: %q", kvstore.ErrNoTable, t.name)
			return
		}
		pd.items[key] = v
	})
	if derr != nil {
		return derr
	}
	return err
}

// Delete implements kvstore.Table.
func (t *table) Delete(key any) error {
	t.store.metrics.AddStoreDeletes(1)
	if t.ubiquitous {
		t.ubiq.mu.Lock()
		delete(t.ubiq.items, key)
		t.ubiq.mu.Unlock()
		return nil
	}
	sh := t.group.shards[t.PartOf(key)]
	var err error
	derr := sh.dispatch(sh.ops, func() {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		pd := sh.data[t.name]
		if pd == nil {
			err = fmt.Errorf("%w: %q", kvstore.ErrNoTable, t.name)
			return
		}
		delete(pd.items, key)
	})
	if derr != nil {
		return derr
	}
	return err
}

// Size implements kvstore.Table.
func (t *table) Size() (int, error) {
	if t.ubiquitous {
		t.ubiq.mu.RLock()
		defer t.ubiq.mu.RUnlock()
		return len(t.ubiq.items), nil
	}
	total := 0
	for _, sh := range t.group.shards {
		sh.mu.Lock()
		if pd := sh.data[t.name]; pd != nil {
			total += len(pd.items)
		}
		sh.mu.Unlock()
	}
	return total, nil
}

// EnumerateParts implements kvstore.Table: ProcessPart runs on every part's
// long-request goroutine in parallel; results are folded in part order so the
// combined result is deterministic.
func (t *table) EnumerateParts(pc kvstore.PartConsumer) (any, error) {
	if t.ubiquitous {
		sv := &ubiqShardView{store: t.store, table: t}
		return pc.ProcessPart(sv)
	}
	results := make([]any, t.group.parts)
	errs := make([]error, t.group.parts)
	var wg sync.WaitGroup
	for p := 0; p < t.group.parts; p++ {
		sh := t.group.shards[p]
		wg.Add(1)
		go func(p int, sh *shard) {
			defer wg.Done()
			derr := sh.dispatch(sh.long, func() {
				sv := &shardView{store: t.store, group: t.group, shard: sh}
				results[p], errs[p] = pc.ProcessPart(sv)
			})
			if derr != nil {
				errs[p] = derr
			}
		}(p, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	combined := results[0]
	var err error
	for p := 1; p < len(results); p++ {
		combined, err = pc.Combine(combined, results[p])
		if err != nil {
			return nil, err
		}
	}
	return combined, nil
}

// EnumeratePairs implements kvstore.Table.
func (t *table) EnumeratePairs(pc kvstore.PairConsumer) (any, error) {
	if t.ubiquitous {
		if err := pc.SetupPart(0); err != nil {
			return nil, err
		}
		t.ubiq.mu.RLock()
		keys := sortedKeys(t.ubiq.items)
		items := make(map[any]any, len(t.ubiq.items))
		for k, v := range t.ubiq.items {
			items[k] = v
		}
		t.ubiq.mu.RUnlock()
		for _, k := range keys {
			stop, err := pc.ConsumePair(k, items[k])
			if err != nil {
				return nil, err
			}
			if stop {
				break
			}
		}
		return pc.FinishPart(0)
	}
	return t.EnumerateParts(pairConsumerAdapter{t: t, pc: pc})
}

// pairConsumerAdapter runs a PairConsumer over one part as a PartConsumer.
type pairConsumerAdapter struct {
	t  *table
	pc kvstore.PairConsumer
}

var _ kvstore.PartConsumer = pairConsumerAdapter{}

func (a pairConsumerAdapter) ProcessPart(sv kvstore.ShardView) (any, error) {
	view, err := sv.View(a.t.name)
	if err != nil {
		return nil, err
	}
	if err := a.pc.SetupPart(sv.Part()); err != nil {
		return nil, err
	}
	enumerate := view.Enumerate
	if a.t.ordered {
		enumerate = view.EnumerateOrdered
	}
	if err := enumerate(func(k, v any) (bool, error) {
		return a.pc.ConsumePair(k, v)
	}); err != nil {
		return nil, err
	}
	return a.pc.FinishPart(sv.Part())
}

func (a pairConsumerAdapter) Combine(x, y any) (any, error) { return a.pc.Combine(x, y) }

// shardView is the agent's window onto one shard's co-placed parts.
type shardView struct {
	store *Store
	group *group
	shard *shard
}

var _ kvstore.ShardView = (*shardView)(nil)

// Part implements kvstore.ShardView.
func (sv *shardView) Part() int { return sv.shard.part }

// View implements kvstore.ShardView.
func (sv *shardView) View(tableName string) (kvstore.PartView, error) {
	sv.store.mu.Lock()
	t, ok := sv.store.tables[tableName]
	sv.store.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	if t.ubiquitous {
		return &ubiqPartView{table: t, part: sv.shard.part}, nil
	}
	if !coPlaced(t.group, sv.group) {
		return nil, fmt.Errorf("%w: %q is in group %s, agent runs in group %s",
			kvstore.ErrNotCoPlaced, tableName, t.group.id, sv.group.id)
	}
	sh := t.group.shards[sv.shard.part]
	return &partView{store: sv.store, table: t, shard: sh}, nil
}

// coPlaced reports whether two groups share a key→part mapping. The same
// group trivially does; distinct groups do when they have the same part count
// and both use the default hasher.
func coPlaced(a, b *group) bool {
	if a == b {
		return true
	}
	if a.parts != b.parts {
		return false
	}
	_, da := a.hasher.(codec.DefaultHasher)
	_, db := b.hasher.(codec.DefaultHasher)
	return da && db
}

// partView gives local (unmarshalled) access to one part of one table.
type partView struct {
	store *Store
	table *table
	shard *shard
}

var _ kvstore.PartView = (*partView)(nil)

// Table implements kvstore.PartView.
func (pv *partView) Table() string { return pv.table.name }

// Part implements kvstore.PartView.
func (pv *partView) Part() int { return pv.shard.part }

func (pv *partView) data() (*partData, error) {
	pd := pv.shard.data[pv.table.name]
	if pd == nil {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, pv.table.name)
	}
	return pd, nil
}

// Get implements kvstore.PartView: local access, no marshalling.
func (pv *partView) Get(key any) (any, bool, error) {
	pv.store.metrics.AddStoreGets(1)
	pv.shard.mu.Lock()
	defer pv.shard.mu.Unlock()
	pd, err := pv.data()
	if err != nil {
		return nil, false, err
	}
	v, ok := pd.items[key]
	return v, ok, nil
}

// Put implements kvstore.PartView.
func (pv *partView) Put(key, value any) error {
	pv.store.metrics.AddStorePuts(1)
	pv.shard.mu.Lock()
	defer pv.shard.mu.Unlock()
	pd, err := pv.data()
	if err != nil {
		return err
	}
	pd.items[key] = value
	return nil
}

// Delete implements kvstore.PartView.
func (pv *partView) Delete(key any) error {
	pv.store.metrics.AddStoreDeletes(1)
	pv.shard.mu.Lock()
	defer pv.shard.mu.Unlock()
	pd, err := pv.data()
	if err != nil {
		return err
	}
	delete(pd.items, key)
	return nil
}

// Len implements kvstore.PartView.
func (pv *partView) Len() (int, error) {
	pv.shard.mu.Lock()
	defer pv.shard.mu.Unlock()
	pd, err := pv.data()
	if err != nil {
		return 0, err
	}
	return len(pd.items), nil
}

// Enumerate implements kvstore.PartView. The snapshot of keys is taken under
// the lock, then pairs are visited without it so the callback may freely
// Put/Delete on this same view.
func (pv *partView) Enumerate(fn kvstore.PairFunc) error {
	pv.shard.mu.Lock()
	pd, err := pv.data()
	if err != nil {
		pv.shard.mu.Unlock()
		return err
	}
	keys := make([]any, 0, len(pd.items))
	for k := range pd.items {
		keys = append(keys, k)
	}
	pv.shard.mu.Unlock()
	return pv.visit(keys, fn)
}

// EnumerateOrdered implements kvstore.PartView.
func (pv *partView) EnumerateOrdered(fn kvstore.PairFunc) error {
	pv.shard.mu.Lock()
	pd, err := pv.data()
	if err != nil {
		pv.shard.mu.Unlock()
		return err
	}
	keys := sortedKeys(pd.items)
	pv.shard.mu.Unlock()
	return pv.visit(keys, fn)
}

func (pv *partView) visit(keys []any, fn kvstore.PairFunc) error {
	for _, k := range keys {
		pv.shard.mu.Lock()
		pd, err := pv.data()
		if err != nil {
			pv.shard.mu.Unlock()
			return err
		}
		v, ok := pd.items[k]
		pv.shard.mu.Unlock()
		if !ok {
			continue // deleted since the snapshot
		}
		stop, err := fn(k, v)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// ubiqShardView adapts a ubiquitous table for EnumerateParts.
type ubiqShardView struct {
	store *Store
	table *table
}

var _ kvstore.ShardView = (*ubiqShardView)(nil)

func (sv *ubiqShardView) Part() int { return 0 }

func (sv *ubiqShardView) View(tableName string) (kvstore.PartView, error) {
	if tableName != sv.table.name {
		return nil, fmt.Errorf("%w: %q from ubiquitous agent", kvstore.ErrNotCoPlaced, tableName)
	}
	return &ubiqPartView{table: sv.table, part: 0}, nil
}

// ubiqPartView is the local replica view of a ubiquitous table; reads do not
// marshal (contract: quick to read), and writes update the shared replica.
type ubiqPartView struct {
	table *table
	part  int
}

var _ kvstore.PartView = (*ubiqPartView)(nil)

func (uv *ubiqPartView) Table() string { return uv.table.name }
func (uv *ubiqPartView) Part() int     { return uv.part }

func (uv *ubiqPartView) Get(key any) (any, bool, error) {
	uv.table.ubiq.mu.RLock()
	defer uv.table.ubiq.mu.RUnlock()
	v, ok := uv.table.ubiq.items[key]
	return v, ok, nil
}

func (uv *ubiqPartView) Put(key, value any) error {
	uv.table.ubiq.mu.Lock()
	defer uv.table.ubiq.mu.Unlock()
	uv.table.ubiq.items[key] = value
	return nil
}

func (uv *ubiqPartView) Delete(key any) error {
	uv.table.ubiq.mu.Lock()
	defer uv.table.ubiq.mu.Unlock()
	delete(uv.table.ubiq.items, key)
	return nil
}

func (uv *ubiqPartView) Len() (int, error) {
	uv.table.ubiq.mu.RLock()
	defer uv.table.ubiq.mu.RUnlock()
	return len(uv.table.ubiq.items), nil
}

func (uv *ubiqPartView) Enumerate(fn kvstore.PairFunc) error {
	return uv.EnumerateOrdered(fn)
}

func (uv *ubiqPartView) EnumerateOrdered(fn kvstore.PairFunc) error {
	uv.table.ubiq.mu.RLock()
	keys := sortedKeys(uv.table.ubiq.items)
	items := make(map[any]any, len(uv.table.ubiq.items))
	for k, v := range uv.table.ubiq.items {
		items[k] = v
	}
	uv.table.ubiq.mu.RUnlock()
	for _, k := range keys {
		stop, err := fn(k, items[k])
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

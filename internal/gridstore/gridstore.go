// Package gridstore implements an elastic in-memory key/value store in the
// style of IBM WebSphere eXtreme Scale (the store the paper's SUMMA
// evaluation and fault-tolerance outline used, §IV-B, §V-B): data
// partitioning, synchronous replication, the ability to execute mobile code
// adjacent to the data, and an ACID transaction over all the entries in a
// shard of co-placed replicated tables.
//
// The store also provides failure injection (kill a part's primary replica,
// promoting a survivor), which the EBSP engine's fault-tolerance tests drive.
// A transaction in flight when its shard's primary fails is rolled back and
// reported with kvstore.ErrShardFailed, exactly the recovery point the paper
// outlines: "recover from primary shard failure by deleting writes done by
// the failed shard(s) and retry".
package gridstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/metrics"
)

// ErrNoReplica is returned by FailPrimary when no surviving replica exists to
// promote.
var ErrNoReplica = errors.New("gridstore: no surviving replica")

// Option configures a Store.
type Option func(*Store)

// WithParts sets the default part count for new tables (default 10, matching
// the paper's ten data-container processes).
func WithParts(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.defaultParts = n
		}
	}
}

// WithReplicas sets the replication factor (default 1, i.e. no replicas).
func WithReplicas(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.replicas = n
		}
	}
}

// WithMetrics attaches a metrics collector.
func WithMetrics(m *metrics.Collector) Option {
	return func(s *Store) { s.metrics = m }
}

// WithoutMarshalling disables boundary marshalling (ablation only).
func WithoutMarshalling() Option {
	return func(s *Store) { s.marshal = false }
}

// WithLatency adds an emulated network latency to every operation that
// crosses a partition boundary (see memstore.WithLatency).
func WithLatency(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.latency = d
		}
	}
}

// Store is the WXS-like grid store.
type Store struct {
	defaultParts int
	replicas     int
	marshal      bool
	latency      time.Duration
	metrics      *metrics.Collector

	failovers atomic.Int64 // primary promotions performed by FailPrimary

	mu     sync.Mutex
	closed bool
	tables map[string]*table
	order  []string
	nextID int
}

var (
	_ kvstore.Store         = (*Store)(nil)
	_ kvstore.Transactional = (*Store)(nil)
	_ kvstore.Replicated    = (*Store)(nil)
	_ kvstore.Healer        = (*Store)(nil)
	_ kvstore.FailureSensor = (*Store)(nil)
)

// Failovers reports the monotonic count of primary promotions, implementing
// kvstore.FailureSensor.
func (s *Store) Failovers() int64 { return s.failovers.Load() }

// group is a set of consistently partitioned tables sharing shards.
type group struct {
	id     string
	parts  int
	hasher codec.Hasher
	shards []*shard
}

// shard is one replicated partition of a group.
type shard struct {
	part int

	mu       sync.Mutex
	replicas []*replica
	primary  int // index into replicas
	epoch    int // bumped on every failover

	txMu sync.Mutex // serializes transactions on this shard
}

// replica holds one copy of the shard's data across the group's tables.
type replica struct {
	alive bool
	data  map[string]map[any]any // table -> items
}

// table is a gridstore table handle.
type table struct {
	store      *Store
	name       string
	group      *group
	ubiquitous bool
	ordered    bool
	ubiq       map[any]any
	ubiqMu     sync.RWMutex
}

// New creates a Store.
func New(opts ...Option) *Store {
	s := &Store{
		defaultParts: 10,
		replicas:     1,
		marshal:      true,
		tables:       make(map[string]*table),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "gridstore" }

// DefaultParts implements kvstore.Store.
func (s *Store) DefaultParts() int { return s.defaultParts }

// Replicas implements kvstore.Replicated.
func (s *Store) Replicas() int { return s.replicas }

// CreateTable implements kvstore.Store.
func (s *Store) CreateTable(name string, opts ...kvstore.TableOption) (kvstore.Table, error) {
	cfg := kvstore.ApplyOptions(s.defaultParts, opts)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, kvstore.ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrTableExists, name)
	}
	var g *group
	if cfg.ConsistentWith != "" {
		base, ok := s.tables[cfg.ConsistentWith]
		if !ok {
			return nil, fmt.Errorf("%w: consistent-with %q", kvstore.ErrNoTable, cfg.ConsistentWith)
		}
		g = base.group
	} else {
		g = s.newGroup(cfg.Parts, cfg.Hasher)
	}
	t := &table{
		store:      s,
		name:       name,
		group:      g,
		ubiquitous: cfg.Ubiquitous,
		ordered:    cfg.Ordered,
	}
	if cfg.Ubiquitous {
		t.ubiq = make(map[any]any)
	} else {
		for _, sh := range g.shards {
			sh.mu.Lock()
			for _, r := range sh.replicas {
				r.data[name] = make(map[any]any)
			}
			sh.mu.Unlock()
		}
	}
	s.tables[name] = t
	s.order = append(s.order, name)
	return t, nil
}

func (s *Store) newGroup(parts int, h codec.Hasher) *group {
	s.nextID++
	g := &group{
		id:     fmt.Sprintf("g%d", s.nextID),
		parts:  parts,
		hasher: h,
	}
	g.shards = make([]*shard, parts)
	for p := 0; p < parts; p++ {
		sh := &shard{part: p}
		for r := 0; r < s.replicas; r++ {
			sh.replicas = append(sh.replicas, &replica{
				alive: true,
				data:  make(map[string]map[any]any),
			})
		}
		g.shards[p] = sh
	}
	return g
}

// LookupTable implements kvstore.Store.
func (s *Store) LookupTable(name string) (kvstore.Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, false
	}
	return t, true
}

// DropTable implements kvstore.Store.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", kvstore.ErrNoTable, name)
	}
	delete(s.tables, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if !t.ubiquitous {
		for _, sh := range t.group.shards {
			sh.mu.Lock()
			for _, r := range sh.replicas {
				delete(r.data, name)
			}
			sh.mu.Unlock()
		}
	}
	return nil
}

// Tables implements kvstore.Store.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

func (s *Store) lookup(name string) (*table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, kvstore.ErrClosed
	}
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, name)
	}
	return t, nil
}

// RunAgent implements kvstore.Store: the agent runs against the primary
// replica of the shard, with direct (unmarshalled) local access.
func (s *Store) RunAgent(tableName string, part int, agent kvstore.Agent) (any, error) {
	t, err := s.lookup(tableName)
	if err != nil {
		return nil, err
	}
	if t.ubiquitous {
		return nil, fmt.Errorf("gridstore: RunAgent against ubiquitous table %q", tableName)
	}
	if err := kvstore.CheckPart(part, t.group.parts); err != nil {
		return nil, err
	}
	sh := t.group.shards[part]
	sv := &shardView{store: s, group: t.group, shard: sh, tx: nil}
	return agent(sv)
}

// RunTransaction implements kvstore.Transactional: the agent's writes across
// every co-placed table of the shard commit atomically, or not at all. If the
// shard's primary fails while the transaction is open, the transaction is
// rolled back and ErrShardFailed returned.
func (s *Store) RunTransaction(tableName string, part int, agent kvstore.Agent) (any, error) {
	t, err := s.lookup(tableName)
	if err != nil {
		return nil, err
	}
	if t.ubiquitous {
		return nil, fmt.Errorf("gridstore: RunTransaction against ubiquitous table %q", tableName)
	}
	if err := kvstore.CheckPart(part, t.group.parts); err != nil {
		return nil, err
	}
	sh := t.group.shards[part]

	sh.txMu.Lock()
	defer sh.txMu.Unlock()

	sh.mu.Lock()
	if _, perr := sh.primaryLocked(); perr != nil {
		sh.mu.Unlock()
		return nil, perr
	}
	startEpoch := sh.epoch
	sh.mu.Unlock()

	tx := &txState{writes: make(map[string]map[any]txWrite)}
	sv := &shardView{store: s, group: t.group, shard: sh, tx: tx}
	res, err := agent(sv)
	if err != nil {
		return nil, err // write-set discarded: rollback
	}

	// Commit.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.epoch != startEpoch {
		return nil, fmt.Errorf("gridstore: part %d failed over during transaction: %w",
			part, kvstore.ErrShardFailed)
	}
	if _, perr := sh.primaryLocked(); perr != nil {
		return nil, perr
	}
	for tab, writes := range tx.writes {
		for key, w := range writes {
			for _, r := range sh.replicas {
				if !r.alive {
					continue
				}
				items := r.data[tab]
				if items == nil {
					items = make(map[any]any)
					r.data[tab] = items
				}
				if w.deleted {
					delete(items, key)
				} else {
					items[key] = w.value
				}
			}
		}
	}
	return res, nil
}

// FailPrimary implements kvstore.Replicated: it kills the primary replica of
// the named table's part. Its data are discarded and a surviving replica is
// promoted; with no survivor, ErrNoReplica is returned and the shard becomes
// unavailable until Heal.
func (s *Store) FailPrimary(tableName string, part int) error {
	t, err := s.lookup(tableName)
	if err != nil {
		return err
	}
	if t.ubiquitous {
		return fmt.Errorf("gridstore: FailPrimary on ubiquitous table %q", tableName)
	}
	if err := kvstore.CheckPart(part, t.group.parts); err != nil {
		return err
	}
	sh := t.group.shards[part]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	prim := sh.replicas[sh.primary]
	prim.alive = false
	prim.data = make(map[string]map[any]any)
	sh.epoch++
	s.failovers.Add(1)
	s.metrics.AddFailovers(1)
	for i, r := range sh.replicas {
		if r.alive {
			sh.primary = i
			return nil
		}
	}
	return fmt.Errorf("gridstore: part %d: %w", part, ErrNoReplica)
}

// Heal restores every dead replica of every shard of the named table's group
// by copying the current primary's data, returning the group to full
// replication. Shards with no alive replica are reinitialized empty.
func (s *Store) Heal(tableName string) error {
	t, err := s.lookup(tableName)
	if err != nil {
		return err
	}
	if t.ubiquitous {
		return nil
	}
	for _, sh := range t.group.shards {
		sh.mu.Lock()
		var src *replica
		for _, r := range sh.replicas {
			if r.alive {
				src = r
				break
			}
		}
		for i, r := range sh.replicas {
			if r.alive {
				continue
			}
			r.alive = true
			r.data = make(map[string]map[any]any)
			if src != nil {
				for tab, items := range src.data {
					cp := make(map[any]any, len(items))
					for k, v := range items {
						cp[k] = v
					}
					r.data[tab] = cp
				}
			}
			if src == nil {
				sh.primary = i
				src = r
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// Close implements kvstore.Store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// primaryLocked returns the primary replica; callers hold sh.mu.
func (sh *shard) primaryLocked() (*replica, error) {
	r := sh.replicas[sh.primary]
	if !r.alive {
		return nil, fmt.Errorf("gridstore: part %d has no primary: %w", sh.part, kvstore.ErrShardFailed)
	}
	return r, nil
}

// roundTrip emulates moving v across a partition boundary. A pre-encoded
// value (codec.Encoded) pays only the decode half — the sender already
// marshalled it once and shared the bytes — and is unwrapped even with
// marshalling disabled, so callers never see the wrapper.
func (s *Store) roundTrip(v any) (any, error) {
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	if enc, ok := v.(codec.Encoded); ok {
		if s.marshal {
			s.metrics.AddMarshalledBytes(int64(enc.Size()))
		}
		return enc.Decode()
	}
	if !s.marshal {
		return v, nil
	}
	out, n, err := codec.RoundTrip(v)
	if err != nil {
		return nil, err
	}
	s.metrics.AddMarshalledBytes(int64(n))
	return out, nil
}

func sortedKeys(items map[any]any) []any {
	keys := make([]any, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return codec.CompareKeys(keys[i], keys[j]) < 0 })
	return keys
}

// txState buffers a transaction's writes until commit.
type txState struct {
	writes map[string]map[any]txWrite // table -> key -> write
}

type txWrite struct {
	value   any
	deleted bool
}

func (tx *txState) set(table string, key, value any) {
	m := tx.writes[table]
	if m == nil {
		m = make(map[any]txWrite)
		tx.writes[table] = m
	}
	m[key] = txWrite{value: value}
}

func (tx *txState) del(table string, key any) {
	m := tx.writes[table]
	if m == nil {
		m = make(map[any]txWrite)
		tx.writes[table] = m
	}
	m[key] = txWrite{deleted: true}
}

func (tx *txState) get(table string, key any) (txWrite, bool) {
	m := tx.writes[table]
	if m == nil {
		return txWrite{}, false
	}
	w, ok := m[key]
	return w, ok
}

package profile

import (
	"testing"

	"ripple/internal/trace"
)

func TestAttachLineageLinksStragglersToHotEdges(t *testing.T) {
	// Two-step, three-part job; part 2 straggles on step 2.
	profs := []StepProfile{
		{Job: "j", Step: 1, Part: 0, ComputeNS: 100},
		{Job: "j", Step: 1, Part: 1, ComputeNS: 110},
		{Job: "j", Step: 1, Part: 2, ComputeNS: 120},
		{Job: "j", Step: 2, Part: 0, ComputeNS: 100},
		{Job: "j", Step: 2, Part: 1, ComputeNS: 100},
		{Job: "j", Step: 2, Part: 2, ComputeNS: 900},
	}
	rep := Analyze(profs, nil, 10)
	top, ok := rep.TopStraggler()
	if !ok || top.Part != 2 {
		t.Fatalf("top straggler = %+v, want part 2", top)
	}

	// A sampled span dump: producers at (step 1, parts 0/1) and the loader,
	// deliver edges converging on part 2.
	tid := trace.TraceID("j", 1, 0)
	load := trace.SpanID(tid, 0, -1)
	p0 := trace.SpanID(tid, 1, 0)
	p1 := trace.SpanID(tid, 1, 1)
	spans := []trace.Span{
		{Kind: trace.KindLoad, Job: "j", Part: -1, Trace: tid, Span: load},
		{Kind: trace.KindPartCompute, Job: "j", Step: 1, Part: 0, Trace: tid, Span: p0},
		{Kind: trace.KindPartCompute, Job: "j", Step: 1, Part: 1, Trace: tid, Span: p1},
		{Kind: trace.KindDeliver, Job: "j", Step: 2, Part: 2, N: 40, Trace: tid, Parent: p1},
		{Kind: trace.KindDeliver, Job: "j", Step: 2, Part: 2, N: 70, Trace: tid, Parent: p0},
		{Kind: trace.KindDeliver, Job: "j", Step: 1, Part: 2, N: 5, Trace: tid, Parent: load},
		{Kind: trace.KindDeliver, Job: "j", Step: 2, Part: 0, N: 3, Trace: tid, Parent: p1},
	}
	AttachLineage(rep, spans)

	top, _ = rep.TopStraggler()
	if len(top.HotEdges) != 3 {
		t.Fatalf("hot edges = %+v, want 3", top.HotEdges)
	}
	want := []HotEdge{
		{FromStep: 1, FromPart: 0, Msgs: 70},
		{FromStep: 1, FromPart: 1, Msgs: 40},
		{FromStep: 0, FromPart: -1, Msgs: 5},
	}
	for i, w := range want {
		if top.HotEdges[i] != w {
			t.Errorf("edge[%d] = %+v, want %+v", i, top.HotEdges[i], w)
		}
	}

	// Unresolved parents and foreign kinds must not create edges.
	for _, r := range rep.Stragglers {
		if r.Part == 2 {
			continue
		}
		for _, e := range r.HotEdges {
			if e.Msgs <= 0 {
				t.Errorf("part %d has empty edge %+v", r.Part, e)
			}
		}
	}
}

func TestAttachLineageNoSpansIsNoOp(t *testing.T) {
	profs := []StepProfile{
		{Job: "j", Step: 1, Part: 0, ComputeNS: 100},
		{Job: "j", Step: 1, Part: 1, ComputeNS: 500},
	}
	rep := Analyze(profs, nil, 10)
	AttachLineage(rep, nil)
	for _, r := range rep.Stragglers {
		if r.HotEdges != nil {
			t.Errorf("edges attached from empty span dump: %+v", r)
		}
	}
	AttachLineage(nil, nil) // must not panic
}

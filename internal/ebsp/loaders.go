package ebsp

import (
	"fmt"
	"sync"

	"ripple/internal/kvstore"
)

// Built-in loaders and exporters (paper §II: "A client can implement its own
// Loader or use one provided in the Ripple library").

// TableLoader turns the contents of an existing key/value table into the
// job's initial condition: for each pair, Each is called with the pair and
// the LoadContext to send messages, enable components, seed states, or feed
// aggregators.
type TableLoader struct {
	// Table names the source table.
	Table string
	// Store resolves the table. If nil, the engine cannot resolve it and the
	// loader fails; wire the store in when constructing the job.
	Store kvstore.Store
	// Each processes one source pair.
	Each func(key, value any, lc *LoadContext) error
}

var _ Loader = (*TableLoader)(nil)

// Load implements Loader.
func (t *TableLoader) Load(lc *LoadContext) error {
	if t.Store == nil {
		return fmt.Errorf("%w: TableLoader %q has no store", ErrBadJob, t.Table)
	}
	if t.Each == nil {
		return fmt.Errorf("%w: TableLoader %q has no Each", ErrBadJob, t.Table)
	}
	tab, ok := t.Store.LookupTable(t.Table)
	if !ok {
		return fmt.Errorf("%w: TableLoader source %q", kvstore.ErrNoTable, t.Table)
	}
	return kvstore.EnumerateAll(tab, func(k, v any) (bool, error) {
		return false, t.Each(k, v, lc)
	})
}

// MessageLoader seeds an explicit list of initial messages.
type MessageLoader struct {
	// Messages maps destination component keys to their initial messages.
	Messages []InitialMessage
}

// InitialMessage is one (destination, payload) pair.
type InitialMessage struct {
	Key     any
	Message any
}

var _ Loader = (*MessageLoader)(nil)

// Load implements Loader.
func (m *MessageLoader) Load(lc *LoadContext) error {
	for _, im := range m.Messages {
		lc.SendMessage(im.Key, im.Message)
	}
	return nil
}

// EnableLoader enables an explicit set of components for the first step.
type EnableLoader struct {
	Keys []any
}

var _ Loader = (*EnableLoader)(nil)

// Load implements Loader.
func (e *EnableLoader) Load(lc *LoadContext) error {
	for _, k := range e.Keys {
		lc.Enable(k)
	}
	return nil
}

// StateLoader seeds explicit initial component states.
type StateLoader struct {
	// Tab is the state table index the states go to.
	Tab int
	// States maps component keys to initial states.
	States map[any]any
}

var _ Loader = (*StateLoader)(nil)

// Load implements Loader.
func (s *StateLoader) Load(lc *LoadContext) error {
	for k, v := range s.States {
		lc.PutState(s.Tab, k, v)
	}
	return nil
}

// CollectExporter accumulates exported pairs into a map for inspection —
// convenient in examples and tests. Safe for concurrent export.
type CollectExporter struct {
	mu    sync.Mutex
	pairs map[any]any
}

var _ Exporter = (*CollectExporter)(nil)

// Export implements Exporter.
func (c *CollectExporter) Export(key, value any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pairs == nil {
		c.pairs = make(map[any]any)
	}
	c.pairs[key] = value
	return nil
}

// Pairs returns a copy of everything exported so far.
func (c *CollectExporter) Pairs() map[any]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[any]any, len(c.pairs))
	for k, v := range c.pairs {
		out[k] = v
	}
	return out
}

// Len reports how many pairs were exported.
func (c *CollectExporter) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pairs)
}

// TableExporter copies exported pairs into a destination table (possibly in
// a different store — the portability story of §III).
type TableExporter struct {
	Table kvstore.Table
}

var _ Exporter = (*TableExporter)(nil)

// Export implements Exporter.
func (t *TableExporter) Export(key, value any) error {
	return t.Table.Put(key, value)
}

package graph

import (
	"math"
	"testing"

	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
)

// TestPageRankViaGraphLayer demonstrates the paper's §VI claim that "the
// functionality of Pregel can be constructed atop Ripple's K/V EBSP": the
// same PageRank iteration written as a Pregel-style vertex program on the
// graph layer, verified against a sequential reference.
func TestPageRankViaGraphLayer(t *testing.T) {
	// A small directed graph; Value holds the rank.
	adj := map[int][]int{
		0: {1, 2},
		1: {2},
		2: {0},
		3: {2}, // 3 has no in-edges
		4: {},  // dangling
	}
	const n = 5
	const d = 0.85
	const iterations = 30

	e := newEngine(t)
	vertices := make([]Vertex, 0, n)
	for id := 0; id < n; id++ {
		edges := make([]Edge, 0, len(adj[id]))
		for _, to := range adj[id] {
			edges = append(edges, Edge{To: to})
		}
		vertices = append(vertices, Vertex{ID: id, Value: 1.0 / n, Edges: edges})
	}
	tab := loadGraph(t, e, "prg", vertices)

	const sinkAgg = "sink"
	prog := ProgramFunc(func(ctx *VertexContext) error {
		rank := ctx.Value().(float64)
		if ctx.Superstep() > 1 {
			contrib := 0.0
			for _, m := range ctx.Messages() {
				contrib += m.(float64)
			}
			sink := 0.0
			if v, ok := ctx.AggregateResult(sinkAgg).(float64); ok {
				sink = v
			}
			rank = (1-d)/n + d*(contrib+sink)
			ctx.SetValue(rank)
		}
		if ctx.Superstep() >= iterations {
			ctx.VoteToHalt()
			return nil
		}
		if len(ctx.Edges()) == 0 {
			ctx.AggregateValue(sinkAgg, rank/n)
		} else {
			ctx.SendToNeighbors(rank / float64(len(ctx.Edges())))
		}
		return nil
	})

	_, err := Run(e, &Spec{
		Name:          "pagerank-pregel",
		VertexTable:   "prg",
		Program:       prog,
		Aggregators:   map[string]ebsp.Aggregator{sinkAgg: ebsp.Float64Sum{}},
		MaxSupersteps: iterations,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sequential reference.
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / n
	}
	for it := 1; it < iterations; it++ {
		sink := 0.0
		for u := 0; u < n; u++ {
			if len(adj[u]) == 0 {
				sink += rank[u] / n
			}
		}
		for v := 0; v < n; v++ {
			next[v] = (1-d)/n + d*sink
		}
		for u := 0; u < n; u++ {
			if len(adj[u]) == 0 {
				continue
			}
			share := d * rank[u] / float64(len(adj[u]))
			for _, v := range adj[u] {
				next[v] += share
			}
		}
		rank, next = next, rank
	}

	dump, _ := kvstore.Dump(tab)
	sum := 0.0
	for id := 0; id < n; id++ {
		got := dump[id].(Vertex).Value.(float64)
		sum += got
		if math.Abs(got-rank[id]) > 1e-9 {
			t.Errorf("rank[%d] = %v, want %v", id, got, rank[id])
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v", sum)
	}
}

// TestSSSPViaGraphLayer runs single-source shortest paths as a vertex
// program (Pregel's other canonical example).
func TestSSSPViaGraphLayer(t *testing.T) {
	const inf = int32(1 << 30)
	e := newEngine(t)
	tab := loadGraph(t, e, "gsssp", []Vertex{
		{ID: 0, Value: int32(0), Edges: edges(1, 2)},
		{ID: 1, Value: inf, Edges: edges(0, 3)},
		{ID: 2, Value: inf, Edges: edges(0, 3)},
		{ID: 3, Value: inf, Edges: edges(1, 2, 4)},
		{ID: 4, Value: inf, Edges: edges(3)},
		{ID: 5, Value: inf}, // unreachable
	})
	prog := ProgramFunc(func(ctx *VertexContext) error {
		dist := ctx.Value().(int32)
		improved := ctx.Superstep() == 1 && dist == 0
		for _, m := range ctx.Messages() {
			if nd := m.(int32); nd < dist {
				dist = nd
				improved = true
			}
		}
		if improved {
			ctx.SetValue(dist)
			ctx.SendToNeighbors(dist + 1)
		}
		ctx.VoteToHalt()
		return nil
	})
	if _, err := Run(e, &Spec{Name: "gsssp", VertexTable: "gsssp", Program: prog}); err != nil {
		t.Fatal(err)
	}
	want := map[int]int32{0: 0, 1: 1, 2: 1, 3: 2, 4: 3, 5: inf}
	dump, _ := kvstore.Dump(tab)
	for id, w := range want {
		if got := dump[id].(Vertex).Value.(int32); got != w {
			t.Errorf("d(%d) = %d, want %d", id, got, w)
		}
	}
}

package ebsp

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunContextCancelledBeforeStart(t *testing.T) {
	e := newEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunContext(ctx, &Job{
		Name:        "pre-cancel",
		StateTables: []string{"pc_state"},
		Compute:     ComputeFunc(func(*Context) bool { return false }),
		Loaders:     []Loader{&EnableLoader{Keys: []any{1}}},
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidJobSync(t *testing.T) {
	e := newEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		Name:        "mid-cancel",
		StateTables: []string{"mc_state"},
		Compute: ComputeFunc(func(c *Context) bool {
			if c.StepNum() == 3 {
				cancel() // external cancellation arrives during step 3
			}
			return true // would run forever otherwise
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
	}
	_, err := e.RunContext(ctx, job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextDeadlineNoSync(t *testing.T) {
	e := newEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// An endless no-sync ping-pong between two components.
	job := &Job{
		Name:        "ns-cancel",
		StateTables: []string{"nsc2_state"},
		Properties:  Properties{Incremental: true},
		Compute: ComputeFunc(func(c *Context) bool {
			for _, m := range c.InputMessages() {
				other := 1 - c.Key().(int)
				c.Send(other, m)
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: "ball"}}}},
	}
	start := time.Now()
	_, err := e.RunContext(ctx, job)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation took far too long")
	}
}

func TestRunContextNilContext(t *testing.T) {
	e := newEngine(t)
	res, err := e.RunContext(nil, &Job{ //nolint:staticcheck // explicit nil-tolerance check
		Name:        "nil-ctx",
		StateTables: []string{"nc2_state"},
		Compute:     ComputeFunc(func(*Context) bool { return false }),
		Loaders:     []Loader{&EnableLoader{Keys: []any{1}}},
	})
	if err != nil || res.Steps != 1 {
		t.Errorf("res=%+v err=%v", res, err)
	}
}

func TestCancelledJobResumableWithCheckpoints(t *testing.T) {
	e := newEngine(t, WithCheckpoints(2))
	ctx, cancel := context.WithCancel(context.Background())
	job := func() *Job {
		return checkpointChainJob("cancel-resume", 12, nil)
	}
	j := job()
	inner := j.Compute
	j.Compute = ComputeFunc(func(c *Context) bool {
		if c.StepNum() == 6 {
			cancel()
		}
		return inner.Compute(c)
	})
	if _, err := e.RunContext(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	res, err := e.Resume(job())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 12 {
		t.Errorf("resumed Steps = %d, want 12", res.Steps)
	}
}

package graph

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
)

func newEngine(t *testing.T) *ebsp.Engine {
	t.Helper()
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	return ebsp.NewEngine(store)
}

// loadGraph stores vertices keyed by ID.
func loadGraph(t *testing.T, e *ebsp.Engine, name string, vertices []Vertex) kvstore.Table {
	t.Helper()
	tab, err := e.Store().CreateTable(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vertices {
		if err := tab.Put(v.ID, v); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func edges(to ...any) []Edge {
	out := make([]Edge, len(to))
	for i, t := range to {
		out[i] = Edge{To: t}
	}
	return out
}

// maxValueProgram is the classic Pregel example: every vertex converges to
// the maximum value in its connected component.
var maxValueProgram = ProgramFunc(func(ctx *VertexContext) error {
	changed := ctx.Superstep() == 1
	cur := ctx.Value().(int)
	for _, m := range ctx.Messages() {
		if v := m.(int); v > cur {
			cur = v
			changed = true
		}
	}
	if changed {
		ctx.SetValue(cur)
		ctx.SendToNeighbors(cur)
	}
	ctx.VoteToHalt()
	return nil
})

func TestMaxValuePropagation(t *testing.T) {
	e := newEngine(t)
	tab := loadGraph(t, e, "g", []Vertex{
		{ID: 1, Value: 3, Edges: edges(2)},
		{ID: 2, Value: 6, Edges: edges(1, 3)},
		{ID: 3, Value: 2, Edges: edges(2, 4)},
		{ID: 4, Value: 1, Edges: edges(3)},
		// A second component.
		{ID: 10, Value: 9, Edges: edges(11)},
		{ID: 11, Value: 7, Edges: edges(10)},
	})
	res, err := Run(e, &Spec{Name: "maxval", VertexTable: "g", Program: maxValueProgram})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Error("no supersteps ran")
	}
	want := map[any]int{1: 6, 2: 6, 3: 6, 4: 6, 10: 9, 11: 9}
	dump, _ := kvstore.Dump(tab)
	for id, wantV := range want {
		v := dump[id].(Vertex)
		if v.Value != wantV {
			t.Errorf("vertex %v = %v, want %d", id, v.Value, wantV)
		}
	}
}

func TestVoteToHaltTerminates(t *testing.T) {
	e := newEngine(t)
	loadGraph(t, e, "halt", []Vertex{{ID: 1, Value: 0}})
	res, err := Run(e, &Spec{
		Name:        "halt",
		VertexTable: "halt",
		Program: ProgramFunc(func(ctx *VertexContext) error {
			ctx.VoteToHalt()
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Errorf("Steps = %d, want 1", res.Steps)
	}
}

func TestActiveWithoutHaltKeepsRunningUntilMax(t *testing.T) {
	e := newEngine(t)
	loadGraph(t, e, "live", []Vertex{{ID: 1, Value: 0}})
	res, err := Run(e, &Spec{
		Name:          "live",
		VertexTable:   "live",
		MaxSupersteps: 7,
		Program: ProgramFunc(func(ctx *VertexContext) error {
			ctx.SetValue(ctx.Superstep())
			return nil // never halts
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 7 {
		t.Errorf("Steps = %d, want 7", res.Steps)
	}
}

func TestMessageReactivatesHaltedVertex(t *testing.T) {
	e := newEngine(t)
	tab := loadGraph(t, e, "react", []Vertex{
		{ID: 1, Value: 0, Edges: edges(2)},
		{ID: 2, Value: 0},
	})
	_, err := Run(e, &Spec{
		Name:        "react",
		VertexTable: "react",
		Program: ProgramFunc(func(ctx *VertexContext) error {
			if ctx.Superstep() == 1 && ctx.ID() == 1 {
				ctx.SendToNeighbors("wake")
			}
			if len(ctx.Messages()) > 0 {
				ctx.SetValue("woken")
			}
			ctx.VoteToHalt()
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, _, _ := tab.Get(2)
	if raw.(Vertex).Value != "woken" {
		t.Errorf("vertex 2 = %v", raw.(Vertex).Value)
	}
}

func TestGraphMutation(t *testing.T) {
	e := newEngine(t)
	tab := loadGraph(t, e, "mut", []Vertex{
		{ID: 1, Value: "keep", Edges: edges(2)},
		{ID: 2, Value: "kill"},
	})
	_, err := Run(e, &Spec{
		Name:        "mut",
		VertexTable: "mut",
		Program: ProgramFunc(func(ctx *VertexContext) error {
			defer ctx.VoteToHalt()
			if ctx.Superstep() != 1 {
				return nil
			}
			switch ctx.ID() {
			case 1:
				ctx.AddVertex(Vertex{ID: 3, Value: "born"})
				ctx.RemoveEdge(2)
				ctx.AddEdge(Edge{To: 3})
			case 2:
				ctx.RemoveVertex()
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	dump, _ := kvstore.Dump(tab)
	if _, ok := dump[2]; ok {
		t.Error("removed vertex still present")
	}
	v3, ok := dump[3]
	if !ok || v3.(Vertex).Value != "born" {
		t.Errorf("added vertex = %v, %v", v3, ok)
	}
	v1 := dump[1].(Vertex)
	if len(v1.Edges) != 1 || v1.Edges[0].To != 3 {
		t.Errorf("vertex 1 edges = %v", v1.Edges)
	}
}

func TestAggregatorsAcrossSupersteps(t *testing.T) {
	e := newEngine(t)
	loadGraph(t, e, "agg", []Vertex{
		{ID: 1, Value: 5}, {ID: 2, Value: 7}, {ID: 3, Value: 1},
	})
	var mu sync.Mutex
	var step2Total any
	_, err := Run(e, &Spec{
		Name:          "agg",
		VertexTable:   "agg",
		MaxSupersteps: 2,
		Aggregators:   map[string]ebsp.Aggregator{"sum": ebsp.IntSum{}},
		Program: ProgramFunc(func(ctx *VertexContext) error {
			if ctx.Superstep() == 1 {
				ctx.AggregateValue("sum", ctx.Value().(int))
				return nil // stay active for superstep 2
			}
			mu.Lock()
			if step2Total == nil {
				step2Total = ctx.AggregateResult("sum")
			}
			mu.Unlock()
			ctx.VoteToHalt()
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if step2Total != 13 {
		t.Errorf("superstep-2 aggregate = %v, want 13", step2Total)
	}
}

// TestConnectedComponents labels every vertex with the smallest ID in its
// component.
func TestConnectedComponents(t *testing.T) {
	e := newEngine(t)
	tab := loadGraph(t, e, "cc", []Vertex{
		{ID: 5, Value: 0, Edges: edges(7)},
		{ID: 7, Value: 0, Edges: edges(5, 9)},
		{ID: 9, Value: 0, Edges: edges(7)},
		{ID: 20, Value: 0, Edges: edges(21)},
		{ID: 21, Value: 0, Edges: edges(20)},
		{ID: 30, Value: 0}, // isolated
	})
	prog := ProgramFunc(func(ctx *VertexContext) error {
		label := ctx.ID().(int)
		if ctx.Superstep() > 1 {
			label = ctx.Value().(int)
		}
		changed := ctx.Superstep() == 1
		for _, m := range ctx.Messages() {
			if v := m.(int); v < label {
				label = v
				changed = true
			}
		}
		if changed {
			ctx.SetValue(label)
			ctx.SendToNeighbors(label)
		}
		ctx.VoteToHalt()
		return nil
	})
	if _, err := Run(e, &Spec{Name: "cc", VertexTable: "cc", Program: prog}); err != nil {
		t.Fatal(err)
	}
	want := map[any]int{5: 5, 7: 5, 9: 5, 20: 20, 21: 20, 30: 30}
	dump, _ := kvstore.Dump(tab)
	for id, label := range want {
		if got := dump[id].(Vertex).Value; got != label {
			t.Errorf("component of %v = %v, want %d", id, got, label)
		}
	}
}

func TestNumVertices(t *testing.T) {
	e := newEngine(t)
	loadGraph(t, e, "nv", []Vertex{{ID: 1}, {ID: 2}, {ID: 3}})
	var seen atomic.Int64
	_, err := Run(e, &Spec{
		Name:        "nv",
		VertexTable: "nv",
		Program: ProgramFunc(func(ctx *VertexContext) error {
			seen.Store(int64(ctx.NumVertices()))
			ctx.VoteToHalt()
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 3 {
		t.Errorf("NumVertices = %d, want 3", seen.Load())
	}
}

func TestSpecValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := Run(e, &Spec{Name: "x", VertexTable: "g"}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("no program err = %v", err)
	}
	if _, err := Run(e, &Spec{Name: "x", Program: maxValueProgram}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("no table err = %v", err)
	}
	if _, err := Run(e, &Spec{Name: "x", VertexTable: "missing", Program: maxValueProgram}); err == nil {
		t.Error("missing table not reported")
	}
}

func TestProgramErrorSurfaces(t *testing.T) {
	e := newEngine(t)
	loadGraph(t, e, "err", []Vertex{{ID: 1}})
	_, err := Run(e, &Spec{
		Name:        "err",
		VertexTable: "err",
		Program: ProgramFunc(func(ctx *VertexContext) error {
			return errors.New("vertex exploded")
		}),
	})
	if err == nil {
		t.Error("program error did not surface")
	}
}

func TestMessageToNonexistentVertexCreatesNothing(t *testing.T) {
	e := newEngine(t)
	tab := loadGraph(t, e, "ghost", []Vertex{{ID: 1, Value: 0, Edges: edges(99)}})
	_, err := Run(e, &Spec{
		Name:        "ghost",
		VertexTable: "ghost",
		Program: ProgramFunc(func(ctx *VertexContext) error {
			defer ctx.VoteToHalt()
			if ctx.Superstep() == 1 && ctx.Exists() {
				ctx.SendToNeighbors("hello")
			}
			if !ctx.Exists() && len(ctx.Messages()) == 0 {
				t.Errorf("ghost vertex %v invoked without messages", ctx.ID())
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := tab.Size(); n != 1 {
		t.Errorf("vertex table size = %d, want 1 (no ghost materialized)", n)
	}
}

// Command faulttolerance demonstrates Ripple's two fault-tolerance
// mechanisms on a live job.
//
// First, the paper's §IV-A outline: on a store with per-shard ACID
// transactions and replication (the WXS-like gridstore), a deterministic job
// commits each part's step atomically; when a primary replica is killed
// mid-step, the transaction rolls back, a surviving replica is promoted, and
// the engine replays the step — the job completes with correct results.
//
// Second, self-healing under a chaos schedule: a non-deterministic job runs
// with periodic checkpoints while a seeded fault injector fails store and
// agent operations at random and kills two primary replicas mid-run. The
// engine retries the transient faults, senses each failover, and re-runs
// from the latest checkpoint on its own — one Run call, no manual Resume.
package main

import (
	"fmt"
	"log"
	"sync"

	"ripple"
)

func main() {
	if err := replayDemo(); err != nil {
		log.Fatalf("replay demo: %v", err)
	}
	fmt.Println()
	if err := chaosDemo(); err != nil {
		log.Fatalf("chaos demo: %v", err)
	}
}

// counterJob forwards a counter along a chain of components; deterministic,
// so replay-based recovery applies.
func counterJob(name string, length int, fail func(ctx *ripple.Context)) *ripple.Job {
	return &ripple.Job{
		Name:        name,
		StateTables: []string{name + "_state"},
		Properties:  ripple.Properties{Deterministic: true},
		Compute: ripple.ComputeFunc(func(ctx *ripple.Context) bool {
			for _, m := range ctx.InputMessages() {
				n := m.(int)
				ctx.WriteState(0, n)
				if fail != nil {
					fail(ctx)
				}
				if n < length {
					ctx.Send(ctx.Key().(int)+1, n+1)
				}
			}
			return false
		}),
		Loaders: []ripple.Loader{&ripple.MessageLoader{
			Messages: []ripple.InitialMessage{{Key: 0, Message: 1}},
		}},
	}
}

// chainJob is counterJob without the determinism declaration, so the engine
// cannot use transactional replay and must recover through checkpoints.
func chainJob(name string, length int) *ripple.Job {
	j := counterJob(name, length, nil)
	j.Properties = ripple.Properties{}
	return j
}

func replayDemo() error {
	fmt.Println("=== replay-based recovery (paper §IV-A outline) ===")
	store := ripple.NewGridStore(ripple.GridParts(4), ripple.GridReplicas(2))
	defer func() { _ = store.Close() }()
	engine := ripple.NewEngine(store)

	// Kill the primary of the shard executing step 5, exactly once,
	// mid-transaction.
	var once sync.Once
	job := counterJob("replay", 12, func(ctx *ripple.Context) {
		if ctx.StepNum() != 5 {
			return
		}
		once.Do(func() {
			tab, _ := store.LookupTable("replay_state")
			part := tab.PartOf(ctx.Key())
			fmt.Printf("  !! killing primary replica of part %d during step %d\n", part, ctx.StepNum())
			if err := store.FailPrimary("replay_state", part); err != nil {
				log.Fatalf("FailPrimary: %v", err)
			}
		})
	})

	res, err := engine.Run(job)
	if err != nil {
		return err
	}
	fmt.Printf("  job completed: %d steps, %d replay(s) performed\n", res.Steps, res.Recoveries)
	tab, _ := store.LookupTable("replay_state")
	for i := 0; i < 12; i++ {
		v, ok, err := tab.Get(i)
		if err != nil || !ok || v != i+1 {
			return fmt.Errorf("state[%d] = %v, %v, %v (data lost?)", i, v, ok, err)
		}
	}
	fmt.Println("  all 12 states intact despite the mid-step primary failure")
	return nil
}

func chaosDemo() error {
	fmt.Println("=== self-healing under a chaos schedule (checkpoints, no manual Resume) ===")
	sched, err := ripple.ParseChaosSchedule(
		"seed=11,store.err=0.02,agent.err=0.02,kill=auto_state:1@20,kill=auto_state:2@55")
	if err != nil {
		return err
	}
	fmt.Printf("  schedule: %s\n", sched)

	m := &ripple.Metrics{}
	inj := ripple.NewChaosInjector(sched, ripple.ChaosMetrics(m))
	gs := ripple.NewGridStore(ripple.GridParts(4), ripple.GridReplicas(2), ripple.GridMetrics(m))
	store := ripple.WrapChaos(gs, inj)
	defer func() { _ = store.Close() }()

	// One Run call: the engine retries injected transients, and when a kill
	// fails over a primary it restores the latest checkpoint and re-runs the
	// lost steps itself.
	engine := ripple.NewEngine(store, ripple.WithMetrics(m), ripple.WithCheckpoints(3))
	res, err := engine.Run(chainJob("auto", 25))
	if err != nil {
		return err
	}

	snap := m.Snapshot()
	fmt.Printf("  job completed: %d steps\n", res.Steps)
	fmt.Printf("  faults injected=%d retries=%d failovers=%d steps re-run=%d\n",
		snap.FaultsInjected, snap.Retries, snap.Failovers, snap.StepsRerun)
	recs := inj.Records()
	show := len(recs)
	if show > 12 {
		show = 12
	}
	for _, r := range recs[:show] {
		fmt.Printf("    fault: %s\n", r)
	}
	if len(recs) > show {
		fmt.Printf("    ... and %d more\n", len(recs)-show)
	}

	// Verify on the raw store: the chaos decorator covers the job, not the
	// check afterwards.
	tab, _ := gs.LookupTable("auto_state")
	for i := 0; i < 25; i++ {
		v, ok, err := tab.Get(i)
		if err != nil || !ok || v != i+1 {
			return fmt.Errorf("state[%d] = %v, %v, %v (data lost?)", i, v, ok, err)
		}
	}
	fmt.Println("  all 25 states correct despite transient faults and two primary kills")
	return nil
}

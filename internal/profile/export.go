package profile

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteJSONL dumps records as one JSON object per line, oldest first.
func WriteJSONL(w io.Writer, profs []StepProfile) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range profs {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace-event (the "JSON Array Format" documented
// for chrome://tracing and Perfetto). ts and dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace-event file.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders records as Chrome trace-event JSON: one process
// per job, one thread per part, a "compute" duration span per record
// followed by its "barrier_wait" span, so a whole run displays as a per-part
// timeline in chrome://tracing or Perfetto. Every compute event carries its
// full StepProfile in args.profile, which Parse uses to round-trip the
// records for offline analysis.
func WriteChromeTrace(w io.Writer, profs []StepProfile) error {
	pids := make(map[string]int)
	threads := make(map[[2]int]bool)
	trace := chromeTrace{DisplayTimeUnit: "ms"}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, p := range profs {
		pid, ok := pids[p.Job]
		if !ok {
			pid = len(pids) + 1
			pids[p.Job] = pid
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": "job " + p.Job},
			})
		}
		if !threads[[2]int{pid, p.Part}] {
			threads[[2]int{pid, p.Part}] = true
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: p.Part,
				Args: map[string]any{"name": fmt.Sprintf("part %d", p.Part)},
			})
		}
		name := "compute"
		if p.Step > 0 {
			name = fmt.Sprintf("step %d", p.Step)
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: name, Cat: "compute", Ph: "X",
			Ts: us(p.StartNS), Dur: us(p.ComputeNS), Pid: pid, Tid: p.Part,
			Args: map[string]any{"profile": p},
		})
		if p.BarrierWaitNS > 0 {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "barrier_wait", Cat: "barrier", Ph: "X",
				Ts: us(p.StartNS + p.ComputeNS), Dur: us(p.BarrierWaitNS),
				Pid: pid, Tid: p.Part,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// Parse parses a profile dump in either format this package writes —
// Chrome trace-event JSON (object or bare array form) or StepProfile JSONL —
// sniffing the format from the first non-space byte.
func Parse(data []byte) ([]StepProfile, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("profile: empty input")
	}
	switch trimmed[0] {
	case '{':
		// Could be a Chrome trace object or single-line JSONL; sniff for
		// traceEvents first.
		var ct chromeTrace
		if err := json.Unmarshal(trimmed, &ct); err == nil && ct.TraceEvents != nil {
			return fromChromeEvents(ct.TraceEvents)
		}
		return readJSONL(trimmed)
	case '[':
		var evs []chromeEvent
		if err := json.Unmarshal(trimmed, &evs); err != nil {
			return nil, fmt.Errorf("profile: parse trace-event array: %w", err)
		}
		return fromChromeEvents(evs)
	default:
		return nil, fmt.Errorf("profile: unrecognized profile format (want Chrome trace JSON or JSONL)")
	}
}

func readJSONL(data []byte) ([]StepProfile, error) {
	var out []StepProfile
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var p StepProfile
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("profile: parse JSONL record %d: %w", len(out), err)
		}
		if p.Job == "" {
			return nil, fmt.Errorf("profile: JSONL record %d has no job (not a profile dump?)", len(out))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("profile: no records")
	}
	return out, nil
}

func fromChromeEvents(evs []chromeEvent) ([]StepProfile, error) {
	var out []StepProfile
	for _, ev := range evs {
		raw, ok := ev.Args["profile"]
		if !ok {
			continue
		}
		// Round-trip through JSON: args decoded as map[string]any.
		buf, err := json.Marshal(raw)
		if err != nil {
			return nil, fmt.Errorf("profile: re-encode embedded profile: %w", err)
		}
		var p StepProfile
		if err := json.Unmarshal(buf, &p); err != nil {
			return nil, fmt.Errorf("profile: parse embedded profile: %w", err)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("profile: trace has no embedded profile records")
	}
	return out, nil
}

// WriteText renders a report as a human-readable skew summary: headline,
// the worst steps by skew ratio, the straggler ranking, and the hot keys.
func WriteText(w io.Writer, rep *Report) error {
	if rep == nil {
		return nil
	}
	d := func(ns int64) time.Duration { return time.Duration(ns) }
	fmt.Fprintf(w, "profile report: %d records, %d synchronized steps analyzed", rep.Records, len(rep.Steps))
	if rep.NoSyncParts > 0 {
		fmt.Fprintf(w, ", %d no-sync part records", rep.NoSyncParts)
	}
	fmt.Fprintln(w)
	if len(rep.Steps) > 0 {
		fmt.Fprintf(w, "skew ratio (max part compute / median): max %.2fx, mean %.2fx\n",
			rep.MaxSkewRatio, rep.MeanSkewRatio)
	}
	fmt.Fprintf(w, "total barrier wait (all parts idling behind stragglers): %v\n\n", d(rep.BarrierWaitNS))

	if len(rep.Steps) > 0 {
		worst := append([]StepSkew(nil), rep.Steps...)
		sort.Slice(worst, func(i, j int) bool { return worst[i].SkewRatio > worst[j].SkewRatio })
		limit := 10
		if len(worst) < limit {
			limit = len(worst)
		}
		fmt.Fprintf(w, "worst steps by skew (top %d of %d):\n", limit, len(worst))
		fmt.Fprintf(w, "  %-16s %5s %5s %12s %12s %7s %9s %6s %12s\n",
			"JOB", "STEP", "PARTS", "MAX", "MEDIAN", "RATIO", "STRAGGLER", "CRIT%", "BARRIER-WAIT")
		for _, s := range worst[:limit] {
			fmt.Fprintf(w, "  %-16s %5d %5d %12v %12v %6.2fx %9d %5.0f%% %12v\n",
				s.Job, s.Step, s.Parts, d(s.MaxComputeNS), d(s.MedianComputeNS),
				s.SkewRatio, s.StragglerPart, 100*s.CriticalPathShare, d(s.BarrierWaitNS))
		}
		fmt.Fprintln(w)
	}

	if len(rep.Stragglers) > 0 {
		fmt.Fprintf(w, "straggler parts (by compute time beyond the step median):\n")
		fmt.Fprintf(w, "  %-16s %5s %8s %12s %12s %7s %8s\n",
			"JOB", "PART", "SLOWEST", "EXCESS", "COMPUTE", "FAULTS", "RETRIES")
		for _, r := range rep.Stragglers {
			fmt.Fprintf(w, "  %-16s %5d %8d %12v %12v %7d %8d\n",
				r.Job, r.Part, r.StepsSlowest, d(r.ExcessNS), d(r.ComputeNS), r.Faults, r.Retries)
			for _, e := range r.HotEdges {
				from := fmt.Sprintf("step %d part %d", e.FromStep, e.FromPart)
				if e.FromPart < 0 {
					from = "loader"
				}
				fmt.Fprintf(w, "  %-16s   <- %-22s %10d msgs\n", "", from, e.Msgs)
			}
		}
		fmt.Fprintln(w)
	}

	if len(rep.HotKeys) > 0 {
		fmt.Fprintf(w, "hot component keys (by delivered messages, estimated):\n")
		fmt.Fprintf(w, "  %-16s %-24s %10s\n", "JOB", "KEY", "MSGS")
		for _, k := range rep.HotKeys {
			fmt.Fprintf(w, "  %-16s %-24s %10d\n", k.Job, k.Key, k.Count)
		}
		fmt.Fprintln(w)
	}

	if len(rep.Servers) > 0 {
		fmt.Fprintf(w, "server RPC cost (client-observed time, wire vs exec from the fleet timeline):\n")
		fmt.Fprintf(w, "  %-8s %7s %8s %12s %12s %12s\n",
			"SERVER", "CALLS", "MATCHED", "CLIENT", "EXEC", "WIRE")
		for _, s := range rep.Servers {
			fmt.Fprintf(w, "  %-8s %7d %8d %12v %12v %12v\n",
				s.Server, s.Calls, s.Matched, d(s.ClientNS), d(s.ServerNS), d(s.WireNS))
		}
	}
	return nil
}

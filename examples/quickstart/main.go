// Command quickstart is the smallest end-to-end Ripple program: it runs a
// K/V EBSP job (a token-passing ring that demonstrates messages, state,
// selective enablement, and aggregators), a no-sync relay (the same idea
// without barriers, showing the barrier-free execution path), and then the
// classic word count on the MapReduce layer — all against the in-memory
// store.
//
// With -profile out.json, the jobs run under the step profiler and their
// per-(step, part) timeline is written as Chrome trace-event JSON (open in
// chrome://tracing or https://ui.perfetto.dev).
//
// With -trace spans.jsonl, every job run is head-sampled for causal tracing
// and the span log — including the deliver edges that stitch cross-partition
// message flow — is dumped as JSONL. Reconstruct the lineage with:
//
//	ripple-inspect -trace spans.jsonl -lineage -check
//
// With -log-level info (or debug), the engine emits structured logs carrying
// the same trace/span IDs.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"sort"
	"strings"

	"ripple"
)

// profiler records the demos' step profiles when -profile is set; tracer and
// sampler capture causally-stitched spans when -trace is set; logger carries
// structured logs when -log-level is set. All nil (disabled) by default.
var (
	profiler *ripple.Profiler
	tracer   *ripple.Tracer
	sampler  *ripple.TraceSampler
	logger   *slog.Logger
)

// newObservedEngine wires a demo engine to whatever observability the flags
// enabled.
func newObservedEngine(store ripple.Store) *ripple.Engine {
	return ripple.NewEngine(store,
		ripple.WithProfiler(profiler),
		ripple.WithTracer(tracer),
		ripple.WithTraceSampler(sampler),
		ripple.WithLogger(logger))
}

func main() {
	profileFile := flag.String("profile", "", "write a Chrome trace of per-part step profiles to this file")
	traceFile := flag.String("trace", "", "sample every job run for causal tracing and write the span log as JSONL to this file")
	logLevel := flag.String("log-level", "off", "engine structured-log level: off, error, warn, info, debug")
	flag.Parse()
	if *profileFile != "" {
		profiler = ripple.NewProfiler(0)
	}
	if *traceFile != "" {
		tracer = ripple.NewTracer(0)
		sampler = ripple.NewTraceSampler(1, 1) // sample every run
	}
	if *logLevel != "off" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			log.Fatalf("unknown -log-level %q", *logLevel)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}
	if err := ringDemo(); err != nil {
		log.Fatalf("ring demo: %v", err)
	}
	if err := relayDemo(); err != nil {
		log.Fatalf("relay demo: %v", err)
	}
	if err := wordCountDemo(); err != nil {
		log.Fatalf("word count demo: %v", err)
	}
	if *profileFile != "" {
		if err := writeProfile(*profileFile); err != nil {
			log.Fatalf("profile: %v", err)
		}
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile); err != nil {
			log.Fatalf("trace: %v", err)
		}
	}
}

// writeTrace dumps the sampled span log as JSONL.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := tracer.WriteJSONL(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d trace spans to %s (try: ripple-inspect -trace %s -lineage -check)\n",
		tracer.Len(), path, path)
	return nil
}

// writeProfile dumps the recorded step profiles as a Chrome trace.
func writeProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := ripple.WriteProfileChromeTrace(f, profiler.Snapshot()); err != nil {
		return err
	}
	fmt.Printf("wrote %d step profiles to %s\n", profiler.Len(), path)
	return nil
}

// ringDemo passes a hop counter around a ring of components. Only the
// component holding the token runs in each step — selective enablement at
// work — while an aggregator tracks the total hops.
func ringDemo() error {
	store := ripple.NewMemStore(ripple.MemParts(4))
	defer func() { _ = store.Close() }()
	engine := newObservedEngine(store)

	const ringSize, laps = 5, 3
	job := &ripple.Job{
		Name:        "ring",
		StateTables: []string{"ring_state"},
		Aggregators: map[string]ripple.Aggregator{"hops": ripple.IntMax{}},
		Compute: ripple.ComputeFunc(func(ctx *ripple.Context) bool {
			for _, m := range ctx.InputMessages() {
				hop := m.(int)
				ctx.WriteState(0, hop)          // remember the last hop seen
				ctx.AggregateValue("hops", hop) // the highest hop number reached
				if hop < ringSize*laps {
					next := (ctx.Key().(int) + 1) % ringSize
					ctx.Send(next, hop+1)
				}
			}
			return false
		}),
		Loaders: []ripple.Loader{&ripple.MessageLoader{
			Messages: []ripple.InitialMessage{{Key: 0, Message: 1}},
		}},
	}
	res, err := engine.Run(job)
	if err != nil {
		return err
	}
	fmt.Printf("ring: %d components, %d laps -> %d steps, token made %v hops\n",
		ringSize, laps, res.Steps, res.Aggregates["hops"])
	return nil
}

// relayDemo passes a baton down a line of components with no barriers at
// all: the job's Properties declare it incremental (any message grouping is
// fine) so the engine plans barrier-free execution, and the baton hops
// across partition boundaries purely through the message queues.
func relayDemo() error {
	store := ripple.NewMemStore(ripple.MemParts(4))
	defer func() { _ = store.Close() }()
	engine := newObservedEngine(store)

	const relayLen = 12
	job := &ripple.Job{
		Name:        "relay",
		StateTables: []string{"relay_state"},
		Properties:  ripple.Properties{Incremental: true, NoContinue: true},
		Compute: ripple.ComputeFunc(func(ctx *ripple.Context) bool {
			for _, m := range ctx.InputMessages() {
				hop := m.(int)
				ctx.WriteState(0, hop)
				if hop < relayLen {
					ctx.Send(ctx.Key().(int)+1, hop+1)
				}
			}
			return false
		}),
		Loaders: []ripple.Loader{&ripple.MessageLoader{
			Messages: []ripple.InitialMessage{{Key: 0, Message: 1}},
		}},
	}
	res, err := engine.Run(job)
	if err != nil {
		return err
	}
	mode := "synchronized"
	if !res.Strategy.Sync {
		mode = "no-sync (barrier-free)"
	}
	fmt.Printf("relay: baton passed %d hops, %s execution, %d barriers\n",
		relayLen, mode, res.Steps)
	return nil
}

// wordCountDemo runs word count on the MapReduce layer (itself implemented
// on K/V EBSP).
func wordCountDemo() error {
	store := ripple.NewMemStore(ripple.MemParts(4))
	defer func() { _ = store.Close() }()
	engine := newObservedEngine(store)

	docs, err := store.CreateTable("docs")
	if err != nil {
		return err
	}
	corpus := []string{
		"the quick brown fox jumps over the lazy dog",
		"the dog barks and the fox runs",
		"quick thinking wins the day",
	}
	for i, line := range corpus {
		if err := docs.Put(i, line); err != nil {
			return err
		}
	}

	job := &ripple.MapReduceJob{
		Name:   "wordcount",
		Input:  "docs",
		Output: "counts",
		Mapper: ripple.MapperFunc(func(_, value any, emit ripple.Emitter) error {
			for _, w := range strings.Fields(value.(string)) {
				emit(w, 1)
			}
			return nil
		}),
		Combiner: func(_, a, b any) any { return a.(int) + b.(int) },
		Reducer: ripple.ReducerFunc(func(key any, values []any, emit ripple.Emitter) error {
			total := 0
			for _, v := range values {
				total += v.(int)
			}
			emit(key, total)
			return nil
		}),
	}
	if _, err := ripple.RunMapReduce(engine, job); err != nil {
		return err
	}

	out, _ := store.LookupTable("counts")
	type wc struct {
		word  string
		count int
	}
	var counts []wc
	if _, err := out.EnumeratePairs(ripple.PairConsumerFuncs{
		ConsumeFn: func(k, v any) (bool, error) {
			counts = append(counts, wc{word: k.(string), count: v.(int)})
			return false, nil
		},
	}); err != nil {
		return err
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].count != counts[j].count {
			return counts[i].count > counts[j].count
		}
		return counts[i].word < counts[j].word
	})
	fmt.Println("word count (top 5):")
	for i, c := range counts {
		if i == 5 {
			break
		}
		fmt.Printf("  %-8s %d\n", c.word, c.count)
	}
	return nil
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/matrix"
	"ripple/internal/pagerank"
	"ripple/internal/sssp"
	"ripple/internal/summa"
	"ripple/internal/workload"
)

// RunEnv is what the service hands a workload runner: the cancelable
// context, the shared store, the slot's engine, and the job's identity.
type RunEnv struct {
	Ctx   context.Context
	Store kvstore.Store
	// Engine is the slot's engine (checkpoints + observers attached). One
	// job runs on it at a time.
	Engine *ebsp.Engine
	// EngineOptions reproduce the slot engine's options, for workloads that
	// build an engine of their own (SUMMA).
	EngineOptions []ebsp.Option
	JobID         string
	// Prefix namespaces everything the job creates in the shared store —
	// table names and BSP job names — so concurrent tenants cannot collide
	// and checkpoints stay per-job. It is deterministic from the job ID, so
	// a restarted daemon reconstructs the same names and can resume.
	Prefix string
	Params json.RawMessage
	// Resume is set when a previous process died mid-run: the runner should
	// continue from its checkpoint when it can, and otherwise re-run from
	// the deterministic seed.
	Resume bool
	Logger *slog.Logger
}

// Runner executes one workload; the returned value is marshaled as the
// job's result document. Results must be deterministic for a given params
// document — restart-resume is verified by comparing result bytes.
type Runner func(env RunEnv) (any, error)

var runners = map[string]Runner{
	"pagerank": runPageRank,
	"sssp":     runSSSP,
	"summa":    runSUMMA,
}

func lookupRunner(name string) (Runner, bool) {
	r, ok := runners[name]
	return r, ok
}

// Workloads lists the registered workload names, sorted.
func Workloads() []string {
	out := make([]string, 0, len(runners))
	for name := range runners {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// dropTables removes the named tables if they exist (fresh-run hygiene after
// a canceled or crashed predecessor).
func dropTables(store kvstore.Store, names ...string) {
	for _, n := range names {
		if _, ok := store.LookupTable(n); ok {
			_ = store.DropTable(n)
		}
	}
}

// ckptTables names the checkpoint tables Engine.Resume looks for — they must
// be reopened (log replay) before resuming over a restarted log-backed store.
func ckptTables(bspName string, stateTables int) []string {
	out := []string{
		fmt.Sprintf("__ckpt.%s.meta", bspName),
		fmt.Sprintf("__ckpt.%s.spills", bspName),
	}
	for i := 0; i < stateTables; i++ {
		out = append(out, fmt.Sprintf("__ckpt.%s.state.%d", bspName, i))
	}
	return out
}

// reopenForResume re-creates the job's tables on a store that lost its
// in-memory directory (daemon restart over a disk store): the state table
// with its recorded part count, then the checkpoint tables partitioned
// consistently with it. On stores that kept the tables this is a no-op.
func reopenForResume(store kvstore.Store, stateTable string, parts int, bspName string) error {
	if _, err := ensureTable(store, stateTable, parts); err != nil {
		return err
	}
	for _, name := range ckptTables(bspName, 1) {
		if _, ok := store.LookupTable(name); ok {
			continue
		}
		if _, err := store.CreateTable(name, kvstore.ConsistentWith(stateTable)); err != nil &&
			!errors.Is(err, kvstore.ErrTableExists) {
			return err
		}
	}
	return nil
}

// --- PageRank: the resumable flagship workload -----------------------------

type pagerankParams struct {
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Zipf       float64 `json:"zipf"`
	Seed       int64   `json:"seed"`
	Damping    float64 `json:"damping"`
	Iterations int     `json:"iterations"`
	Epsilon    float64 `json:"epsilon"`
	Parts      int     `json:"parts"`
	// StepDelayMs slows each synchronized step (testing/demo knob: it makes
	// "restart the daemon mid-job" a controllable event).
	StepDelayMs int `json:"step_delay_ms"`
}

func (p *pagerankParams) normalize() {
	if p.Vertices <= 0 {
		p.Vertices = 200
	}
	if p.Edges <= 0 {
		p.Edges = 5 * p.Vertices
	}
	if p.Zipf <= 1 {
		p.Zipf = 2.0
	}
	if p.Iterations <= 0 {
		p.Iterations = 10
	}
	if p.Parts <= 0 {
		p.Parts = 4
	}
}

// runPageRank generates a seeded power-law graph and runs the paper's direct
// PageRank on the slot engine. It is the one fully resumable workload: on
// Resume it reopens the graph + checkpoint tables and continues from the
// snapshot; without a usable checkpoint it deterministically regenerates and
// re-runs, so the result bytes come out identical either way.
func runPageRank(env RunEnv) (any, error) {
	var p pagerankParams
	if err := decodeParams(env.Params, &p); err != nil {
		return nil, err
	}
	p.normalize()

	graphTable := env.Prefix + ".graph"
	bspName := env.Prefix + ".pagerank"
	cfg := pagerank.Config{
		Name:       bspName,
		GraphTable: graphTable,
		Damping:    p.Damping,
		Iterations: p.Iterations,
		Epsilon:    p.Epsilon,
	}

	buildJob := func() (*ebsp.Job, error) {
		job, err := pagerank.DirectJob(env.Store, cfg)
		if err != nil {
			return nil, err
		}
		if p.StepDelayMs > 0 {
			// The Aborter hook runs between steps and is outside the
			// checkpoint identity, so the delayed spec still resumes.
			job.Aborter = delayAborter(time.Duration(p.StepDelayMs) * time.Millisecond)
		}
		return job, nil
	}

	var res *ebsp.Result
	resumed := false
	if env.Resume {
		if err := reopenForResume(env.Store, graphTable, p.Parts, bspName); err != nil {
			return nil, err
		}
		job, err := buildJob()
		if err == nil {
			res, err = env.Engine.ResumeContext(env.Ctx, job)
		}
		switch {
		case err == nil:
			resumed = true
		case errors.Is(err, ebsp.ErrNoCheckpoint), errors.Is(err, ebsp.ErrCheckpointMismatch),
			errors.Is(err, pagerank.ErrBadConfig):
			// No usable snapshot (crashed before the first checkpoint, or
			// before the graph was even loaded): fall through to a fresh
			// deterministic run.
			env.Logger.Info("serve: no usable checkpoint, re-running", "job", env.JobID, "err", err)
			res = nil
		default:
			return nil, err
		}
	}
	if res == nil {
		dropTables(env.Store, graphTable)
		dropTables(env.Store, ckptTables(bspName, 1)...)
		g, err := workload.PowerLawDirected(workload.DeriveRand(p.Seed, "pagerank."+env.JobID),
			p.Vertices, p.Edges, p.Zipf)
		if err != nil {
			return nil, err
		}
		if _, err := pagerank.LoadGraph(env.Store, graphTable, g, p.Parts); err != nil {
			return nil, err
		}
		job, err := buildJob()
		if err != nil {
			return nil, err
		}
		res, err = env.Engine.RunContext(env.Ctx, job)
		if err != nil {
			return nil, err
		}
	}

	tab, ok := env.Store.LookupTable(graphTable)
	if !ok {
		return nil, fmt.Errorf("serve: graph table %q vanished", graphTable)
	}
	ranks, err := pagerank.ReadRanks(tab)
	if err != nil {
		return nil, err
	}
	rounded := make(map[int]float64, len(ranks))
	for k, v := range ranks {
		// Rounded well below any numerically meaningful digit but above
		// float jitter, so resumed and uninterrupted runs byte-match.
		rounded[k] = math.Round(v*1e9) / 1e9
	}
	return map[string]any{
		"ranks":   rounded,
		"steps":   res.Steps,
		"resumed": resumed,
	}, nil
}

// delayAborter slows each step without ever aborting.
func delayAborter(d time.Duration) ebsp.Aborter {
	return ebsp.AborterFunc(func(int, map[string]any) bool {
		time.Sleep(d)
		return false
	})
}

// --- Incremental SSSP ------------------------------------------------------

type ssspParams struct {
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Zipf       float64 `json:"zipf"`
	Seed       int64   `json:"seed"`
	Source     int     `json:"source"`
	Batches    int     `json:"batches"`
	BatchSize  int     `json:"batch_size"`
	RemoveFrac float64 `json:"remove_frac"`
	Parts      int     `json:"parts"`
}

func (p *ssspParams) normalize() {
	if p.Vertices <= 0 {
		p.Vertices = 200
	}
	if p.Edges <= 0 {
		p.Edges = 3 * p.Vertices
	}
	if p.Zipf <= 1 {
		p.Zipf = 2.0
	}
	if p.Batches < 0 {
		p.Batches = 0
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 20
	}
	if p.RemoveFrac <= 0 || p.RemoveFrac >= 1 {
		p.RemoveFrac = 0.3
	}
	if p.Parts <= 0 {
		p.Parts = 4
	}
}

// runSSSP runs the paper's incremental SSSP (selective variant) over a
// seeded time-varying graph. Not checkpoint-resumable (each wave is a fresh
// short job); on Resume it re-runs deterministically from the seed.
// Cancellation is honored between change batches.
func runSSSP(env RunEnv) (any, error) {
	var p ssspParams
	if err := decodeParams(env.Params, &p); err != nil {
		return nil, err
	}
	p.normalize()

	table := env.Prefix + ".sssp"
	dropTables(env.Store, table)
	rng := workload.DeriveRand(p.Seed, "sssp."+env.JobID)
	g, err := workload.PowerLawUndirected(rng, p.Vertices, p.Edges, p.Zipf)
	if err != nil {
		return nil, err
	}
	sel := sssp.NewSelective(env.Engine, table, p.Source, p.Parts)
	if err := sel.Init(g); err != nil {
		return nil, err
	}
	applied := 0
	for b := 0; b < p.Batches; b++ {
		if err := env.Ctx.Err(); err != nil {
			return nil, err
		}
		batch := workload.ChangeBatch(rng, p.Vertices, p.BatchSize, p.Zipf, p.RemoveFrac)
		if _, err := sel.ApplyBatch(batch); err != nil {
			return nil, err
		}
		applied++
	}
	dist, err := sel.Distances()
	if err != nil {
		return nil, err
	}
	reachable := make(map[int]int32, len(dist))
	for k, v := range dist {
		reachable[k] = v
	}
	return map[string]any{
		"distances": reachable,
		"batches":   applied,
		"resumed":   false,
	}, nil
}

// --- SUMMA -----------------------------------------------------------------

type summaParams struct {
	N            int   `json:"n"`
	Grid         int   `json:"grid"`
	Seed         int64 `json:"seed"`
	Synchronized bool  `json:"synchronized"`
}

func (p *summaParams) normalize() {
	if p.N <= 0 {
		p.N = 48
	}
	if p.Grid < 2 {
		p.Grid = 3
	}
}

// runSUMMA multiplies two seeded dense matrices with the paper's §V-B SUMMA
// pattern. The workload builds its own engine, so the slot's observer
// options are passed through; cancellation reaches it via MultiplyContext.
// Not checkpoint-resumable (no-sync by default); Resume re-runs from seed.
func runSUMMA(env RunEnv) (any, error) {
	var p summaParams
	if err := decodeParams(env.Params, &p); err != nil {
		return nil, err
	}
	p.normalize()

	rng := workload.DeriveRand(p.Seed, "summa."+env.JobID)
	a := matrix.Random(rng, p.N, p.N)
	b := matrix.Random(rng, p.N, p.N)
	stateTable := env.Prefix + ".summa"
	dropTables(env.Store, stateTable)
	out, err := summa.MultiplyContext(env.Ctx, env.Store, summa.Config{
		Name:          env.Prefix + ".summa",
		Grid:          p.Grid,
		Synchronized:  p.Synchronized,
		StateTable:    stateTable,
		EngineOptions: env.EngineOptions,
	}, a, b)
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for _, v := range out.C.Data {
		sum += v
	}
	return map[string]any{
		"rows":     out.C.Rows,
		"cols":     out.C.Cols,
		"checksum": math.Round(sum*1e6) / 1e6,
		"resumed":  false,
	}, nil
}

// decodeParams decodes a params document strictly: unknown fields are
// submission errors, not silent typos.
func decodeParams(raw json.RawMessage, into any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("serve: bad params: %w", err)
	}
	return nil
}

package httpx

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeFailsFastOnBadAddress(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", http.NewServeMux()); err == nil {
		t.Fatal("Serve on a bad address succeeded")
	}
	// An occupied port must fail the second bind synchronously.
	s, err := Serve("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if _, err := Serve(s.Addr(), http.NewServeMux()); err == nil {
		t.Fatalf("second bind of %s succeeded", s.Addr())
	}
}

func TestServeAndGracefulShutdown(t *testing.T) {
	mux := http.NewServeMux()
	slow := make(chan struct{})
	mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "pong")
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		<-slow
		_, _ = io.WriteString(w, "late")
	})
	s, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("ping = %q", body)
	}

	// A request in flight when Shutdown starts must still complete.
	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		b, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		got <- string(b)
	}()
	time.Sleep(50 * time.Millisecond) // let the slow request arrive
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	time.Sleep(50 * time.Millisecond)
	close(slow)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if body := <-got; body != "late" {
		t.Fatalf("in-flight request during shutdown = %q", body)
	}

	// After shutdown the port no longer accepts.
	if _, err := http.Get("http://" + s.Addr() + "/ping"); err == nil {
		t.Fatal("request after shutdown succeeded")
	}
}

func TestShutdownDeadlineForcesClose(t *testing.T) {
	mux := http.NewServeMux()
	started := make(chan struct{}, 1)
	mux.HandleFunc("/hang", func(w http.ResponseWriter, _ *http.Request) {
		started <- struct{}{}
		time.Sleep(10 * time.Second) // never finishes within the test
	})
	s, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, err := http.Get("http://" + s.Addr() + "/hang")
		_ = err // the hard close surfaces as a client error; expected
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	doneAt := time.Now()
	if err := s.Shutdown(ctx); err != nil && !strings.Contains(err.Error(), "closed") {
		t.Fatalf("shutdown: %v", err)
	}
	if el := time.Since(doneAt); el > 5*time.Second {
		t.Fatalf("shutdown with an expired deadline took %v", el)
	}
}

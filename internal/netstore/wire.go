// Package netstore serves Ripple's store and mq SPIs from standalone
// part-server processes over a framed-TCP transport, proving the paper's
// thesis — that the narrow SPIs make the storage layer swappable — across a
// real network boundary.
//
// The wire format reuses the pooled tagged codec: every RPC is one `frame`
// (request) answered by one `frame` (response), each codec-encoded and
// length-prefixed on the socket. Keys and values cross the wire as opaque
// codec encodings, so the servers never need the client's Go types; part
// placement is computed client-side by rendezvous hashing over the server
// list, which keeps every table co-placed by part index (the ShardView
// co-placement contract) without any server-side coordination.
//
// The client mounts behind the existing SPI interfaces (kvstore.Store,
// mq.Queuing) with per-request deadlines, bounded seeded-jitter retries,
// heartbeat failure detection, and replica failover that feeds the engine's
// heal/checkpoint-restore path via the Healer and FailureSensor
// capabilities.
package netstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/mq"
)

// Wire opcodes. The opcode set is the transport's whole vocabulary: the
// narrow SPIs translate to under twenty request kinds.
const (
	opPing        uint8 = iota + 1 // liveness + boot identity (Aux = bootID)
	opCreateTable                  // Name, Part = parts, Flag = ubiquitous, Aux = ordered
	opDropTable                    // Name
	opLookupTable                  // Name; response mirrors opCreateTable's fields
	opTables                       // response Pairs carry table names in creation order
	opGet                          // Name, Part, Key; response Val, Flag = found
	opPut                          // Name, Part, Key, Val
	opDelete                       // Name, Part, Key
	opLen                          // Name, Part; response Aux = pairs in part
	opSnapshot                     // Name, Part; response Pairs = every pair in part
	opClearPart                    // Name, Part
	opPutBatch                     // Name, Part, Pairs
	opMQCreate                     // Name, Part = queues
	opMQDelete                     // Name
	opMQPut                        // Name, Part = queue, Val = message
	opMQRead                       // Name, Part = queue, Aux = timeout ns; response Val, Flag = ok
	opMQLen                        // Name, Part = queue; response Aux = queued messages
	opMQClose                      // Name

	// Admin telemetry ops: the fleet observability plane rides the same
	// codec and connections as data. Payloads are JSON in Val — telemetry
	// is low-rate and schema-evolving, so self-describing beats fast here.
	opStats     // response Val = JSON ServerStats (counters + endpoint histograms)
	opTraceDump // Aux = span-seq cursor; response Val = JSON TraceDump (spans after cursor)
	opHealth    // response Val = JSON ServerHealth (boot identity, uptime, load)
)

// opNames label the endpoints in metrics and trace spans.
var opNames = map[uint8]string{
	opPing:        "ping",
	opCreateTable: "create_table",
	opDropTable:   "drop_table",
	opLookupTable: "lookup_table",
	opTables:      "tables",
	opGet:         "get",
	opPut:         "put",
	opDelete:      "delete",
	opLen:         "len",
	opSnapshot:    "snapshot",
	opClearPart:   "clear_part",
	opPutBatch:    "put_batch",
	opMQCreate:    "mq_create",
	opMQDelete:    "mq_delete",
	opMQPut:       "mq_put",
	opMQRead:      "mq_read",
	opMQLen:       "mq_len",
	opMQClose:     "mq_close",
	opStats:       "stats",
	opTraceDump:   "trace_dump",
	opHealth:      "health",
}

func opName(op uint8) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op%d", op)
}

// OpName names a wire opcode for logs and fault records (injectors receive
// raw opcodes).
func OpName(op uint8) string { return opName(op) }

// IsPing reports whether op is the heartbeat opcode, which fault injectors
// treat specially (partition windows apply, rate faults do not).
func IsPing(op uint8) bool { return op == opPing }

// Canonical error codes. Server-side errors cross the wire as a code plus
// the message text, and the client reconstructs an error wrapping the
// matching canonical sentinel — errors.Is keeps working across the network
// exactly as it does in-process.
const (
	errNone uint8 = iota
	errCodeOther
	errCodeNoTable
	errCodeTableExists
	errCodeBadPart
	errCodeClosed
	errCodeTransient
	errCodeNoQueue
	errCodeMQExists
	errCodeMQClosed
	errCodeMQTransient
)

// errCodeOf classifies an error into its wire code.
func errCodeOf(err error) uint8 {
	switch {
	case err == nil:
		return errNone
	case errors.Is(err, kvstore.ErrNoTable):
		return errCodeNoTable
	case errors.Is(err, kvstore.ErrTableExists):
		return errCodeTableExists
	case errors.Is(err, kvstore.ErrBadPart):
		return errCodeBadPart
	case errors.Is(err, kvstore.ErrClosed):
		return errCodeClosed
	case errors.Is(err, kvstore.ErrTransient):
		return errCodeTransient
	case errors.Is(err, mq.ErrNoQueue):
		return errCodeNoQueue
	case errors.Is(err, mq.ErrExists):
		return errCodeMQExists
	case errors.Is(err, mq.ErrClosed):
		return errCodeMQClosed
	case errors.Is(err, mq.ErrTransient):
		return errCodeMQTransient
	default:
		return errCodeOther
	}
}

// errFromCode reconstructs a client-side error from a response's code and
// message, wrapping the canonical sentinel the server classified.
func errFromCode(code uint8, msg string) error {
	switch code {
	case errNone:
		return nil
	case errCodeNoTable:
		return fmt.Errorf("netstore: %s: %w", msg, kvstore.ErrNoTable)
	case errCodeTableExists:
		return fmt.Errorf("netstore: %s: %w", msg, kvstore.ErrTableExists)
	case errCodeBadPart:
		return fmt.Errorf("netstore: %s: %w", msg, kvstore.ErrBadPart)
	case errCodeClosed:
		return fmt.Errorf("netstore: %s: %w", msg, kvstore.ErrClosed)
	case errCodeTransient:
		return fmt.Errorf("netstore: %s: %w", msg, kvstore.ErrTransient)
	case errCodeNoQueue:
		return fmt.Errorf("netstore: %s: %w", msg, mq.ErrNoQueue)
	case errCodeMQExists:
		return fmt.Errorf("netstore: %s: %w", msg, mq.ErrExists)
	case errCodeMQClosed:
		return fmt.Errorf("netstore: %s: %w", msg, mq.ErrClosed)
	case errCodeMQTransient:
		return fmt.Errorf("netstore: %s: %w", msg, mq.ErrTransient)
	default:
		return fmt.Errorf("netstore: remote error: %s", msg)
	}
}

// wirePair is one key/value pair in its opaque encoded form.
type wirePair struct {
	K, V []byte
}

// frame is the transport's single message shape, for requests and responses
// alike. Field use is per-opcode (see the opcode comments); unused fields
// encode compactly as zero values.
type frame struct {
	ID    uint64     // request/response correlation, per connection
	Op    uint8      // opcode
	Code  uint8      // response error code (errNone on success and requests)
	Flag  bool       // boolean payload: found / ok / ubiquitous
	Name  string     // table or queue-set name
	Part  int        // part / queue index (also: parts on create)
	Aux   int64      // op-specific integer (timeout ns, lengths, bootID, ordered)
	Key   []byte     // opaque encoded key
	Val   []byte     // opaque encoded value / message / error text on errors
	Pairs []wirePair // snapshot / batch payload
	Trace uint64     // causal trace ID bound by the engine (0 = untraced)
	Span  uint64     // client-side parent span for server span linkage
}

// errText is the response's error message (carried in Val to keep the frame
// field count down).
func (f *frame) errText() string { return string(f.Val) }

func errFrame(req frame, err error) frame {
	return frame{ID: req.ID, Op: req.Op, Code: errCodeOf(err), Val: []byte(err.Error())}
}

// The frame codec: a fast path over the pooled tagged codec, following the
// engine's own wire.go idiom. Registration order assigns the wire tag, so
// this init must stay the package's only RegisterFast call site.
func init() {
	codec.RegisterFast(frame{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			f := v.(frame)
			e.Uvarint(f.ID)
			e.Byte(f.Op)
			e.Byte(f.Code)
			if f.Flag {
				e.Byte(1)
			} else {
				e.Byte(0)
			}
			e.String(f.Name)
			e.Int(f.Part)
			e.Varint(f.Aux)
			e.Uvarint(uint64(len(f.Key)))
			e.Append(f.Key)
			e.Uvarint(uint64(len(f.Val)))
			e.Append(f.Val)
			e.Uvarint(uint64(len(f.Pairs)))
			for _, p := range f.Pairs {
				e.Uvarint(uint64(len(p.K)))
				e.Append(p.K)
				e.Uvarint(uint64(len(p.V)))
				e.Append(p.V)
			}
			e.Uvarint(f.Trace)
			e.Uvarint(f.Span)
			return nil
		},
		Decode: func(d *codec.Decoder) (any, error) {
			var f frame
			var err error
			if f.ID, err = d.Uvarint(); err != nil {
				return nil, err
			}
			if f.Op, err = d.Byte(); err != nil {
				return nil, err
			}
			if f.Code, err = d.Byte(); err != nil {
				return nil, err
			}
			var b byte
			if b, err = d.Byte(); err != nil {
				return nil, err
			}
			f.Flag = b != 0
			if f.Name, err = d.String(); err != nil {
				return nil, err
			}
			if f.Part, err = d.Int(); err != nil {
				return nil, err
			}
			if f.Aux, err = d.Varint(); err != nil {
				return nil, err
			}
			if f.Key, err = decBytes(d); err != nil {
				return nil, err
			}
			if f.Val, err = decBytes(d); err != nil {
				return nil, err
			}
			n, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			if n > 0 {
				f.Pairs = make([]wirePair, 0, min(int(n), 1<<16))
				for i := uint64(0); i < n; i++ {
					var p wirePair
					if p.K, err = decBytes(d); err != nil {
						return nil, err
					}
					if p.V, err = decBytes(d); err != nil {
						return nil, err
					}
					f.Pairs = append(f.Pairs, p)
				}
			}
			if f.Trace, err = d.Uvarint(); err != nil {
				return nil, err
			}
			if f.Span, err = d.Uvarint(); err != nil {
				return nil, err
			}
			return f, nil
		},
		Copy: func(v any) (any, error) {
			f := v.(frame)
			f.Key = append([]byte(nil), f.Key...)
			f.Val = append([]byte(nil), f.Val...)
			pairs := make([]wirePair, len(f.Pairs))
			for i, p := range f.Pairs {
				pairs[i] = wirePair{K: append([]byte(nil), p.K...), V: append([]byte(nil), p.V...)}
			}
			f.Pairs = pairs
			return f, nil
		},
	})
}

// decBytes reads a uvarint-length byte field (nil when empty).
func decBytes(d *codec.Decoder) ([]byte, error) {
	s, err := d.String()
	if err != nil {
		return nil, err
	}
	if s == "" {
		return nil, nil
	}
	return []byte(s), nil
}

// maxFrame bounds one frame's encoded size; a length prefix beyond it is
// treated as a corrupt stream, not an allocation request.
const maxFrame = 64 << 20

// errBadFrame marks a corrupt or oversized frame on the stream.
var errBadFrame = errors.New("netstore: corrupt frame")

// writeFrame encodes f and writes it length-prefixed.
func writeFrame(w io.Writer, f frame) error {
	_, err := writeFrameN(w, f)
	return err
}

// writeFrameN is writeFrame reporting the wire bytes written (prefix
// included), for per-server wire accounting.
func writeFrameN(w io.Writer, f frame) (int, error) {
	body, err := codec.Encode(f)
	if err != nil {
		return 0, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return 4 + len(body), nil
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) (frame, error) {
	f, _, err := readFrameN(r)
	return f, err
}

// readFrameN is readFrame reporting the wire bytes consumed (prefix
// included), for per-server wire accounting.
func readFrameN(r io.Reader) (frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return frame{}, 0, fmt.Errorf("%w: %d byte frame", errBadFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, 0, err
	}
	v, err := codec.Decode(body)
	if err != nil {
		return frame{}, 0, fmt.Errorf("%w: %v", errBadFrame, err)
	}
	f, ok := v.(frame)
	if !ok {
		return frame{}, 0, fmt.Errorf("%w: decoded a %T", errBadFrame, v)
	}
	return f, 4 + int(n), nil
}

// WireFault is one injected fault decision for one frame crossing the wire.
// The zero WireFault is a clean delivery.
type WireFault struct {
	// DropConn tears the whole connection down before the frame is sent.
	DropConn bool
	// Drop silently loses the frame (the request times out client-side).
	Drop bool
	// Delay postpones the frame's delivery.
	Delay time.Duration
	// Dup delivers the frame twice (the duplicate response is shed by ID
	// correlation; a duplicated request re-executes server-side, modelling
	// an at-least-once retry).
	Dup bool
}

// WireInjector decides wire-level faults. Implementations must be safe for
// concurrent use; internal/chaos provides the deterministic seeded one.
// Heartbeat pings are exempt from Send/RecvFault (their timing is
// wall-clock-dependent, so faulting them would break schedule determinism)
// but do consult PingBlocked so one-way partitions still starve the
// failure detector.
type WireInjector interface {
	// SendFault is consulted once per data frame sent to server, in send
	// order (the per-server frame counter advances).
	SendFault(server int, op uint8) WireFault
	// RecvFault is consulted once per data response received from server.
	RecvFault(server int, op uint8) WireFault
	// PingBlocked reports whether a heartbeat crossing the wire in the given
	// direction is currently inside a partition window. It must not advance
	// any counters.
	PingBlocked(server int, toServer bool) bool
}

# Ripple build/test entry points. `make ci` is the full gate: lint, build,
# the race-enabled test run, a short chaos soak, a profiling smoke test, a
# causal-trace validation smoke, and the fleet observability smoke.

GO ?= go

# Fixed seed matrix for the soak gate: short by default so ci stays fast.
# Widen it for longer campaigns, e.g. `make soak SOAK_SEEDS=1,2,3,4,5,6,7,8`.
SOAK_SEEDS ?= 1,2,3

.PHONY: ci vet lint build test race bench codec-bench soak soak-net profile-smoke trace-validate fleet-smoke serve-smoke

ci: lint build race soak soak-net profile-smoke trace-validate fleet-smoke serve-smoke codec-bench

vet:
	$(GO) vet ./...

# Lint: staticcheck when it is installed, falling back to go vet (nothing is
# downloaded — CI images without staticcheck still get a gate).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; go vet only"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks, then a dated BENCH_<yyyymmdd>.json snapshot (ns/op + engine
# counters for one representative workload per experiment family) at the
# repo root.
bench:
	$(GO) test -bench . -benchtime 1x -run xxx .
	RIPPLE_BENCH_SNAPSHOT=1 $(GO) test -count=1 -run TestBenchSnapshot -v .

# Codec/data-plane microbenchmarks. In ci it runs as a build-only smoke
# (-benchtime 1x): regressions are tracked via the dated bench snapshot's
# marshalled_bytes/ns_per_op trajectory, not gated on wall-clock here.
codec-bench:
	$(GO) test -bench 'BenchmarkEncodeDecode|BenchmarkDeepCopy|BenchmarkEncodedSize' \
		-benchtime 1x -benchmem -run xxx ./internal/codec/
	$(GO) test -bench 'BenchmarkEncodeEnvelopeBatch|BenchmarkEncodeQueueMsg' \
		-benchtime 1x -benchmem -run xxx ./internal/ebsp/
	$(GO) test -bench BenchmarkBoundaryPut -benchtime 1x -benchmem -run xxx ./internal/memstore/

# Profiling smoke test: run the quickstart with -profile and validate the
# emitted Chrome trace parses and is non-empty via ripple-inspect.
profile-smoke:
	$(GO) run ./examples/quickstart -profile /tmp/ripple_profile_smoke.json
	$(GO) run ./cmd/ripple-inspect -profile /tmp/ripple_profile_smoke.json >/dev/null
	@echo "profile smoke: trace valid"

# Causal-trace validation smoke: run the quickstart with head sampling on,
# then reconstruct every job's causal chain from the span dump and require
# each to be complete (loader -> steps -> job end, no unresolved edges) with
# at least one chain crossing a partition boundary — the no-sync relay
# included.
trace-validate:
	$(GO) run ./examples/quickstart -trace /tmp/ripple_trace_smoke.jsonl >/dev/null
	$(GO) run ./cmd/ripple-inspect -trace /tmp/ripple_trace_smoke.jsonl -lineage -check >/dev/null
	@echo "trace validate: causal chains complete"

# Race-enabled end-to-end chaos soak: PageRank + SUMMA to their fault-free
# answers under transient faults, duplication, jitter, and primary kills;
# plus the out-of-core leg — PageRank at ~30x the LSM memtable budget under
# disk.* faults, with a mid-job kill resumed from its checkpoint.
soak:
	RIPPLE_SOAK_SEEDS=$(SOAK_SEEDS) $(GO) test -race -count=1 \
		-run 'TestSoakUnderChaos|TestOutOfCore|TestEngineAutoRecoversFromPrimaryKill|TestNoSyncSurvivesDuplicationAndJitter' \
		./internal/chaos/ ./internal/ebsp/

# Fleet observability smoke: two real part-server processes, a traced
# PageRank through them, telemetry pulled over the admin ops, the merged
# clock-aligned timeline validated by ripple-inspect -fleet -check, and the
# SIGTERM shutdown flush checked for the final stats span.
fleet-smoke:
	sh scripts/fleet_smoke.sh $(GO)

# Job-service smoke: a real ripple-serve daemon over a disk store — submit
# PageRank over HTTP, stream SSE, SIGKILL the daemon mid-job, restart it on
# the same data directory, and require the resumed job to finish with result
# bytes identical to an uninterrupted control run; plus /metrics scrape, the
# two-tenant quota 429s, and DELETE-cancel inside one barrier.
serve-smoke:
	$(GO) test -count=1 -run TestServeSmoke ./internal/serve/

# Process-kill network soak: the SSSP full-scan workload against real
# ripple-part-server child processes over loopback while the chaos schedule
# SIGKILLs one mid-step and opens a one-way partition against another; the
# final table must be byte-identical to the same workload on an in-process
# store. Also exercises the wire-fault injector against an in-process fleet.
soak-net:
	$(GO) test -race -count=1 \
		-run 'TestProcessKillSoak|TestWireChaosAgainstFleet' \
		./internal/netstore/ ./internal/chaos/

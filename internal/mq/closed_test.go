package mq

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPutOnClosedSetReturnsErrClosed(t *testing.T) {
	sys, tab := newSystem(t, 2)
	qs, _ := sys.CreateQueueSet("q", tab)
	if err := qs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := qs.Put(0, "m"); !errors.Is(err, ErrClosed) {
		t.Errorf("Put err = %v, want ErrClosed", err)
	}
	if err := qs.PutLocal(1, "m"); !errors.Is(err, ErrClosed) {
		t.Errorf("PutLocal err = %v, want ErrClosed", err)
	}
}

func TestReadDrainsQueueBeforeErrClosed(t *testing.T) {
	sys, tab := newSystem(t, 1)
	qs, _ := sys.CreateQueueSet("q", tab)
	_ = qs.Put(0, "a")
	_ = qs.Put(0, "b")
	if err := qs.Close(); err != nil {
		t.Fatal(err)
	}
	r := readerFor(qs, 0)
	for _, want := range []string{"a", "b"} {
		msg, ok, err := r.Read(time.Second)
		if !ok || err != nil || msg != want {
			t.Fatalf("Read = %v, %v, %v; want %q", msg, ok, err, want)
		}
	}
	if _, ok, err := r.Read(time.Second); ok || !errors.Is(err, ErrClosed) {
		t.Errorf("drained Read = ok=%v err=%v, want ErrClosed", ok, err)
	}
	if _, ok, err := r.TryRead(); ok || !errors.Is(err, ErrClosed) {
		t.Errorf("drained TryRead = ok=%v err=%v, want ErrClosed", ok, err)
	}
}

func TestCloseConcurrentWithPutNeverDropsSilently(t *testing.T) {
	// Every racing Put either delivers its message or reports ErrClosed;
	// accepted == delivered, with no silent loss in between.
	for round := 0; round < 20; round++ {
		sys, tab := newSystem(t, 1)
		qs, _ := sys.CreateQueueSet("q", tab)
		const senders, per = 8, 50
		var accepted atomic.Int64
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					err := qs.Put(0, i)
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrClosed):
					default:
						t.Errorf("Put err = %v", err)
						return
					}
				}
			}()
		}
		go func() {
			time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
			_ = qs.Close()
		}()
		wg.Wait()
		r := readerFor(qs, 0)
		var delivered int64
		for {
			_, ok, err := r.Read(time.Second)
			if !ok {
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("Read err = %v, want ErrClosed after drain", err)
				}
				break
			}
			delivered++
		}
		if delivered != accepted.Load() {
			t.Fatalf("round %d: accepted %d puts, delivered %d", round, accepted.Load(), delivered)
		}
		_ = sys.DeleteQueueSet("q")
	}
}

// jitterFaults delays every 3rd put and duplicates every 4th — a worst case
// for ordering, since delayed and undelayed messages interleave.
type jitterFaults struct {
	n atomic.Int64
}

func (f *jitterFaults) PutFault(set string, queue int) Fault {
	n := f.n.Add(1)
	var fault Fault
	if n%3 == 0 {
		fault.Delay = time.Duration(n%7) * 100 * time.Microsecond
	}
	if n%4 == 0 {
		fault.Duplicates = 1
	}
	return fault
}

func TestFIFOSurvivesJitterAndDuplication(t *testing.T) {
	_, tab := newSystem(t, 1)
	sys := NewSystem(WithFaults(&jitterFaults{}))
	qs, _ := sys.CreateQueueSet("q", tab)
	const msgs = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < msgs; i++ {
			if err := qs.Put(0, i); err != nil {
				t.Errorf("Put %d: %v", i, err)
				return
			}
		}
	}()

	r := readerFor(qs, 0)
	seen := make(map[int]int)
	last := -1
	for len(seen) < msgs {
		raw, ok, err := r.Read(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("timed out with %d of %d distinct messages", len(seen), msgs)
		}
		m := raw.(int)
		seen[m]++
		// FIFO per sender: the stream may repeat (duplicates arrive adjacent
		// to their original) but must never go backwards past a fresh value.
		if m < last && seen[m] == 1 {
			t.Fatalf("fresh message %d arrived after %d", m, last)
		}
		if m > last {
			if m != last+1 {
				t.Fatalf("gap: %d arrived after %d", m, last)
			}
			last = m
		}
	}
	<-done
	dups := 0
	for _, c := range seen {
		dups += c - 1
	}
	if dups == 0 {
		t.Error("fault injector produced no duplicates")
	}
}

package codec

// encodeGobOnly forces the gob fallback frame for any value, so equivalence
// tests can compare fast-path and fallback decodings of the same value.
func encodeGobOnly(v any) ([]byte, error) {
	e := getEncoder()
	defer putEncoder(e)
	if err := e.encodeGob(v); err != nil {
		return nil, err
	}
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out, nil
}

package mapreduce

import (
	"fmt"

	"ripple/internal/ebsp"
)

// IteratedJob repeatedly refines one dataset with the same map-reduce
// couplet — the workload shape (PageRank and friends) whose costs motivate
// Ripple (paper §I): every iteration pays two synchronizations and an extra
// round of I/O through the state table between reduce and the following map.
type IteratedJob struct {
	// Name labels the job.
	Name string
	// Table names the dataset being refined in place: map reads it, reduce
	// writes it.
	Table string
	// Mapper maps each (key, state) pair of the dataset.
	Mapper Mapper
	// Reducer folds the shuffled values and emits the key's new state.
	Reducer Reducer
	// Combiner optionally combines intermediate values.
	Combiner Combiner
	// Aggregators are readable across iterations.
	Aggregators map[string]ebsp.Aggregator
	// MaxIterations bounds the iteration count (required unless Converged).
	MaxIterations int
	// Converged, if set, is consulted after each iteration with that
	// iteration's aggregate results; returning true stops the job.
	Converged func(iteration int, aggregates map[string]any) bool
	// FreshJobPerIteration runs every iteration as its own job — paying the
	// full job setup, load, and export cost each time, like a driver looping
	// over Hadoop jobs. The default chains iterations inside one job (two
	// steps per iteration).
	FreshJobPerIteration bool
}

// Summary reports an iterated execution.
type Summary struct {
	// Iterations actually executed.
	Iterations int
	// Steps is the total number of BSP steps across all jobs.
	Steps int
	// Aggregates holds the last iteration's aggregate results.
	Aggregates map[string]any
	// Converged reports whether the Converged hook stopped the job.
	Converged bool
}

func (j *IteratedJob) validate() error {
	switch {
	case j.Mapper == nil:
		return fmt.Errorf("%w: no mapper", ErrBadJob)
	case j.Reducer == nil:
		return fmt.Errorf("%w: no reducer", ErrBadJob)
	case j.Table == "":
		return fmt.Errorf("%w: no dataset table", ErrBadJob)
	case j.MaxIterations <= 0 && j.Converged == nil:
		return fmt.Errorf("%w: unbounded iteration (no MaxIterations, no Converged)", ErrBadJob)
	}
	return nil
}

// RunIterated executes an iterated map-reduce job.
func RunIterated(e *ebsp.Engine, job *IteratedJob) (*Summary, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if _, ok := e.Store().LookupTable(job.Table); !ok {
		return nil, fmt.Errorf("mapreduce: dataset table %q does not exist", job.Table)
	}
	if job.FreshJobPerIteration {
		return runIteratedFresh(e, job)
	}
	return runIteratedChained(e, job)
}

// runIteratedChained runs all iterations inside one EBSP job, alternating
// map-like and reduce-like steps (the paper's "MapReduce variant" shape:
// state flows in messages from map to reduce, and through the K/V table from
// reduce to the following map).
func runIteratedChained(e *ebsp.Engine, job *IteratedJob) (*Summary, error) {
	compute := &iterCompute{job: job}
	spec := &ebsp.Job{
		Name:        job.Name,
		StateTables: []string{job.Table},
		Compute:     compute,
		Aggregators: job.Aggregators,
		Loaders: []ebsp.Loader{&ebsp.TableLoader{
			Table: job.Table,
			Store: e.Store(),
			Each: func(k, _ any, lc *ebsp.LoadContext) error {
				lc.Enable(k)
				return nil
			},
		}},
	}
	if job.MaxIterations > 0 {
		spec.MaxSteps = 2 * job.MaxIterations
	}
	if job.Combiner != nil {
		spec.Combiner = mrCombiner{c: job.Combiner}
	}
	if job.Converged != nil {
		spec.Aborter = ebsp.AborterFunc(func(step int, aggs map[string]any) bool {
			if step%2 != 0 {
				return false // only check at iteration (reduce) boundaries
			}
			return job.Converged(step/2, aggs)
		})
	}
	res, err := e.Run(spec)
	if err != nil {
		return nil, err
	}
	return &Summary{
		Iterations: res.Steps / 2,
		Steps:      res.Steps,
		Aggregates: res.Aggregates,
		Converged:  res.Aborted,
	}, nil
}

// iterCompute alternates map (odd steps, dataset read from the table) and
// reduce (even steps, dataset written back to the table).
type iterCompute struct {
	job *IteratedJob
}

func (m *iterCompute) Compute(ctx *ebsp.Context) bool {
	if ctx.StepNum()%2 == 1 { // map-like step: full scan of the dataset
		state, ok := ctx.ReadState(0)
		if !ok {
			return false // key vanished from the dataset
		}
		if err := runMap(m.job.Mapper, ctx, state, func(k, v any) {
			ctx.Send(k, mrMsg{Val: v})
		}); err != nil {
			panic(fmt.Sprintf("mapreduce: map %v: %v", ctx.Key(), err))
		}
		return true // the reduce step follows unconditionally
	}
	// Reduce-like step.
	msgs := ctx.InputMessages()
	values := make([]any, 0, len(msgs))
	for _, raw := range msgs {
		values = append(values, raw.(mrMsg).Val)
	}
	err := runReduce(m.job.Reducer, ctx, values, func(k, v any) {
		if k == ctx.Key() {
			ctx.WriteState(0, v)
		} else {
			ctx.CreateState(0, k, v)
		}
	})
	if err != nil {
		panic(fmt.Sprintf("mapreduce: reduce %v: %v", ctx.Key(), err))
	}
	return true // enable the next iteration's map step
}

// runIteratedFresh launches a brand-new 2-step job per iteration, the way an
// external driver loops over Hadoop jobs (used by the full-scan SSSP variant
// of §V-C).
func runIteratedFresh(e *ebsp.Engine, job *IteratedJob) (*Summary, error) {
	sum := &Summary{}
	for iter := 1; job.MaxIterations <= 0 || iter <= job.MaxIterations; iter++ {
		res, err := Run(e, &Job{
			Name:        fmt.Sprintf("%s.iter%d", job.Name, iter),
			Input:       job.Table,
			Output:      job.Table,
			Mapper:      job.Mapper,
			Reducer:     job.Reducer,
			Combiner:    job.Combiner,
			Aggregators: job.Aggregators,
		})
		if err != nil {
			return nil, fmt.Errorf("mapreduce: iteration %d: %w", iter, err)
		}
		sum.Iterations = iter
		sum.Steps += res.Steps
		sum.Aggregates = res.Aggregates
		if job.Converged != nil && job.Converged(iter, res.Aggregates) {
			sum.Converged = true
			break
		}
	}
	return sum, nil
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the /v1 job API. Tenancy is the X-API-Key header (absent
// means the shared "anonymous" tenant); the key is an identity for quota
// accounting, not an authentication secret.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"workloads": Workloads()})
	})
	return mux
}

func tenantOf(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	return "anonymous"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}

// submitRequest is POST /v1/jobs' body.
type submitRequest struct {
	Workload string          `json:"workload"`
	Params   json.RawMessage `json:"params,omitempty"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	rec, err := s.Submit(tenantOf(r), req.Workload, req.Params)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownWorkload):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrQuotaExceeded), errors.Is(err, ErrQueueFull):
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	raw, err := s.Result(r.PathValue("id"))
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(raw)
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNotFinished):
		writeError(w, http.StatusConflict, err)
	default:
		// Failed or canceled: the error carries the story.
		writeError(w, http.StatusConflict, err)
	}
}

// handleEvents streams the job's events as SSE: the buffered history first
// (late subscribers see the whole run), then live events until the terminal
// status event or client disconnect.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Get(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("serve: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := s.hub.subscribe(id)
	defer cancel()
	for _, ev := range replay {
		if done := writeSSE(w, flusher, ev); done {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-live:
			if done := writeSSE(w, flusher, ev); done {
				return
			}
		}
	}
}

// writeSSE emits one event and reports whether the stream should end (the
// event was terminal).
func writeSSE(w http.ResponseWriter, flusher http.Flusher, ev Event) bool {
	data, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data)
	flusher.Flush()
	return ev.terminal()
}

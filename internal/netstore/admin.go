package netstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"ripple/internal/metrics"
	"ripple/internal/trace"
)

// Admin telemetry ops: opStats, opTraceDump, and opHealth ride the same
// framed codec and connections as data, so observing a fleet needs no side
// channel — and telemetry inherits the transport's fault tolerance (pinned
// bounded retries) for free. Payloads are JSON in frame.Val: telemetry is
// low-rate and its schema evolves, so self-describing wins over fast here.

// ServerStats is the opStats payload: a part-server's counters, per-endpoint
// service-time histograms, and trace-ring state, in one snapshot.
type ServerStats struct {
	BootID       int64                                `json:"boot_id"`
	UptimeNS     int64                                `json:"uptime_ns"`
	MonoNowNS    int64                                `json:"mono_now_ns"` // span-clock now, for offline alignment
	Counters     metrics.Snapshot                     `json:"counters"`
	Endpoints    map[string]metrics.HistogramSnapshot `json:"endpoints,omitempty"`
	TraceSpans   int                                  `json:"trace_spans"`
	TraceSeq     uint64                               `json:"trace_seq"`
	TraceDropped uint64                               `json:"trace_dropped"`
	WireInBytes  int64                                `json:"wire_in_bytes"`
	WireOutBytes int64                                `json:"wire_out_bytes"`
	Goroutines   int                                  `json:"goroutines"`
	HeapBytes    uint64                               `json:"heap_bytes"`
}

// ServerHealth is the opHealth payload: boot identity and the
// detector-relevant load state of one part-server.
type ServerHealth struct {
	BootID       int64    `json:"boot_id"`
	UptimeNS     int64    `json:"uptime_ns"`
	MonoNowNS    int64    `json:"mono_now_ns"`
	Tables       []string `json:"tables,omitempty"`
	QueueSets    int      `json:"queue_sets"`
	Conns        int      `json:"conns"`
	WireInBytes  int64    `json:"wire_in_bytes"`
	WireOutBytes int64    `json:"wire_out_bytes"`
	Goroutines   int      `json:"goroutines"`
	HeapBytes    uint64   `json:"heap_bytes"`
}

// TraceDump is the opTraceDump payload: the server's trace-ring tail past
// the request cursor. Cursor is the new cursor to pass on the next poll;
// Dropped grows when ring wraparound lost spans between polls.
type TraceDump struct {
	BootID    int64        `json:"boot_id"`
	MonoNowNS int64        `json:"mono_now_ns"`
	Cursor    uint64       `json:"cursor"`
	Dropped   uint64       `json:"dropped"`
	Spans     []trace.Span `json:"spans,omitempty"`
}

// monoNow is the server's span-clock now: nanoseconds on the same monotonic
// base its trace spans' At offsets use (the tracer's start, or the server's
// start when untraced). Ping responses carry it so clients can estimate this
// server's clock offset without a time protocol.
func (s *Server) monoNow() int64 {
	if s.tr != nil {
		return int64(time.Since(s.tr.WallStart()))
	}
	return int64(time.Since(s.start))
}

func (s *Server) statsFrame() (frame, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := ServerStats{
		BootID:       s.bootID,
		UptimeNS:     int64(time.Since(s.start)),
		MonoNowNS:    s.monoNow(),
		Counters:     s.met.Snapshot(),
		Endpoints:    s.met.EndpointSnapshots(),
		TraceSpans:   s.tr.Len(),
		TraceSeq:     s.tr.Seq(),
		TraceDropped: s.tr.Dropped(),
		WireInBytes:  s.wireIn.Load(),
		WireOutBytes: s.wireOut.Load(),
		Goroutines:   runtime.NumGoroutine(),
		HeapBytes:    ms.HeapAlloc,
	}
	body, err := json.Marshal(st)
	if err != nil {
		return frame{}, err
	}
	return frame{Val: body}, nil
}

func (s *Server) traceDumpFrame(cursor uint64) (frame, error) {
	spans := s.tr.SnapshotSince(cursor)
	next := cursor
	if n := len(spans); n > 0 {
		next = spans[n-1].Seq
	}
	dump := TraceDump{
		BootID:    s.bootID,
		MonoNowNS: s.monoNow(),
		Cursor:    next,
		Dropped:   s.tr.Dropped(),
		Spans:     spans,
	}
	body, err := json.Marshal(dump)
	if err != nil {
		return frame{}, err
	}
	return frame{Val: body, Aux: int64(next)}, nil
}

func (s *Server) healthFrame() (frame, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	tables := make([]string, len(s.order))
	copy(tables, s.order)
	qsets := len(s.qsets)
	s.mu.Unlock()
	s.lnMu.Lock()
	conns := len(s.conns)
	s.lnMu.Unlock()
	h := ServerHealth{
		BootID:       s.bootID,
		UptimeNS:     int64(time.Since(s.start)),
		MonoNowNS:    s.monoNow(),
		Tables:       tables,
		QueueSets:    qsets,
		Conns:        conns,
		WireInBytes:  s.wireIn.Load(),
		WireOutBytes: s.wireOut.Load(),
		Goroutines:   runtime.NumGoroutine(),
		HeapBytes:    ms.HeapAlloc,
	}
	body, err := json.Marshal(h)
	if err != nil {
		return frame{}, err
	}
	return frame{Val: body}, nil
}

// --- client-side clock-offset estimation ---

// ClockOffset is the client's live estimate of one server's span-clock
// offset: serverAt + OffsetNS maps a server span's At onto the client
// tracer's timeline. ErrorNS bounds the estimate: half the best round-trip
// (the irreducible one-way ambiguity) plus the spread of the sample window
// (clock drift and scheduling jitter).
type ClockOffset struct {
	OffsetNS int64 `json:"offset_ns"`
	ErrorNS  int64 `json:"error_ns"`
	RTTNS    int64 `json:"rtt_ns"` // best round-trip in the window
	Samples  int   `json:"samples"`
}

// clockSamples per server retained for the offset estimate. Heartbeats are
// frequent, so a short window tracks drift while shedding outliers.
const clockSamples = 8

type clockSample struct {
	offset int64 // clientMid - serverMono, ns
	rtt    int64
}

// clockEst is one server's rolling sample window. Guarded by Client.clkMu.
type clockEst struct {
	samples [clockSamples]clockSample
	n, next int
}

// noteClockSample folds one heartbeat's (offset, rtt) observation into the
// server's window.
func (c *Client) noteClockSample(server int, offset, rtt int64) {
	c.clkMu.Lock()
	defer c.clkMu.Unlock()
	if c.clks == nil {
		c.clks = make([]clockEst, len(c.conns))
	}
	e := &c.clks[server]
	e.samples[e.next] = clockSample{offset: offset, rtt: rtt}
	e.next = (e.next + 1) % clockSamples
	if e.n < clockSamples {
		e.n++
	}
}

// estimate computes the window's verdict: the offset of the minimum-RTT
// sample (NTP's best-sample rule — the tighter the round trip, the tighter
// the midpoint bounds the server's clock), with an error of half that RTT
// plus the window's offset spread.
func (e *clockEst) estimate() ClockOffset {
	if e.n == 0 {
		return ClockOffset{}
	}
	best := e.samples[0]
	lo, hi := e.samples[0].offset, e.samples[0].offset
	for _, s := range e.samples[:e.n] {
		if s.rtt < best.rtt {
			best = s
		}
		if s.offset < lo {
			lo = s.offset
		}
		if s.offset > hi {
			hi = s.offset
		}
	}
	return ClockOffset{
		OffsetNS: best.offset,
		ErrorNS:  best.rtt/2 + (hi - lo),
		RTTNS:    best.rtt,
		Samples:  e.n,
	}
}

// ClockOffsets reports the current per-server clock-offset estimates, indexed
// by server. Servers with no successful heartbeat yet report zero samples.
func (c *Client) ClockOffsets() []ClockOffset {
	out := make([]ClockOffset, len(c.conns))
	c.clkMu.Lock()
	defer c.clkMu.Unlock()
	for i := range out {
		if c.clks != nil {
			out[i] = c.clks[i].estimate()
		}
	}
	return out
}

// clockBase is the client-side zero of the span timeline: the tracer's wall
// start when tracing, the client's dial time otherwise.
func (c *Client) clockBase() time.Time {
	if c.tr != nil {
		return c.tr.WallStart()
	}
	return c.started
}

// --- client-side admin calls ---

// ServerStatus is the failure detector's public view of one server, plus its
// clock-offset estimate — the row a live fleet view renders.
type ServerStatus struct {
	Server int         `json:"server"`
	Addr   string      `json:"addr"`
	Up     bool        `json:"up"`
	Cold   bool        `json:"cold"`
	BootID int64       `json:"boot_id"`
	Misses int         `json:"misses"`
	Clock  ClockOffset `json:"clock"`
}

// Addrs reports the fleet's server addresses in index order.
func (c *Client) Addrs() []string {
	out := make([]string, len(c.addrs))
	copy(out, c.addrs)
	return out
}

// ServerStatuses reports the failure detector's current verdict for every
// server, with clock-offset estimates attached.
func (c *Client) ServerStatuses() []ServerStatus {
	offs := c.ClockOffsets()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ServerStatus, len(c.states))
	for i, st := range c.states {
		out[i] = ServerStatus{
			Server: i, Addr: c.addrs[i],
			Up: st.up, Cold: st.cold, BootID: st.bootID, Misses: st.misses,
			Clock: offs[i],
		}
	}
	return out
}

// ServerStats pulls one server's metrics snapshot over the admin op. The
// call is pinned (bounded retries, no failover): stats from a different
// server would answer a different question.
func (c *Client) ServerStats(server int) (ServerStats, error) {
	var st ServerStats
	resp, err := c.pinnedRPC(server, frame{Op: opStats})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp.Val, &st); err != nil {
		return st, fmt.Errorf("netstore: stats from server %d: %w", server, err)
	}
	return st, nil
}

// ServerHealth pulls one server's health report over the admin op.
func (c *Client) ServerHealth(server int) (ServerHealth, error) {
	var h ServerHealth
	resp, err := c.pinnedRPC(server, frame{Op: opHealth})
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(resp.Val, &h); err != nil {
		return h, fmt.Errorf("netstore: health from server %d: %w", server, err)
	}
	return h, nil
}

// TraceDump drains one server's trace-ring tail past cursor. Pass the
// returned Cursor on the next poll to see each span exactly once.
func (c *Client) TraceDump(server int, cursor uint64) (TraceDump, error) {
	var d TraceDump
	resp, err := c.pinnedRPC(server, frame{Op: opTraceDump, Aux: int64(cursor)})
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(resp.Val, &d); err != nil {
		return d, fmt.Errorf("netstore: trace dump from server %d: %w", server, err)
	}
	return d, nil
}

// --- standalone admin client ---

// AdminClient is a minimal telemetry-only client for fleet dashboards and
// ripple-top: it dials lazily, requires no server to be up, runs no
// heartbeats, and shares nothing with the data path. Zero values of the
// payload structs come back with the error when a server is unreachable.
type AdminClient struct {
	addrs   []string
	conns   []*serverConn
	timeout time.Duration
	nextID  atomic.Uint64
}

// DialAdmin prepares an admin client for the given servers. No connection is
// made until the first call, and per-server failures are per-call errors —
// a degraded fleet can still be observed.
func DialAdmin(addrs []string, timeout time.Duration) *AdminClient {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	a := &AdminClient{addrs: append([]string(nil), addrs...), timeout: timeout}
	a.conns = make([]*serverConn, len(addrs))
	for i, addr := range addrs {
		a.conns[i] = newServerConn(addr, i, nil)
	}
	return a
}

// Servers reports the fleet size.
func (a *AdminClient) Servers() int { return len(a.conns) }

// Addrs reports the server addresses in index order.
func (a *AdminClient) Addrs() []string { return append([]string(nil), a.addrs...) }

// Close tears down every connection.
func (a *AdminClient) Close() {
	for _, sc := range a.conns {
		sc.close()
	}
}

func (a *AdminClient) call(server int, req frame) (frame, error) {
	if server < 0 || server >= len(a.conns) {
		return frame{}, fmt.Errorf("netstore: admin: no server %d", server)
	}
	req.ID = a.nextID.Add(1)
	resp, err := a.conns[server].call(req, a.timeout)
	if err != nil {
		return frame{}, err
	}
	if resp.Code != errNone {
		return frame{}, errFromCode(resp.Code, resp.errText())
	}
	return resp, nil
}

// Ping round-trips one server, returning its boot identity, the measured
// round-trip time, and the server's span-clock now.
func (a *AdminClient) Ping(server int) (bootID int64, rtt time.Duration, monoNow int64, err error) {
	t0 := time.Now()
	resp, err := a.call(server, frame{Op: opPing})
	if err != nil {
		return 0, 0, 0, err
	}
	rtt = time.Since(t0)
	if len(resp.Val) == 8 {
		monoNow = int64(binary.BigEndian.Uint64(resp.Val))
	}
	return resp.Aux, rtt, monoNow, nil
}

// Stats pulls one server's metrics snapshot.
func (a *AdminClient) Stats(server int) (ServerStats, error) {
	var st ServerStats
	resp, err := a.call(server, frame{Op: opStats})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp.Val, &st); err != nil {
		return st, fmt.Errorf("netstore: admin stats from server %d: %w", server, err)
	}
	return st, nil
}

// Health pulls one server's health report.
func (a *AdminClient) Health(server int) (ServerHealth, error) {
	var h ServerHealth
	resp, err := a.call(server, frame{Op: opHealth})
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(resp.Val, &h); err != nil {
		return h, fmt.Errorf("netstore: admin health from server %d: %w", server, err)
	}
	return h, nil
}

// TraceDump drains one server's trace-ring tail past cursor.
func (a *AdminClient) TraceDump(server int, cursor uint64) (TraceDump, error) {
	var d TraceDump
	resp, err := a.call(server, frame{Op: opTraceDump, Aux: int64(cursor)})
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(resp.Val, &d); err != nil {
		return d, fmt.Errorf("netstore: admin trace dump from server %d: %w", server, err)
	}
	return d, nil
}

package sssp

import (
	"fmt"
	"sort"

	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/workload"
)

// SelState is the selective variant's per-vertex state: two int arrays of
// the same length — one holds the ID of each neighbor, the other the
// distance value most recently received from that neighbor — plus the
// vertex's own annotation. The cache is what makes incrementality possible:
// a vertex need not hear from every neighbor in each iteration.
type SelState struct {
	Nbrs    []int32
	NbrDist []int32
	Dist    int32
}

// distMsg is the selective variant's message: the sender's ID as well as its
// current distance value. The job has no combiner.
type distMsg struct {
	From int32
	Dist int32
}

// Selective maintains distances with the selective-enablement variant.
type Selective struct {
	engine *ebsp.Engine
	table  string
	source int
	parts  int
}

// NewSelective creates a driver; Init must be called before ApplyBatch.
func NewSelective(engine *ebsp.Engine, table string, source, parts int) *Selective {
	return &Selective{engine: engine, table: table, source: source, parts: parts}
}

// Init loads the graph's structure into the state table (all annotations
// +∞, caches empty) and computes the initial distance values with one
// breadth-first wave from the source.
func (s *Selective) Init(g *workload.UndirectedGraph) error {
	if err := checkSource(s.source, g.NumVertices); err != nil {
		return err
	}
	opts := []kvstore.TableOption{}
	if s.parts > 0 {
		opts = append(opts, kvstore.WithParts(s.parts))
	}
	tab, err := s.engine.Store().CreateTable(s.table, opts...)
	if err != nil {
		return err
	}
	for u := 0; u < g.NumVertices; u++ {
		nbrs := g.Neighbors(u)
		cache := make([]int32, len(nbrs))
		for i := range cache {
			cache[i] = Inf
		}
		if err := tab.Put(u, SelState{Nbrs: nbrs, NbrDist: cache, Dist: Inf}); err != nil {
			return err
		}
	}
	_, err = s.runWave(waveDecrease, []any{s.source}, nil)
	return err
}

// Distances reads all current annotations.
func (s *Selective) Distances() (map[int]int32, error) {
	tab, ok := s.engine.Store().LookupTable(s.table)
	if !ok {
		return nil, fmt.Errorf("sssp: table %q missing", s.table)
	}
	pairs, err := kvstore.Dump(tab)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int32, len(pairs))
	for k, v := range pairs {
		out[k.(int)] = v.(SelState).Dist
	}
	return out, nil
}

// ApplyBatch applies one batch of primitive changes to the stored graph and
// updates the distance annotations (one wave, or two when the batch deletes
// edges).
func (s *Selective) ApplyBatch(batch []workload.Change) (*BatchStats, error) {
	tab, ok := s.engine.Store().LookupTable(s.table)
	if !ok {
		return nil, fmt.Errorf("sssp: table %q missing", s.table)
	}
	stats := &BatchStats{}
	wave1Seeds := map[int]bool{}
	wave2Seeds := map[int]bool{}
	for _, c := range batch {
		if c.U == c.V || c.U < 0 || c.V < 0 {
			continue
		}
		switch c.Kind {
		case workload.AddEdge:
			applied, err := s.addEdge(tab, c.U, c.V)
			if err != nil {
				return nil, err
			}
			if applied {
				stats.Applied++
				wave2Seeds[c.U] = true
				wave2Seeds[c.V] = true
			}
		case workload.RemoveEdge:
			applied, err := s.removeEdge(tab, c.U, c.V)
			if err != nil {
				return nil, err
			}
			if applied {
				stats.Applied++
				stats.HardCase = true
				wave1Seeds[c.U] = true
				wave1Seeds[c.V] = true
			}
		}
	}

	if stats.HardCase {
		invalidated := &ebsp.CollectExporter{}
		res, err := s.runWave(waveInvalidate, keysOf(wave1Seeds), invalidated)
		if err != nil {
			return nil, err
		}
		stats.Steps += res.Steps
		stats.Jobs++
		stats.Invalidated = invalidated.Len()
		for k := range invalidated.Pairs() {
			wave2Seeds[k.(int)] = true
		}
	}
	if len(wave2Seeds) > 0 {
		res, err := s.runWave(waveDecrease, keysOf(wave2Seeds), nil)
		if err != nil {
			return nil, err
		}
		stats.Steps += res.Steps
		stats.Jobs++
	}
	return stats, nil
}

func keysOf(set map[int]bool) []any {
	ks := make([]int, 0, len(set))
	for k := range set {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	out := make([]any, len(ks))
	for i, k := range ks {
		out[i] = k
	}
	return out
}

// addEdge inserts {u, v}, seeding each endpoint's cache with the other's
// current annotation. It reports whether the edge was new.
func (s *Selective) addEdge(tab kvstore.Table, u, v int) (bool, error) {
	su, ok, err := s.state(tab, u)
	if err != nil || !ok {
		return false, err
	}
	sv, ok, err := s.state(tab, v)
	if err != nil || !ok {
		return false, err
	}
	if indexOf(su.Nbrs, int32(v)) >= 0 {
		return false, nil // already present
	}
	su.Nbrs = append(su.Nbrs, int32(v))
	su.NbrDist = append(su.NbrDist, sv.Dist)
	sv.Nbrs = append(sv.Nbrs, int32(u))
	sv.NbrDist = append(sv.NbrDist, su.Dist)
	if err := tab.Put(u, su); err != nil {
		return false, err
	}
	if err := tab.Put(v, sv); err != nil {
		return false, err
	}
	return true, nil
}

// removeEdge deletes {u, v} from both endpoints' arrays.
func (s *Selective) removeEdge(tab kvstore.Table, u, v int) (bool, error) {
	su, ok, err := s.state(tab, u)
	if err != nil || !ok {
		return false, err
	}
	iu := indexOf(su.Nbrs, int32(v))
	if iu < 0 {
		return false, nil
	}
	sv, ok, err := s.state(tab, v)
	if err != nil || !ok {
		return false, err
	}
	iv := indexOf(sv.Nbrs, int32(u))
	su.Nbrs = cut(su.Nbrs, iu)
	su.NbrDist = cut(su.NbrDist, iu)
	if iv >= 0 {
		sv.Nbrs = cut(sv.Nbrs, iv)
		sv.NbrDist = cut(sv.NbrDist, iv)
	}
	if err := tab.Put(u, su); err != nil {
		return false, err
	}
	if err := tab.Put(v, sv); err != nil {
		return false, err
	}
	return true, nil
}

func (s *Selective) state(tab kvstore.Table, u int) (SelState, bool, error) {
	raw, ok, err := tab.Get(u)
	if err != nil || !ok {
		return SelState{}, false, err
	}
	return raw.(SelState), true, nil
}

func indexOf(xs []int32, x int32) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

func cut(xs []int32, i int) []int32 {
	out := make([]int32, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

// runWave runs one selective update wave as one EBSP job: only the seed
// vertices — and whatever their updates ripple into — are ever invoked.
func (s *Selective) runWave(wave int, seeds []any, invalidated *ebsp.CollectExporter) (*ebsp.Result, error) {
	job := &ebsp.Job{
		Name:        fmt.Sprintf("sssp.selective.%s.w%d", s.table, wave),
		StateTables: []string{s.table},
		Compute:     &selCompute{wave: wave, source: int32(s.source)},
		Loaders:     []ebsp.Loader{&ebsp.EnableLoader{Keys: seeds}},
	}
	if invalidated != nil {
		job.DirectOutput = invalidated
	}
	return s.engine.Run(job)
}

// selCompute is the selective variant's component function: apply incoming
// (sender, distance) messages to the neighbor-distance array, recompute the
// annotation, and propagate only if it changed.
type selCompute struct {
	wave   int
	source int32
}

func (sc *selCompute) Compute(ctx *ebsp.Context) bool {
	raw, ok := ctx.ReadState(0)
	if !ok {
		return false
	}
	st := raw.(SelState)
	stateChanged := false
	for _, m := range ctx.InputMessages() {
		dm := m.(distMsg)
		if i := indexOf(st.Nbrs, dm.From); i >= 0 && st.NbrDist[i] != dm.Dist {
			st.NbrDist[i] = dm.Dist
			stateChanged = true
		}
	}

	vid := int32(ctx.Key().(int))
	newDist := st.Dist
	switch sc.wave {
	case waveInvalidate:
		// Raise to +∞ when no remaining neighbor supports the annotation.
		if vid != sc.source && !supported(st.NbrDist, st.Dist) {
			newDist = Inf
		}
	case waveDecrease:
		if vid == sc.source {
			newDist = 0
		} else if m := minNeighbor(st.NbrDist); m < Inf && m+1 < newDist {
			newDist = m + 1
		}
	}

	if newDist != st.Dist {
		st.Dist = newDist
		stateChanged = true
		// A distance update is sent out along all the incident edges.
		for _, nbr := range st.Nbrs {
			ctx.Send(int(nbr), distMsg{From: vid, Dist: newDist})
		}
		if sc.wave == waveInvalidate && newDist >= Inf {
			ctx.DirectOutput(ctx.Key(), struct{}{})
		}
	}
	if stateChanged {
		ctx.WriteState(0, st)
	}
	return false
}

package chaos

import (
	"fmt"
	"sync"

	"ripple/internal/netstore"
)

// The Injector also implements netstore.WireInjector, so one schedule (and
// one seed) drives the SPI-level faults and the wire-level ones together.
//
// Frame clocks: each server has a send clock (data frames the client sends
// it) and a receive clock (data responses from it); heartbeat pings advance
// neither. Rate-based wire faults are seeded per (fault kind, server/op
// cell, per-cell index) — the same determinism contract as the SPI faults.
// Partition windows and scheduled process kills key off the raw frame
// clocks, which is what lets a harness kill a part-server mid-step at a
// reproducible point in the conversation.
var _ netstore.WireInjector = (*Injector)(nil)

// wireState is the Injector's wire-fault bookkeeping, created lazily so
// schedules without net faults pay nothing.
type wireState struct {
	mu         sync.Mutex
	sendFrames map[int]int64
	recvFrames map[int]int64
	partFired  []bool // partition window recorded
	killFired  []bool
	onNetKill  func(server int)
}

func (inj *Injector) wire() *wireState {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.wireSt == nil {
		inj.wireSt = &wireState{
			sendFrames: make(map[int]int64),
			recvFrames: make(map[int]int64),
			partFired:  make([]bool, len(inj.sched.Partitions)),
			killFired:  make([]bool, len(inj.sched.NetKills)),
		}
	}
	return inj.wireSt
}

// OnNetKill registers the callback fired (asynchronously, once per
// scheduled NetKill) when a kill's frame threshold is crossed. The harness
// uses it to kill the part-server child process mid-step.
func (inj *Injector) OnNetKill(fn func(server int)) {
	w := inj.wire()
	w.mu.Lock()
	w.onNetKill = fn
	w.mu.Unlock()
}

// SendFault implements netstore.WireInjector for client→server data frames.
func (inj *Injector) SendFault(server int, op uint8) netstore.WireFault {
	w := inj.wire()
	w.mu.Lock()
	n := w.sendFrames[server]
	w.sendFrames[server] = n + 1
	// Scheduled process kills fire on the send clock.
	var due []int
	for i, k := range inj.sched.NetKills {
		if !w.killFired[i] && k.Server == server && n >= k.AfterFrames {
			w.killFired[i] = true
			due = append(due, i)
		}
	}
	fn := w.onNetKill
	// One-way partition window, client→server direction.
	partitioned, firstHit := inj.inWindowLocked(w, true, server, n)
	w.mu.Unlock()

	for _, i := range due {
		k := inj.sched.NetKills[i]
		inj.record("netkill", fmt.Sprintf("s%d", k.Server), k.Server, k.AfterFrames)
		if fn != nil {
			go fn(k.Server)
		}
	}
	if partitioned {
		if firstHit {
			inj.record("partition", fmt.Sprintf("c2s:s%d", server), server, n)
		}
		return netstore.WireFault{Drop: true}
	}

	cellName := fmt.Sprintf("s%d/%s", server, netstore.OpName(op))
	if p := inj.sched.NetConnDropRate; p > 0 {
		if i, u := inj.roll("net.conn", cellName, server); u < p {
			inj.record("net.conn", cellName, server, i)
			return netstore.WireFault{DropConn: true}
		}
	}
	if p := inj.sched.NetDropRate; p > 0 {
		if i, u := inj.roll("net.drop", cellName, server); u < p {
			inj.record("net.drop", cellName, server, i)
			return netstore.WireFault{Drop: true}
		}
	}
	var f netstore.WireFault
	if p := inj.sched.NetDelayRate; p > 0 && inj.sched.NetDelay > 0 {
		if i, u := inj.roll("net.delay", cellName, server); u < p {
			inj.record("net.delay", cellName, server, i)
			f.Delay = inj.sched.NetDelay
		}
	}
	return f
}

// RecvFault implements netstore.WireInjector for server→client responses.
func (inj *Injector) RecvFault(server int, op uint8) netstore.WireFault {
	w := inj.wire()
	w.mu.Lock()
	n := w.recvFrames[server]
	w.recvFrames[server] = n + 1
	partitioned, firstHit := inj.inWindowLocked(w, false, server, n)
	w.mu.Unlock()

	if partitioned {
		if firstHit {
			inj.record("partition", fmt.Sprintf("s2c:s%d", server), server, n)
		}
		return netstore.WireFault{Drop: true}
	}
	cellName := fmt.Sprintf("s%d/%s", server, netstore.OpName(op))
	if p := inj.sched.NetLossRate; p > 0 {
		if i, u := inj.roll("net.loss", cellName, server); u < p {
			inj.record("net.loss", cellName, server, i)
			return netstore.WireFault{Drop: true}
		}
	}
	var f netstore.WireFault
	if p := inj.sched.NetDupRate; p > 0 {
		if i, u := inj.roll("net.dup", cellName, server); u < p {
			inj.record("net.dup", cellName, server, i)
			f.Dup = true
		}
	}
	return f
}

// PingBlocked implements netstore.WireInjector: heartbeats consult the
// partition windows (so a one-way partition starves the failure detector)
// without advancing the frame clocks (so schedules stay deterministic in
// data-frame counts regardless of wall-clock heartbeat cadence).
func (inj *Injector) PingBlocked(server int, toServer bool) bool {
	w := inj.wire()
	w.mu.Lock()
	defer w.mu.Unlock()
	clock := w.sendFrames[server]
	if !toServer {
		clock = w.recvFrames[server]
	}
	blocked, _ := inj.inWindowLocked(w, toServer, server, clock)
	return blocked
}

// inWindowLocked reports whether the given direction's frame clock value
// falls inside an open partition window for the server, and whether this is
// the window's first hit (for one record per window). Caller holds w.mu.
func (inj *Injector) inWindowLocked(w *wireState, c2s bool, server int, clock int64) (in, first bool) {
	for i, p := range inj.sched.Partitions {
		if p.C2S != c2s || p.Server != server {
			continue
		}
		if clock >= p.FromFrame && clock < p.FromFrame+p.Frames {
			first = !w.partFired[i]
			w.partFired[i] = true
			return true, first
		}
	}
	return false, false
}

package ebsp

import (
	"fmt"
	"sync"
	"testing"

	"ripple/internal/kvstore"
	"ripple/internal/memstore"
)

// TestStateFactoredOverMultipleTables exercises the paper's state-factoring
// feature (§II): a job with a read-only input table and a separate results
// table — "running a new analysis need not involve changing existing data,
// it could use new tables".
func TestStateFactoredOverMultipleTables(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store)

	// Pre-existing dataset, owned by "someone else".
	data, _ := store.CreateTable("dataset")
	for i := 0; i < 50; i++ {
		_ = data.Put(i, i*i)
	}
	before, _ := kvstore.Dump(data)

	job := &Job{
		Name:        "analysis",
		StateTables: []string{"dataset", "analysis_results"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			// Table 0 is only read; table 1 is written.
			v, ok := ctx.ReadState(0)
			if !ok {
				return false
			}
			ctx.WriteState(1, v.(int)+1)
			return false
		}),
		Loaders: []Loader{&TableLoader{
			Table: "dataset",
			Store: store,
			Each: func(k, _ any, lc *LoadContext) error {
				lc.Enable(k)
				return nil
			},
		}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}

	// The input table is untouched.
	after, _ := kvstore.Dump(data)
	if len(after) != len(before) {
		t.Fatalf("dataset size changed: %d -> %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			t.Errorf("dataset[%v] changed: %v -> %v", k, v, after[k])
		}
	}
	// The results table has the analysis output.
	results, _ := store.LookupTable("analysis_results")
	for i := 0; i < 50; i++ {
		v, ok, _ := results.Get(i)
		if !ok || v != i*i+1 {
			t.Errorf("results[%d] = %v, %v", i, v, ok)
		}
	}
}

// TestComponentExistenceAcrossTables checks the paper's §II point that a
// component need not have an entry in every (or any) state table: it exists
// when it has state entries or input messages.
func TestComponentExistenceAcrossTables(t *testing.T) {
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store)
	var mu sync.Mutex
	seen := map[int][2]bool{} // key -> (has tab0, has tab1)
	job := &Job{
		Name:        "partial",
		StateTables: []string{"pt_a", "pt_b"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			_, okA := ctx.ReadState(0)
			_, okB := ctx.ReadState(1)
			mu.Lock()
			seen[ctx.Key().(int)] = [2]bool{okA, okB}
			mu.Unlock()
			return false
		}),
		Loaders: []Loader{
			&StateLoader{Tab: 0, States: map[any]any{1: "a-only"}},
			&StateLoader{Tab: 1, States: map[any]any{2: "b-only"}},
			&EnableLoader{Keys: []any{1, 2, 3}}, // 3 has no state at all
		},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	want := map[int][2]bool{1: {true, false}, 2: {false, true}, 3: {false, false}}
	for k, w := range want {
		if seen[k] != w {
			t.Errorf("component %d state presence = %v, want %v", k, seen[k], w)
		}
	}
}

// TestConcurrentJobsOnOneStore runs several independent jobs simultaneously
// against one store — the "managing multiple analytics jobs concurrently"
// scenario the paper names as the architecture's target (§II, §VII).
func TestConcurrentJobsOnOneStore(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })

	const jobs = 6
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			e := NewEngine(store)
			name := fmt.Sprintf("cj%d", j)
			job := &Job{
				Name:        name,
				StateTables: []string{name + "_state"},
				Compute:     &chainCompute{limit: 10 + j},
				Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
			}
			_, errs[j] = e.Run(job)
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
	}
	for j := 0; j < jobs; j++ {
		tab, _ := store.LookupTable(fmt.Sprintf("cj%d_state", j))
		if n, _ := tab.Size(); n != 10+j+1 {
			t.Errorf("job %d state size = %d, want %d", j, n, 10+j+1)
		}
	}
}

// TestConcurrentJobsShareOneEngine checks Engine's documented concurrency
// safety.
func TestConcurrentJobsShareOneEngine(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for j := 0; j < 4; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			name := fmt.Sprintf("se%d", j)
			_, errs[j] = e.Run(&Job{
				Name:        name,
				StateTables: []string{name + "_state"},
				Compute:     &chainCompute{limit: 8},
				Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
			})
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", j, err)
		}
	}
}

// TestReadOnlySharedTableAcrossConcurrentJobs has several concurrent jobs
// reading one shared reference dataset while writing their own outputs.
func TestReadOnlySharedTableAcrossConcurrentJobs(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	shared, _ := store.CreateTable("shared")
	for i := 0; i < 30; i++ {
		_ = shared.Put(i, i)
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for j := 0; j < 3; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			e := NewEngine(store)
			name := fmt.Sprintf("ro%d", j)
			factor := j + 2
			errs[j] = func() error {
				_, err := e.Run(&Job{
					Name:        name,
					StateTables: []string{"shared", name + "_out"},
					Compute: ComputeFunc(func(ctx *Context) bool {
						v, ok := ctx.ReadState(0)
						if ok {
							ctx.WriteState(1, v.(int)*factor)
						}
						return false
					}),
					Loaders: []Loader{&TableLoader{
						Table: "shared",
						Store: store,
						Each: func(k, _ any, lc *LoadContext) error {
							lc.Enable(k)
							return nil
						},
					}},
				})
				return err
			}()
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
	}
	for j := 0; j < 3; j++ {
		out, _ := store.LookupTable(fmt.Sprintf("ro%d_out", j))
		for i := 0; i < 30; i++ {
			if v, _, _ := out.Get(i); v != i*(j+2) {
				t.Errorf("job %d out[%d] = %v", j, i, v)
			}
		}
	}
}

package gridstore

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"ripple/internal/kvstore"
)

// TestTransactionSerializabilityProperty: random concurrent read-modify-write
// transactions on one shard must behave as if executed serially (the sum of
// applied increments is exact).
func TestTransactionSerializabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 2 + rng.Intn(6)
		perWorker := 10 + rng.Intn(40)

		s := New(WithParts(1))
		defer func() { _ = s.Close() }()
		tab, err := s.CreateTable("t")
		if err != nil {
			return false
		}
		if err := tab.Put("acc", 0); err != nil {
			return false
		}
		var wg sync.WaitGroup
		failed := false
		var mu sync.Mutex
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					_, err := s.RunTransaction("t", 0, func(sv kvstore.ShardView) (any, error) {
						view, err := sv.View("t")
						if err != nil {
							return nil, err
						}
						v, _, err := view.Get("acc")
						if err != nil {
							return nil, err
						}
						return nil, view.Put("acc", v.(int)+1)
					})
					if err != nil {
						mu.Lock()
						failed = true
						mu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if failed {
			return false
		}
		v, _, err := tab.Get("acc")
		return err == nil && v == workers*perWorker
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestReplicationConsistencyProperty: after random puts/deletes and a
// failover on every part, the surviving replicas must expose exactly the
// committed contents.
func TestReplicationConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := 1 + rng.Intn(4)
		ops := 50 + rng.Intn(200)

		s := New(WithParts(parts), WithReplicas(2))
		defer func() { _ = s.Close() }()
		tab, err := s.CreateTable("t")
		if err != nil {
			return false
		}
		expect := map[int]int{}
		for i := 0; i < ops; i++ {
			k := rng.Intn(40)
			if rng.Intn(4) == 0 {
				if err := tab.Delete(k); err != nil {
					return false
				}
				delete(expect, k)
			} else {
				v := rng.Int()
				if err := tab.Put(k, v); err != nil {
					return false
				}
				expect[k] = v
			}
		}
		for p := 0; p < parts; p++ {
			if err := s.FailPrimary("t", p); err != nil {
				return false
			}
		}
		if n, err := tab.Size(); err != nil || n != len(expect) {
			return false
		}
		for k, v := range expect {
			got, ok, err := tab.Get(k)
			if err != nil || !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

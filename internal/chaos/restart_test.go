package chaos_test

import (
	"errors"
	"testing"

	"ripple/internal/chaos"
	"ripple/internal/ebsp"
	"ripple/internal/gridstore"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
)

// fanoutJob splits a budget across a binary tree of keys, no-sync eligible
// (incremental, no aggregators); the summed state is independent of delivery
// order and of how many duplicate deliveries were shed.
func fanoutJob(name string) *ebsp.Job {
	return &ebsp.Job{
		Name:        name,
		StateTables: []string{name + "_state"},
		Properties:  ebsp.Properties{Incremental: true},
		Compute: ebsp.ComputeFunc(func(ctx *ebsp.Context) bool {
			for _, m := range ctx.InputMessages() {
				n := m.(int)
				cur := 0
				if v, ok := ctx.ReadState(0); ok {
					cur = v.(int)
				}
				ctx.WriteState(0, cur+n)
				if n > 1 {
					k := ctx.Key().(int)
					ctx.Send(2*k+1, n/2)
					ctx.Send(2*k+2, n-n/2)
				}
			}
			return false
		}),
		Loaders: []ebsp.Loader{&ebsp.MessageLoader{Messages: []ebsp.InitialMessage{{Key: 0, Message: 256}}}},
	}
}

// TestFailoverResumeAndDupSheddingAcrossRestart is the operator-restart
// counterpart of the engine's in-run auto-recovery: a scheduled primary kill
// fails a run whose engine has no rerun budget, a *fresh* engine on the same
// store heals and Resumes from the surviving checkpoint, and the restarted
// engine's no-sync path still sheds replayed (sender, sequence) duplicates.
func TestFailoverResumeAndDupSheddingAcrossRestart(t *testing.T) {
	m := &metrics.Collector{}
	gs := gridstore.New(gridstore.WithParts(4), gridstore.WithReplicas(2), gridstore.WithMetrics(m))
	inj := chaos.NewInjector(chaos.Schedule{
		Seed:  9,
		Kills: []chaos.Kill{{Table: "restart_state", Part: 1, AfterDispatches: 20}},
	}, chaos.WithMetrics(m))
	store := chaos.Wrap(gs, inj)
	t.Cleanup(func() { _ = store.Close() })

	// Engine 1: checkpoints on, zero rerun budget — the kill mid-run must
	// surface as a shard failure instead of being healed in-run.
	e1 := ebsp.NewEngine(store, ebsp.WithMetrics(m), ebsp.WithCheckpoints(3), ebsp.WithRecoveryRetries(0))
	_, err := e1.Run(chainJob("restart", 25))
	if err == nil {
		t.Fatal("run survived a primary kill with zero rerun budget")
	}
	if !errors.Is(err, kvstore.ErrShardFailed) {
		t.Fatalf("run failed with %v, want ErrShardFailed", err)
	}

	// Operator restart: heal replication, then a brand-new engine resumes
	// from the checkpoint the failed run left in the store.
	h, ok := store.(kvstore.Healer)
	if !ok {
		t.Fatal("chaos-wrapped gridstore lost the Healer capability")
	}
	if err := h.Heal("restart_state"); err != nil {
		t.Fatalf("heal: %v", err)
	}
	e2 := ebsp.NewEngine(store, ebsp.WithMetrics(m), ebsp.WithCheckpoints(3),
		ebsp.WithMQ(mq.NewSystem(mq.WithFaults(inj), mq.WithMetrics(m))))
	res, err := e2.Resume(chainJob("restart", 25))
	if err != nil {
		t.Fatalf("resume after restart: %v", err)
	}
	if res.Steps != 26 {
		t.Errorf("resumed run finished at step %d, want 26", res.Steps)
	}
	tab, _ := store.LookupTable("restart_state")
	for i := 0; i <= 25; i++ {
		if v, ok, _ := tab.Get(i); !ok || v != i {
			t.Errorf("state[%d] = %v, %v after resume", i, v, ok)
		}
	}

	// The restarted engine's no-sync path: under 25% message duplication the
	// run must still compute the exact fault-free answer, because replayed
	// (sender, sequence) pairs are shed by the per-sender dedup.
	ref := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = ref.Close() })
	if _, err := ebsp.NewEngine(ref).Run(fanoutJob("dupref")); err != nil {
		t.Fatal(err)
	}
	refTab, _ := ref.LookupTable("dupref_state")
	want, err := kvstore.Dump(refTab)
	if err != nil {
		t.Fatal(err)
	}

	inj2 := chaos.NewInjector(chaos.Schedule{Seed: 10, MQDupRate: 0.25}, chaos.WithMetrics(m))
	e3 := ebsp.NewEngine(store, ebsp.WithMetrics(m),
		ebsp.WithMQ(mq.NewSystem(mq.WithFaults(inj2), mq.WithMetrics(m))))
	res2, err := e3.Run(fanoutJob("dupref"))
	if err != nil {
		t.Fatalf("no-sync under duplication after restart: %v", err)
	}
	if res2.Strategy.Sync {
		t.Fatal("expected no-sync execution")
	}
	got, _ := kvstore.Dump(mustTable(t, store, "dupref_state"))
	if len(got) != len(want) {
		t.Fatalf("state size %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("state[%v] = %v, want %v", k, got[k], v)
		}
	}
	dups := 0
	for _, r := range inj2.Records() {
		if r.Kind == "mq.dup" {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no duplicates injected — shedding not exercised")
	}
}

func mustTable(t *testing.T, s kvstore.Store, name string) kvstore.Table {
	t.Helper()
	tab, ok := s.LookupTable(name)
	if !ok {
		t.Fatalf("table %q missing", name)
	}
	return tab
}

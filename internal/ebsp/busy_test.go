package ebsp

import (
	"context"
	"errors"
	"sync"
	"testing"

	"ripple/internal/memstore"
)

// gatedJob blocks inside its first compute invocation until release is
// closed, guaranteeing the racing call below overlaps a live execution.
func gatedJob(name string, started chan struct{}, release <-chan struct{}) *Job {
	var once sync.Once
	return &Job{
		Name:        name,
		StateTables: []string{name + "_state"},
		MaxSteps:    3,
		Compute: ComputeFunc(func(ctx *Context) bool {
			once.Do(func() {
				close(started)
				<-release
			})
			ctx.WriteState(0, ctx.StepNum())
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 1}}}},
	}
}

// TestResumeWhileRunningReturnsBusy races Resume against a live RunContext of
// the same job name on one engine — serve's restart-recovery path. Resume
// must fail with ErrJobBusy rather than restore a snapshot underneath the
// run. Run with -race: the guard is also what keeps the shared run state
// data-race-free.
func TestResumeWhileRunningReturnsBusy(t *testing.T) {
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithCheckpoints(1))

	started := make(chan struct{})
	release := make(chan struct{})
	runErr := make(chan error, 1)
	go func() {
		_, err := e.RunContext(context.Background(), gatedJob("busy", started, release))
		runErr <- err
	}()
	<-started

	// The execution is provably in flight: Resume and a second Run must both
	// bounce with the typed busy error.
	if _, err := e.Resume(gatedJob("busy", make(chan struct{}, 1), release)); !errors.Is(err, ErrJobBusy) {
		t.Errorf("Resume during live run: err = %v, want ErrJobBusy", err)
	}
	if _, err := e.Run(gatedJob("busy", make(chan struct{}, 1), release)); !errors.Is(err, ErrJobBusy) {
		t.Errorf("Run during live run: err = %v, want ErrJobBusy", err)
	}
	// A different job name is not blocked.
	if _, err := e.Run(checkpointChainJob("busy-other", 3, nil)); err != nil {
		t.Errorf("unrelated job during live run: %v", err)
	}

	close(release)
	if err := <-runErr; err != nil {
		t.Fatalf("gated run: %v", err)
	}

	// The name is released on completion: a fresh Resume now reaches the
	// checkpoint machinery (no checkpoint survives success → ErrNoCheckpoint).
	if _, err := e.Resume(gatedJob("busy", make(chan struct{}, 1), nil)); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Resume after completion: err = %v, want ErrNoCheckpoint", err)
	}
}

// TestBusyGuardUnderChurn hammers one engine with concurrent Run/Resume of
// the same name; exactly the winners run and every loser sees ErrJobBusy.
// Meaningful under -race.
func TestBusyGuardUnderChurn(t *testing.T) {
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store)

	const attempts = 16
	var wg sync.WaitGroup
	var busy, ran, other int
	var mu sync.Mutex
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if i%2 == 0 {
				_, err = e.Run(checkpointChainJob("churn", 4, nil))
			} else {
				_, err = e.Resume(checkpointChainJob("churn", 4, nil))
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ran++
			case errors.Is(err, ErrJobBusy):
				busy++
			case errors.Is(err, ErrNoCheckpoint):
				other++ // a Resume that won the guard but had nothing to resume
			default:
				t.Errorf("attempt %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if ran+busy+other != attempts {
		t.Fatalf("accounted for %d of %d attempts", ran+busy+other, attempts)
	}
	if ran == 0 {
		t.Error("no attempt ever ran")
	}
}

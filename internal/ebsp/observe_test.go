package ebsp

import (
	"sync"
	"testing"
)

func TestObserverSeesEveryStep(t *testing.T) {
	var mu sync.Mutex
	var infos []StepInfo
	e := newEngine(t, WithObserver(StepObserverFunc(func(info StepInfo) {
		mu.Lock()
		infos = append(infos, info)
		mu.Unlock()
	})))
	job := &Job{
		Name:        "observed",
		StateTables: []string{"obs_state"},
		Aggregators: map[string]Aggregator{"n": IntSum{}},
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.AggregateValue("n", 1)
			return ctx.StepNum() < 4
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != res.Steps {
		t.Fatalf("observer saw %d steps, job took %d", len(infos), res.Steps)
	}
	for i, info := range infos {
		if info.Step != i+1 {
			t.Errorf("info %d step = %d", i, info.Step)
		}
		if info.Job != "observed" {
			t.Errorf("info job = %q", info.Job)
		}
		if info.Aggregates["n"] != 1 {
			t.Errorf("step %d aggregate = %v", info.Step, info.Aggregates["n"])
		}
		if info.Duration <= 0 {
			t.Errorf("step %d duration = %v", info.Step, info.Duration)
		}
	}
	if last := infos[len(infos)-1]; last.Emitted != 0 {
		t.Errorf("final step emitted %d, want 0", last.Emitted)
	}
}

func TestObserverNotCalledForNoSync(t *testing.T) {
	called := false
	e := newEngine(t, WithObserver(StepObserverFunc(func(StepInfo) { called = true })))
	job := &Job{
		Name:        "ns-observed",
		StateTables: []string{"nso_state"},
		Properties:  Properties{Incremental: true},
		Compute:     &incrementalChain{hops: 3},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Sync {
		t.Fatal("expected no-sync")
	}
	if called {
		t.Error("observer invoked for a no-sync job")
	}
}

package diskstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"time"
)

// WAL record layout: [4B crc32][1B op][4B klen][4B vlen][key bytes][value bytes]
// op 1 = put, 2 = delete (vlen = 0). The checksum covers everything after
// itself, so a torn tail (partial header, partial payload, or bit rot in the
// last unsynced page) is detected and clipped at the last whole record rather
// than treated as fatal.
const (
	opPut    = 1
	opDelete = 2

	walHdrLen = 13
	// maxRecordLen bounds a single key or value so a corrupt length field
	// cannot drive a giant allocation during replay.
	maxRecordLen = 1 << 30
)

// wal is one table-part's write-ahead log: an append handle plus a buffered
// writer. Appends go to the buffer; group commit (or Flush) drains and fsyncs
// it. The file is truncated to empty each time the memtable it shadows is
// flushed to an SSTable, so its size — and therefore replay time on open —
// is bounded by the memtable budget, not by table history.
type wal struct {
	path string
	file *os.File
	w    *bufio.Writer
	size int64
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: open %s: %w", path, err)
	}
	return &wal{path: path, file: f, w: bufio.NewWriter(f)}, nil
}

// append buffers one record. The caller holds the part lock.
func (l *wal) append(op byte, kbuf, vbuf []byte) error {
	var hdr [walHdrLen]byte
	hdr[4] = op
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(kbuf)))
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(vbuf)))
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, kbuf)
	crc = crc32.Update(crc, crc32.IEEETable, vbuf)
	binary.BigEndian.PutUint32(hdr[0:4], crc)
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(kbuf); err != nil {
		return err
	}
	if _, err := l.w.Write(vbuf); err != nil {
		return err
	}
	l.size += walHdrLen + int64(len(kbuf)) + int64(len(vbuf))
	return nil
}

// sync drains the buffer and fsyncs, making everything appended so far
// durable against power loss.
func (l *wal) sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.file.Sync()
}

// reset truncates the log to empty after its contents were flushed to an
// SSTable. The truncation is fsynced so a clean close is genuinely
// replay-free on the next open.
func (l *wal) reset() error {
	l.w.Reset(io.Discard) // drop any buffered tail; it is in the SSTable now
	if err := l.file.Truncate(0); err != nil {
		return err
	}
	if _, err := l.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.file.Sync(); err != nil {
		return err
	}
	l.w.Reset(l.file)
	l.size = 0
	return nil
}

func (l *wal) close() error {
	return l.file.Close()
}

// replay scans the log from the start, calling apply for every whole,
// checksummed record. Any torn tail — a short header, short payload, or
// checksum mismatch — ends the scan and is truncated away so appends resume
// at a clean boundary. It returns the number of valid bytes replayed.
func (l *wal) replay(apply func(op byte, kbuf, vbuf []byte) error) (int64, error) {
	if _, err := l.file.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReader(l.file)
	var off int64
	var hdr [walHdrLen]byte
scan:
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn tail: drop the partial record
			}
			return 0, err
		}
		crc := binary.BigEndian.Uint32(hdr[0:4])
		op := hdr[4]
		klen := binary.BigEndian.Uint32(hdr[5:9])
		vlen := binary.BigEndian.Uint32(hdr[9:13])
		if (op != opPut && op != opDelete) || klen > maxRecordLen || vlen > maxRecordLen {
			break // garbage header: clip here
		}
		buf := make([]byte, int(klen)+int(vlen))
		if _, err := io.ReadFull(r, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break scan
			}
			return 0, err
		}
		sum := crc32.ChecksumIEEE(hdr[4:])
		sum = crc32.Update(sum, crc32.IEEETable, buf)
		if sum != crc {
			break // torn or rotted tail: clip
		}
		if err := apply(op, buf[:klen], buf[klen:]); err != nil {
			return 0, err
		}
		off += walHdrLen + int64(klen) + int64(vlen)
	}
	l.size = off
	// Truncate any partial tail so appends start at a clean boundary.
	if err := l.file.Truncate(off); err != nil {
		return 0, err
	}
	if _, err := l.file.Seek(off, io.SeekStart); err != nil {
		return 0, err
	}
	l.w = bufio.NewWriter(l.file)
	return off, nil
}

// syncRequest is one durable write waiting for its WAL to reach the disk.
type syncRequest struct {
	pl   *partLog
	errc chan error
}

// syncer is the store's group-commit loop. Writers append to the WAL buffer
// under the part lock, then hand the fsync to this loop and wait. While one
// fsync is in flight every later arrival queues up, so the next pass commits
// them all with a single fsync per touched part — the classic group-commit
// amortization that makes durable writes affordable under concurrency.
type syncer struct {
	store *Store
	reqs  chan syncRequest
	quit  chan struct{}
	done  chan struct{}
}

func newSyncer(s *Store) *syncer {
	sy := &syncer{
		store: s,
		reqs:  make(chan syncRequest, 256),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go sy.loop()
	return sy
}

func (sy *syncer) loop() {
	defer close(sy.done)
	for {
		var first syncRequest
		select {
		case first = <-sy.reqs:
		case <-sy.quit:
			sy.failPending()
			return
		}
		batch := append(make([]syncRequest, 0, 8), first)
		if w := sy.store.gcWindow; w > 0 {
			time.Sleep(w) // widen the batch at the cost of commit latency
		}
	drain:
		for {
			select {
			case r := <-sy.reqs:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		// The cohort that the previous fsync acknowledged is appending right
		// now; a few scheduler yields collect it into this batch without a
		// timer. Stop once two consecutive yields surface nothing new.
		for empty := 0; empty < 2; {
			runtime.Gosched()
			grew := false
		regather:
			for {
				select {
				case r := <-sy.reqs:
					batch = append(batch, r)
					grew = true
				default:
					break regather
				}
			}
			if grew {
				empty = 0
			} else {
				empty++
			}
		}
		// One fsync per distinct part in the batch; every waiter on that
		// part is acknowledged by it.
		var order []*partLog
		waiters := make(map[*partLog][]chan error, 4)
		for _, r := range batch {
			if _, ok := waiters[r.pl]; !ok {
				order = append(order, r.pl)
			}
			waiters[r.pl] = append(waiters[r.pl], r.errc)
		}
		for _, pl := range order {
			err := pl.syncWAL()
			for _, c := range waiters[pl] {
				c <- err
			}
		}
		sy.store.lsm().GroupCommitBatches().Observe(int64(len(batch)))
	}
}

// failPending drains whatever is already queued when the store closes.
func (sy *syncer) failPending() {
	for {
		select {
		case r := <-sy.reqs:
			r.errc <- errClosed()
		default:
			return
		}
	}
}

func (sy *syncer) stop() {
	close(sy.quit)
	<-sy.done
}

// await hands one part's WAL fsync to the group-commit loop and waits for
// the batch that carries it.
func (sy *syncer) await(pl *partLog) error {
	errc := make(chan error, 1)
	select {
	case sy.reqs <- syncRequest{pl: pl, errc: errc}:
	case <-sy.quit:
		return errClosed()
	}
	select {
	case err := <-errc:
		return err
	case <-sy.done:
		// The loop exited while we waited; it may have answered first.
		select {
		case err := <-errc:
			return err
		default:
			return errClosed()
		}
	}
}

package kvstore

import (
	"errors"
	"testing"

	"ripple/internal/codec"
)

func TestApplyOptionsDefaults(t *testing.T) {
	cfg := ApplyOptions(8, nil)
	if cfg.Parts != 8 {
		t.Errorf("Parts = %d, want store default 8", cfg.Parts)
	}
	if cfg.Hasher == nil {
		t.Error("Hasher not defaulted")
	}
	if cfg.Ubiquitous || cfg.Ordered || cfg.ConsistentWith != "" {
		t.Errorf("unexpected non-zero config: %+v", cfg)
	}
}

func TestApplyOptionsExplicit(t *testing.T) {
	h := codec.DefaultHasher{}
	cfg := ApplyOptions(8, []TableOption{
		WithParts(3), Ordered(), ConsistentWith("base"), WithHasher(h),
	})
	if cfg.Parts != 3 || !cfg.Ordered || cfg.ConsistentWith != "base" {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestApplyOptionsUbiquitousForcesOnePart(t *testing.T) {
	cfg := ApplyOptions(8, []TableOption{WithParts(5), Ubiquitous()})
	if !cfg.Ubiquitous || cfg.Parts != 1 {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestApplyOptionsNonPositivePartsUseDefault(t *testing.T) {
	cfg := ApplyOptions(6, []TableOption{WithParts(0)})
	if cfg.Parts != 6 {
		t.Errorf("Parts = %d", cfg.Parts)
	}
	cfg = ApplyOptions(6, []TableOption{WithParts(-2)})
	if cfg.Parts != 6 {
		t.Errorf("Parts = %d", cfg.Parts)
	}
}

func TestCheckPart(t *testing.T) {
	if err := CheckPart(0, 3); err != nil {
		t.Errorf("CheckPart(0,3) = %v", err)
	}
	if err := CheckPart(2, 3); err != nil {
		t.Errorf("CheckPart(2,3) = %v", err)
	}
	if err := CheckPart(3, 3); !errors.Is(err, ErrBadPart) {
		t.Errorf("CheckPart(3,3) = %v", err)
	}
	if err := CheckPart(-1, 3); !errors.Is(err, ErrBadPart) {
		t.Errorf("CheckPart(-1,3) = %v", err)
	}
}

func TestConsumerFuncsNilDefaults(t *testing.T) {
	var pc PairConsumerFuncs
	if err := pc.SetupPart(0); err != nil {
		t.Errorf("SetupPart = %v", err)
	}
	stop, err := pc.ConsumePair(1, 2)
	if stop || err != nil {
		t.Errorf("ConsumePair = %v, %v", stop, err)
	}
	if v, err := pc.FinishPart(0); v != nil || err != nil {
		t.Errorf("FinishPart = %v, %v", v, err)
	}
	if v, err := pc.Combine(1, 2); v != nil || err != nil {
		t.Errorf("Combine = %v, %v", v, err)
	}

	var partc PartConsumerFuncs
	if v, err := partc.ProcessPart(nil); v != nil || err != nil {
		t.Errorf("ProcessPart = %v, %v", v, err)
	}
	if v, err := partc.Combine(1, 2); v != nil || err != nil {
		t.Errorf("Combine = %v, %v", v, err)
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{
		ErrTableExists, ErrNoTable, ErrBadPart, ErrClosed,
		ErrNotCoPlaced, ErrShardFailed, ErrTxConflict,
	}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Errorf("error %d and %d alias", i, j)
			}
		}
	}
}

package ebsp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"ripple/internal/diskstore"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
)

// crashAfter aborts the job at a chosen step, standing in for a crash; the
// checkpoint written before it must allow a full Resume.
func crashAfter(step int) Aborter {
	return AborterFunc(func(s int, _ map[string]any) bool { return s >= step })
}

// checkpointChainJob counts visits per key in state; deterministic output
// lets the test compare a crashed+resumed run to an uninterrupted one.
func checkpointChainJob(name string, limit int, aborter Aborter) *Job {
	return &Job{
		Name:        name,
		StateTables: []string{name + "_state"},
		Aborter:     aborter,
		Compute: ComputeFunc(func(ctx *Context) bool {
			for _, m := range ctx.InputMessages() {
				n := m.(int)
				ctx.WriteState(0, n)
				if n < limit {
					ctx.Send(ctx.Key().(int)+1, n+1)
				}
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 1}}}},
	}
}

func TestCheckpointAndResume(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithCheckpoints(3))

	// Crash after step 7 (checkpoints at 3 and 6).
	res, err := e.Run(checkpointChainJob("ckpt", 20, crashAfter(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.Steps != 7 {
		t.Fatalf("crash run: aborted=%v steps=%d", res.Aborted, res.Steps)
	}

	// Resume without the aborter; it must continue from step 6's snapshot.
	res2, err := e.Resume(checkpointChainJob("ckpt", 20, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Steps != 20 {
		t.Errorf("resumed run finished at step %d, want 20", res2.Steps)
	}
	tab, _ := store.LookupTable("ckpt_state")
	for i := 0; i < 20; i++ {
		v, ok, _ := tab.Get(i)
		if !ok || v != i+1 {
			t.Errorf("state[%d] = %v, %v", i, v, ok)
		}
	}
	// Checkpoint tables are dropped after successful completion.
	if _, ok := store.LookupTable(ckptMetaTable("ckpt")); ok {
		t.Error("checkpoint meta table survived successful completion")
	}
}

func TestResumeWithoutCheckpointFails(t *testing.T) {
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store)
	_, err := e.Resume(checkpointChainJob("never-ran", 5, nil))
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestResumeRejectsMismatchedStateTables(t *testing.T) {
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithCheckpoints(2))
	if _, err := e.Run(checkpointChainJob("mismatch", 10, crashAfter(4))); err != nil {
		t.Fatal(err)
	}
	bad := checkpointChainJob("mismatch", 10, nil)
	bad.StateTables = []string{"some_other_table"}
	if _, err := e.Resume(bad); !errors.Is(err, ErrBadJob) {
		t.Errorf("err = %v, want ErrBadJob", err)
	}
}

func TestCheckpointedRunMatchesUninterrupted(t *testing.T) {
	// Reference: uninterrupted run.
	refStore := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = refStore.Close() })
	if _, err := NewEngine(refStore).Run(checkpointChainJob("ref", 15, nil)); err != nil {
		t.Fatal(err)
	}
	refTab, _ := refStore.LookupTable("ref_state")
	want, _ := kvstore.Dump(refTab)

	// Crashed at several points, resumed each time.
	for _, crashStep := range []int{2, 5, 9, 14} {
		store := memstore.New(memstore.WithParts(4))
		e := NewEngine(store, WithCheckpoints(2))
		name := fmt.Sprintf("cr%d", crashStep)
		if _, err := e.Run(checkpointChainJob(name, 15, crashAfter(crashStep))); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Resume(checkpointChainJob(name, 15, nil)); err != nil {
			t.Fatalf("resume after crash at %d: %v", crashStep, err)
		}
		tab, _ := store.LookupTable(name + "_state")
		got, _ := kvstore.Dump(tab)
		if len(got) != len(want) {
			t.Errorf("crash at %d: %d states, want %d", crashStep, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("crash at %d: state[%v] = %v, want %v", crashStep, k, got[k], v)
			}
		}
		_ = store.Close()
	}
}

func TestCheckpointWithAggregators(t *testing.T) {
	store := memstore.New(memstore.WithParts(3))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithCheckpoints(2))
	build := func(aborter Aborter) *Job {
		return &Job{
			Name:        "agg-ckpt",
			StateTables: []string{"ac_state"},
			Aggregators: map[string]Aggregator{"steps": IntSum{}},
			Aborter:     aborter,
			Compute: ComputeFunc(func(ctx *Context) bool {
				ctx.AggregateValue("steps", 1)
				return ctx.StepNum() < 8
			}),
			Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
		}
	}
	if _, err := e.Run(build(crashAfter(5))); err != nil {
		t.Fatal(err)
	}
	res, err := e.Resume(build(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 8 {
		t.Errorf("Steps = %d, want 8", res.Steps)
	}
	if res.Aggregates["steps"] != 1 {
		t.Errorf("final step aggregate = %v, want 1", res.Aggregates["steps"])
	}
}

func TestCheckpointSurvivesProcessRestartOnDiskStore(t *testing.T) {
	dir := t.TempDir()
	name := "durable"

	// "Process one": run with checkpoints, crash.
	s1, err := diskstore.New(dir, diskstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEngine(s1, WithCheckpoints(2))
	if _, err := e1.Run(checkpointChainJob(name, 12, crashAfter(6))); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Process two": reopen the store (replaying the logs) and resume.
	s2, err := diskstore.New(dir, diskstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	// Reopen the tables the job and its checkpoint used.
	for _, tn := range []string{
		name + "_state", ckptMetaTable(name), ckptSpillTable(name), ckptStateTable(name, 0),
	} {
		if _, err := s2.CreateTable(tn, kvstore.WithParts(2)); err != nil {
			t.Fatalf("reopen %q: %v", tn, err)
		}
	}
	e2 := NewEngine(s2, WithCheckpoints(2))
	res, err := e2.Resume(checkpointChainJob(name, 12, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 12 {
		t.Errorf("Steps = %d, want 12", res.Steps)
	}
	tab, _ := s2.LookupTable(name + "_state")
	for i := 0; i < 12; i++ {
		if v, ok, _ := tab.Get(i); !ok || v != i+1 {
			t.Errorf("state[%d] = %v, %v", i, v, ok)
		}
	}
}

func TestCheckpointDisabledByDefault(t *testing.T) {
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store)
	var invocations atomic.Int64
	job := checkpointChainJob("nockpt", 6, nil)
	inner := job.Compute
	job.Compute = ComputeFunc(func(ctx *Context) bool {
		invocations.Add(1)
		return inner.Compute(ctx)
	})
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.LookupTable(ckptMetaTable("nockpt")); ok {
		t.Error("checkpoint table created without WithCheckpoints")
	}
}

func TestResumeRejectsTornCheckpointMeta(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithCheckpoints(3))
	if _, err := e.Run(checkpointChainJob("torn", 20, crashAfter(7))); err != nil {
		t.Fatal(err)
	}

	// Tear the sealed meta record: truncate it mid-body, as a primary dying
	// mid-write would. Resume must reject it instead of decoding garbage.
	metaTab, ok := store.LookupTable(ckptMetaTable("torn"))
	if !ok {
		t.Fatal("no checkpoint meta table")
	}
	raw, ok, err := metaTab.Get("meta")
	if err != nil || !ok {
		t.Fatalf("meta record: ok=%v err=%v", ok, err)
	}
	sealed := raw.([]byte)
	if err := metaTab.Put("meta", sealed[:len(sealed)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resume(checkpointChainJob("torn", 20, nil)); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("torn meta: err = %v, want ErrCheckpointMismatch", err)
	}

	// A flipped byte (corruption, not truncation) is also rejected.
	bad := append([]byte(nil), sealed...)
	bad[len(bad)/3] ^= 0xff
	if err := metaTab.Put("meta", bad); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resume(checkpointChainJob("torn", 20, nil)); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("corrupt meta: err = %v, want ErrCheckpointMismatch", err)
	}

	// The intact record still resumes: the seal round-trips.
	if err := metaTab.Put("meta", sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resume(checkpointChainJob("torn", 20, nil)); err != nil {
		t.Errorf("intact meta failed to resume: %v", err)
	}
}

func TestResumeAcceptsLegacyUnsealedMeta(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithCheckpoints(3))
	if _, err := e.Run(checkpointChainJob("legacy", 20, crashAfter(7))); err != nil {
		t.Fatal(err)
	}
	metaTab, _ := store.LookupTable(ckptMetaTable("legacy"))
	raw, _, _ := metaTab.Get("meta")
	meta, err := openMeta(raw.([]byte))
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the record in the pre-checksum format: the bare struct.
	if err := metaTab.Put("meta", meta); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resume(checkpointChainJob("legacy", 20, nil)); err != nil {
		t.Errorf("legacy meta failed to resume: %v", err)
	}
}

package ebsp

import (
	"fmt"
	"sync/atomic"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/mq"
	"ripple/internal/profile"
	"ripple/internal/termination"
	"ripple/internal/trace"
)

// noSyncPoll is how long an idle worker waits for a message before checking
// for distributed termination.
const noSyncPoll = 2 * time.Millisecond

// runSeq makes private table and queue-set names unique process-wide, so
// engines sharing one store or one mq.System never collide.
var runSeq atomic.Int64

// runNoSync executes a job with no synchronization barriers (paper §IV-A):
// one dispatch of EBSP implementation code to a queue set, whose instances
// invoke components and exchange messages until there is no more work to do.
// Distributed termination is detected by weight throwing (Huang's algorithm).
//
// Eligibility was established by planFor: the job has no aggregators and no
// aborter, and either tolerates arbitrary message grouping (incremental) or
// is no-collect with no step-order requirement. Per-(sender,receiver) message
// order is preserved by the FIFO queues. There are no steps, so StepNum
// reports 0 and the continue signal is meaningless (ignored).
func (run *jobRun) runNoSync(lc *LoadContext) (*Result, error) {
	sys := run.engine.mqSystem()
	// The run sequence number is its own dot-segment so name normalization
	// (chaos fault injection) sees a stable name across runs.
	qsName := fmt.Sprintf("__ebsp.%s.%d.q", run.job.Name, run.runID)
	qs, err := sys.CreateQueueSet(qsName, run.placement)
	if err != nil {
		return nil, fmt.Errorf("ebsp: create queue set: %w", err)
	}
	defer func() { _ = sys.DeleteQueueSet(qsName) }()

	det := termination.New()

	// Seed the initial messages, each carrying fresh weight. Seeds carry the
	// distinguished sender -1 and a monotonic sequence so receivers can shed
	// duplicated deliveries exactly like worker-to-worker traffic.
	for i, env := range lc.envs {
		w := det.Issue(termination.DefaultIssue)
		env.Src = -1
		env.Seq = i
		if run.sampled {
			// Seeds descend from the load span, like initial sync spills.
			env.Trace, env.Span = run.traceID, run.loadSpan
		}
		dst := run.placement.PartOf(env.Dst)
		qm := queueMsg{Env: env, Weight: uint64(w)}
		if err := run.engine.retryOp(run.job.Name, 0, dst, func() error {
			return qs.Put(dst, qm)
		}); err != nil {
			return nil, fmt.Errorf("ebsp: seed message: %w", err)
		}
		// Continue/create markers ride the queue for enablement and weight
		// accounting but are not messages; in-flight tracking still covers
		// every envelope because termination hinges on all of them.
		if env.Kind == kindData {
			run.engine.metrics.AddMessagesSent(1)
		}
		run.engine.metrics.InFlightEnvelopes().Inc()
		run.sent.Add(1)
	}

	var failed atomic.Bool
	err = qs.Run(func(r mq.Reader) error {
		// Injected dispatch faults fire before the worker body runs, so a
		// retried dispatch never re-executes delivered work.
		return run.engine.retryOp(run.job.Name, 0, r.Queue(), func() error {
			_, aerr := run.engine.store.RunAgent(run.placement.Name(), r.Queue(), func(sv kvstore.ShardView) (any, error) {
				return nil, run.noSyncWorker(sv, r, qs, det, &failed)
			})
			return aerr
		})
	})
	if err != nil {
		return nil, err
	}
	if derr := det.Err(); derr != nil {
		return nil, fmt.Errorf("ebsp: termination detection: %w", derr)
	}
	// The run quiesced: the final progress notification — the one observers
	// can always count on, however few envelopes flowed.
	if err := run.notifyProgress(ProgressInfo{
		Job:       run.job.Name,
		Part:      -1,
		Delivered: run.delivered.Load(),
		Sent:      run.sent.Load(),
		Quiescent: true,
	}); err != nil {
		return nil, err
	}
	return &Result{Steps: 0, Aggregates: run.aggPrev}, nil
}

// noSyncWorker is the mobile EBSP code running collocated with one part: it
// drains the part's queue, invoking a component per message, until the whole
// computation quiesces (or another worker fails).
func (run *jobRun) noSyncWorker(sv kvstore.ShardView, r mq.Reader, qs mq.Set,
	det *termination.Detector, failed *atomic.Bool) (err error) {

	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("ebsp: no-sync worker part %d: compute panicked: %v", sv.Part(), rec)
		}
		if err != nil {
			failed.Store(true)
		}
	}()

	ls, err := run.partViews(sv)
	if err != nil {
		return err
	}
	bview, err := run.broadcastView(sv)
	if err != nil {
		return err
	}
	sink := &queueSink{
		run:     run,
		qs:      qs,
		det:     det,
		partOf:  run.placement.PartOf,
		srcPart: sv.Part(),
	}

	// For sampled runs the whole worker session is one compute span (no-sync
	// has no steps, so it lives at step 0), and the envelopes it emits carry
	// that span as their provenance. Incoming edges are aggregated here,
	// incrementally, because the session drains its queue message-by-message
	// rather than receiving one batch.
	var edges map[uint64]int64
	var invoked int64
	if run.sampled {
		sess := run.spanID(0, sv.Part())
		sink.trace, sink.span = run.traceID, sess
		edges = make(map[uint64]int64)
		sessStart := time.Now()
		defer func() {
			run.recordEdgeCounts(0, sv.Part(), edges)
			run.engine.tracer.RecordSpan(trace.Span{
				Kind: trace.KindPartCompute, Job: run.job.Name, Step: 0, Part: sv.Part(),
				N: invoked, Dur: time.Since(sessStart),
				Trace: run.traceID, Span: sess, Parent: run.rootSpan,
			})
		}()
	}

	// With a profiler attached the worker accounts for its whole session as
	// one step-0 record: compute (busy) time, queue-wait (blocked reads and
	// empty polls), and message/store counts. No-sync has no steps, so the
	// record covers the part's entire run.
	var state stateAccess = ls
	prof := run.engine.prof
	var counted *countingState
	var queueWait time.Duration
	var msgsIn int64
	if prof != nil {
		counted = &countingState{inner: state}
		state = counted
		startNS := prof.Now()
		wStart := time.Now()
		defer func() {
			total := time.Since(wStart)
			prof.Record(profile.StepProfile{
				Job:         run.job.Name,
				Step:        0,
				Part:        sv.Part(),
				StartNS:     startNS,
				ComputeNS:   int64(total - queueWait),
				QueueWaitNS: int64(queueWait),
				MsgsIn:      msgsIn,
				MsgsOut:     int64(sink.seq),
				Enabled:     invoked,
				StoreGets:   counted.gets.Load(),
				StorePuts:   counted.puts.Load(),
			})
		}()
	}

	// Per-sender dedup: queues preserve FIFO per (sender, receiver), so every
	// fresh message from a sender carries a sequence number at or above the
	// highest seen so far, and a redelivered duplicate sits strictly below it.
	next := make(map[int]int)

	for {
		if failed.Load() {
			return nil
		}
		if cerr := run.ctx.Err(); cerr != nil {
			failed.Store(true)
			return fmt.Errorf("ebsp: job %q cancelled: %w", run.job.Name, cerr)
		}
		readStart := time.Now()
		raw, ok, rerr := r.Read(noSyncPoll)
		if prof != nil {
			queueWait += time.Since(readStart)
		}
		if rerr != nil {
			failed.Store(true)
			return fmt.Errorf("ebsp: no-sync worker part %d: %w", sv.Part(), rerr)
		}
		if !ok {
			if det.Quiescent() {
				run.engine.tracer.RecordSpan(trace.Span{
					Kind: trace.KindQuiesce, Job: run.job.Name, Part: sv.Part(),
					N: run.delivered.Load(), Trace: run.traceID, Parent: run.spanID(0, sv.Part()),
				})
				if run.debugEnabled() {
					run.partLogger(0, sv.Part()).Debug("no-sync worker quiesced",
						"msgs_in", msgsIn, "invoked", invoked, "emitted", sink.seq)
				}
				return nil
			}
			continue
		}
		qm := raw.(queueMsg)
		if qm.Env.Seq < next[qm.Env.Src] {
			// Duplicated delivery. Its weight is a phantom copy of the
			// original's — the original already returned it (or will), so the
			// duplicate is dropped whole: no processing, no weight return, no
			// delivery count.
			continue
		}
		next[qm.Env.Src] = qm.Env.Seq + 1
		msgsIn++
		if edges != nil && qm.Env.Trace == run.traceID && qm.Env.Span != 0 {
			edges[qm.Env.Span]++
		}
		if qm.Env.Kind != kindCreate {
			invoked++
			prof.ObserveKey(run.job.Name, qm.Env.Dst, 1)
		}
		sink.held = termination.Weight(qm.Weight)
		if perr := run.processNoSyncMessage(qm.Env, state, bview, sink); perr != nil {
			_ = det.Return(sink.held)
			return perr
		}
		if sink.err != nil {
			perr := sink.err
			_ = det.Return(sink.held)
			return perr
		}
		if perr := sink.flushDirect(); perr != nil {
			_ = det.Return(sink.held)
			return perr
		}
		if rerr := det.Return(sink.held); rerr != nil {
			return rerr
		}
		sink.held = 0
		run.engine.metrics.InFlightEnvelopes().Dec()
		if perr := run.noSyncDelivered(sv.Part(), r); perr != nil {
			failed.Store(true)
			return perr
		}
	}
}

// noSyncDelivered counts one delivered envelope and fires the progress
// observer when the watermark is crossed — the no-sync counterpart of the
// per-step observer notification.
func (run *jobRun) noSyncDelivered(part int, r mq.Reader) error {
	d := run.delivered.Add(1)
	every := run.engine.progressEvery
	if every <= 0 {
		every = DefaultProgressEvery // trace-only watermarks without an observer
	}
	if d%every != 0 {
		return nil
	}
	run.engine.tracer.RecordSpan(trace.Span{
		Kind: trace.KindProgress, Job: run.job.Name, Part: part,
		N: d, Trace: run.traceID, Parent: run.spanID(0, part),
	})
	if run.engine.progress == nil {
		return nil
	}
	return run.notifyProgress(ProgressInfo{
		Job:       run.job.Name,
		Part:      part,
		Delivered: d,
		Sent:      run.sent.Load(),
		Queued:    int64(r.Len()),
	})
}

// processNoSyncMessage handles one delivered envelope: a state-creation
// request is applied directly; a data message or enablement marker becomes a
// compute invocation.
func (run *jobRun) processNoSyncMessage(env envelope, state stateAccess,
	bview kvstore.PartView, sink *queueSink) error {

	switch env.Kind {
	case kindCreate:
		return run.applyCreates([]envelope{env}, state)
	case kindContinue:
		ctx := &Context{
			run:       run,
			step:      0,
			key:       env.Dst,
			continued: true,
			state:     state,
			out:       sink,
			aggPrev:   run.aggPrev,
			broadcast: bview,
		}
		return run.invokeNoSync(ctx, sink)
	default:
		ctx := &Context{
			run:       run,
			step:      0,
			key:       env.Dst,
			msgs:      []any{env.Val},
			state:     state,
			out:       sink,
			aggPrev:   run.aggPrev,
			broadcast: bview,
		}
		return run.invokeNoSync(ctx, sink)
	}
}

// invokeNoSync runs one invocation; the continue signal has no meaning
// without steps and is ignored (unless the job declared no-continue, in
// which case returning true is a property violation).
func (run *jobRun) invokeNoSync(ctx *Context, sink *queueSink) error {
	run.engine.metrics.AddComputeInvocations(1)
	cont := run.job.Compute.Compute(ctx)
	if err := ctx.finish(); err != nil {
		return fmt.Errorf("ebsp: component %v: %w", ctx.key, err)
	}
	if cont && run.job.Properties.NoContinue {
		return fmt.Errorf("%w: no-continue job returned the positive continue signal (key %v)",
			ErrPropertyViolated, ctx.key)
	}
	return nil
}

// queueSink delivers a compute invocation's sends straight to the destination
// queues, splitting the held termination weight onto each outgoing message.
type queueSink struct {
	run     *jobRun
	qs      mq.Set
	det     *termination.Detector
	partOf  func(any) int
	srcPart int
	trace   uint64 // trace context stamped onto every send; zero when unsampled
	span    uint64 // the worker session's span ID
	seq     int
	held    termination.Weight
	direct  []kvPair
	err     error
}

var _ outSink = (*queueSink)(nil)

func (s *queueSink) add(env envelope, run *jobRun) {
	if env.Kind == kindContinue {
		return // meaningless without steps
	}
	env.Src = s.srcPart
	env.Seq = s.seq
	s.seq++
	if s.trace != 0 {
		env.Trace, env.Span = s.trace, s.span
	}
	var give termination.Weight
	s.held, give = s.det.SplitOrBorrow(s.held)
	dst := s.partOf(env.Dst)
	qm := queueMsg{Env: env, Weight: uint64(give)}
	var err error
	if dst == s.srcPart {
		err = s.qs.PutLocal(dst, qm)
	} else {
		// Injected put faults fire before delivery, so a retried send never
		// double-delivers.
		err = s.run.engine.retryOp(s.run.job.Name, 0, dst, func() error {
			return s.qs.Put(dst, qm)
		})
	}
	if err != nil {
		if s.err == nil {
			s.err = fmt.Errorf("ebsp: no-sync send: %w", err)
		}
		_ = s.det.Return(give)
		return
	}
	// Create-state requests ride the queue but are not messages.
	if env.Kind == kindData {
		run.engine.metrics.AddMessagesSent(1)
	}
	run.engine.metrics.InFlightEnvelopes().Inc()
	run.sent.Add(1)
}

func (s *queueSink) addDirect(key, value any) {
	s.direct = append(s.direct, kvPair{key: key, value: value})
}

// flushDirect hands buffered direct output to the job's exporter.
func (s *queueSink) flushDirect() error {
	if len(s.direct) == 0 || s.run.job.DirectOutput == nil {
		s.direct = s.direct[:0]
		return nil
	}
	s.run.directMu.Lock()
	defer s.run.directMu.Unlock()
	for _, p := range s.direct {
		if err := s.run.job.DirectOutput.Export(p.key, p.value); err != nil {
			return fmt.Errorf("ebsp: direct output: %w", err)
		}
	}
	s.direct = s.direct[:0]
	return nil
}

package ebsp

import "math"

// Built-in aggregators for the common aggregation techniques. All are
// stateless values; a single instance can serve many jobs.

// IntSum sums int inputs.
type IntSum struct{}

var _ Aggregator = IntSum{}

// Zero implements Aggregator.
func (IntSum) Zero() any { return 0 }

// Combine implements Aggregator.
func (IntSum) Combine(a, b any) any { return a.(int) + b.(int) }

// Int64Sum sums int64 inputs.
type Int64Sum struct{}

var _ Aggregator = Int64Sum{}

// Zero implements Aggregator.
func (Int64Sum) Zero() any { return int64(0) }

// Combine implements Aggregator.
func (Int64Sum) Combine(a, b any) any { return a.(int64) + b.(int64) }

// Float64Sum sums float64 inputs.
type Float64Sum struct{}

var _ Aggregator = Float64Sum{}

// Zero implements Aggregator.
func (Float64Sum) Zero() any { return float64(0) }

// Combine implements Aggregator.
func (Float64Sum) Combine(a, b any) any { return a.(float64) + b.(float64) }

// IntMax keeps the maximum int input.
type IntMax struct{}

var _ Aggregator = IntMax{}

// Zero implements Aggregator.
func (IntMax) Zero() any { return int(minInt) }

// Combine implements Aggregator.
func (IntMax) Combine(a, b any) any { return max(a.(int), b.(int)) }

// IntMin keeps the minimum int input.
type IntMin struct{}

var _ Aggregator = IntMin{}

// Zero implements Aggregator.
func (IntMin) Zero() any { return int(maxInt) }

// Combine implements Aggregator.
func (IntMin) Combine(a, b any) any { return min(a.(int), b.(int)) }

// Float64Max keeps the maximum float64 input.
type Float64Max struct{}

var _ Aggregator = Float64Max{}

// Zero implements Aggregator.
func (Float64Max) Zero() any { return negInf }

// Combine implements Aggregator.
func (Float64Max) Combine(a, b any) any { return max(a.(float64), b.(float64)) }

// Float64Min keeps the minimum float64 input.
type Float64Min struct{}

var _ Aggregator = Float64Min{}

// Zero implements Aggregator.
func (Float64Min) Zero() any { return posInf }

// Combine implements Aggregator.
func (Float64Min) Combine(a, b any) any { return min(a.(float64), b.(float64)) }

// BoolOr ORs bool inputs.
type BoolOr struct{}

var _ Aggregator = BoolOr{}

// Zero implements Aggregator.
func (BoolOr) Zero() any { return false }

// Combine implements Aggregator.
func (BoolOr) Combine(a, b any) any { return a.(bool) || b.(bool) }

// BoolAnd ANDs bool inputs.
type BoolAnd struct{}

var _ Aggregator = BoolAnd{}

// Zero implements Aggregator.
func (BoolAnd) Zero() any { return true }

// Combine implements Aggregator.
func (BoolAnd) Combine(a, b any) any { return a.(bool) && b.(bool) }

const (
	maxInt = int(^uint(0) >> 1)
	minInt = -maxInt - 1
)

var (
	posInf = math.Inf(1)
	negInf = math.Inf(-1)
)

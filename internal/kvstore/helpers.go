package kvstore

import (
	"fmt"
	"sync"
)

// PartConsumerFuncs adapts plain functions to the PartConsumer interface.
type PartConsumerFuncs struct {
	ProcessFn func(sv ShardView) (any, error)
	CombineFn func(a, b any) (any, error)
}

var _ PartConsumer = PartConsumerFuncs{}

// ProcessPart implements PartConsumer.
func (p PartConsumerFuncs) ProcessPart(sv ShardView) (any, error) {
	if p.ProcessFn == nil {
		return nil, nil
	}
	return p.ProcessFn(sv)
}

// Combine implements PartConsumer.
func (p PartConsumerFuncs) Combine(a, b any) (any, error) {
	if p.CombineFn == nil {
		return nil, nil
	}
	return p.CombineFn(a, b)
}

// PairConsumerFuncs adapts plain functions to the PairConsumer interface.
// Nil functions default to no-ops (and nil results).
type PairConsumerFuncs struct {
	SetupFn   func(part int) error
	ConsumeFn func(key, value any) (bool, error)
	FinishFn  func(part int) (any, error)
	CombineFn func(a, b any) (any, error)
}

var _ PairConsumer = PairConsumerFuncs{}

// SetupPart implements PairConsumer.
func (p PairConsumerFuncs) SetupPart(part int) error {
	if p.SetupFn == nil {
		return nil
	}
	return p.SetupFn(part)
}

// ConsumePair implements PairConsumer.
func (p PairConsumerFuncs) ConsumePair(key, value any) (bool, error) {
	if p.ConsumeFn == nil {
		return false, nil
	}
	return p.ConsumeFn(key, value)
}

// FinishPart implements PairConsumer.
func (p PairConsumerFuncs) FinishPart(part int) (any, error) {
	if p.FinishFn == nil {
		return nil, nil
	}
	return p.FinishFn(part)
}

// Combine implements PairConsumer.
func (p PairConsumerFuncs) Combine(a, b any) (any, error) {
	if p.CombineFn == nil {
		return nil, nil
	}
	return p.CombineFn(a, b)
}

// Dump copies an entire table into a map. Keys must be comparable. Intended
// for tests, examples, and result export — not hot paths.
func Dump(t Table) (map[any]any, error) {
	var mu sync.Mutex
	out := make(map[any]any)
	_, err := t.EnumeratePairs(PairConsumerFuncs{
		ConsumeFn: func(k, v any) (bool, error) {
			mu.Lock()
			out[k] = v
			mu.Unlock()
			return false, nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("kvstore: dump %s: %w", t.Name(), err)
	}
	return out, nil
}

// LoadMap bulk-puts the contents of a map into a table.
func LoadMap(t Table, m map[any]any) error {
	for k, v := range m {
		if err := t.Put(k, v); err != nil {
			return fmt.Errorf("kvstore: load %s: %w", t.Name(), err)
		}
	}
	return nil
}

// EnumerateAll visits every pair of a table through a single callback,
// serialized (the callback never runs concurrently with itself).
func EnumerateAll(t Table, fn func(key, value any) (stop bool, err error)) error {
	var mu sync.Mutex
	_, err := t.EnumeratePairs(PairConsumerFuncs{
		ConsumeFn: func(k, v any) (bool, error) {
			mu.Lock()
			defer mu.Unlock()
			return fn(k, v)
		},
	})
	return err
}

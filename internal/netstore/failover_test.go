package netstore

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ripple/internal/kvstore"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFailoverAndHeal(t *testing.T) {
	addrs, servers, stop := fleet(t, 3)
	defer stop()
	c := dialFleet(t, addrs,
		WithReplicas(2),
		WithHeartbeat(20*time.Millisecond, 2),
		WithRequestTimeout(500*time.Millisecond),
		WithRetries(8),
	)

	tbl, err := c.CreateTable("d", kvstore.WithParts(6))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if err := tbl.Put(i, i*10); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	// Kill the primary of part 0 mid-flight.
	victim := replicaSet(0, 3, 2)[0]
	f0 := c.Failovers()
	_ = servers[victim].Close()

	// Every key stays readable: reads ride the retry loop through failure
	// detection and fail over to the surviving replica.
	for i := 0; i < n; i++ {
		v, ok, err := tbl.Get(i)
		if err != nil || !ok || v.(int) != i*10 {
			t.Fatalf("get %d after kill = %v %v %v", i, v, ok, err)
		}
	}
	if c.Failovers() <= f0 {
		t.Fatalf("failover not sensed: %d -> %d", f0, c.Failovers())
	}

	// Writes during the outage land on the survivors.
	for i := n; i < n+20; i++ {
		if err := tbl.Put(i, i*10); err != nil {
			t.Fatalf("put during outage: %v", err)
		}
	}

	// Restart the victim on the same address — empty, like a real process
	// respawn. The detector must see the rejoin (another failover event)
	// and hold it cold until healed.
	f1 := c.Failovers()
	ln, err := net.Listen("tcp", addrs[victim])
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	respawn := NewServer()
	go func() { _ = respawn.Serve(ln) }()
	defer respawn.Close()
	waitFor(t, 5*time.Second, "rejoin detection", func() bool { return c.Failovers() > f1 })

	if err := c.Heal("d"); err != nil {
		t.Fatalf("heal: %v", err)
	}

	// Now kill the other original member of part 0's replica set: the
	// healed respawn must be able to serve everything it owns.
	other := replicaSet(0, 3, 2)[1]
	if other == victim {
		other = replicaSet(0, 3, 2)[0]
	}
	_ = servers[other].Close()
	for i := 0; i < n+20; i++ {
		v, ok, err := tbl.Get(i)
		if err != nil || !ok || v.(int) != i*10 {
			t.Fatalf("get %d after second kill = %v %v %v", i, v, ok, err)
		}
	}
}

func TestAllReplicasDownIsShardFailed(t *testing.T) {
	addrs, servers, stop := fleet(t, 2)
	defer stop()
	c := dialFleet(t, addrs,
		WithReplicas(1), // no redundancy: killing the primary is fatal
		WithHeartbeat(20*time.Millisecond, 2),
		WithRequestTimeout(200*time.Millisecond),
		WithRetries(2),
	)
	tbl, err := c.CreateTable("d", kvstore.WithParts(4))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := tbl.Put("k", 1); err != nil {
		t.Fatalf("put: %v", err)
	}
	part := tbl.PartOf("k")
	primary := replicaSet(part, 2, 1)[0]
	_ = servers[primary].Close()
	waitFor(t, 5*time.Second, "primary marked down", func() bool {
		_, _, err := tbl.Get("k")
		return err != nil && errors.Is(err, kvstore.ErrShardFailed)
	})
}

// stubInjector drops the first N sends of one opcode and can duplicate
// every response.
type stubInjector struct {
	mu       sync.Mutex
	dropOp   uint8
	drops    int
	dupRecvs bool
}

func (s *stubInjector) SendFault(server int, op uint8) WireFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if op == s.dropOp && s.drops > 0 {
		s.drops--
		return WireFault{Drop: true}
	}
	return WireFault{}
}

func (s *stubInjector) RecvFault(server int, op uint8) WireFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	return WireFault{Dup: s.dupRecvs}
}

func (s *stubInjector) PingBlocked(int, bool) bool { return false }

func TestDroppedRequestsAreRetried(t *testing.T) {
	inj := &stubInjector{dropOp: opGet, drops: 2}
	addrs, _, stop := fleet(t, 2)
	defer stop()
	c := dialFleet(t, addrs,
		WithWireInjector(inj),
		WithRequestTimeout(100*time.Millisecond),
		WithRetries(4),
		WithBackoffSeed(42),
	)
	tbl, err := c.CreateTable("d", kvstore.WithParts(2))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := tbl.Put("k", "v"); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, ok, err := tbl.Get("k")
	if err != nil || !ok || v.(string) != "v" {
		t.Fatalf("get through drops = %v %v %v", v, ok, err)
	}
	inj.mu.Lock()
	left := inj.drops
	inj.mu.Unlock()
	if left != 0 {
		t.Fatalf("faults not consumed: %d left", left)
	}
}

func TestDuplicatedResponsesAreShed(t *testing.T) {
	inj := &stubInjector{dupRecvs: true}
	addrs, _, stop := fleet(t, 2)
	defer stop()
	c := dialFleet(t, addrs, WithWireInjector(inj))
	tbl, err := c.CreateTable("d", kvstore.WithParts(2))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 50; i++ {
		if err := tbl.Put(i, i); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		v, ok, err := tbl.Get(i)
		if err != nil || !ok || v.(int) != i {
			t.Fatalf("get %d = %v %v %v", i, v, ok, err)
		}
	}
}

func TestNetBackoffSeededJitter(t *testing.T) {
	c1 := &Client{backoffSeed: 7}
	c2 := &Client{backoffSeed: 7}
	c3 := &Client{backoffSeed: 8}
	diverged := false
	for attempt := 1; attempt <= 4; attempt++ {
		for part := 0; part < 4; part++ {
			a := c1.netBackoff(opGet, part, attempt)
			b := c2.netBackoff(opGet, part, attempt)
			if a != b {
				t.Fatalf("same seed diverged: %v vs %v", a, b)
			}
			shift := attempt
			if shift > 6 {
				shift = 6
			}
			base := time.Duration(100<<uint(shift)) * time.Microsecond
			if a < base/2 || a >= base+base/2 {
				t.Fatalf("backoff %v outside [%v, %v)", a, base/2, base+base/2)
			}
			if c3.netBackoff(opGet, part, attempt) != a {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Error("different seeds never diverged")
	}
}

func TestLookupTableFromAnotherClient(t *testing.T) {
	addrs, _, stop := fleet(t, 2)
	defer stop()
	c1 := dialFleet(t, addrs)
	c2 := dialFleet(t, addrs)

	if _, err := c1.CreateTable("shared", kvstore.WithParts(3), kvstore.Ordered()); err != nil {
		t.Fatalf("create: %v", err)
	}
	tbl, ok := c2.LookupTable("shared")
	if !ok {
		t.Fatal("second client cannot see the table")
	}
	if tbl.Parts() != 3 {
		t.Fatalf("resolved parts = %d", tbl.Parts())
	}
	if err := tbl.Put("k", 1); err != nil {
		t.Fatalf("put via second client: %v", err)
	}
	t1, _ := c1.LookupTable("shared")
	if v, ok, err := t1.Get("k"); err != nil || !ok || v.(int) != 1 {
		t.Fatalf("cross-client get = %v %v %v", v, ok, err)
	}
}

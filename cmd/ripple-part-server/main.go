// Command ripple-part-server is one standalone part-server process: it
// serves Ripple's store and mq SPIs over the framed-TCP transport in
// internal/netstore, so an analytics process (the engine plus a netstore
// client) can run against a fleet of these across a real network boundary.
//
// Usage:
//
//	ripple-part-server -addr 127.0.0.1:7070
//
// The bound address is printed on stdout as "listening <addr>" once the
// listener is up — harnesses that pass -addr 127.0.0.1:0 parse it to learn
// the kernel-assigned port. SIGINT/SIGTERM shut down gracefully: in-flight
// requests finish, the span log (if -trace is set) is dumped, and the
// process exits 0.
//
// Observability flags mirror ripple-bench:
//
//	-metrics-addr :9091   serve this server's collector (per-endpoint RPC
//	                      service-time histograms, call counters) in
//	                      Prometheus text format at /metrics
//	-trace spans.jsonl    dump server-side RPC spans on shutdown ('-' for
//	                      stdout); spans carry the trace IDs clients stamp
//	                      on frames, so they join the engine's causal chains.
//	                      The dump ends with one "stats" span holding the
//	                      final metrics snapshot. The span ring itself is
//	                      always on — fleet collectors drain it live over
//	                      the admin trace-dump op — so -trace only controls
//	                      the shutdown file.
//	-trace-cap 16384      span ring-buffer capacity
//	-log-level info       structured logs (slog) to stderr: off, error,
//	                      warn, info, or debug
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"ripple/internal/httpx"
	"ripple/internal/metrics"
	"ripple/internal/netstore"
	"ripple/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:0", "TCP address to serve the part-server protocol on")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus-format metrics on this address (e.g. :9091)")
		traceFile   = flag.String("trace", "", "write the server span log to this file on shutdown ('-' for stdout)")
		traceCap    = flag.Int("trace-cap", trace.DefaultCapacity, "span ring-buffer capacity")
		logLevel    = flag.String("log-level", "off", "structured log level: off, error, warn, info, debug")
	)
	flag.Parse()

	var logger *slog.Logger
	if *logLevel != "off" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			log.Fatalf("unknown -log-level %q (want off, error, warn, info, debug)", *logLevel)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	}

	collector := &metrics.Collector{}
	// The tracer is always on: the opTraceDump admin op serves the ring to
	// fleet collectors whether or not a -trace file was requested, and ping
	// responses carry the tracer's clock for offset estimation.
	tracer := trace.New(*traceCap)

	srv := netstore.NewServer(
		netstore.WithServerMetrics(collector),
		netstore.WithServerTracer(tracer),
	)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	// The harness contract: one parseable line with the bound address.
	fmt.Printf("listening %s\n", ln.Addr().String())
	logger.Info("part-server up", "addr", ln.Addr().String(), "boot_id", srv.BootID())

	var metricsSrv *httpx.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.HandlerTracer(collector, tracer))
		// Bind synchronously: a bad or occupied -metrics-addr kills the
		// process now, not after it has committed to serving parts.
		metricsSrv, err = httpx.Serve(*metricsAddr, mux)
		if err != nil {
			log.Fatalf("metrics endpoint: %v", err)
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		// Graceful drain: Close finishes in-flight requests before the flush
		// below, so the trace file never loses the tail of spans.
		logger.Info("shutting down", "signal", sig.String())
		if err := srv.Close(); err != nil {
			logger.Error("close", "err", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	}
	if metricsSrv != nil {
		// Drain scrapes in flight, then release the port before exiting.
		if err := metricsSrv.Shutdown(nil); err != nil {
			logger.Error("metrics shutdown", "err", err)
		}
	}

	if *traceFile != "" {
		// Final flush: the drained ring plus one stats span carrying the
		// metrics snapshot, so a dead server's counters survive in its dump.
		metrics.RecordStatsSpan(tracer, collector)
		out := os.Stdout
		if *traceFile != "-" {
			f, err := os.Create(*traceFile)
			if err != nil {
				log.Fatalf("trace dump: %v", err)
			}
			defer f.Close()
			out = f
		}
		if err := tracer.WriteJSONL(out); err != nil {
			log.Fatalf("trace dump: %v", err)
		}
	}
}

# Ripple build/test entry points. `make ci` is the full gate: vet, build,
# the race-enabled test run, and a short chaos soak.

GO ?= go

# Fixed seed matrix for the soak gate: short by default so ci stays fast.
# Widen it for longer campaigns, e.g. `make soak SOAK_SEEDS=1,2,3,4,5,6,7,8`.
SOAK_SEEDS ?= 1,2,3

.PHONY: ci vet build test race bench soak

ci: vet build race soak

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Race-enabled end-to-end chaos soak: PageRank + SUMMA to their fault-free
# answers under transient faults, duplication, jitter, and primary kills.
soak:
	RIPPLE_SOAK_SEEDS=$(SOAK_SEEDS) $(GO) test -race -count=1 \
		-run 'TestSoakUnderChaos|TestEngineAutoRecoversFromPrimaryKill|TestNoSyncSurvivesDuplicationAndJitter' \
		./internal/chaos/ ./internal/ebsp/

// Package metrics provides the lightweight instrumentation used by the
// stores, the EBSP engine, and the benchmark harness to report the paper's
// cost drivers: synchronization barriers, steps, messages, marshalled bytes,
// and store I/O.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Collector accumulates counters, latency histograms, and gauges. The zero
// value is ready to use, and all methods are safe for concurrent use. A nil
// *Collector is also valid: every method is a no-op and every accessor
// returns a nil (itself no-op) instrument, so instrumented code never needs
// nil checks.
type Collector struct {
	steps           atomic.Int64
	barriers        atomic.Int64
	messagesSent    atomic.Int64
	messagesMerged  atomic.Int64
	computeCalls    atomic.Int64
	marshalledBytes atomic.Int64
	storeGets       atomic.Int64
	storePuts       atomic.Int64
	storeDeletes    atomic.Int64
	spills          atomic.Int64
	aggRounds       atomic.Int64
	recoveries      atomic.Int64
	retries         atomic.Int64
	failovers       atomic.Int64
	faultsInjected  atomic.Int64
	stepsRerun      atomic.Int64
	rpcCalls        atomic.Int64
	rpcRetries      atomic.Int64

	// Latency histograms (nanoseconds), per the paper's §VI cost drivers.
	stepDuration    Histogram // whole step, barrier included
	barrierWait     Histogram // per part: time idle at the barrier behind the slowest part
	partCompute     Histogram // per part: one part's share of one step
	checkpointWrite Histogram // one barrier-state snapshot
	storeWrite      Histogram // one durable store write (diskstore log append)

	// Per-endpoint RPC latency histograms, created on first use by the
	// networked transport (one per wire opcode: get, put, snapshot, ...).
	endpoints sync.Map // string -> *Histogram

	// Per-server heartbeat round-trip histograms and liveness gauges,
	// created on first use by the transport's failure detector. Keyed by
	// the client's server index.
	heartbeatRTT sync.Map // int -> *Histogram
	serverUp     sync.Map // int -> *Gauge

	// Gauges.
	queueDepth        PartGauge  // no-sync: per-part queue depth
	enabledComponents Gauge      // sync: compute invocations in the latest step
	inFlight          Gauge      // envelopes emitted but not yet delivered
	stepSkewRatio     FloatGauge // latest step: max/median part compute time
	stragglerPart     Gauge      // latest step: part that set the critical path

	// LSM storage-engine instruments (see lsm.go), populated by diskstore.
	lsm LSMStats
}

// StepDurations is the whole-step latency histogram.
func (c *Collector) StepDurations() *Histogram {
	if c == nil {
		return nil
	}
	return &c.stepDuration
}

// BarrierWaits is the per-part barrier wait histogram: how long each part
// idled behind the step's slowest part.
func (c *Collector) BarrierWaits() *Histogram {
	if c == nil {
		return nil
	}
	return &c.barrierWait
}

// PartComputes is the per-part step compute-time histogram.
func (c *Collector) PartComputes() *Histogram {
	if c == nil {
		return nil
	}
	return &c.partCompute
}

// CheckpointWrites is the checkpoint snapshot latency histogram.
func (c *Collector) CheckpointWrites() *Histogram {
	if c == nil {
		return nil
	}
	return &c.checkpointWrite
}

// StoreWrites is the durable store write latency histogram.
func (c *Collector) StoreWrites() *Histogram {
	if c == nil {
		return nil
	}
	return &c.storeWrite
}

// Endpoint returns the named RPC latency histogram, creating it on first
// use. A nil collector returns a nil (no-op) histogram, like the fixed
// instruments.
func (c *Collector) Endpoint(name string) *Histogram {
	if c == nil {
		return nil
	}
	if h, ok := c.endpoints.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := c.endpoints.LoadOrStore(name, new(Histogram))
	return h.(*Histogram)
}

// EndpointSnapshots returns a snapshot of every per-endpoint RPC latency
// histogram, keyed by endpoint name. A nil collector returns nil.
func (c *Collector) EndpointSnapshots() map[string]HistogramSnapshot {
	if c == nil {
		return nil
	}
	out := make(map[string]HistogramSnapshot)
	c.endpoints.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return out
}

// HeartbeatRTT returns the heartbeat round-trip histogram for one server,
// creating it on first use. A nil collector returns a nil (no-op) histogram.
func (c *Collector) HeartbeatRTT(server int) *Histogram {
	if c == nil {
		return nil
	}
	if h, ok := c.heartbeatRTT.Load(server); ok {
		return h.(*Histogram)
	}
	h, _ := c.heartbeatRTT.LoadOrStore(server, new(Histogram))
	return h.(*Histogram)
}

// HeartbeatRTTSnapshots returns a snapshot of every per-server heartbeat RTT
// histogram, keyed by server index. A nil collector returns nil.
func (c *Collector) HeartbeatRTTSnapshots() map[int]HistogramSnapshot {
	if c == nil {
		return nil
	}
	out := make(map[int]HistogramSnapshot)
	c.heartbeatRTT.Range(func(k, v any) bool {
		out[k.(int)] = v.(*Histogram).Snapshot()
		return true
	})
	return out
}

// ServerUp returns the liveness gauge for one server (1 = the failure
// detector considers it up, 0 = down), creating it on first use. A nil
// collector returns a nil (no-op) gauge.
func (c *Collector) ServerUp(server int) *Gauge {
	if c == nil {
		return nil
	}
	if g, ok := c.serverUp.Load(server); ok {
		return g.(*Gauge)
	}
	g, _ := c.serverUp.LoadOrStore(server, new(Gauge))
	return g.(*Gauge)
}

// ServerUpSnapshots returns each tracked server's liveness gauge value,
// keyed by server index. A nil collector returns nil.
func (c *Collector) ServerUpSnapshots() map[int]int64 {
	if c == nil {
		return nil
	}
	out := make(map[int]int64)
	c.serverUp.Range(func(k, v any) bool {
		out[k.(int)] = v.(*Gauge).Load()
		return true
	})
	return out
}

// AddRPCCalls records transport RPC round-trips.
func (c *Collector) AddRPCCalls(n int64) {
	if c != nil {
		c.rpcCalls.Add(n)
	}
}

// AddRPCRetries records transport-level RPC retries (a request re-sent after
// a timeout or connection failure, below the engine's own retry layer).
func (c *Collector) AddRPCRetries(n int64) {
	if c != nil {
		c.rpcRetries.Add(n)
	}
}

// QueueDepths is the per-part queue depth gauge (no-sync execution).
func (c *Collector) QueueDepths() *PartGauge {
	if c == nil {
		return nil
	}
	return &c.queueDepth
}

// EnabledComponents gauges the compute invocations of the latest step
// (selective enablement: how much of the job actually ran).
func (c *Collector) EnabledComponents() *Gauge {
	if c == nil {
		return nil
	}
	return &c.enabledComponents
}

// InFlightEnvelopes gauges envelopes emitted but not yet delivered.
func (c *Collector) InFlightEnvelopes() *Gauge {
	if c == nil {
		return nil
	}
	return &c.inFlight
}

// StepSkewRatio gauges the latest synchronized step's compute skew: the
// slowest part's compute time over the median part's (1.0 = balanced).
func (c *Collector) StepSkewRatio() *FloatGauge {
	if c == nil {
		return nil
	}
	return &c.stepSkewRatio
}

// StragglerPart gauges which part set the latest step's critical path.
func (c *Collector) StragglerPart() *Gauge {
	if c == nil {
		return nil
	}
	return &c.stragglerPart
}

// AddSteps records completed BSP steps.
func (c *Collector) AddSteps(n int64) {
	if c != nil {
		c.steps.Add(n)
	}
}

// AddBarriers records synchronization barriers crossed.
func (c *Collector) AddBarriers(n int64) {
	if c != nil {
		c.barriers.Add(n)
	}
}

// AddMessagesSent records BSP messages sent.
func (c *Collector) AddMessagesSent(n int64) {
	if c != nil {
		c.messagesSent.Add(n)
	}
}

// AddMessagesCombined records messages eliminated by a combiner.
func (c *Collector) AddMessagesCombined(n int64) {
	if c != nil {
		c.messagesMerged.Add(n)
	}
}

// AddComputeInvocations records component compute invocations.
func (c *Collector) AddComputeInvocations(n int64) {
	if c != nil {
		c.computeCalls.Add(n)
	}
}

// AddMarshalledBytes records bytes marshalled across emulated partitions.
func (c *Collector) AddMarshalledBytes(n int64) {
	if c != nil {
		c.marshalledBytes.Add(n)
	}
}

// AddStoreGets records key/value store gets.
func (c *Collector) AddStoreGets(n int64) {
	if c != nil {
		c.storeGets.Add(n)
	}
}

// AddStorePuts records key/value store puts.
func (c *Collector) AddStorePuts(n int64) {
	if c != nil {
		c.storePuts.Add(n)
	}
}

// AddStoreDeletes records key/value store deletes.
func (c *Collector) AddStoreDeletes(n int64) {
	if c != nil {
		c.storeDeletes.Add(n)
	}
}

// AddSpills records spill batches written to the transport table.
func (c *Collector) AddSpills(n int64) {
	if c != nil {
		c.spills.Add(n)
	}
}

// AddAggregationRounds records extra table-based aggregation rounds.
func (c *Collector) AddAggregationRounds(n int64) {
	if c != nil {
		c.aggRounds.Add(n)
	}
}

// AddRecoveries records fault-recovery replays.
func (c *Collector) AddRecoveries(n int64) {
	if c != nil {
		c.recoveries.Add(n)
	}
}

// AddRetries records transient-failure retries performed by the engine.
func (c *Collector) AddRetries(n int64) {
	if c != nil {
		c.retries.Add(n)
	}
}

// AddFailovers records primary failovers (replica promotions) in the store.
func (c *Collector) AddFailovers(n int64) {
	if c != nil {
		c.failovers.Add(n)
	}
}

// AddFaultsInjected records faults injected by a chaos layer.
func (c *Collector) AddFaultsInjected(n int64) {
	if c != nil {
		c.faultsInjected.Add(n)
	}
}

// AddStepsRerun records steps re-executed during automatic failover recovery.
func (c *Collector) AddStepsRerun(n int64) {
	if c != nil {
		c.stepsRerun.Add(n)
	}
}

// Snapshot is a point-in-time copy of all counters.
type Snapshot struct {
	Steps              int64
	Barriers           int64
	MessagesSent       int64
	MessagesCombined   int64
	ComputeInvocations int64
	MarshalledBytes    int64
	StoreGets          int64
	StorePuts          int64
	StoreDeletes       int64
	Spills             int64
	AggregationRounds  int64
	Recoveries         int64
	Retries            int64
	Failovers          int64
	FaultsInjected     int64
	StepsRerun         int64
	RPCCalls           int64
	RPCRetries         int64
}

// Snapshot returns a copy of the current counter values. A nil collector
// yields a zero snapshot.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Steps:              c.steps.Load(),
		Barriers:           c.barriers.Load(),
		MessagesSent:       c.messagesSent.Load(),
		MessagesCombined:   c.messagesMerged.Load(),
		ComputeInvocations: c.computeCalls.Load(),
		MarshalledBytes:    c.marshalledBytes.Load(),
		StoreGets:          c.storeGets.Load(),
		StorePuts:          c.storePuts.Load(),
		StoreDeletes:       c.storeDeletes.Load(),
		Spills:             c.spills.Load(),
		AggregationRounds:  c.aggRounds.Load(),
		Recoveries:         c.recoveries.Load(),
		Retries:            c.retries.Load(),
		Failovers:          c.failovers.Load(),
		FaultsInjected:     c.faultsInjected.Load(),
		StepsRerun:         c.stepsRerun.Load(),
		RPCCalls:           c.rpcCalls.Load(),
		RPCRetries:         c.rpcRetries.Load(),
	}
}

// Reset zeroes all counters, histograms, and gauges.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.steps.Store(0)
	c.barriers.Store(0)
	c.messagesSent.Store(0)
	c.messagesMerged.Store(0)
	c.computeCalls.Store(0)
	c.marshalledBytes.Store(0)
	c.storeGets.Store(0)
	c.storePuts.Store(0)
	c.storeDeletes.Store(0)
	c.spills.Store(0)
	c.aggRounds.Store(0)
	c.recoveries.Store(0)
	c.retries.Store(0)
	c.failovers.Store(0)
	c.faultsInjected.Store(0)
	c.stepsRerun.Store(0)
	c.rpcCalls.Store(0)
	c.rpcRetries.Store(0)
	c.endpoints.Range(func(k, _ any) bool {
		c.endpoints.Delete(k)
		return true
	})
	c.heartbeatRTT.Range(func(k, _ any) bool {
		c.heartbeatRTT.Delete(k)
		return true
	})
	c.serverUp.Range(func(k, _ any) bool {
		c.serverUp.Delete(k)
		return true
	})
	c.stepDuration.reset()
	c.barrierWait.reset()
	c.partCompute.reset()
	c.checkpointWrite.reset()
	c.storeWrite.reset()
	c.queueDepth.reset()
	c.enabledComponents.Set(0)
	c.inFlight.Set(0)
	c.stepSkewRatio.Set(0)
	c.stragglerPart.Set(0)
	c.lsm.reset()
}

// Sub returns the difference s - old, counter by counter.
func (s Snapshot) Sub(old Snapshot) Snapshot {
	return Snapshot{
		Steps:              s.Steps - old.Steps,
		Barriers:           s.Barriers - old.Barriers,
		MessagesSent:       s.MessagesSent - old.MessagesSent,
		MessagesCombined:   s.MessagesCombined - old.MessagesCombined,
		ComputeInvocations: s.ComputeInvocations - old.ComputeInvocations,
		MarshalledBytes:    s.MarshalledBytes - old.MarshalledBytes,
		StoreGets:          s.StoreGets - old.StoreGets,
		StorePuts:          s.StorePuts - old.StorePuts,
		StoreDeletes:       s.StoreDeletes - old.StoreDeletes,
		Spills:             s.Spills - old.Spills,
		AggregationRounds:  s.AggregationRounds - old.AggregationRounds,
		Recoveries:         s.Recoveries - old.Recoveries,
		Retries:            s.Retries - old.Retries,
		Failovers:          s.Failovers - old.Failovers,
		FaultsInjected:     s.FaultsInjected - old.FaultsInjected,
		StepsRerun:         s.StepsRerun - old.StepsRerun,
		RPCCalls:           s.RPCCalls - old.RPCCalls,
		RPCRetries:         s.RPCRetries - old.RPCRetries,
	}
}

// String renders the snapshot as a compact single-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"steps=%d barriers=%d msgs=%d combined=%d computes=%d marshalled=%dB gets=%d puts=%d dels=%d spills=%d aggRounds=%d recoveries=%d retries=%d failovers=%d faults=%d stepsRerun=%d rpcCalls=%d rpcRetries=%d",
		s.Steps, s.Barriers, s.MessagesSent, s.MessagesCombined, s.ComputeInvocations,
		s.MarshalledBytes, s.StoreGets, s.StorePuts, s.StoreDeletes, s.Spills,
		s.AggregationRounds, s.Recoveries, s.Retries, s.Failovers, s.FaultsInjected, s.StepsRerun,
		s.RPCCalls, s.RPCRetries)
}

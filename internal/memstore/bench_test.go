package memstore

import (
	"testing"
)

// BenchmarkBoundaryPut measures a cross-partition Put+Get round trip — the
// codec-dominated path every remote store operation pays.
func BenchmarkBoundaryPut(b *testing.B) {
	s := New(WithParts(4))
	defer func() { _ = s.Close() }()
	tab, err := s.CreateTable("bench")
	if err != nil {
		b.Fatal(err)
	}
	val := make([]float64, 32)
	for i := range val {
		val[i] = float64(i) * 1.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.Put(i&1023, val); err != nil {
			b.Fatal(err)
		}
		if _, _, err := tab.Get(i & 1023); err != nil {
			b.Fatal(err)
		}
	}
}

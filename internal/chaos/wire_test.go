package chaos

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/netstore"
)

func TestParseWireRoundTrip(t *testing.T) {
	in := "seed=3,net.conn=0.005,net.drop=0.01,net.loss=0.02,net.dup=0.05," +
		"net.delay=2ms@0.1,partition=c2s:1@50+200,partition=s2c:0@10+5,netkill=2@120"
	sched, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{
		Seed:            3,
		NetConnDropRate: 0.005, NetDropRate: 0.01, NetLossRate: 0.02, NetDupRate: 0.05,
		NetDelay: 2 * time.Millisecond, NetDelayRate: 0.1,
		Partitions: []Partition{
			{C2S: true, Server: 1, FromFrame: 50, Frames: 200},
			{C2S: false, Server: 0, FromFrame: 10, Frames: 5},
		},
		NetKills: []NetKill{{Server: 2, AfterFrames: 120}},
	}
	if !reflect.DeepEqual(sched, want) {
		t.Fatalf("Parse = %+v, want %+v", sched, want)
	}
	again, err := Parse(sched.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", sched.String(), err)
	}
	if again.String() != sched.String() {
		t.Errorf("round trip: %q != %q", again.String(), sched.String())
	}
}

func TestParseRejectsBadWireInput(t *testing.T) {
	for _, s := range []string{
		"net.drop=1.5",        // rate outside [0,1]
		"net.delay=-1ms",      // negative delay
		"partition=1@5+5",     // missing direction
		"partition=up:1@5+5",  // bad direction
		"partition=c2s:1@5",   // missing window length
		"partition=c2s:1@5+0", // empty window
		"partition=c2s:x@5+5", // bad server
		"netkill=1",           // missing frame count
		"netkill=x@5",         // bad server
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

// driveWire replays a fixed frame workload against a wire injector and
// returns its records plus the fault decisions it made.
func driveWire(seed int64) ([]Record, []netstore.WireFault) {
	inj := NewInjector(Schedule{
		Seed: seed, NetConnDropRate: 0.1, NetDropRate: 0.1,
		NetLossRate: 0.1, NetDupRate: 0.1,
		NetDelay: time.Microsecond, NetDelayRate: 0.1,
	})
	var faults []netstore.WireFault
	for i := 0; i < 60; i++ {
		faults = append(faults, inj.SendFault(i%3, 7)) // opGet-ish
		faults = append(faults, inj.RecvFault(i%3, 7))
	}
	return inj.Records(), faults
}

func TestWireInjectorDeterminism(t *testing.T) {
	r1, f1 := driveWire(11)
	r2, f2 := driveWire(11)
	if len(r1) == 0 {
		t.Fatal("no wire faults injected at 10% rates over 120 frames")
	}
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(f1, f2) {
		t.Error("same seed diverged")
	}
	if r3, _ := driveWire(12); reflect.DeepEqual(r1, r3) {
		t.Error("seeds 11 and 12 injected identical wire fault sets")
	}
}

func TestPartitionWindowDropsAndHeartbeats(t *testing.T) {
	inj := NewInjector(Schedule{
		Seed:       1,
		Partitions: []Partition{{C2S: true, Server: 1, FromFrame: 3, Frames: 4}},
	})
	// Frames 0..2 pass, 3..6 dropped, 7+ pass. Only server 1, only c2s.
	for i := 0; i < 10; i++ {
		if f := inj.SendFault(0, 7); f.Drop {
			t.Fatalf("frame %d to server 0 dropped", i)
		}
	}
	var drops int
	for i := 0; i < 10; i++ {
		f := inj.SendFault(1, 7)
		inWindow := i >= 3 && i < 7
		if f.Drop != inWindow {
			t.Fatalf("frame %d to server 1: drop=%v, want %v", i, f.Drop, inWindow)
		}
		if f.Drop {
			drops++
			// Heartbeats see the open window without advancing the clock.
			// PingBlocked consults the *next* frame's clock position, so it
			// reports open only while the window still has frames left.
			if nextInWindow := i+1 < 7; inj.PingBlocked(1, true) != nextInWindow {
				t.Fatalf("PingBlocked after frame %d = %v, want %v",
					i, !nextInWindow, nextInWindow)
			}
			if inj.PingBlocked(1, false) {
				t.Fatal("s2c ping blocked by a c2s partition")
			}
		}
	}
	if drops != 4 {
		t.Fatalf("dropped %d frames, want 4", drops)
	}
	if inj.PingBlocked(1, true) {
		t.Error("ping still blocked after window closed")
	}
	// Responses are unaffected by a c2s window.
	if f := inj.RecvFault(1, 7); f.Drop {
		t.Error("c2s partition dropped a response")
	}
	// One record for the whole window.
	var partRecords int
	for _, r := range inj.Records() {
		if r.Kind == "partition" {
			partRecords++
		}
	}
	if partRecords != 1 {
		t.Errorf("partition recorded %d times, want once per window", partRecords)
	}
}

func TestNetKillFiresOnce(t *testing.T) {
	inj := NewInjector(Schedule{
		Seed:     1,
		NetKills: []NetKill{{Server: 0, AfterFrames: 5}},
	})
	var mu sync.Mutex
	var fired []int
	done := make(chan struct{})
	inj.OnNetKill(func(server int) {
		mu.Lock()
		fired = append(fired, server)
		mu.Unlock()
		close(done)
	})
	for i := 0; i < 20; i++ {
		inj.SendFault(0, 7)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("netkill callback never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[0] != 0 {
		t.Fatalf("fired = %v, want exactly [0]", fired)
	}
	var killRecords int
	for _, r := range inj.Records() {
		if r.Kind == "netkill" {
			killRecords++
		}
	}
	if killRecords != 1 {
		t.Errorf("netkill recorded %d times, want 1", killRecords)
	}
}

// TestWireChaosAgainstFleet mounts the chaos injector as the netstore
// client's wire injector and checks a lossy workload still completes (the
// retry loop absorbs the injected frame loss) and that faults were recorded.
func TestWireChaosAgainstFleet(t *testing.T) {
	var addrs []string
	var servers []*netstore.Server
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := netstore.NewServer()
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
		servers = append(servers, srv)
	}

	inj := NewInjector(Schedule{Seed: 5, NetDropRate: 0.05, NetLossRate: 0.05, NetDupRate: 0.1})
	c, err := netstore.Dial(addrs,
		netstore.WithWireInjector(inj),
		netstore.WithRequestTimeout(150*time.Millisecond),
		netstore.WithRetries(10),
		netstore.WithBackoffSeed(5),
	)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })

	tbl, err := c.CreateTable("w", kvstore.WithParts(4))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := tbl.Put(i, i*3); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		v, ok, err := tbl.Get(i)
		if err != nil || !ok || v.(int) != i*3 {
			t.Fatalf("get %d = %v %v %v", i, v, ok, err)
		}
	}
	if len(inj.Records()) == 0 {
		t.Error("no wire faults recorded over a lossy 80-op workload")
	}
}

// Command ripple-serve is Ripple's long-lived multi-tenant job service: a
// daemon that accepts analytics submissions over HTTP/JSON and multiplexes
// them onto shared engines above one store — in-process (memory or disk) or
// a part-server fleet reached with -net-addrs.
//
// API (see DESIGN.md §10 for the full contract):
//
//	POST   /v1/jobs                submit {"workload": ..., "params": {...}}
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           job status
//	GET    /v1/jobs/{id}/result    result document (409 until finished)
//	GET    /v1/jobs/{id}/events    SSE progress stream
//	DELETE /v1/jobs/{id}           cancel
//	GET    /v1/workloads           registered workload names
//
// Tenancy rides the X-API-Key header; each key gets an independent
// -tenant-quota of live jobs. Job records persist through the store SPI, so
// with -data-dir (or a part-server fleet) a restarted daemon re-lists every
// job and resumes the ones that were mid-run from their checkpoints.
//
// The observability surface mounts on the same address: /metrics
// (Prometheus text), /debug/profilez and /debug/pprof/, /debug/logz, and —
// when fronting a fleet — /fleet/metrics, the merged fleet exposition.
//
// The bound address is printed on stdout as "listening <addr>" once the
// listener is up (pass -addr 127.0.0.1:0 and parse it). SIGINT/SIGTERM shut
// down gracefully: running jobs stop at their next barrier but stay
// persisted as running, ready to be resumed by the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ripple/internal/diskstore"
	"ripple/internal/ebsp"
	"ripple/internal/fleet"
	"ripple/internal/httpx"
	"ripple/internal/kvstore"
	"ripple/internal/logring"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/netstore"
	"ripple/internal/profile"
	"ripple/internal/serve"
	"ripple/internal/trace"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "HTTP address to serve the job API on")
		dataDir       = flag.String("data-dir", "", "back jobs with the LSM disk store at this directory (restart-resume); empty uses the in-memory store")
		netAddrs      = flag.String("net-addrs", "", "comma-separated part-server addresses; the daemon then fronts the fleet instead of an in-process store")
		parts         = flag.Int("parts", 4, "default part count for the in-process store")
		maxConcurrent = flag.Int("max-concurrent", 2, "execution slots: jobs running at once")
		queueDepth    = flag.Int("queue-depth", 16, "bounded FIFO of admitted-but-waiting jobs")
		tenantQuota   = flag.Int("tenant-quota", 4, "max live (queued+running) jobs per API key")
		ckptEvery     = flag.Int("checkpoint-every", 4, "checkpoint synchronized jobs every n steps")
		syncEvery     = flag.Int("sync-every", 0, "with -data-dir: fsync-acknowledge every nth write (1 = every write durable before Put returns, 0 = fsync on flush/checkpoint only)")
		gcWindow      = flag.Duration("group-commit-window", 0, "with -data-dir: hold each WAL fsync open this long so concurrent durable writes share it (0 = adaptive batching only)")
		replicas      = flag.Int("net-replicas", 2, "replicas per part when fronting a fleet")
		traceCap      = flag.Int("trace-cap", trace.DefaultCapacity, "span ring-buffer capacity")
		profileCap    = flag.Int("profile-cap", profile.DefaultCapacity, "step-profile ring capacity")
		logLevel      = flag.String("log-level", "info", "structured log level: off, error, warn, info, debug")
		shutdownWait  = flag.Duration("shutdown-wait", 10*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	collector := &metrics.Collector{}
	tracer := trace.New(*traceCap)
	profiler := profile.New(*profileCap)
	ring := logring.New(logring.DefaultCapacity)
	logger := buildLogger(*logLevel, ring)

	store, client, err := openStore(*dataDir, *netAddrs, *parts, *replicas, *syncEvery, *gcWindow, collector, tracer)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer func() { _ = store.Close() }()

	svc, err := serve.New(serve.Options{
		Store:           store,
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		TenantQuota:     *tenantQuota,
		CheckpointEvery: *ckptEvery,
		Metrics:         collector,
		Tracer:          tracer,
		Logger:          logger,
		EngineOptions:   []ebsp.Option{ebsp.WithProfiler(profiler), ebsp.WithLogger(logger)},
	})
	if err != nil {
		log.Fatalf("job service: %v", err)
	}
	if err := svc.Start(); err != nil {
		log.Fatalf("job service start: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", svc.Handler())
	mux.Handle("/metrics", metrics.HandlerTracer(collector, tracer))
	profile.AttachDebug(mux, profiler)
	logring.Attach(mux, ring)
	if client != nil {
		fc := &fleet.Collector{Client: client, Engine: collector, EngineTracer: tracer}
		mux.Handle("/fleet/metrics", fc.Handler())
	}

	srv, err := httpx.Serve(*addr, mux)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	// The harness contract: one parseable line with the bound address.
	fmt.Printf("listening %s\n", srv.Addr())
	logger.Info("ripple-serve up", "addr", srv.Addr(), "workloads", strings.Join(serve.Workloads(), ","))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		logger.Info("shutting down", "signal", sig.String())
	case err := <-srv.Done():
		if err != nil {
			log.Fatalf("serve loop: %v", err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
	defer cancel()
	// Stop the control plane first (no new submissions), then the jobs:
	// running work halts at its next barrier but stays persisted as running,
	// so the next start resumes it.
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	if err := svc.Close(ctx); err != nil {
		logger.Error("service shutdown", "err", err)
	}
}

// openStore builds the backing store: a part-server fleet client, the disk
// store, or the in-memory store — the service is indifferent, which is the
// paper's SPI argument restated as a deployment choice.
func openStore(dataDir, netAddrs string, parts, replicas, syncEvery int, gcWindow time.Duration, m *metrics.Collector, t *trace.Tracer) (kvstore.Store, *netstore.Client, error) {
	switch {
	case netAddrs != "":
		addrs := strings.Split(netAddrs, ",")
		c, err := netstore.Dial(addrs,
			netstore.WithReplicas(replicas),
			netstore.WithMetrics(m),
			netstore.WithTracer(t),
		)
		if err != nil {
			return nil, nil, err
		}
		return c, c, nil
	case dataDir != "":
		ds, err := diskstore.New(dataDir,
			diskstore.WithParts(parts),
			diskstore.WithSyncEvery(syncEvery),
			diskstore.WithGroupCommitWindow(gcWindow),
			diskstore.WithMetrics(m),
			diskstore.WithTracer(t),
		)
		if err != nil {
			return nil, nil, err
		}
		return ds, nil, nil
	default:
		return memstore.New(memstore.WithParts(parts), memstore.WithMetrics(m)), nil, nil
	}
}

// buildLogger fans structured logs out to stderr and the /debug/logz ring.
func buildLogger(level string, ring *logring.Ring) *slog.Logger {
	if level == "off" {
		return slog.New(ring.Handler(slog.LevelError))
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		log.Fatalf("unknown -log-level %q (want off, error, warn, info, debug)", level)
	}
	return slog.New(logring.Fanout(
		slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}),
		ring.Handler(lvl)))
}

// Package mapreduce layers the MapReduce and iterated-MapReduce programming
// models on top of K/V EBSP (paper Fig. 2): a MapReduce job is an EBSP job
// with exactly two steps — one acting like a map and one like a reduce —
// and components carry no private state between them; everything flows in
// messages. Iterated MapReduce chains map/reduce step pairs, persisting the
// dataset to a key/value table between a reduce and the following map (the
// extra I/O and synchronization the paper's direct EBSP style eliminates).
package mapreduce

import (
	"errors"
	"fmt"

	"ripple/internal/codec"
	"ripple/internal/ebsp"
)

// ErrBadJob is returned for invalid job specifications.
var ErrBadJob = errors.New("mapreduce: invalid job")

// Emitter receives the pairs a Mapper or Reducer produces.
type Emitter func(key, value any)

// Mapper transforms one input pair into intermediate pairs.
type Mapper interface {
	Map(key, value any, emit Emitter) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(key, value any, emit Emitter) error

// Map implements Mapper.
func (f MapperFunc) Map(key, value any, emit Emitter) error { return f(key, value, emit) }

// PhaseContext exposes the underlying EBSP step context to phase functions
// that need more than pure key/value transformation: aggregators and the
// step number. *ebsp.Context satisfies it directly.
type PhaseContext interface {
	// AggregateValue feeds the named aggregator; results are readable in the
	// following step (so a map-phase input is readable in the reduce phase).
	AggregateValue(name string, v any)
	// AggregateResult reads the named aggregator's previous-step result.
	AggregateResult(name string) any
	// StepNum is the underlying BSP step number.
	StepNum() int
}

// ContextMapper is a Mapper that also wants the phase context. When a job's
// Mapper implements it, MapWithContext is called instead of Map.
type ContextMapper interface {
	MapWithContext(pc PhaseContext, key, value any, emit Emitter) error
}

// ContextReducer is a Reducer that also wants the phase context.
type ContextReducer interface {
	ReduceWithContext(pc PhaseContext, key any, values []any, emit Emitter) error
}

// Reducer folds all intermediate values for one key into output pairs.
type Reducer interface {
	Reduce(key any, values []any, emit Emitter) error
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key any, values []any, emit Emitter) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key any, values []any, emit Emitter) error {
	return f(key, values, emit)
}

// Combiner pairwise-combines intermediate values for one key before the
// reduce, cutting shuffle volume. It must be associative and commutative.
type Combiner func(key, v1, v2 any) any

// Job is a single map-reduce couplet over key/value tables.
type Job struct {
	// Name labels the job.
	Name string
	// Input names the table scanned by the map phase.
	Input string
	// Output names the table the reduce phase writes (created if missing,
	// consistently partitioned with Input).
	Output string
	// Mapper and Reducer are the two phase functions.
	Mapper  Mapper
	Reducer Reducer
	// Combiner optionally combines intermediate values.
	Combiner Combiner
	// Aggregators are readable in the reduce phase and in the results.
	Aggregators map[string]ebsp.Aggregator
	// NeedsOrder requests key-ordered reduce invocations per part, matching
	// Hadoop's sorted reduce input.
	NeedsOrder bool
}

// mrMsg carries one intermediate pair from map to reduce.
type mrMsg struct {
	Val any
}

func init() {
	codec.Register(mrMsg{})

	// Fast wire codec: every intermediate map→reduce pair is an mrMsg, so
	// the wrapper itself costs one tag byte. The payload uses AnyRef: inside
	// a spill batch a gob-fallback Val is deferred to the batch's shared
	// side-car stream rather than carrying its own type descriptors.
	codec.RegisterFast(mrMsg{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			return e.AnyRef(v.(mrMsg).Val)
		},
		Decode: func(d *codec.Decoder) (any, error) {
			val, err := d.Any()
			if err != nil {
				return nil, err
			}
			return mrMsg{Val: val}, nil
		},
		Copy: func(v any) (any, error) {
			val, err := codec.DeepCopy(v.(mrMsg).Val)
			if err != nil {
				return nil, err
			}
			return mrMsg{Val: val}, nil
		},
	})
}

func (j *Job) validate() error {
	switch {
	case j.Mapper == nil:
		return fmt.Errorf("%w: no mapper", ErrBadJob)
	case j.Reducer == nil:
		return fmt.Errorf("%w: no reducer", ErrBadJob)
	case j.Input == "":
		return fmt.Errorf("%w: no input table", ErrBadJob)
	case j.Output == "":
		return fmt.Errorf("%w: no output table", ErrBadJob)
	}
	return nil
}

// mrCombiner adapts a Combiner to the EBSP message-combiner interface.
type mrCombiner struct {
	c Combiner
}

func (m mrCombiner) CombineMessages(key, m1, m2 any) any {
	return mrMsg{Val: m.c(key, m1.(mrMsg).Val, m2.(mrMsg).Val)}
}

// Run executes one map-reduce couplet: step 1 maps every input pair (the
// shuffle is the EBSP message flow), step 2 reduces.
func Run(e *ebsp.Engine, job *Job) (*ebsp.Result, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if _, ok := e.Store().LookupTable(job.Input); !ok {
		return nil, fmt.Errorf("mapreduce: input table %q does not exist", job.Input)
	}

	compute := &mrCompute{job: job}
	spec := &ebsp.Job{
		Name:        job.Name,
		StateTables: []string{job.Output},
		Placement:   job.Input,
		Compute:     compute,
		Aggregators: job.Aggregators,
		Properties:  ebsp.Properties{NeedsOrder: job.NeedsOrder},
		MaxSteps:    3, // map, reduce, plus one drain step for cross-key emits
		Loaders: []ebsp.Loader{&ebsp.TableLoader{
			Table: job.Input,
			Store: e.Store(),
			Each: func(k, v any, lc *ebsp.LoadContext) error {
				lc.SendMessage(k, mrMsg{Val: v})
				return nil
			},
		}},
	}
	if job.Combiner != nil {
		spec.Combiner = mrCombiner{c: job.Combiner}
	}
	return e.Run(spec)
}

// mrCompute is the EBSP component function emulating the two MapReduce
// phases by step parity.
type mrCompute struct {
	job *Job
}

func (m *mrCompute) Compute(ctx *ebsp.Context) bool {
	switch ctx.StepNum() {
	case 1: // map
		for _, raw := range ctx.InputMessages() {
			in := raw.(mrMsg)
			if err := runMap(m.job.Mapper, ctx, in.Val, func(k, v any) {
				ctx.Send(k, mrMsg{Val: v})
			}); err != nil {
				panic(fmt.Sprintf("mapreduce: map %v: %v", ctx.Key(), err))
			}
		}
	case 2: // reduce
		msgs := ctx.InputMessages()
		values := make([]any, 0, len(msgs))
		for _, raw := range msgs {
			values = append(values, raw.(mrMsg).Val)
		}
		err := runReduce(m.job.Reducer, ctx, values, func(k, v any) {
			if k == ctx.Key() {
				ctx.WriteState(0, v)
			} else {
				// Cross-key emits land at the barrier via state creation.
				ctx.CreateState(0, k, v)
			}
		})
		if err != nil {
			panic(fmt.Sprintf("mapreduce: reduce %v: %v", ctx.Key(), err))
		}
	}
	return false
}

// runMap dispatches to the context-aware form when the mapper supports it.
func runMap(m Mapper, ctx *ebsp.Context, value any, emit Emitter) error {
	if cm, ok := m.(ContextMapper); ok {
		return cm.MapWithContext(ctx, ctx.Key(), value, emit)
	}
	return m.Map(ctx.Key(), value, emit)
}

// runReduce dispatches to the context-aware form when the reducer supports
// it.
func runReduce(r Reducer, ctx *ebsp.Context, values []any, emit Emitter) error {
	if cr, ok := r.(ContextReducer); ok {
		return cr.ReduceWithContext(ctx, ctx.Key(), values, emit)
	}
	return r.Reduce(ctx.Key(), values, emit)
}

package ebsp

import (
	"reflect"
	"testing"

	"ripple/internal/codec"
)

// wireTestVal has no fast codec, so inside a batch it must travel through
// the batch's gob side-car and come back intact.
type wireTestVal struct {
	Name string
	N    int
}

func init() { codec.Register(wireTestVal{}) }

// TestEnvelopeBatchSidecar round-trips a spill batch mixing fast-path and
// gob-fallback payloads. The fallback values share the batch's single
// side-car gob stream; decode must restore every envelope exactly.
func TestEnvelopeBatchSidecar(t *testing.T) {
	batch := []envelope{
		{Dst: 1, Val: 0.5, Kind: kindData, Src: 0, Seq: 1},
		{Dst: 2, Val: wireTestVal{Name: "a", N: 7}, Kind: kindData, Src: 0, Seq: 2},
		{Dst: wireTestVal{Name: "key", N: 1}, Val: wireTestVal{Name: "b", N: 8}, Kind: kindData, Src: 1, Seq: 3},
		{Dst: 3, Val: []int32{4, 5}, Kind: kindCreate, Src: 2, Seq: 4},
	}
	data, err := codec.Encode(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("batch round trip mismatch:\n got %#v\nwant %#v", got, batch)
	}
}

// TestEnvelopeBatchNested nests one batch inside another (as a Val). Each
// batch frame carries its own side-car; the inner frame's references must
// not leak into — or resolve against — the outer frame's.
func TestEnvelopeBatchNested(t *testing.T) {
	inner := []envelope{
		{Dst: 10, Val: wireTestVal{Name: "inner", N: 1}, Kind: kindData, Src: 0, Seq: 1},
	}
	outer := []envelope{
		{Dst: 1, Val: wireTestVal{Name: "outer", N: 2}, Kind: kindData, Src: 0, Seq: 2},
		{Dst: 2, Val: inner, Kind: kindData, Src: 0, Seq: 3},
	}
	got, _, err := codec.RoundTrip(outer)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, outer) {
		t.Fatalf("nested batch round trip mismatch:\n got %#v\nwant %#v", got, outer)
	}
}

// TestEnvelopeTraceContextRoundTrip round-trips traced envelopes: the trace
// and span IDs must survive both the batch frame and the queueMsg wrapper,
// and an untraced envelope must encode to the exact pre-trace byte layout
// (the traced flag bit is only set when a trace ID is present).
func TestEnvelopeTraceContextRoundTrip(t *testing.T) {
	traced := []envelope{
		{Dst: 1, Val: 0.5, Kind: kindData, Src: 0, Seq: 1, Trace: 0xdeadbeefcafe, Span: 0x1234},
		{Dst: 2, Val: wireTestVal{Name: "t", N: 3}, Kind: kindContinue, Src: 1, Seq: 2, Trace: 1, Span: ^uint64(0)},
		{Dst: 3, Val: int64(9), Kind: kindData, Src: 2, Seq: 3}, // untraced in a traced batch
	}
	got, _, err := codec.RoundTrip(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, traced) {
		t.Fatalf("traced batch round trip mismatch:\n got %#v\nwant %#v", got, traced)
	}

	qm := queueMsg{Env: envelope{Dst: 4, Val: "v", Kind: kindData, Src: 1, Seq: 5, Trace: 7, Span: 8}, Weight: 2}
	gotQM, _, err := codec.RoundTrip(qm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotQM, qm) {
		t.Fatalf("traced queueMsg round trip mismatch:\n got %#v\nwant %#v", gotQM, qm)
	}

	// Byte-compatibility: with no trace context the encoding must be
	// identical to the historical layout, i.e. the flag bit stays clear.
	plain := envelope{Dst: 1, Val: 0.5, Kind: kindData, Src: 0, Seq: 1}
	withZero, err := codec.Encode([]envelope{plain})
	if err != nil {
		t.Fatal(err)
	}
	stamped := plain
	stamped.Trace, stamped.Span = 0, 0
	same, err := codec.Encode([]envelope{stamped})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withZero, same) {
		t.Fatal("zero trace context changed the wire bytes")
	}
}

// TestQueueMsgGobPayload checks the no-sync path's wrapper with a fallback
// payload: outside a batch frame there is no side-car, so the value must be
// inlined rather than deferred (and must not be silently dropped).
func TestQueueMsgGobPayload(t *testing.T) {
	qm := queueMsg{Env: envelope{Dst: 4, Val: wireTestVal{Name: "q", N: 9}, Kind: kindData, Src: 1, Seq: 5}, Weight: 3}
	got, _, err := codec.RoundTrip(qm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, qm) {
		t.Fatalf("queueMsg round trip mismatch:\n got %#v\nwant %#v", got, qm)
	}
}

package mapreduce

import (
	"sync"
	"testing"

	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
)

func newEngineOn(t *testing.T, store kvstore.Store) *ebsp.Engine {
	t.Helper()
	return ebsp.NewEngine(store)
}

// TestNeedsOrderReduces checks Hadoop-style key-ordered reduce invocations
// per part when the job requests NeedsOrder.
func TestNeedsOrderReduces(t *testing.T) {
	store := memstore.New(memstore.WithParts(3))
	t.Cleanup(func() { _ = store.Close() })
	e := newEngineOn(t, store)
	in, _ := store.CreateTable("oin")
	for i := 0; i < 60; i++ {
		_ = in.Put(i, i)
	}
	var mu sync.Mutex
	perPart := map[int][]int{}
	outTab := "oout"
	job := &Job{
		Name:       "ordered",
		Input:      "oin",
		Output:     outTab,
		NeedsOrder: true,
		Mapper: MapperFunc(func(k, v any, emit Emitter) error {
			emit(k, v) // identity shuffle
			return nil
		}),
		Reducer: ReducerFunc(func(key any, values []any, emit Emitter) error {
			mu.Lock()
			p := in.PartOf(key)
			perPart[p] = append(perPart[p], key.(int))
			mu.Unlock()
			emit(key, values[0])
			return nil
		}),
	}
	if _, err := Run(e, job); err != nil {
		t.Fatal(err)
	}
	total := 0
	for p, keys := range perPart {
		total += len(keys)
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[i-1] {
				t.Errorf("part %d reduced out of order: %v", p, keys)
				break
			}
		}
	}
	if total != 60 {
		t.Errorf("reduced %d keys, want 60", total)
	}
}

// TestMapReduceOnAllStores proves layer portability over the SPI.
func TestMapReduceOnAllStores(t *testing.T) {
	stores := map[string]kvstore.Store{
		"memstore": memstore.New(memstore.WithParts(3)),
	}
	for name, store := range stores {
		t.Run(name, func(t *testing.T) {
			t.Cleanup(func() { _ = store.Close() })
			e := newEngineOn(t, store)
			in, _ := store.CreateTable("pin")
			_ = in.Put(1, "a b a")
			_ = in.Put(2, "b")
			job := *wordCountJob
			job.Input = "pin"
			job.Output = "pout"
			if _, err := Run(e, &job); err != nil {
				t.Fatal(err)
			}
			out, _ := store.LookupTable("pout")
			if v, _, _ := out.Get("a"); v != 2 {
				t.Errorf("a = %v", v)
			}
			if v, _, _ := out.Get("b"); v != 2 {
				t.Errorf("b = %v", v)
			}
		})
	}
}

// Package fleet is Ripple's fleet observability plane: it polls every
// part-server's admin telemetry ops (stats, trace dump, health) plus the
// engine process's own collector and tracer, and presents the fleet as one
// system — a single Prometheus exposition with per-server labels, one
// clock-aligned causal timeline merging client and server RPC spans, and a
// per-server decomposition of client-observed RPC latency into wire time vs
// server execution time.
//
// Telemetry rides the data plane's own framed-TCP connections (see the
// netstore admin ops), so observing a fleet needs no side channel and
// inherits the transport's bounded-retry fault tolerance.
package fleet

import (
	"fmt"
	"io"
	"net/http"
	"sort"

	"ripple/internal/metrics"
	"ripple/internal/netstore"
	"ripple/internal/trace"
)

// ServerEntry is one server's contribution to a fleet snapshot. Err is set
// (and Stats zero) when the server could not be reached — a degraded fleet
// still snapshots.
type ServerEntry struct {
	Server int                  `json:"server"`
	Addr   string               `json:"addr"`
	Stats  netstore.ServerStats `json:"stats"`
	Err    string               `json:"err,omitempty"`
}

// Snapshot is one poll of the whole fleet: per-server admin stats plus the
// failure detector's verdicts and clock-offset estimates from the client.
type Snapshot struct {
	Servers  []ServerEntry           `json:"servers"`
	Statuses []netstore.ServerStatus `json:"statuses,omitempty"`
}

// Collector polls a fleet. Client is the data-plane transport whose admin
// ops and failure detector are used; Engine/EngineTracer are the analytics
// process's own collector and tracer, merged into the exposition so one
// scrape sees both sides of every RPC.
type Collector struct {
	Client       *netstore.Client
	Engine       *metrics.Collector
	EngineTracer *trace.Tracer
}

// Poll snapshots every server over the admin ops. Per-server failures
// degrade to Err entries rather than failing the poll.
func (fc *Collector) Poll() Snapshot {
	var snap Snapshot
	if fc.Client == nil {
		return snap
	}
	statuses := fc.Client.ServerStatuses()
	snap.Statuses = statuses
	addrs := fc.Client.Addrs()
	for s := 0; s < fc.Client.Servers(); s++ {
		e := ServerEntry{Server: s, Addr: addrs[s]}
		st, err := fc.Client.ServerStats(s)
		if err != nil {
			e.Err = err.Error()
		} else {
			e.Stats = st
		}
		snap.Servers = append(snap.Servers, e)
	}
	return snap
}

// WritePrometheus writes the merged fleet exposition: the engine process's
// own series first (counters, histograms, heartbeat RTTs, trace loss), then
// every fleet-level series with server labels. One scrape, whole fleet.
func (fc *Collector) WritePrometheus(w io.Writer) error {
	if err := metrics.WritePrometheusTracer(w, fc.Engine, fc.EngineTracer); err != nil {
		return err
	}
	return WriteFleetPrometheus(w, fc.Poll())
}

// Handler serves the merged fleet exposition, for mounting at /fleet/metrics.
func (fc *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = fc.WritePrometheus(w)
	})
}

// WriteFleetPrometheus renders one fleet snapshot as Prometheus text: gauges
// and counters labelled by server, per-server × per-endpoint service-time
// histograms, and a fleet-wide aggregate histogram per endpoint under
// server="all" (bucket sums across servers — the fleet p99 in one series).
// Output is deterministic for a given snapshot: servers and endpoints are
// emitted in sorted order.
func WriteFleetPrometheus(w io.Writer, snap Snapshot) error {
	// Detector verdicts and clock estimates come from the client's statuses.
	if len(snap.Statuses) > 0 {
		if err := metrics.WriteMeta(w, "ripple_fleet_server_up", "Failure-detector verdict by server: 1 = up, 0 = down.", "gauge"); err != nil {
			return err
		}
		for _, st := range snap.Statuses {
			v := 0
			if st.Up {
				v = 1
			}
			if _, err := fmt.Fprintf(w, "ripple_fleet_server_up{server=\"%d\",addr=%q} %d\n", st.Server, st.Addr, v); err != nil {
				return err
			}
		}
		if err := metrics.WriteMeta(w, "ripple_fleet_server_cold", "Server rejoined after a failure and awaits heal: 1 = cold.", "gauge"); err != nil {
			return err
		}
		for _, st := range snap.Statuses {
			v := 0
			if st.Cold {
				v = 1
			}
			if _, err := fmt.Fprintf(w, "ripple_fleet_server_cold{server=\"%d\"} %d\n", st.Server, v); err != nil {
				return err
			}
		}
		if err := metrics.WriteMeta(w, "ripple_fleet_clock_offset_seconds", "Estimated server span-clock offset relative to the engine timeline.", "gauge"); err != nil {
			return err
		}
		for _, st := range snap.Statuses {
			if _, err := fmt.Fprintf(w, "ripple_fleet_clock_offset_seconds{server=\"%d\"} %g\n", st.Server, float64(st.Clock.OffsetNS)/1e9); err != nil {
				return err
			}
		}
		if err := metrics.WriteMeta(w, "ripple_fleet_clock_error_seconds", "Error bound of the clock-offset estimate (half best RTT plus sample spread).", "gauge"); err != nil {
			return err
		}
		for _, st := range snap.Statuses {
			if _, err := fmt.Fprintf(w, "ripple_fleet_clock_error_seconds{server=\"%d\"} %g\n", st.Server, float64(st.Clock.ErrorNS)/1e9); err != nil {
				return err
			}
		}
	}

	live := make([]ServerEntry, 0, len(snap.Servers))
	for _, e := range snap.Servers {
		if e.Err == "" {
			live = append(live, e)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Server < live[j].Server })

	gauges := []struct {
		name, help string
		v          func(ServerEntry) string
	}{
		{"ripple_fleet_uptime_seconds", "Server uptime.",
			func(e ServerEntry) string { return fmt.Sprintf("%g", float64(e.Stats.UptimeNS)/1e9) }},
		{"ripple_fleet_goroutines", "Goroutines on the server.",
			func(e ServerEntry) string { return fmt.Sprintf("%d", e.Stats.Goroutines) }},
		{"ripple_fleet_heap_bytes", "Server heap bytes in use.",
			func(e ServerEntry) string { return fmt.Sprintf("%d", e.Stats.HeapBytes) }},
		{"ripple_fleet_trace_spans", "Spans retained in the server's trace ring.",
			func(e ServerEntry) string { return fmt.Sprintf("%d", e.Stats.TraceSpans) }},
	}
	for _, g := range gauges {
		if len(live) == 0 {
			break
		}
		if err := metrics.WriteMeta(w, g.name, g.help, "gauge"); err != nil {
			return err
		}
		for _, e := range live {
			if _, err := fmt.Fprintf(w, "%s{server=\"%d\"} %s\n", g.name, e.Server, g.v(e)); err != nil {
				return err
			}
		}
	}
	counters := []struct {
		name, help string
		v          func(ServerEntry) int64
	}{
		{"ripple_fleet_rpc_calls_total", "RPCs served by the server.",
			func(e ServerEntry) int64 { return e.Stats.Counters.RPCCalls }},
		{"ripple_fleet_store_gets_total", "Store gets served.",
			func(e ServerEntry) int64 { return e.Stats.Counters.StoreGets }},
		{"ripple_fleet_store_puts_total", "Store puts served.",
			func(e ServerEntry) int64 { return e.Stats.Counters.StorePuts }},
		{"ripple_fleet_trace_dropped_total", "Spans lost to server trace-ring wraparound.",
			func(e ServerEntry) int64 { return int64(e.Stats.TraceDropped) }},
	}
	for _, ctr := range counters {
		if len(live) == 0 {
			break
		}
		if err := metrics.WriteMeta(w, ctr.name, ctr.help, "counter"); err != nil {
			return err
		}
		for _, e := range live {
			if _, err := fmt.Fprintf(w, "%s{server=\"%d\"} %d\n", ctr.name, e.Server, ctr.v(e)); err != nil {
				return err
			}
		}
	}
	if len(live) > 0 {
		if err := metrics.WriteMeta(w, "ripple_fleet_wire_bytes_total", "Bytes on the wire by server and direction, frame prefixes included.", "counter"); err != nil {
			return err
		}
		for _, e := range live {
			if _, err := fmt.Fprintf(w, "ripple_fleet_wire_bytes_total{server=\"%d\",dir=\"in\"} %d\n", e.Server, e.Stats.WireInBytes); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "ripple_fleet_wire_bytes_total{server=\"%d\",dir=\"out\"} %d\n", e.Server, e.Stats.WireOutBytes); err != nil {
				return err
			}
		}
	}

	// Per-server × per-endpoint service time, plus the bucket-sum aggregate
	// per endpoint under server="all" — the fleet-wide p99 in one series.
	endpoints := map[string]metrics.HistogramSnapshot{}
	any := false
	for _, e := range live {
		for name, h := range e.Stats.Endpoints {
			agg := endpoints[name]
			agg.Count += h.Count
			agg.Sum += h.Sum
			for i := range h.Buckets {
				agg.Buckets[i] += h.Buckets[i]
			}
			endpoints[name] = agg
			any = true
		}
	}
	if any {
		if err := metrics.WriteMeta(w, "ripple_fleet_rpc_latency_seconds", "Server-side RPC service time by server and endpoint (server=\"all\" aggregates the fleet).", "histogram"); err != nil {
			return err
		}
		for _, e := range live {
			names := make([]string, 0, len(e.Stats.Endpoints))
			for n := range e.Stats.Endpoints {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				label := fmt.Sprintf("server=\"%d\",endpoint=%q", e.Server, n)
				if err := metrics.WriteHistogramLabelled(w, "ripple_fleet_rpc_latency_seconds", label, e.Stats.Endpoints[n]); err != nil {
					return err
				}
			}
		}
		names := make([]string, 0, len(endpoints))
		for n := range endpoints {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			label := fmt.Sprintf("server=\"all\",endpoint=%q", n)
			if err := metrics.WriteHistogramLabelled(w, "ripple_fleet_rpc_latency_seconds", label, endpoints[n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// DumpServers drains every server's trace ring over the admin ops into
// ServerDump values ready for Assemble, pairing each with the client's live
// clock-offset estimate. Unreachable servers are skipped (their spans are
// simply absent; Assemble reports the unmatched client spans).
func (fc *Collector) DumpServers(cursors []uint64) ([]ServerDump, []uint64) {
	if fc.Client == nil {
		return nil, cursors
	}
	n := fc.Client.Servers()
	if len(cursors) < n {
		cursors = append(cursors, make([]uint64, n-len(cursors))...)
	}
	offs := fc.Client.ClockOffsets()
	addrs := fc.Client.Addrs()
	var dumps []ServerDump
	for s := 0; s < n; s++ {
		d, err := fc.Client.TraceDump(s, cursors[s])
		if err != nil {
			continue
		}
		cursors[s] = d.Cursor
		dumps = append(dumps, ServerDump{
			Server: s, Addr: addrs[s], Spans: d.Spans, Offset: offs[s],
		})
	}
	return dumps, cursors
}

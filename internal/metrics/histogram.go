package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two buckets. Bucket 0 holds values
// <= 0; bucket i (1..63) holds values v with 2^(i-1) <= v < 2^i, which covers
// the whole positive int64 range.
const histBuckets = 64

// Histogram is a lock-free latency/size histogram with power-of-two buckets.
// The zero value is ready to use, all methods are safe for concurrent use,
// and — like Collector — a nil *Histogram is valid: every method is a no-op
// (or returns zero), so instrumented code never needs nil checks.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns the inclusive upper bound of bucket i (0 for bucket 0,
// 2^i - 1 otherwise).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // max int64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snapshot returns a point-in-time copy. A nil histogram yields a zero
// snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile is Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// reset zeroes the histogram.
func (h *Histogram) reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [histBuckets]int64
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper bound of the bucket holding the rank-⌈q·count⌉ observation. With
// power-of-two buckets the estimate is at most 2x the true value.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// P50 is the median estimate.
func (s HistogramSnapshot) P50() int64 { return s.Quantile(0.50) }

// P95 is the 95th-percentile estimate.
func (s HistogramSnapshot) P95() int64 { return s.Quantile(0.95) }

// P99 is the 99th-percentile estimate.
func (s HistogramSnapshot) P99() int64 { return s.Quantile(0.99) }

// String renders count, mean, and quantiles, interpreting values as
// nanosecond durations.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "count=0"
	}
	mean := time.Duration(s.Sum / s.Count)
	return fmt.Sprintf("count=%d mean=%v p50=%v p95=%v p99=%v",
		s.Count, mean, time.Duration(s.P50()), time.Duration(s.P95()), time.Duration(s.P99()))
}

// Gauge is a settable instantaneous value. The zero value is ready to use
// and a nil *Gauge is a valid no-op, like Collector.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Load reads the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a settable instantaneous float64 value (skew ratios and the
// like), stored as atomic bits. The zero value is ready to use and a nil
// *FloatGauge is a valid no-op, like Gauge.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Load reads the current value (0 for a nil gauge).
func (g *FloatGauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// PartGauge is a gauge vector indexed by part number (per-part queue depth
// and the like). The zero value is ready to use; a nil *PartGauge is a valid
// no-op. Cells are created on first use; updates after that are a single
// atomic store.
type PartGauge struct {
	mu    sync.RWMutex
	cells map[int]*atomic.Int64
}

func (g *PartGauge) cell(part int) *atomic.Int64 {
	g.mu.RLock()
	c := g.cells[part]
	g.mu.RUnlock()
	if c != nil {
		return c
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cells == nil {
		g.cells = make(map[int]*atomic.Int64)
	}
	if c = g.cells[part]; c == nil {
		c = new(atomic.Int64)
		g.cells[part] = c
	}
	return c
}

// Set stores the value for one part.
func (g *PartGauge) Set(part int, v int64) {
	if g != nil {
		g.cell(part).Store(v)
	}
}

// Add adjusts one part's value by n.
func (g *PartGauge) Add(part int, n int64) {
	if g != nil {
		g.cell(part).Add(n)
	}
}

// Load reads one part's value (0 when never set or for a nil gauge).
func (g *PartGauge) Load(part int) int64 {
	if g == nil {
		return 0
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if c := g.cells[part]; c != nil {
		return c.Load()
	}
	return 0
}

// Total sums all parts' values.
func (g *PartGauge) Total() int64 {
	if g == nil {
		return 0
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	var total int64
	for _, c := range g.cells {
		total += c.Load()
	}
	return total
}

// Snapshot copies every part's value.
func (g *PartGauge) Snapshot() map[int]int64 {
	if g == nil {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[int]int64, len(g.cells))
	for p, c := range g.cells {
		out[p] = c.Load()
	}
	return out
}

// reset clears all cells.
func (g *PartGauge) reset() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.cells = nil
	g.mu.Unlock()
}

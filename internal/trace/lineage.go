package trace

import (
	"fmt"
	"io"
	"sort"
)

// Lineage reconstruction: rebuild the causal structure of a job run from
// its span dump. The engine records addressable spans for the job root,
// the load phase, and every (step, part) execution, and one deliver span
// per distinct (sender span, receiver) pair whose Parent is the sender's
// span ID. Joining deliver spans back to their producers therefore yields
// the full loader -> steps -> output chain without re-deriving any hashes.

// Edge is one resolved causal delivery edge: N envelopes produced by From
// arrived at the (Step, Part) receiver described by the deliver span To.
type Edge struct {
	From *Span // producer: load span or part-compute span (nil if unresolved)
	To   *Span // the deliver span; its Job/Step/Part name the receiver
	N    int64 // envelopes carried over the edge
}

// Chain is the reconstructed causal structure of one trace (one job run).
type Chain struct {
	Trace uint64
	Job   string
	Root  *Span   // job_start span
	End   *Span   // job_end span
	Load  *Span   // load span
	Steps []*Span // step spans (sync runs), step order
	// Computes holds the addressable execution spans: sync part-computes
	// (Step >= 1) and no-sync worker sessions (Step == 0), in record order.
	Computes []*Span
	// Edges holds every deliver edge, in record order. Unresolved counts
	// edges whose producer span was not found in the dump (e.g. lost to
	// ring wraparound) — nonzero Unresolved means the chain has gaps.
	Edges      []Edge
	Unresolved int
	// MaxStep is the highest step seen on any span (0 for no-sync runs).
	MaxStep int
}

// Traces lists the distinct trace IDs present in spans (zero excluded),
// in first-seen order.
func Traces(spans []Span) []uint64 {
	var ids []uint64
	seen := make(map[uint64]bool)
	for i := range spans {
		if id := spans[i].Trace; id != 0 && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return ids
}

// BuildChain reconstructs the causal chain for one trace ID from a span
// dump. Spans with other (or zero) trace IDs are ignored.
func BuildChain(spans []Span, traceID uint64) *Chain {
	c := &Chain{Trace: traceID}
	producers := make(map[uint64]*Span)
	var delivers []*Span
	for i := range spans {
		s := &spans[i]
		if s.Trace != traceID {
			continue
		}
		if s.Job != "" && c.Job == "" {
			c.Job = s.Job
		}
		if s.Step > c.MaxStep {
			c.MaxStep = s.Step
		}
		switch s.Kind {
		case KindJobStart:
			c.Root = s
			producers[s.Span] = s
		case KindJobEnd:
			c.End = s
		case KindLoad:
			c.Load = s
			producers[s.Span] = s
		case KindStepStart:
			c.Steps = append(c.Steps, s)
		case KindPartCompute:
			c.Computes = append(c.Computes, s)
			if s.Span != 0 {
				producers[s.Span] = s
			}
		case KindDeliver:
			delivers = append(delivers, s)
		}
	}
	for _, d := range delivers {
		e := Edge{From: producers[d.Parent], To: d, N: d.N}
		if e.From == nil {
			c.Unresolved++
		}
		c.Edges = append(c.Edges, e)
	}
	return c
}

// CrossPart reports whether any resolved edge crosses a partition boundary
// (producer part != receiver part; the load span's part is -1 and does not
// count as a crossing by itself).
func (c *Chain) CrossPart() bool {
	for _, e := range c.Edges {
		if e.From == nil || e.From.Kind == KindLoad {
			continue
		}
		if e.From.Part != e.To.Part {
			return true
		}
	}
	return false
}

// Complete checks that the chain is causally unbroken from loader to job
// output: root, load, and end spans are all present, every deliver edge
// resolves to a recorded producer, at least one edge leaves the loader,
// and — for sync runs — every executed step received at least one delivery
// (steps only run when envelopes reach them, so a step with none recorded
// is a gap in the dump, not in the dataflow). Returns nil when unbroken.
func (c *Chain) Complete() error {
	if c.Root == nil {
		return fmt.Errorf("trace %016x: no job_start span", c.Trace)
	}
	if c.Load == nil {
		return fmt.Errorf("trace %016x: no load span", c.Trace)
	}
	if c.End == nil {
		return fmt.Errorf("trace %016x: no job_end span", c.Trace)
	}
	if c.Unresolved > 0 {
		return fmt.Errorf("trace %016x: %d deliver edges have no recorded producer", c.Trace, c.Unresolved)
	}
	if len(c.Edges) == 0 {
		return fmt.Errorf("trace %016x: no deliver edges recorded", c.Trace)
	}
	fromLoad := false
	stepFed := make(map[int]bool)
	for _, e := range c.Edges {
		if e.From.Kind == KindLoad {
			fromLoad = true
		}
		stepFed[e.To.Step] = true
	}
	if !fromLoad {
		return fmt.Errorf("trace %016x: no edge from the loader", c.Trace)
	}
	for step := 1; step <= c.MaxStep; step++ {
		if !stepFed[step] {
			return fmt.Errorf("trace %016x: step %d received no recorded deliveries", c.Trace, step)
		}
	}
	return nil
}

// WriteLineage prints a human-readable causal chain: the job frame, then
// each receiver (step, part) with its incoming edges attributed to the
// producing span.
func (c *Chain) WriteLineage(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace %016x  job=%s\n", c.Trace, c.Job); err != nil {
		return err
	}
	if c.Root != nil {
		fmt.Fprintf(w, "  job_start  span=%016x  parts=%d  at=%v\n", c.Root.Span, c.Root.N, c.Root.At)
	}
	if c.Load != nil {
		fmt.Fprintf(w, "  load       span=%016x  envelopes=%d  dur=%v\n", c.Load.Span, c.Load.N, c.Load.Dur)
	}
	type rcv struct {
		step, part int
	}
	byRecv := make(map[rcv][]Edge)
	for _, e := range c.Edges {
		k := rcv{e.To.Step, e.To.Part}
		byRecv[k] = append(byRecv[k], e)
	}
	recvs := make([]rcv, 0, len(byRecv))
	for k := range byRecv {
		recvs = append(recvs, k)
	}
	sort.Slice(recvs, func(i, j int) bool {
		if recvs[i].step != recvs[j].step {
			return recvs[i].step < recvs[j].step
		}
		return recvs[i].part < recvs[j].part
	})
	for _, k := range recvs {
		fmt.Fprintf(w, "  step %d part %d <-\n", k.step, k.part)
		for _, e := range byRecv[k] {
			switch {
			case e.From == nil:
				fmt.Fprintf(w, "    %6d msgs from span %016x (unresolved)\n", e.N, e.To.Parent)
			case e.From.Kind == KindLoad:
				fmt.Fprintf(w, "    %6d msgs from loader\n", e.N)
			default:
				fmt.Fprintf(w, "    %6d msgs from step %d part %d (span %016x)\n",
					e.N, e.From.Step, e.From.Part, e.From.Span)
			}
		}
	}
	if c.End != nil {
		fmt.Fprintf(w, "  job_end    steps=%d  dur=%v\n", c.End.N, c.End.Dur)
	}
	status := "complete"
	if err := c.Complete(); err != nil {
		status = "INCOMPLETE: " + err.Error()
	}
	cross := ""
	if c.CrossPart() {
		cross = ", crosses partition boundary"
	}
	_, err := fmt.Fprintf(w, "  chain: %s (%d edges, %d unresolved%s)\n",
		status, len(c.Edges), c.Unresolved, cross)
	return err
}

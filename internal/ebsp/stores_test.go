package ebsp

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"ripple/internal/diskstore"
	"ripple/internal/gridstore"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
)

// storeFactories builds one instance of each store implementation, proving
// the engine is store-portable (the paper's §III openness claim).
func storeFactories(t *testing.T) map[string]func() kvstore.Store {
	t.Helper()
	return map[string]func() kvstore.Store{
		"memstore": func() kvstore.Store {
			s := memstore.New(memstore.WithParts(4))
			t.Cleanup(func() { _ = s.Close() })
			return s
		},
		"gridstore": func() kvstore.Store {
			s := gridstore.New(gridstore.WithParts(4))
			t.Cleanup(func() { _ = s.Close() })
			return s
		},
		"gridstore-replicated": func() kvstore.Store {
			s := gridstore.New(gridstore.WithParts(4), gridstore.WithReplicas(2))
			t.Cleanup(func() { _ = s.Close() })
			return s
		},
		"diskstore": func() kvstore.Store {
			s, err := diskstore.New(t.TempDir(), diskstore.WithParts(4))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = s.Close() })
			return s
		},
	}
}

// runOnStore runs a small but representative job — messages, state,
// aggregator, combiner, continue signal — and returns the final state plus
// the result.
func runOnStore(t *testing.T, store kvstore.Store) (map[any]any, *Result) {
	t.Helper()
	engine := NewEngine(store)
	job := &Job{
		Name:        "conformance",
		StateTables: []string{"conf_state"},
		Aggregators: map[string]Aggregator{"sum": IntSum{}},
		Combiner:    sumCombiner{},
		Compute: ComputeFunc(func(ctx *Context) bool {
			total := 0
			for _, m := range ctx.InputMessages() {
				total += m.(int)
			}
			cur := 0
			if v, ok := ctx.ReadState(0); ok {
				cur = v.(int)
			}
			ctx.WriteState(0, cur+total)
			ctx.AggregateValue("sum", total)
			if total > 1 {
				k := ctx.Key().(int)
				ctx.Send(2*k+1, total/2)
				ctx.Send(2*k+2, total-total/2)
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 32}}}},
	}
	res, err := engine.Run(job)
	if err != nil {
		t.Fatalf("%s: %v", store.Name(), err)
	}
	tab, _ := store.LookupTable("conf_state")
	dump, err := kvstore.Dump(tab)
	if err != nil {
		t.Fatal(err)
	}
	return dump, res
}

func TestEngineIsStorePortable(t *testing.T) {
	var reference map[any]any
	var refSteps int
	for name, factory := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			dump, res := runOnStore(t, factory())
			if reference == nil {
				reference = dump
				refSteps = res.Steps
				return
			}
			if res.Steps != refSteps {
				t.Errorf("steps = %d, reference %d", res.Steps, refSteps)
			}
			if len(dump) != len(reference) {
				t.Fatalf("state size = %d, reference %d", len(dump), len(reference))
			}
			for k, v := range reference {
				if dump[k] != v {
					t.Errorf("state[%v] = %v, reference %v", k, dump[k], v)
				}
			}
		})
	}
}

func TestNoSyncOnEveryStore(t *testing.T) {
	for name, factory := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			store := factory()
			engine := NewEngine(store)
			job := &Job{
				Name:        "ns-portable",
				StateTables: []string{"nsp_state"},
				Properties:  Properties{Incremental: true},
				Compute:     &incrementalChain{hops: 12},
				Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
			}
			res, err := engine.Run(job)
			if err != nil {
				t.Fatal(err)
			}
			if res.Strategy.Sync {
				t.Fatal("no-sync not selected")
			}
			tab, _ := store.LookupTable("nsp_state")
			for i := 0; i <= 12; i++ {
				if v, ok, _ := tab.Get(i); !ok || v != i {
					t.Errorf("state[%d] = %v, %v", i, v, ok)
				}
			}
		})
	}
}

// TestMessageConservationProperty fans a random tree of messages through the
// engine and checks receipt count equals send count, for randomized shapes.
func TestMessageConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fanout := 1 + rng.Intn(4)
		depth := 1 + rng.Intn(4)
		keys := 1 + rng.Intn(50)

		store := memstore.New(memstore.WithParts(3))
		defer func() { _ = store.Close() }()
		engine := NewEngine(store)

		var sentN, recvN int64
		var mu sync.Mutex

		job := &Job{
			Name:        fmt.Sprintf("prop%d", seed),
			StateTables: []string{"prop_state"},
			Compute: ComputeFunc(func(ctx *Context) bool {
				mu.Lock()
				recvN += int64(len(ctx.InputMessages()))
				mu.Unlock()
				for _, m := range ctx.InputMessages() {
					lvl := m.(int)
					if lvl >= depth {
						continue
					}
					for f := 0; f < fanout; f++ {
						dst := (ctx.Key().(int)*fanout + f + 1) % keys
						ctx.Send(dst, lvl+1)
						mu.Lock()
						sentN++
						mu.Unlock()
					}
				}
				return false
			}),
			Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
		}
		if _, err := engine.Run(job); err != nil {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return recvN == sentN+1 // +1 for the loader's seed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSyncNoSyncEquivalenceProperty randomizes an incremental splitting job
// and checks the two execution modes produce identical state.
func TestSyncNoSyncEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		initial := 8 + rng.Intn(120)

		build := func() *Job {
			return &Job{
				Name:        "eqp",
				StateTables: []string{"eqp_state"},
				Properties:  Properties{Incremental: true},
				Compute: ComputeFunc(func(ctx *Context) bool {
					for _, m := range ctx.InputMessages() {
						n := m.(int)
						cur := 0
						if v, ok := ctx.ReadState(0); ok {
							cur = v.(int)
						}
						ctx.WriteState(0, cur+n)
						if n > 1 {
							k := ctx.Key().(int)
							ctx.Send(3*k+1, n/2)
							ctx.Send(3*k+2, n-n/2)
						}
					}
					return false
				}),
				Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: initial}}}},
			}
		}

		run := func(forceSync bool) map[any]any {
			store := memstore.New(memstore.WithParts(3))
			defer func() { _ = store.Close() }()
			opts := []Option{}
			if forceSync {
				opts = append(opts, WithStrategyOverride(func(s Strategy) Strategy {
					s.Sync = true
					return s
				}))
			}
			engine := NewEngine(store, opts...)
			if _, err := engine.Run(build()); err != nil {
				return nil
			}
			tab, _ := store.LookupTable("eqp_state")
			dump, _ := kvstore.Dump(tab)
			return dump
		}

		a := run(true)
		b := run(false)
		if a == nil || b == nil || len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

package mq

// readerFor is a test helper: a Reader on queue q, panicking on a bad index.
func readerFor(qs Set, q int) Reader {
	r, err := qs.ReaderFor(q)
	if err != nil {
		panic(err)
	}
	return r
}

package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ripple/internal/netstore"
	"ripple/internal/trace"
)

// Cross-process trace assembly. Every client KindRPC span carries a unique
// span ID; the server records its KindRPCServer span with Parent set to that
// ID — so matching needs no clock at all. Alignment does: each server's
// spans sit on the server's own monotonic clock, and Assemble maps them onto
// the engine timeline with a per-server offset, either the transport's live
// NTP-style estimate (heartbeat RTT midpoints) or, offline, the median of
// the matched pairs' midpoint deltas.
//
// A base offset cannot be exact — the one-way ambiguity is rtt/2 and clocks
// drift between samples — so after applying it, each matched server span is
// shifted by the minimal residual that fits it inside its client span
// (the same correction Jaeger's clock-skew adjuster applies). The residuals
// are the estimate's observed error and are reported; a server span longer
// than its enclosing client span cannot be fixed by any offset and counts
// as a violation.

// ServerDump is one server's contribution to an assembly: its drained
// spans (on its own clock) plus the client's live clock estimate for it.
// A zero Offset (Samples == 0) makes Assemble fall back to pair midpoints.
type ServerDump struct {
	Server int                  `json:"server"`
	Addr   string               `json:"addr,omitempty"`
	Spans  []trace.Span         `json:"spans"`
	Offset netstore.ClockOffset `json:"offset"`
}

// ServerAlign reports how one server's clock was aligned.
type ServerAlign struct {
	Server      int    `json:"server"`
	Addr        string `json:"addr,omitempty"`
	Source      string `json:"source"` // "live" (heartbeat estimate) or "pairs" (span midpoints)
	OffsetNS    int64  `json:"offset_ns"`
	ErrorNS     int64  `json:"error_ns"`      // a-priori bound on the estimate
	MaxAdjustNS int64  `json:"max_adjust_ns"` // largest residual shift actually needed
	Pairs       int    `json:"pairs"`
	Spans       int    `json:"spans"`
}

// TimelineReport is the outcome of one assembly.
type TimelineReport struct {
	Servers         []ServerAlign `json:"servers"`
	Pairs           int           `json:"pairs"`
	UnmatchedClient int           `json:"unmatched_client"` // rpc spans with no server span (timeouts, lost dumps)
	UnmatchedServer int           `json:"unmatched_server"` // rpc_server spans with no client span (ring loss)
	Violations      int           `json:"violations"`       // server spans longer than their client span
	MaxAdjustNS     int64         `json:"max_adjust_ns"`
}

// Assemble merges the engine's spans with every server's dump into one
// clock-aligned timeline. Engine spans pass through untouched; server spans
// come back shifted onto the engine timeline, tagged with server="<idx>"
// (and addr) attributes, and re-sequenced into one At-ordered stream.
func Assemble(engine []trace.Span, dumps []ServerDump) ([]trace.Span, TimelineReport) {
	var rep TimelineReport

	// Index the client RPC spans by their unique span ID.
	clients := make(map[uint64]trace.Span)
	for _, s := range engine {
		if s.Kind == trace.KindRPC && s.Span != 0 {
			clients[s.Span] = s
		}
	}
	paired := make(map[uint64]bool, len(clients))

	merged := make([]trace.Span, 0, len(engine)+64)
	merged = append(merged, engine...)

	for _, d := range dumps {
		al := ServerAlign{Server: d.Server, Addr: d.Addr, Spans: len(d.Spans)}

		// Matched pairs drive the offline offset and the residual check.
		type pair struct {
			srv int // index into d.Spans
			cl  trace.Span
		}
		var pairs []pair
		for i, s := range d.Spans {
			if s.Kind != trace.KindRPCServer || s.Parent == 0 {
				continue
			}
			cl, ok := clients[s.Parent]
			if !ok {
				rep.UnmatchedServer++
				continue
			}
			paired[s.Parent] = true
			pairs = append(pairs, pair{srv: i, cl: cl})
		}
		al.Pairs = len(pairs)
		rep.Pairs += len(pairs)

		var offset int64
		switch {
		case d.Offset.Samples > 0:
			al.Source = "live"
			offset = d.Offset.OffsetNS
			al.ErrorNS = d.Offset.ErrorNS
		case len(pairs) > 0:
			// Offline: each pair's clock reading is "the server's span midpoint
			// happened at the client's span midpoint"; the median sheds the
			// pairs a retry or injected delay skewed.
			al.Source = "pairs"
			deltas := make([]int64, len(pairs))
			for i, p := range pairs {
				sv := d.Spans[p.srv]
				srvMid := int64(sv.At) + int64(sv.Dur)/2
				clMid := int64(p.cl.At) + int64(p.cl.Dur)/2
				deltas[i] = clMid - srvMid
			}
			sort.Slice(deltas, func(i, j int) bool { return deltas[i] < deltas[j] })
			offset = deltas[len(deltas)/2]
			al.ErrorNS = deltas[len(deltas)-1] - deltas[0]
		default:
			al.Source = "none"
		}
		al.OffsetNS = offset

		// Shift every span onto the engine timeline, then clamp the matched
		// ones into their client spans, tracking the residuals.
		residual := make(map[int]int64, len(pairs)) // d.Spans index -> extra shift
		for _, p := range pairs {
			sv := d.Spans[p.srv]
			at := int64(sv.At) + offset
			lo, hi := int64(p.cl.At), int64(p.cl.At)+int64(p.cl.Dur)
			if int64(sv.Dur) > int64(p.cl.Dur) {
				rep.Violations++
				residual[p.srv] = lo - at // pin the start; the end still overhangs
				continue
			}
			var adj int64
			if at < lo {
				adj = lo - at
			} else if at+int64(sv.Dur) > hi {
				adj = hi - int64(sv.Dur) - at
			}
			residual[p.srv] = adj
			if a := abs64(adj); a > al.MaxAdjustNS {
				al.MaxAdjustNS = a
			}
		}
		if al.MaxAdjustNS > rep.MaxAdjustNS {
			rep.MaxAdjustNS = al.MaxAdjustNS
		}

		label := strconv.Itoa(d.Server)
		for i, s := range d.Spans {
			s.At = time.Duration(int64(s.At) + offset + residual[i])
			attrs := make(map[string]string, len(s.Attrs)+2)
			for k, v := range s.Attrs {
				attrs[k] = v
			}
			attrs["server"] = label
			if d.Addr != "" {
				attrs["addr"] = d.Addr
			}
			s.Attrs = attrs
			merged = append(merged, s)
		}
		rep.Servers = append(rep.Servers, al)
	}

	for id := range clients {
		if !paired[id] {
			rep.UnmatchedClient++
		}
	}

	sort.SliceStable(merged, func(i, j int) bool { return merged[i].At < merged[j].At })
	for i := range merged {
		merged[i].Seq = uint64(i + 1)
	}
	return merged, rep
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// CheckReport is the verdict of Check over a merged timeline.
type CheckReport struct {
	Pairs           int      `json:"pairs"`
	Violations      []string `json:"violations,omitempty"`
	UnmatchedClient int      `json:"unmatched_client"`
	UnmatchedServer int      `json:"unmatched_server"`
}

// Ok reports whether the timeline passes: at least one matched pair and no
// enclosure violations.
func (r CheckReport) Ok() bool { return r.Pairs > 0 && len(r.Violations) == 0 }

// Check validates a merged timeline's causal geometry: every rpc_server span
// that names a parent must be enclosed by the client rpc span carrying that
// ID. It is the acceptance gate behind `ripple-inspect -fleet -check`.
func Check(spans []trace.Span) CheckReport {
	var rep CheckReport
	clients := make(map[uint64]trace.Span)
	for _, s := range spans {
		if s.Kind == trace.KindRPC && s.Span != 0 {
			clients[s.Span] = s
		}
	}
	paired := make(map[uint64]bool, len(clients))
	for _, s := range spans {
		if s.Kind != trace.KindRPCServer || s.Parent == 0 {
			continue
		}
		cl, ok := clients[s.Parent]
		if !ok {
			rep.UnmatchedServer++
			continue
		}
		paired[s.Parent] = true
		rep.Pairs++
		if s.At < cl.At || s.At+s.Dur > cl.At+cl.Dur {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"server span %s (server=%s at=%v dur=%v) outside client span %s (at=%v dur=%v)",
				s.Job, s.Attrs["server"], s.At, s.Dur, cl.Job, cl.At, cl.Dur))
		}
	}
	for id := range clients {
		if !paired[id] {
			rep.UnmatchedClient++
		}
	}
	return rep
}

// Breakdown decomposes the client-observed latency of one (server, endpoint)
// into server execution time and wire time (transport, queueing, codec —
// everything the server handler didn't see). Unmatched client spans
// contribute client time only, so totals stay honest under timeouts.
type Breakdown struct {
	Server   string `json:"server"`
	Endpoint string `json:"endpoint"`
	Calls    int    `json:"calls"`
	Matched  int    `json:"matched"`
	ClientNS int64  `json:"client_ns"`
	ServerNS int64  `json:"server_ns"`
	WireNS   int64  `json:"wire_ns"`
}

// Decompose aggregates a merged timeline's RPC pairs per (server, endpoint),
// sorted by total client-observed time, worst first. The server label comes
// from the client span's job ("s<idx>/<endpoint>"), so decomposition works
// even on timelines whose server dumps were partial.
func Decompose(spans []trace.Span) []Breakdown {
	serverDur := make(map[uint64]int64) // client span ID -> matched server exec ns
	for _, s := range spans {
		if s.Kind == trace.KindRPCServer && s.Parent != 0 {
			serverDur[s.Parent] += int64(s.Dur)
		}
	}
	agg := make(map[string]*Breakdown)
	for _, s := range spans {
		if s.Kind != trace.KindRPC {
			continue
		}
		server, endpoint := splitRPCJob(s.Job)
		key := server + "\x00" + endpoint
		b := agg[key]
		if b == nil {
			b = &Breakdown{Server: server, Endpoint: endpoint}
			agg[key] = b
		}
		b.Calls++
		b.ClientNS += int64(s.Dur)
		if sd, ok := serverDur[s.Span]; ok && s.Span != 0 {
			b.Matched++
			b.ServerNS += sd
			if wire := int64(s.Dur) - sd; wire > 0 {
				b.WireNS += wire
			}
		}
	}
	out := make([]Breakdown, 0, len(agg))
	for _, b := range agg {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ClientNS != out[j].ClientNS {
			return out[i].ClientNS > out[j].ClientNS
		}
		if out[i].Server != out[j].Server {
			return out[i].Server < out[j].Server
		}
		return out[i].Endpoint < out[j].Endpoint
	})
	return out
}

// splitRPCJob splits a client RPC span job "s1/get" into ("s1", "get").
func splitRPCJob(job string) (server, endpoint string) {
	if i := strings.IndexByte(job, '/'); i >= 0 {
		return job[:i], job[i+1:]
	}
	return "", job
}

package ebsp

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
)

// Checkpointing extends the paper's fault-tolerance outline (§IV-A) from
// replay of deterministic jobs to restartability of arbitrary synchronized
// jobs: at configurable barrier intervals the engine snapshots everything a
// barrier defines — the state tables, the undelivered spills, the aggregate
// results, and the step number — into checkpoint tables in the same store.
// A later Resume with an equivalent job specification restores the snapshot
// and continues from the step after the checkpoint.
//
// Checkpoints survive engine crashes because they live in the store; on a
// durable store (diskstore) they survive process restarts too.

// ErrNoCheckpoint is returned by Resume when no checkpoint exists for the
// job.
var ErrNoCheckpoint = errors.New("ebsp: no checkpoint for job")

// WithCheckpoints makes synchronized jobs snapshot their barrier state every
// `every` steps. 0 disables checkpointing (the default). No-sync jobs have
// no barriers and ignore the option.
func WithCheckpoints(every int) Option {
	return func(e *Engine) {
		if every >= 0 {
			e.checkpointEvery = every
		}
	}
}

// checkpointMeta is the snapshot's root record.
type checkpointMeta struct {
	Step       int
	Pending    int64
	Aggregates map[string]any
	Tables     []string
}

func init() {
	codec.Register(checkpointMeta{})
}

// checkpointPrefix names a job's checkpoint tables; stable across runs so
// Resume can find them.
func checkpointPrefix(jobName string) string {
	return fmt.Sprintf("__ckpt.%s", jobName)
}

func ckptMetaTable(jobName string) string  { return checkpointPrefix(jobName) + ".meta" }
func ckptSpillTable(jobName string) string { return checkpointPrefix(jobName) + ".spills" }
func ckptStateTable(jobName string, tab int) string {
	return fmt.Sprintf("%s.state.%d", checkpointPrefix(jobName), tab)
}

// checkpoint snapshots the barrier state after step `step`.
func (run *jobRun) checkpoint(step int, pending int64) error {
	store := run.engine.store
	jobName := run.job.Name

	// State tables.
	for i, t := range run.stateTables {
		name := ckptStateTable(jobName, i)
		if err := recreateTable(store, name, run.placement.Name()); err != nil {
			return err
		}
		ckpt, _ := store.LookupTable(name)
		if err := copyTable(t, ckpt); err != nil {
			return fmt.Errorf("ebsp: checkpoint state table %q: %w", t.Name(), err)
		}
	}

	// Undelivered spills (the messages crossing the checkpointed barrier).
	spillName := ckptSpillTable(jobName)
	if err := recreateTable(store, spillName, run.placement.Name()); err != nil {
		return err
	}
	ckptSpills, _ := store.LookupTable(spillName)
	if err := copyTable(run.transport, ckptSpills); err != nil {
		return fmt.Errorf("ebsp: checkpoint spills: %w", err)
	}

	// Meta record last, so a complete meta implies a complete snapshot.
	metaName := ckptMetaTable(jobName)
	if err := recreateTable(store, metaName, run.placement.Name()); err != nil {
		return err
	}
	meta, _ := store.LookupTable(metaName)
	aggs := make(map[string]any, len(run.aggPrev))
	for k, v := range run.aggPrev {
		aggs[k] = v
	}
	return meta.Put("meta", checkpointMeta{
		Step:       step,
		Pending:    pending,
		Aggregates: aggs,
		Tables:     run.stateNames,
	})
}

// dropCheckpoint removes a job's checkpoint tables (after successful
// completion).
func (run *jobRun) dropCheckpoint() {
	store := run.engine.store
	jobName := run.job.Name
	_ = store.DropTable(ckptMetaTable(jobName))
	_ = store.DropTable(ckptSpillTable(jobName))
	for i := range run.stateTables {
		_ = store.DropTable(ckptStateTable(jobName, i))
	}
}

// Resume restarts a synchronized job from its most recent checkpoint: the
// state tables and undelivered messages are restored to the snapshot and
// execution continues from the following step. The job specification must be
// equivalent to the one originally run (same name, state tables, compute).
func (e *Engine) Resume(job *Job) (*Result, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	metaTab, ok := e.store.LookupTable(ckptMetaTable(job.Name))
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoCheckpoint, job.Name)
	}
	rawMeta, ok, err := metaTab.Get("meta")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q (incomplete snapshot)", ErrNoCheckpoint, job.Name)
	}
	meta := rawMeta.(checkpointMeta)
	if len(meta.Tables) != len(job.StateTables) {
		return nil, fmt.Errorf("%w: checkpoint has %d state tables, job has %d",
			ErrBadJob, len(meta.Tables), len(job.StateTables))
	}
	for i, name := range meta.Tables {
		if job.StateTables[i] != name {
			return nil, fmt.Errorf("%w: checkpoint state table %d is %q, job has %q",
				ErrBadJob, i, name, job.StateTables[i])
		}
	}

	derived := planFor(job)
	strategy := derived
	if e.override != nil {
		strategy = e.override(derived).Clamp(derived)
	}
	strategy.Sync = true // checkpoints only exist for synchronized execution
	if strategy.FastRecovery {
		if _, ok := e.store.(kvstore.Transactional); !ok {
			strategy.FastRecovery = false
		}
	}
	run := &jobRun{
		engine:   e,
		job:      job,
		ctx:      context.Background(),
		strategy: strategy,
		aggPrev:  make(map[string]any),
	}
	defer run.cleanup()
	if err := run.setupTables(); err != nil {
		return nil, err
	}

	// Restore state tables.
	for i, t := range run.stateTables {
		ckpt, ok := e.store.LookupTable(ckptStateTable(job.Name, i))
		if !ok {
			return nil, fmt.Errorf("%w: missing state snapshot %d", ErrNoCheckpoint, i)
		}
		if err := clearTable(t); err != nil {
			return nil, err
		}
		if err := copyTable(ckpt, t); err != nil {
			return nil, fmt.Errorf("ebsp: restore state table %q: %w", t.Name(), err)
		}
	}
	// Restore undelivered spills into the fresh transport table.
	ckptSpills, ok := e.store.LookupTable(ckptSpillTable(job.Name))
	if !ok {
		return nil, fmt.Errorf("%w: missing spill snapshot", ErrNoCheckpoint)
	}
	if err := copyTable(ckptSpills, run.transport); err != nil {
		return nil, fmt.Errorf("ebsp: restore spills: %w", err)
	}
	for k, v := range meta.Aggregates {
		run.aggPrev[k] = v
	}

	if err := run.setupAggTables(); err != nil {
		return nil, err
	}
	res, err := run.syncLoop(meta.Step, meta.Pending)
	if err != nil {
		return nil, err
	}
	res.Strategy = strategy
	res.Recoveries = int(run.recoveries.Load())
	if err := run.export(); err != nil {
		return nil, err
	}
	return res, nil
}

// recreateTable drops and recreates a table consistently partitioned with
// the placement table.
func recreateTable(store kvstore.Store, name, consistentWith string) error {
	if _, ok := store.LookupTable(name); ok {
		if err := store.DropTable(name); err != nil {
			return err
		}
	}
	_, err := store.CreateTable(name, kvstore.ConsistentWith(consistentWith))
	if err != nil {
		return fmt.Errorf("ebsp: create checkpoint table %q: %w", name, err)
	}
	return nil
}

// copyTable copies every pair from src to dst, part-locally where possible.
func copyTable(src, dst kvstore.Table) error {
	return kvstore.EnumerateAll(src, func(k, v any) (bool, error) {
		return false, dst.Put(k, v)
	})
}

// clearTable deletes every pair of a table.
func clearTable(t kvstore.Table) error {
	keys := make([]any, 0)
	if err := kvstore.EnumerateAll(t, func(k, _ any) (bool, error) {
		keys = append(keys, k)
		return false, nil
	}); err != nil {
		return err
	}
	sort.Slice(keys, func(i, j int) bool { return codec.CompareKeys(keys[i], keys[j]) < 0 })
	for _, k := range keys {
		if err := t.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

package ebsp

import (
	"reflect"
	"testing"

	"ripple/internal/codec"
)

// wireTestVal has no fast codec, so inside a batch it must travel through
// the batch's gob side-car and come back intact.
type wireTestVal struct {
	Name string
	N    int
}

func init() { codec.Register(wireTestVal{}) }

// TestEnvelopeBatchSidecar round-trips a spill batch mixing fast-path and
// gob-fallback payloads. The fallback values share the batch's single
// side-car gob stream; decode must restore every envelope exactly.
func TestEnvelopeBatchSidecar(t *testing.T) {
	batch := []envelope{
		{Dst: 1, Val: 0.5, Kind: kindData, Src: 0, Seq: 1},
		{Dst: 2, Val: wireTestVal{Name: "a", N: 7}, Kind: kindData, Src: 0, Seq: 2},
		{Dst: wireTestVal{Name: "key", N: 1}, Val: wireTestVal{Name: "b", N: 8}, Kind: kindData, Src: 1, Seq: 3},
		{Dst: 3, Val: []int32{4, 5}, Kind: kindCreate, Src: 2, Seq: 4},
	}
	data, err := codec.Encode(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("batch round trip mismatch:\n got %#v\nwant %#v", got, batch)
	}
}

// TestEnvelopeBatchNested nests one batch inside another (as a Val). Each
// batch frame carries its own side-car; the inner frame's references must
// not leak into — or resolve against — the outer frame's.
func TestEnvelopeBatchNested(t *testing.T) {
	inner := []envelope{
		{Dst: 10, Val: wireTestVal{Name: "inner", N: 1}, Kind: kindData, Src: 0, Seq: 1},
	}
	outer := []envelope{
		{Dst: 1, Val: wireTestVal{Name: "outer", N: 2}, Kind: kindData, Src: 0, Seq: 2},
		{Dst: 2, Val: inner, Kind: kindData, Src: 0, Seq: 3},
	}
	got, _, err := codec.RoundTrip(outer)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, outer) {
		t.Fatalf("nested batch round trip mismatch:\n got %#v\nwant %#v", got, outer)
	}
}

// TestQueueMsgGobPayload checks the no-sync path's wrapper with a fallback
// payload: outside a batch frame there is no side-car, so the value must be
// inlined rather than deferred (and must not be silently dropped).
func TestQueueMsgGobPayload(t *testing.T) {
	qm := queueMsg{Env: envelope{Dst: 4, Val: wireTestVal{Name: "q", N: 9}, Kind: kindData, Src: 1, Seq: 5}, Weight: 3}
	got, _, err := codec.RoundTrip(qm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, qm) {
		t.Fatalf("queueMsg round trip mismatch:\n got %#v\nwant %#v", got, qm)
	}
}

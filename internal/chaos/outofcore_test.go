package chaos_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"ripple/internal/chaos"
	"ripple/internal/diskstore"
	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/pagerank"
	"ripple/internal/workload"
)

// The chaos injector is the diskstore's disk-fault source: one seeded
// schedule drives store, mq, wire, and disk decisions alike.
var _ diskstore.DiskInjector = (*chaos.Injector)(nil)

// The out-of-core soak shape: a graph whose working set is >= 10x the LSM
// memtable budget, so the bulk of every PageRank step lives in SSTables on
// disk rather than in memory.
const (
	oocParts  = 6
	oocBudget = 32 << 10
	oocIters  = 8
	oocTable  = "oocg"
)

func oocGraph(t testing.TB) *workload.DirectedGraph {
	t.Helper()
	g, err := workload.PowerLawDirected(rand.New(rand.NewSource(23)), 1500, 12000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func oocConfig() pagerank.Config {
	return pagerank.Config{GraphTable: oocTable, Iterations: oocIters}
}

// inMemoryRanks is the control: the identical job, uninterrupted, on a store
// that holds everything in memory.
func inMemoryRanks(t *testing.T, g *workload.DirectedGraph) map[int]float64 {
	t.Helper()
	store := memstore.New(memstore.WithParts(oocParts))
	defer func() { _ = store.Close() }()
	tab, err := pagerank.LoadGraph(store, oocTable, g, oocParts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pagerank.RunDirect(ebsp.NewEngine(store), oocConfig()); err != nil {
		t.Fatal(err)
	}
	got, err := pagerank.ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// requireIdentical checks the acceptance bar: canonicalized the way every
// result surface in this repo canonicalizes float tables (rounded to 1e-9,
// below any numerically meaningful digit but above the jitter that message
// combination order injects), the disk-backed table byte-matches the
// in-memory run's.
func requireIdentical(t *testing.T, tab kvstore.Table, want map[int]float64) {
	t.Helper()
	got, err := pagerank.ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("disk run produced %d ranks, in-memory run %d", len(got), len(want))
	}
	canon := func(v float64) float64 { return math.Round(v*1e9) / 1e9 }
	for v, w := range want {
		if r, ok := got[v]; !ok || canon(r) != canon(w) {
			t.Fatalf("rank[%d] = %v (present=%v), in-memory run says %v", v, got[v], ok, w)
		}
	}
}

// TestOutOfCoreSoak proves the LSM diskstore's out-of-core claim end to end:
// PageRank over a working set >= 10x the memtable budget completes under
// disk chaos, survives a mid-job crash via checkpoint + Resume, and in every
// leg finishes byte-identical to the in-memory control run.
func TestOutOfCoreSoak(t *testing.T) {
	g := oocGraph(t)
	want := inMemoryRanks(t, g)

	t.Run("chaos", func(t *testing.T) {
		// Out-of-core PageRank with fsyncs randomly stalled by the disk
		// schedule; the slow path must change timing, never answers.
		m := &metrics.Collector{}
		inj := chaos.NewInjector(chaos.Schedule{
			Seed:              31,
			DiskSlowFsync:     200 * time.Microsecond,
			DiskSlowFsyncRate: 0.2,
		}, chaos.WithMetrics(m))
		s, err := diskstore.New(t.TempDir(),
			diskstore.WithParts(oocParts),
			diskstore.WithMemtableBudget(oocBudget),
			diskstore.WithSyncEvery(64),
			diskstore.WithMetrics(m),
			diskstore.WithDiskInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = s.Close() }()
		tab, err := pagerank.LoadGraph(s, oocTable, g, oocParts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pagerank.RunDirect(ebsp.NewEngine(s, ebsp.WithMetrics(m)), oocConfig()); err != nil {
			t.Fatalf("out-of-core pagerank under disk chaos: %v", err)
		}
		requireIdentical(t, tab, want)

		snap := m.LSM().Snapshot()
		if snap.LogicalBytes < 10*oocBudget {
			t.Errorf("working set %d bytes, want >= 10x the %d-byte budget", snap.LogicalBytes, oocBudget)
		}
		if snap.Flushes == 0 {
			t.Error("no memtable flushes: the run never left memory")
		}
		t.Logf("out-of-core: %d logical bytes over a %d-byte budget (%.0fx), %d flushes, %d compactions, write amp %.1f",
			snap.LogicalBytes, oocBudget, float64(snap.LogicalBytes)/float64(oocBudget),
			snap.Flushes, snap.Compactions, snap.WriteAmplification())

		slow := 0
		for _, r := range inj.Records() {
			if r.Kind == "disk.slow" {
				slow++
			}
		}
		if slow == 0 {
			t.Error("no disk.slow faults injected")
		}
	})

	t.Run("kill-resume", func(t *testing.T) {
		// Crash the same out-of-core job mid-run, abandon the store without
		// a clean Close, reopen the directory, and Resume from the last
		// checkpoint to the identical final table.
		dir := t.TempDir()
		m := &metrics.Collector{}
		s, err := diskstore.New(dir,
			diskstore.WithParts(oocParts),
			diskstore.WithMemtableBudget(oocBudget),
			diskstore.WithMetrics(m))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pagerank.LoadGraph(s, oocTable, g, oocParts); err != nil {
			t.Fatal(err)
		}
		job, err := pagerank.DirectJob(s, oocConfig())
		if err != nil {
			t.Fatal(err)
		}
		job.Aborter = ebsp.AborterFunc(func(step int, _ map[string]any) bool { return step >= 4 })
		res, err := ebsp.NewEngine(s, ebsp.WithCheckpoints(2)).Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Aborted {
			t.Fatalf("crash run finished all %d steps instead of aborting", res.Steps)
		}
		// Abandon the store without Close. Compact first: it serializes on
		// the same per-part merge lock as the background compactor, so once
		// it returns no stale goroutine can touch the files the reopened
		// store is about to own. (Recovery from a genuinely torn WAL tail is
		// the diskstore crash property test's job; this leg proves the
		// checkpointed job state on disk is enough to finish the run.)
		for _, name := range s.Tables() {
			if err := s.Compact(name); err != nil {
				t.Fatal(err)
			}
		}

		s2, err := diskstore.New(dir,
			diskstore.WithParts(oocParts),
			diskstore.WithMemtableBudget(oocBudget))
		if err != nil {
			t.Fatalf("reopen after crash: %v", err)
		}
		defer func() { _ = s2.Close() }()
		// The new process's store has an empty table directory; re-create
		// the graph and checkpoint tables so they reopen from disk.
		tab2, err := s2.CreateTable(oocTable, kvstore.WithParts(oocParts))
		if err != nil {
			t.Fatal(err)
		}
		for _, suffix := range []string{"meta", "spills", "state.0"} {
			name := fmt.Sprintf("__ckpt.pagerank.direct.%s", suffix)
			if _, err := s2.CreateTable(name, kvstore.ConsistentWith(oocTable)); err != nil &&
				!errors.Is(err, kvstore.ErrTableExists) {
				t.Fatal(err)
			}
		}
		job2, err := pagerank.DirectJob(s2, oocConfig())
		if err != nil {
			t.Fatal(err)
		}
		res2, err := ebsp.NewEngine(s2, ebsp.WithCheckpoints(2)).Resume(job2)
		if err != nil {
			t.Fatalf("resume after crash: %v", err)
		}
		if res2.Aborted {
			t.Fatal("resumed run aborted")
		}
		requireIdentical(t, tab2, want)
	})
}

// TestOutOfCoreDiskFaults pins the two deterministic disk fault paths: an
// injected fsync failure surfaces from a durable put as a retryable store
// error, and a torn WAL tail on reopen clips acknowledged history from the
// end only — never corrupts it, never fails the open.
func TestOutOfCoreDiskFaults(t *testing.T) {
	t.Run("fsync-error", func(t *testing.T) {
		inj := chaos.NewInjector(chaos.Schedule{Seed: 7, DiskFsyncErrRate: 1})
		s, err := diskstore.New(t.TempDir(),
			diskstore.WithSyncEvery(1),
			diskstore.WithDiskInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = s.Close() }() // close itself fsyncs and will be injected too
		tab, err := s.CreateTable("t", kvstore.WithParts(1))
		if err != nil {
			t.Fatal(err)
		}
		err = tab.Put("k", "v")
		if err == nil {
			t.Fatal("durable put succeeded through a failing fsync")
		}
		if !errors.Is(err, kvstore.ErrTransient) {
			t.Fatalf("injected fsync fault is not retryable: %v", err)
		}
		faults := 0
		for _, r := range inj.Records() {
			if r.Kind == "disk.fsync" {
				faults++
			}
		}
		if faults == 0 {
			t.Error("no disk.fsync faults recorded")
		}
	})

	t.Run("torn-tail", func(t *testing.T) {
		dir := t.TempDir()
		s, err := diskstore.New(dir, diskstore.WithSyncEvery(1))
		if err != nil {
			t.Fatal(err)
		}
		tab, err := s.CreateTable("t", kvstore.WithParts(1))
		if err != nil {
			t.Fatal(err)
		}
		const n = 50
		for i := 0; i < n; i++ {
			if err := tab.Put(i, fmt.Sprintf("v%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		// Abandon without Close: a clean Close flushes the memtable and
		// truncates the WAL, leaving nothing for a torn tail to tear.

		inj := chaos.NewInjector(chaos.Schedule{Seed: 5, DiskTornTailRate: 1})
		s2, err := diskstore.New(dir, diskstore.WithDiskInjector(inj))
		if err != nil {
			t.Fatalf("open with torn tail: %v", err)
		}
		defer func() { _ = s2.Close() }()
		tab2, err := s2.CreateTable("t", kvstore.WithParts(1))
		if err != nil {
			t.Fatalf("reopen with torn tail: %v", err)
		}
		torn := 0
		for _, r := range inj.Records() {
			if r.Kind == "disk.torn" {
				torn++
			}
		}
		if torn == 0 {
			t.Fatal("no disk.torn faults recorded")
		}
		// The surviving history must be an uncorrupted prefix: every key
		// still present holds the value written, and once one key is gone
		// every later write is gone too.
		survived, lost := 0, false
		for i := 0; i < n; i++ {
			got, ok, err := tab2.Get(i)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				lost = true
				continue
			}
			if lost {
				t.Fatalf("key %d survived after an earlier key was clipped: not a tail clip", i)
			}
			if want := fmt.Sprintf("v%d", i); got != want {
				t.Fatalf("key %d = %q, want %q: clip corrupted surviving history", i, got, want)
			}
			survived++
		}
		if survived == 0 || !lost {
			t.Errorf("clip removed %d of %d records, want a proper partial tail", n-survived, n)
		}
	})
}

// Command skew demonstrates straggler diagnosis with the step profiler. It
// runs a deliberately skewed job — every component does one unit of work per
// step, except a handful of "hot" components that do fifty — and then lets
// the profiler's report name the part that drags every barrier.
//
// Usage:
//
//	go run ./examples/skew
//	go run ./examples/skew -profile skew.json   # also write a Chrome trace
//	go run ./examples/skew -debug-addr :6060    # live /debug/profilez + /debug/pprof/
//
// With -debug-addr the process pauses after the run so the live endpoints
// can be curled; hit Enter to exit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"ripple"
)

func main() {
	var (
		profileFile = flag.String("profile", "", "write a Chrome trace of per-part step profiles to this file")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/profilez, and /debug/pprof/ on this address")
		components  = flag.Int("components", 64, "ring components")
		steps       = flag.Int("steps", 12, "synchronized steps to run")
	)
	flag.Parse()

	prof := ripple.NewProfiler(0)
	m := &ripple.Metrics{}
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", ripple.MetricsHandler(m))
		ripple.AttachDebug(mux, prof)
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Printf("debug endpoint: %v", err)
			}
		}()
		fmt.Printf("serving http://%s/debug/profilez and /debug/pprof/\n\n", *debugAddr)
	}

	store := ripple.NewMemStore(ripple.MemParts(4))
	defer func() { _ = store.Close() }()
	engine := ripple.NewEngine(store, ripple.WithProfiler(prof), ripple.WithMetrics(m))

	// Every component forwards a token to itself each step. Components whose
	// key is divisible by `hotStride` burn 50x the work — and they all hash
	// to whatever parts their keys land on, so some parts finish each step
	// long after the others: a classic skewed workload.
	const hotStride = 16
	work := func(units int) float64 {
		x := 1.0001
		for i := 0; i < units*20000; i++ {
			x *= 1.0000001
		}
		return x
	}
	var seeds []ripple.InitialMessage
	for k := 0; k < *components; k++ {
		seeds = append(seeds, ripple.InitialMessage{Key: k, Message: 0})
	}
	limit := *steps - 1
	job := &ripple.Job{
		Name:        "skewdemo",
		StateTables: []string{"skewdemo_state"},
		Compute: ripple.ComputeFunc(func(ctx *ripple.Context) bool {
			units := 1
			if ctx.Key().(int)%hotStride == 0 {
				units = 50 // the deliberate skew
			}
			sink := work(units)
			for _, msg := range ctx.InputMessages() {
				n := msg.(int)
				ctx.WriteState(0, sink)
				if n < limit {
					ctx.Send(ctx.Key(), n+1)
				}
			}
			return false
		}),
		Loaders: []ripple.Loader{&ripple.MessageLoader{Messages: seeds}},
	}
	if _, err := engine.Run(job); err != nil {
		log.Fatal(err)
	}

	rep := ripple.AnalyzeProfiler(prof, 5)
	ripple.WriteProfileReport(os.Stdout, rep)
	if top, ok := rep.TopStraggler(); ok {
		tab, _ := store.LookupTable("skewdemo_state")
		fmt.Printf("\ndiagnosis: part %d is the top straggler (slowest in %d of %d steps).\n",
			top.Part, top.StepsSlowest, len(rep.Steps))
		fmt.Printf("hot components (keys 0, %d, %d, ...) do 50x the work; key 0 lives on part %d.\n",
			hotStride, 2*hotStride, tab.PartOf(0))
	}

	if *profileFile != "" {
		f, err := os.Create(*profileFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := ripple.WriteProfileChromeTrace(f, prof.Snapshot()); err != nil {
			log.Fatal(err)
		}
		_ = f.Close()
		fmt.Printf("\nwrote %d step profiles to %s (open in chrome://tracing or https://ui.perfetto.dev)\n",
			prof.Len(), *profileFile)
	}
	if *debugAddr != "" {
		fmt.Print("\ndebug endpoints still serving — press Enter to exit\n")
		_, _ = bufio.NewReader(os.Stdin).ReadString('\n')
	}
}

package ebsp

import (
	"testing"

	"ripple/internal/codec"
)

// benchBatch builds a PageRank-shaped spill batch: int destinations,
// float64 payloads, one source part.
func benchBatch(n int) []envelope {
	batch := make([]envelope, n)
	for i := range batch {
		batch[i] = envelope{Dst: i * 7, Val: float64(i) * 0.85, Kind: kindData, Src: 3, Seq: i}
	}
	return batch
}

// BenchmarkEncodeEnvelopeBatch measures the boundary marshal of one
// cross-part spill batch — the dominant data-plane operation of the sync
// path (h·g in the BSP cost model).
func BenchmarkEncodeEnvelopeBatch(b *testing.B) {
	batch := benchBatch(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := codec.Encode(batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGobVal is a user message type with no fast codec, so it rides the
// batch side-car: one shared gob stream per batch.
type benchGobVal struct {
	From int32
	Dist int32
}

// BenchmarkEncodeEnvelopeBatchGob is BenchmarkEncodeEnvelopeBatch with
// gob-fallback payloads — the worst case for unregistered user message
// types. The batch side-car keeps gob's type descriptors per-batch rather
// than per-envelope.
func BenchmarkEncodeEnvelopeBatchGob(b *testing.B) {
	codec.Register(benchGobVal{})
	batch := benchBatch(64)
	for i := range batch {
		batch[i].Val = benchGobVal{From: int32(i), Dist: int32(i * 3)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := codec.Encode(batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeQueueMsg measures the no-sync path's per-message marshal.
func BenchmarkEncodeQueueMsg(b *testing.B) {
	qm := queueMsg{Env: envelope{Dst: 17, Val: 0.125, Kind: kindData, Src: 2, Seq: 9}, Weight: 1 << 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := codec.Encode(qm)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

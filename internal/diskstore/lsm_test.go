package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/trace"
)

// TestBloomFiltersSkipDiskOnMiss pins the bloom filters' whole point: once
// the data lives in SSTable runs, probing for absent keys costs (almost) no
// data-block reads — the filters reject the runs in memory.
func TestBloomFiltersSkipDiskOnMiss(t *testing.T) {
	col := &metrics.Collector{}
	s := newStore(t, WithMetrics(col), WithMemtableBudget(minMemtable))
	tab, err := s.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tab.Put(i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact("t"); err != nil {
		t.Fatal(err)
	}
	base := col.LSM().Snapshot()
	const misses = 1000
	for i := 0; i < misses; i++ {
		if _, ok, err := tab.Get(1_000_000 + i); err != nil || ok {
			t.Fatalf("Get(miss) = %v, %v", ok, err)
		}
	}
	snap := col.LSM().Snapshot()
	reads := snap.BlockReads - base.BlockReads
	negatives := snap.BloomNegatives - base.BloomNegatives
	if negatives == 0 {
		t.Fatal("no bloom negatives recorded — filters not consulted")
	}
	// With 10 bits/key the theoretical false-positive rate is under 1%; allow
	// generous slack and still catch a broken filter (which would read a
	// block per miss per run).
	if reads > misses/10 {
		t.Errorf("misses cost %d block reads (bloom negatives %d) — filters ineffective", reads, negatives)
	}
	// In a miss-only probe phase every filter pass is a false positive, so
	// rate the filter on all probes: with 10 bits/key it should reject well
	// over 95% of them.
	checks := snap.BloomChecks - base.BloomChecks
	fps := snap.BloomFalsePositives - base.BloomFalsePositives
	if float64(fps)/float64(checks) > 0.05 {
		t.Errorf("bloom passed %d of %d miss probes, want < 5%%", fps, checks)
	}
}

// TestGroupCommitBatchesConcurrentWriters drives concurrent durable writers
// into one part and checks the group-commit loop coalesced their fsyncs: far
// fewer WAL syncs than acknowledged writes, and batch sizes above 1 in the
// histogram.
func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	col := &metrics.Collector{}
	s := newStore(t, WithMetrics(col), WithSyncEvery(1))
	tab, err := s.CreateTable("t", kvstore.WithParts(1))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := tab.Put(w*perWriter+i, i); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := col.LSM().Snapshot()
	total := int64(writers * perWriter)
	if snap.GroupCommitBatch.Count == 0 {
		t.Fatal("no group-commit batches observed")
	}
	if snap.WALSyncs >= total {
		t.Errorf("%d WAL syncs for %d durable writes — no batching", snap.WALSyncs, total)
	}
	// Histogram sum is the number of acknowledged writers across all batches.
	if snap.GroupCommitBatch.Sum != total {
		t.Errorf("batch histogram acknowledged %d writers, want %d", snap.GroupCommitBatch.Sum, total)
	}
	if snap.GroupCommitBatch.Sum <= snap.GroupCommitBatch.Count {
		t.Errorf("mean batch size %.2f — every fsync carried one writer",
			float64(snap.GroupCommitBatch.Sum)/float64(snap.GroupCommitBatch.Count))
	}
}

// TestCleanReopenSkipsReplay pins the manifest's open-time guarantee: a
// cleanly closed store flushed every memtable, so reopening replays zero WAL
// bytes — open time is bounded by the manifest read, not table history.
func TestCleanReopenSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, WithMemtableBudget(minMemtable))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := s.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tab.Put(i, fmt.Sprintf("value-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Every WAL must be empty on disk: that file size bounds replay work.
	for p := 0; p < 2; p++ {
		st, err := os.Stat(filepath.Join(dir, fmt.Sprintf("t.%d.log", p)))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != 0 {
			t.Errorf("part %d WAL is %d bytes after clean close, want 0", p, st.Size())
		}
	}
	tr := trace.New(256)
	s2, err := New(dir, WithTracer(tr), WithMemtableBudget(minMemtable))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	tab2, err := s2.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range tr.Snapshot() {
		if sp.Kind == trace.KindLogReplay {
			t.Fatalf("clean reopen replayed %d bytes (part %d)", sp.N, sp.Part)
		}
	}
	for _, i := range []int{0, 1, 1499, 2999} {
		v, ok, err := tab2.Get(i)
		if err != nil || !ok || v != fmt.Sprintf("value-%d", i) {
			t.Fatalf("Get(%d) after reopen = %v, %v, %v", i, v, ok, err)
		}
	}
}

// TestOutOfCoreWorkingSet writes roughly 20x the memtable budget and checks
// the store holds the excess in runs, keeps the memtable gauge bounded, and
// still answers point reads correctly.
func TestOutOfCoreWorkingSet(t *testing.T) {
	const budget = 32 << 10
	col := &metrics.Collector{}
	s := newStore(t, WithMetrics(col), WithMemtableBudget(budget))
	tab, err := s.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte(i)
	}
	const n = 8000 // ~8000 * (key + 64B value + overhead) >> 20x budget
	for i := 0; i < n; i++ {
		if err := tab.Put(i, string(val)+fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := col.LSM().Snapshot()
	if snap.Flushes == 0 {
		t.Fatal("no memtable flushes — data never left memory")
	}
	// The gauge may briefly sit at one full memtable per part plus the
	// in-flight record; anything near the data size means flushing is broken.
	if snap.MemtableBytes > 4*budget {
		t.Errorf("memtable gauge %d bytes, budget %d — not bounded", snap.MemtableBytes, budget)
	}
	size, err := tab.Size()
	if err != nil || size != n {
		t.Fatalf("Size = %d, %v, want %d", size, err, n)
	}
	for _, i := range []int{0, n / 3, n - 1} {
		v, ok, err := tab.Get(i)
		if err != nil || !ok || v != string(val)+fmt.Sprint(i) {
			t.Fatalf("Get(%d) = %v, %v", i, ok, err)
		}
	}
	if snap.WriteAmplification() <= 1 {
		t.Errorf("write amplification %.2f — WAL bytes alone should exceed 1x", snap.WriteAmplification())
	}
}

// TestBackgroundCompactionBoundsRunCount checks that accumulating level-0
// runs triggers the background compactor, which merges them down before the
// run list grows without bound.
func TestBackgroundCompactionBoundsRunCount(t *testing.T) {
	col := &metrics.Collector{}
	s := newStore(t, WithMetrics(col), WithMemtableBudget(minMemtable))
	tab, err := s.CreateTable("t", kvstore.WithParts(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		if err := tab.Put(i%500, fmt.Sprintf("pad-pad-pad-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// The compactor is asynchronous; give it a moment to drain its hints.
	deadline := time.Now().Add(5 * time.Second)
	for col.LSM().Snapshot().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := col.LSM().Snapshot().Compactions; got == 0 {
		t.Fatal("no background compactions despite dozens of flushes")
	}
}

package chaos_test

// Fault attribution under chaos: the profiler must pin injected faults and
// the retries they trigger to the (job, step, part) whose progress they
// delayed, and its retry total must agree with the metrics counter. Lives in
// an external test package so it exercises the chaos wrapper exactly as the
// engine consumes it.

import (
	"testing"

	"ripple/internal/chaos"
	"ripple/internal/ebsp"
	"ripple/internal/gridstore"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/profile"
)

func chainJob(name string, limit int) *ebsp.Job {
	return &ebsp.Job{
		Name:        name,
		StateTables: []string{name + "_state"},
		Compute: ebsp.ComputeFunc(func(ctx *ebsp.Context) bool {
			for _, m := range ctx.InputMessages() {
				n := m.(int)
				ctx.WriteState(0, n)
				if n < limit {
					ctx.Send(ctx.Key().(int)+1, n+1)
				}
			}
			return false
		}),
		Loaders: []ebsp.Loader{&ebsp.MessageLoader{Messages: []ebsp.InitialMessage{{Key: 0, Message: 0}}}},
	}
}

func TestProfilerAttributesInjectedFaults(t *testing.T) {
	m := &metrics.Collector{}
	rec := profile.New(4096)
	inj := chaos.NewInjector(chaos.Schedule{Seed: 11, StoreErrRate: 0.05, AgentErrRate: 0.05},
		chaos.WithMetrics(m))
	store := chaos.Wrap(memstore.New(memstore.WithParts(4)), inj)
	t.Cleanup(func() { _ = store.Close() })

	e := ebsp.NewEngine(store, ebsp.WithMetrics(m), ebsp.WithProfiler(rec))
	res, err := e.Run(chainJob("attrib", 30))
	if err != nil {
		t.Fatalf("run under 5%% transient faults: %v", err)
	}
	if res.Steps != 31 {
		t.Errorf("Steps = %d, want 31 (messages 0..30, one per step)", res.Steps)
	}

	snap := m.Snapshot()
	if snap.FaultsInjected == 0 || snap.Retries == 0 {
		t.Fatalf("faults=%d retries=%d — schedule not exercised, raise rates",
			snap.FaultsInjected, snap.Retries)
	}

	var attrFaults, attrRetries int64
	for _, p := range rec.Snapshot() {
		if p.Faults == 0 && p.Retries == 0 {
			continue
		}
		// Every attributed fault must land on a real coordinate of this job.
		if p.Job != "attrib" {
			t.Errorf("fault attributed to job %q: %+v", p.Job, p)
		}
		if p.Step < 1 || p.Step > res.Steps || p.Part < 0 || p.Part > 3 {
			t.Errorf("fault attributed outside any part-step: %+v", p)
		}
		if p.Retries > 0 && p.Faults == 0 {
			t.Errorf("retries without a fault on step %d part %d: %+v", p.Step, p.Part, p)
		}
		attrFaults += p.Faults
		attrRetries += p.Retries
	}
	if attrFaults == 0 {
		t.Error("no injected fault was attributed to a part-step record")
	}

	// Attributed + still-pending must cover the engine's own retry count.
	// (Loader/exporter/checkpoint retries use part -1 and stay unattributed.)
	pendF, pendR := rec.Unattributed()
	if got := attrRetries + pendR; got != snap.Retries {
		t.Errorf("profiler retries %d (attributed %d + pending %d) != metrics retries %d",
			got, attrRetries, pendR, snap.Retries)
	}
	if attrFaults+pendF < snap.Retries {
		t.Errorf("faults %d (attributed %d + pending %d) < retries %d — every retry follows a fault",
			attrFaults+pendF, attrFaults, pendF, snap.Retries)
	}
}

func TestProfilerAttributesFastRecoveryReplays(t *testing.T) {
	// A deterministic job takes the fast-recovery path, where the engine
	// itself replays failed part-step transactions instead of retryOp. The
	// profiler must attribute those replays to the exact (step, part) too.
	m := &metrics.Collector{}
	rec := profile.New(4096)
	inj := chaos.NewInjector(chaos.Schedule{Seed: 7, AgentErrRate: 0.10}, chaos.WithMetrics(m))
	// Fast recovery needs per-shard transactions — gridstore, not memstore.
	store := chaos.Wrap(gridstore.New(gridstore.WithParts(4), gridstore.WithReplicas(2)), inj)
	t.Cleanup(func() { _ = store.Close() })

	e := ebsp.NewEngine(store, ebsp.WithMetrics(m), ebsp.WithProfiler(rec),
		ebsp.WithRecoveryRetries(10))
	job := chainJob("fastrec", 25)
	job.Properties.Deterministic = true // fast-recovery path: failed part-steps replay in place
	res, err := e.Run(job)
	if err != nil {
		t.Fatalf("run under 10%% agent faults: %v", err)
	}
	if !res.Strategy.FastRecovery {
		t.Fatal("deterministic job did not select fast recovery")
	}
	snap := m.Snapshot()
	if snap.FaultsInjected == 0 || snap.Retries == 0 {
		t.Fatalf("faults=%d retries=%d — schedule not exercised, raise rates",
			snap.FaultsInjected, snap.Retries)
	}
	var faults, retries int64
	for _, p := range rec.Snapshot() {
		if p.Step >= 1 && p.Part >= 0 {
			faults += p.Faults
			retries += p.Retries
		}
	}
	if faults == 0 || retries == 0 {
		t.Errorf("replayed dispatch faults not attributed: faults=%d retries=%d", faults, retries)
	}
}

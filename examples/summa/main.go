// Command summa runs the paper's §V-B comparison: SUMMA-pattern matrix
// multiplication on the WXS-like grid store, once as BSPified SUMMA with
// synchronization barriers (printing the Table II pacing) and once with the
// barriers removed, verifying both against a direct product.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ripple/internal/gridstore"
	"ripple/internal/matrix"
	"ripple/internal/metrics"
	"ripple/internal/summa"
)

func main() {
	var (
		grid    = flag.Int("grid", 3, "block grid dimension G (paper: 3)")
		n       = flag.Int("n", 300, "matrix dimension (n x n)")
		parts   = flag.Int("parts", 10, "store partitions (paper: 10 containers)")
		seed    = flag.Int64("seed", 42, "workload seed")
		latency = flag.Duration("latency", 2*time.Millisecond,
			"emulated cross-partition network latency (a single-core host shows the barrier-removal benefit through latency, not compute parallelism)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	a := matrix.Random(rng, *n, *n)
	b := matrix.Random(rng, *n, *n)
	fmt.Printf("C <- A x B, %dx%d matrices in a %dx%d block grid, %d store parts\n",
		*n, *n, *grid, *grid, *parts)

	direct, err := a.Mul(b)
	if err != nil {
		log.Fatal(err)
	}

	run := func(sync bool) (time.Duration, *summa.Outcome) {
		store := gridstore.New(gridstore.WithParts(*parts), gridstore.WithLatency(*latency))
		defer func() { _ = store.Close() }()
		m := &metrics.Collector{}
		start := time.Now()
		out, err := summa.Multiply(store, summa.Config{
			Grid:         *grid,
			Synchronized: sync,
			Metrics:      m,
			Latency:      *latency,
		}, a, b)
		if err != nil {
			log.Fatalf("sync=%v: %v", sync, err)
		}
		elapsed := time.Since(start)
		if !out.C.EqualWithin(direct, 1e-6) {
			log.Fatalf("sync=%v: product does not match direct multiply", sync)
		}
		return elapsed, out
	}

	syncTime, syncOut := run(true)
	fmt.Printf("with synchronization:    %8.3fs over %d steps\n",
		syncTime.Seconds(), syncOut.Result.Steps)
	fmt.Printf("  block multiplications per step (Table II): %v\n", syncOut.MultsPerStep)

	noTime, _ := run(false)
	fmt.Printf("without synchronization: %8.3fs (no steps, queue-driven)\n", noTime.Seconds())
	fmt.Printf("speedup from removing barriers: %.2fx (paper: 90s -> 51s = 1.76x; ideal 7/3 = 2.33x)\n",
		syncTime.Seconds()/noTime.Seconds())
}

package logring

import (
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHandlerCapturesScopedAttrs(t *testing.T) {
	r := New(16)
	log := slog.New(r.Handler(slog.LevelDebug))
	log = log.With("job", "pagerank", "trace", "abc")
	log.WithGroup("step").Info("step complete", "n", 3)
	log.Debug("detail")

	recs := r.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	got := recs[0]
	if got.Msg != "step complete" || got.Level != "INFO" {
		t.Errorf("record = %+v", got)
	}
	if got.Attrs["job"] != "pagerank" || got.Attrs["trace"] != "abc" {
		t.Errorf("With attrs lost: %+v", got.Attrs)
	}
	if n, ok := got.Attrs["step.n"].(int64); !ok || n != 3 {
		t.Errorf("grouped attr not flattened: %+v", got.Attrs)
	}
	if got.Time.IsZero() {
		t.Error("record time not stamped")
	}
}

func TestHandlerLevelFilter(t *testing.T) {
	r := New(16)
	log := slog.New(r.Handler(slog.LevelWarn))
	log.Info("dropped")
	log.Warn("kept")
	recs := r.Snapshot()
	if len(recs) != 1 || recs[0].Msg != "kept" {
		t.Errorf("records = %+v", recs)
	}
}

func TestRingWraparoundAndReset(t *testing.T) {
	r := New(4)
	log := slog.New(r.Handler(slog.LevelInfo))
	for i := 0; i < 10; i++ {
		log.Info("m", "i", i)
	}
	if r.Len() != 4 || r.Dropped() != 6 {
		t.Errorf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	recs := r.Snapshot()
	if first, ok := recs[0].Attrs["i"].(int64); !ok || first != 6 {
		t.Errorf("oldest survivor = %+v", recs[0].Attrs)
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Errorf("after reset: len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Append(Record{Msg: "x"})
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Error("nil ring reported records")
	}
}

func TestFanout(t *testing.T) {
	a, b := New(8), New(8)
	log := slog.New(Fanout(a.Handler(slog.LevelInfo), b.Handler(slog.LevelError)))
	log.Info("info line")
	log.Error("error line")
	if a.Len() != 2 {
		t.Errorf("a got %d records", a.Len())
	}
	if b.Len() != 1 || b.Snapshot()[0].Msg != "error line" {
		t.Errorf("b records = %+v", b.Snapshot())
	}
}

func TestConcurrentAppendSnapshot(t *testing.T) {
	r := New(64)
	log := slog.New(r.Handler(slog.LevelInfo))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				log.Info("m", "w", w, "i", i)
				if i%41 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len()+int(r.Dropped()) != 8*200 {
		t.Errorf("retained+dropped = %d", r.Len()+int(r.Dropped()))
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New(16)
	log := slog.New(r.Handler(slog.LevelDebug))
	log.Info("job starting", "job", "wcc")
	log.Warn("retrying", "attempt", 1)
	log.Info("job finished", "job", "wcc")

	get := func(url string) logzResponse {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		rw := httptest.NewRecorder()
		HTTPHandler(r).ServeHTTP(rw, req)
		if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("content-type = %q", ct)
		}
		var resp logzResponse
		if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return resp
	}

	if resp := get("/debug/logz"); resp.Records != 3 || len(resp.Logs) != 3 {
		t.Errorf("unfiltered = %+v", resp)
	}
	if resp := get("/debug/logz?level=warn"); len(resp.Logs) != 1 || resp.Logs[0].Msg != "retrying" {
		t.Errorf("level filter = %+v", resp.Logs)
	}
	if resp := get("/debug/logz?q=job"); len(resp.Logs) != 2 {
		t.Errorf("q filter = %+v", resp.Logs)
	}
	if resp := get("/debug/logz?n=1"); len(resp.Logs) != 1 || resp.Logs[0].Msg != "job finished" {
		t.Errorf("n filter = %+v", resp.Logs)
	}
}

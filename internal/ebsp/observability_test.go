package ebsp

import (
	"strings"
	"sync"
	"testing"

	"ripple/internal/metrics"
	"ripple/internal/trace"
)

// countKinds tallies a span log by kind.
func countKinds(spans []trace.Span) map[trace.Kind]int {
	counts := make(map[trace.Kind]int)
	for _, s := range spans {
		counts[s.Kind]++
	}
	return counts
}

func TestSyncRunPopulatesInstrumentsAndSpans(t *testing.T) {
	col := &metrics.Collector{}
	tr := trace.New(1024)
	e := newEngine(t, WithMetrics(col), WithTracer(tr), WithCheckpoints(1))
	job := &Job{
		Name:        "sync-observed",
		StateTables: []string{"so_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.WriteState(0, ctx.StepNum())
			return ctx.StepNum() < 3
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1, 2, 3}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Strategy.Sync {
		t.Fatal("expected synchronized execution")
	}

	if got := col.StepDurations().Count(); got != int64(res.Steps) {
		t.Errorf("step-duration observations = %d, want %d", got, res.Steps)
	}
	if col.PartComputes().Count() == 0 {
		t.Error("no part-compute observations")
	}
	if col.BarrierWaits().Count() == 0 {
		t.Error("no barrier-wait observations")
	}
	if col.CheckpointWrites().Count() == 0 {
		t.Error("no checkpoint-write observations despite WithCheckpoints(1)")
	}
	// The final step runs all three enabled components.
	if got := col.EnabledComponents().Load(); got != 3 {
		t.Errorf("enabled components = %d, want 3", got)
	}

	counts := countKinds(tr.Snapshot())
	if counts[trace.KindJobStart] != 1 || counts[trace.KindJobEnd] != 1 {
		t.Errorf("job spans = %d start, %d end", counts[trace.KindJobStart], counts[trace.KindJobEnd])
	}
	if counts[trace.KindStepStart] != res.Steps || counts[trace.KindStepEnd] != res.Steps {
		t.Errorf("step spans = %d start, %d end, want %d each",
			counts[trace.KindStepStart], counts[trace.KindStepEnd], res.Steps)
	}
	if counts[trace.KindBarrier] != res.Steps {
		t.Errorf("barrier spans = %d, want %d", counts[trace.KindBarrier], res.Steps)
	}
	if counts[trace.KindPartCompute] == 0 {
		t.Error("no part-compute spans")
	}
	if counts[trace.KindCheckpoint] == 0 {
		t.Error("no checkpoint spans")
	}
}

func TestNoSyncRunFiresProgressAndSpans(t *testing.T) {
	col := &metrics.Collector{}
	tr := trace.New(1024)
	var mu sync.Mutex
	var infos []ProgressInfo
	e := newEngine(t,
		WithMetrics(col),
		WithTracer(tr),
		WithProgressObserver(ProgressObserverFunc(func(info ProgressInfo) {
			mu.Lock()
			infos = append(infos, info)
			mu.Unlock()
		}), 1))
	job := &Job{
		Name:        "ns-progress",
		StateTables: []string{"nsp_state"},
		Properties:  Properties{Incremental: true},
		Compute:     &incrementalChain{hops: 3},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Sync {
		t.Fatal("expected no-sync execution")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(infos) == 0 {
		t.Fatal("no progress notifications")
	}
	var watermarks, quiescent int
	for _, info := range infos {
		if info.Job != "ns-progress" {
			t.Errorf("info job = %q", info.Job)
		}
		if info.Quiescent {
			quiescent++
			if info.Part != -1 {
				t.Errorf("quiescent notification part = %d, want -1", info.Part)
			}
		} else {
			watermarks++
			if info.Part < 0 {
				t.Errorf("watermark part = %d", info.Part)
			}
			if info.Delivered < 1 {
				t.Errorf("watermark delivered = %d", info.Delivered)
			}
		}
	}
	// The chain delivers 4 envelopes (seed + 3 hops); with every=1 each is a
	// watermark, and quiescence always adds exactly one final notification.
	if watermarks != 4 {
		t.Errorf("watermark notifications = %d, want 4", watermarks)
	}
	if quiescent != 1 {
		t.Errorf("quiescent notifications = %d, want 1", quiescent)
	}
	last := infos[len(infos)-1]
	if !last.Quiescent || last.Delivered != 4 || last.Sent != 4 {
		t.Errorf("final notification = %+v", last)
	}

	counts := countKinds(tr.Snapshot())
	if counts[trace.KindProgress] == 0 {
		t.Error("no progress spans")
	}
	if counts[trace.KindQuiesce] == 0 {
		t.Error("no quiescence spans")
	}
	if got := col.InFlightEnvelopes().Load(); got != 0 {
		t.Errorf("in-flight envelopes after quiescence = %d, want 0", got)
	}
}

func TestNoSyncAlwaysFiresFinalProgress(t *testing.T) {
	// Even with a watermark interval far larger than the run, the observer
	// gets the guaranteed quiescence notification.
	var infos []ProgressInfo
	var mu sync.Mutex
	e := newEngine(t, WithProgressObserver(ProgressObserverFunc(func(info ProgressInfo) {
		mu.Lock()
		infos = append(infos, info)
		mu.Unlock()
	}), 1_000_000))
	job := &Job{
		Name:        "ns-tiny",
		StateTables: []string{"nst_state"},
		Properties:  Properties{Incremental: true},
		Compute:     &incrementalChain{hops: 1},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(infos) != 1 || !infos[0].Quiescent {
		t.Fatalf("notifications = %+v, want exactly the quiescent one", infos)
	}
}

func TestStepObserverPanicBecomesJobError(t *testing.T) {
	e := newEngine(t, WithObserver(StepObserverFunc(func(StepInfo) {
		panic("observer boom")
	})))
	job := &Job{
		Name:        "panicking-observer",
		StateTables: []string{"po_state"},
		Compute:     ComputeFunc(func(ctx *Context) bool { return false }),
		Loaders:     []Loader{&EnableLoader{Keys: []any{1}}},
	}
	_, err := e.Run(job)
	if err == nil {
		t.Fatal("observer panic did not fail the job")
	}
	if !strings.Contains(err.Error(), "observer panicked") || !strings.Contains(err.Error(), "observer boom") {
		t.Errorf("error = %v", err)
	}
}

func TestProgressObserverPanicBecomesJobError(t *testing.T) {
	e := newEngine(t, WithProgressObserver(ProgressObserverFunc(func(ProgressInfo) {
		panic("progress boom")
	}), 1))
	job := &Job{
		Name:        "panicking-progress",
		StateTables: []string{"pp_state"},
		Properties:  Properties{Incremental: true},
		Compute:     &incrementalChain{hops: 2},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	_, err := e.Run(job)
	if err == nil {
		t.Fatal("progress observer panic did not fail the job")
	}
	if !strings.Contains(err.Error(), "progress observer panicked") {
		t.Errorf("error = %v", err)
	}
}

package ebsp

import (
	"testing"

	"ripple/internal/metrics"
	"ripple/internal/trace"
)

// End-to-end causal-chain tests: run real jobs with head sampling on and
// verify that the recorded spans reconstruct an unbroken lineage from loader
// through every step to the job end, crossing at least one partition
// boundary — and that with sampling off, no trace context leaks anywhere.

func runSampledJob(t *testing.T, job *Job) []trace.Span {
	t.Helper()
	tr := trace.New(4096)
	e := newEngine(t,
		WithMetrics(&metrics.Collector{}),
		WithTracer(tr),
		WithTraceSampler(trace.NewSampler(1, 42)))
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	return tr.Snapshot()
}

func chainFromSpans(t *testing.T, spans []trace.Span) *trace.Chain {
	t.Helper()
	traces := trace.Traces(spans)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	return trace.BuildChain(spans, traces[0])
}

func TestSyncRunReconstructsCausalChain(t *testing.T) {
	spans := runSampledJob(t, &Job{
		Name:        "lineage-sync",
		StateTables: []string{"lin_sync_state"},
		Compute:     &chainCompute{limit: 8},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	})
	chain := chainFromSpans(t, spans)
	if err := chain.Complete(); err != nil {
		t.Fatalf("chain incomplete: %v", err)
	}
	if !chain.CrossPart() {
		t.Error("chain never crosses a partition boundary")
	}
	// Every deliver edge must resolve to a recorded producer span.
	for _, e := range chain.Edges {
		if e.From == nil || e.To == nil {
			t.Fatalf("unresolved edge %+v", e)
		}
		if e.N <= 0 {
			t.Errorf("edge with non-positive message count: %+v", e)
		}
	}
}

func TestNoSyncRunReconstructsCausalChain(t *testing.T) {
	spans := runSampledJob(t, &Job{
		Name:        "lineage-nosync",
		StateTables: []string{"lin_ns_state"},
		Properties:  Properties{Incremental: true},
		Compute:     &incrementalChain{hops: 6},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	})
	chain := chainFromSpans(t, spans)
	if err := chain.Complete(); err != nil {
		t.Fatalf("chain incomplete: %v", err)
	}
	if !chain.CrossPart() {
		t.Error("no-sync chain never crosses a partition boundary")
	}
	// The no-sync path must show worker-to-worker deliveries, not just the
	// loader seeding part 0.
	var workerEdges int
	for _, e := range chain.Edges {
		if e.From != nil && e.From.Kind == trace.KindPartCompute {
			workerEdges++
		}
	}
	if workerEdges == 0 {
		t.Error("no worker-to-worker deliver edges on the no-sync path")
	}
}

func TestUnsampledRunCarriesNoTraceContext(t *testing.T) {
	tr := trace.New(4096)
	e := newEngine(t,
		WithTracer(tr),
		WithTraceSampler(trace.NewSampler(0, 42)))
	_, err := e.Run(&Job{
		Name:        "lineage-off",
		StateTables: []string{"lin_off_state"},
		Compute:     &chainCompute{limit: 5},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	if len(spans) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	for _, s := range spans {
		if s.Trace != 0 || s.Span != 0 || s.Parent != 0 {
			t.Fatalf("unsampled run leaked trace context: %+v", s)
		}
		if s.Kind == trace.KindDeliver {
			t.Fatalf("unsampled run recorded a deliver span: %+v", s)
		}
	}
	if len(trace.Traces(spans)) != 0 {
		t.Error("unsampled spans grouped into a trace")
	}
}

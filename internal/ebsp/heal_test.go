package ebsp

import (
	"errors"
	"testing"
	"time"

	"ripple/internal/chaos"
	"ripple/internal/gridstore"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
)

func TestRetryOpRecoversTransientsAndDetags(t *testing.T) {
	e := NewEngine(memstore.New(), WithRecoveryRetries(3))
	t.Cleanup(func() { _ = e.Store().Close() })

	calls := 0
	err := e.retryOp("j", 1, 0, func() error {
		calls++
		if calls < 3 {
			return kvstore.ErrTransient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("retryOp = %v after %d calls, want success on 3rd", err, calls)
	}

	// A persistent transient exhausts the budget — and the returned error
	// must NOT be transient anymore, or an outer boundary could retry an
	// operation whose effects are unknown.
	calls = 0
	err = e.retryOp("j", 1, 0, func() error { calls++; return mq.ErrTransient })
	if err == nil || calls != 4 {
		t.Fatalf("retryOp = %v after %d calls, want failure after 4", err, calls)
	}
	if isTransient(err) {
		t.Errorf("exhausted error still transient: %v", err)
	}

	// Fatal errors pass through untouched, without retries.
	fatal := errors.New("disk on fire")
	calls = 0
	if err := e.retryOp("j", 1, 0, func() error { calls++; return fatal }); !errors.Is(err, fatal) || calls != 1 {
		t.Errorf("fatal: err=%v calls=%d", err, calls)
	}
}

func TestEngineSelfHealsTransientStoreFaults(t *testing.T) {
	m := &metrics.Collector{}
	inj := chaos.NewInjector(chaos.Schedule{Seed: 11, StoreErrRate: 0.05, AgentErrRate: 0.05},
		chaos.WithMetrics(m))
	store := chaos.Wrap(memstore.New(memstore.WithParts(4)), inj)
	t.Cleanup(func() { _ = store.Close() })

	e := NewEngine(store, WithMetrics(m))
	res, err := e.Run(checkpointChainJob("selfheal", 20, nil))
	if err != nil {
		t.Fatalf("run under 5%% transient faults: %v", err)
	}
	if res.Steps != 20 {
		t.Errorf("Steps = %d, want 20", res.Steps)
	}
	tab, _ := store.LookupTable("selfheal_state")
	for i := 0; i < 20; i++ {
		if v, ok, _ := tab.Get(i); !ok || v != i+1 {
			t.Errorf("state[%d] = %v, %v", i, v, ok)
		}
	}
	snap := m.Snapshot()
	if snap.FaultsInjected == 0 {
		t.Error("no faults injected — schedule not exercised")
	}
	if snap.Retries == 0 {
		t.Error("faults injected but no retries counted")
	}
}

func TestEngineAutoRecoversFromPrimaryKill(t *testing.T) {
	m := &metrics.Collector{}
	gs := gridstore.New(gridstore.WithParts(4), gridstore.WithReplicas(2), gridstore.WithMetrics(m))
	inj := chaos.NewInjector(chaos.Schedule{
		Seed: 5,
		Kills: []chaos.Kill{
			{Table: "killed_state", Part: 1, AfterDispatches: 20},
			{Table: "killed_state", Part: 2, AfterDispatches: 55},
		},
	}, chaos.WithMetrics(m))
	store := chaos.Wrap(gs, inj)
	t.Cleanup(func() { _ = store.Close() })

	e := NewEngine(store, WithMetrics(m), WithCheckpoints(3))
	// Run — not Resume — must survive both kills by healing and re-running
	// from the latest checkpoint on its own.
	res, err := e.Run(checkpointChainJob("killed", 25, nil))
	if err != nil {
		t.Fatalf("run under primary kills: %v", err)
	}
	if res.Steps != 25 {
		t.Errorf("Steps = %d, want 25", res.Steps)
	}
	tab, _ := store.LookupTable("killed_state")
	for i := 0; i < 25; i++ {
		if v, ok, _ := tab.Get(i); !ok || v != i+1 {
			t.Errorf("state[%d] = %v, %v", i, v, ok)
		}
	}
	recs := inj.Records()
	kills := 0
	for _, r := range recs {
		if r.Kind == "kill" {
			kills++
		}
	}
	if kills != 2 {
		t.Errorf("kills fired = %d, want 2 (records: %v)", kills, recs)
	}
	snap := m.Snapshot()
	if snap.Failovers < 2 {
		t.Errorf("Failovers = %d, want >= 2", snap.Failovers)
	}
	if snap.StepsRerun == 0 {
		t.Error("recovery re-ran no steps")
	}
}

func TestRunWithoutCheckpointsDoesNotMaskKill(t *testing.T) {
	// Without checkpoints there is nothing to recover from: the failover is
	// sensed but the run must simply continue on the surviving replica (the
	// non-transactional write path writes to all alive replicas, so a single
	// kill with a survivor loses nothing).
	gs := gridstore.New(gridstore.WithParts(4), gridstore.WithReplicas(2))
	inj := chaos.NewInjector(chaos.Schedule{
		Seed:  5,
		Kills: []chaos.Kill{{Table: "nockpt_kill_state", Part: 0, AfterDispatches: 15}},
	})
	store := chaos.Wrap(gs, inj)
	t.Cleanup(func() { _ = store.Close() })
	res, err := NewEngine(store).Run(checkpointChainJob("nockpt_kill", 15, nil))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Steps != 15 {
		t.Errorf("Steps = %d, want 15", res.Steps)
	}
	if gs.Failovers() != 1 {
		t.Errorf("Failovers = %d, want 1", gs.Failovers())
	}
}

func TestResumeRejectsMismatchedJobSpec(t *testing.T) {
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithCheckpoints(2))
	if _, err := e.Run(checkpointChainJob("specck", 10, crashAfter(4))); err != nil {
		t.Fatal(err)
	}

	// Same checkpoint, different step bound: the checkpoint does not match
	// the job being resumed.
	bad := checkpointChainJob("specck", 10, nil)
	bad.MaxSteps = 7
	_, err := e.Resume(bad)
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("MaxSteps mismatch err = %v, want ErrCheckpointMismatch", err)
	}
	if !errors.Is(err, ErrBadJob) {
		t.Errorf("ErrCheckpointMismatch must wrap ErrBadJob, got %v", err)
	}

	// A matching spec still resumes fine.
	if _, err := e.Resume(checkpointChainJob("specck", 10, nil)); err != nil {
		t.Fatalf("matching resume: %v", err)
	}
}

func TestNoSyncSurvivesDuplicationAndJitter(t *testing.T) {
	// Satellite property: per-(sender,receiver) FIFO and Huang's quiescence
	// hold under message duplication and latency jitter — the run terminates
	// and computes exactly the fault-free answer, because duplicates are
	// shed by the per-sender sequence and FIFO is preserved by the queue.
	build := func(tabName string) *Job {
		return &Job{
			Name:        "dupjob",
			StateTables: []string{tabName},
			Properties:  Properties{Incremental: true},
			Compute: ComputeFunc(func(ctx *Context) bool {
				for _, m := range ctx.InputMessages() {
					n := m.(int)
					cur := 0
					if v, ok := ctx.ReadState(0); ok {
						cur = v.(int)
					}
					ctx.WriteState(0, cur+n)
					if n > 1 {
						k := ctx.Key().(int)
						ctx.Send(2*k+1, n/2)
						ctx.Send(2*k+2, n-n/2)
					}
				}
				return false
			}),
			Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 256}}}},
		}
	}

	ref := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = ref.Close() })
	if _, err := NewEngine(ref).Run(build("ref_state")); err != nil {
		t.Fatal(err)
	}
	refTab, _ := ref.LookupTable("ref_state")
	want, _ := kvstore.Dump(refTab)

	m := &metrics.Collector{}
	inj := chaos.NewInjector(chaos.Schedule{
		Seed:      21,
		MQErrRate: 0.05,
		MQDupRate: 0.25,
		MQDelay:   300 * time.Microsecond, MQDelayRate: 0.3,
	}, chaos.WithMetrics(m))
	store := chaos.Wrap(memstore.New(memstore.WithParts(4)), inj)
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store, WithMetrics(m), WithMQ(mq.NewSystem(mq.WithFaults(inj))))
	res, err := e.Run(build("dup_state"))
	if err != nil {
		t.Fatalf("no-sync under chaos: %v", err)
	}
	if res.Strategy.Sync {
		t.Fatal("expected no-sync execution")
	}

	tab, _ := store.LookupTable("dup_state")
	got, _ := kvstore.Dump(tab)
	if len(got) != len(want) {
		t.Fatalf("state size %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("state[%v] = %v, want %v", k, got[k], v)
		}
	}
	dups := false
	for _, r := range inj.Records() {
		if r.Kind == "mq.dup" {
			dups = true
		}
	}
	if !dups {
		t.Error("schedule injected no duplicates — property not exercised")
	}
}

func TestRetryBackoffJitterDeterministicAndSpread(t *testing.T) {
	e1 := NewEngine(memstore.New(), WithRetryJitterSeed(7))
	e2 := NewEngine(memstore.New(), WithRetryJitterSeed(7))
	e3 := NewEngine(memstore.New(), WithRetryJitterSeed(8))
	distinct := make(map[time.Duration]bool)
	for part := 0; part < 8; part++ {
		for attempt := 1; attempt <= 3; attempt++ {
			base := retryBackoff(attempt)
			d1 := e1.backoffFor("job", 2, part, attempt)
			if d2 := e2.backoffFor("job", 2, part, attempt); d1 != d2 {
				t.Fatalf("same seed diverged: %v vs %v", d1, d2)
			}
			if d1 < base/2 || d1 >= base+base/2 {
				t.Fatalf("backoff %v outside [%v, %v)", d1, base/2, base+base/2)
			}
			distinct[d1] = true
		}
	}
	// Different parts must not retry in lockstep: the jitter decorrelates.
	if len(distinct) < 12 {
		t.Errorf("only %d distinct backoffs across 24 (part, attempt) cells", len(distinct))
	}
	// A different seed yields a different schedule somewhere.
	var diverged bool
	for part := 0; part < 8 && !diverged; part++ {
		diverged = e1.backoffFor("job", 2, part, 1) != e3.backoffFor("job", 2, part, 1)
	}
	if !diverged {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
}

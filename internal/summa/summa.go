// Package summa implements matrix multiplication according to the
// communication/computation pattern of the original SUMMA paper, moved onto
// the (extended) BSP model as the paper's §V-B evaluation does.
//
// C ← A × B with all three matrices decomposed into a G×G grid of blocks
// stored in the same G² components. Each block of A is multicast through its
// grid row and each block of B through its grid column — pipelined as
// point-to-point sends from one grid point to the next, interleaved with the
// block multiplications, in an order consistent with original SUMMA. The
// per-component BSP state holds the running total for C.
//
// Under synchronized execution the paper's pacing rules apply: per step a
// component does no more than one block multiply and sends no more than one
// block in a given direction (so blocks do not pile up), and otherwise does
// as much work as allowed. For a 3×3 grid this yields exactly the Table II
// schedule: multiplications per step 1,3,6,3,6,3,5 — a 7/3 slowdown over
// the 3 multiplications any single component performs.
//
// The computation does not actually need the barriers: because components
// follow the SUMMA pattern and Ripple preserves per-(sender,receiver) message
// order, removing synchronization (the job is incremental, so the engine
// runs it on a queue set) lets every component deal with blocks as they
// arrive. That is the paper's 90 s → 51 s improvement.
package summa

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/codec"
	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/matrix"
	"ripple/internal/metrics"
	"ripple/internal/mq"
	"ripple/internal/profile"
)

// ErrBadConfig is returned for invalid configurations.
var ErrBadConfig = errors.New("summa: invalid config")

// Config parameterizes one SUMMA multiplication.
type Config struct {
	// Name overrides the BSP job name ("summa" when empty). Concurrent
	// multiplications on one store need distinct names (and StateTables).
	Name string
	// Grid is G: the matrices are decomposed into G×G blocks (the paper
	// evaluates G = 3).
	Grid int
	// Synchronized selects BSPified execution with barriers; false removes
	// them (the §V-B comparison).
	Synchronized bool
	// StateTable names the component-state table; a private default is used
	// when empty.
	StateTable string
	// Metrics optionally collects engine counters.
	Metrics *metrics.Collector
	// Latency is the emulated network latency applied to the message-queue
	// layer used by no-sync execution. Pair it with the same latency on the
	// store (memstore/gridstore WithLatency) so both execution modes pay
	// identical per-hop costs; on a single-core host this is what makes the
	// barrier-removal benefit visible in wall-clock time.
	Latency time.Duration
	// MQ, when set, supplies the message-queue system for no-sync execution
	// — e.g. a fault-injecting one — instead of the private system built
	// from Latency/Metrics.
	MQ mq.Queuing
	// Profiler optionally records per-part step profiles.
	Profiler *profile.Recorder
	// EngineOptions are appended to the options of the engine Multiply
	// builds internally — the hook a host uses to attach its own observers
	// (progress, step) to a workload that owns its engine.
	EngineOptions []ebsp.Option
}

// Outcome reports one multiplication.
type Outcome struct {
	// C is the assembled product.
	C matrix.Dense
	// Result is the underlying EBSP result.
	Result *ebsp.Result
	// MultsPerStep is the Table II series — block multiplications performed
	// in each step (synchronized mode only; nil otherwise).
	MultsPerStep []int
}

// compState is one grid component's private state: the running total for C
// plus the SUMMA bookkeeping.
type compState struct {
	C       matrix.Dense
	ABlocks map[int]matrix.Dense // held A(i,k) blocks by k
	BBlocks map[int]matrix.Dense // held B(k,j) blocks by k
	NextMul int                  // next k to multiply
	ASent   int                  // index into the A-send schedule
	BSent   int                  // index into the B-send schedule
}

// blockMsg carries one block along the pipeline.
type blockMsg struct {
	IsA   bool
	K     int
	Block matrix.Dense
}

func init() {
	codec.Register(compState{})
	codec.Register(blockMsg{})
	codec.Register(map[int]matrix.Dense{})
}

// sendSchedule lists, in ascending k, the A-blocks component (i,j) must
// forward rightward: every k except the one owned by the right neighbor
// (there the multicast ring ends). The B schedule is symmetric with i.
func sendSchedule(g, owner int) []int {
	out := make([]int, 0, g-1)
	for k := 0; k < g; k++ {
		if k != owner {
			out = append(out, k)
		}
	}
	return out
}

// compute is the SUMMA component function, shared by both execution modes.
type compute struct {
	g     int
	mults sync.Map // step -> *atomic.Int64, for the Table II series
}

// Compute implements ebsp.Compute.
func (sc *compute) Compute(ctx *ebsp.Context) bool {
	key := ctx.Key().([2]int)
	i, j := key[0], key[1]
	g := sc.g

	raw, ok := ctx.ReadState(0)
	if !ok {
		return false
	}
	st := raw.(compState)

	for _, m := range ctx.InputMessages() {
		bm := m.(blockMsg)
		if bm.IsA {
			st.ABlocks[bm.K] = bm.Block
		} else {
			st.BBlocks[bm.K] = bm.Block
		}
	}

	// The send schedules: A flows right along row i, B flows down column j.
	aSched := sendSchedule(g, (j+1)%g) // right neighbor owns A(i, j+1)
	bSched := sendSchedule(g, (i+1)%g) // down neighbor owns B(i+1, j)
	right := [2]int{i, (j + 1) % g}
	down := [2]int{(i + 1) % g, j}

	if ctx.StepNum() == 0 {
		// No barriers: deal with blocks as they arrive — do everything
		// currently possible (original SUMMA pipelining).
		for sc.stepOnce(ctx, &st, aSched, bSched, right, down) {
		}
		ctx.WriteState(0, st)
		return false
	}

	// Synchronized: at most one multiply and one send per direction per
	// step (Table II pacing).
	sc.stepOnce(ctx, &st, aSched, bSched, right, down)
	ctx.WriteState(0, st)
	return sc.actionable(&st, aSched, bSched)
}

// stepOnce performs up to one multiply and one send per direction; it
// reports whether it did anything.
func (sc *compute) stepOnce(ctx *ebsp.Context, st *compState, aSched, bSched []int, right, down [2]int) bool {
	g := sc.g
	did := false

	if st.NextMul < g {
		a, haveA := st.ABlocks[st.NextMul]
		b, haveB := st.BBlocks[st.NextMul]
		if haveA && haveB {
			prod, err := a.Mul(b)
			if err != nil {
				panic(fmt.Sprintf("summa: block multiply k=%d at %v: %v", st.NextMul, ctx.Key(), err))
			}
			if st.C.IsZero() {
				st.C = prod
			} else if err := st.C.AddInPlace(prod); err != nil {
				panic(fmt.Sprintf("summa: accumulate k=%d at %v: %v", st.NextMul, ctx.Key(), err))
			}
			st.NextMul++
			did = true
			sc.countMult(ctx.StepNum())
		}
	}
	if st.ASent < len(aSched) {
		k := aSched[st.ASent]
		if blk, ok := st.ABlocks[k]; ok {
			ctx.Send(right, blockMsg{IsA: true, K: k, Block: blk})
			st.ASent++
			did = true
		}
	}
	if st.BSent < len(bSched) {
		k := bSched[st.BSent]
		if blk, ok := st.BBlocks[k]; ok {
			ctx.Send(down, blockMsg{IsA: false, K: k, Block: blk})
			st.BSent++
			did = true
		}
	}
	sc.discard(st, aSched, bSched)
	return did
}

// discard drops blocks that have been both multiplied and forwarded (or
// never needed forwarding), honoring SUMMA's limited-buffering virtue.
func (sc *compute) discard(st *compState, aSched, bSched []int) {
	for k := range st.ABlocks {
		if k < st.NextMul && sentOrSkipped(k, aSched, st.ASent) {
			delete(st.ABlocks, k)
		}
	}
	for k := range st.BBlocks {
		if k < st.NextMul && sentOrSkipped(k, bSched, st.BSent) {
			delete(st.BBlocks, k)
		}
	}
}

// sentOrSkipped reports whether block k needs no further forwarding.
func sentOrSkipped(k int, sched []int, sent int) bool {
	for idx, sk := range sched {
		if sk == k {
			return idx < sent
		}
	}
	return true // not in the schedule: the neighbor owns it
}

// actionable reports whether more work could be done right now (without
// waiting for further arrivals); it is the synchronized continue signal.
func (sc *compute) actionable(st *compState, aSched, bSched []int) bool {
	if st.NextMul < sc.g {
		_, haveA := st.ABlocks[st.NextMul]
		_, haveB := st.BBlocks[st.NextMul]
		if haveA && haveB {
			return true
		}
	}
	if st.ASent < len(aSched) {
		if _, ok := st.ABlocks[aSched[st.ASent]]; ok {
			return true
		}
	}
	if st.BSent < len(bSched) {
		if _, ok := st.BBlocks[bSched[st.BSent]]; ok {
			return true
		}
	}
	return false
}

func (sc *compute) countMult(step int) {
	v, _ := sc.mults.LoadOrStore(step, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

// multsSeries extracts the per-step multiply counts (steps 1..maxStep).
func (sc *compute) multsSeries(maxStep int) []int {
	out := make([]int, maxStep)
	sc.mults.Range(func(k, v any) bool {
		step := k.(int)
		if step >= 1 && step <= maxStep {
			out[step-1] = int(v.(*atomic.Int64).Load())
		}
		return true
	})
	return out
}

// Multiply computes A × B on the store using the SUMMA pattern.
func Multiply(store kvstore.Store, cfg Config, a, b matrix.Dense) (*Outcome, error) {
	return MultiplyContext(context.Background(), store, cfg, a, b)
}

// MultiplyContext is Multiply under a cancelable context: ctx reaches the
// internally built engine's RunContext, so a host can interrupt the
// multiplication at a barrier (or, no-sync, at a quiescence check).
func MultiplyContext(ctx context.Context, store kvstore.Store, cfg Config, a, b matrix.Dense) (*Outcome, error) {
	if cfg.Grid < 2 {
		return nil, fmt.Errorf("%w: grid %d", ErrBadConfig, cfg.Grid)
	}
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d × %dx%d", ErrBadConfig, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	g := cfg.Grid
	ga, err := matrix.Partition(a, g, g)
	if err != nil {
		return nil, err
	}
	gb, err := matrix.Partition(b, g, g)
	if err != nil {
		return nil, err
	}
	tableName := cfg.StateTable
	if tableName == "" {
		tableName = "summa.state"
	}
	if _, ok := store.LookupTable(tableName); ok {
		if err := store.DropTable(tableName); err != nil {
			return nil, err
		}
	}

	// Initial condition: component (i,j) owns A(i,j) — its row's block
	// k=j — and B(i,j) — its column's block k=i — and starts enabled.
	states := make(map[any]any, g*g)
	keys := make([]any, 0, g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			key := [2]int{i, j}
			states[key] = compState{
				ABlocks: map[int]matrix.Dense{j: ga.Blocks[i][j]},
				BBlocks: map[int]matrix.Dense{i: gb.Blocks[i][j]},
			}
			keys = append(keys, key)
		}
	}

	jobName := cfg.Name
	if jobName == "" {
		jobName = "summa"
	}
	comp := &compute{g: g}
	job := &ebsp.Job{
		Name:        jobName,
		StateTables: []string{tableName},
		Compute:     comp,
		Properties: ebsp.Properties{
			// Blocks can be handled in any grouping; per-(sender,receiver)
			// order — which Ripple preserves — keeps them SUMMA-coordinated.
			Incremental: true,
		},
		Loaders: []ebsp.Loader{
			&ebsp.StateLoader{Tab: 0, States: states},
			&ebsp.EnableLoader{Keys: keys},
		},
	}

	opts := []ebsp.Option{}
	if cfg.Metrics != nil {
		opts = append(opts, ebsp.WithMetrics(cfg.Metrics))
	}
	if cfg.Profiler != nil {
		opts = append(opts, ebsp.WithProfiler(cfg.Profiler))
	}
	if cfg.MQ != nil {
		opts = append(opts, ebsp.WithMQ(cfg.MQ))
	} else if cfg.Latency > 0 {
		opts = append(opts, ebsp.WithMQ(mq.NewSystem(
			mq.WithLatency(cfg.Latency), mq.WithMetrics(cfg.Metrics))))
	}
	if cfg.Synchronized {
		opts = append(opts, ebsp.WithStrategyOverride(func(s ebsp.Strategy) ebsp.Strategy {
			s.Sync = true
			return s
		}))
	}
	opts = append(opts, cfg.EngineOptions...)
	engine := ebsp.NewEngine(store, opts...)
	res, err := engine.RunContext(ctx, job)
	if err != nil {
		return nil, err
	}

	// Assemble C from the component states.
	tab, _ := store.LookupTable(tableName)
	gc := &matrix.Grid{M: g, N: g, Blocks: make([][]matrix.Dense, g)}
	for i := range gc.Blocks {
		gc.Blocks[i] = make([]matrix.Dense, g)
	}
	pairs, err := kvstore.Dump(tab)
	if err != nil {
		return nil, err
	}
	for k, v := range pairs {
		key := k.([2]int)
		st := v.(compState)
		if st.NextMul != g {
			return nil, fmt.Errorf("summa: component %v finished only %d of %d multiplies", key, st.NextMul, g)
		}
		gc.Blocks[key[0]][key[1]] = st.C
	}
	out := &Outcome{C: gc.Assemble(), Result: res}
	if cfg.Synchronized {
		out.MultsPerStep = comp.multsSeries(res.Steps)
	}
	return out, nil
}

// Schedule simulates the synchronized pacing analytically (no real block
// arithmetic) and returns the multiplications per step — the generator for
// Table II at any grid size.
func Schedule(g int) []int {
	if g < 2 {
		return nil
	}
	// tA[j][k]: the step at which ring position j holds A-block k
	// (symmetrically tB[i][k] for B along columns). Owners hold at step 1;
	// each hop takes one barrier; sends are paced one per direction per
	// step in ascending k. Ring propagation is order-dependent, so iterate
	// to fixpoint.
	tA := fixpointAvail(g)
	tB := tA // symmetric

	counts := map[int]int{}
	maxStep := 0
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			prev := 0
			for k := 0; k < g; k++ {
				ready := tA[j][k]
				if tB[i][k] > ready {
					ready = tB[i][k]
				}
				m := ready
				if m <= prev {
					m = prev + 1
				}
				counts[m]++
				if m > maxStep {
					maxStep = m
				}
				prev = m
			}
		}
	}
	out := make([]int, maxStep)
	for s, c := range counts {
		out[s-1] = c
	}
	return out
}

// fixpointAvail computes, for each position p in a ring of size g, the step
// at which it holds block k, under paced ascending-k forwarding.
func fixpointAvail(g int) [][]int {
	t := make([][]int, g)
	for p := 0; p < g; p++ {
		t[p] = make([]int, g)
	}
	for k := 0; k < g; k++ {
		t[k][k] = 1
	}
	for changed := true; changed; {
		changed = false
		for p := 0; p < g; p++ {
			sched := sendSchedule(g, (p+1)%g)
			lastSend := 0
			for _, k := range sched {
				have := t[p][k]
				if have == 0 {
					break // cannot send k (or any later) yet
				}
				depart := have
				if depart <= lastSend {
					depart = lastSend + 1
				}
				dst := (p + 1) % g
				arrive := depart + 1
				if t[dst][k] == 0 || arrive < t[dst][k] {
					t[dst][k] = arrive
					changed = true
				}
				lastSend = depart
			}
		}
	}
	return t
}

package profile

import (
	"sort"
	"strings"

	"ripple/internal/trace"
)

// Fleet attribution: a merged fleet timeline (client rpc spans joined to
// their server rpc_server spans — see internal/fleet) names which *server*
// an RPC's time was spent on, and how much of it was wire vs execution.
// Joining that against the skew report moves straggler blame across the
// network boundary: a slow step whose parts all waited on one server's RPCs
// is a server problem, not a partitioning problem.

// ServerCost aggregates one server's share of a run's RPC time.
type ServerCost struct {
	// Server is the client-side server label ("s0", "s1", ...).
	Server string `json:"server"`
	// Calls counts client RPC round-trips to the server; Matched counts
	// those whose server-side span was found in the timeline.
	Calls   int `json:"calls"`
	Matched int `json:"matched"`
	// ClientNS is the total client-observed round-trip time; ServerNS the
	// matched server-side execution time; WireNS the remainder (transport,
	// queueing, codec) over the matched calls.
	ClientNS int64 `json:"client_ns"`
	ServerNS int64 `json:"server_ns"`
	WireNS   int64 `json:"wire_ns"`
}

// AttachFleet joins a merged fleet timeline against the report: rep.Servers
// gains one ServerCost per server, ranked by client-observed RPC time,
// worst first. Spans without client RPC records — in-process runs, untraced
// runs — leave the report untouched.
func AttachFleet(rep *Report, spans []trace.Span) {
	if rep == nil {
		return
	}
	serverDur := make(map[uint64]int64)
	for _, s := range spans {
		if s.Kind == trace.KindRPCServer && s.Parent != 0 {
			serverDur[s.Parent] += int64(s.Dur)
		}
	}
	agg := make(map[string]*ServerCost)
	for _, s := range spans {
		if s.Kind != trace.KindRPC {
			continue
		}
		server := s.Job
		if i := strings.IndexByte(server, '/'); i >= 0 {
			server = server[:i]
		}
		c := agg[server]
		if c == nil {
			c = &ServerCost{Server: server}
			agg[server] = c
		}
		c.Calls++
		c.ClientNS += int64(s.Dur)
		if sd, ok := serverDur[s.Span]; ok && s.Span != 0 {
			c.Matched++
			c.ServerNS += sd
			if wire := int64(s.Dur) - sd; wire > 0 {
				c.WireNS += wire
			}
		}
	}
	if len(agg) == 0 {
		return
	}
	costs := make([]ServerCost, 0, len(agg))
	for _, c := range agg {
		costs = append(costs, *c)
	}
	sort.Slice(costs, func(i, j int) bool {
		if costs[i].ClientNS != costs[j].ClientNS {
			return costs[i].ClientNS > costs[j].ClientNS
		}
		return costs[i].Server < costs[j].Server
	})
	rep.Servers = costs
}

package sssp

import (
	"math/rand"
	"testing"

	"ripple/internal/ebsp"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/workload"
)

func newEngine(t *testing.T, m *metrics.Collector) *ebsp.Engine {
	t.Helper()
	opts := []memstore.Option{memstore.WithParts(6)}
	if m != nil {
		opts = append(opts, memstore.WithMetrics(m))
	}
	store := memstore.New(opts...)
	t.Cleanup(func() { _ = store.Close() })
	eopts := []ebsp.Option{}
	if m != nil {
		eopts = append(eopts, ebsp.WithMetrics(m))
	}
	return ebsp.NewEngine(store, eopts...)
}

func genGraph(t *testing.T, v, e int, seed int64) *workload.UndirectedGraph {
	t.Helper()
	g, err := workload.PowerLawUndirected(rand.New(rand.NewSource(seed)), v, e, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkAgainstReference(t *testing.T, label string, got map[int]int32, g *workload.UndirectedGraph, src int) {
	t.Helper()
	want := ReferenceDistances(g, src)
	if len(got) != len(want) {
		t.Fatalf("%s: %d annotations, want %d", label, len(got), len(want))
	}
	bad := 0
	for v, w := range want {
		if got[v] != w {
			if bad < 5 {
				t.Errorf("%s: d(%d) = %d, want %d", label, v, got[v], w)
			}
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d wrong annotations", label, bad)
	}
}

func TestReferenceBFS(t *testing.T) {
	g := workload.NewUndirected(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 4)
	// 5 is isolated.
	d := ReferenceDistances(g, 0)
	want := []int32{0, 1, 2, 3, 1, Inf}
	for i, w := range want {
		if d[i] != w {
			t.Errorf("d[%d] = %d, want %d", i, d[i], w)
		}
	}
}

func TestSelectiveInit(t *testing.T) {
	g := genGraph(t, 300, 1500, 1)
	e := newEngine(t, nil)
	drv := NewSelective(e, "sel", 7, 6)
	if err := drv.Init(g); err != nil {
		t.Fatal(err)
	}
	got, err := drv.Distances()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "selective init", got, g, 7)
}

func TestFullScanInit(t *testing.T) {
	g := genGraph(t, 300, 1500, 1)
	e := newEngine(t, nil)
	drv := NewFullScan(e, "fs", 7, 6)
	if err := drv.Init(g); err != nil {
		t.Fatal(err)
	}
	got, err := drv.Distances()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "full-scan init", got, g, 7)
}

func TestSelectiveAdditionsOnly(t *testing.T) {
	g := genGraph(t, 200, 800, 2)
	e := newEngine(t, nil)
	drv := NewSelective(e, "sel", 0, 6)
	if err := drv.Init(g); err != nil {
		t.Fatal(err)
	}
	batch := []workload.Change{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		batch = append(batch, workload.Change{
			Kind: workload.AddEdge, U: rng.Intn(200), V: rng.Intn(200),
		})
	}
	for _, c := range batch {
		g.Apply(c)
	}
	stats, err := drv.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HardCase {
		t.Error("additions-only batch flagged as hard case")
	}
	if stats.Jobs > 1 {
		t.Errorf("additions-only batch used %d jobs, want <= 1 (one wave)", stats.Jobs)
	}
	got, _ := drv.Distances()
	checkAgainstReference(t, "selective adds", got, g, 0)
}

func TestSelectiveDeletionsTwoWaves(t *testing.T) {
	g := genGraph(t, 200, 900, 4)
	e := newEngine(t, nil)
	drv := NewSelective(e, "sel", 0, 6)
	if err := drv.Init(g); err != nil {
		t.Fatal(err)
	}
	// Remove a slice of existing edges (guaranteed hard case).
	batch := []workload.Change{}
	removed := 0
	for u := 0; u < g.NumVertices && removed < 30; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				batch = append(batch, workload.Change{Kind: workload.RemoveEdge, U: u, V: int(v)})
				removed++
				break
			}
		}
	}
	for _, c := range batch {
		g.Apply(c)
	}
	stats, err := drv.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.HardCase {
		t.Error("deletion batch not flagged hard")
	}
	if stats.Jobs != 2 {
		t.Errorf("hard case used %d jobs, want 2 (two waves)", stats.Jobs)
	}
	got, _ := drv.Distances()
	checkAgainstReference(t, "selective deletes", got, g, 0)
}

func TestDisconnectionGoesToInf(t *testing.T) {
	// Cutting the only bridge makes a whole region unreachable.
	g := workload.NewUndirected(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2) // bridge
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	e := newEngine(t, nil)
	drv := NewSelective(e, "sel", 0, 3)
	if err := drv.Init(g); err != nil {
		t.Fatal(err)
	}
	batch := []workload.Change{{Kind: workload.RemoveEdge, U: 1, V: 2}}
	g.Apply(batch[0])
	stats, err := drv.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Invalidated != 3 {
		t.Errorf("Invalidated = %d, want 3 (the cycle 2,3,4)", stats.Invalidated)
	}
	got, _ := drv.Distances()
	checkAgainstReference(t, "disconnection", got, g, 0)
}

func TestCycleInvalidationNoCountToInfinity(t *testing.T) {
	// The classic distance-vector trap: a cycle whose members mutually
	// "support" stale values. The two-wave method must invalidate the whole
	// ring and then recover only what a real path justifies.
	g := workload.NewUndirected(10)
	g.AddEdge(0, 1) // source side
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 2) // ring 2-3-4-5
	e := newEngine(t, nil)
	drv := NewSelective(e, "sel", 0, 3)
	if err := drv.Init(g); err != nil {
		t.Fatal(err)
	}
	batch := []workload.Change{{Kind: workload.RemoveEdge, U: 1, V: 2}}
	g.Apply(batch[0])
	if _, err := drv.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	got, _ := drv.Distances()
	checkAgainstReference(t, "ring cut", got, g, 0)
	for _, v := range []int{2, 3, 4, 5} {
		if got[v] != Inf {
			t.Errorf("d(%d) = %d, want Inf (count-to-infinity not prevented)", v, got[v])
		}
	}
}

func TestVariantsAgreeOverRandomBatches(t *testing.T) {
	// The §V-C experiment shape: ten batches of random changes; after each,
	// both variants must agree with the BFS reference.
	const vertices, edges, batches, batchSize = 150, 600, 10, 40
	g := genGraph(t, vertices, edges, 7)
	gSel := cloneGraph(g)
	gFs := cloneGraph(g)

	eSel := newEngine(t, nil)
	sel := NewSelective(eSel, "sel", 0, 6)
	if err := sel.Init(gSel); err != nil {
		t.Fatal(err)
	}
	eFs := newEngine(t, nil)
	fs := NewFullScan(eFs, "fs", 0, 6)
	if err := fs.Init(gFs); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for b := 0; b < batches; b++ {
		batch := workload.ChangeBatch(rng, vertices, batchSize, 1.3, 0.4)
		for _, c := range batch {
			g.Apply(c)
		}
		if _, err := sel.ApplyBatch(batch); err != nil {
			t.Fatalf("batch %d selective: %v", b, err)
		}
		if _, err := fs.ApplyBatch(batch); err != nil {
			t.Fatalf("batch %d full-scan: %v", b, err)
		}
		gotSel, _ := sel.Distances()
		gotFs, _ := fs.Distances()
		checkAgainstReference(t, "selective", gotSel, g, 0)
		checkAgainstReference(t, "full-scan", gotFs, g, 0)
	}
}

func cloneGraph(g *workload.UndirectedGraph) *workload.UndirectedGraph {
	out := workload.NewUndirected(g.NumVertices)
	for u := 0; u < g.NumVertices; u++ {
		for _, v := range g.Neighbors(u) {
			out.AddEdge(u, int(v))
		}
	}
	return out
}

func TestSelectiveTouchesFarFewerComponents(t *testing.T) {
	// The architectural claim behind the §V-C result: for a small batch the
	// selective variant's compute invocations are a tiny fraction of the
	// full-scan variant's.
	const vertices, edges = 400, 2500
	g := genGraph(t, vertices, edges, 11)

	mSel := &metrics.Collector{}
	eSel := newEngine(t, mSel)
	sel := NewSelective(eSel, "sel", 0, 6)
	if err := sel.Init(cloneGraph(g)); err != nil {
		t.Fatal(err)
	}
	mFs := &metrics.Collector{}
	eFs := newEngine(t, mFs)
	fs := NewFullScan(eFs, "fs", 0, 6)
	if err := fs.Init(cloneGraph(g)); err != nil {
		t.Fatal(err)
	}

	batch := workload.ChangeBatch(rand.New(rand.NewSource(5)), vertices, 10, 1.3, 0.5)
	baseSel := mSel.Snapshot()
	if _, err := sel.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	selWork := mSel.Snapshot().Sub(baseSel).ComputeInvocations

	baseFs := mFs.Snapshot()
	if _, err := fs.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	fsWork := mFs.Snapshot().Sub(baseFs).ComputeInvocations

	if fsWork == 0 {
		t.Skip("batch was all no-ops")
	}
	if selWork*4 > fsWork {
		t.Errorf("selective did %d invocations vs full-scan %d — expected far fewer", selWork, fsWork)
	}
}

func TestNoopBatch(t *testing.T) {
	g := genGraph(t, 100, 300, 13)
	e := newEngine(t, nil)
	drv := NewSelective(e, "sel", 0, 6)
	if err := drv.Init(g); err != nil {
		t.Fatal(err)
	}
	// Removing absent edges and re-adding present ones: all no-ops.
	batch := []workload.Change{}
	for u := 0; u < 10; u++ {
		nbrs := g.Neighbors(u)
		if len(nbrs) > 0 {
			batch = append(batch, workload.Change{Kind: workload.AddEdge, U: u, V: int(nbrs[0])})
		}
	}
	stats, err := drv.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 0 || stats.Jobs != 0 {
		t.Errorf("no-op batch: %+v", stats)
	}
}

func TestBadSource(t *testing.T) {
	g := genGraph(t, 50, 100, 17)
	e := newEngine(t, nil)
	if err := NewSelective(e, "s1", -1, 4).Init(g); err == nil {
		t.Error("negative source accepted")
	}
	if err := NewFullScan(e, "s2", 50, 4).Init(g); err == nil {
		t.Error("out-of-range source accepted")
	}
}

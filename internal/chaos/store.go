package chaos

import (
	"fmt"

	"ripple/internal/kvstore"
)

// Wrap decorates a store with the injector's faults: table client operations
// (Get/Put/Delete/Size and enumeration entry) and agent dispatches can fail
// with kvstore.ErrTransient or stall, and scheduled kills fire at dispatch
// boundaries. Faults are injected before any work happens, so a failed
// operation had no effect and is safe to retry.
//
// When the inner store is transactional (gridstore), the wrapper also
// forwards the Transactional, Replicated, Healer, and FailureSensor
// capabilities so the engine's capability probing sees through the
// decorator; a plain store (memstore, diskstore) stays plain.
func Wrap(inner kvstore.Store, inj *Injector) kvstore.Store {
	s := &Store{inner: inner, inj: inj}
	if _, ok := inner.(kvstore.Transactional); ok {
		return &fullStore{sensingStore{Store: s}}
	}
	if _, ok := inner.(kvstore.FailureSensor); ok {
		return &sensingStore{Store: s}
	}
	return s
}

// Store is the fault-injecting decorator for plain stores.
type Store struct {
	inner kvstore.Store
	inj   *Injector
}

var _ kvstore.Store = (*Store)(nil)

// Name identifies the decorated implementation.
func (s *Store) Name() string { return s.inner.Name() + "+chaos" }

// DefaultParts delegates to the inner store.
func (s *Store) DefaultParts() int { return s.inner.DefaultParts() }

// Injector returns the store's fault injector.
func (s *Store) Injector() *Injector { return s.inj }

// CreateTable creates the table on the inner store and wraps the handle.
func (s *Store) CreateTable(name string, opts ...kvstore.TableOption) (kvstore.Table, error) {
	t, err := s.inner.CreateTable(name, opts...)
	if err != nil {
		return nil, err
	}
	return &table{inner: t, inj: s.inj}, nil
}

// LookupTable wraps the inner handle.
func (s *Store) LookupTable(name string) (kvstore.Table, bool) {
	t, ok := s.inner.LookupTable(name)
	if !ok {
		return nil, false
	}
	return &table{inner: t, inj: s.inj}, true
}

// DropTable delegates to the inner store.
func (s *Store) DropTable(name string) error { return s.inner.DropTable(name) }

// Tables delegates to the inner store.
func (s *Store) Tables() []string { return s.inner.Tables() }

// RunAgent fires due kills, maybe injects a dispatch fault, then delegates.
func (s *Store) RunAgent(tableName string, part int, agent kvstore.Agent) (any, error) {
	if err := s.inj.agentFault(s.inner, tableName, part); err != nil {
		return nil, err
	}
	return s.inner.RunAgent(tableName, part, agent)
}

// Close delegates to the inner store.
func (s *Store) Close() error { return s.inner.Close() }

// sensingStore extends Store with the failover-recovery capabilities of a
// replicated but non-transactional inner store (the networked client): the
// engine's heal/checkpoint-restore path sees through the decorator.
type sensingStore struct {
	*Store
}

var (
	_ kvstore.Healer        = (*sensingStore)(nil)
	_ kvstore.FailureSensor = (*sensingStore)(nil)
	_ kvstore.TraceBinder   = (*sensingStore)(nil)
)

// Heal delegates replica restoration to the inner store.
func (s *sensingStore) Heal(table string) error {
	if h, ok := s.inner.(kvstore.Healer); ok {
		return h.Heal(table)
	}
	return nil
}

// Failovers delegates to the inner store's failure sensor.
func (s *sensingStore) Failovers() int64 {
	if fs, ok := s.inner.(kvstore.FailureSensor); ok {
		return fs.Failovers()
	}
	return 0
}

// BindTrace delegates trace binding to the inner transport, when it is one.
func (s *sensingStore) BindTrace(traceID uint64) {
	if tb, ok := s.inner.(kvstore.TraceBinder); ok {
		tb.BindTrace(traceID)
	}
}

// fullStore extends Store with the optional capabilities of a transactional,
// replicated inner store.
type fullStore struct {
	sensingStore
}

var (
	_ kvstore.Transactional = (*fullStore)(nil)
	_ kvstore.Replicated    = (*fullStore)(nil)
	_ kvstore.Healer        = (*fullStore)(nil)
	_ kvstore.FailureSensor = (*fullStore)(nil)
)

// RunTransaction fires due kills, maybe injects a dispatch fault, then
// delegates to the inner transaction.
func (s *fullStore) RunTransaction(tableName string, part int, agent kvstore.Agent) (any, error) {
	if err := s.inj.agentFault(s.inner, tableName, part); err != nil {
		return nil, err
	}
	return s.inner.(kvstore.Transactional).RunTransaction(tableName, part, agent)
}

// Replicas delegates, defaulting to 1 for non-replicated inner stores.
func (s *fullStore) Replicas() int {
	if r, ok := s.inner.(kvstore.Replicated); ok {
		return r.Replicas()
	}
	return 1
}

// FailPrimary delegates to the inner store's failure injection.
func (s *fullStore) FailPrimary(table string, part int) error {
	r, ok := s.inner.(kvstore.Replicated)
	if !ok {
		return fmt.Errorf("chaos: inner store %s is not replicated", s.inner.Name())
	}
	return r.FailPrimary(table, part)
}

// table is the fault-injecting decorator for table handles.
type table struct {
	inner kvstore.Table
	inj   *Injector
}

var _ kvstore.Table = (*table)(nil)

// Name delegates to the inner table.
func (t *table) Name() string { return t.inner.Name() }

// Parts delegates to the inner table.
func (t *table) Parts() int { return t.inner.Parts() }

// Ubiquitous delegates to the inner table.
func (t *table) Ubiquitous() bool { return t.inner.Ubiquitous() }

// PartOf delegates to the inner table.
func (t *table) PartOf(key any) int { return t.inner.PartOf(key) }

// Get maybe injects a fault, then delegates.
func (t *table) Get(key any) (any, bool, error) {
	if err := t.inj.tableFault(t.inner.Name(), t.inner.PartOf(key)); err != nil {
		return nil, false, err
	}
	return t.inner.Get(key)
}

// Put maybe injects a fault, then delegates.
func (t *table) Put(key, value any) error {
	if err := t.inj.tableFault(t.inner.Name(), t.inner.PartOf(key)); err != nil {
		return err
	}
	return t.inner.Put(key, value)
}

// Delete maybe injects a fault, then delegates.
func (t *table) Delete(key any) error {
	if err := t.inj.tableFault(t.inner.Name(), t.inner.PartOf(key)); err != nil {
		return err
	}
	return t.inner.Delete(key)
}

// Size maybe injects a fault, then delegates.
func (t *table) Size() (int, error) {
	if err := t.inj.tableFault(t.inner.Name(), -1); err != nil {
		return 0, err
	}
	return t.inner.Size()
}

// EnumerateParts maybe injects an entry fault, then delegates. Faults fire
// only before any part is visited, so a failed enumeration is retryable.
func (t *table) EnumerateParts(pc kvstore.PartConsumer) (any, error) {
	if err := t.inj.tableFault(t.inner.Name(), -1); err != nil {
		return nil, err
	}
	return t.inner.EnumerateParts(pc)
}

// EnumeratePairs maybe injects an entry fault, then delegates.
func (t *table) EnumeratePairs(pc kvstore.PairConsumer) (any, error) {
	if err := t.inj.tableFault(t.inner.Name(), -1); err != nil {
		return nil, err
	}
	return t.inner.EnumeratePairs(pc)
}

package ebsp

import (
	"fmt"
	"time"
)

// StepObserver receives a notification after every synchronized step — for
// progress reporting, tracing, and experiment harnesses. Observers run on
// the engine's coordinating goroutine between barrier and next step; keep
// them fast. A panicking observer does not unwind the engine: the panic is
// recovered and reported as the job's error.
type StepObserver interface {
	StepCompleted(info StepInfo)
}

// StepObserverFunc adapts a function to StepObserver.
type StepObserverFunc func(info StepInfo)

// StepCompleted implements StepObserver.
func (f StepObserverFunc) StepCompleted(info StepInfo) { f(info) }

// StepInfo describes one completed step.
type StepInfo struct {
	// Job is the job's name.
	Job string
	// Step is the completed step number (from 1).
	Step int
	// Emitted is the number of envelopes produced for the following step;
	// zero means the job is about to finish.
	Emitted int64
	// Aggregates are the step's merged aggregation results.
	Aggregates map[string]any
	// Duration is the step's wall-clock time, barrier included.
	Duration time.Duration
}

// WithObserver installs a step observer on the engine. No-sync execution has
// no steps and produces no step notifications; use WithProgressObserver to
// observe no-sync runs.
func WithObserver(o StepObserver) Option {
	return func(e *Engine) { e.observer = o }
}

// ProgressObserver receives notifications from no-sync execution, which has
// no steps for a StepObserver to see: one notification per envelope-count
// watermark (every `every` delivered envelopes, see WithProgressObserver)
// and a final one at quiescence. Observers run on a worker goroutine; keep
// them fast. Like StepObserver, a panicking observer is recovered and
// reported as the job's error.
type ProgressObserver interface {
	Progress(info ProgressInfo)
}

// ProgressObserverFunc adapts a function to ProgressObserver.
type ProgressObserverFunc func(info ProgressInfo)

// Progress implements ProgressObserver.
func (f ProgressObserverFunc) Progress(info ProgressInfo) { f(info) }

// ProgressInfo describes a no-sync run's progress at one watermark.
type ProgressInfo struct {
	// Job is the job's name.
	Job string
	// Part is the part whose worker crossed the watermark (-1 for the final
	// quiescence notification).
	Part int
	// Delivered is the total number of envelopes delivered so far.
	Delivered int64
	// Sent is the total number of envelopes sent so far (seeds included).
	Sent int64
	// Queued is the observing worker's local queue depth (0 at quiescence).
	Queued int64
	// Quiescent marks the final notification: all work is done.
	Quiescent bool
}

// DefaultProgressEvery is the envelope-count watermark interval used when
// WithProgressObserver is given a non-positive one.
const DefaultProgressEvery = 1024

// WithProgressObserver installs a progress observer fired by no-sync
// execution on envelope-count watermarks: a notification every `every`
// delivered envelopes, plus a final one at quiescence. every <= 0 means
// DefaultProgressEvery. Synchronized execution reports through StepObserver
// instead and never fires it.
func WithProgressObserver(o ProgressObserver, every int64) Option {
	return func(e *Engine) {
		e.progress = o
		if every <= 0 {
			every = DefaultProgressEvery
		}
		e.progressEvery = every
	}
}

// notifyStep dispatches one StepCompleted notification, converting an
// observer panic into an error so it cannot unwind the engine's
// coordinating goroutine and kill the process.
func (run *jobRun) notifyStep(info StepInfo) (err error) {
	o := run.engine.observer
	if o == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ebsp: job %q step observer panicked after step %d: %v",
				info.Job, info.Step, r)
		}
	}()
	o.StepCompleted(info)
	return nil
}

// notifyProgress dispatches one Progress notification with the same panic
// containment as notifyStep.
func (run *jobRun) notifyProgress(info ProgressInfo) (err error) {
	o := run.engine.progress
	if o == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ebsp: job %q progress observer panicked: %v", info.Job, r)
		}
	}()
	o.Progress(info)
	return nil
}

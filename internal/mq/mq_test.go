package mq

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/memstore"
)

func newSystem(t *testing.T, parts int) (*System, kvstore.Table) {
	t.Helper()
	store := memstore.New(memstore.WithParts(parts))
	t.Cleanup(func() { _ = store.Close() })
	tab, err := store.CreateTable("placement")
	if err != nil {
		t.Fatal(err)
	}
	return NewSystem(), tab
}

func TestQueueSetPlacedLikeTable(t *testing.T) {
	sys, tab := newSystem(t, 5)
	qs, err := sys.CreateQueueSet("q", tab)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Queues() != 5 {
		t.Errorf("Queues = %d, want 5", qs.Queues())
	}
	if qs.Name() != "q" {
		t.Errorf("Name = %q", qs.Name())
	}
	if _, err := sys.CreateQueueSet("q", tab); !errors.Is(err, ErrExists) {
		t.Errorf("dup create err = %v", err)
	}
}

func TestPutReadFIFO(t *testing.T) {
	sys, tab := newSystem(t, 2)
	qs, _ := sys.CreateQueueSet("q", tab)
	for i := 0; i < 100; i++ {
		if err := qs.Put(1, i); err != nil {
			t.Fatal(err)
		}
	}
	r := readerFor(qs, 1)
	for i := 0; i < 100; i++ {
		msg, ok, _ := r.Read(time.Second)
		if !ok || msg != i {
			t.Fatalf("Read #%d = %v, %v", i, msg, ok)
		}
	}
	if _, ok, _ := r.TryRead(); ok {
		t.Error("TryRead on empty queue returned ok")
	}
}

func TestReadTimeout(t *testing.T) {
	sys, tab := newSystem(t, 1)
	qs, _ := sys.CreateQueueSet("q", tab)
	r := readerFor(qs, 0)
	start := time.Now()
	_, ok, _ := r.Read(30 * time.Millisecond)
	if ok {
		t.Error("Read on empty queue returned ok")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("Read returned after %v, want ~30ms", elapsed)
	}
}

func TestReadWakesOnPut(t *testing.T) {
	sys, tab := newSystem(t, 1)
	qs, _ := sys.CreateQueueSet("q", tab)
	r := readerFor(qs, 0)
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = qs.Put(0, "wake")
	}()
	msg, ok, _ := r.Read(5 * time.Second)
	if !ok || msg != "wake" {
		t.Fatalf("Read = %v, %v", msg, ok)
	}
}

func TestRunWorkersOnePerQueue(t *testing.T) {
	sys, tab := newSystem(t, 4)
	qs, _ := sys.CreateQueueSet("q", tab)
	const perQueue = 50
	for q := 0; q < 4; q++ {
		for i := 0; i < perQueue; i++ {
			_ = qs.Put(q, q*1000+i)
		}
	}
	var mu sync.Mutex
	got := map[int][]int{}
	err := qs.Run(func(r Reader) error {
		for {
			msg, ok, _ := r.Read(50 * time.Millisecond)
			if !ok {
				return nil
			}
			mu.Lock()
			got[r.Queue()] = append(got[r.Queue()], msg.(int))
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		if len(got[q]) != perQueue {
			t.Errorf("queue %d drained %d, want %d", q, len(got[q]), perQueue)
		}
		for i, msg := range got[q] {
			if msg != q*1000+i {
				t.Errorf("queue %d msg %d = %d, want %d (FIFO violated)", q, i, msg, q*1000+i)
				break
			}
		}
	}
}

func TestRunPropagatesWorkerError(t *testing.T) {
	sys, tab := newSystem(t, 2)
	qs, _ := sys.CreateQueueSet("q", tab)
	boom := errors.New("boom")
	err := qs.Run(func(r Reader) error {
		if r.Queue() == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("Run err = %v", err)
	}
}

func TestPerSenderReceiverOrdering(t *testing.T) {
	// Multiple concurrent senders to one queue: each sender's messages stay
	// in order relative to each other.
	sys, tab := newSystem(t, 1)
	qs, _ := sys.CreateQueueSet("q", tab)
	const senders, per = 4, 200
	var wg sync.WaitGroup
	for sd := 0; sd < senders; sd++ {
		wg.Add(1)
		go func(sd int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := qs.Put(0, [2]int{sd, i}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(sd)
	}
	wg.Wait()
	last := map[int]int{0: -1, 1: -1, 2: -1, 3: -1}
	r := readerFor(qs, 0)
	for n := 0; n < senders*per; n++ {
		msg, ok, _ := r.TryRead()
		if !ok {
			t.Fatalf("queue drained early at %d", n)
		}
		p := msg.([2]int)
		if p[1] != last[p[0]]+1 {
			t.Fatalf("sender %d: got seq %d after %d", p[0], p[1], last[p[0]])
		}
		last[p[0]] = p[1]
	}
}

func TestMarshallingIsolationMQ(t *testing.T) {
	sys, tab := newSystem(t, 1)
	qs, _ := sys.CreateQueueSet("q", tab)
	payload := []int{1, 2, 3}
	_ = qs.Put(0, payload)
	payload[0] = 99
	r := readerFor(qs, 0)
	msg, _, _ := r.TryRead()
	if msg.([]int)[0] != 1 {
		t.Error("queue shares memory with sender")
	}
}

func TestPutLocalSkipsMarshalling(t *testing.T) {
	sys, tab := newSystem(t, 1)
	qs, _ := sys.CreateQueueSet("q", tab)
	payload := []int{7}
	_ = qs.PutLocal(0, payload)
	r := readerFor(qs, 0)
	msg, _, _ := r.TryRead()
	got := msg.([]int)
	if &got[0] != &payload[0] {
		t.Error("PutLocal copied the payload")
	}
}

func TestCloseWakesReaders(t *testing.T) {
	sys, tab := newSystem(t, 1)
	qs, _ := sys.CreateQueueSet("q", tab)
	done := make(chan bool, 1)
	go func() {
		r := readerFor(qs, 0)
		_, ok, _ := r.Read(10 * time.Second)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	if err := qs.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Error("Read returned ok after close of empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not woken by Close")
	}
	if err := qs.Put(0, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close err = %v", err)
	}
	if err := qs.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestDeleteQueueSet(t *testing.T) {
	sys, tab := newSystem(t, 1)
	_, _ = sys.CreateQueueSet("q", tab)
	if err := sys.DeleteQueueSet("q"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeleteQueueSet("q"); err == nil {
		t.Error("double delete succeeded")
	}
	// Name is reusable after deletion.
	if _, err := sys.CreateQueueSet("q", tab); err != nil {
		t.Errorf("recreate after delete: %v", err)
	}
}

func TestPutBadQueue(t *testing.T) {
	sys, tab := newSystem(t, 2)
	qs, _ := sys.CreateQueueSet("q", tab)
	if err := qs.Put(7, 1); !errors.Is(err, ErrNoQueue) {
		t.Errorf("Put bad queue err = %v", err)
	}
	if err := qs.Put(-1, 1); !errors.Is(err, ErrNoQueue) {
		t.Errorf("Put negative queue err = %v", err)
	}
}

func TestHighVolumeConcurrentProducersConsumers(t *testing.T) {
	sys, tab := newSystem(t, 3)
	qs, _ := sys.CreateQueueSet("q", tab)
	const total = 3000
	var sent sync.WaitGroup
	for w := 0; w < 3; w++ {
		sent.Add(1)
		go func(w int) {
			defer sent.Done()
			for i := 0; i < total/3; i++ {
				if err := qs.Put(i%3, fmt.Sprintf("%d-%d", w, i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	var count sync.WaitGroup
	var mu sync.Mutex
	received := 0
	count.Add(1)
	go func() {
		defer count.Done()
		_ = qs.Run(func(r Reader) error {
			for {
				_, ok, _ := r.Read(200 * time.Millisecond)
				if !ok {
					return nil
				}
				mu.Lock()
				received++
				mu.Unlock()
			}
		})
	}()
	sent.Wait()
	count.Wait()
	if received != total {
		t.Errorf("received %d of %d", received, total)
	}
}

package fleet

import (
	"strings"
	"testing"
	"time"

	"ripple/internal/metrics"
	"ripple/internal/netstore"
	"ripple/internal/trace"
)

// TestFleetPrometheusGolden pins the exposition's exact label shape: per-
// server series from the detector/clock statuses, the gauges and counters
// from live stats entries (unreachable servers skipped), and per-server plus
// server="all" aggregate histograms. The snapshot is synthetic, so the
// output must be byte-stable.
func TestFleetPrometheusGolden(t *testing.T) {
	var hist metrics.HistogramSnapshot
	hist.Count, hist.Sum = 2, 3 // two 1-2ns observations
	hist.Buckets[1] = 2

	snap := Snapshot{
		Statuses: []netstore.ServerStatus{
			{Server: 0, Addr: "127.0.0.1:1111", Up: true,
				Clock: netstore.ClockOffset{OffsetNS: 1_500_000, ErrorNS: 250_000, Samples: 8}},
			{Server: 1, Addr: "127.0.0.1:2222", Up: false, Cold: true,
				Clock: netstore.ClockOffset{OffsetNS: -2_000_000, ErrorNS: 500_000, Samples: 8}},
		},
		Servers: []ServerEntry{
			{Server: 1, Addr: "127.0.0.1:2222", Err: "connection refused"},
			{Server: 0, Addr: "127.0.0.1:1111", Stats: netstore.ServerStats{
				UptimeNS:     5_000_000_000,
				Counters:     metrics.Snapshot{RPCCalls: 7, StoreGets: 3, StorePuts: 2},
				Endpoints:    map[string]metrics.HistogramSnapshot{"get": hist},
				TraceSpans:   42,
				TraceDropped: 3,
				WireInBytes:  1000,
				WireOutBytes: 2000,
				Goroutines:   12,
				HeapBytes:    1048576,
			}},
		},
	}

	var sb strings.Builder
	if err := WriteFleetPrometheus(&sb, snap); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ripple_fleet_server_up Failure-detector verdict by server: 1 = up, 0 = down.
# TYPE ripple_fleet_server_up gauge
ripple_fleet_server_up{server="0",addr="127.0.0.1:1111"} 1
ripple_fleet_server_up{server="1",addr="127.0.0.1:2222"} 0
# HELP ripple_fleet_server_cold Server rejoined after a failure and awaits heal: 1 = cold.
# TYPE ripple_fleet_server_cold gauge
ripple_fleet_server_cold{server="0"} 0
ripple_fleet_server_cold{server="1"} 1
# HELP ripple_fleet_clock_offset_seconds Estimated server span-clock offset relative to the engine timeline.
# TYPE ripple_fleet_clock_offset_seconds gauge
ripple_fleet_clock_offset_seconds{server="0"} 0.0015
ripple_fleet_clock_offset_seconds{server="1"} -0.002
# HELP ripple_fleet_clock_error_seconds Error bound of the clock-offset estimate (half best RTT plus sample spread).
# TYPE ripple_fleet_clock_error_seconds gauge
ripple_fleet_clock_error_seconds{server="0"} 0.00025
ripple_fleet_clock_error_seconds{server="1"} 0.0005
# HELP ripple_fleet_uptime_seconds Server uptime.
# TYPE ripple_fleet_uptime_seconds gauge
ripple_fleet_uptime_seconds{server="0"} 5
# HELP ripple_fleet_goroutines Goroutines on the server.
# TYPE ripple_fleet_goroutines gauge
ripple_fleet_goroutines{server="0"} 12
# HELP ripple_fleet_heap_bytes Server heap bytes in use.
# TYPE ripple_fleet_heap_bytes gauge
ripple_fleet_heap_bytes{server="0"} 1048576
# HELP ripple_fleet_trace_spans Spans retained in the server's trace ring.
# TYPE ripple_fleet_trace_spans gauge
ripple_fleet_trace_spans{server="0"} 42
# HELP ripple_fleet_rpc_calls_total RPCs served by the server.
# TYPE ripple_fleet_rpc_calls_total counter
ripple_fleet_rpc_calls_total{server="0"} 7
# HELP ripple_fleet_store_gets_total Store gets served.
# TYPE ripple_fleet_store_gets_total counter
ripple_fleet_store_gets_total{server="0"} 3
# HELP ripple_fleet_store_puts_total Store puts served.
# TYPE ripple_fleet_store_puts_total counter
ripple_fleet_store_puts_total{server="0"} 2
# HELP ripple_fleet_trace_dropped_total Spans lost to server trace-ring wraparound.
# TYPE ripple_fleet_trace_dropped_total counter
ripple_fleet_trace_dropped_total{server="0"} 3
# HELP ripple_fleet_wire_bytes_total Bytes on the wire by server and direction, frame prefixes included.
# TYPE ripple_fleet_wire_bytes_total counter
ripple_fleet_wire_bytes_total{server="0",dir="in"} 1000
ripple_fleet_wire_bytes_total{server="0",dir="out"} 2000
# HELP ripple_fleet_rpc_latency_seconds Server-side RPC service time by server and endpoint (server="all" aggregates the fleet).
# TYPE ripple_fleet_rpc_latency_seconds histogram
ripple_fleet_rpc_latency_seconds_bucket{server="0",endpoint="get",le="0"} 0
ripple_fleet_rpc_latency_seconds_bucket{server="0",endpoint="get",le="1e-09"} 2
ripple_fleet_rpc_latency_seconds_bucket{server="0",endpoint="get",le="+Inf"} 2
ripple_fleet_rpc_latency_seconds_sum{server="0",endpoint="get"} 3e-09
ripple_fleet_rpc_latency_seconds_count{server="0",endpoint="get"} 2
ripple_fleet_rpc_latency_seconds_bucket{server="all",endpoint="get",le="0"} 0
ripple_fleet_rpc_latency_seconds_bucket{server="all",endpoint="get",le="1e-09"} 2
ripple_fleet_rpc_latency_seconds_bucket{server="all",endpoint="get",le="+Inf"} 2
ripple_fleet_rpc_latency_seconds_sum{server="all",endpoint="get"} 3e-09
ripple_fleet_rpc_latency_seconds_count{server="all",endpoint="get"} 2
`
	if got := sb.String(); got != want {
		t.Errorf("fleet exposition drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// clSpan builds a client rpc span; at/dur in ns on the engine clock.
func clSpan(id uint64, job string, at, dur int64) trace.Span {
	return trace.Span{Kind: trace.KindRPC, Job: job, Span: id, Trace: 1,
		At: time.Duration(at), Dur: time.Duration(dur)}
}

// svSpan builds a server rpc span; at/dur in ns on the server's own clock.
func svSpan(parent uint64, op string, at, dur int64) trace.Span {
	return trace.Span{Kind: trace.KindRPCServer, Job: op, Parent: parent, Trace: 1,
		At: time.Duration(at), Dur: time.Duration(dur)}
}

func TestAssembleAlignsFromPairMidpoints(t *testing.T) {
	// Server clock runs 500µs behind the engine clock.
	engine := []trace.Span{
		clSpan(101, "s0/get", 1_000_000, 100_000),
		clSpan(102, "s0/get", 2_000_000, 100_000),
	}
	dump := ServerDump{Server: 0, Addr: "127.0.0.1:9", Spans: []trace.Span{
		svSpan(101, "get", 520_000, 40_000),
		svSpan(102, "get", 1_530_000, 30_000),
	}}

	merged, rep := Assemble(engine, []ServerDump{dump})
	if rep.Pairs != 2 || rep.UnmatchedClient != 0 || rep.UnmatchedServer != 0 || rep.Violations != 0 {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.Servers) != 1 {
		t.Fatalf("%d server aligns", len(rep.Servers))
	}
	al := rep.Servers[0]
	if al.Source != "pairs" {
		t.Errorf("source %q, want pairs", al.Source)
	}
	// True offset is +500µs; the midpoint median lands within the spans'
	// own geometry of it.
	if al.OffsetNS < 400_000 || al.OffsetNS > 600_000 {
		t.Errorf("recovered offset %d, want ~500000", al.OffsetNS)
	}

	cr := Check(merged)
	if !cr.Ok() {
		t.Fatalf("check failed: %+v", cr)
	}
	for _, s := range merged {
		if s.Kind == trace.KindRPCServer {
			if s.Attrs["server"] != "0" || s.Attrs["addr"] != "127.0.0.1:9" {
				t.Errorf("server span missing labels: %v", s.Attrs)
			}
		}
	}
	// Merged stream is At-ordered and re-sequenced 1..n.
	for i := range merged {
		if merged[i].Seq != uint64(i+1) {
			t.Errorf("seq[%d] = %d", i, merged[i].Seq)
		}
		if i > 0 && merged[i].At < merged[i-1].At {
			t.Errorf("merged not At-ordered at %d", i)
		}
	}
}

func TestAssemblePrefersLiveOffsetAndClamps(t *testing.T) {
	engine := []trace.Span{clSpan(7, "s1/put", 1_000_000, 100_000)}
	dump := ServerDump{Server: 1, Spans: []trace.Span{svSpan(7, "put", 490_000, 40_000)},
		// Live estimate deliberately short: 490000+490000 starts 20µs before
		// the client span, so the residual clamp must shift it in.
		Offset: netstore.ClockOffset{OffsetNS: 490_000, ErrorNS: 30_000, Samples: 8}}

	merged, rep := Assemble(engine, []ServerDump{dump})
	al := rep.Servers[0]
	if al.Source != "live" || al.OffsetNS != 490_000 {
		t.Fatalf("align %+v, want live 490000", al)
	}
	if al.MaxAdjustNS != 20_000 {
		t.Errorf("residual shift %d, want 20000", al.MaxAdjustNS)
	}
	if cr := Check(merged); !cr.Ok() {
		t.Fatalf("clamp failed to restore enclosure: %+v", cr)
	}
}

func TestAssembleViolationAndUnmatched(t *testing.T) {
	engine := []trace.Span{
		clSpan(1, "s0/get", 1_000_000, 50_000),
		clSpan(2, "s0/get", 3_000_000, 50_000), // no server span: timeout
	}
	dump := ServerDump{Server: 0, Spans: []trace.Span{
		svSpan(1, "get", 1_000_000, 80_000),  // longer than its client span
		svSpan(99, "get", 2_000_000, 10_000), // unknown parent: client ring loss
	}}
	merged, rep := Assemble(engine, []ServerDump{dump})
	if rep.Violations != 1 || rep.UnmatchedClient != 1 || rep.UnmatchedServer != 1 {
		t.Fatalf("report %+v", rep)
	}
	cr := Check(merged)
	if cr.Ok() || len(cr.Violations) != 1 {
		t.Fatalf("check must flag the oversized server span: %+v", cr)
	}
}

func TestCheckRejectsPairlessTimeline(t *testing.T) {
	spans := []trace.Span{clSpan(1, "s0/get", 0, 10)}
	if cr := Check(spans); cr.Ok() {
		t.Error("timeline with zero pairs passed")
	}
}

func TestDecompose(t *testing.T) {
	spans := []trace.Span{
		clSpan(1, "s0/get", 0, 100),
		svSpan(1, "get", 20, 60),
		clSpan(2, "s1/get", 0, 300), // unmatched: client time only
	}
	br := Decompose(spans)
	if len(br) != 2 {
		t.Fatalf("%d breakdowns", len(br))
	}
	// Sorted by client-observed time, worst first.
	if br[0].Server != "s1" || br[0].Calls != 1 || br[0].Matched != 0 || br[0].ClientNS != 300 {
		t.Errorf("br[0] = %+v", br[0])
	}
	if br[1].Server != "s0" || br[1].Endpoint != "get" || br[1].Matched != 1 ||
		br[1].ClientNS != 100 || br[1].ServerNS != 60 || br[1].WireNS != 40 {
		t.Errorf("br[1] = %+v", br[1])
	}
}

// Package pagerank implements the paper's PageRank evaluation (§V-A): two
// variants of the same numerical iteration on the K/V EBSP platform.
//
// The direct variant defines a component per vertex and a step per iteration
// of the equations; both the ranking state and the graph structure ride in
// BSP messages. The first step begins from a table holding the graph
// structure (via the loader) and the last step replaces each entry in that
// table with an enhanced vertex object holding its rank as well as its
// structure — one synchronization and one round of I/O per iteration.
//
// The MapReduce variant emulates the MapReduce programming model on the same
// platform: two BSP steps per iteration (one map-like, one reduce-like),
// with structure and ranking state carried in messages from map to reduce
// and stored in the K/V table from reduce to the following map. It is purely
// inferior — two synchronizations and an extra round of I/O per iteration —
// which is exactly what Table I measures.
package pagerank

import (
	"errors"
	"fmt"
	"math"

	"ripple/internal/codec"
	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/mapreduce"
	"ripple/internal/workload"
)

// ErrBadConfig is returned for invalid configurations.
var ErrBadConfig = errors.New("pagerank: invalid config")

// Vertex is a structure-only graph entry: the ID of each vertex at the far
// end of an outgoing edge (the paper's Java int array).
type Vertex struct {
	Out []int32
}

// Ranked is the enhanced vertex object holding rank as well as structure.
type Ranked struct {
	Out  []int32
	Rank float64
}

// state is the BSP message carrying a vertex's structure and ranking state
// forward to the next step, including the double that accumulates
// contributions under the combiner.
type state struct {
	Out     []int32
	Rank    float64
	Contrib float64
}

func init() {
	codec.Register(Vertex{})
	codec.Register(Ranked{})
	codec.Register(state{})

	// Fast wire codecs: every value PageRank stores or sends is one of these
	// three shapes, so the whole workload stays off the gob fallback.
	codec.RegisterFast(Vertex{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			return e.Any(v.(Vertex).Out)
		},
		Decode: func(d *codec.Decoder) (any, error) {
			out, err := decI32s(d)
			if err != nil {
				return nil, err
			}
			return Vertex{Out: out}, nil
		},
		Copy: func(v any) (any, error) {
			return Vertex{Out: append([]int32(nil), v.(Vertex).Out...)}, nil
		},
	})
	codec.RegisterFast(Ranked{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			r := v.(Ranked)
			if err := e.Any(r.Out); err != nil {
				return err
			}
			e.Float64(r.Rank)
			return nil
		},
		Decode: func(d *codec.Decoder) (any, error) {
			var r Ranked
			var err error
			if r.Out, err = decI32s(d); err != nil {
				return nil, err
			}
			if r.Rank, err = d.Float64(); err != nil {
				return nil, err
			}
			return r, nil
		},
		Copy: func(v any) (any, error) {
			r := v.(Ranked)
			return Ranked{Out: append([]int32(nil), r.Out...), Rank: r.Rank}, nil
		},
	})
	codec.RegisterFast(state{}, codec.FastCodec{
		Encode: func(e *codec.Encoder, v any) error {
			s := v.(state)
			if err := e.Any(s.Out); err != nil {
				return err
			}
			e.Float64(s.Rank)
			e.Float64(s.Contrib)
			return nil
		},
		Decode: func(d *codec.Decoder) (any, error) {
			var s state
			var err error
			if s.Out, err = decI32s(d); err != nil {
				return nil, err
			}
			if s.Rank, err = d.Float64(); err != nil {
				return nil, err
			}
			if s.Contrib, err = d.Float64(); err != nil {
				return nil, err
			}
			return s, nil
		},
		Copy: func(v any) (any, error) {
			s := v.(state)
			s.Out = append([]int32(nil), s.Out...)
			return s, nil
		},
	})
}

// decI32s reads a tagged []int32 written by Encoder.Any.
func decI32s(d *codec.Decoder) ([]int32, error) {
	v, err := d.Any()
	if err != nil {
		return nil, err
	}
	s, ok := v.([]int32)
	if !ok && v != nil {
		return nil, fmt.Errorf("pagerank: expected []int32 on the wire, got %T", v)
	}
	return s, nil
}

// Config parameterizes a PageRank run.
type Config struct {
	// Name overrides the BSP job name ("pagerank.direct" when empty). A
	// multi-tenant host must give concurrent runs distinct names: checkpoint
	// tables are keyed by job name, and one engine admits only one execution
	// per name at a time.
	Name string
	// GraphTable names the table holding Vertex entries keyed by int vertex
	// ID; it is rewritten with Ranked entries when the job completes.
	GraphTable string
	// Damping is the damping factor d in (0, 1); 0 means 0.85.
	Damping float64
	// Iterations is the number of iterations of the equations (with Epsilon
	// set, an upper bound).
	Iterations int
	// Epsilon, when positive, stops the iteration as soon as the L1 distance
	// between successive rank vectors falls below it — detected in-model via
	// an aggregator, so the job still ends by running out of enabled
	// components rather than by client intervention.
	Epsilon float64
	// DisableCombiner turns the message combiner off (ablation only): every
	// individual contribution then travels and is delivered separately.
	DisableCombiner bool
}

func (c *Config) normalize() error {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Damping <= 0 || c.Damping >= 1 {
		return fmt.Errorf("%w: damping %v", ErrBadConfig, c.Damping)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("%w: iterations %d", ErrBadConfig, c.Iterations)
	}
	if c.GraphTable == "" {
		return fmt.Errorf("%w: no graph table", ErrBadConfig)
	}
	return nil
}

const (
	sinkAggregator  = "pagerank.sink"
	deltaAggregator = "pagerank.delta"
)

// combiner merges the two message varieties: rank contributions (float64)
// sum; a contribution folds into a state message's accumulating double.
type combiner struct{}

var _ ebsp.MessageCombiner = combiner{}

// CombineMessages implements ebsp.MessageCombiner.
func (combiner) CombineMessages(_, m1, m2 any) any {
	switch a := m1.(type) {
	case float64:
		switch b := m2.(type) {
		case float64:
			return a + b
		case state:
			b.Contrib += a
			return b
		}
	case state:
		switch b := m2.(type) {
		case float64:
			a.Contrib += b
			return a
		case state:
			// Two state messages for one vertex cannot happen in a healthy
			// run; merge defensively.
			a.Contrib += b.Contrib
			return a
		}
	}
	return m1
}

// directCompute is the direct variant's component function. The first step
// begins by reading the table holding the graph structure and scatters the
// initial ranks' contributions; each following step completes one iteration
// of the equations, carrying structure and ranking state forward in a
// message to itself; the last step replaces the table entry with the
// enhanced vertex object.
type directCompute struct {
	cfg         Config
	numVertices int
}

func (dc *directCompute) Compute(ctx *ebsp.Context) bool {
	n := float64(dc.numVertices)
	d := dc.cfg.Damping

	if ctx.StepNum() == 1 {
		// Bootstrap: read structure from the table; scatter R₀ = 1/|V|.
		raw, ok := ctx.ReadState(0)
		if !ok {
			return false
		}
		out := structureOf(raw)
		r0 := 1.0 / n
		sendContributions(ctx, out, r0, n)
		ctx.Send(ctx.Key(), state{Out: out, Rank: r0})
		return false
	}

	var st state
	sawState := false
	contrib := 0.0
	for _, raw := range ctx.InputMessages() {
		switch m := raw.(type) {
		case state:
			st = m
			sawState = true
			contrib += m.Contrib
		case float64:
			contrib += m
		}
	}
	if !sawState {
		// A contribution reached a vertex that carries no state message —
		// possible only for IDs outside the loaded graph; drop it.
		return false
	}
	sink := 0.0
	if v, ok := ctx.AggregateResult(sinkAggregator).(float64); ok {
		sink = v
	}
	newRank := (1-d)/n + d*(contrib+sink)

	done := ctx.StepNum() > dc.cfg.Iterations
	if !done && dc.cfg.Epsilon > 0 {
		// In-model convergence: every component reads the same previous-step
		// L1 delta, so all finalize at the same step and the job ends by
		// running out of enabled components.
		if delta, ok := ctx.AggregateResult(deltaAggregator).(float64); ok && delta < dc.cfg.Epsilon {
			done = true
		}
	}
	if done {
		// Last step: replace the table entry with the enhanced vertex.
		ctx.WriteState(0, Ranked{Out: st.Out, Rank: newRank})
		return false
	}
	if dc.cfg.Epsilon > 0 {
		ctx.AggregateValue(deltaAggregator, math.Abs(newRank-st.Rank))
	}
	sendContributions(ctx, st.Out, newRank, n)
	ctx.Send(ctx.Key(), state{Out: st.Out, Rank: newRank})
	return false
}

// sendContributions emits R·A'(v,·): along edges when W > 0, into the sink
// aggregator (R/|V|) when W = 0.
func sendContributions(ctx *ebsp.Context, out []int32, rank, n float64) {
	if len(out) == 0 {
		ctx.AggregateValue(sinkAggregator, rank/n)
		return
	}
	share := rank / float64(len(out))
	for _, v := range out {
		ctx.Send(int(v), share)
	}
}

// DirectJob builds the direct variant's job spec against store without
// running it. A host that wants to drive the job itself — RunContext for
// cancellation, Resume after a restart — builds the identical spec through
// here; RunDirect stays the one-call path.
func DirectJob(store kvstore.Store, cfg Config) (*ebsp.Job, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	tab, ok := store.LookupTable(cfg.GraphTable)
	if !ok {
		return nil, fmt.Errorf("pagerank: graph table %q does not exist", cfg.GraphTable)
	}
	n, err := tab.Size()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadConfig)
	}

	var cmb ebsp.MessageCombiner = combiner{}
	if cfg.DisableCombiner {
		cmb = nil
	}
	aggs := map[string]ebsp.Aggregator{sinkAggregator: ebsp.Float64Sum{}}
	if cfg.Epsilon > 0 {
		aggs[deltaAggregator] = ebsp.Float64Sum{}
	}
	name := cfg.Name
	if name == "" {
		name = "pagerank.direct"
	}
	return &ebsp.Job{
		Name:        name,
		StateTables: []string{cfg.GraphTable},
		Compute:     &directCompute{cfg: cfg, numVertices: n},
		Combiner:    cmb,
		Aggregators: aggs,
		// One bootstrap step that reads the table, then one step per
		// iteration of the equations (the last one also writes the table).
		MaxSteps: cfg.Iterations + 1,
		Loaders: []ebsp.Loader{&ebsp.TableLoader{
			Table: cfg.GraphTable,
			Store: store,
			Each: func(k, _ any, lc *ebsp.LoadContext) error {
				lc.Enable(k)
				return nil
			},
		}},
	}, nil
}

// RunDirect executes the direct variant: one step (one synchronization, no
// table I/O) per iteration.
func RunDirect(e *ebsp.Engine, cfg Config) (*ebsp.Result, error) {
	job, err := DirectJob(e.Store(), cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(job)
}

// structureOf accepts either a plain or an enhanced vertex entry, so a run
// can start from a previously ranked table.
func structureOf(v any) []int32 {
	switch t := v.(type) {
	case Vertex:
		return t.Out
	case Ranked:
		return t.Out
	default:
		return nil
	}
}

// mrMapper is the MapReduce variant's map phase: read structure and ranking
// state from the table, send a full state message to itself and rank
// contributions along edges (the shuffle), and feed the sink aggregator.
type mrMapper struct {
	numVertices int
}

func (m *mrMapper) MapWithContext(pc mapreduce.PhaseContext, key, value any, emit mapreduce.Emitter) error {
	rv, ok := value.(Ranked)
	if !ok {
		return fmt.Errorf("pagerank: map saw %T", value)
	}
	emit(key, state{Out: rv.Out, Rank: rv.Rank})
	if len(rv.Out) == 0 {
		pc.AggregateValue(sinkAggregator, rv.Rank/float64(m.numVertices))
		return nil
	}
	share := rv.Rank / float64(len(rv.Out))
	for _, dst := range rv.Out {
		emit(int(dst), share)
	}
	return nil
}

// Map implements mapreduce.Mapper for completeness; RunMapReduce always uses
// the context form.
func (m *mrMapper) Map(key, value any, emit mapreduce.Emitter) error {
	return fmt.Errorf("pagerank: mapper requires phase context")
}

// mrReducer completes one iteration of the equations and writes the new
// structure-plus-rank back to the K/V table.
type mrReducer struct {
	cfg         Config
	numVertices int
}

func (r *mrReducer) ReduceWithContext(pc mapreduce.PhaseContext, key any, values []any, emit mapreduce.Emitter) error {
	var st state
	sawState := false
	contrib := 0.0
	for _, raw := range values {
		switch m := raw.(type) {
		case state:
			st = m
			sawState = true
			contrib += m.Contrib
		case float64:
			contrib += m
		}
	}
	if !sawState {
		return nil
	}
	sink := 0.0
	if v, ok := pc.AggregateResult(sinkAggregator).(float64); ok {
		sink = v
	}
	n := float64(r.numVertices)
	d := r.cfg.Damping
	newRank := (1-d)/n + d*(contrib+sink)
	if r.cfg.Epsilon > 0 {
		pc.AggregateValue(deltaAggregator, math.Abs(newRank-st.Rank))
	}
	emit(key, Ranked{Out: st.Out, Rank: newRank})
	return nil
}

// Reduce implements mapreduce.Reducer for completeness.
func (r *mrReducer) Reduce(key any, values []any, emit mapreduce.Emitter) error {
	return fmt.Errorf("pagerank: reducer requires phase context")
}

// RunMapReduce executes the MapReduce variant: two steps (two
// synchronizations plus a round of table I/O) per iteration. The graph table
// must hold Ranked entries; use SeedRanks to initialize them.
func RunMapReduce(e *ebsp.Engine, cfg Config) (*mapreduce.Summary, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	tab, ok := e.Store().LookupTable(cfg.GraphTable)
	if !ok {
		return nil, fmt.Errorf("pagerank: graph table %q does not exist", cfg.GraphTable)
	}
	n, err := tab.Size()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadConfig)
	}
	aggs := map[string]ebsp.Aggregator{sinkAggregator: ebsp.Float64Sum{}}
	if cfg.Epsilon > 0 {
		aggs[deltaAggregator] = ebsp.Float64Sum{}
	}
	job := &mapreduce.IteratedJob{
		Name:          "pagerank.mr",
		Table:         cfg.GraphTable,
		Mapper:        &mrMapper{numVertices: n},
		Reducer:       &mrReducer{cfg: cfg, numVertices: n},
		Combiner:      func(k, a, b any) any { return combiner{}.CombineMessages(k, a, b) },
		Aggregators:   aggs,
		MaxIterations: cfg.Iterations,
	}
	if cfg.Epsilon > 0 {
		job.Converged = func(_ int, aggregates map[string]any) bool {
			delta, ok := aggregates[deltaAggregator].(float64)
			return ok && delta < cfg.Epsilon
		}
	}
	return mapreduce.RunIterated(e, job)
}

// LoadGraph stores a generated directed graph as Vertex entries.
func LoadGraph(store kvstore.Store, table string, g *workload.DirectedGraph, parts int) (kvstore.Table, error) {
	opts := []kvstore.TableOption{}
	if parts > 0 {
		opts = append(opts, kvstore.WithParts(parts))
	}
	tab, err := store.CreateTable(table, opts...)
	if err != nil {
		return nil, err
	}
	for u := 0; u < g.NumVertices; u++ {
		if err := tab.Put(u, Vertex{Out: g.Out[u]}); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// SeedRanks rewrites a structure-only table with Ranked entries carrying the
// uniform initial ranks, the MapReduce variant's starting condition.
func SeedRanks(tab kvstore.Table) error {
	n, err := tab.Size()
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%w: empty graph", ErrBadConfig)
	}
	r0 := 1.0 / float64(n)
	pairs, err := kvstore.Dump(tab)
	if err != nil {
		return err
	}
	for k, v := range pairs {
		if err := tab.Put(k, Ranked{Out: structureOf(v), Rank: r0}); err != nil {
			return err
		}
	}
	return nil
}

// ReadRanks extracts the final ranks from a graph table.
func ReadRanks(tab kvstore.Table) (map[int]float64, error) {
	pairs, err := kvstore.Dump(tab)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(pairs))
	for k, v := range pairs {
		rv, ok := v.(Ranked)
		if !ok {
			return nil, fmt.Errorf("pagerank: entry %v is %T, not Ranked", k, v)
		}
		out[k.(int)] = rv.Rank
	}
	return out, nil
}

// Reference computes the same iteration sequentially, for verification.
func Reference(g *workload.DirectedGraph, damping float64, iterations int) []float64 {
	n := g.NumVertices
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		sink := 0.0
		for u := 0; u < n; u++ {
			if len(g.Out[u]) == 0 {
				sink += rank[u] / float64(n)
			}
		}
		base := (1 - damping) / float64(n)
		for v := 0; v < n; v++ {
			next[v] = base + damping*sink
		}
		for u := 0; u < n; u++ {
			if len(g.Out[u]) == 0 {
				continue
			}
			share := damping * rank[u] / float64(len(g.Out[u]))
			for _, v := range g.Out[u] {
				next[v] += share
			}
		}
		rank, next = next, rank
	}
	return rank
}

# Ripple build/test entry points. `make ci` is the full gate: vet, build,
# and the race-enabled test run.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

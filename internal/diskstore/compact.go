package diskstore

import (
	"fmt"
	"os"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/trace"
)

// compactor is the background merge loop. Memtable flushes hint it after
// prepending a level-0 run; it merges any level that has accumulated
// compactTrigger runs into a single run one level down, repeating until the
// part is back under the trigger everywhere. Merges never block readers or
// writers: inputs stay live until the output run is durable and the manifest
// swap happens under the shard lock in one step.
type compactor struct {
	store *Store
	hints chan *partLog
	quit  chan struct{}
	done  chan struct{}
}

func newCompactor(s *Store) *compactor {
	c := &compactor{
		store: s,
		hints: make(chan *partLog, 128),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go c.loop()
	return c
}

// hint nudges the compactor to look at pl. Non-blocking: a full hint queue
// is fine because every later flush re-hints.
func (c *compactor) hint(pl *partLog) {
	select {
	case c.hints <- pl:
	default:
	}
}

func (c *compactor) stop() {
	close(c.quit)
	<-c.done
}

func (c *compactor) loop() {
	defer close(c.done)
	for {
		select {
		case pl := <-c.hints:
			c.compactPart(pl)
		case <-c.quit:
			return
		}
	}
}

// compactPart merges pl's overfull levels until none remain. Errors are
// swallowed: background compaction is best-effort and the next flush hints
// again.
func (c *compactor) compactPart(pl *partLog) {
	pl.mergeMu.Lock()
	defer pl.mergeMu.Unlock()
	for {
		select {
		case <-c.quit:
			return
		default:
		}
		inputs, outLevel, dropTombs := pl.pickMerge(compactTrigger)
		if len(inputs) == 0 {
			return
		}
		if err := pl.mergeRuns(inputs, outLevel, dropTombs); err != nil {
			return
		}
	}
}

// pickMerge chooses the lowest level holding at least trigger runs and
// returns that whole level as merge input (newest first). dropTombs is true
// when the input span reaches the part's oldest run — nothing below could
// resurrect a deleted key, so tombstones can finally be discarded.
func (pl *partLog) pickMerge(trigger int) (inputs []*sstable, outLevel int, dropTombs bool) {
	pl.sh.mu.Lock()
	defer pl.sh.mu.Unlock()
	if pl.dropped || len(pl.runs) == 0 {
		return nil, 0, false
	}
	counts := make(map[int]int)
	for _, r := range pl.runs {
		counts[r.level]++
	}
	level := -1
	for l, n := range counts {
		if n >= trigger && (level < 0 || l < level) {
			level = l
		}
	}
	if level < 0 {
		return nil, 0, false
	}
	for _, r := range pl.runs {
		if r.level == level {
			inputs = append(inputs, r)
		}
	}
	dropTombs = inputs[len(inputs)-1] == pl.runs[len(pl.runs)-1]
	return inputs, level + 1, dropTombs
}

// mergeRuns k-way-merges inputs (newest first, contiguous in pl.runs) into
// one run at outLevel and swaps it in. Sequencing mirrors flushLocked: the
// output run is durable before the manifest names it, and the inputs are
// only deleted after the manifest swap, so a crash at any instant leaves a
// loadable part (at worst with orphan files the next open removes).
func (pl *partLog) mergeRuns(inputs []*sstable, outLevel int, dropTombs bool) error {
	s := pl.store
	if err := s.hook("compact:sst", pl.table, pl.part); err != nil {
		return err
	}
	start := time.Now()
	pl.sh.mu.Lock()
	seq := pl.nextSeq
	pl.nextSeq++
	pl.sh.mu.Unlock()
	var inBytes, inEntries int64
	for _, r := range inputs {
		inBytes += r.size
		inEntries += r.entries
	}
	final := s.sstPath(pl.table, pl.part, seq)
	tmp := final + ".tmp"
	sw, err := newSSTWriter(tmp, int(inEntries))
	if err != nil {
		return err
	}
	abort := func(err error) error {
		_ = sw.f.Close()
		_ = os.Remove(tmp)
		return err
	}

	iters := make([]*sstIter, len(inputs))
	valid := make([]bool, len(inputs))
	for i, r := range inputs {
		iters[i] = r.iter()
		valid[i] = iters[i].next()
	}
	type mergeRec struct {
		op   byte
		kbuf []byte
		vbuf []byte
		run  int
	}
	for {
		min := -1
		for i := range iters {
			if valid[i] && (min < 0 || codec.CompareKeys(iters[i].key, iters[min].key) < 0) {
				min = i
			}
		}
		if min < 0 {
			break
		}
		// CompareKeys can tie for keys that are not ==, so drain the whole
		// tied span from every run, then let the newest run (lowest input
		// index) win per distinct encoded key. Encoding is deterministic, so
		// byte equality is key equality.
		groupKey := iters[min].key
		var group []mergeRec
		for i := range iters {
			for valid[i] && codec.CompareKeys(iters[i].key, groupKey) == 0 {
				group = append(group, mergeRec{iters[i].op, iters[i].kbuf, iters[i].vbuf, i})
				valid[i] = iters[i].next()
			}
		}
		best := make(map[string]mergeRec, len(group))
		var order []string
		for _, r := range group {
			ks := string(r.kbuf)
			if prev, ok := best[ks]; !ok {
				best[ks] = r
				order = append(order, ks)
			} else if r.run < prev.run {
				best[ks] = r
			}
		}
		for _, ks := range order {
			r := best[ks]
			if dropTombs && r.op == opDelete {
				continue
			}
			if err := sw.add(r.op, r.kbuf, r.vbuf); err != nil {
				return abort(err)
			}
		}
	}
	for _, it := range iters {
		if it.err != nil {
			return abort(it.err)
		}
	}
	if err := s.fsyncFault(pl.table, pl.part); err != nil {
		return abort(err)
	}
	size, err := sw.finish()
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	s.syncDir()
	out, err := openSST(final, seq, outLevel)
	if err != nil {
		_ = os.Remove(final)
		return err
	}
	if err := s.hook("compact:manifest", pl.table, pl.part); err != nil {
		_ = out.close()
		return err
	}

	pl.sh.mu.Lock()
	if pl.dropped {
		pl.sh.mu.Unlock()
		_ = out.close()
		_ = os.Remove(final)
		return nil
	}
	// Flushes only prepend level-0 runs and merges on this part are
	// serialized by mergeMu, so the input span is still contiguous; locate
	// it by identity.
	at := -1
	for i, r := range pl.runs {
		if r == inputs[0] {
			at = i
			break
		}
	}
	if at < 0 || at+len(inputs) > len(pl.runs) {
		pl.sh.mu.Unlock()
		_ = out.close()
		_ = os.Remove(final)
		return fmt.Errorf("diskstore: merge inputs vanished from %s.%d", pl.table, pl.part)
	}
	newRuns := make([]*sstable, 0, len(pl.runs)-len(inputs)+1)
	newRuns = append(newRuns, pl.runs[:at]...)
	newRuns = append(newRuns, out)
	newRuns = append(newRuns, pl.runs[at+len(inputs):]...)
	if err := s.writeManifestFor(pl, newRuns, pl.nextSeq); err != nil {
		pl.sh.mu.Unlock()
		_ = out.close()
		_ = os.Remove(final)
		return err
	}
	pl.runs = newRuns
	for _, r := range inputs {
		s.lsm().RunCounts().Add(r.level, -1)
	}
	s.lsm().RunCounts().Add(outLevel, 1)
	pl.sh.mu.Unlock()

	for _, r := range inputs {
		_ = r.close()
		_ = os.Remove(r.path)
	}
	s.lsm().AddCompactions(1)
	s.lsm().AddCompactionBytes(size)
	s.tracer.Record(trace.KindCompaction, pl.table, 0, pl.part, inBytes-size, time.Since(start))
	return nil
}

// Compact force-merges every part of the named table into a single run per
// part, dropping tombstones and superseded versions. Blocking and
// synchronous, unlike the background compactor; the LogSize after equals
// the live data plus per-run framing.
func (s *Store) Compact(tableName string) error {
	s.mu.Lock()
	t, ok := s.tables[tableName]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return kvstore.ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	parts := t.group.parts
	if t.ubiquitous {
		parts = 1
	}
	for p := 0; p < parts; p++ {
		if err := s.compactTablePart(t, p); err != nil {
			return fmt.Errorf("diskstore: compact %s part %d: %w", tableName, p, err)
		}
	}
	return nil
}

func (s *Store) compactTablePart(t *table, part int) error {
	sh := t.group.shards[part]
	sh.mu.Lock()
	pl := sh.logs[t.name]
	sh.mu.Unlock()
	if pl == nil {
		return fmt.Errorf("%w: %q", kvstore.ErrNoTable, t.name)
	}
	pl.mergeMu.Lock()
	defer pl.mergeMu.Unlock()
	sh.mu.Lock()
	err := pl.flushLocked()
	inputs := append([]*sstable(nil), pl.runs...)
	maxLevel := 0
	for _, r := range inputs {
		if r.level > maxLevel {
			maxLevel = r.level
		}
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return nil
	}
	return pl.mergeRuns(inputs, maxLevel+1, true)
}

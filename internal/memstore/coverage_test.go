package memstore

import (
	"testing"
	"time"

	"ripple/internal/kvstore"
)

func TestStoreIdentityMem(t *testing.T) {
	s := newStore(t, WithParts(3), WithLatency(time.Microsecond))
	if s.Name() != "memstore" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.DefaultParts() != 3 {
		t.Errorf("DefaultParts = %d", s.DefaultParts())
	}
	tab, _ := s.CreateTable("t")
	if tab.Parts() != 3 {
		t.Errorf("Parts = %d", tab.Parts())
	}
	// The latency option must not break correctness.
	if err := tab.Put(1, "v"); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tab.Get(1); !ok || v != "v" {
		t.Errorf("Get = %v, %v", v, ok)
	}
}

func TestUbiquitousPartViewMutationsMem(t *testing.T) {
	s := newStore(t)
	u, _ := s.CreateTable("u", kvstore.Ubiquitous())
	_ = u.Put("a", 1)
	_, _ = s.CreateTable("d", kvstore.WithParts(2))
	_, err := s.RunAgent("d", 0, func(sv kvstore.ShardView) (any, error) {
		view, err := sv.View("u")
		if err != nil {
			return nil, err
		}
		if view.Table() != "u" {
			t.Errorf("Table = %q", view.Table())
		}
		if err := view.Put("b", 2); err != nil {
			return nil, err
		}
		if err := view.Delete("a"); err != nil {
			return nil, err
		}
		n, err := view.Len()
		if err != nil || n != 1 {
			t.Errorf("Len = %d, %v", n, err)
		}
		keys := []any{}
		if err := view.Enumerate(func(k, _ any) (bool, error) {
			keys = append(keys, k)
			return false, nil
		}); err != nil {
			return nil, err
		}
		if len(keys) != 1 || keys[0] != "b" {
			t.Errorf("keys = %v", keys)
		}
		// Early stop on the ordered path.
		stopped := 0
		if err := view.EnumerateOrdered(func(_, _ any) (bool, error) {
			stopped++
			return true, nil
		}); err != nil {
			return nil, err
		}
		if stopped != 1 {
			t.Errorf("early stop visited %d", stopped)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Writes through the replica view are visible to plain table reads.
	if v, ok, _ := u.Get("b"); !ok || v != 2 {
		t.Errorf("u[b] = %v, %v", v, ok)
	}
	if _, ok, _ := u.Get("a"); ok {
		t.Error("deleted ubiquitous key visible")
	}
}

func TestUbiquitousDeleteAndSizeMem(t *testing.T) {
	s := newStore(t)
	u, _ := s.CreateTable("u", kvstore.Ubiquitous())
	_ = u.Put("x", 1)
	_ = u.Put("y", 2)
	if n, _ := u.Size(); n != 2 {
		t.Errorf("Size = %d", n)
	}
	_ = u.Delete("x")
	if n, _ := u.Size(); n != 1 {
		t.Errorf("Size after delete = %d", n)
	}
	if err := s.DropTable("u"); err != nil {
		t.Fatal(err)
	}
}

func TestRunAgentOnUbiquitousRejectedMem(t *testing.T) {
	s := newStore(t)
	_, _ = s.CreateTable("u", kvstore.Ubiquitous())
	if _, err := s.RunAgent("u", 0, func(kvstore.ShardView) (any, error) { return nil, nil }); err == nil {
		t.Error("RunAgent on ubiquitous table allowed")
	}
}

// Benchmark snapshotting: `make bench` sets RIPPLE_BENCH_SNAPSHOT=1, which
// turns TestBenchSnapshot into a driver that times a representative workload
// from each experiment family once and writes BENCH_<yyyymmdd>.json at the
// repo root — a dated record of ns/op plus the engine-counter snapshot, so
// perf regressions show up in version control rather than scrollback.
package ripple

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"ripple/internal/diskstore"
	"ripple/internal/kvstore"
	"ripple/internal/matrix"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/pagerank"
	"ripple/internal/sssp"
	"ripple/internal/summa"
	"ripple/internal/workload"
)

// lsmReadKeys is the dataset size behind the lsm_get_* snapshot rows; the
// 64 KiB memtable budget pushes nearly all of it into SSTable runs.
const lsmReadKeys = 20000

func lsmReadTable(b *testing.B, col *metrics.Collector) kvstore.Table {
	b.Helper()
	s, err := diskstore.New(b.TempDir(), diskstore.WithMetrics(col),
		diskstore.WithMemtableBudget(64<<10))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	tab, err := s.CreateTable("t", kvstore.WithParts(4))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < lsmReadKeys; i++ {
		if err := tab.Put(i, i*3); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Compact("t"); err != nil {
		b.Fatal(err)
	}
	return tab
}

// durableWriters is the group-commit benchmark body: one op is 8 goroutines
// each writing 4 fsync-acknowledged records into a single part.
func durableWriters(b *testing.B, col *metrics.Collector, naive bool) {
	b.Helper()
	opts := []diskstore.Option{diskstore.WithMetrics(col), diskstore.WithSyncEvery(1)}
	if naive {
		opts = append(opts, diskstore.WithoutGroupCommit())
	}
	s, err := diskstore.New(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	tab, err := s.CreateTable("t", kvstore.WithParts(1))
	if err != nil {
		b.Fatal(err)
	}
	const writers, perWriter = 8, 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < perWriter; j++ {
					if err := tab.Put(fmt.Sprintf("%d.%d.%d", i, w, j), j); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
}

// benchRow is one workload's entry in the snapshot file.
type benchRow struct {
	Workload        string `json:"workload"`
	NsPerOp         int64  `json:"ns_per_op"`
	Ops             int    `json:"ops"`
	Msgs            int64  `json:"messages_sent"`
	MarshalledBytes int64  `json:"marshalled_bytes"`
	Invocations     int64  `json:"compute_invocations"`
	Steps           int64  `json:"steps"`
	Retries         int64  `json:"retries"`
}

// benchSnapshot is the whole BENCH_<yyyymmdd>.json document.
type benchSnapshot struct {
	Date      string     `json:"date"`
	GoVersion string     `json:"go_version,omitempty"`
	Rows      []benchRow `json:"rows"`
}

func TestBenchSnapshot(t *testing.T) {
	if os.Getenv("RIPPLE_BENCH_SNAPSHOT") == "" {
		t.Skip("set RIPPLE_BENCH_SNAPSHOT=1 (or run `make bench`) to write a snapshot")
	}

	snap := benchSnapshot{Date: time.Now().Format("2006-01-02"), GoVersion: runtime.Version()}
	add := func(name string, fn func(b *testing.B, col *metrics.Collector)) {
		col := &metrics.Collector{}
		res := testing.Benchmark(func(b *testing.B) { fn(b, col) })
		m := col.Snapshot()
		snap.Rows = append(snap.Rows, benchRow{
			Workload:        name,
			NsPerOp:         res.NsPerOp(),
			Ops:             res.N,
			Msgs:            m.MessagesSent,
			MarshalledBytes: m.MarshalledBytes,
			Invocations:     m.ComputeInvocations,
			Steps:           m.Steps,
			Retries:         m.Retries,
		})
		t.Logf("%-24s %12d ns/op  (%d ops)", name, res.NsPerOp(), res.N)
	}

	add("pagerank_direct", func(b *testing.B, col *metrics.Collector) {
		g := table1Graph(b, table1Shapes[0].vertices, table1Shapes[0].edges)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store := memstore.New(memstore.WithParts(6))
			engine := NewEngine(store, WithMetrics(col))
			if _, err := pagerank.LoadGraph(store, "g", g, 6); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := pagerank.RunDirect(engine, pagerank.Config{
				GraphTable: "g", Iterations: table1Iterations,
			}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			_ = store.Close()
			b.StartTimer()
		}
	})
	add("pagerank_mapreduce", func(b *testing.B, col *metrics.Collector) {
		g := table1Graph(b, table1Shapes[0].vertices, table1Shapes[0].edges)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store := memstore.New(memstore.WithParts(6))
			engine := NewEngine(store, WithMetrics(col))
			tab, err := pagerank.LoadGraph(store, "g", g, 6)
			if err != nil {
				b.Fatal(err)
			}
			if err := pagerank.SeedRanks(tab); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := pagerank.RunMapReduce(engine, pagerank.Config{
				GraphTable: "g", Iterations: table1Iterations,
			}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			_ = store.Close()
			b.StartTimer()
		}
	})
	add("summa_sync_3x3", func(b *testing.B, col *metrics.Collector) {
		rng := rand.New(rand.NewSource(11))
		a := matrix.Random(rng, 60, 60)
		m2 := matrix.Random(rng, 60, 60)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store := memstore.New(memstore.WithParts(9))
			b.StartTimer()
			if _, err := summa.Multiply(store, summa.Config{
				Grid: 3, Synchronized: true, Metrics: col,
			}, a, m2); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			_ = store.Close()
			b.StartTimer()
		}
	})
	add("lsm_put", func(b *testing.B, col *metrics.Collector) {
		s, err := diskstore.New(b.TempDir(), diskstore.WithMetrics(col))
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = s.Close() }()
		tab, err := s.CreateTable("t", kvstore.WithParts(4))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tab.Put(i, "sixteen-byte-val"); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("lsm_get_hit", func(b *testing.B, col *metrics.Collector) {
		tab := lsmReadTable(b, col)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := tab.Get(i % lsmReadKeys); err != nil || !ok {
				b.Fatalf("Get = %v, %v", ok, err)
			}
		}
	})
	add("lsm_get_miss", func(b *testing.B, col *metrics.Collector) {
		tab := lsmReadTable(b, col)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := tab.Get(lsmReadKeys + i); err != nil || ok {
				b.Fatalf("Get(miss) = %v, %v", ok, err)
			}
		}
	})
	// The group-commit pair: identical workload (8 concurrent writers, every
	// put fsync-acknowledged), with and without the commit loop. The ratio of
	// the two ns/op rows is what group commit buys; the acceptance floor is 5x.
	add("group_commit_8w", func(b *testing.B, col *metrics.Collector) {
		durableWriters(b, col, false)
	})
	add("naive_commit_8w", func(b *testing.B, col *metrics.Collector) {
		durableWriters(b, col, true)
	})
	add("sssp_selective", func(b *testing.B, col *metrics.Collector) {
		g, err := workload.PowerLawUndirected(rand.New(rand.NewSource(19)), ssspVertices, ssspEdges, 1.3)
		if err != nil {
			b.Fatal(err)
		}
		store := memstore.New(memstore.WithParts(6))
		defer func() { _ = store.Close() }()
		drv := sssp.NewSelective(NewEngine(store, WithMetrics(col)), "snap_sel", 0, 6)
		if err := drv.Init(g); err != nil {
			b.Fatal(err)
		}
		batches := ssspBatches(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := drv.ApplyBatch(batches[i%len(batches)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Flag a group-commit regression in the snapshot run itself.
	var gcNs, naiveNs int64
	for _, r := range snap.Rows {
		switch r.Workload {
		case "group_commit_8w":
			gcNs = r.NsPerOp
		case "naive_commit_8w":
			naiveNs = r.NsPerOp
		}
	}
	if gcNs > 0 && naiveNs > 0 {
		ratio := float64(naiveNs) / float64(gcNs)
		t.Logf("group commit speedup over naive per-put fsync: %.1fx", ratio)
		if ratio < 5 {
			t.Errorf("group commit only %.1fx over naive, want >= 5x", ratio)
		}
	}

	path := fmt.Sprintf("BENCH_%s.json", time.Now().Format("20060102"))
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d workloads)", path, len(snap.Rows))
}

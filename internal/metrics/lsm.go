package metrics

import "sync/atomic"

// LSMStats groups the LSM storage-engine instruments: memtable footprint,
// run counts per compaction level, WAL and SSTable write volumes (for write
// amplification), bloom-filter effectiveness, and the group-commit batch-size
// histogram. It hangs off Collector so the diskstore needs only the one
// collector handle; like every other instrument a nil *LSMStats is a valid
// no-op.
type LSMStats struct {
	memtableBytes Gauge
	runCounts     PartGauge // keyed by compaction level

	flushes      atomic.Int64
	compactions  atomic.Int64
	logicalBytes atomic.Int64 // key+value payload accepted from callers
	walBytes     atomic.Int64 // bytes appended to write-ahead logs
	walSyncs     atomic.Int64 // WAL fsyncs (group commits, flushes)
	flushBytes   atomic.Int64 // SSTable bytes written by memtable flushes
	compactBytes atomic.Int64 // SSTable bytes written by compactions

	bloomChecks         atomic.Int64
	bloomNegatives      atomic.Int64
	bloomFalsePositives atomic.Int64
	blockReads          atomic.Int64

	groupCommitBatch Histogram // writers acknowledged per WAL fsync
}

// LSM returns the collector's LSM storage-engine instruments (nil, itself
// no-op, for a nil collector).
func (c *Collector) LSM() *LSMStats {
	if c == nil {
		return nil
	}
	return &c.lsm
}

// MemtableBytes is the live memtable footprint across all table parts.
func (l *LSMStats) MemtableBytes() *Gauge {
	if l == nil {
		return nil
	}
	return &l.memtableBytes
}

// RunCounts is the number of live SSTable runs per compaction level.
func (l *LSMStats) RunCounts() *PartGauge {
	if l == nil {
		return nil
	}
	return &l.runCounts
}

// GroupCommitBatches is the histogram of writers acknowledged per WAL fsync.
func (l *LSMStats) GroupCommitBatches() *Histogram {
	if l == nil {
		return nil
	}
	return &l.groupCommitBatch
}

// AddFlushes counts memtable flushes.
func (l *LSMStats) AddFlushes(n int64) {
	if l != nil {
		l.flushes.Add(n)
	}
}

// AddCompactions counts run merges.
func (l *LSMStats) AddCompactions(n int64) {
	if l != nil {
		l.compactions.Add(n)
	}
}

// AddLogicalBytes counts key+value payload bytes accepted from callers — the
// denominator of write amplification.
func (l *LSMStats) AddLogicalBytes(n int64) {
	if l != nil {
		l.logicalBytes.Add(n)
	}
}

// AddWALBytes counts bytes appended to write-ahead logs.
func (l *LSMStats) AddWALBytes(n int64) {
	if l != nil {
		l.walBytes.Add(n)
	}
}

// AddWALSyncs counts WAL fsyncs.
func (l *LSMStats) AddWALSyncs(n int64) {
	if l != nil {
		l.walSyncs.Add(n)
	}
}

// AddFlushBytes counts SSTable bytes written by memtable flushes.
func (l *LSMStats) AddFlushBytes(n int64) {
	if l != nil {
		l.flushBytes.Add(n)
	}
}

// AddCompactionBytes counts SSTable bytes written by compactions.
func (l *LSMStats) AddCompactionBytes(n int64) {
	if l != nil {
		l.compactBytes.Add(n)
	}
}

// AddBloomChecks counts run probes that consulted a bloom filter.
func (l *LSMStats) AddBloomChecks(n int64) {
	if l != nil {
		l.bloomChecks.Add(n)
	}
}

// AddBloomNegatives counts probes the bloom filter rejected (no disk read).
func (l *LSMStats) AddBloomNegatives(n int64) {
	if l != nil {
		l.bloomNegatives.Add(n)
	}
}

// AddBloomFalsePositives counts probes that passed the filter but found
// nothing in the run.
func (l *LSMStats) AddBloomFalsePositives(n int64) {
	if l != nil {
		l.bloomFalsePositives.Add(n)
	}
}

// AddBlockReads counts SSTable data-block reads.
func (l *LSMStats) AddBlockReads(n int64) {
	if l != nil {
		l.blockReads.Add(n)
	}
}

// LSMSnapshot is a point-in-time copy of the LSM counters and gauges.
type LSMSnapshot struct {
	MemtableBytes       int64
	RunCounts           map[int]int64
	Flushes             int64
	Compactions         int64
	LogicalBytes        int64
	WALBytes            int64
	WALSyncs            int64
	FlushBytes          int64
	CompactionBytes     int64
	BloomChecks         int64
	BloomNegatives      int64
	BloomFalsePositives int64
	BlockReads          int64
	GroupCommitBatch    HistogramSnapshot
}

// WriteAmplification is physical bytes written (WAL + flush + compaction)
// over logical payload bytes; 0 when nothing was written.
func (s LSMSnapshot) WriteAmplification() float64 {
	if s.LogicalBytes == 0 {
		return 0
	}
	return float64(s.WALBytes+s.FlushBytes+s.CompactionBytes) / float64(s.LogicalBytes)
}

// BloomFalsePositiveRate is false positives over filter hits (checks that
// passed the filter); 0 when no probe passed.
func (s LSMSnapshot) BloomFalsePositiveRate() float64 {
	passed := s.BloomChecks - s.BloomNegatives
	if passed <= 0 {
		return 0
	}
	return float64(s.BloomFalsePositives) / float64(passed)
}

// Snapshot copies the current LSM instrument values. A nil receiver yields a
// zero snapshot.
func (l *LSMStats) Snapshot() LSMSnapshot {
	if l == nil {
		return LSMSnapshot{}
	}
	return LSMSnapshot{
		MemtableBytes:       l.memtableBytes.Load(),
		RunCounts:           l.runCounts.Snapshot(),
		Flushes:             l.flushes.Load(),
		Compactions:         l.compactions.Load(),
		LogicalBytes:        l.logicalBytes.Load(),
		WALBytes:            l.walBytes.Load(),
		WALSyncs:            l.walSyncs.Load(),
		FlushBytes:          l.flushBytes.Load(),
		CompactionBytes:     l.compactBytes.Load(),
		BloomChecks:         l.bloomChecks.Load(),
		BloomNegatives:      l.bloomNegatives.Load(),
		BloomFalsePositives: l.bloomFalsePositives.Load(),
		BlockReads:          l.blockReads.Load(),
		GroupCommitBatch:    l.groupCommitBatch.Snapshot(),
	}
}

// reset zeroes the LSM instruments (Collector.Reset calls it).
func (l *LSMStats) reset() {
	if l == nil {
		return
	}
	l.memtableBytes.Set(0)
	l.runCounts.reset()
	l.flushes.Store(0)
	l.compactions.Store(0)
	l.logicalBytes.Store(0)
	l.walBytes.Store(0)
	l.walSyncs.Store(0)
	l.flushBytes.Store(0)
	l.compactBytes.Store(0)
	l.bloomChecks.Store(0)
	l.bloomNegatives.Store(0)
	l.bloomFalsePositives.Store(0)
	l.blockReads.Store(0)
	l.groupCommitBatch.reset()
}

// Package ripple is the public facade of the Ripple library: an architecture
// and programming model for bulk-synchronous-parallel style data analytics,
// reproducing Spreitzer, Steinder & Whalley, "Ripple: Improved Architecture
// and Programming Model for Bulk Synchronous Parallel Style of Analytics"
// (ICDCS 2013).
//
// Ripple combines two ideas:
//
//  1. K/V EBSP — a key/value extended BSP programming model. A Job is a set
//     of components identified by keys that alternate local compute with
//     message exchange across synchronization barriers. Compared to iterated
//     MapReduce it adds per-component private state factored over multiple
//     tables, selective enablement (only messaged or continuing components
//     run), message combiners, aggregators, broadcast data, direct output,
//     and — for jobs whose declared Properties allow it — execution with no
//     barriers at all.
//
//  2. Narrow SPIs to a fundamental storage+compute layer. Everything runs
//     against the small kvstore.Store interface (partitioned tables,
//     ubiquitous tables, collocated mobile code, optional transactions and
//     replication) plus a message-queuing interface, so the platform is
//     portable across stores. Three stores ship with the library: an
//     in-memory partition-emulating debugging store, a WXS-like replicated
//     grid store with per-shard ACID transactions and failure injection, and
//     an LSM disk store (memtable + group-commit WAL, bloom-filtered SSTables,
//     background compaction) for out-of-core working sets.
//
// # Quickstart
//
//	store := ripple.NewMemStore(ripple.MemParts(4))
//	defer store.Close()
//	engine := ripple.NewEngine(store)
//	job := &ripple.Job{
//	    Name:        "hello",
//	    StateTables: []string{"state"},
//	    Compute: ripple.ComputeFunc(func(ctx *ripple.Context) bool {
//	        for _, m := range ctx.InputMessages() {
//	            ctx.WriteState(0, m)
//	        }
//	        return false
//	    }),
//	    Loaders: []ripple.Loader{&ripple.MessageLoader{
//	        Messages: []ripple.InitialMessage{{Key: 1, Message: "hi"}},
//	    }},
//	}
//	result, err := engine.Run(job)
//
// Higher-level programming models layered on K/V EBSP live in the
// internal/mapreduce (MapReduce, iterated MapReduce) and internal/graph
// (Pregel-style vertex programs) packages, re-exported here as the MapReduce*
// and Graph* names.
package ripple

import (
	"net/http"

	"ripple/internal/chaos"
	"ripple/internal/codec"
	"ripple/internal/diskstore"
	"ripple/internal/ebsp"
	"ripple/internal/fleet"
	"ripple/internal/graph"
	"ripple/internal/gridstore"
	"ripple/internal/httpx"
	"ripple/internal/kvstore"
	"ripple/internal/logring"
	"ripple/internal/mapreduce"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
	"ripple/internal/netstore"
	"ripple/internal/profile"
	"ripple/internal/serve"
	"ripple/internal/tableops"
	"ripple/internal/trace"
)

// Core programming-model types (paper §II).
type (
	// Engine executes K/V EBSP jobs against one store.
	Engine = ebsp.Engine
	// Job specifies one K/V EBSP job.
	Job = ebsp.Job
	// Context is the ComputeContext handed to every compute invocation.
	Context = ebsp.Context
	// Compute is the component execution function.
	Compute = ebsp.Compute
	// ComputeFunc adapts a function to Compute.
	ComputeFunc = ebsp.ComputeFunc
	// Properties declares the special-case job properties (paper §II-A).
	Properties = ebsp.Properties
	// Strategy is the derived execution plan.
	Strategy = ebsp.Strategy
	// Result reports a completed job.
	Result = ebsp.Result
	// MessageCombiner pairwise-combines messages per destination and step.
	MessageCombiner = ebsp.MessageCombiner
	// StateCombiner merges conflicting created states.
	StateCombiner = ebsp.StateCombiner
	// Aggregator is a named, Pregel-style aggregation.
	Aggregator = ebsp.Aggregator
	// Aborter stops a job early between steps.
	Aborter = ebsp.Aborter
	// AborterFunc adapts a function to Aborter.
	AborterFunc = ebsp.AborterFunc
	// Loader establishes a job's initial condition.
	Loader = ebsp.Loader
	// LoaderFunc adapts a function to Loader.
	LoaderFunc = ebsp.LoaderFunc
	// LoadContext is what Loaders write the initial condition through.
	LoadContext = ebsp.LoadContext
	// Exporter consumes final state or direct job output.
	Exporter = ebsp.Exporter
	// ExporterFunc adapts a function to Exporter.
	ExporterFunc = ebsp.ExporterFunc
	// TableLoader loads a job's initial condition from a table.
	TableLoader = ebsp.TableLoader
	// MessageLoader seeds explicit initial messages.
	MessageLoader = ebsp.MessageLoader
	// InitialMessage is one (destination, payload) seed.
	InitialMessage = ebsp.InitialMessage
	// EnableLoader enables explicit components for the first step.
	EnableLoader = ebsp.EnableLoader
	// StateLoader seeds explicit initial states.
	StateLoader = ebsp.StateLoader
	// CollectExporter accumulates exported pairs in memory.
	CollectExporter = ebsp.CollectExporter
	// TableExporter copies exported pairs into a table.
	TableExporter = ebsp.TableExporter
	// StepObserver receives a notification after every synchronized step.
	StepObserver = ebsp.StepObserver
	// StepObserverFunc adapts a function to StepObserver.
	StepObserverFunc = ebsp.StepObserverFunc
	// StepInfo describes one completed step.
	StepInfo = ebsp.StepInfo
	// ProgressObserver receives watermark notifications from no-sync runs.
	ProgressObserver = ebsp.ProgressObserver
	// ProgressObserverFunc adapts a function to ProgressObserver.
	ProgressObserverFunc = ebsp.ProgressObserverFunc
	// ProgressInfo describes one no-sync progress watermark.
	ProgressInfo = ebsp.ProgressInfo
)

// Storage SPI types (paper §III).
type (
	// Store is the key/value store SPI.
	Store = kvstore.Store
	// Table is one partitioned key/value table.
	Table = kvstore.Table
	// PartView is an agent's local view of one part of one table.
	PartView = kvstore.PartView
	// ShardView is an agent's window onto co-placed parts.
	ShardView = kvstore.ShardView
	// Agent is mobile code dispatched adjacent to a part's data.
	Agent = kvstore.Agent
	// PartConsumer processes table parts collocated with the data.
	PartConsumer = kvstore.PartConsumer
	// PairConsumer streams a table's pairs with per-part setup/finish.
	PairConsumer = kvstore.PairConsumer
	// PairConsumerFuncs adapts plain functions to PairConsumer.
	PairConsumerFuncs = kvstore.PairConsumerFuncs
	// PartConsumerFuncs adapts plain functions to PartConsumer.
	PartConsumerFuncs = kvstore.PartConsumerFuncs
	// TableOption configures table creation.
	TableOption = kvstore.TableOption
	// Metrics accumulates engine and store counters.
	Metrics = metrics.Collector
	// MetricsSnapshot is a point-in-time copy of the counters.
	MetricsSnapshot = metrics.Snapshot
	// Histogram is a lock-free power-of-two latency histogram.
	Histogram = metrics.Histogram
	// HistogramSnapshot is a consistent-enough copy with quantile estimates.
	HistogramSnapshot = metrics.HistogramSnapshot
	// Gauge is a last-writer-wins instantaneous value.
	Gauge = metrics.Gauge
	// PartGauge is a gauge with one cell per part.
	PartGauge = metrics.PartGauge
	// Tracer is a bounded ring buffer of engine span events.
	Tracer = trace.Tracer
	// TraceSpan is one recorded span event.
	TraceSpan = trace.Span
	// TraceKind identifies a span event's type.
	TraceKind = trace.Kind
	// TraceSampler makes the deterministic head-sampling decision per job run.
	TraceSampler = trace.Sampler
	// TraceChain is one trace's reconstructed causal chain.
	TraceChain = trace.Chain
	// TraceEdge is one resolved delivery edge inside a TraceChain.
	TraceEdge = trace.Edge
	// LogRing is a bounded in-memory ring of structured log records.
	LogRing = logring.Ring
	// LogRecord is one captured structured log record.
	LogRecord = logring.Record
	// Profiler is a bounded ring buffer of per-(job, step, part) profiles.
	Profiler = profile.Recorder
	// StepProfile is one part's record of one step.
	StepProfile = profile.StepProfile
	// ProfileReport is the skew/straggler analysis over recorded profiles.
	ProfileReport = profile.Report
	// StepSkew is one step's skew summary inside a ProfileReport.
	StepSkew = profile.StepSkew
	// PartRank is one part's straggler ranking inside a ProfileReport.
	PartRank = profile.PartRank
	// MQSystem manages message-queue sets (paper §III-B).
	MQSystem = mq.System
	// Queuing is the queuing SPI: create/delete queue sets. Implemented by
	// *MQSystem in-process and by the networked transport client.
	Queuing = mq.Queuing
	// QueueSet is a placed set of FIFO queues, one per table part.
	QueueSet = mq.QueueSet
)

// Built-in aggregators.
type (
	// IntSum sums int inputs.
	IntSum = ebsp.IntSum
	// Int64Sum sums int64 inputs.
	Int64Sum = ebsp.Int64Sum
	// Float64Sum sums float64 inputs.
	Float64Sum = ebsp.Float64Sum
	// IntMax keeps the maximum int input.
	IntMax = ebsp.IntMax
	// IntMin keeps the minimum int input.
	IntMin = ebsp.IntMin
	// Float64Max keeps the maximum float64 input.
	Float64Max = ebsp.Float64Max
	// Float64Min keeps the minimum float64 input.
	Float64Min = ebsp.Float64Min
	// BoolOr ORs bool inputs.
	BoolOr = ebsp.BoolOr
	// BoolAnd ANDs bool inputs.
	BoolAnd = ebsp.BoolAnd
)

// MapReduce layer (paper Fig. 2).
type (
	// MapReduceJob is a single map-reduce couplet.
	MapReduceJob = mapreduce.Job
	// MapReduceIteratedJob iterates a couplet over one dataset.
	MapReduceIteratedJob = mapreduce.IteratedJob
	// MapReduceSummary reports an iterated execution.
	MapReduceSummary = mapreduce.Summary
	// Mapper transforms one input pair.
	Mapper = mapreduce.Mapper
	// MapperFunc adapts a function to Mapper.
	MapperFunc = mapreduce.MapperFunc
	// Reducer folds intermediate values for one key.
	Reducer = mapreduce.Reducer
	// ReducerFunc adapts a function to Reducer.
	ReducerFunc = mapreduce.ReducerFunc
	// Emitter receives emitted pairs.
	Emitter = mapreduce.Emitter
)

// Graph EBSP layer (paper Fig. 2).
type (
	// GraphSpec describes a Pregel-style vertex computation.
	GraphSpec = graph.Spec
	// GraphVertex is one vertex's stored state.
	GraphVertex = graph.Vertex
	// GraphEdge is one outgoing edge.
	GraphEdge = graph.Edge
	// GraphProgram is the vertex compute function.
	GraphProgram = graph.Program
	// GraphProgramFunc adapts a function to GraphProgram.
	GraphProgramFunc = graph.ProgramFunc
	// GraphContext is the vertex program's per-superstep window.
	GraphContext = graph.VertexContext
)

// NewEngine creates an execution engine bound to a store.
func NewEngine(store Store, opts ...ebsp.Option) *Engine {
	return ebsp.NewEngine(store, opts...)
}

// Engine options.
var (
	// WithMetrics attaches a metrics collector to an engine.
	WithMetrics = ebsp.WithMetrics
	// WithMQ supplies the queuing system used for no-sync execution.
	WithMQ = ebsp.WithMQ
	// WithStrategyOverride adjusts the derived strategy (conservative only).
	WithStrategyOverride = ebsp.WithStrategyOverride
	// WithAggTableThreshold switches aggregation to the table-based path.
	WithAggTableThreshold = ebsp.WithAggTableThreshold
	// WithRecoveryRetries bounds fast-recovery replays.
	WithRecoveryRetries = ebsp.WithRecoveryRetries
	// WithCheckpoints snapshots barrier state every n steps; with them the
	// engine also auto-recovers from store failovers mid-run, and
	// Engine.Resume restarts a crashed or aborted job from the latest
	// snapshot.
	WithCheckpoints = ebsp.WithCheckpoints
	// WithObserver installs a step observer on the engine.
	WithObserver = ebsp.WithObserver
	// WithProgressObserver installs a no-sync progress observer.
	WithProgressObserver = ebsp.WithProgressObserver
	// WithTracer attaches a span tracer to the engine.
	WithTracer = ebsp.WithTracer
	// WithTraceSampler attaches a head sampler: sampled runs get trace/span
	// IDs on every span and data envelope, for causal lineage reconstruction.
	WithTraceSampler = ebsp.WithTraceSampler
	// WithLogger attaches a structured (slog) logger to the engine.
	WithLogger = ebsp.WithLogger
	// WithProfiler attaches a step profiler to the engine.
	WithProfiler = ebsp.WithProfiler
	// ErrNoCheckpoint is returned by Engine.Resume without a snapshot.
	ErrNoCheckpoint = ebsp.ErrNoCheckpoint
	// ErrCheckpointMismatch is returned by Engine.Resume when the stored
	// checkpoint does not belong to the job being resumed.
	ErrCheckpointMismatch = ebsp.ErrCheckpointMismatch
	// ErrJobBusy is returned by Engine.Run/Resume when a job with the same
	// name is already executing on that engine.
	ErrJobBusy = ebsp.ErrJobBusy
)

// Chaos engineering: deterministic, seeded fault injection behind the store
// and message-queue SPIs.
type (
	// ChaosSchedule declares a reproducible fault-injection plan.
	ChaosSchedule = chaos.Schedule
	// ChaosKill schedules one primary kill at an agent-dispatch boundary.
	ChaosKill = chaos.Kill
	// ChaosInjector makes the schedule's injection decisions and records the
	// injected faults.
	ChaosInjector = chaos.Injector
	// ChaosRecord is one injected fault.
	ChaosRecord = chaos.Record
)

var (
	// ParseChaosSchedule decodes the textual schedule form
	// (e.g. "seed=7,store.err=0.01,mq.dup=0.05,kill=pages:3@40").
	ParseChaosSchedule = chaos.Parse
	// NewChaosInjector creates an injector for a schedule.
	NewChaosInjector = chaos.NewInjector
	// WrapChaos decorates a store with the injector's faults.
	WrapChaos = chaos.Wrap
	// ChaosMetrics counts injected faults on a metrics collector.
	ChaosMetrics = chaos.WithMetrics
	// ChaosTracer records a trace span per injected fault.
	ChaosTracer = chaos.WithTracer
	// WithMQFaults installs a fault injector on a message-queue system.
	WithMQFaults = mq.WithFaults
)

// NewTracer creates a bounded span tracer; capacity <= 0 uses
// trace.DefaultCapacity.
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// NewTraceSampler creates a deterministic head sampler: rate is the fraction
// of job runs to trace (clamped to [0, 1]); the same (rate, seed) always
// samples the same runs. Attach it with WithTraceSampler.
func NewTraceSampler(rate float64, seed int64) *TraceSampler { return trace.NewSampler(rate, seed) }

// Causal tracing: lineage reconstruction and span-dump interchange.
var (
	// TraceIDs lists the distinct sampled trace IDs in a span dump.
	TraceIDs = trace.Traces
	// BuildTraceChain reconstructs one trace's causal chain from a span dump.
	BuildTraceChain = trace.BuildChain
	// ParseTraceSpans reads a span dump back (JSONL or OTLP JSON, sniffed).
	ParseTraceSpans = trace.Parse
	// WriteTraceOTLP writes spans as OTLP/JSON (importable by OpenTelemetry
	// tooling); base is the run's wall-clock start (Tracer.WallStart).
	WriteTraceOTLP = trace.WriteOTLP
	// TraceKindByName resolves a span-kind name (e.g. "deliver").
	TraceKindByName = trace.KindByName
	// AttachProfileLineage joins a span dump against a profile report's
	// straggler ranking, attributing stragglers to hot incoming edges.
	AttachProfileLineage = profile.AttachLineage
)

// NewLogRing creates a bounded structured-log ring; capacity <= 0 uses
// logring.DefaultCapacity. Build a logger over it with LogRing.Handler (or
// fan out to several handlers with LogFanout) and attach it with WithLogger;
// serve the captured records with AttachLogz.
func NewLogRing(capacity int) *LogRing { return logring.New(capacity) }

// Structured logging.
var (
	// LogFanout combines several slog handlers into one.
	LogFanout = logring.Fanout
	// AttachLogz registers /debug/logz (recent structured log records,
	// filterable by ?level=, ?q=, ?n=) on a mux.
	AttachLogz = logring.Attach
)

// NewProfiler creates a bounded step profiler; capacity <= 0 uses
// profile.DefaultCapacity. Attach it with WithProfiler, then analyze with
// AnalyzeProfiler or export with WriteProfileChromeTrace/WriteProfileJSONL.
func NewProfiler(capacity int) *Profiler { return profile.New(capacity) }

// Profiling: analysis and export of recorded step profiles.
var (
	// AnalyzeProfiler builds the skew/straggler report from a recorder.
	AnalyzeProfiler = profile.AnalyzeRecorder
	// AnalyzeProfiles builds the report from parsed StepProfiles.
	AnalyzeProfiles = profile.Analyze
	// WriteProfileReport renders a report as a human-readable text table.
	WriteProfileReport = profile.WriteText
	// WriteProfileChromeTrace writes profiles as Chrome trace-event JSON
	// (open in chrome://tracing or https://ui.perfetto.dev).
	WriteProfileChromeTrace = profile.WriteChromeTrace
	// WriteProfileJSONL writes profiles as one JSON object per line.
	WriteProfileJSONL = profile.WriteJSONL
	// ParseProfiles reads either export format back (format is sniffed).
	ParseProfiles = profile.Parse
	// AttachDebug registers /debug/profilez and /debug/pprof/ on a mux.
	AttachDebug = profile.AttachDebug
)

// Metrics exposition.
var (
	// WriteMetricsText renders a collector in Prometheus text format.
	WriteMetricsText = metrics.WritePrometheus
	// MetricsHandler serves a collector in Prometheus text format over HTTP.
	MetricsHandler = metrics.Handler
	// MetricsHandlerTracer additionally exposes the tracer's span-loss
	// series (ripple_trace_spans, ripple_trace_dropped_total).
	MetricsHandlerTracer = metrics.HandlerTracer
)

// Table options.
var (
	// WithParts sets a new table's part count.
	WithParts = kvstore.WithParts
	// Ubiquitous requests a ubiquitous table.
	Ubiquitous = kvstore.Ubiquitous
	// ConsistentWith requests partitioning consistent with another table.
	ConsistentWith = kvstore.ConsistentWith
	// Ordered requests key-ordered part storage.
	Ordered = kvstore.Ordered
)

// NewMemStore creates the in-memory parallel debugging store (the paper's
// §V-A/§V-C evaluation store): per-partition service goroutines with
// marshalling across emulated partition boundaries.
func NewMemStore(opts ...memstore.Option) *memstore.Store { return memstore.New(opts...) }

// Memstore options.
var (
	// MemParts sets the default part count (default 6).
	MemParts = memstore.WithParts
	// MemMetrics attaches a metrics collector.
	MemMetrics = memstore.WithMetrics
	// MemLatency adds an emulated cross-partition network latency.
	MemLatency = memstore.WithLatency
)

// NewGridStore creates the WXS-like elastic in-memory store (the paper's
// §V-B evaluation store): partitioning, synchronous replication, collocated
// agents, per-shard ACID transactions, and failure injection.
func NewGridStore(opts ...gridstore.Option) *gridstore.Store { return gridstore.New(opts...) }

// Gridstore options.
var (
	// GridParts sets the default part count (default 10).
	GridParts = gridstore.WithParts
	// GridReplicas sets the replication factor.
	GridReplicas = gridstore.WithReplicas
	// GridMetrics attaches a metrics collector.
	GridMetrics = gridstore.WithMetrics
	// GridLatency adds an emulated cross-partition network latency.
	GridLatency = gridstore.WithLatency
)

// NewDiskStore creates the LSM disk store rooted at dir.
func NewDiskStore(dir string, opts ...diskstore.Option) (*diskstore.Store, error) {
	return diskstore.New(dir, opts...)
}

// DialPartServers connects to a fleet of part-server processes (see
// cmd/ripple-part-server) and returns a client-side store serving both the
// store and mq SPIs over framed TCP: consistent-hash part placement,
// client-driven replication, heartbeat failure detection, and replica
// failover feeding the engine's heal/checkpoint-restore recovery.
func DialPartServers(addrs []string, opts ...netstore.Option) (*netstore.Client, error) {
	return netstore.Dial(addrs, opts...)
}

// NewPartServer creates an embeddable part-server (the same core that
// cmd/ripple-part-server wraps as a process); call Serve with a listener.
func NewPartServer(opts ...netstore.ServerOption) *netstore.Server {
	return netstore.NewServer(opts...)
}

// Part-server client options.
var (
	// NetReplicas sets how many servers hold each part (default 2).
	NetReplicas = netstore.WithReplicas
	// NetRequestTimeout bounds each RPC attempt.
	NetRequestTimeout = netstore.WithRequestTimeout
	// NetHeartbeat tunes the failure detector's ping interval and miss budget.
	NetHeartbeat = netstore.WithHeartbeat
	// NetRetries bounds per-operation retransmits.
	NetRetries = netstore.WithRetries
	// NetBackoffSeed seeds the deterministic retry-backoff jitter.
	NetBackoffSeed = netstore.WithBackoffSeed
	// NetMetrics attaches a metrics collector to the client.
	NetMetrics = netstore.WithMetrics
	// NetTracer attaches a tracer: RPC spans join the engine's causal chains.
	NetTracer = netstore.WithTracer
	// PartServerMetrics attaches a metrics collector to an embedded server.
	PartServerMetrics = netstore.WithServerMetrics
	// PartServerTracer attaches a tracer to an embedded server.
	PartServerTracer = netstore.WithServerTracer
)

// Fleet observability plane: admin telemetry ops ride the data plane's own
// framed-TCP connections, a collector merges every server's metrics into one
// exposition, and cross-process RPC spans assemble into a single
// clock-aligned timeline (internal/fleet, internal/netstore admin ops).
type (
	// FleetCollector polls every part-server's admin telemetry plus the
	// engine's own collector and tracer, presenting the fleet as one system.
	FleetCollector = fleet.Collector
	// FleetSnapshot is one poll of the whole fleet.
	FleetSnapshot = fleet.Snapshot
	// FleetServerDump is one server's drained trace ring plus its live
	// clock-offset estimate, ready for AssembleFleetTimeline.
	FleetServerDump = fleet.ServerDump
	// FleetTimelineReport describes how an assembly aligned each server.
	FleetTimelineReport = fleet.TimelineReport
	// FleetCheckReport is the verdict of CheckFleetTimeline.
	FleetCheckReport = fleet.CheckReport
	// FleetBreakdown decomposes client-observed RPC latency per
	// (server, endpoint) into server execution time and wire time.
	FleetBreakdown = fleet.Breakdown
	// PartServerStats is the stats admin op's payload.
	PartServerStats = netstore.ServerStats
	// PartServerHealth is the health admin op's payload.
	PartServerHealth = netstore.ServerHealth
	// PartServerStatus is the failure detector's view of one server, with
	// its clock-offset estimate attached.
	PartServerStatus = netstore.ServerStatus
	// ClockOffset is the client's live estimate of one server's span-clock
	// offset, with an explicit error bound.
	ClockOffset = netstore.ClockOffset
	// FleetAdminClient is a telemetry-only client for dashboards: lazy
	// dials, per-call errors, no heartbeats, nothing shared with data.
	FleetAdminClient = netstore.AdminClient
	// ServerCost ranks a part-server by client-observed RPC time in a
	// profile report (filled by AttachFleetCosts).
	ServerCost = profile.ServerCost
)

var (
	// AssembleFleetTimeline merges engine spans with per-server dumps into
	// one clock-aligned timeline.
	AssembleFleetTimeline = fleet.Assemble
	// CheckFleetTimeline validates a merged timeline's causal geometry:
	// every server span enclosed by its client span.
	CheckFleetTimeline = fleet.Check
	// DecomposeFleetTimeline aggregates a merged timeline's RPC pairs into
	// per-(server, endpoint) wire-vs-exec breakdowns.
	DecomposeFleetTimeline = fleet.Decompose
	// WriteFleetPrometheus renders one fleet snapshot as Prometheus text
	// with server labels and a server="all" aggregate histogram.
	WriteFleetPrometheus = fleet.WriteFleetPrometheus
	// DialFleetAdmin prepares a FleetAdminClient for the given servers.
	DialFleetAdmin = netstore.DialAdmin
	// AttachFleetCosts attaches per-server RPC costs from a merged fleet
	// timeline to a profile report, so skew reports name the server.
	AttachFleetCosts = profile.AttachFleet
	// RecordStatsSpan appends a "stats" span carrying a collector snapshot
	// to a tracer — the final record of a part-server's shutdown flush.
	RecordStatsSpan = metrics.RecordStatsSpan
)

// The multi-tenant job service (cmd/ripple-serve, DESIGN.md §10): an
// HTTP/JSON front end multiplexing many analytics submissions onto shared
// engines over one store, with per-tenant quotas, bounded admission, SSE
// progress streams, and restart-resume through the store SPI.
type (
	// JobService hosts many concurrent analytics jobs over one store.
	JobService = serve.Service
	// JobServiceOptions configures a JobService.
	JobServiceOptions = serve.Options
	// JobRecord is one job's durable record and API representation.
	JobRecord = serve.JobRecord
	// JobRunEnv is what the service hands a workload runner.
	JobRunEnv = serve.RunEnv
)

// NewJobService builds a job service over opts.Store; call Start on it, then
// mount Handler on an HTTP server.
func NewJobService(opts JobServiceOptions) (*JobService, error) { return serve.New(opts) }

var (
	// JobWorkloads lists the registered workload names.
	JobWorkloads = serve.Workloads
	// ErrUnknownWorkload rejects a submission naming no registered workload.
	ErrUnknownWorkload = serve.ErrUnknownWorkload
	// ErrQuotaExceeded rejects a submission over the tenant's live-job quota.
	ErrQuotaExceeded = serve.ErrQuotaExceeded
	// ErrQueueFull rejects a submission when the bounded FIFO is full.
	ErrQueueFull = serve.ErrQueueFull
)

// HTTPServer is a bound-and-serving HTTP server with fail-fast bind and
// graceful shutdown (internal/httpx); every Ripple daemon serves through it.
type HTTPServer = httpx.Server

// ServeHTTP binds addr synchronously — a bad address fails now, not inside a
// goroutine later — and serves handler in the background.
func ServeHTTP(addr string, handler http.Handler) (*HTTPServer, error) {
	return httpx.Serve(addr, handler)
}

// NewMQSystem creates a message-queuing system (paper §III-B).
func NewMQSystem(opts ...mq.SystemOption) *MQSystem { return mq.NewSystem(opts...) }

// RunMapReduce executes a single map-reduce couplet on the engine.
func RunMapReduce(e *Engine, job *MapReduceJob) (*Result, error) {
	return mapreduce.Run(e, job)
}

// RunMapReduceIterated executes an iterated map-reduce job.
func RunMapReduceIterated(e *Engine, job *MapReduceIteratedJob) (*MapReduceSummary, error) {
	return mapreduce.RunIterated(e, job)
}

// RunGraph executes a Pregel-style vertex computation.
func RunGraph(e *Engine, spec *GraphSpec) (*Result, error) {
	return graph.Run(e, spec)
}

// Collocated table operations — the "other uses of the K/V store" the
// narrow SPI enables (paper §III-A), including the co-placement join the
// paper contrasts with HaLoop (§VI).
type (
	// JoinPair is one co-placed join match.
	JoinPair = tableops.JoinPair
)

var (
	// FilterTable copies matching pairs into a co-placed table, part-locally.
	FilterTable = tableops.Filter
	// MapTableValues copies a table with transformed values, part-locally.
	MapTableValues = tableops.MapValues
	// JoinTables inner-joins two co-placed tables with zero data movement.
	JoinTables = tableops.Join
	// JoinTablesInto materializes a co-placed join into a table.
	JoinTablesInto = tableops.JoinInto
	// ReduceTable folds a table part-locally and combines the partials.
	ReduceTable = tableops.Reduce
	// CountTable counts pairs satisfying a predicate.
	CountTable = tableops.Count
	// ErrNotCoPlaced reports a join over inconsistently partitioned tables.
	ErrNotCoPlaced = tableops.ErrNotCoPlaced
)

// DumpTable copies an entire table into a map (tests, examples, small
// results only).
func DumpTable(t Table) (map[any]any, error) { return kvstore.Dump(t) }

// EnumerateAll visits every pair of a table through one serialized callback.
func EnumerateAll(t Table, fn func(key, value any) (stop bool, err error)) error {
	return kvstore.EnumerateAll(t, fn)
}

// RegisterType makes a concrete message/state/key type known to the codec so
// it can cross emulated partition boundaries. Call it once (e.g. from an
// init function) for every custom type your jobs exchange.
func RegisterType(v any) { codec.Register(v) }

package ebsp

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
)

// stateAccess abstracts where a compute invocation's state lives: local part
// views (the normal, collocated case) or remote table handles (run-anywhere
// work stealing, where the invocation may execute away from its state).
type stateAccess interface {
	get(tab int, key any) (any, bool, error)
	put(tab int, key, value any) error
	delete(tab int, key any) error
}

// localState reads and writes through collocated part views.
type localState struct {
	views []kvstore.PartView
}

func (ls *localState) get(tab int, key any) (any, bool, error) {
	return ls.views[tab].Get(key)
}

func (ls *localState) put(tab int, key, value any) error {
	return ls.views[tab].Put(key, value)
}

func (ls *localState) delete(tab int, key any) error {
	return ls.views[tab].Delete(key)
}

// countingState wraps a stateAccess with per-part get/put counters for the
// step profiler; installed only while a profiler is attached so the unprofiled
// path pays nothing. Deletes count as puts (both are writes).
type countingState struct {
	inner stateAccess
	gets  atomic.Int64
	puts  atomic.Int64
}

func (cs *countingState) get(tab int, key any) (any, bool, error) {
	cs.gets.Add(1)
	return cs.inner.get(tab, key)
}

func (cs *countingState) put(tab int, key, value any) error {
	cs.puts.Add(1)
	return cs.inner.put(tab, key, value)
}

func (cs *countingState) delete(tab int, key any) error {
	cs.puts.Add(1)
	return cs.inner.delete(tab, key)
}

// remoteState reads and writes through whole-table handles (crossing
// partition boundaries); used only under run-anywhere, where the job declared
// rare-state.
type remoteState struct {
	tables []kvstore.Table
}

func (rs *remoteState) get(tab int, key any) (any, bool, error) {
	return rs.tables[tab].Get(key)
}

func (rs *remoteState) put(tab int, key, value any) error {
	return rs.tables[tab].Put(key, value)
}

func (rs *remoteState) delete(tab int, key any) error {
	return rs.tables[tab].Delete(key)
}

// Context is the ComputeContext of paper Listing 3: a compute invocation's
// window onto its step number, key, state, input messages, outputs,
// aggregators, and broadcast data.
//
// A Context is valid only for the duration of the Compute invocation that
// received it. State-accessing methods report errors through the invocation
// (the step fails); message and aggregation methods cannot fail.
type Context struct {
	run  *jobRun
	step int
	key  any

	msgs      []any
	continued bool // enabled via continue signal (not only messages)

	state     stateAccess
	writeback map[int]any // ReadWriteState registrations

	out       outSink
	aggPrev   map[string]any
	aggLocal  map[string]any // this part's partial aggregations
	broadcast kvstore.PartView

	err error // first state-access error, surfaced after the invocation
}

// StepNum reports the current step number. Steps are numbered from 1; under
// no-sync execution there are no steps and StepNum reports 0.
func (c *Context) StepNum() int { return c.step }

// Key identifies the component being invoked.
func (c *Context) Key() any { return c.key }

// InputMessages returns the messages sent to this component in the previous
// step (possibly combined by the job's message combiner), in deterministic
// (sender, send-order) order. The returned slice is owned by the platform;
// do not retain it past the invocation.
func (c *Context) InputMessages() []any { return c.msgs }

// ReadState returns this component's value in the tab-th state table.
func (c *Context) ReadState(tab int) (any, bool) {
	v, ok, err := c.state.get(tab, c.key)
	c.fail(err)
	return v, ok
}

// WriteState sets this component's value in the tab-th state table.
func (c *Context) WriteState(tab int, s any) {
	c.fail(c.state.put(tab, c.key, s))
	delete(c.writeback, tab)
}

// ReadWriteState reads this component's value and registers it to be written
// back when the invocation finishes, so in-place mutations of a mutable state
// object persist (paper Listing 3: readWriteState). A later WriteState or
// DeleteState for the same table supersedes the registration.
func (c *Context) ReadWriteState(tab int) (any, bool) {
	v, ok := c.ReadState(tab)
	if ok {
		if c.writeback == nil {
			c.writeback = make(map[int]any)
		}
		c.writeback[tab] = v
	}
	return v, ok
}

// DeleteState removes this component's value from the tab-th state table.
func (c *Context) DeleteState(tab int) {
	c.fail(c.state.delete(tab, c.key))
	delete(c.writeback, tab)
}

// CreateState requests creation of another component's state: the entry
// appears in the tab-th state table at the synchronization barrier.
// Conflicting creations are merged by the job's state combiner.
func (c *Context) CreateState(tab int, key, state any) {
	c.out.add(envelope{
		Dst:  key,
		Kind: kindCreate,
		Val:  createPayload{Tab: tab, State: state},
	}, c.run)
}

// Send delivers a message to the component identified by key in the
// following step (enabling it).
func (c *Context) Send(key, msg any) {
	c.out.add(envelope{Dst: key, Kind: kindData, Val: msg}, c.run)
}

// AggregateValue feeds a value to the named aggregator; the combined result
// across all components is readable next step via AggregateResult.
// Unknown aggregator names are ignored (matching the platform's freedom to
// drop aggregations the job did not declare).
func (c *Context) AggregateValue(name string, value any) {
	agg, ok := c.run.job.Aggregators[name]
	if !ok {
		return
	}
	cur, ok := c.aggLocal[name]
	if !ok {
		cur = agg.Zero()
	}
	c.aggLocal[name] = agg.Combine(cur, value)
}

// AggregateResult reads the named aggregator's result from the previous step
// (nil before any input reached it).
func (c *Context) AggregateResult(name string) any { return c.aggPrev[name] }

// Broadcast reads a value from the job's reference table of immutable
// broadcast data (paper: getBroadcastDatum).
func (c *Context) Broadcast(key any) (any, bool) {
	if c.broadcast == nil {
		return nil, false
	}
	v, ok, err := c.broadcast.Get(key)
	c.fail(err)
	return v, ok
}

// DirectOutput emits one direct-job-output pair, handled by the job's
// DirectOutput exporter.
func (c *Context) DirectOutput(key, value any) {
	c.out.addDirect(key, value)
}

// fail records the first state-access error; the engine surfaces it when the
// invocation returns.
func (c *Context) fail(err error) {
	if err != nil && c.err == nil {
		c.err = err
	}
}

// finish applies pending ReadWriteState write-backs.
func (c *Context) finish() error {
	if c.err != nil {
		return c.err
	}
	if len(c.writeback) == 0 {
		return nil
	}
	tabs := make([]int, 0, len(c.writeback))
	for tab := range c.writeback {
		tabs = append(tabs, tab)
	}
	sort.Ints(tabs)
	for _, tab := range tabs {
		if err := c.state.put(tab, c.key, c.writeback[tab]); err != nil {
			return err
		}
	}
	return nil
}

// outSink receives a compute invocation's outputs. The sync path buffers
// them into spills (outBuffer); the no-sync path sends them straight to the
// destination queues (queueSink).
type outSink interface {
	add(env envelope, run *jobRun)
	addDirect(key, value any)
}

// outBuffer accumulates one execution slot's outgoing envelopes, batched per
// destination part, plus its direct output. It also performs sender-side
// pairwise combining when the job has a message combiner.
type outBuffer struct {
	srcPart  int
	parts    int
	partOf   func(key any) int
	combiner MessageCombiner

	batches   map[int][]envelope
	dataIdx   map[int]map[any]int // dstPart -> key -> index of data envelope
	seq       int
	count     int64 // envelopes added (post-combining), all kinds
	data      int64 // kindData envelopes only (drives messages_sent)
	combined  int64 // messages eliminated by sender-side combining
	bytes     int64 // encoded size of cross-part batches (profiling only)
	direct    []kvPair
	createSet int64

	// trace/span are the causal context stamped into every outgoing
	// envelope; zero for unsampled runs (and then never written to the
	// wire). Sender-side combining keeps the first envelope, so a combined
	// message's provenance stays with the slot that produced it.
	trace uint64
	span  uint64
}

type kvPair struct {
	key, value any
}

func newOutBuffer(srcPart, parts int, partOf func(any) int, combiner MessageCombiner) *outBuffer {
	return &outBuffer{
		srcPart:  srcPart,
		parts:    parts,
		partOf:   partOf,
		combiner: combiner,
		batches:  make(map[int][]envelope),
		dataIdx:  make(map[int]map[any]int),
	}
}

func (b *outBuffer) add(env envelope, run *jobRun) {
	dst := b.partOf(env.Dst)
	env.Src = b.srcPart
	if b.trace != 0 {
		env.Trace, env.Span = b.trace, b.span
	}
	if env.Kind == kindData && b.combiner != nil && keyComparable(env.Dst) {
		idx := b.dataIdx[dst]
		if idx == nil {
			idx = make(map[any]int)
			b.dataIdx[dst] = idx
		}
		if i, ok := idx[env.Dst]; ok {
			prev := &b.batches[dst][i]
			prev.Val = b.combiner.CombineMessages(env.Dst, prev.Val, env.Val)
			b.combined++
			return
		}
		env.Seq = b.seq
		b.seq++
		b.batches[dst] = append(b.batches[dst], env)
		idx[env.Dst] = len(b.batches[dst]) - 1
		b.count++
		b.data++
		return
	}
	env.Seq = b.seq
	b.seq++
	b.batches[dst] = append(b.batches[dst], env)
	b.count++
	if env.Kind == kindData {
		b.data++
	}
	if env.Kind == kindCreate {
		b.createSet++
	}
}

func (b *outBuffer) addDirect(key, value any) {
	b.direct = append(b.direct, kvPair{key: key, value: value})
}

// Per-type verdicts for keyComparable, keyed by reflect.Type.
const (
	comparableAlways uint8 = iota // values of this type always index a map
	comparableNever               // reflect says the type is not comparable
	comparableProbe               // comparable type that embeds an interface:
	// a dynamic value inside may still be incomparable, so probe per value
)

var comparableCache sync.Map // reflect.Type -> uint8

// keyComparable reports whether a key can index a Go map (slices, maps, and
// functions cannot). Uncombinable keys simply skip sender-side combining.
// The verdict is cached per concrete type, so the hot path is one sync.Map
// lookup instead of a map-insert probe under recover() per message; only
// interface-embedding types still pay the probe.
func keyComparable(k any) bool {
	if k == nil {
		return true
	}
	rt := reflect.TypeOf(k)
	v, ok := comparableCache.Load(rt)
	if !ok {
		v = classifyComparable(rt)
		comparableCache.Store(rt, v)
	}
	switch v.(uint8) {
	case comparableAlways:
		return true
	case comparableNever:
		return false
	default:
		return probeComparable(k)
	}
}

func classifyComparable(rt reflect.Type) uint8 {
	if !rt.Comparable() {
		return comparableNever
	}
	if mayHideIncomparable(rt) {
		return comparableProbe
	}
	return comparableAlways
}

// mayHideIncomparable reports whether a comparable type can still panic as a
// map key because an interface somewhere inside it may hold an incomparable
// dynamic value. Struct recursion terminates: a struct cannot contain
// itself by value.
func mayHideIncomparable(rt reflect.Type) bool {
	switch rt.Kind() {
	case reflect.Interface:
		return true
	case reflect.Struct:
		for i := 0; i < rt.NumField(); i++ {
			if mayHideIncomparable(rt.Field(i).Type) {
				return true
			}
		}
		return false
	case reflect.Array:
		return mayHideIncomparable(rt.Elem())
	default:
		return false
	}
}

// probeComparable is the slow per-value check for interface-embedding types.
func probeComparable(k any) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	_ = map[any]struct{}{k: {}}
	return true
}

// flushSpills writes the buffered batches to the transport table for
// delivery at step. Same-part batches are written through the local view
// (no partition crossing); cross-part batches go through the table handle,
// in parallel — remote writes overlap, the way a real BSP implementation
// overlaps its end-of-step sends.
func (b *outBuffer) flushSpills(run *jobRun, step int, transport kvstore.Table, local kvstore.PartView) error {
	m := run.engine.metrics
	dsts := make([]int, 0, len(b.batches))
	for dst := range b.batches {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	var wg sync.WaitGroup
	errs := make([]error, len(dsts))
	for i, dst := range dsts {
		batch := b.batches[dst]
		if len(batch) == 0 {
			continue
		}
		key := spillKey{Step: step, Dst: dst, Src: b.srcPart}
		if local != nil && dst == b.srcPart {
			if err := local.Put(key, batch); err != nil {
				return fmt.Errorf("ebsp: write spill %+v: %w", key, err)
			}
			m.AddSpills(1)
			continue
		}
		payload := any(batch)
		if run.engine.prof != nil {
			// Cross-part batches are the traffic a real deployment would put
			// on the wire. Encode once: the same bytes feed the profiler's
			// size measurement and the store's boundary marshal (the store
			// detects codec.Encoded and performs only the decode half). On
			// encode failure fall through with the raw batch so the store
			// surfaces the error the same way it always has.
			if enc, err := codec.PreEncode(batch); err == nil {
				b.bytes += int64(enc.Size())
				payload = enc
			}
		}
		wg.Add(1)
		go func(i, dst int, key spillKey, payload any) {
			defer wg.Done()
			// Spill writes are idempotent (keyed by step/src/dst), so
			// retrying a transient failure is safe. step is the delivery
			// step: attribution lands on the sender's current-step record.
			errs[i] = run.engine.retryOp(run.job.Name, step-1, b.srcPart, func() error {
				return transport.Put(key, payload)
			})
		}(i, dst, key, payload)
		m.AddSpills(1)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ebsp: write spill to part %d: %w", dsts[i], err)
		}
	}
	// Only data envelopes are messages; continue/create markers ride the
	// same spills but must not inflate the messages_sent counter.
	m.AddMessagesSent(b.data)
	m.AddMessagesCombined(b.combined)
	return nil
}

// exportDirect hands buffered direct output to the job's exporter,
// serialized by the run's mutex.
func (b *outBuffer) exportDirect(run *jobRun) error {
	if len(b.direct) == 0 || run.job.DirectOutput == nil {
		return nil
	}
	run.directMu.Lock()
	defer run.directMu.Unlock()
	for _, p := range b.direct {
		if err := run.job.DirectOutput.Export(p.key, p.value); err != nil {
			return fmt.Errorf("ebsp: direct output: %w", err)
		}
	}
	b.direct = b.direct[:0]
	return nil
}

// LoadContext is what Loaders use to establish a job's initial condition:
// initial messages, initial component states, additional enabled components,
// and initial aggregator inputs (paper §II).
type LoadContext struct {
	run *jobRun

	mu       sync.Mutex
	envs     []envelope
	seq      int
	aggs     map[string]any
	puts     []statePut
	enabled  int64
	messages int64
}

type statePut struct {
	tab        int
	key, value any
}

// SendMessage queues an initial message, delivered (and enabling its
// receiver) in the job's first step.
func (lc *LoadContext) SendMessage(key, msg any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.envs = append(lc.envs, envelope{Dst: key, Kind: kindData, Val: msg, Src: -1, Seq: lc.seq})
	lc.seq++
	lc.messages++
}

// Enable marks the component enabled for the first step even without
// messages.
func (lc *LoadContext) Enable(key any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.envs = append(lc.envs, envelope{Dst: key, Kind: kindContinue, Src: -1, Seq: lc.seq})
	lc.seq++
	lc.enabled++
}

// PutState writes an initial component state into the tab-th state table.
func (lc *LoadContext) PutState(tab int, key, state any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.puts = append(lc.puts, statePut{tab: tab, key: key, value: state})
}

// AggregateValue supplies an initial input to the named aggregator; the
// result is readable in the first step.
func (lc *LoadContext) AggregateValue(name string, value any) {
	agg, ok := lc.run.job.Aggregators[name]
	if !ok {
		return
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	cur, ok := lc.aggs[name]
	if !ok {
		cur = agg.Zero()
	}
	lc.aggs[name] = agg.Combine(cur, value)
}

package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// bloomFilter is a standard double-hashed Bloom filter over encoded key
// bytes, one per SSTable run. Sized at ~10 bits per key it keeps the
// false-positive rate around 1%, so a Get that misses every run touches
// ~0 data blocks — the property the out-of-core read path depends on.
type bloomFilter struct {
	bits []uint64
	k    uint32
}

const bloomBitsPerKey = 10

func newBloom(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nbits := n * bloomBitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	// k = ln2 * bits/key ≈ 7 for 10 bits per key.
	return &bloomFilter{bits: make([]uint64, (nbits+63)/64), k: 7}
}

// hash2 derives the double-hashing pair (h1, h2) from the key bytes.
func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	_, _ = h.Write(key)
	h1 := h.Sum64()
	// splitmix64 finalizer decorrelates the second hash from the first.
	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h2 := z ^ (z >> 31)
	return h1, h2 | 1
}

func (b *bloomFilter) add(key []byte) {
	h1, h2 := bloomHash(key)
	nbits := uint64(len(b.bits)) * 64
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloomFilter) mayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	nbits := uint64(len(b.bits)) * 64
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// marshal lays the filter out as [4B k][4B nwords][8B word]... for the
// SSTable's bloom block.
func (b *bloomFilter) marshal() []byte {
	out := make([]byte, 8+8*len(b.bits))
	binary.BigEndian.PutUint32(out[0:4], b.k)
	binary.BigEndian.PutUint32(out[4:8], uint32(len(b.bits)))
	for i, w := range b.bits {
		binary.BigEndian.PutUint64(out[8+8*i:], w)
	}
	return out
}

func unmarshalBloom(buf []byte) (*bloomFilter, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("bloom block too short: %d bytes", len(buf))
	}
	k := binary.BigEndian.Uint32(buf[0:4])
	n := binary.BigEndian.Uint32(buf[4:8])
	if k == 0 || k > 64 || int(n) != (len(buf)-8)/8 {
		return nil, fmt.Errorf("bloom block header corrupt (k=%d nwords=%d len=%d)", k, n, len(buf))
	}
	bits := make([]uint64, n)
	for i := range bits {
		bits[i] = binary.BigEndian.Uint64(buf[8+8*i:])
	}
	return &bloomFilter{bits: bits, k: k}, nil
}

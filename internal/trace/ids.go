package trace

import "math/bits"

// Deterministic span identity. The engine derives every ID from coordinates
// it already has — job name, run sequence, step, part — with the same
// fnv64a-then-splitmix64 construction the chaos injector uses for its
// per-cell coin flips, so a given seed reproduces the same trace IDs, the
// same sampling decisions, and therefore the same sampled span set on every
// run. No randomness source is consulted and no ID state is shared between
// runs.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// splitmix64 is the finalizer from the splitmix64 generator: a cheap
// avalanche that turns structured fnv output into uniformly spread bits.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// nonzero maps the one forbidden ID (0 means "no trace context") away.
func nonzero(x uint64) uint64 {
	if x == 0 {
		return 1
	}
	return x
}

// TraceID derives the trace ID for one job run: stable for a given
// (job, run, seed) triple and distinct across runs of the same job.
func TraceID(job string, run, seed int64) uint64 {
	h := fnvString(fnvOffset64, job)
	h = fnvUint64(h, uint64(run))
	h = fnvUint64(h, uint64(seed))
	return nonzero(splitmix64(h))
}

// SpanID derives the span ID for one (step, part) execution within a trace.
// The engine's conventions: (-1, -1) is the job root span, (0, -1) the load
// span, (step, -1) with step >= 1 a step span, (step, part) a sync
// part-compute span, and (0, part) a no-sync worker session.
func SpanID(traceID uint64, step, part int) uint64 {
	h := fnvUint64(fnvOffset64, traceID)
	h = fnvUint64(h, uint64(int64(step)))
	h = fnvUint64(h, uint64(int64(part)))
	return nonzero(splitmix64(h))
}

// EdgeID derives the span ID for a delivery edge between two spans.
func EdgeID(parent, child uint64) uint64 {
	h := fnvUint64(fnvOffset64, parent)
	h = fnvUint64(h, bits.RotateLeft64(child, 17))
	return nonzero(splitmix64(h))
}

// Sampler makes the head-sampling decision for a trace: a deterministic
// keep/drop derived from the trace ID and a seed, so two runs with the same
// seed sample the identical set of traces. A nil sampler keeps everything —
// instrumented code never needs nil checks. Sampling is head-only: the
// decision is made once per job run before any span is recorded. Fault,
// retry, and failover spans bypass it entirely (the tail policy — they are
// recorded unconditionally by the engine).
type Sampler struct {
	rate float64
	seed int64
}

// NewSampler builds a sampler keeping roughly rate (clamped to [0, 1]) of
// traces, decided per trace ID with the given seed.
func NewSampler(rate float64, seed int64) *Sampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Sampler{rate: rate, seed: seed}
}

// Sample reports whether the trace should be recorded. Nil samplers keep
// everything.
func (s *Sampler) Sample(traceID uint64) bool {
	if s == nil || s.rate >= 1 {
		return true
	}
	if s.rate <= 0 {
		return false
	}
	x := splitmix64(traceID ^ splitmix64(uint64(s.seed)))
	// Same uint64 -> [0,1) mapping as chaos.uniform: top 53 bits.
	return float64(x>>11)/float64(1<<53) < s.rate
}

// Rate reports the configured keep rate (1 for a nil sampler).
func (s *Sampler) Rate() float64 {
	if s == nil {
		return 1
	}
	return s.rate
}

// Seed reports the sampler's seed (0 for a nil sampler).
func (s *Sampler) Seed() int64 {
	if s == nil {
		return 0
	}
	return s.seed
}

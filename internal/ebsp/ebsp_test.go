package ebsp

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
)

func newEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	return NewEngine(store, opts...)
}

// chainCompute passes a counter along a chain of components 0..limit.
type chainCompute struct {
	limit int
}

func (c *chainCompute) Compute(ctx *Context) bool {
	for _, m := range ctx.InputMessages() {
		n := m.(int)
		ctx.WriteState(0, n)
		if n < c.limit {
			ctx.Send(ctx.Key().(int)+1, n+1)
		}
	}
	return false
}

func TestChainJobRunsToCompletion(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "chain",
		StateTables: []string{"chain_state"},
		Compute:     &chainCompute{limit: 10},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 11 {
		t.Errorf("Steps = %d, want 11", res.Steps)
	}
	tab, _ := e.Store().LookupTable("chain_state")
	for i := 0; i <= 10; i++ {
		v, ok, _ := tab.Get(i)
		if !ok || v != i {
			t.Errorf("state[%d] = %v, %v", i, v, ok)
		}
	}
	if n, _ := tab.Size(); n != 11 {
		t.Errorf("state table size = %d, want 11", n)
	}
}

func TestEmptyJobTakesNoSteps(t *testing.T) {
	e := newEngine(t)
	res, err := e.Run(&Job{
		Name:    "empty",
		Compute: ComputeFunc(func(ctx *Context) bool { return false }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 {
		t.Errorf("Steps = %d, want 0", res.Steps)
	}
}

func TestSelectiveEnablement(t *testing.T) {
	// Only components that received messages (or continued) run in a step.
	var invoked sync.Map
	e := newEngine(t)
	job := &Job{
		Name:        "selective",
		StateTables: []string{"sel_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			key := ctx.Key().(int)
			n, _ := invoked.LoadOrStore(key, new(atomic.Int64))
			n.(*atomic.Int64).Add(1)
			return false
		}),
		Loaders: []Loader{
			&StateLoader{Tab: 0, States: map[any]any{0: "a", 1: "b", 2: "c", 3: "d"}},
			&MessageLoader{Messages: []InitialMessage{{Key: 2, Message: "hit"}}},
		},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Errorf("Steps = %d, want 1", res.Steps)
	}
	count := 0
	invoked.Range(func(k, v any) bool {
		count++
		if k != 2 {
			t.Errorf("component %v invoked despite no message", k)
		}
		return true
	})
	if count != 1 {
		t.Errorf("%d components invoked, want 1", count)
	}
}

func TestContinueSignalEnablesNextStep(t *testing.T) {
	// A component that returns true runs again with no input messages.
	type obs struct {
		step int
		msgs int
	}
	var mu sync.Mutex
	var seen []obs
	e := newEngine(t)
	job := &Job{
		Name:        "continue",
		StateTables: []string{"cont_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			mu.Lock()
			seen = append(seen, obs{step: ctx.StepNum(), msgs: len(ctx.InputMessages())})
			mu.Unlock()
			return ctx.StepNum() < 3
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 7, Message: "go"}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", res.Steps)
	}
	want := []obs{{1, 1}, {2, 0}, {3, 0}}
	if len(seen) != len(want) {
		t.Fatalf("saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("invocation %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
}

func TestEnableLoaderInvokesWithoutMessages(t *testing.T) {
	var gotMsgs atomic.Int64
	var calls atomic.Int64
	e := newEngine(t)
	job := &Job{
		Name:        "enable",
		StateTables: []string{"en_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			calls.Add(1)
			gotMsgs.Add(int64(len(ctx.InputMessages())))
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1, 2, 3}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 || calls.Load() != 3 || gotMsgs.Load() != 0 {
		t.Errorf("steps=%d calls=%d msgs=%d", res.Steps, calls.Load(), gotMsgs.Load())
	}
}

// fanCompute fans messages out to many destinations, which each count them.
type fanCompute struct {
	fanout int
	counts *sync.Map
}

func (f *fanCompute) Compute(ctx *Context) bool {
	key := ctx.Key().(int)
	if key == 0 && ctx.StepNum() == 1 {
		for i := 1; i <= f.fanout; i++ {
			ctx.Send(i, 1)
		}
		return false
	}
	total := 0
	for _, m := range ctx.InputMessages() {
		total += m.(int)
	}
	n, _ := f.counts.LoadOrStore(key, new(atomic.Int64))
	n.(*atomic.Int64).Add(int64(total))
	return false
}

func TestMessageConservation(t *testing.T) {
	counts := &sync.Map{}
	e := newEngine(t)
	job := &Job{
		Name:        "fan",
		StateTables: []string{"fan_state"},
		Compute:     &fanCompute{fanout: 100, counts: counts},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	var total int64
	counts.Range(func(k, v any) bool {
		total += v.(*atomic.Int64).Load()
		return true
	})
	if total != 100 {
		t.Errorf("received %d, sent 100", total)
	}
}

// sumCombiner sums int messages pairwise.
type sumCombiner struct{}

func (sumCombiner) CombineMessages(key, m1, m2 any) any { return m1.(int) + m2.(int) }

func TestCombinerReducesDeliveries(t *testing.T) {
	var delivered atomic.Int64
	var sum atomic.Int64
	m := &metrics.Collector{}
	e := newEngine(t, WithMetrics(m))
	job := &Job{
		Name:        "combine",
		StateTables: []string{"cmb_state"},
		Combiner:    sumCombiner{},
		Compute: ComputeFunc(func(ctx *Context) bool {
			if ctx.StepNum() == 1 {
				// Every seed component sends 10 messages to component 999.
				for i := 0; i < 10; i++ {
					ctx.Send(999, 1)
				}
				return false
			}
			for _, msg := range ctx.InputMessages() {
				delivered.Add(1)
				sum.Add(int64(msg.(int)))
			}
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1, 2, 3, 4, 5, 6, 7, 8}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 80 {
		t.Errorf("combined sum = %d, want 80", sum.Load())
	}
	// 8 senders × 10 msgs: sender-side combining collapses each sender's 10
	// into 1; receiver-side collapses the rest into a single delivery.
	if delivered.Load() != 1 {
		t.Errorf("deliveries = %d, want 1", delivered.Load())
	}
	if m.Snapshot().MessagesCombined != 79 {
		t.Errorf("combined metric = %d, want 79", m.Snapshot().MessagesCombined)
	}
}

func TestAggregatorsSmallPath(t *testing.T) {
	testAggregators(t, 16)
}

func TestAggregatorsLargeTablePath(t *testing.T) {
	// Threshold 0 forces the auxiliary-table aggregation path (§IV-A).
	testAggregators(t, 0)
}

func testAggregators(t *testing.T, threshold int) {
	t.Helper()
	m := &metrics.Collector{}
	e := newEngine(t, WithAggTableThreshold(threshold), WithMetrics(m))
	var mu sync.Mutex
	read := map[int]any{} // step -> aggregate result visible that step
	job := &Job{
		Name:        "agg",
		StateTables: []string{"agg_state"},
		Aggregators: map[string]Aggregator{"total": IntSum{}, "peak": IntMax{}},
		Compute: ComputeFunc(func(ctx *Context) bool {
			mu.Lock()
			if _, ok := read[ctx.StepNum()]; !ok {
				read[ctx.StepNum()] = ctx.AggregateResult("total")
			}
			mu.Unlock()
			ctx.AggregateValue("total", ctx.Key().(int))
			ctx.AggregateValue("peak", ctx.Key().(int))
			return ctx.StepNum() < 2
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1, 2, 3, 4, 5}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 2 {
		t.Fatalf("Steps = %d", res.Steps)
	}
	if res.Aggregates["total"] != 15 {
		t.Errorf("final total = %v, want 15", res.Aggregates["total"])
	}
	if res.Aggregates["peak"] != 5 {
		t.Errorf("final peak = %v, want 5", res.Aggregates["peak"])
	}
	// Step 1 sees no prior result; step 2 sees step 1's total.
	if read[1] != nil {
		t.Errorf("step 1 read %v, want nil", read[1])
	}
	if read[2] != 15 {
		t.Errorf("step 2 read %v, want 15", read[2])
	}
	if threshold == 0 && m.Snapshot().AggregationRounds == 0 {
		t.Error("table-based aggregation path not exercised")
	}
}

func TestLoaderAggregatorInputsVisibleInFirstStep(t *testing.T) {
	e := newEngine(t)
	var got atomic.Value
	job := &Job{
		Name:        "aggseed",
		StateTables: []string{"aggseed_state"},
		Aggregators: map[string]Aggregator{"seed": IntSum{}},
		Compute: ComputeFunc(func(ctx *Context) bool {
			got.Store(ctx.AggregateResult("seed"))
			return false
		}),
		Loaders: []Loader{
			&EnableLoader{Keys: []any{1}},
			LoaderFunc(func(lc *LoadContext) error {
				lc.AggregateValue("seed", 42)
				return nil
			}),
		},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 42 {
		t.Errorf("step-1 aggregate = %v, want 42", got.Load())
	}
}

func TestBroadcastData(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	ref, err := store.CreateTable("ref", kvstore.Ubiquitous())
	if err != nil {
		t.Fatal(err)
	}
	_ = ref.Put("factor", 3)
	e := NewEngine(store)
	var got atomic.Value
	job := &Job{
		Name:           "bcast",
		StateTables:    []string{"bc_state"},
		ReferenceTable: "ref",
		Compute: ComputeFunc(func(ctx *Context) bool {
			v, ok := ctx.Broadcast("factor")
			if !ok {
				t.Error("broadcast datum missing")
			}
			got.Store(v)
			if _, ok := ctx.Broadcast("absent"); ok {
				t.Error("phantom broadcast datum")
			}
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{5}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 3 {
		t.Errorf("broadcast = %v, want 3", got.Load())
	}
}

func TestMissingReferenceTableFails(t *testing.T) {
	e := newEngine(t)
	_, err := e.Run(&Job{
		Name:           "badref",
		ReferenceTable: "missing",
		Compute:        ComputeFunc(func(*Context) bool { return false }),
	})
	if !errors.Is(err, ErrBadJob) {
		t.Errorf("err = %v", err)
	}
}

func TestDirectOutput(t *testing.T) {
	e := newEngine(t)
	out := &CollectExporter{}
	job := &Job{
		Name:         "direct",
		StateTables:  []string{"dj_state"},
		DirectOutput: out,
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.DirectOutput(ctx.Key(), ctx.StepNum())
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1, 2, 3}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	pairs := out.Pairs()
	if len(pairs) != 3 {
		t.Fatalf("direct output = %v", pairs)
	}
	for _, k := range []any{1, 2, 3} {
		if pairs[k] != 1 {
			t.Errorf("pair %v = %v", k, pairs[k])
		}
	}
}

func TestStateExporters(t *testing.T) {
	e := newEngine(t)
	exp := &CollectExporter{}
	job := &Job{
		Name:        "export",
		StateTables: []string{"ex_state"},
		Exporters:   map[string]Exporter{"ex_state": exp},
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.WriteState(0, ctx.Key().(int)*10)
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1, 2}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	pairs := exp.Pairs()
	if len(pairs) != 2 || pairs[1] != 10 || pairs[2] != 20 {
		t.Errorf("exported = %v", pairs)
	}
}

func TestCreateAndDeleteState(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "createdel",
		StateTables: []string{"cd_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			switch ctx.StepNum() {
			case 1:
				// Create a sibling component's state; message it to verify.
				ctx.CreateState(0, 100, "created")
				ctx.Send(100, "check")
			case 2:
				v, ok := ctx.ReadState(0)
				if !ok || v != "created" {
					t.Errorf("created state = %v, %v", v, ok)
				}
				ctx.DeleteState(0)
			}
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.Store().LookupTable("cd_state")
	if _, ok, _ := tab.Get(100); ok {
		t.Error("state survived DeleteState")
	}
}

// keepLarger resolves created-state conflicts by keeping the larger int.
type keepLarger struct{}

func (keepLarger) CombineStates(key, s1, s2 any) any {
	if s1.(int) >= s2.(int) {
		return s1
	}
	return s2
}

func TestCreateStateConflictCombined(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:          "conflict",
		StateTables:   []string{"cf_state"},
		StateCombiner: keepLarger{},
		Compute: ComputeFunc(func(ctx *Context) bool {
			if ctx.StepNum() == 1 {
				ctx.CreateState(0, 500, ctx.Key().(int))
			}
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{3, 9, 6}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.Store().LookupTable("cf_state")
	v, ok, _ := tab.Get(500)
	if !ok || v != 9 {
		t.Errorf("combined created state = %v, %v, want 9", v, ok)
	}
}

func TestReadWriteStateMutatesInPlace(t *testing.T) {
	codec.Register(&boxed{})
	e := newEngine(t)
	job := &Job{
		Name:        "rws",
		StateTables: []string{"rws_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			switch ctx.StepNum() {
			case 1:
				v, ok := ctx.ReadWriteState(0)
				if !ok {
					t.Error("state missing")
					return false
				}
				v.(*boxed).N = 99 // mutate; ReadWriteState persists it
				return true
			default:
				v, _ := ctx.ReadState(0)
				if v.(*boxed).N != 99 {
					t.Errorf("mutation not persisted: %v", v)
				}
				return false
			}
		}),
		Loaders: []Loader{
			&StateLoader{Tab: 0, States: map[any]any{1: &boxed{N: 1}}},
			&EnableLoader{Keys: []any{1}},
		},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
}

type boxed struct{ N int }

func TestAborterStopsJob(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "abort",
		StateTables: []string{"ab_state"},
		Aggregators: map[string]Aggregator{"n": IntSum{}},
		Compute: ComputeFunc(func(ctx *Context) bool {
			ctx.AggregateValue("n", 1)
			return true // would run forever
		}),
		Aborter: AborterFunc(func(step int, aggs map[string]any) bool {
			return step >= 4
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Error("not aborted")
	}
	if res.Steps != 4 {
		t.Errorf("Steps = %d, want 4", res.Steps)
	}
}

func TestMaxStepsBounds(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "maxsteps",
		StateTables: []string{"ms_state"},
		MaxSteps:    5,
		Compute:     ComputeFunc(func(ctx *Context) bool { return true }),
		Loaders:     []Loader{&EnableLoader{Keys: []any{1}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 5 {
		t.Errorf("Steps = %d, want 5", res.Steps)
	}
	if res.Aborted {
		t.Error("MaxSteps must not report Aborted")
	}
}

func TestNeedsOrderInvocationOrder(t *testing.T) {
	// With needs-order, collocated invocations are sorted by key. Track
	// per-part invocation order and verify monotonicity.
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store)
	var mu sync.Mutex
	perPart := map[int][]int{}
	tabName := "ord_state"
	job := &Job{
		Name:        "ordered",
		StateTables: []string{tabName},
		Properties:  Properties{NeedsOrder: true},
		Compute: ComputeFunc(func(ctx *Context) bool {
			tab, _ := store.LookupTable(tabName)
			part := tab.PartOf(ctx.Key())
			mu.Lock()
			perPart[part] = append(perPart[part], ctx.Key().(int))
			mu.Unlock()
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{9, 3, 7, 1, 8, 2, 6, 0, 5, 4}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	for part, keys := range perPart {
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[i-1] {
				t.Errorf("part %d invoked out of order: %v", part, keys)
				break
			}
		}
	}
}

func TestJobValidation(t *testing.T) {
	e := newEngine(t)
	cases := []struct {
		name string
		job  *Job
		want error
	}{
		{"no compute", &Job{}, ErrNoCompute},
		{"dup state table", &Job{
			Compute:     ComputeFunc(func(*Context) bool { return false }),
			StateTables: []string{"a", "a"},
		}, ErrBadJob},
		{"empty state table name", &Job{
			Compute:     ComputeFunc(func(*Context) bool { return false }),
			StateTables: []string{""},
		}, ErrBadJob},
		{"exporter for unknown table", &Job{
			Compute:   ComputeFunc(func(*Context) bool { return false }),
			Exporters: map[string]Exporter{"zzz": &CollectExporter{}},
		}, ErrBadJob},
		{"negative max steps", &Job{
			Compute:  ComputeFunc(func(*Context) bool { return false }),
			MaxSteps: -1,
		}, ErrBadJob},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := e.Run(c.job); !errors.Is(err, c.want) {
				t.Errorf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestPropertyViolationNoContinue(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "violate",
		StateTables: []string{"v_state"},
		Properties:  Properties{NoContinue: true},
		Compute:     ComputeFunc(func(ctx *Context) bool { return true }),
		Loaders:     []Loader{&EnableLoader{Keys: []any{1}}},
	}
	if _, err := e.Run(job); !errors.Is(err, ErrPropertyViolated) {
		t.Errorf("err = %v, want ErrPropertyViolated", err)
	}
}

func TestPropertyViolationOneMsg(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "violate2",
		StateTables: []string{"v2_state"},
		Properties:  Properties{OneMsg: true, NoContinue: true},
		Compute: ComputeFunc(func(ctx *Context) bool {
			if ctx.StepNum() == 1 {
				ctx.Send(42, "a")
				ctx.Send(42, "b") // two messages, same key, same step
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 1, Message: "go"}}}},
	}
	if _, err := e.Run(job); !errors.Is(err, ErrPropertyViolated) {
		t.Errorf("err = %v, want ErrPropertyViolated", err)
	}
}

func TestComputePanicBecomesError(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "panic",
		StateTables: []string{"p_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			panic("boom")
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
	}
	if _, err := e.Run(job); err == nil {
		t.Error("panicking compute returned nil error")
	}
}

func TestPureMessageJobWithPartsHint(t *testing.T) {
	e := newEngine(t)
	var calls atomic.Int64
	job := &Job{
		Name:      "pure",
		PartsHint: 3,
		Compute: ComputeFunc(func(ctx *Context) bool {
			calls.Add(1)
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1, 2, 3, 4, 5}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 || calls.Load() != 5 {
		t.Errorf("steps=%d calls=%d", res.Steps, calls.Load())
	}
	// The private placement table is cleaned up.
	for _, name := range e.Store().Tables() {
		if name != "" && len(name) >= 6 && name[:6] == "__ebsp" {
			t.Errorf("private table %q leaked", name)
		}
	}
}

func TestStepNumbersAreSequential(t *testing.T) {
	var mu sync.Mutex
	var steps []int
	e := newEngine(t)
	job := &Job{
		Name:        "steps",
		StateTables: []string{"sn_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			mu.Lock()
			steps = append(steps, ctx.StepNum())
			mu.Unlock()
			return ctx.StepNum() < 4
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	if len(steps) != 4 {
		t.Fatalf("steps = %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("steps = %v, want %v", steps, want)
			break
		}
	}
}

func TestTableLoader(t *testing.T) {
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	src, _ := store.CreateTable("src")
	for i := 0; i < 10; i++ {
		_ = src.Put(i, i*i)
	}
	e := NewEngine(store)
	var sum atomic.Int64
	job := &Job{
		Name:        "tabload",
		StateTables: []string{"tl_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			for _, m := range ctx.InputMessages() {
				sum.Add(int64(m.(int)))
			}
			return false
		}),
		Loaders: []Loader{&TableLoader{
			Table: "src",
			Store: store,
			Each: func(k, v any, lc *LoadContext) error {
				lc.SendMessage(k, v)
				return nil
			},
		}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < 10; i++ {
		want += int64(i * i)
	}
	if sum.Load() != want {
		t.Errorf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := &metrics.Collector{}
	e := newEngine(t, WithMetrics(m))
	job := &Job{
		Name:        "metrics",
		StateTables: []string{"m_state"},
		Compute:     &chainCompute{limit: 5},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Steps != 6 || snap.Barriers != 6 {
		t.Errorf("steps/barriers = %d/%d", snap.Steps, snap.Barriers)
	}
	if snap.ComputeInvocations != 6 {
		t.Errorf("invocations = %d", snap.ComputeInvocations)
	}
	if snap.MessagesSent != 6 { // 1 initial + 5 forwarded
		t.Errorf("messages = %d", snap.MessagesSent)
	}
}

package sssp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ripple/internal/ebsp"
	"ripple/internal/gridstore"
	"ripple/internal/workload"
)

// TestSelectiveOnGridstore runs the selective variant on the WXS-like store,
// proving the application is store-portable.
func TestSelectiveOnGridstore(t *testing.T) {
	g := genGraph(t, 200, 900, 31)
	store := gridstore.New(gridstore.WithParts(6))
	t.Cleanup(func() { _ = store.Close() })
	drv := NewSelective(ebsp.NewEngine(store), "sel", 0, 6)
	if err := drv.Init(g); err != nil {
		t.Fatal(err)
	}
	got, err := drv.Distances()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "gridstore selective", got, g, 0)

	batch := workload.ChangeBatch(rand.New(rand.NewSource(1)), 200, 60, 1.3, 0.5)
	for _, c := range batch {
		g.Apply(c)
	}
	if _, err := drv.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	got, _ = drv.Distances()
	checkAgainstReference(t, "gridstore selective after batch", got, g, 0)
}

// TestIncrementalEqualsRecomputeProperty: after any random change batch, the
// incrementally maintained annotations equal a from-scratch BFS.
func TestIncrementalEqualsRecomputeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vertices := 40 + rng.Intn(120)
		edges := vertices + rng.Intn(vertices*3)
		g, err := workload.PowerLawUndirected(rng, vertices, edges, 1.3)
		if err != nil {
			return true // too-dense request; not this property's concern
		}
		e := newEngine(t, nil)
		drv := NewSelective(e, "p_sel", 0, 4)
		if err := drv.Init(cloneGraph(g)); err != nil {
			return false
		}
		for b := 0; b < 3; b++ {
			batch := workload.ChangeBatch(rng, vertices, 10+rng.Intn(30), 1.3, rng.Float64())
			for _, c := range batch {
				g.Apply(c)
			}
			if _, err := drv.ApplyBatch(batch); err != nil {
				return false
			}
			got, err := drv.Distances()
			if err != nil {
				return false
			}
			want := ReferenceDistances(g, 0)
			for v, w := range want {
				if got[v] != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

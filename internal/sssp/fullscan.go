package sssp

import (
	"fmt"

	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/mapreduce"
	"ripple/internal/workload"
)

// FsState is the full-scan variant's per-vertex state: the most recently
// computed annotation and the neighbor IDs — no caches, so every update wave
// must scan the whole graph.
type FsState struct {
	Dist int32
	Nbrs []int32
}

// fsMsg is the full-scan map phase's state-propagating message: the full
// state plus the minimum distance value heard from a neighbor, accumulated
// by the combiner.
type fsMsg struct {
	HasState bool
	State    FsState
	MinNbr   int32
}

// fsCombine is the variant's "combiner with an obvious implementation".
func fsCombine(_, a, b any) any {
	ma := asFsMsg(a)
	mb := asFsMsg(b)
	if mb.HasState {
		ma.State = mb.State
		ma.HasState = true
	}
	if mb.MinNbr < ma.MinNbr {
		ma.MinNbr = mb.MinNbr
	}
	return ma
}

func asFsMsg(v any) fsMsg {
	switch m := v.(type) {
	case fsMsg:
		return m
	case int32:
		return fsMsg{MinNbr: m}
	default:
		return fsMsg{MinNbr: Inf}
	}
}

// FullScan maintains distances with the MapReduce-style variant: each wave
// is a series of MapReduce-like two-step jobs driven externally until an
// aggregator reports that no vertex's distance changed.
type FullScan struct {
	engine *ebsp.Engine
	table  string
	source int
	parts  int
}

// NewFullScan creates a driver; Init must be called before ApplyBatch.
func NewFullScan(engine *ebsp.Engine, table string, source, parts int) *FullScan {
	return &FullScan{engine: engine, table: table, source: source, parts: parts}
}

// Init loads the graph and computes the initial annotations with decrease
// waves from a fresh +∞ labeling.
func (f *FullScan) Init(g *workload.UndirectedGraph) error {
	if err := checkSource(f.source, g.NumVertices); err != nil {
		return err
	}
	opts := []kvstore.TableOption{}
	if f.parts > 0 {
		opts = append(opts, kvstore.WithParts(f.parts))
	}
	tab, err := f.engine.Store().CreateTable(f.table, opts...)
	if err != nil {
		return err
	}
	for u := 0; u < g.NumVertices; u++ {
		d := Inf
		if u == f.source {
			d = 0
		}
		if err := tab.Put(u, FsState{Dist: d, Nbrs: g.Neighbors(u)}); err != nil {
			return err
		}
	}
	_, err = f.runWave(waveDecrease)
	return err
}

// Distances reads all current annotations.
func (f *FullScan) Distances() (map[int]int32, error) {
	tab, ok := f.engine.Store().LookupTable(f.table)
	if !ok {
		return nil, fmt.Errorf("sssp: table %q missing", f.table)
	}
	pairs, err := kvstore.Dump(tab)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int32, len(pairs))
	for k, v := range pairs {
		out[k.(int)] = v.(FsState).Dist
	}
	return out, nil
}

// ApplyBatch applies the changes to the stored graph and recomputes the
// annotations with full-scan waves.
func (f *FullScan) ApplyBatch(batch []workload.Change) (*BatchStats, error) {
	tab, ok := f.engine.Store().LookupTable(f.table)
	if !ok {
		return nil, fmt.Errorf("sssp: table %q missing", f.table)
	}
	stats := &BatchStats{}
	for _, c := range batch {
		if c.U == c.V || c.U < 0 || c.V < 0 {
			continue
		}
		applied, err := f.applyChange(tab, c)
		if err != nil {
			return nil, err
		}
		if applied {
			stats.Applied++
			if c.Kind == workload.RemoveEdge {
				stats.HardCase = true
			}
		}
	}
	if stats.Applied == 0 {
		return stats, nil
	}
	if stats.HardCase {
		sum, err := f.runWave(waveInvalidate)
		if err != nil {
			return nil, err
		}
		stats.Steps += sum.Steps
		stats.Jobs += sum.Iterations
	}
	sum, err := f.runWave(waveDecrease)
	if err != nil {
		return nil, err
	}
	stats.Steps += sum.Steps
	stats.Jobs += sum.Iterations
	return stats, nil
}

func (f *FullScan) applyChange(tab kvstore.Table, c workload.Change) (bool, error) {
	getState := func(u int) (FsState, bool, error) {
		raw, ok, err := tab.Get(u)
		if err != nil || !ok {
			return FsState{}, false, err
		}
		return raw.(FsState), true, nil
	}
	su, ok, err := getState(c.U)
	if err != nil || !ok {
		return false, err
	}
	sv, ok, err := getState(c.V)
	if err != nil || !ok {
		return false, err
	}
	iu := indexOf(su.Nbrs, int32(c.V))
	switch c.Kind {
	case workload.AddEdge:
		if iu >= 0 {
			return false, nil
		}
		su.Nbrs = append(su.Nbrs, int32(c.V))
		sv.Nbrs = append(sv.Nbrs, int32(c.U))
	case workload.RemoveEdge:
		if iu < 0 {
			return false, nil
		}
		su.Nbrs = cut(su.Nbrs, iu)
		if iv := indexOf(sv.Nbrs, int32(c.U)); iv >= 0 {
			sv.Nbrs = cut(sv.Nbrs, iv)
		}
	default:
		return false, nil
	}
	if err := tab.Put(c.U, su); err != nil {
		return false, err
	}
	if err := tab.Put(c.V, sv); err != nil {
		return false, err
	}
	return true, nil
}

const changedAggregator = "sssp.changed"

// runWave drives MapReduce-like jobs — each a fresh two-step job scanning
// the whole graph — until an aggregator counts zero changed vertices.
func (f *FullScan) runWave(wave int) (*mapreduce.Summary, error) {
	job := &mapreduce.IteratedJob{
		Name:                 fmt.Sprintf("sssp.fullscan.%s.w%d", f.table, wave),
		Table:                f.table,
		Mapper:               &fsMapper{},
		Reducer:              &fsReducer{wave: wave, source: int32(f.source)},
		Combiner:             fsCombine,
		Aggregators:          map[string]ebsp.Aggregator{changedAggregator: ebsp.IntSum{}},
		FreshJobPerIteration: true,
		MaxIterations:        1 << 20, // converges via the aggregator
		Converged: func(_ int, aggs map[string]any) bool {
			n, ok := aggs[changedAggregator].(int)
			return !ok || n == 0
		},
	}
	return mapreduce.RunIterated(f.engine, job)
}

// fsMapper sends each vertex a full state-propagating message to itself and
// a distance update along each incident edge.
type fsMapper struct{}

func (fsMapper) Map(key, value any, emit mapreduce.Emitter) error {
	st, ok := value.(FsState)
	if !ok {
		return fmt.Errorf("sssp: map saw %T", value)
	}
	emit(key, fsMsg{HasState: true, State: st, MinNbr: Inf})
	d := st.Dist
	for _, nbr := range st.Nbrs {
		emit(int(nbr), d)
	}
	return nil
}

// fsReducer combines the input messages — necessarily producing a
// preliminary full state — computes the new distance value per the wave,
// counts changes in the aggregator, and writes the state back.
type fsReducer struct {
	wave   int
	source int32
}

func (r *fsReducer) ReduceWithContext(pc mapreduce.PhaseContext, key any, values []any, emit mapreduce.Emitter) error {
	merged := fsMsg{MinNbr: Inf}
	for _, v := range values {
		merged = fsCombine(key, merged, v).(fsMsg)
	}
	if !merged.HasState {
		return nil // a distance update reached a vertex with no state
	}
	st := merged.State
	vid := int32(key.(int))
	newDist := st.Dist
	switch r.wave {
	case waveInvalidate:
		// If no remaining neighbor supports the previous value, it becomes
		// +∞. The minimum neighbor value tells all: support exists exactly
		// when min == previous-1 (or the vertex is the source).
		if vid != r.source && st.Dist < Inf && merged.MinNbr != st.Dist-1 {
			newDist = Inf
		}
	case waveDecrease:
		if vid == r.source {
			newDist = 0
		} else if merged.MinNbr < Inf && merged.MinNbr+1 < newDist {
			newDist = merged.MinNbr + 1
		}
	}
	if newDist != st.Dist {
		pc.AggregateValue(changedAggregator, 1)
		st.Dist = newDist
	}
	emit(key, st)
	return nil
}

// Reduce implements mapreduce.Reducer for completeness.
func (r *fsReducer) Reduce(key any, values []any, emit mapreduce.Emitter) error {
	return fmt.Errorf("sssp: reducer requires phase context")
}

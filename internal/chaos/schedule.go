// Package chaos provides deterministic, seeded fault injection behind the
// kvstore.Store and mq.System SPIs (the narrow-SPI design makes both pure
// decorators). A declarative Schedule says *what* can go wrong — transient
// store/mq errors, latency spikes, FIFO-preserving message duplication, and
// scheduled primary kills — and a seeded hash decides *when*: every decision
// is a pure function of (seed, fault kind, table/set, part, per-cell op
// index), so the same seed over the same workload injects the same fault set
// regardless of thread interleaving. The injected-fault trace is available
// as a sorted Record list for reproducibility checks.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kill schedules one primary kill: after the wrapped store has dispatched
// AfterDispatches agents, the primary replica of Table's part Part is failed
// (gridstore promotes a survivor and bumps the shard epoch).
type Kill struct {
	Table           string
	Part            int
	AfterDispatches int64
}

// Partition is one scheduled one-way partition window on the wire between
// the client and one part-server, measured on that direction's frame clock:
// frames (and heartbeats) crossing in the partitioned direction are lost
// while the window is open, frames the other way flow normally — the
// classic asymmetric network split.
type Partition struct {
	// C2S partitions client→server traffic (requests lost); otherwise
	// server→client (responses lost).
	C2S bool
	// Server is the part-server index the window applies to.
	Server int
	// FromFrame opens the window when the direction's frame clock reaches
	// this count.
	FromFrame int64
	// Frames is the window's width in frames.
	Frames int64
}

// NetKill schedules one part-server process kill: when the client has sent
// AfterFrames data frames to Server, the injector's OnNetKill callback
// fires (asynchronously) so a harness can kill the child process mid-step.
type NetKill struct {
	Server      int
	AfterFrames int64
}

// Schedule declares a reproducible fault-injection plan. The zero value
// injects nothing. Rates are probabilities in [0, 1] evaluated per
// operation by the seeded decision hash.
type Schedule struct {
	// Seed drives every injection decision. Two injectors with the same
	// schedule running the same workload inject the same faults.
	Seed int64

	// StoreErrRate fails table client operations (Get/Put/Delete/Size and
	// enumeration entry) with kvstore.ErrTransient; the operation does not
	// take effect.
	StoreErrRate float64
	// StoreDelay/StoreDelayRate inject latency spikes into table client
	// operations (the operation still succeeds).
	StoreDelay     time.Duration
	StoreDelayRate float64
	// AgentErrRate fails agent dispatches (RunAgent/RunTransaction) at entry
	// with kvstore.ErrTransient, before any agent code runs.
	AgentErrRate float64

	// MQErrRate fails cross-part Puts with mq.ErrTransient (not delivered).
	MQErrRate float64
	// MQDupRate delivers one extra adjacent copy of the message
	// (per-(sender,receiver) FIFO is preserved).
	MQDupRate float64
	// MQDelay/MQDelayRate add delivery-latency jitter to cross-part Puts.
	MQDelay     time.Duration
	MQDelayRate float64

	// Kills are scheduled primary kills, fired at agent-dispatch boundaries.
	Kills []Kill

	// NetConnDropRate tears down the client↔server connection before a
	// frame is sent (the transport re-dials on the next call).
	NetConnDropRate float64
	// NetDropRate silently loses request frames (the client times out and
	// retries).
	NetDropRate float64
	// NetLossRate silently loses response frames (the request executed;
	// the client times out — an at-least-once retry).
	NetLossRate float64
	// NetDupRate delivers response frames twice (the duplicate is shed by
	// frame-ID correlation).
	NetDupRate float64
	// NetDelay/NetDelayRate postpone request frames.
	NetDelay     time.Duration
	NetDelayRate float64
	// Partitions are scheduled one-way partition windows.
	Partitions []Partition
	// NetKills are scheduled part-server process kills (see NetKill).
	NetKills []NetKill

	// DiskFsyncErrRate fails WAL and SSTable fsyncs in the disk store with a
	// retryable error (the write is not acknowledged as durable).
	DiskFsyncErrRate float64
	// DiskSlowFsync/DiskSlowFsyncRate stall fsyncs, modeling a saturated or
	// degraded device (the fsync still succeeds).
	DiskSlowFsync     time.Duration
	DiskSlowFsyncRate float64
	// DiskTornTailRate clips bytes off a write-ahead log when it is opened,
	// simulating a torn final write from the previous crash; recovery must
	// clip the tail at the last whole record rather than fail.
	DiskTornTailRate float64
}

// Parse decodes the textual schedule form used by `ripple-bench -chaos`:
//
//	seed=7,store.err=0.01,store.delay=1ms@0.05,agent.err=0.02,
//	mq.err=0.01,mq.dup=0.05,mq.delay=2ms@0.1,kill=pages:3@40
//
// plus the wire-level fault classes for networked part-server runs:
//
//	net.conn=0.005,net.drop=0.01,net.loss=0.01,net.dup=0.05,
//	net.delay=2ms@0.05,partition=c2s:1@50+200,netkill=1@120
//
// and the disk fault classes for the LSM disk store:
//
//	disk.fsync=0.01,disk.slow=5ms@0.02,disk.torn=0.5
//
// Fields are comma-separated `key=value` pairs; `kill`, `partition`, and
// `netkill` may repeat. Rate fields take a probability; delay fields take
// `duration@probability`; `partition` takes `direction:server@from+frames`
// (direction c2s or s2c); `netkill` takes `server@afterFrames`.
func Parse(s string) (Schedule, error) {
	var sched Schedule
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Schedule{}, fmt.Errorf("chaos: bad schedule field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "seed":
			sched.Seed, err = strconv.ParseInt(val, 10, 64)
		case "store.err":
			sched.StoreErrRate, err = parseRate(val)
		case "store.delay":
			sched.StoreDelay, sched.StoreDelayRate, err = parseDelay(val)
		case "agent.err":
			sched.AgentErrRate, err = parseRate(val)
		case "mq.err":
			sched.MQErrRate, err = parseRate(val)
		case "mq.dup":
			sched.MQDupRate, err = parseRate(val)
		case "mq.delay":
			sched.MQDelay, sched.MQDelayRate, err = parseDelay(val)
		case "kill":
			var k Kill
			k, err = parseKill(val)
			sched.Kills = append(sched.Kills, k)
		case "net.conn":
			sched.NetConnDropRate, err = parseRate(val)
		case "net.drop":
			sched.NetDropRate, err = parseRate(val)
		case "net.loss":
			sched.NetLossRate, err = parseRate(val)
		case "net.dup":
			sched.NetDupRate, err = parseRate(val)
		case "net.delay":
			sched.NetDelay, sched.NetDelayRate, err = parseDelay(val)
		case "partition":
			var p Partition
			p, err = parsePartition(val)
			sched.Partitions = append(sched.Partitions, p)
		case "netkill":
			var nk NetKill
			nk, err = parseNetKill(val)
			sched.NetKills = append(sched.NetKills, nk)
		case "disk.fsync":
			sched.DiskFsyncErrRate, err = parseRate(val)
		case "disk.slow":
			sched.DiskSlowFsync, sched.DiskSlowFsyncRate, err = parseDelay(val)
		case "disk.torn":
			sched.DiskTornTailRate, err = parseRate(val)
		default:
			return Schedule{}, fmt.Errorf("chaos: unknown schedule field %q", key)
		}
		if err != nil {
			return Schedule{}, fmt.Errorf("chaos: field %q: %w", field, err)
		}
	}
	return sched, nil
}

func parseRate(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", p)
	}
	return p, nil
}

// parseDelay decodes `duration@probability`, e.g. "2ms@0.1". A bare duration
// means probability 1.
func parseDelay(s string) (time.Duration, float64, error) {
	durPart, ratePart, hasRate := strings.Cut(s, "@")
	d, err := time.ParseDuration(durPart)
	if err != nil {
		return 0, 0, err
	}
	if d < 0 {
		return 0, 0, fmt.Errorf("negative delay %v", d)
	}
	rate := 1.0
	if hasRate {
		if rate, err = parseRate(ratePart); err != nil {
			return 0, 0, err
		}
	}
	return d, rate, nil
}

// parseKill decodes `table:part@afterDispatches`.
func parseKill(s string) (Kill, error) {
	spec, afterPart, ok := strings.Cut(s, "@")
	if !ok {
		return Kill{}, fmt.Errorf("kill %q: want table:part@dispatches", s)
	}
	table, partStr, ok := strings.Cut(spec, ":")
	if !ok || table == "" {
		return Kill{}, fmt.Errorf("kill %q: want table:part@dispatches", s)
	}
	part, err := strconv.Atoi(partStr)
	if err != nil {
		return Kill{}, fmt.Errorf("kill %q: part: %w", s, err)
	}
	after, err := strconv.ParseInt(afterPart, 10, 64)
	if err != nil {
		return Kill{}, fmt.Errorf("kill %q: dispatches: %w", s, err)
	}
	return Kill{Table: table, Part: part, AfterDispatches: after}, nil
}

// parsePartition decodes `direction:server@from+frames`, e.g. "c2s:1@50+200".
func parsePartition(s string) (Partition, error) {
	spec, window, ok := strings.Cut(s, "@")
	if !ok {
		return Partition{}, fmt.Errorf("partition %q: want direction:server@from+frames", s)
	}
	dir, serverStr, ok := strings.Cut(spec, ":")
	if !ok || (dir != "c2s" && dir != "s2c") {
		return Partition{}, fmt.Errorf("partition %q: direction must be c2s or s2c", s)
	}
	server, err := strconv.Atoi(serverStr)
	if err != nil {
		return Partition{}, fmt.Errorf("partition %q: server: %w", s, err)
	}
	fromStr, framesStr, ok := strings.Cut(window, "+")
	if !ok {
		return Partition{}, fmt.Errorf("partition %q: want from+frames", s)
	}
	from, err := strconv.ParseInt(fromStr, 10, 64)
	if err != nil {
		return Partition{}, fmt.Errorf("partition %q: from: %w", s, err)
	}
	frames, err := strconv.ParseInt(framesStr, 10, 64)
	if err != nil {
		return Partition{}, fmt.Errorf("partition %q: frames: %w", s, err)
	}
	if frames <= 0 {
		return Partition{}, fmt.Errorf("partition %q: empty window", s)
	}
	return Partition{C2S: dir == "c2s", Server: server, FromFrame: from, Frames: frames}, nil
}

// parseNetKill decodes `server@afterFrames`.
func parseNetKill(s string) (NetKill, error) {
	serverStr, afterStr, ok := strings.Cut(s, "@")
	if !ok {
		return NetKill{}, fmt.Errorf("netkill %q: want server@afterFrames", s)
	}
	server, err := strconv.Atoi(serverStr)
	if err != nil {
		return NetKill{}, fmt.Errorf("netkill %q: server: %w", s, err)
	}
	after, err := strconv.ParseInt(afterStr, 10, 64)
	if err != nil {
		return NetKill{}, fmt.Errorf("netkill %q: frames: %w", s, err)
	}
	return NetKill{Server: server, AfterFrames: after}, nil
}

// String renders the schedule in the form Parse accepts.
func (s Schedule) String() string {
	var parts []string
	add := func(f string, args ...any) { parts = append(parts, fmt.Sprintf(f, args...)) }
	add("seed=%d", s.Seed)
	if s.StoreErrRate > 0 {
		add("store.err=%g", s.StoreErrRate)
	}
	if s.StoreDelayRate > 0 && s.StoreDelay > 0 {
		add("store.delay=%s@%g", s.StoreDelay, s.StoreDelayRate)
	}
	if s.AgentErrRate > 0 {
		add("agent.err=%g", s.AgentErrRate)
	}
	if s.MQErrRate > 0 {
		add("mq.err=%g", s.MQErrRate)
	}
	if s.MQDupRate > 0 {
		add("mq.dup=%g", s.MQDupRate)
	}
	if s.MQDelayRate > 0 && s.MQDelay > 0 {
		add("mq.delay=%s@%g", s.MQDelay, s.MQDelayRate)
	}
	kills := append([]Kill(nil), s.Kills...)
	sort.Slice(kills, func(i, j int) bool { return kills[i].AfterDispatches < kills[j].AfterDispatches })
	for _, k := range kills {
		add("kill=%s:%d@%d", k.Table, k.Part, k.AfterDispatches)
	}
	if s.NetConnDropRate > 0 {
		add("net.conn=%g", s.NetConnDropRate)
	}
	if s.NetDropRate > 0 {
		add("net.drop=%g", s.NetDropRate)
	}
	if s.NetLossRate > 0 {
		add("net.loss=%g", s.NetLossRate)
	}
	if s.NetDupRate > 0 {
		add("net.dup=%g", s.NetDupRate)
	}
	if s.NetDelayRate > 0 && s.NetDelay > 0 {
		add("net.delay=%s@%g", s.NetDelay, s.NetDelayRate)
	}
	partitions := append([]Partition(nil), s.Partitions...)
	sort.Slice(partitions, func(i, j int) bool { return partitions[i].FromFrame < partitions[j].FromFrame })
	for _, p := range partitions {
		dir := "s2c"
		if p.C2S {
			dir = "c2s"
		}
		add("partition=%s:%d@%d+%d", dir, p.Server, p.FromFrame, p.Frames)
	}
	netKills := append([]NetKill(nil), s.NetKills...)
	sort.Slice(netKills, func(i, j int) bool { return netKills[i].AfterFrames < netKills[j].AfterFrames })
	for _, nk := range netKills {
		add("netkill=%d@%d", nk.Server, nk.AfterFrames)
	}
	if s.DiskFsyncErrRate > 0 {
		add("disk.fsync=%g", s.DiskFsyncErrRate)
	}
	if s.DiskSlowFsyncRate > 0 && s.DiskSlowFsync > 0 {
		add("disk.slow=%s@%g", s.DiskSlowFsync, s.DiskSlowFsyncRate)
	}
	if s.DiskTornTailRate > 0 {
		add("disk.torn=%g", s.DiskTornTailRate)
	}
	return strings.Join(parts, ",")
}

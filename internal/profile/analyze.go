package profile

import (
	"sort"
)

// StepSkew is the skew analysis of one synchronized step: how unevenly the
// step's work was spread over its parts and who paid for it.
type StepSkew struct {
	Job   string `json:"job"`
	Step  int    `json:"step"`
	Parts int    `json:"parts"`

	MaxComputeNS    int64 `json:"max_compute_ns"`
	MedianComputeNS int64 `json:"median_compute_ns"`
	TotalComputeNS  int64 `json:"total_compute_ns"`
	// SkewRatio is max/median part compute time: 1.0 is perfectly balanced;
	// a step whose slowest part took 4x the median scores 4.0.
	SkewRatio float64 `json:"skew_ratio"`
	// StragglerPart is the part that set the step's critical path.
	StragglerPart int `json:"straggler_part"`
	// BarrierWaitNS is the total time all parts idled behind the straggler.
	BarrierWaitNS int64 `json:"barrier_wait_ns"`
	// CriticalPathShare is (max-median)/max: the fraction of the step's
	// critical path attributable to skew — what the step would save if the
	// straggler ran at the median.
	CriticalPathShare float64 `json:"critical_path_share"`
}

// PartRank scores one part's contribution to straggling across a whole run.
type PartRank struct {
	Job  string `json:"job"`
	Part int    `json:"part"`
	// StepsSlowest counts the steps in which the part was the straggler.
	StepsSlowest int `json:"steps_slowest"`
	// ExcessNS sums the part's compute time beyond each step's median — the
	// wall-clock it alone added to the job's critical path.
	ExcessNS int64 `json:"excess_ns"`
	// ComputeNS is the part's total compute time.
	ComputeNS int64 `json:"compute_ns"`
	// Faults and Retries aggregate the part's fault/retry attribution.
	Faults  int64 `json:"faults,omitempty"`
	Retries int64 `json:"retries,omitempty"`
	// HotEdges is the part's heaviest incoming causal edges, filled in by
	// AttachLineage when a sampled span dump is available.
	HotEdges []HotEdge `json:"hot_edges,omitempty"`
}

// Report is the full skew analysis of a set of records.
type Report struct {
	// Records is the number of profiles analyzed.
	Records int `json:"records"`
	// Steps holds one StepSkew per (job, step) with >= 2 parts, in
	// (job, step) order.
	Steps []StepSkew `json:"steps"`
	// Stragglers ranks parts by excess critical-path time, worst first
	// (top-K, K from Analyze).
	Stragglers []PartRank `json:"stragglers"`
	// HotKeys ranks component keys by delivered messages, heaviest first
	// (top-K; only present when the recorder tracked keys).
	HotKeys []KeyCount `json:"hot_keys,omitempty"`
	// MaxSkewRatio is the worst step skew seen, and MeanSkewRatio the mean
	// over all analyzed steps.
	MaxSkewRatio  float64 `json:"max_skew_ratio"`
	MeanSkewRatio float64 `json:"mean_skew_ratio"`
	// BarrierWaitNS is the total barrier idle time across all records —
	// the run's aggregate price of synchronization skew.
	BarrierWaitNS int64 `json:"barrier_wait_ns"`
	// NoSyncParts counts step-0 (no-sync) records, which have no barrier and
	// are excluded from the per-step skew table.
	NoSyncParts int `json:"nosync_parts,omitempty"`
	// Servers ranks part-servers by client-observed RPC time, worst first,
	// filled in by AttachFleet when a merged fleet timeline is available.
	Servers []ServerCost `json:"servers,omitempty"`
}

// TopStraggler returns the worst-ranked part, or (-1, false) when the report
// has no straggler ranking.
func (r *Report) TopStraggler() (PartRank, bool) {
	if r == nil || len(r.Stragglers) == 0 {
		return PartRank{Part: -1}, false
	}
	return r.Stragglers[0], true
}

// Analyze builds the skew report for a set of records. hot may be nil; topK
// bounds the straggler and hot-key rankings (<= 0 means 10).
func Analyze(profs []StepProfile, hot []KeyCount, topK int) *Report {
	if topK <= 0 {
		topK = 10
	}
	rep := &Report{Records: len(profs)}

	type stepKey struct {
		job  string
		step int
	}
	groups := make(map[stepKey][]StepProfile)
	ranks := make(map[attrKey]*PartRank) // step field unused (always 0)
	for _, p := range profs {
		rep.BarrierWaitNS += p.BarrierWaitNS
		if p.Step <= 0 {
			rep.NoSyncParts++
		}
		groups[stepKey{p.Job, p.Step}] = append(groups[stepKey{p.Job, p.Step}], p)
		rk := attrKey{job: p.Job, part: p.Part}
		r := ranks[rk]
		if r == nil {
			r = &PartRank{Job: p.Job, Part: p.Part}
			ranks[rk] = r
		}
		r.ComputeNS += p.ComputeNS
		r.Faults += p.Faults
		r.Retries += p.Retries
	}

	keys := make([]stepKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].job != keys[j].job {
			return keys[i].job < keys[j].job
		}
		return keys[i].step < keys[j].step
	})

	var skewSum float64
	for _, k := range keys {
		g := groups[k]
		if k.step <= 0 || len(g) < 2 {
			continue
		}
		durs := make([]int64, len(g))
		straggler := g[0]
		var total, wait int64
		for i, p := range g {
			durs[i] = p.ComputeNS
			total += p.ComputeNS
			wait += p.BarrierWaitNS
			if p.ComputeNS > straggler.ComputeNS {
				straggler = p
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		// True median: average the two middles for even part counts (the
		// lower middle alone overstates skew on 2-part jobs).
		median := durs[len(durs)/2]
		if len(durs)%2 == 0 {
			median = (durs[len(durs)/2-1] + median) / 2
		}
		ss := StepSkew{
			Job:             k.job,
			Step:            k.step,
			Parts:           len(g),
			MaxComputeNS:    straggler.ComputeNS,
			MedianComputeNS: median,
			TotalComputeNS:  total,
			StragglerPart:   straggler.Part,
			BarrierWaitNS:   wait,
		}
		if median > 0 {
			ss.SkewRatio = float64(ss.MaxComputeNS) / float64(median)
		} else if ss.MaxComputeNS > 0 {
			ss.SkewRatio = float64(ss.Parts)
		} else {
			ss.SkewRatio = 1
		}
		if ss.MaxComputeNS > 0 {
			ss.CriticalPathShare = float64(ss.MaxComputeNS-median) / float64(ss.MaxComputeNS)
		}
		if ss.SkewRatio > rep.MaxSkewRatio {
			rep.MaxSkewRatio = ss.SkewRatio
		}
		skewSum += ss.SkewRatio
		rep.Steps = append(rep.Steps, ss)

		r := ranks[attrKey{job: k.job, part: straggler.Part}]
		r.StepsSlowest++
		for _, p := range g {
			if excess := p.ComputeNS - median; excess > 0 {
				ranks[attrKey{job: p.Job, part: p.Part}].ExcessNS += excess
			}
		}
	}
	if len(rep.Steps) > 0 {
		rep.MeanSkewRatio = skewSum / float64(len(rep.Steps))
	}

	all := make([]PartRank, 0, len(ranks))
	for _, r := range ranks {
		all = append(all, *r)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ExcessNS != all[j].ExcessNS {
			return all[i].ExcessNS > all[j].ExcessNS
		}
		if all[i].StepsSlowest != all[j].StepsSlowest {
			return all[i].StepsSlowest > all[j].StepsSlowest
		}
		if all[i].ComputeNS != all[j].ComputeNS {
			return all[i].ComputeNS > all[j].ComputeNS
		}
		if all[i].Job != all[j].Job {
			return all[i].Job < all[j].Job
		}
		return all[i].Part < all[j].Part
	})
	if len(all) > topK {
		all = all[:topK]
	}
	rep.Stragglers = all

	if len(hot) > topK {
		hot = hot[:topK]
	}
	rep.HotKeys = hot
	return rep
}

// AnalyzeRecorder is Analyze over a recorder's current contents.
func AnalyzeRecorder(r *Recorder, topK int) *Report {
	return Analyze(r.Snapshot(), r.HotKeys(topK), topK)
}

// Command ripple-bench regenerates the paper's evaluation (§V): every table
// and measured experiment, at a configurable fraction of paper scale, and
// prints rows in the paper's shape next to the published numbers.
//
// Usage:
//
//	ripple-bench -exp all -scale 0.1 -trials 5
//
// Experiments:
//
//	table1  PageRank elapsed time, direct vs MapReduce variant (Table I)
//	table2  block multiplications per step of 3×3 BSPified SUMMA (Table II)
//	summa   SUMMA with vs without synchronization (§V-B)
//	sssp    incremental SSSP, selective enablement vs full scans (§V-C)
//	outofcore  PageRank (Table I config) on the LSM diskstore with the
//	        memtable budget capped at -mem-budget bytes, so the working set
//	        runs >= 10x larger than memory; the final table is verified
//	        against the in-memory reference and the engine's LSM counters
//	        (flushes, compactions, write amplification, bloom hit rates)
//	        are printed
//	soak    PageRank (Table I config) + SUMMA (Exp V-B config) to their
//	        fault-free answers under a chaos schedule (-chaos), with the
//	        injected-fault trace printed for reproducibility checks
//	fleet   traced PageRank over part-servers (-net N loopback, default 2,
//	        or -net-addrs), then the full telemetry loop over the admin ops:
//	        fleet metrics poll, trace-ring drain, clock-aligned merged
//	        timeline (written to -fleet-out as OTLP), enclosure check, and
//	        the wire-vs-exec RPC latency decomposition
//
// With -top (and -net-addrs), no experiment runs: instead a live fleet view
// — ripple-top — polls every server's admin telemetry and redraws a status
// table each -top-interval until interrupted.
//
// At -scale 1 the workloads match the paper's sizes (132k-262k vertex
// PageRank graphs, 100k-vertex/1.8M-edge SSSP graph, ten 1000-change
// batches); smaller scales shrink vertex/edge counts proportionally.
//
// Observability flags:
//
//	-metrics-addr :9090   serve the run's shared collector in Prometheus
//	                      text format at http://<addr>/metrics while the
//	                      experiments execute (step-duration, barrier-wait,
//	                      and part-compute histograms; queue-depth and
//	                      enabled-component gauges; all counters)
//	-trace spans.jsonl    dump the engine span log (step/barrier/compute/
//	                      progress events) after the run
//	-trace-cap 16384      span ring-buffer capacity (oldest spans drop)
//	-trace-sample 0.25    head-sample this fraction of job runs for causal
//	                      tracing (trace/span IDs on every span and data
//	                      envelope; deterministic per trace ID, default 1)
//	-trace-format otlp    span dump format: jsonl (default) or otlp
//	                      (OTLP/JSON, importable by OpenTelemetry tooling)
//	-log-level info       structured engine logs (slog) to stderr: off
//	                      (default), error, warn, info, or debug; sampled
//	                      runs carry trace/span IDs on every line
//	-profile out.json     record per-(job, step, part) profiles across every
//	                      engine the run constructs, print the skew/straggler
//	                      report, and write a Chrome trace-event timeline
//	                      (open in chrome://tracing or https://ui.perfetto.dev)
//	-profile-cap 8192     profile ring-buffer capacity (oldest records drop)
//
// With -metrics-addr set, the endpoint also serves /debug/profilez (live JSON
// snapshot of recent step profiles plus the skew summary), /debug/logz (the
// most recent structured log records, filterable by ?level=, ?q=, ?n=), and
// /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"ripple"
	"ripple/internal/chaos"
	"ripple/internal/diskstore"
	"ripple/internal/ebsp"
	"ripple/internal/gridstore"
	"ripple/internal/httpx"
	"ripple/internal/logring"
	"ripple/internal/matrix"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
	"ripple/internal/netstore"
	"ripple/internal/pagerank"
	"ripple/internal/profile"
	"ripple/internal/sssp"
	"ripple/internal/summa"
	"ripple/internal/trace"
	"ripple/internal/workload"
)

// obsMetrics and obsTracer are shared by every engine the experiments
// construct, so the exposition endpoint and the span dump cover the whole
// run.
var (
	obsMetrics  = &metrics.Collector{}
	obsTracer   *trace.Tracer
	obsSampler  *trace.Sampler
	obsProfiler *profile.Recorder
	obsLogRing  *logring.Ring
	obsLogger   *slog.Logger
	// obsMux is the -metrics-addr mux (nil without it); the fleet experiment
	// mounts /fleet/metrics on it.
	obsMux *http.ServeMux
)

// observedEngine builds an engine wired to the run's shared collector,
// tracer, sampler, logger, and profiler.
func observedEngine(store ripple.Store, opts ...ebsp.Option) *ripple.Engine {
	opts = append(opts, ebsp.WithMetrics(obsMetrics), ebsp.WithTracer(obsTracer),
		ebsp.WithTraceSampler(obsSampler), ebsp.WithLogger(obsLogger),
		ebsp.WithProfiler(obsProfiler))
	return ripple.NewEngine(store, opts...)
}

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: table1 (alias: pagerank), table2, summa, sssp, ablations, outofcore, soak, fleet, all")
		scale       = flag.Float64("scale", 0.05, "fraction of paper-scale workload sizes")
		trials      = flag.Int("trials", 3, "trials per configuration (paper: 11/8/12)")
		seed        = flag.Int64("seed", 42, "workload seed")
		iters       = flag.Int("pagerank-iterations", 5, "PageRank iterations per trial")
		chaosSpec   = flag.String("chaos", "", "fault-injection schedule for -exp soak, e.g. seed=7,store.err=0.01,mq.dup=0.05,kill=soak_graph:1@20 or, with -net, wire classes like net.drop=0.01,partition=c2s:2@1500+200,netkill=1@500 (empty: a default schedule)")
		netServers  = flag.Int("net", 0, "run the soak's PageRank leg against this many loopback part-servers (0: in-process store; needs >= 3)")
		memBudget   = flag.Int64("mem-budget", 256<<10, "LSM memtable budget in bytes for -exp outofcore; the workload's working set should exceed it >= 10x")
		netAddrs    = flag.String("net-addrs", "", "comma-separated addresses of externally started ripple-part-server processes to use instead of -net loopback servers")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus-format metrics on this address (e.g. :9090) during the run")
		traceFile   = flag.String("trace", "", "write the span log to this file after the run ('-' for stdout)")
		traceCap    = flag.Int("trace-cap", trace.DefaultCapacity, "span ring-buffer capacity")
		traceSample = flag.Float64("trace-sample", 1, "fraction of job runs to head-sample for causal tracing (deterministic; only with -trace)")
		traceFormat = flag.String("trace-format", "jsonl", "span dump format: jsonl or otlp")
		logLevel    = flag.String("log-level", "off", "structured engine log level: off, error, warn, info, debug")
		profileFile = flag.String("profile", "", "write per-part step profiles as a Chrome trace-event timeline to this file and print the skew report")
		profileCap  = flag.Int("profile-cap", profile.DefaultCapacity, "profile ring-buffer capacity")
		fleetOut    = flag.String("fleet-out", "", "with -exp fleet: write the merged, clock-aligned fleet timeline (OTLP JSON) to this file")
		topMode     = flag.Bool("top", false, "ripple-top: live fleet view over the -net-addrs servers' admin telemetry (no experiment runs)")
		topInterval = flag.Duration("top-interval", time.Second, "refresh interval for -top")
	)
	flag.Parse()
	if *scale <= 0 || *scale > 1 {
		log.Fatalf("scale %v out of (0, 1]", *scale)
	}
	if *traceFormat != "jsonl" && *traceFormat != "otlp" {
		log.Fatalf("unknown -trace-format %q (want jsonl or otlp)", *traceFormat)
	}
	if *traceFile != "" {
		obsTracer = trace.New(*traceCap)
		obsSampler = trace.NewSampler(*traceSample, *seed)
	}
	if *profileFile != "" {
		obsProfiler = profile.New(*profileCap)
	}
	if *logLevel != "off" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			log.Fatalf("unknown -log-level %q (want off, error, warn, info, debug)", *logLevel)
		}
		obsLogRing = logring.New(logring.DefaultCapacity)
		obsLogger = slog.New(logring.Fanout(
			slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}),
			obsLogRing.Handler(lvl)))
	}
	if *metricsAddr != "" {
		obsMux = http.NewServeMux()
		obsMux.Handle("/metrics", metrics.HandlerTracer(obsMetrics, obsTracer))
		profile.AttachDebug(obsMux, obsProfiler)
		logring.Attach(obsMux, obsLogRing)
		// Bind synchronously so a bad or occupied -metrics-addr fails the run
		// now instead of being logged mid-experiment; drained on exit below.
		obsSrv, err := httpx.Serve(*metricsAddr, obsMux)
		if err != nil {
			log.Fatalf("metrics endpoint: %v", err)
		}
		defer func() {
			if err := obsSrv.Shutdown(nil); err != nil {
				log.Printf("metrics shutdown: %v", err)
			}
		}()
		fmt.Printf("serving metrics at http://%s/metrics for the duration of the run\n\n", obsSrv.Addr())
	}

	if *topMode {
		runTop(*netAddrs, *topInterval)
		return
	}

	run := map[string]func(){
		"table1":    func() { runTable1(*scale, *trials, *seed, *iters) },
		"pagerank":  func() { runTable1(*scale, *trials, *seed, *iters) }, // alias: Table I is the PageRank experiment
		"table2":    func() { runTable2() },
		"summa":     func() { runSumma(*scale, *trials, *seed) },
		"sssp":      func() { runSSSP(*scale, *trials, *seed) },
		"ablations": func() { runAblations(*scale, *trials, *seed) },
		"outofcore": func() { runOutOfCore(*scale, *seed, *iters, *memBudget) },
		"soak":      func() { runSoak(*scale, *seed, *iters, *chaosSpec, *netServers, *netAddrs) },
		"fleet":     func() { runFleetExp(*scale, *seed, *iters, *netServers, *netAddrs, *fleetOut) },
	}
	switch *exp {
	case "all":
		for _, name := range []string{"table1", "table2", "summa", "sssp", "ablations"} {
			run[name]()
			fmt.Println()
		}
	default:
		fn, ok := run[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			flag.Usage()
			os.Exit(2)
		}
		fn()
	}

	if *traceFile != "" {
		if err := dumpTrace(*traceFile, *traceFormat); err != nil {
			log.Fatalf("trace dump: %v", err)
		}
	}
	if *profileFile != "" {
		if err := dumpProfile(*profileFile); err != nil {
			log.Fatalf("profile dump: %v", err)
		}
	}
}

// dumpProfile prints the skew/straggler report and writes the recorded step
// profiles as a Chrome trace-event timeline.
func dumpProfile(path string) error {
	fmt.Println()
	profile.WriteText(os.Stdout, profile.AnalyzeRecorder(obsProfiler, 10))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := profile.WriteChromeTrace(f, obsProfiler.Snapshot()); err != nil {
		return err
	}
	if dropped := obsProfiler.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "profile: ring buffer dropped %d oldest records (raise -profile-cap)\n", dropped)
	}
	fmt.Printf("wrote %d step profiles to %s (open in chrome://tracing or https://ui.perfetto.dev)\n",
		obsProfiler.Len(), path)
	return nil
}

// dumpTrace writes the shared tracer's span log to path ("-" for stdout), as
// JSONL or OTLP/JSON.
func dumpTrace(path, format string) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		out = f
	}
	var err error
	if format == "otlp" {
		err = obsTracer.WriteOTLP(out)
	} else {
		err = obsTracer.WriteJSONL(out)
	}
	if err != nil {
		return err
	}
	if dropped := obsTracer.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "trace: ring buffer dropped %d oldest spans (raise -trace-cap)\n", dropped)
	}
	if path != "-" {
		fmt.Printf("wrote %d trace spans to %s\n", obsTracer.Len(), path)
	}
	return nil
}

// stats computes mean and sample standard deviation of seconds.
func stats(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)-1))
}

func runTable1(scale float64, trials int, seed int64, iterations int) {
	fmt.Printf("== Table I: elapsed time (sec) for PageRank variants ==\n")
	fmt.Printf("   (scale %.3f of paper sizes; %d trials; %d iterations; memstore, 6 partitions)\n",
		scale, trials, iterations)
	shapes := []struct {
		v, e  int
		paper string
	}{
		{int(132000 * scale), int(4341659 * scale), "direct 28.5±0.4  mapreduce 32.9±0.7"},
		{int(132000 * scale), int(8683970 * scale), "direct 44.8±0.5  mapreduce 53.2±0.4"},
		{int(262000 * scale), int(8683970 * scale), "direct 55.3±0.6  mapreduce 63.5±0.7"},
	}
	fmt.Printf("%-10s %-10s %-18s %-18s %-8s %s\n",
		"Vertices", "Edges", "Direct avg±std", "MapReduce avg±std", "MR/Dir", "paper (full scale)")
	for _, s := range shapes {
		g, err := workload.PowerLawDirected(rand.New(rand.NewSource(seed)), s.v, s.e, 1.5)
		if err != nil {
			log.Fatal(err)
		}
		var direct, mr []float64
		for t := 0; t < trials; t++ {
			direct = append(direct, timePageRank(g, iterations, false))
			mr = append(mr, timePageRank(g, iterations, true))
		}
		dm, ds := stats(direct)
		mm, ms := stats(mr)
		fmt.Printf("%-10d %-10d %7.3f ± %-8.3f %7.3f ± %-8.3f %-8.2f %s\n",
			s.v, s.e, dm, ds, mm, ms, mm/dm, s.paper)
	}
	fmt.Println("   paper finding: direct variant 15-19% faster (50% fewer I/O and sync rounds)")
}

func timePageRank(g *workload.DirectedGraph, iterations int, mapreduceVariant bool) float64 {
	store := memstore.New(memstore.WithParts(6))
	defer func() { _ = store.Close() }()
	engine := observedEngine(store)
	tab, err := pagerank.LoadGraph(store, "g", g, 6)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pagerank.Config{GraphTable: "g", Iterations: iterations}
	if mapreduceVariant {
		if err := pagerank.SeedRanks(tab); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := pagerank.RunMapReduce(engine, cfg); err != nil {
			log.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	start := time.Now()
	if _, err := pagerank.RunDirect(engine, cfg); err != nil {
		log.Fatal(err)
	}
	return time.Since(start).Seconds()
}

func runTable2() {
	fmt.Printf("== Table II: block multiplications in each step (3x3 BSPified SUMMA) ==\n")
	// Analytic schedule.
	sched := summa.Schedule(3)
	// Live synchronized run.
	store := memstore.New(memstore.WithParts(9))
	defer func() { _ = store.Close() }()
	rng := rand.New(rand.NewSource(1))
	a := matrix.Random(rng, 60, 60)
	b := matrix.Random(rng, 60, 60)
	out, err := summa.Multiply(store, summa.Config{Grid: 3, Synchronized: true, Profiler: obsProfiler}, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s", "Step")
	for s := range sched {
		fmt.Printf("%4d", s+1)
	}
	fmt.Printf("\n%-22s", "Multiplications (live)")
	for _, c := range out.MultsPerStep {
		fmt.Printf("%4d", c)
	}
	fmt.Printf("\n%-22s", "Multiplications (model)")
	for _, c := range sched {
		fmt.Printf("%4d", c)
	}
	fmt.Printf("\n%-22s   1   3   6   3   6   3   5\n", "Paper Table II")
	fmt.Printf("   7 steps for 3 block multiplies per component: synchronization slows this example by 7/3\n")
}

func runSumma(scale float64, trials int, seed int64) {
	n := int(1500*scale) + 120
	n -= n % 3
	const latency = 2 * time.Millisecond
	fmt.Printf("== Experiment V-B: SUMMA matrix multiply, with vs without synchronization ==\n")
	fmt.Printf("   (%dx%d matrices, 3x3 block grid, gridstore with 10 parts, %v emulated\n", n, n, latency)
	fmt.Printf("    cross-partition latency — on this single-core host the benefit of removing\n")
	fmt.Printf("    barriers appears through latency hiding, not compute parallelism; %d trials)\n", trials)
	rng := rand.New(rand.NewSource(seed))
	a := matrix.Random(rng, n, n)
	b := matrix.Random(rng, n, n)
	var withSync, noSync []float64
	for t := 0; t < trials; t++ {
		withSync = append(withSync, timeSumma(a, b, true, latency))
		noSync = append(noSync, timeSumma(a, b, false, latency))
	}
	sm, ss := stats(withSync)
	nm, ns := stats(noSync)
	fmt.Printf("%-28s %7.3f ± %.3f s\n", "with synchronization:", sm, ss)
	fmt.Printf("%-28s %7.3f ± %.3f s\n", "without synchronization:", nm, ns)
	fmt.Printf("%-28s %7.2fx\n", "speedup:", sm/nm)
	fmt.Println("   paper: 90±0.5 s with sync, 51±0.5 s without (1.76x; ideal 7/3 = 2.33x)")
}

func timeSumma(a, b matrix.Dense, synchronized bool, latency time.Duration) float64 {
	store := gridstore.New(gridstore.WithParts(10), gridstore.WithLatency(latency))
	defer func() { _ = store.Close() }()
	start := time.Now()
	if _, err := summa.Multiply(store, summa.Config{
		Grid: 3, Synchronized: synchronized, Latency: latency, Profiler: obsProfiler,
	}, a, b); err != nil {
		log.Fatal(err)
	}
	return time.Since(start).Seconds()
}

func runSSSP(scale float64, trials int, seed int64) {
	vertices := int(100000 * scale)
	edges := int(1800000 * scale)
	const batches, batchSize = 10, 1000
	fmt.Printf("== Experiment V-C: incremental SSSP over %d batches of %d changes ==\n", batches, batchSize)
	fmt.Printf("   (%d vertices, %d power-law edges, memstore with 6 partitions, %d trials)\n",
		vertices, edges, trials)
	var selTimes, fsTimes []float64
	for t := 0; t < trials; t++ {
		g, err := workload.PowerLawUndirected(rand.New(rand.NewSource(seed+int64(t))), vertices, edges, 1.3)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + 1000 + int64(t)))
		allBatches := make([][]workload.Change, batches)
		for i := range allBatches {
			allBatches[i] = workload.ChangeBatch(rng, vertices, batchSize, 1.3, 0.5)
		}
		selTimes = append(selTimes, timeSSSP(g, allBatches, true))
		fsTimes = append(fsTimes, timeSSSP(g, allBatches, false))
	}
	sm, ss := stats(selTimes)
	fm, fs := stats(fsTimes)
	fmt.Printf("%-28s %8.4f ± %.4f s\n", "selective enablement:", sm, ss)
	fmt.Printf("%-28s %8.4f ± %.4f s\n", "full scanning:", fm, fs)
	fmt.Printf("%-28s %8.0fx\n", "advantage:", fm/sm)
	fmt.Println("   paper: 0.21±0.03 s selective vs 78±5 s full-scan (~370x) at full scale")
}

func timeSSSP(g *workload.UndirectedGraph, batches [][]workload.Change, selective bool) float64 {
	store := memstore.New(memstore.WithParts(6))
	defer func() { _ = store.Close() }()
	engine := observedEngine(store)

	type driver interface {
		Init(*workload.UndirectedGraph) error
		ApplyBatch([]workload.Change) (*sssp.BatchStats, error)
	}
	var drv driver
	if selective {
		drv = sssp.NewSelective(engine, "sel", 0, 6)
	} else {
		drv = sssp.NewFullScan(engine, "fs", 0, 6)
	}
	if err := drv.Init(cloneGraph(g)); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for _, batch := range batches {
		if _, err := drv.ApplyBatch(batch); err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start).Seconds()
}

func cloneGraph(g *workload.UndirectedGraph) *workload.UndirectedGraph {
	out := workload.NewUndirected(g.NumVertices)
	for u := 0; u < g.NumVertices; u++ {
		for _, v := range g.Neighbors(u) {
			out.AddEdge(u, int(v))
		}
	}
	return out
}

// runAblations measures the §II-A execution optimizations in isolation on a
// PageRank workload: the message combiner and the emulated cross-partition
// marshalling.
func runAblations(scale float64, trials int, seed int64) {
	v := int(60000 * scale)
	e := int(1200000 * scale)
	fmt.Printf("== Ablations (PageRank direct, %d vertices, %d edges, 3 iterations, %d trials) ==\n",
		v, e, trials)
	g, err := workload.PowerLawDirected(rand.New(rand.NewSource(seed)), v, e, 1.5)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(disableCombiner, marshal bool) float64 {
		best := math.Inf(1)
		for t := 0; t < trials; t++ {
			opts := []memstore.Option{memstore.WithParts(6)}
			if !marshal {
				opts = append(opts, memstore.WithoutMarshalling())
			}
			store := memstore.New(opts...)
			engine := observedEngine(store)
			if _, err := pagerank.LoadGraph(store, "g", g, 6); err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			if _, err := pagerank.RunDirect(engine, pagerank.Config{
				GraphTable: "g", Iterations: 3, DisableCombiner: disableCombiner,
			}); err != nil {
				log.Fatal(err)
			}
			if el := time.Since(start).Seconds(); el < best {
				best = el
			}
			_ = store.Close()
		}
		return best
	}

	base := measure(false, true)
	noCombiner := measure(true, true)
	noMarshal := measure(false, false)
	fmt.Printf("%-44s %8.3f s\n", "baseline (combiner on, marshalling on):", base)
	fmt.Printf("%-44s %8.3f s  (%+.0f%%)\n", "combiner off:", noCombiner, 100*(noCombiner-base)/base)
	fmt.Printf("%-44s %8.3f s  (%+.0f%%)\n", "marshalling off (no emulated network):", noMarshal, 100*(noMarshal-base)/base)
	fmt.Println("   (strategy-level ablations — sort/collect/steal/recovery — are in bench_test.go)")
}

// soakFleet serves loopback part-servers inside the bench process: the real
// wire protocol over real TCP sockets, without needing separate processes.
type soakFleet struct {
	mu      sync.Mutex
	addrs   []string
	servers []*netstore.Server
}

func startSoakFleet(n int) *soakFleet {
	f := &soakFleet{addrs: make([]string, n), servers: make([]*netstore.Server, n)}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("soak fleet: %v", err)
		}
		f.addrs[i] = ln.Addr().String()
		srv := netstore.NewServer(netstore.WithServerMetrics(obsMetrics), netstore.WithServerTracer(obsTracer))
		f.servers[i] = srv
		go func() { _ = srv.Serve(ln) }()
	}
	return f
}

// kill closes one server and respawns a fresh, empty one on the same address
// ~200ms later — an in-process stand-in for SIGKILLing a part-server child.
func (f *soakFleet) kill(server int) {
	f.mu.Lock()
	victim := f.servers[server]
	addr := f.addrs[server]
	f.mu.Unlock()
	_ = victim.Close()
	time.Sleep(200 * time.Millisecond)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("soak fleet: respawn %s: %v", addr, err)
		return
	}
	srv := netstore.NewServer(netstore.WithServerMetrics(obsMetrics), netstore.WithServerTracer(obsTracer))
	f.mu.Lock()
	f.servers[server] = srv
	f.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
}

func (f *soakFleet) stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, srv := range f.servers {
		_ = srv.Close()
	}
}

// runSoak drives the robustness demonstration: the Table I PageRank
// configuration and the Exp V-B SUMMA configuration run to their exact
// fault-free answers while a chaos schedule injects transient store/mq
// errors, latency jitter, message duplication, and primary kills — with the
// engine recovering on its own (no manual Resume). The injected-fault trace
// is printed; the same seed over the same workload reproduces it.
//
// With -net N (or -net-addrs), the PageRank leg instead runs against a fleet
// of part-servers over TCP, and the schedule's wire fault classes apply:
// frame drops/loss/duplication/delay, one-way partition windows, and
// scheduled server kills (loopback servers are killed and respawned empty;
// external servers just see the client-side faults).
// runOutOfCore runs the Table I PageRank shape on the LSM diskstore with the
// memtable budget clamped to a fraction of the working set, verifies the
// final table against the in-memory reference, and reports the storage
// engine's counters — the out-of-core claim made measurable.
func runOutOfCore(scale float64, seed int64, iterations int, budget int64) {
	v, e := int(132000*scale), int(4341659*scale)
	fmt.Printf("== Out-of-core: PageRank on the LSM diskstore under a memory budget ==\n")
	fmt.Printf("   (%d vertices, %d edges; %d iterations; %d-byte memtable budget; 6 partitions)\n",
		v, e, iterations, budget)
	g, err := workload.PowerLawDirected(rand.New(rand.NewSource(seed)), v, e, 1.5)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "ripple-outofcore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	store, err := diskstore.New(dir,
		diskstore.WithParts(6),
		diskstore.WithMemtableBudget(budget),
		diskstore.WithMetrics(obsMetrics),
		diskstore.WithTracer(obsTracer))
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = store.Close() }()

	tab, err := pagerank.LoadGraph(store, "ooc_graph", g, 6)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := pagerank.RunDirect(observedEngine(store), pagerank.Config{
		GraphTable: "ooc_graph", Iterations: iterations,
	}); err != nil {
		log.Fatalf("out-of-core pagerank: %v", err)
	}
	elapsed := time.Since(start).Seconds()

	got, err := pagerank.ReadRanks(tab)
	if err != nil {
		log.Fatal(err)
	}
	want := pagerank.Reference(g, 0.85, iterations)
	for vtx, w := range want {
		r, ok := got[vtx]
		if !ok {
			log.Fatalf("vertex %d missing from the final table", vtx)
		}
		if d := r - w; d > 1e-9 || d < -1e-9 {
			log.Fatalf("rank[%d] = %v, in-memory reference says %v", vtx, r, w)
		}
	}

	snap := obsMetrics.LSM().Snapshot()
	multiple := float64(snap.LogicalBytes) / float64(budget)
	fmt.Printf("   completed in %.3f s; final table matches the in-memory reference\n\n", elapsed)
	fmt.Printf("   %-22s %d (%.1fx the memtable budget)\n", "logical bytes", snap.LogicalBytes, multiple)
	fmt.Printf("   %-22s %d flushes, %d compactions, %d WAL syncs\n",
		"memtable pressure", snap.Flushes, snap.Compactions, snap.WALSyncs)
	fmt.Printf("   %-22s %.2f  (WAL %d + flush %d + compaction %d bytes)\n",
		"write amplification", snap.WriteAmplification(), snap.WALBytes, snap.FlushBytes, snap.CompactionBytes)
	fmt.Printf("   %-22s %d checks, %d filtered, %.4f false-positive rate\n",
		"bloom filters", snap.BloomChecks, snap.BloomNegatives, snap.BloomFalsePositiveRate())
	if multiple < 10 {
		fmt.Printf("   note: working set only %.1fx the budget — lower -mem-budget or raise -scale for a true out-of-core run\n", multiple)
	}
}

func runSoak(scale float64, seed int64, iterations int, spec string, netN int, netAddrList string) {
	var extAddrs []string
	if netAddrList != "" {
		extAddrs = strings.Split(netAddrList, ",")
		netN = len(extAddrs)
	}
	networked := netN > 0
	if networked && netN < 3 {
		log.Fatalf("-net/-net-addrs needs at least 3 part-servers, got %d", netN)
	}
	if spec == "" {
		if networked {
			spec = fmt.Sprintf("seed=%d,store.err=0.005,net.drop=0.005,net.dup=0.02,"+
				"net.delay=300us@0.05,netkill=1@500,partition=c2s:2@1500+200", seed)
		} else {
			spec = fmt.Sprintf("seed=%d,store.err=0.01,agent.err=0.01,mq.err=0.02,mq.dup=0.1,"+
				"mq.delay=200us@0.2,kill=soak_graph:1@12,kill=soak_graph:4@30", seed)
		}
	}
	sched, err := chaos.Parse(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Soak: PageRank (Table I config) + SUMMA (Exp V-B config) under chaos ==\n")
	fmt.Printf("   schedule: %s\n", sched)
	if networked {
		fmt.Printf("   pagerank leg served by %d part-servers over TCP (wire fault classes active)\n", netN)
	}

	// --- PageRank leg: Table I's first shape with periodic checkpoints, so
	// scheduled kills exercise heal-and-rerun. In-process it runs on a
	// replicated gridstore; networked, on a part-server fleet.
	v, e := int(132000*scale), int(4341659*scale)
	g, err := workload.PowerLawDirected(rand.New(rand.NewSource(seed)), v, e, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	want := pagerank.Reference(g, 0.85, iterations)

	pagerankLeg := func() ([]chaos.Record, metrics.Snapshot, float64) {
		m := &metrics.Collector{}
		inj := chaos.NewInjector(sched, chaos.WithMetrics(m), chaos.WithTracer(obsTracer))
		var base ripple.Store
		if networked {
			addrs := extAddrs
			if addrs == nil {
				fleet := startSoakFleet(netN)
				defer fleet.stop()
				inj.OnNetKill(fleet.kill)
				addrs = fleet.addrs
			}
			// Three-way replication so a simultaneous kill + partition (two
			// impaired servers) still leaves every part a warm member.
			c, err := netstore.Dial(addrs,
				netstore.WithReplicas(3),
				netstore.WithHeartbeat(25*time.Millisecond, 2),
				netstore.WithRequestTimeout(250*time.Millisecond),
				netstore.WithRetries(10),
				netstore.WithBackoffSeed(seed),
				netstore.WithWireInjector(inj),
				netstore.WithMetrics(m),
				netstore.WithTracer(obsTracer),
			)
			if err != nil {
				log.Fatalf("dial part-servers: %v", err)
			}
			defer func() { _ = c.DropTable("soak_graph"); _ = c.Close() }()
			base = c
		} else {
			gs := gridstore.New(gridstore.WithParts(6), gridstore.WithReplicas(2), gridstore.WithMetrics(m))
			defer func() { _ = gs.Close() }()
			base = gs
		}
		tab, err := pagerank.LoadGraph(base, "soak_graph", g, 6)
		if err != nil {
			log.Fatal(err)
		}
		store := chaos.Wrap(base, inj)
		engine := ripple.NewEngine(store, ebsp.WithMetrics(m), ebsp.WithTracer(obsTracer),
			ebsp.WithTraceSampler(obsSampler), ebsp.WithLogger(obsLogger),
			ebsp.WithProfiler(obsProfiler), ebsp.WithCheckpoints(3))
		start := time.Now()
		if _, err := pagerank.RunDirect(engine, pagerank.Config{GraphTable: "soak_graph", Iterations: iterations}); err != nil {
			log.Fatalf("pagerank under chaos: %v", err)
		}
		elapsed := time.Since(start).Seconds()
		got, err := pagerank.ReadRanks(tab)
		if err != nil {
			log.Fatal(err)
		}
		for vx, w := range want {
			if r := got[vx]; math.Abs(r-w) > 1e-9 {
				log.Fatalf("pagerank under chaos diverged: rank[%d] = %v, want %v", vx, r, w)
			}
		}
		return inj.Records(), m.Snapshot(), elapsed
	}
	recs, snap, elapsed := pagerankLeg()
	fmt.Printf("   pagerank: %d vertices, %d edges, %d iterations — matches fault-free ranks (%.3f s)\n",
		v, e, iterations, elapsed)
	fmt.Printf("             faults=%d retries=%d failovers=%d stepsRerun=%d\n",
		snap.FaultsInjected, snap.Retries, snap.Failovers, snap.StepsRerun)

	// --- SUMMA leg: Exp V-B's no-sync configuration with chaos on both the
	// store and the message-queue system.
	n := int(1500*scale) + 120
	n -= n % 3
	rng := rand.New(rand.NewSource(seed))
	a := matrix.Random(rng, n, n)
	b := matrix.Random(rng, n, n)
	direct, err := a.Mul(b)
	if err != nil {
		log.Fatal(err)
	}
	summaLeg := func() ([]chaos.Record, metrics.Snapshot, float64) {
		m := &metrics.Collector{}
		inj := chaos.NewInjector(sched, chaos.WithMetrics(m), chaos.WithTracer(obsTracer))
		store := chaos.Wrap(gridstore.New(gridstore.WithParts(10), gridstore.WithMetrics(m)), inj)
		defer func() { _ = store.Close() }()
		start := time.Now()
		out, err := summa.Multiply(store, summa.Config{
			Grid:     3,
			Metrics:  m,
			Profiler: obsProfiler,
			MQ:       mq.NewSystem(mq.WithFaults(inj), mq.WithMetrics(m)),
		}, a, b)
		if err != nil {
			log.Fatalf("summa under chaos: %v", err)
		}
		elapsed := time.Since(start).Seconds()
		if !out.C.EqualWithin(direct, 1e-9) {
			log.Fatal("summa under chaos diverged from the direct product")
		}
		return inj.Records(), m.Snapshot(), elapsed
	}
	srecs, ssnap, selapsed := summaLeg()
	fmt.Printf("   summa:    %dx%d matrices, 3x3 grid, no-sync — matches direct product (%.3f s)\n",
		n, n, selapsed)
	fmt.Printf("             faults=%d retries=%d\n", ssnap.FaultsInjected, ssnap.Retries)

	// Reproducibility: the same seed over the same workload injects the same
	// fault set.
	recs2, _, _ := pagerankLeg()
	srecs2, _, _ := summaLeg()
	fmt.Printf("   fault trace reproducible across runs: pagerank=%v summa=%v\n",
		equalRecords(recs, recs2), equalRecords(srecs, srecs2))

	printTrace := func(label string, recs []chaos.Record) {
		fmt.Printf("   %s fault trace (%d records):\n", label, len(recs))
		const cap = 25
		for i, r := range recs {
			if i == cap {
				fmt.Printf("     ... %d more\n", len(recs)-cap)
				break
			}
			fmt.Printf("     %s\n", r)
		}
	}
	printTrace("pagerank", recs)
	printTrace("summa", srecs)
}

// equalRecords compares two canonically sorted fault traces.
func equalRecords(a, b []chaos.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
